package netanomaly

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// WriteMatrixCSV writes a matrix as CSV: an optional header row of column
// names followed by one row per bin. Pass nil header to omit it.
func WriteMatrixCSV(w io.Writer, m *Matrix, header []string) error {
	rows, cols := m.Dims()
	if header != nil && len(header) != cols {
		return fmt.Errorf("netanomaly: header has %d names for %d columns", len(header), cols)
	}
	cw := csv.NewWriter(w)
	if header != nil {
		if err := cw.Write(header); err != nil {
			return err
		}
	}
	rec := make([]string, cols)
	for i := 0; i < rows; i++ {
		row := m.RowView(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadMatrixCSV parses a matrix written by WriteMatrixCSV. The first
// record is treated as a header and skipped when any of its cells fails
// to parse as a number — not just the first cell, so a header of numeric
// link IDs followed by names ("0","linkA",...) is still recognized. A
// header whose every cell is numeric is indistinguishable from data and
// is read as the first row.
//
// Cells are trimmed of surrounding whitespace before parsing (so
// "1, 2" reads as data, not as a one-row header), a UTF-8 byte-order
// mark on the first cell is ignored, and non-finite values (NaN,
// ±Inf) are rejected: every downstream consumer — model fits,
// forecasters, thresholds — assumes finite measurements, and a NaN that
// slips in here would poison a fit silently instead of failing loudly
// at the boundary.
func ReadMatrixCSV(r io.Reader) (*Matrix, []string, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("netanomaly: reading CSV: %w", err)
	}
	if len(recs) == 0 {
		return nil, nil, fmt.Errorf("netanomaly: empty CSV")
	}
	recs[0][0] = strings.TrimPrefix(recs[0][0], "\ufeff")
	var header []string
	if !allNumeric(recs[0]) {
		header = recs[0]
		recs = recs[1:]
	}
	if len(recs) == 0 {
		return nil, header, fmt.Errorf("netanomaly: CSV has a header but no data")
	}
	cols := len(recs[0])
	m := NewMatrix(len(recs), cols, nil)
	for i, rec := range recs {
		if len(rec) != cols {
			return nil, header, fmt.Errorf("netanomaly: row %d has %d fields, want %d", i, len(rec), cols)
		}
		for j, s := range rec {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return nil, header, fmt.Errorf("netanomaly: row %d col %d: %w", i, j, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, header, fmt.Errorf("netanomaly: row %d col %d: non-finite value %q", i, j, s)
			}
			m.Set(i, j, v)
		}
	}
	return m, header, nil
}

// allNumeric reports whether every cell of the record parses as a
// float64 after whitespace trimming. Non-finite spellings ("NaN",
// "Inf") count as numeric here — they look like data, and the value
// check in ReadMatrixCSV rejects them with a precise row/col error
// rather than silently demoting the row to a header.
func allNumeric(rec []string) bool {
	for _, s := range rec {
		if _, err := strconv.ParseFloat(strings.TrimSpace(s), 64); err != nil {
			return false
		}
	}
	return true
}

// SaveMatrixCSV writes the matrix to a file.
func SaveMatrixCSV(path string, m *Matrix, header []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteMatrixCSV(f, m, header); err != nil {
		return err
	}
	return f.Close()
}

// LoadMatrixCSV reads a matrix from a file.
func LoadMatrixCSV(path string) (*Matrix, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadMatrixCSV(f)
}
