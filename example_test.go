package netanomaly_test

import (
	"context"
	"fmt"
	"log"

	"netanomaly"
)

// exampleData builds a small deterministic scenario shared by the
// examples: synthetic Abilene traffic with one 90 MB volume anomaly
// injected into an OD flow mid-stream, split into a seeding history and
// a streamed continuation. Real deployments load link-load CSVs or feed
// collector measurements instead.
func exampleData(seed int64) (topo *netanomaly.Topology, history, stream *netanomaly.Matrix, flow int) {
	const historyBins, streamBins, spikeBin = 288, 64, 30
	topo = netanomaly.Abilene()
	cfg := netanomaly.DefaultTrafficConfig(seed)
	cfg.Bins = historyBins + streamBins
	od, err := netanomaly.GenerateTraffic(topo, cfg)
	if err != nil {
		log.Fatal(err)
	}
	flow = topo.FlowID(1, 7)
	netanomaly.InjectAnomalies(od, []netanomaly.Anomaly{{Flow: flow, Bin: historyBins + spikeBin, Delta: 9e7}})
	links := netanomaly.LinkLoads(topo, od)
	m := topo.NumLinks()
	history = netanomaly.NewMatrix(historyBins, m, links.RawData()[:historyBins*m])
	stream = netanomaly.NewMatrix(streamBins, m, links.RawData()[historyBins*m:])
	return topo, history, stream, flow
}

// ExampleNewMonitor runs the concurrent streaming engine end to end:
// seed a subspace view on history, ingest a measurement batch, and
// collect the diagnosed alarms — detection, flow identification and
// byte quantification in one pass.
func ExampleNewMonitor() {
	topo, history, stream, _ := exampleData(7)

	mon := netanomaly.NewMonitor(netanomaly.MonitorConfig{})
	defer mon.Close()
	if err := netanomaly.AddTopologyView(mon, "backbone", history, topo); err != nil {
		log.Fatal(err)
	}
	if err := mon.Ingest("backbone", stream); err != nil {
		log.Fatal(err)
	}
	mon.Flush() // Ingest is asynchronous; wait for the queued batches
	for _, a := range mon.TakeAlarms() {
		fmt.Printf("%s: bin %d flow %s ~%.0f MB\n",
			a.View, a.Seq, topo.FlowName(a.Flow), a.Bytes/1e6)
	}
	// Output: backbone: bin 30 flow chin->dnvr ~90 MB
}

// ExampleAddView registers a subspace-family backend with options: the
// incremental kind maintains the same model from a running covariance,
// making refits cheap enough to run often.
func ExampleAddView() {
	topo, history, stream, _ := exampleData(8)

	mon := netanomaly.NewMonitor(netanomaly.MonitorConfig{RefitEvery: 32})
	defer mon.Close()
	err := netanomaly.AddView(mon, "edge", history, topo,
		netanomaly.WithDetector(netanomaly.DetectorIncremental),
		netanomaly.WithLambda(0.999), // ~one-week forgetting at 10-minute bins
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := mon.Ingest("edge", stream); err != nil {
		log.Fatal(err)
	}
	mon.Flush()
	stats, err := mon.ViewStats("edge")
	if err != nil {
		log.Fatal(err)
	}
	spiked := false
	for _, a := range mon.TakeAlarms() {
		if a.Seq == 30 {
			spiked = true
		}
	}
	fmt.Printf("backend %s processed %d bins, spike detected: %v\n",
		stats.Backend, stats.Processed, spiked)
	// Output: backend incremental processed 64 bins, spike detected: true
}

// ExampleAddView_forecast registers a temporal forecasting backend —
// the cheapest kind: per-link EWMA recursions with adaptive k-sigma
// thresholds, no matrix pass. Alarms localize in time and link but
// cannot name the responsible OD flow (Flow is -1).
func ExampleAddView_forecast() {
	topo, history, stream, _ := exampleData(9)

	mon := netanomaly.NewMonitor(netanomaly.MonitorConfig{})
	defer mon.Close()
	err := netanomaly.AddView(mon, "cheap", history, topo,
		netanomaly.WithDetector(netanomaly.DetectorEWMA),
		netanomaly.WithThresholdK(6),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := mon.Ingest("cheap", stream); err != nil {
		log.Fatal(err)
	}
	mon.Flush()
	for _, a := range mon.TakeAlarms() {
		fmt.Printf("bin %d anomalous (flow identified: %v)\n", a.Seq, a.Flow >= 0)
	}
	// Output: bin 30 anomalous (flow identified: false)
}

// ExampleAddView_hybrid registers the triage→identification backend:
// an always-on EWMA stage sees every bin at recursion cost, and only
// its alarms escalate to a subspace stage that attributes the OD flow —
// forecast-level steady-state cost, subspace-grade alarms.
func ExampleAddView_hybrid() {
	topo, history, stream, flow := exampleData(10)

	mon := netanomaly.NewMonitor(netanomaly.MonitorConfig{})
	defer mon.Close()
	err := netanomaly.AddView(mon, "hybrid", history, topo,
		netanomaly.WithDetector(netanomaly.DetectorHybrid),
		netanomaly.WithTriageKind(netanomaly.DetectorEWMA),
		netanomaly.WithEscalation("immediate"),
	)
	if err != nil {
		log.Fatal(err)
	}
	det, err := mon.Detector("hybrid") // grab before Close for stage stats
	if err != nil {
		log.Fatal(err)
	}
	if err := mon.Ingest("hybrid", stream); err != nil {
		log.Fatal(err)
	}
	mon.Flush()
	for _, a := range mon.TakeAlarms() {
		fmt.Printf("bin %d flow %s (injected into %s)\n",
			a.Seq, topo.FlowName(a.Flow), topo.FlowName(flow))
	}
	hs := det.(*netanomaly.HybridDetector).HybridStats()
	fmt.Printf("subspace stage saw %d of %d bins\n", hs.Escalated, hs.Triage.Processed)
	// Output:
	// bin 30 flow chin->dnvr (injected into chin->dnvr)
	// subspace stage saw 1 of 64 bins
}

// ExampleMonitor_IngestStream drives a view from a live measurement
// channel — the wiring an SNMP collector would use. StreamMatrix
// replays a matrix as such a channel; any source producing
// LinkMeasurement works.
func ExampleMonitor_IngestStream() {
	topo, history, stream, _ := exampleData(11)

	alarmed := make(chan int, 16)
	mon := netanomaly.NewMonitor(netanomaly.MonitorConfig{
		OnAlarm: func(a netanomaly.MonitorAlarm) { alarmed <- a.Seq },
	})
	if err := netanomaly.AddTopologyView(mon, "live", history, topo); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// IngestStream blocks until the channel closes; it rebatches
	// bin-at-a-time arrivals so the batched kernel stays hot.
	if err := mon.IngestStream("live", netanomaly.StreamMatrix(ctx, stream, 0)); err != nil {
		log.Fatal(err)
	}
	mon.Close() // drains queued work and in-flight refits
	close(alarmed)
	for seq := range alarmed {
		fmt.Printf("alarm at streamed bin %d\n", seq)
	}
	// Output: alarm at streamed bin 30
}

// ExampleNewMonitor_loadSafe configures the engine for sustained
// overload: bounded per-view queues with a selectable full-queue policy
// and a worker pool that scales itself between one and four workers
// from the observed backlog. With OverloadBlock the producer is paced
// to the service rate and nothing is lost; swap in OverloadDropOldest
// to prefer fresh bins instead. Monitor.Stats reports queue depth,
// drops and the pool's high-water mark.
func ExampleNewMonitor_loadSafe() {
	topo, history, stream, _ := exampleData(7)

	mon := netanomaly.NewMonitor(netanomaly.MonitorConfig{BatchSize: 32},
		netanomaly.WithMaxPending(128),
		netanomaly.WithOverloadPolicy(netanomaly.OverloadBlock),
		netanomaly.WithAutoscale(1, 4),
	)
	defer mon.Close()
	if err := netanomaly.AddTopologyView(mon, "backbone", history, topo); err != nil {
		log.Fatal(err)
	}
	if err := mon.Ingest("backbone", stream); err != nil {
		log.Fatal(err)
	}
	mon.Flush()
	st := mon.Stats()
	fmt.Printf("dropped %d bins, pool stayed within bounds: %v\n",
		st.DroppedBins, st.WorkersHighWater >= 1 && st.WorkersHighWater <= 4)
	// Output: dropped 0 bins, pool stayed within bounds: true
}
