// Package netanomaly diagnoses network-wide traffic anomalies from link
// measurements using the PCA subspace method of Lakhina, Crovella and
// Diot, "Diagnosing Network-Wide Traffic Anomalies" (SIGCOMM 2004).
//
// The method separates the space of link traffic measurements into a
// normal subspace capturing the predictable, network-wide structure
// (diurnal cycles, weekly patterns) and an anomalous subspace containing
// the residual. Volume anomalies — sudden traffic changes in an
// origin-destination (OD) flow — barely perturb total traffic but stand
// out sharply in the residual. The library performs the paper's three
// diagnosis steps:
//
//   - Detection: flag timesteps whose squared prediction error exceeds
//     the Q-statistic threshold (Jackson & Mudholkar).
//   - Identification: choose the OD flow whose routing-matrix direction
//     best explains the residual.
//   - Quantification: estimate the anomalous byte count.
//
// # Quick start
//
//	topo := netanomaly.Abilene()
//	cfg := netanomaly.DefaultTrafficConfig(42)
//	od, _ := netanomaly.GenerateTraffic(topo, cfg)   // or load real data
//	links := netanomaly.LinkLoads(topo, od)
//	diag, _ := netanomaly.NewDiagnoser(links, topo, netanomaly.Options{})
//	for _, a := range diag.DiagnoseSeries(links) {
//	    fmt.Printf("bin %d: flow %s, ~%.0f bytes\n",
//	        a.Bin, topo.FlowName(a.Flow), a.Bytes)
//	}
//
// # Streaming and the concurrent engine
//
// Section 7.1 of the paper frames the subspace method as a first-level
// online monitor. Two layers serve that deployment:
//
// OnlineDetector is the single-stream primitive: it tests each arriving
// measurement against a model fitted on a sliding window. The active
// model lives behind an atomic pointer, so Process is lock-free with
// respect to model fitting; when the refit interval elapses the O(m^3)
// refit runs in a background goroutine on a window snapshot and the new
// model is swapped in atomically. A failed refit keeps the previous
// model in force. ProcessBatch pushes a whole bins x links block through
// the batched low-rank SPE kernel (O(m*rank) per bin instead of O(m^2)).
//
// Monitor (internal/engine, surfaced as NewMonitor/AddView) is the
// scale-out layer: one detector shard per registered traffic view
// (topology, vantage point, customer network), measurement batches
// fanned across a worker pool. Batches within a view are processed
// strictly in ingest order — sequence numbers match arrival — while
// different views run concurrently; a refit in one view never stalls
// ingestion in any view. Use Monitor when tracking several topologies or
// feeding one high-rate stream in batches; use OnlineDetector directly
// for a simple bin-by-bin loop. IngestStream consumes a live measurement
// channel (StreamMatrix, or any collector producing LinkMeasurement)
// and keeps the batched hot path hot for bin-at-a-time sources.
//
// The engine is load-safe: WithMaxPending bounds each view's queue,
// WithOverloadPolicy picks what a full queue does (OverloadBlock
// backpressure through IngestStream to the collector, OverloadDropOldest
// freshness under DoS-style surges, OverloadError shedding), and
// WithAutoscale lets the worker pool grow and shrink with the observed
// backlog while per-view ordering is preserved across every resize.
// Monitor.Stats and Monitor.QueueStats report queue depth, drops and
// the pool's high-water mark; see the "Operating under load" section of
// docs/BACKENDS.md for policy selection and sizing guidance.
//
//	mon := netanomaly.NewMonitor(netanomaly.MonitorConfig{
//	    RefitEvery: 1008,
//	    OnAlarm: func(a netanomaly.MonitorAlarm) {
//	        log.Printf("%s: bin %d flow %d ~%.0f bytes", a.View, a.Seq, a.Flow, a.Bytes)
//	    },
//	})
//	_ = netanomaly.AddView(mon, "backbone", history, topo)
//	_ = mon.Ingest("backbone", batch) // asynchronous; Flush() to drain
//
// # Detector backends
//
// The paper's method is a family, not one detector, and every member
// streams behind the same ViewDetector interface (Seed / ProcessBatch /
// Refit / Stats), so one Monitor can mix backends freely. AddView
// selects the implementation per view; docs/BACKENDS.md is the full
// selection guide (cost models, what each kind localizes, seed
// requirements, tuning knobs):
//
//   - DetectorSubspace (default): the windowed subspace method above.
//     Pick it when you want the paper's exact semantics, per-bin flow
//     identification, and refit cost is acceptable (full SVD over the
//     window).
//   - DetectorIncremental (WithLambda, WithDriftTolerance): maintains a
//     running mean/covariance with forgetting factor lambda instead of
//     a raw window — batch updates are rank-1 and allocation-free, and
//     a rebuild solves only the m x m eigenproblem (about 5x cheaper
//     than the window SVD at m=120, see BenchmarkIncrementalRefit), so
//     it scales to large link counts and frequent refits. Lambda 1
//     reproduces the batch fit exactly (and flags the same bins as the
//     subspace backend on the same trace); 0.999 forgets with roughly a
//     one-week time constant at ten-minute bins — use it when traffic
//     drifts. WithDriftTolerance skips rebuild swaps while the residual
//     projector has moved less than the tolerance, exploiting the
//     paper's observation that P P^T is stable week to week.
//   - DetectorMultiscale (WithLevels): one subspace model per wavelet
//     scale (Section 7.3). Levels = 3 tests 2-, 4- and 8-bin features;
//     each extra level needs twice the history (links * 2^levels seed
//     bins minimum) and adds detection latency of up to 2^levels bins.
//     It catches sustained, slowly building anomalies that single-bin
//     detectors miss; alarms localize in time (Flow is -1), so pair it
//     with a subspace shard on the same view for identification.
//   - DetectorMultiFlow (WithMetrics, WithQuorum): one subspace model
//     per traffic metric — bytes, IP-flow counts, mean packet size
//     (Section 7.2) — over shared routing, with history and batches
//     column-stacked (DeriveLinkMetrics / StackMatrices). Quorum 1
//     (default) alarms when any metric flags a bin, which is what
//     catches port scans and small-flow DDoS that move flow counts
//     without moving bytes; raise the quorum to demand agreement and
//     suppress single-metric noise.
//   - DetectorEWMA / DetectorHoltWinters / DetectorFourier (WithAlpha,
//     WithBeta, WithThresholdK): the paper's temporal forecasting
//     baselines (Sections 6.2, 7.3), streaming. Each link is forecast
//     independently — incremental EWMA (alpha grid-searched at seed
//     when unset) or level+trend smoothing, or a sinusoid-basis fit
//     refit in the background on a window snapshot — and a link alarms
//     when its residual exceeds an adaptive threshold: mean + k*sigma
//     of its exponentially tracked residuals, re-estimated from the
//     retained window on every refit, so thresholds follow the traffic
//     level. Alarmed bins are withheld from forecaster state, which
//     suppresses the footnote-4 spike echo online. These are the
//     cheapest backends (no matrix pass for the smoothing kinds —
//     see BenchmarkForecastProcessBatch) and good per-link change
//     detectors, but they cannot identify the OD flow behind an alarm
//     (Diagnosis.Flow is -1) and their detection degrades as per-link
//     variability grows relative to anomaly size — the regime where
//     the subspace method's cross-link correlation wins (Section 7.3;
//     run examples/compare for the head-to-head on one scenario).
//   - DetectorHybrid (WithTriageKind, WithEscalation): the
//     triage→identification composition. A forecast stage sees every
//     bin at recursion cost and escalates alarmed bins to a windowed
//     subspace stage that attributes the responsible OD flow, so
//     steady-state cost is forecast-level (within ~1.1x on clean
//     streams, BenchmarkHybridThroughput) while alarms carry Flow and
//     Bytes. Escalation is immediate, confirm-after-n, or always
//     (subspace-grade detection, for measuring triage misses); the
//     subspace stage stays fresh via background re-seeds from the
//     hybrid's window of recent clean bins. This is the operating
//     point the paper's Section 6.2/7.3 trade points at: temporal
//     methods localize in time+link cheaply, the subspace method
//     identifies the flow — the hybrid does both.
//
// Everything is deterministic in the provided seeds and uses only the
// standard library. The subpackages under internal/ implement the
// substrates: dense linear algebra (internal/mat, with blocked and
// goroutine-parallel multiply kernels), network topology and routing
// (internal/topology), the traffic model (internal/traffic), the
// simulated measurement plane and the multi-metric backend
// (internal/netmeas), offline temporal baselines (internal/timeseries)
// and their streaming detector forms (internal/forecast), the
// subspace method, the ViewDetector contract and the incremental
// backend (internal/core), the wavelet transform and the multiscale
// backend (internal/wavelet), the concurrent streaming engine
// (internal/engine), and the paper's full evaluation (internal/eval,
// internal/experiments).
package netanomaly
