// Package netanomaly diagnoses network-wide traffic anomalies from link
// measurements using the PCA subspace method of Lakhina, Crovella and
// Diot, "Diagnosing Network-Wide Traffic Anomalies" (SIGCOMM 2004).
//
// The method separates the space of link traffic measurements into a
// normal subspace capturing the predictable, network-wide structure
// (diurnal cycles, weekly patterns) and an anomalous subspace containing
// the residual. Volume anomalies — sudden traffic changes in an
// origin-destination (OD) flow — barely perturb total traffic but stand
// out sharply in the residual. The library performs the paper's three
// diagnosis steps:
//
//   - Detection: flag timesteps whose squared prediction error exceeds
//     the Q-statistic threshold (Jackson & Mudholkar).
//   - Identification: choose the OD flow whose routing-matrix direction
//     best explains the residual.
//   - Quantification: estimate the anomalous byte count.
//
// # Quick start
//
//	topo := netanomaly.Abilene()
//	cfg := netanomaly.DefaultTrafficConfig(42)
//	od, _ := netanomaly.GenerateTraffic(topo, cfg)   // or load real data
//	links := netanomaly.LinkLoads(topo, od)
//	diag, _ := netanomaly.NewDiagnoser(links, topo, netanomaly.Options{})
//	for _, a := range diag.DiagnoseSeries(links) {
//	    fmt.Printf("bin %d: flow %s, ~%.0f bytes\n",
//	        a.Bin, topo.FlowName(a.Flow), a.Bytes)
//	}
//
// Everything is deterministic in the provided seeds and uses only the
// standard library. The subpackages under internal/ implement the
// substrates: dense linear algebra (internal/mat), network topology and
// routing (internal/topology), the traffic model (internal/traffic), the
// simulated measurement plane (internal/netmeas), temporal baselines
// (internal/timeseries), the subspace method itself (internal/core), and
// the paper's full evaluation (internal/eval, internal/experiments).
package netanomaly
