package netanomaly

import (
	"context"
	"io"
	"os"

	"netanomaly/internal/netmeas"
)

// ErrBinaryFormat is returned (wrapped) by the binary decoder when a
// stream is structurally invalid — bad magic, unsupported version, an
// impossible link count or a mis-sized frame; test with errors.Is.
// Truncation mid-header or mid-frame is reported as
// io.ErrUnexpectedEOF instead, so callers can tell a corrupt stream
// from one that was cut short.
var ErrBinaryFormat = netmeas.ErrBinaryFormat

// Codec identifies a v2 payload encoding: CodecRaw (LE float64) or
// CodecXOR (per-link XOR/delta compression for smooth traffic counts).
type Codec = netmeas.Codec

// Codec values for WireFormat and BinaryDecoder.Codec.
const (
	CodecRaw = netmeas.CodecRaw
	CodecXOR = netmeas.CodecXOR
)

// ParseCodec maps "raw" or "xor" to its Codec — for flag plumbing.
func ParseCodec(s string) (Codec, error) {
	return netmeas.ParseCodec(s)
}

// WireFormat selects the version, codec, and batch framing of an
// encoded binary stream (see the "Binary ingest" section of the
// README). The zero value is version 1: per-bin frames, raw payload.
type WireFormat = netmeas.WireFormat

// BinaryEncoder writes link-measurement bins in the compact binary
// wire format (see the "Binary ingest" section of the README): a
// 12-byte stream header carrying the link count, then length-prefixed
// frames — one bin per frame under v1, up to BatchBins bins per frame
// under v2, with the payload encoded by the negotiated codec. The
// encoder reuses internal buffers, so steady-state encoding does not
// allocate.
type BinaryEncoder = netmeas.BinaryEncoder

// NewBinaryEncoder writes the v1 stream header for links columns and
// returns an encoder for the frames.
func NewBinaryEncoder(w io.Writer, links int) (*BinaryEncoder, error) {
	return netmeas.NewBinaryEncoder(w, links)
}

// NewBinaryEncoderFormat writes the stream header for the requested
// wire format and returns an encoder for the frames. Under v2, call
// Flush after the last bin to emit the final short batch frame.
func NewBinaryEncoderFormat(w io.Writer, links int, format WireFormat) (*BinaryEncoder, error) {
	return netmeas.NewBinaryEncoderFormat(w, links, format)
}

// BinaryDecoder reads the binary wire format frame by frame into
// caller-provided buffers; the streaming consumer behind
// Monitor.IngestBinary. Decoding a frame performs no heap allocation.
type BinaryDecoder = netmeas.BinaryDecoder

// NewBinaryDecoder reads and validates the stream header.
func NewBinaryDecoder(r io.Reader) (*BinaryDecoder, error) {
	return netmeas.NewBinaryDecoder(r)
}

// WriteMatrixBinary writes a bins x links matrix as one v1 binary
// stream: header plus one frame per row. The binary format carries no
// column names — pair it with a topology, which defines the link order.
func WriteMatrixBinary(w io.Writer, m *Matrix) error {
	return netmeas.WriteMatrixBinary(w, m)
}

// WriteMatrixBinaryFormat writes the matrix as one binary stream in the
// requested wire format — version 2 with batch framing and a codec, or
// the v1 default. Every accepted (version, codec, capacity) choice has
// exactly one canonical serialization per matrix, and this writes it.
func WriteMatrixBinaryFormat(w io.Writer, m *Matrix, format WireFormat) error {
	return netmeas.WriteMatrixBinaryFormat(w, m, format)
}

// ReadMatrixBinary reads a complete binary stream into a matrix — the
// batch counterpart of the streaming BinaryDecoder.
func ReadMatrixBinary(r io.Reader) (*Matrix, error) {
	return netmeas.ReadMatrixBinary(r)
}

// SaveMatrixBinary writes the matrix to a file in the binary wire
// format.
func SaveMatrixBinary(path string, m *Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteMatrixBinary(f, m); err != nil {
		return err
	}
	return f.Close()
}

// LoadMatrixBinary reads a matrix from a binary-format file.
func LoadMatrixBinary(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadMatrixBinary(f)
}

// StreamBinary decodes a binary stream into LinkMeasurements on a
// channel — the wire-format counterpart of StreamMatrix, for feeding
// Monitor.IngestStream from a socket or pipe. The channel closes at
// end of stream, on a decode error, or when ctx is cancelled; call the
// returned function after the channel closes to learn whether the
// stream ended cleanly. For the allocation-free path into a Monitor,
// prefer Monitor.IngestBinary, which reuses pooled batch buffers
// instead of emitting one row copy per bin.
func StreamBinary(ctx context.Context, r io.Reader) (<-chan LinkMeasurement, func() error, error) {
	return netmeas.StreamBinary(ctx, r)
}
