// Command trafficgen generates a synthetic network-wide traffic dataset
// and writes the OD-flow and link-load matrices, optionally with
// injected volume anomalies (one "flow,bin,delta" triple per -anomaly
// flag). The link matrix is the input cmd/diagnose and cmd/ingestd
// consume; the OD CSV is ground truth for validation.
//
// With -metrics the link CSV additionally carries the Section 7.2
// metric series (IP-flow counts and mean packet size) column-stacked
// after the byte counts — the input cmd/diagnose consumes with
// -detector multiflow.
//
// -scenario composes a labeled attack scenario from the scenario
// library (beacon, scan, synflood, flashcrowd, exfil, lateral) onto
// the generated traffic: the injection starts at -scenario-start
// (default 1008, so the first week stays clean history for seeding
// detectors) and every labeled bin is echoed on the banner with its
// attributed flow — the ground truth an e2e check greps against.
//
// -format selects the link matrix encoding: csv (default) or binary,
// the compact wire format cmd/ingestd and diagnose -format binary
// consume (no column names; the topology defines the link order).
// Binary loads are rounded to whole bytes, matching what a real SNMP
// counter reports; the CSV path keeps the model's full precision.
// -batch-frames n upgrades the binary output to wire format v2 (n bins
// per batch frame) and -codec picks its payload encoding (raw or xor);
// -skip drops the leading bins, emitting the post-history tail of the
// same deterministic trace as a standalone stream. With -links - the
// link matrix goes to stdout and the banners to stderr, so a generator
// can feed an ingest server with no file in between:
//
//	trafficgen -topology abilene -seed 42 -bins 1008 \
//	    -anomaly 24,500,9e7 -od od.csv -links links.csv
//	trafficgen -format binary -links - | ingestd -stdin -history week.bin
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"netanomaly"
)

type anomalyFlags []netanomaly.Anomaly

func (a *anomalyFlags) String() string { return fmt.Sprint(*a) }

func (a *anomalyFlags) Set(s string) error {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return fmt.Errorf("anomaly %q: want flow,bin,delta", s)
	}
	flow, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("anomaly flow: %w", err)
	}
	bin, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("anomaly bin: %w", err)
	}
	delta, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return fmt.Errorf("anomaly delta: %w", err)
	}
	*a = append(*a, netanomaly.Anomaly{Flow: flow, Bin: bin, Delta: delta})
	return nil
}

func main() {
	var anomalies anomalyFlags
	topoName := flag.String("topology", "abilene", "abilene, sprint, or synthetic:<pops>:<edges>")
	seed := flag.Int64("seed", 1, "generator seed")
	bins := flag.Int("bins", 1008, "number of 10-minute bins")
	total := flag.Float64("total", 0, "network-wide mean bytes per bin (0 = default)")
	odPath := flag.String("od", "", "write OD-flow matrix CSV here (optional)")
	linksPath := flag.String("links", "links.csv", "write link-load matrix here (- for stdout)")
	format := flag.String("format", "csv", "link matrix encoding: csv or binary")
	codecName := flag.String("codec", "raw", "binary v2 payload codec: raw or xor (with -batch-frames)")
	batchFrames := flag.Int("batch-frames", 0, "binary wire format v2: bins per batch frame (0 = v1 per-bin frames)")
	skip := flag.Int("skip", 0, "drop the first n bins from the link matrix output (emit a post-history stream tail)")
	withMetrics := flag.Bool("metrics", false, "stack flow-count and packet-size metrics after the byte columns (for diagnose -detector multiflow)")
	scenarioName := flag.String("scenario", "", "compose a labeled attack scenario (beacon, scan, synflood, flashcrowd, exfil, lateral)")
	scenarioStart := flag.Int("scenario-start", 1008, "first attackable bin for -scenario; earlier bins stay clean history")
	flag.Var(&anomalies, "anomaly", "inject flow,bin,delta (repeatable)")
	flag.Parse()

	topo, err := parseTopology(*topoName, *seed)
	if err != nil {
		fatal(err)
	}
	cfg := netanomaly.DefaultTrafficConfig(*seed)
	cfg.Bins = *bins
	if *total > 0 {
		cfg.TotalMeanRate = *total
	}
	od, err := netanomaly.GenerateTraffic(topo, cfg)
	if err != nil {
		fatal(err)
	}
	netanomaly.InjectAnomalies(od, anomalies)
	var scenario *netanomaly.ScenarioResult
	if *scenarioName != "" {
		sc, err := netanomaly.ScenarioByName(*scenarioName)
		if err != nil {
			fatal(err)
		}
		if scenario, err = sc.Apply(topo, od, *scenarioStart, *seed); err != nil {
			fatal(err)
		}
		if len(scenario.FlowCountAnomalies) > 0 && !*withMetrics {
			fmt.Fprintf(os.Stderr, "trafficgen: note: the %s scenario injects only IP-flow counts; without -metrics the byte-only output carries no trace of it\n", *scenarioName)
		}
	}
	links := netanomaly.LinkLoads(topo, od)
	metricNote := ""
	if *withMetrics {
		ms, err := netanomaly.DeriveLinkMetrics(topo, od, netanomaly.LinkMetricConfig{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		if scenario != nil {
			for _, fa := range scenario.FlowCountAnomalies {
				ms.InjectFlowCountAnomaly(topo, fa.Flow, fa.Bin, fa.Extra)
			}
		}
		if links, err = ms.Stacked(); err != nil {
			fatal(err)
		}
		metricNote = " x 3 metrics (bytes, flows, pktsize)"
	}
	wire := netanomaly.WireFormat{}
	if *batchFrames > 0 {
		codec, err := netanomaly.ParseCodec(*codecName)
		if err != nil {
			fatal(err)
		}
		wire = netanomaly.WireFormat{Version: 2, Codec: codec, BatchBins: *batchFrames}
	} else if *codecName != "raw" {
		fatal(fmt.Errorf("-codec %s requires -batch-frames > 0 (the v1 format has no codec byte)", *codecName))
	}
	outBins := *bins
	if *skip > 0 {
		rows, cols := links.Dims()
		if *skip >= rows {
			fatal(fmt.Errorf("-skip %d drops the whole %d-bin matrix", *skip, rows))
		}
		links = netanomaly.NewMatrix(rows-*skip, cols, links.RawData()[*skip*cols:])
		outBins = rows - *skip
	}

	// With the link matrix on stdout the banners move to stderr, so a
	// pipe into ingestd carries only the measurement stream.
	banner := os.Stdout
	if *linksPath == "-" {
		banner = os.Stderr
	}
	if *odPath != "" {
		names := make([]string, topo.NumFlows())
		for f := range names {
			names[f] = topo.FlowName(f)
		}
		if err := netanomaly.SaveMatrixCSV(*odPath, od, names); err != nil {
			fatal(err)
		}
		fmt.Fprintf(banner, "wrote %d x %d OD matrix to %s\n", *bins, topo.NumFlows(), *odPath)
	}
	linkNames := make([]string, topo.NumLinks())
	pops := topo.PoPs()
	for i, l := range topo.Links() {
		linkNames[i] = pops[l.Src].Name + "-" + pops[l.Dst].Name
	}
	if *withMetrics {
		stacked := make([]string, 0, 3*len(linkNames))
		for _, metric := range []string{"bytes", "flows", "pktsize"} {
			for _, ln := range linkNames {
				stacked = append(stacked, metric+":"+ln)
			}
		}
		linkNames = stacked
	}
	switch *format {
	case "csv":
		if *linksPath == "-" {
			err = netanomaly.WriteMatrixCSV(os.Stdout, links, linkNames)
		} else {
			err = netanomaly.SaveMatrixCSV(*linksPath, links, linkNames)
		}
	case "binary":
		// Counters on the wire are integral: an SNMP byte count is a
		// whole number of bytes, and the generator's continuous loads
		// only look non-integral because the model is. Quantizing here
		// matches what a real collector emits and is what lets the xor
		// codec reach its compression target — integral counts share
		// ~28 trailing zero mantissa bits, full-precision noise shares
		// none.
		raw := links.RawData()
		for i, v := range raw {
			raw[i] = math.Round(v)
		}
		if *linksPath == "-" {
			err = netanomaly.WriteMatrixBinaryFormat(os.Stdout, links, wire)
		} else {
			err = saveBinary(*linksPath, links, wire)
		}
	default:
		err = fmt.Errorf("unknown -format %q: want csv or binary", *format)
	}
	if err != nil {
		fatal(err)
	}
	// The seed is echoed so a logged run can be regenerated bin for bin:
	// generation is deterministic in -seed (pinned by
	// internal/traffic's reproducibility tests).
	formatNote := *format
	if *batchFrames > 0 {
		formatNote = fmt.Sprintf("%s v2 %s x%d", *format, wire.Codec, wire.BatchBins)
	}
	fmt.Fprintf(banner, "wrote %d x %d link matrix%s (%s) to %s (%s: %d PoPs, %d links, %d flows; seed %d)\n",
		outBins, topo.NumLinks(), metricNote, formatNote, *linksPath, topo.Name(), topo.NumPoPs(), topo.NumLinks(), topo.NumFlows(), *seed)
	for _, a := range anomalies {
		fmt.Fprintf(banner, "injected %.3g bytes into flow %s at bin %d\n", a.Delta, topo.FlowName(a.Flow), a.Bin)
	}
	if scenario != nil {
		names := make([]string, len(scenario.AffectedFlows))
		for i, f := range scenario.AffectedFlows {
			names[i] = topo.FlowName(f)
		}
		fmt.Fprintf(banner, "scenario %s from bin %d: %d labeled bins, %d flow-count injections, flows %s\n",
			*scenarioName, *scenarioStart, len(scenario.Truth), len(scenario.FlowCountAnomalies), strings.Join(names, " "))
		for _, tb := range scenario.Truth {
			flow := "-"
			if tb.Flow >= 0 {
				flow = topo.FlowName(tb.Flow)
			}
			fmt.Fprintf(banner, "scenario truth bin %d: %s\n", tb.Bin, flow)
		}
	}
}

func parseTopology(name string, seed int64) (*netanomaly.Topology, error) {
	switch {
	case name == "abilene":
		return netanomaly.Abilene(), nil
	case name == "sprint":
		return netanomaly.SprintEurope(), nil
	case strings.HasPrefix(name, "synthetic:"):
		parts := strings.Split(name, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("synthetic topology: want synthetic:<pops>:<edges>")
		}
		pops, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		edges, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, err
		}
		return netanomaly.SyntheticTopology(pops, edges, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func saveBinary(path string, m *netanomaly.Matrix, wire netanomaly.WireFormat) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := netanomaly.WriteMatrixBinaryFormat(f, m, wire); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trafficgen:", err)
	os.Exit(1)
}
