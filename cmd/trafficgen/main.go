// Command trafficgen generates a synthetic network-wide traffic dataset
// and writes the OD-flow and link-load matrices as CSV, optionally with
// injected volume anomalies (one "flow,bin,delta" triple per -anomaly
// flag). The link CSV is the input cmd/diagnose consumes; the OD CSV is
// ground truth for validation.
//
// With -metrics the link CSV additionally carries the Section 7.2
// metric series (IP-flow counts and mean packet size) column-stacked
// after the byte counts — the input cmd/diagnose consumes with
// -detector multiflow.
//
//	trafficgen -topology abilene -seed 42 -bins 1008 \
//	    -anomaly 24,500,9e7 -od od.csv -links links.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"netanomaly"
)

type anomalyFlags []netanomaly.Anomaly

func (a *anomalyFlags) String() string { return fmt.Sprint(*a) }

func (a *anomalyFlags) Set(s string) error {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return fmt.Errorf("anomaly %q: want flow,bin,delta", s)
	}
	flow, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("anomaly flow: %w", err)
	}
	bin, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("anomaly bin: %w", err)
	}
	delta, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return fmt.Errorf("anomaly delta: %w", err)
	}
	*a = append(*a, netanomaly.Anomaly{Flow: flow, Bin: bin, Delta: delta})
	return nil
}

func main() {
	var anomalies anomalyFlags
	topoName := flag.String("topology", "abilene", "abilene, sprint, or synthetic:<pops>:<edges>")
	seed := flag.Int64("seed", 1, "generator seed")
	bins := flag.Int("bins", 1008, "number of 10-minute bins")
	total := flag.Float64("total", 0, "network-wide mean bytes per bin (0 = default)")
	odPath := flag.String("od", "", "write OD-flow matrix CSV here (optional)")
	linksPath := flag.String("links", "links.csv", "write link-load matrix CSV here")
	withMetrics := flag.Bool("metrics", false, "stack flow-count and packet-size metrics after the byte columns (for diagnose -detector multiflow)")
	flag.Var(&anomalies, "anomaly", "inject flow,bin,delta (repeatable)")
	flag.Parse()

	topo, err := parseTopology(*topoName, *seed)
	if err != nil {
		fatal(err)
	}
	cfg := netanomaly.DefaultTrafficConfig(*seed)
	cfg.Bins = *bins
	if *total > 0 {
		cfg.TotalMeanRate = *total
	}
	od, err := netanomaly.GenerateTraffic(topo, cfg)
	if err != nil {
		fatal(err)
	}
	netanomaly.InjectAnomalies(od, anomalies)
	links := netanomaly.LinkLoads(topo, od)
	metricNote := ""
	if *withMetrics {
		ms, err := netanomaly.DeriveLinkMetrics(topo, od, netanomaly.LinkMetricConfig{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		if links, err = ms.Stacked(); err != nil {
			fatal(err)
		}
		metricNote = " x 3 metrics (bytes, flows, pktsize)"
	}

	if *odPath != "" {
		names := make([]string, topo.NumFlows())
		for f := range names {
			names[f] = topo.FlowName(f)
		}
		if err := netanomaly.SaveMatrixCSV(*odPath, od, names); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d x %d OD matrix to %s\n", *bins, topo.NumFlows(), *odPath)
	}
	linkNames := make([]string, topo.NumLinks())
	pops := topo.PoPs()
	for i, l := range topo.Links() {
		linkNames[i] = pops[l.Src].Name + "-" + pops[l.Dst].Name
	}
	if *withMetrics {
		stacked := make([]string, 0, 3*len(linkNames))
		for _, metric := range []string{"bytes", "flows", "pktsize"} {
			for _, ln := range linkNames {
				stacked = append(stacked, metric+":"+ln)
			}
		}
		linkNames = stacked
	}
	if err := netanomaly.SaveMatrixCSV(*linksPath, links, linkNames); err != nil {
		fatal(err)
	}
	// The seed is echoed so a logged run can be regenerated bin for bin:
	// generation is deterministic in -seed (pinned by
	// internal/traffic's reproducibility tests).
	fmt.Printf("wrote %d x %d link matrix%s to %s (%s: %d PoPs, %d links, %d flows; seed %d)\n",
		*bins, topo.NumLinks(), metricNote, *linksPath, topo.Name(), topo.NumPoPs(), topo.NumLinks(), topo.NumFlows(), *seed)
	for _, a := range anomalies {
		fmt.Printf("injected %.3g bytes into flow %s at bin %d\n", a.Delta, topo.FlowName(a.Flow), a.Bin)
	}
}

func parseTopology(name string, seed int64) (*netanomaly.Topology, error) {
	switch {
	case name == "abilene":
		return netanomaly.Abilene(), nil
	case name == "sprint":
		return netanomaly.SprintEurope(), nil
	case strings.HasPrefix(name, "synthetic:"):
		parts := strings.Split(name, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("synthetic topology: want synthetic:<pops>:<edges>")
		}
		pops, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		edges, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, err
		}
		return netanomaly.SyntheticTopology(pops, edges, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trafficgen:", err)
	os.Exit(1)
}
