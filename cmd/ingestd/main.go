// Command ingestd is the network-facing ingest server: it seeds a
// streaming Monitor shard from a history file, then accepts the binary
// wire format (see the "Binary ingest" section of the README) over TCP
// connections, a unix socket, and/or stdin, fanning every stream into
// the shard and printing alarms as workers raise them. Decoding goes
// through the pooled zero-allocation path (Monitor.IngestBinary), so
// steady-state ingest does not allocate per bin.
//
// Each connection is one binary stream: header, then frames until the
// peer closes. Streams from concurrent connections interleave at batch
// granularity into the same view; sequence numbers count from the first
// bin the server ingests. The server exits on SIGINT/SIGTERM, after
// -conns connections when set, or when stdin drains under -stdin with
// no listeners configured.
//
//	trafficgen -bins 1008 -format binary -links week.bin
//	trafficgen -bins 288 -format binary -links - -anomaly 24,60,9e7 |
//	    ingestd -history week.bin -stdin -listen ""
//	ingestd -history week.bin -listen 127.0.0.1:7600 -socket /tmp/na.sock \
//	    -detector sketch -sketch-size 16
//
// The history file may be CSV (as written by trafficgen) or binary;
// the format is sniffed from the leading magic bytes. Wire-format
// versions are sniffed per stream: v1 per-bin frames and v2 batch
// frames (raw or xor codec) can arrive on concurrent connections of
// one server. -codec restricts which codecs are accepted (any, raw,
// or xor; a v1 stream counts as raw). -detector selects the shard
// backend; with -metrics n the wire is read as n column-stacked metric
// blocks per bin (the trafficgen -metrics layout), which is what the
// multiflow backend needs to see scans that never move byte counts.
//
// With -incidents the alarm stream feeds the incident correlation
// stage instead of printing per-bin lines: one "incident #N open" line
// when a sustained anomaly starts and one "incident #N closed" line
// with the merged span, peak SPE and severity when its quiet period
// expires. Incident state rides in the -checkpoint file (an envelope
// concatenated after the monitor's), so a warm restart resumes open
// incidents without re-announcing them.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"netanomaly"
)

func main() {
	topoName := flag.String("topology", "abilene", "abilene, sprint, or synthetic:<pops>:<edges>:<seed>")
	historyPath := flag.String("history", "", "link-load matrix that seeds the model (CSV or binary, sniffed; required)")
	listenAddr := flag.String("listen", "127.0.0.1:7600", "TCP listen address (empty to disable)")
	socketPath := flag.String("socket", "", "unix socket path (empty to disable)")
	useStdin := flag.Bool("stdin", false, "also ingest one binary stream from stdin")
	conns := flag.Int("conns", 0, "exit after this many connections (0 = serve until signalled)")
	detector := flag.String("detector", "subspace", "shard backend: subspace, incremental, sketch, multiscale, ewma, holtwinters, fourier, or hybrid")
	sketchSize := flag.Int("sketch-size", 0, "sketch: Frequent-Directions rows (0 = 4x model rank)")
	lambda := flag.Float64("lambda", 1, "incremental: covariance forgetting factor in (0,1]")
	driftTol := flag.Float64("drift-tol", 0, "incremental/sketch: min residual drift before a rebuild swaps in")
	confidence := flag.Float64("confidence", 0.999, "detection confidence level")
	rank := flag.Int("rank", 0, "fixed normal-subspace rank (0 = 3-sigma rule)")
	batchSize := flag.Int("batch", 64, "bins per dispatched batch")
	refitEvery := flag.Int("refit", 0, "background-refit interval in bins (0 = never)")
	maxPending := flag.Int("max-pending", 0, "bound on queued unprocessed bins (0 = unbounded)")
	overload := flag.String("overload", "block", "full-queue policy: block, dropoldest, or error")
	codecPolicy := flag.String("codec", "any", "accept streams with this codec: any, raw, or xor (v1 streams count as raw)")
	metricsN := flag.Int("metrics", 1, "column-stacked metrics per bin on the wire (match trafficgen -metrics; required >1 for -detector multiflow)")
	incidents := flag.Bool("incidents", false, "correlate alarms into incidents and print open/closed incident lines instead of per-bin alarms")
	quietPeriod := flag.Int("quiet-period", 0, "incident quiet period in bins: alarms gapped closer merge, incidents close after it (0 = default 8)")
	checkpointDir := flag.String("checkpoint", "", "directory for warm-restart checkpoints: load on start, write on drain (empty = off)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "also checkpoint after every n newly processed bins (0 = only at drain)")
	flag.Parse()

	switch *codecPolicy {
	case "any", "raw", "xor":
	default:
		fatal(fmt.Errorf("-codec %q: want any, raw, or xor", *codecPolicy))
	}

	if *historyPath == "" {
		fatal(errors.New("-history is required: the model must be seeded before streams arrive"))
	}
	if *listenAddr == "" && *socketPath == "" && !*useStdin {
		fatal(errors.New("nothing to ingest: set -listen, -socket, or -stdin"))
	}
	topo, err := parseTopology(*topoName)
	if err != nil {
		fatal(err)
	}
	history, err := loadMatrixSniffed(*historyPath)
	if err != nil {
		fatal(err)
	}
	kind := netanomaly.DetectorKind(*detector)
	viewOpts := []netanomaly.ViewOption{netanomaly.WithDetector(kind)}
	switch kind {
	case netanomaly.DetectorSubspace, netanomaly.DetectorMultiscale,
		netanomaly.DetectorEWMA, netanomaly.DetectorHoltWinters,
		netanomaly.DetectorFourier, netanomaly.DetectorHybrid:
	case netanomaly.DetectorIncremental:
		viewOpts = append(viewOpts, netanomaly.WithLambda(*lambda), netanomaly.WithDriftTolerance(*driftTol))
	case netanomaly.DetectorSketch:
		viewOpts = append(viewOpts, netanomaly.WithSketchSize(*sketchSize), netanomaly.WithDriftTolerance(*driftTol))
	case netanomaly.DetectorMultiFlow:
		// The multi-metric backend wants bins x (metrics x links)
		// columns; the NAMB decoder is width-agnostic, so a stacked
		// stream flows through unchanged once -metrics declares how many
		// blocks the columns carry.
		if *metricsN < 2 {
			fatal(errors.New("-detector multiflow needs -metrics > 1: the wire must carry column-stacked metric blocks (see trafficgen -metrics)"))
		}
		viewOpts = append(viewOpts, netanomaly.WithMetrics(metricNames(*metricsN)...))
	default:
		fatal(fmt.Errorf("unknown -detector %q", kind))
	}
	if kind != netanomaly.DetectorMultiFlow && *metricsN != 1 {
		fatal(fmt.Errorf("-metrics %d: only -detector multiflow consumes stacked metric streams", *metricsN))
	}
	policy, err := netanomaly.ParseOverloadPolicy(*overload)
	if err != nil {
		fatal(err)
	}

	// With -incidents the correlation stage sits in the alarm callback:
	// raw alarms feed the correlator and the printed lines are incident
	// transitions, one per root-caused anomaly instead of one per bin.
	var corr *netanomaly.Correlator
	if *incidents {
		corr = netanomaly.NewCorrelator(
			netanomaly.WithQuietPeriod(*quietPeriod),
			netanomaly.WithIncidentCallback(func(e netanomaly.IncidentEvent) {
				printIncident(topo, e)
			}),
		)
	}
	var alarmMu sync.Mutex
	alarms := 0
	monCfg := netanomaly.MonitorConfig{
		BatchSize:  *batchSize,
		RefitEvery: *refitEvery,
		Options:    netanomaly.Options{Confidence: *confidence, Rank: *rank},
		OnAlarm: func(a netanomaly.MonitorAlarm) {
			alarmMu.Lock()
			defer alarmMu.Unlock()
			alarms++
			if corr != nil {
				corr.Observe(a.View, a.Alarm)
				return
			}
			flow := "-"
			if a.Flow >= 0 {
				flow = topo.FlowName(a.Flow)
			}
			fmt.Printf("alarm bin %d: SPE %.4g > %.4g, flow %s, %.4g bytes\n",
				a.Seq, a.SPE, a.Threshold, flow, a.Bytes)
		},
	}
	monOpts := []netanomaly.MonitorOption{netanomaly.WithMaxPending(*maxPending), netanomaly.WithOverloadPolicy(policy)}
	const view = "net"

	// With -checkpoint, an existing checkpoint file warm-starts the
	// monitor — the detector resumes mid-stream with its accumulated
	// window, model and sequence numbering — and the same file is
	// rewritten (atomically, via rename) at drain and, with
	// -checkpoint-every, periodically as bins are processed.
	ckptFile := ""
	if *checkpointDir != "" {
		ckptFile = filepath.Join(*checkpointDir, "checkpoint.nams")
	}
	var mon *netanomaly.Monitor
	restored := false
	restoredIncidents := false
	if ckptFile != "" {
		if f, err := os.Open(ckptFile); err == nil {
			spec := netanomaly.ViewSpec{Name: view, History: history, Topo: topo, Options: viewOpts}
			mon, err = netanomaly.Restore(monCfg, f, []netanomaly.ViewSpec{spec}, monOpts...)
			if err != nil {
				f.Close()
				fatal(fmt.Errorf("restore %s: %w", ckptFile, err))
			}
			// The monitor envelope self-delimits; the correlator's
			// "incidents" envelope, when the checkpoint carries one, is
			// concatenated after it. Restoring it is what keeps a warm
			// restart from re-opening (and re-announcing) incidents that
			// were already open at the kill.
			if corr != nil {
				var peek [1]byte
				if _, err := io.ReadFull(f, peek[:]); err == nil {
					rest := io.MultiReader(bytes.NewReader(peek[:]), f)
					if err := corr.Restore(rest); err != nil {
						f.Close()
						fatal(fmt.Errorf("restore incidents from %s: %w", ckptFile, err))
					}
					restoredIncidents = true
				} else if err != io.EOF {
					f.Close()
					fatal(err)
				}
			}
			f.Close()
			restored = true
		} else if !errors.Is(err, os.ErrNotExist) {
			fatal(err)
		}
	}
	if mon == nil {
		mon = netanomaly.NewMonitor(monCfg, monOpts...)
		if err := netanomaly.AddView(mon, view, history, topo, viewOpts...); err != nil {
			fatal(err)
		}
	}
	stats, err := mon.ViewStats(view)
	if err != nil {
		fatal(err)
	}
	if restored {
		fmt.Printf("ingestd: %s model restored from %s at bin %d (%s: %d links, rank %d)\n",
			stats.Backend, ckptFile, stats.Processed, topo.Name(), stats.Links, stats.Rank)
		if restoredIncidents {
			fmt.Printf("ingestd: incident state restored: %d open\n", corr.Stats().Open)
		}
	} else {
		fmt.Printf("ingestd: %s model seeded on %d bins (%s: %d links, rank %d)\n",
			stats.Backend, history.Rows(), topo.Name(), stats.Links, stats.Rank)
	}

	// The periodic checkpointer polls processed-bin progress and rewrites
	// the checkpoint whenever at least -checkpoint-every new bins have
	// been processed since the last write. Checkpoint quiesces the view
	// at the next idle instant between batches, so a write never splits
	// a batch.
	stopCkpt := make(chan struct{})
	var ckptWG sync.WaitGroup
	// The incident clock advances with processed bins, not just observed
	// alarms, so open incidents close a quiet period after their last
	// alarm even while the stream stays healthy.
	if corr != nil {
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			t := time.NewTicker(500 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-stopCkpt:
					return
				case <-t.C:
					if vs, err := mon.ViewStats(view); err == nil && vs.Processed > 0 {
						corr.Advance(vs.Processed - 1)
					}
				}
			}
		}()
	}
	if ckptFile != "" && *checkpointEvery > 0 {
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			last := stats.Processed
			t := time.NewTicker(500 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-stopCkpt:
					return
				case <-t.C:
					vs, err := mon.ViewStats(view)
					if err != nil || vs.Processed-last < *checkpointEvery {
						continue
					}
					if err := writeCheckpoint(mon, corr, ckptFile); err != nil {
						fmt.Fprintln(os.Stderr, "ingestd: checkpoint:", err)
						continue
					}
					last = vs.Processed
					fmt.Printf("ingestd: checkpoint written at bin %d\n", vs.Processed)
				}
			}
		}()
	}

	// Every stream source funnels into serve; the WaitGroup holds the
	// final stats back until in-flight connections finish.
	var wg sync.WaitGroup
	var served atomic.Int64
	serve := func(name string, r io.Reader) {
		defer wg.Done()
		dec, err := netanomaly.NewBinaryDecoder(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ingestd: %s: %v\n", name, err)
			return
		}
		// Negotiation on accept: the header declares the stream's codec
		// (v1 has none and counts as raw); a -codec policy other than
		// "any" refuses mismatched streams before decoding a frame.
		if *codecPolicy != "any" && dec.Codec().String() != *codecPolicy {
			fmt.Fprintf(os.Stderr, "ingestd: %s: stream codec %s refused (-codec %s)\n", name, dec.Codec(), *codecPolicy)
			return
		}
		desc := fmt.Sprintf("v%d %s", dec.Version(), dec.Codec())
		if dec.Version() == 2 {
			desc = fmt.Sprintf("%s x%d", desc, dec.BatchBins())
		}
		before, _ := mon.QueueStats(view)
		if err := mon.IngestBinary(view, dec); err != nil {
			fmt.Fprintf(os.Stderr, "ingestd: %s: %v\n", name, err)
			return
		}
		after, _ := mon.QueueStats(view)
		fmt.Printf("ingestd: %s: stream done (%s), %d bins enqueued\n", name, desc, after.EnqueuedBins-before.EnqueuedBins)
	}

	// done closes when the configured connection budget is spent; the
	// signal handler below closes the listeners either way.
	done := make(chan struct{})
	var doneOnce sync.Once
	finish := func() { doneOnce.Do(func() { close(done) }) }
	connDone := func() {
		if n := served.Add(1); *conns > 0 && n >= int64(*conns) {
			finish()
		}
	}

	var listeners []net.Listener
	addListener := func(network, addr string) {
		ln, err := net.Listen(network, addr)
		if err != nil {
			fatal(err)
		}
		listeners = append(listeners, ln)
		fmt.Printf("ingestd: listening on %s %s\n", network, ln.Addr())
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return // listener closed on shutdown
				}
				wg.Add(1)
				go func() {
					defer conn.Close()
					serve(conn.RemoteAddr().Network()+":"+conn.RemoteAddr().String(), conn)
					connDone()
				}()
			}
		}()
	}
	if *listenAddr != "" {
		addListener("tcp", *listenAddr)
	}
	if *socketPath != "" {
		os.Remove(*socketPath) // a stale socket from a previous run blocks bind
		addListener("unix", *socketPath)
	}
	if *useStdin {
		wg.Add(1)
		go func() {
			serve("stdin", os.Stdin)
			connDone()
			if len(listeners) == 0 && *conns == 0 {
				// Pipe mode: nothing else can ever arrive.
				finish()
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Println("ingestd: signal received, draining")
	case <-done:
	}
	for _, ln := range listeners {
		ln.Close()
	}
	if *socketPath != "" {
		os.Remove(*socketPath)
	}
	wg.Wait()
	close(stopCkpt)
	ckptWG.Wait()
	mon.Close()
	if corr != nil {
		// Close whatever the quiet period has already expired on; what
		// is still open either persists in the checkpoint below or is
		// flushed once no checkpoint will carry it.
		if vs, err := mon.ViewStats(view); err == nil && vs.Processed > 0 {
			corr.Advance(vs.Processed - 1)
		}
	}
	// Close drained every queue, which is exactly the quiesced state the
	// final checkpoint wants: the next start resumes from the last bin
	// this process handed to a detector.
	if ckptFile != "" {
		if err := writeCheckpoint(mon, corr, ckptFile); err != nil {
			fmt.Fprintln(os.Stderr, "ingestd: final checkpoint:", err)
		} else {
			fmt.Printf("ingestd: checkpoint written to %s\n", ckptFile)
		}
	}
	if corr != nil && ckptFile == "" {
		// No checkpoint will resume these: the stream has ended for
		// good, so the remaining open incidents close now.
		corr.Flush()
	}
	failed := false
	for _, err := range mon.Errs() {
		fmt.Fprintln(os.Stderr, "ingestd:", err)
		failed = true
	}
	vs, err := mon.ViewStats(view)
	if err != nil {
		fatal(err)
	}
	// Per-view queue accounting at drain: with the processed-bin line
	// below it makes a restart or migration reconcilable from logs alone
	// (EnqueuedBins - DroppedBins == Processed at quiescence).
	for _, v := range mon.Views() {
		qs, err := mon.QueueStats(v)
		if err != nil {
			continue
		}
		fmt.Printf("ingestd: view %q queue: depth high-water %d bins, enqueued %d, dropped %d bins (%d batches), rejected %d\n",
			v, qs.DepthHighWater, qs.EnqueuedBins, qs.DroppedBins, qs.DroppedBatches, qs.RejectedBins)
	}
	ms := mon.Stats()
	fmt.Printf("ingestd: %d streams, %d bins processed, %d alarms, %d refits; dropped %d bins, rejected %d\n",
		served.Load(), vs.Processed, alarms, vs.Refits, ms.DroppedBins, ms.RejectedBins)
	if corr != nil {
		is := corr.Stats()
		fmt.Printf("ingestd: incidents: %d opened, %d closed, %d still open; %d alarms merged, %d evicted\n",
			is.Opened, is.Closed, is.Open, is.Merged, is.Evicted)
	}
	if failed {
		os.Exit(1)
	}
}

// writeCheckpoint writes the monitor checkpoint — followed, when the
// incident layer is on, by the correlator's own envelope (NAMS
// envelopes self-delimit, so the two concatenate in one file) — next to
// its final path and renames it into place, so a crash mid-write leaves
// the previous checkpoint intact and a reader never sees a torn file.
func writeCheckpoint(mon *netanomaly.Monitor, corr *netanomaly.Correlator, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".checkpoint-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := mon.Checkpoint(tmp); err != nil {
		tmp.Close()
		return err
	}
	if corr != nil {
		if err := corr.Snapshot(tmp); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// printIncident renders one incident transition; update events are
// deliberately silent — the whole point of the layer is one line when
// an incident opens and one when it resolves.
func printIncident(topo *netanomaly.Topology, e netanomaly.IncidentEvent) {
	inc := e.Incident
	what := fmt.Sprintf("view %s (unattributed)", inc.Key.Region)
	if inc.Key.Flow >= 0 {
		what = "flow " + topo.FlowName(inc.Key.Flow)
	}
	switch e.Type {
	case netanomaly.IncidentOpened:
		fmt.Printf("incident #%d open: %s, start bin %d, SPE %.4g\n",
			inc.ID, what, inc.StartSeq, inc.PeakSPE)
	case netanomaly.IncidentClosed:
		fmt.Printf("incident #%d closed: %s, bins %d..%d, peak SPE %.4g, %.4g bytes, %d alarms, %d views, severity %.4g\n",
			inc.ID, what, inc.StartSeq, inc.EndSeq, inc.PeakSPE, inc.Bytes,
			inc.Alarms, len(inc.Views), inc.Severity())
	}
}

// loadMatrixSniffed reads a link matrix in either supported encoding,
// deciding by the binary magic bytes rather than a flag or extension.
func loadMatrixSniffed(path string) (*netanomaly.Matrix, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) >= 4 && string(data[:4]) == "NAMB" {
		return netanomaly.ReadMatrixBinary(bytes.NewReader(data))
	}
	m, _, err := netanomaly.ReadMatrixCSV(bytes.NewReader(data))
	return m, err
}

func parseTopology(name string) (*netanomaly.Topology, error) {
	switch {
	case name == "abilene":
		return netanomaly.Abilene(), nil
	case name == "sprint":
		return netanomaly.SprintEurope(), nil
	case strings.HasPrefix(name, "synthetic:"):
		parts := strings.Split(name, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("synthetic topology: want synthetic:<pops>:<edges>:<seed>")
		}
		var pops, edges int
		var seed int64
		if _, err := fmt.Sscanf(parts[1]+" "+parts[2]+" "+parts[3], "%d %d %d", &pops, &edges, &seed); err != nil {
			return nil, fmt.Errorf("synthetic topology %q: %w", name, err)
		}
		return netanomaly.SyntheticTopology(pops, edges, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

// metricNames labels n stacked metric blocks: the canonical Section 7.2
// triple when n is 3 (the trafficgen -metrics layout), generic labels
// otherwise.
func metricNames(n int) []string {
	if n == 3 {
		return []string{"bytes", "flows", "pktsize"}
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("metric%d", i)
	}
	return names
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ingestd:", err)
	os.Exit(1)
}
