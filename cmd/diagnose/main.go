// Command diagnose runs the subspace method on a link-load CSV (as
// written by cmd/trafficgen, or exported from an SNMP collector) and
// prints every diagnosed volume anomaly: when it happened, the OD flow
// responsible, and the estimated byte count.
//
//	diagnose -topology abilene -links links.csv -confidence 0.999
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"netanomaly"
)

func main() {
	topoName := flag.String("topology", "abilene", "abilene, sprint, or synthetic:<pops>:<edges>:<seed>")
	linksPath := flag.String("links", "links.csv", "link-load matrix CSV")
	confidence := flag.Float64("confidence", 0.999, "detection confidence level")
	rank := flag.Int("rank", 0, "fixed normal-subspace rank (0 = 3-sigma rule)")
	flag.Parse()

	topo, err := parseTopology(*topoName)
	if err != nil {
		fatal(err)
	}
	links, _, err := netanomaly.LoadMatrixCSV(*linksPath)
	if err != nil {
		fatal(err)
	}
	diag, err := netanomaly.NewDiagnoser(links, topo, netanomaly.Options{
		Confidence: *confidence,
		Rank:       *rank,
	})
	if err != nil {
		fatal(err)
	}
	model := diag.Detector().Model()
	fmt.Printf("model: %d links, normal subspace rank %d, SPE limit %.4g at %.2f%%\n",
		model.NumLinks(), model.Rank(), diag.Detector().Limit(), 100*diag.Detector().Confidence())
	results := diag.DiagnoseSeries(links)
	if len(results) == 0 {
		fmt.Println("no anomalies detected")
		return
	}
	fmt.Printf("%6s %14s %14s %-16s %14s\n", "bin", "SPE", "threshold", "flow", "bytes")
	for _, r := range results {
		fmt.Printf("%6d %14.4g %14.4g %-16s %14.4g\n",
			r.Bin, r.SPE, r.Threshold, topo.FlowName(r.Flow), r.Bytes)
	}
	fmt.Printf("%d anomalies over %d bins\n", len(results), links.Rows())
}

func parseTopology(name string) (*netanomaly.Topology, error) {
	switch {
	case name == "abilene":
		return netanomaly.Abilene(), nil
	case name == "sprint":
		return netanomaly.SprintEurope(), nil
	case strings.HasPrefix(name, "synthetic:"):
		parts := strings.Split(name, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("synthetic topology: want synthetic:<pops>:<edges>:<seed>")
		}
		pops, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		edges, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, err
		}
		seed, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return nil, err
		}
		return netanomaly.SyntheticTopology(pops, edges, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diagnose:", err)
	os.Exit(1)
}
