// Command diagnose runs the subspace method on a link-load CSV (as
// written by cmd/trafficgen, or exported from an SNMP collector) and
// prints every diagnosed volume anomaly: when it happened, the OD flow
// responsible, and the estimated byte count.
//
//	diagnose -topology abilene -links links.csv -confidence 0.999
//
// With -stream the command runs the concurrent engine instead of a
// one-shot fit: the first -history bins seed the model, the remaining
// bins are ingested in -batch sized blocks through a streaming Monitor
// shard, alarms print as they are raised, and the model refits in the
// background every -refit bins without stalling ingestion.
//
//	diagnose -topology abilene -links links.csv -stream -history 1008 -refit 288
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"netanomaly"
)

func main() {
	topoName := flag.String("topology", "abilene", "abilene, sprint, or synthetic:<pops>:<edges>:<seed>")
	linksPath := flag.String("links", "links.csv", "link-load matrix CSV")
	confidence := flag.Float64("confidence", 0.999, "detection confidence level")
	rank := flag.Int("rank", 0, "fixed normal-subspace rank (0 = 3-sigma rule)")
	stream := flag.Bool("stream", false, "stream bins through the concurrent engine instead of a one-shot fit")
	historyBins := flag.Int("history", 1008, "streaming: bins that seed the model (the paper's week is 1008)")
	batchSize := flag.Int("batch", 64, "streaming: bins per ingested batch")
	refitEvery := flag.Int("refit", 0, "streaming: background-refit interval in bins (0 = never)")
	flag.Parse()

	topo, err := parseTopology(*topoName)
	if err != nil {
		fatal(err)
	}
	links, _, err := netanomaly.LoadMatrixCSV(*linksPath)
	if err != nil {
		fatal(err)
	}
	opts := netanomaly.Options{Confidence: *confidence, Rank: *rank}
	if *stream {
		runStream(topo, links, *historyBins, *batchSize, *refitEvery, opts)
		return
	}
	diag, err := netanomaly.NewDiagnoser(links, topo, netanomaly.Options{
		Confidence: *confidence,
		Rank:       *rank,
	})
	if err != nil {
		fatal(err)
	}
	model := diag.Detector().Model()
	fmt.Printf("model: %d links, normal subspace rank %d, SPE limit %.4g at %.2f%%\n",
		model.NumLinks(), model.Rank(), diag.Detector().Limit(), 100*diag.Detector().Confidence())
	results := diag.DiagnoseSeries(links)
	if len(results) == 0 {
		fmt.Println("no anomalies detected")
		return
	}
	fmt.Printf("%6s %14s %14s %-16s %14s\n", "bin", "SPE", "threshold", "flow", "bytes")
	for _, r := range results {
		fmt.Printf("%6d %14.4g %14.4g %-16s %14.4g\n",
			r.Bin, r.SPE, r.Threshold, topo.FlowName(r.Flow), r.Bytes)
	}
	fmt.Printf("%d anomalies over %d bins\n", len(results), links.Rows())
}

// runStream seeds a Monitor shard on the first historyBins rows and
// ingests the rest in batches, printing alarms as workers raise them.
func runStream(topo *netanomaly.Topology, links *netanomaly.Matrix, historyBins, batchSize, refitEvery int, opts netanomaly.Options) {
	bins, m := links.Dims()
	if historyBins < m {
		fatal(fmt.Errorf("streaming needs at least %d history bins (one per link), have %d", m, historyBins))
	}
	if historyBins >= bins {
		fatal(fmt.Errorf("history (%d bins) leaves nothing to stream (%d bins total)", historyBins, bins))
	}
	if batchSize <= 0 {
		batchSize = 64 // engine default; normalized here so the banner matches
	}
	// The detector copies seed rows into its ring, so the history view can
	// alias the loaded matrix.
	history := netanomaly.NewMatrix(historyBins, m, links.RawData()[:historyBins*m])
	// OnAlarm may be invoked concurrently from multiple workers; the mutex
	// keeps the count exact and the output lines unscrambled.
	var alarmMu sync.Mutex
	alarms := 0
	mon := netanomaly.NewMonitor(netanomaly.MonitorConfig{
		BatchSize:  batchSize,
		RefitEvery: refitEvery,
		Options:    opts,
		OnAlarm: func(a netanomaly.MonitorAlarm) {
			alarmMu.Lock()
			defer alarmMu.Unlock()
			alarms++
			// Seq counts from the first streamed bin; print absolute bins.
			fmt.Printf("%6d %14.4g %14.4g %-16s %14.4g\n",
				historyBins+a.Seq, a.SPE, a.Threshold, topo.FlowName(a.Flow), a.Bytes)
		},
	})
	const view = "stream"
	if err := netanomaly.AddTopologyView(mon, view, history, topo); err != nil {
		fatal(err)
	}
	det, err := mon.Detector(view)
	if err != nil {
		fatal(err)
	}
	model := det.Diagnoser().Detector().Model()
	fmt.Printf("streaming: model seeded on %d bins (%d links, rank %d), %d bins to go in batches of %d\n",
		historyBins, model.NumLinks(), model.Rank(), bins-historyBins, batchSize)
	fmt.Printf("%6s %14s %14s %-16s %14s\n", "bin", "SPE", "threshold", "flow", "bytes")
	rest := netanomaly.NewMatrix(bins-historyBins, m, links.RawData()[historyBins*m:])
	if err := mon.Ingest(view, rest); err != nil {
		fatal(err)
	}
	mon.Close()
	for _, err := range mon.Errs() {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
	}
	fmt.Printf("%d alarms over %d streamed bins\n", alarms, bins-historyBins)
}

func parseTopology(name string) (*netanomaly.Topology, error) {
	switch {
	case name == "abilene":
		return netanomaly.Abilene(), nil
	case name == "sprint":
		return netanomaly.SprintEurope(), nil
	case strings.HasPrefix(name, "synthetic:"):
		parts := strings.Split(name, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("synthetic topology: want synthetic:<pops>:<edges>:<seed>")
		}
		pops, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		edges, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, err
		}
		seed, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return nil, err
		}
		return netanomaly.SyntheticTopology(pops, edges, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diagnose:", err)
	os.Exit(1)
}
