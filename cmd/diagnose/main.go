// Command diagnose runs the subspace method on a link-load matrix (as
// written by cmd/trafficgen, or exported from an SNMP collector) and
// prints every diagnosed volume anomaly: when it happened, the OD flow
// responsible, and the estimated byte count.
//
//	diagnose -topology abilene -links links.csv -confidence 0.999
//
// The link matrix may be CSV or the binary wire format of cmd/ingestd
// (the encoding is sniffed from the leading bytes), and -links - reads
// it from stdin — so a binary generator pipes straight in with no CSV
// anywhere:
//
//	trafficgen -format binary -links - -anomaly 24,500,9e7 |
//	    diagnose -links -
//
// With -stream the command runs the concurrent engine instead of a
// one-shot fit: the first -history bins seed the model, the remaining
// bins are replayed as a live measurement channel through a streaming
// Monitor shard, alarms print as they are raised, and the model refits
// in the background every -refit bins without stalling ingestion. The
// -detector flag selects the shard's backend:
//
//	subspace     windowed subspace method (default)
//	incremental  covariance-tracking refits, -lambda forgetting,
//	             -drift-tol rebuild gate
//	multiscale   one model per wavelet scale (-levels), region alarms
//	multiflow    one model per metric with voting (-metrics names the
//	             CSV's stacked column blocks, -quorum the vote); write
//	             such a CSV with trafficgen -metrics
//	ewma         per-link EWMA forecasting baseline (-alpha gain, 0 =
//	             grid search at seed; -k threshold multiplier); alarms
//	             report the worst link's residual, not an OD flow
//	holtwinters  per-link level+trend forecasting baseline (-alpha,
//	             -beta, -k)
//	fourier      per-link sinusoid-basis fit, background refits (-k)
//	hybrid       cheap forecast triage (-triage names the kind, default
//	             ewma) escalating alarmed bins to a subspace stage for
//	             OD-flow identification (-escalation immediate,
//	             confirm:<n>, or always; -hysteresis n holds the
//	             escalation for n quiet bins so a flapping signal does
//	             not thrash the stages); steady-state cost is the
//	             forecast recursion, alarms carry flows
//	sketch       Frequent-Directions sketched covariance (-sketch-size
//	             rows, 0 = 4x rank; -drift-tol rebuild gate): O(l x m)
//	             memory and the cheapest refit, for wide deployments
//
//	diagnose -topology abilene -links links.csv -stream -history 1008 \
//	    -refit 288 -detector incremental -lambda 0.999
//	diagnose -topology abilene -links links.csv -stream -history 1008 \
//	    -detector ewma -k 6
//	diagnose -topology abilene -links links.csv -stream -history 1008 \
//	    -detector hybrid -triage ewma -escalation immediate
//
// Under load the streaming engine can be bounded and elastic:
// -max-pending caps the view's queue of unprocessed bins, -overload
// picks the full-queue policy (block for backpressure, dropoldest to
// prefer fresh data, error to shed load), and -autoscale min:max lets
// the worker pool grow and shrink with the observed backlog. -burst n
// ingests the stream in n-bin slams instead of the bin-by-bin replay —
// a stress mode for demonstrating the overload policies. When any of
// these are set, a closing "load:" line reports dropped/rejected bins
// and the worker-pool high-water mark.
//
//	diagnose -topology abilene -links links.csv -stream -history 1008 \
//	    -burst 4096 -max-pending 64 -overload dropoldest -autoscale 1:4
//
// With -incidents the streamed alarms are correlated into incidents: a
// sustained anomaly prints one "incident #N open"/"incident #N closed"
// pair instead of a line per alarmed bin, alarms on the same OD flow
// (any view) merge, and an incident closes once -quiet-period bins pass
// with no further alarms. The closing summary reports opened/closed
// counts so scripts can assert "exactly one incident".
//
//	diagnose -topology abilene -links week.csv -stream -history 1008 \
//	    -detector hybrid -incidents
//
// With -listen the command becomes a small live analyzer: the whole
// -links matrix seeds the model, then binary streams are accepted on
// the TCP address and ingested through the pooled zero-allocation
// path, alarms printing as they are raised. It exits after -conns
// connections (default 1 — diagnose stays a one-shot tool; run
// cmd/ingestd to serve indefinitely).
//
//	diagnose -links week.bin -listen 127.0.0.1:7600 -detector sketch
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"

	"netanomaly"
)

func main() {
	topoName := flag.String("topology", "abilene", "abilene, sprint, or synthetic:<pops>:<edges>:<seed>")
	linksPath := flag.String("links", "links.csv", "link-load matrix, CSV or binary (sniffed; - for stdin)")
	confidence := flag.Float64("confidence", 0.999, "detection confidence level")
	rank := flag.Int("rank", 0, "fixed normal-subspace rank (0 = 3-sigma rule)")
	stream := flag.Bool("stream", false, "stream bins through the concurrent engine instead of a one-shot fit")
	historyBins := flag.Int("history", 1008, "streaming: bins that seed the model (the paper's week is 1008)")
	batchSize := flag.Int("batch", 64, "streaming: bins per dispatched batch")
	refitEvery := flag.Int("refit", 0, "streaming: background-refit interval in bins (0 = never)")
	detector := flag.String("detector", "subspace", "streaming backend: subspace, incremental, multiscale, multiflow, ewma, holtwinters, fourier, hybrid, or sketch")
	sketchSize := flag.Int("sketch-size", 0, "sketch: Frequent-Directions rows (0 = 4x model rank)")
	lambda := flag.Float64("lambda", 1, "incremental: covariance forgetting factor in (0,1]")
	driftTol := flag.Float64("drift-tol", 0, "incremental: min residual-projector drift before a rebuild swaps in (0 = always)")
	levels := flag.Int("levels", 3, "multiscale: wavelet depth")
	metrics := flag.String("metrics", "bytes,flows,pktsize", "multiflow: names of the CSV's stacked metric blocks")
	quorum := flag.Int("quorum", 1, "multiflow: how many metrics must flag a bin")
	alpha := flag.Float64("alpha", 0, "ewma/holtwinters: level smoothing gain (0 = ewma grid search at seed, holtwinters 0.3)")
	beta := flag.Float64("beta", 0, "holtwinters: trend smoothing gain (0 = 0.1)")
	thresholdK := flag.Float64("k", 0, "forecast backends: alarm at mean + k*sigma of tracked residuals (0 = 6)")
	triage := flag.String("triage", "ewma", "hybrid: triage stage kind (ewma, holtwinters, fourier)")
	escalation := flag.String("escalation", "immediate", "hybrid: escalation policy (immediate, confirm:<n>, always)")
	hysteresis := flag.Int("hysteresis", 0, "hybrid: stay escalated for n bins after the last triage alarm (0 = off)")
	incidents := flag.Bool("incidents", false, "streaming: correlate alarms into incidents and print open/closed incident lines instead of per-bin alarms")
	quietPeriod := flag.Int("quiet-period", 0, "incidents: quiet period in bins — alarms gapped closer merge, incidents close after it (0 = default 8)")
	maxPending := flag.Int("max-pending", 0, "streaming: bound on queued unprocessed bins (0 = unbounded)")
	overload := flag.String("overload", "block", "streaming: full-queue policy — block, dropoldest, or error")
	autoscale := flag.String("autoscale", "", "streaming: elastic worker pool as min:max (empty = fixed pool)")
	burst := flag.Int("burst", 0, "streaming: ingest the stream in bursts of this many bins at once instead of replaying it bin by bin (stress mode; pair with -max-pending)")
	restorePath := flag.String("restore", "", "streaming: warm-start the view from a checkpoint file (as written by ingestd -checkpoint) instead of starting fresh; -history/-detector flags must match the checkpointed run")
	listen := flag.String("listen", "", "accept binary streams on this TCP address instead of replaying the tail of -links (seeds on the whole matrix)")
	conns := flag.Int("conns", 1, "listen mode: exit after this many connections")
	codecPolicy := flag.String("codec", "any", "listen mode: accept streams with this codec — any, raw, or xor (v1 streams count as raw)")
	flag.Parse()

	topo, err := parseTopology(*topoName)
	if err != nil {
		fatal(err)
	}
	links, err := loadLinks(*linksPath)
	if err != nil {
		fatal(err)
	}
	opts := netanomaly.Options{Confidence: *confidence, Rank: *rank}
	if *stream {
		sc := streamConfig{
			history:    *historyBins,
			batch:      *batchSize,
			refitEvery: *refitEvery,
			kind:       netanomaly.DetectorKind(*detector),
			lambda:     *lambda,
			driftTol:   *driftTol,
			levels:     *levels,
			metrics:    strings.Split(*metrics, ","),
			quorum:     *quorum,
			alpha:      *alpha,
			beta:       *beta,
			thresholdK: *thresholdK,
			triage:     netanomaly.DetectorKind(*triage),
			escalation: *escalation,
			hysteresis: *hysteresis,
			incidents:  *incidents,
			quiet:      *quietPeriod,
			sketchSize: *sketchSize,
			maxPending: *maxPending,
			burst:      *burst,
			restore:    *restorePath,
		}
		policy, err := netanomaly.ParseOverloadPolicy(*overload)
		if err != nil {
			fatal(err)
		}
		sc.overload = policy
		if *autoscale != "" {
			min, max, err := parseAutoscale(*autoscale)
			if err != nil {
				fatal(err)
			}
			sc.autoscaleMin, sc.autoscaleMax = min, max
			sc.autoscale = true
		}
		runStream(topo, links, sc, opts)
		return
	}
	if *listen != "" {
		sc := streamConfig{
			batch:      *batchSize,
			refitEvery: *refitEvery,
			kind:       netanomaly.DetectorKind(*detector),
			lambda:     *lambda,
			driftTol:   *driftTol,
			sketchSize: *sketchSize,
			maxPending: *maxPending,
		}
		if sc.overload, err = netanomaly.ParseOverloadPolicy(*overload); err != nil {
			fatal(err)
		}
		switch *codecPolicy {
		case "any", "raw", "xor":
		default:
			fatal(fmt.Errorf("-codec %q: want any, raw, or xor", *codecPolicy))
		}
		runListen(topo, links, sc, opts, *listen, *conns, *codecPolicy)
		return
	}
	if *detector != string(netanomaly.DetectorSubspace) {
		fatal(fmt.Errorf("-detector %s needs -stream or -listen; the one-shot fit is always the subspace method", *detector))
	}
	diag, err := netanomaly.NewDiagnoser(links, topo, opts)
	if err != nil {
		fatal(err)
	}
	model := diag.Detector().Model()
	fmt.Printf("model: %d links, normal subspace rank %d, SPE limit %.4g at %.2f%%\n",
		model.NumLinks(), model.Rank(), diag.Detector().Limit(), 100*diag.Detector().Confidence())
	results := diag.DiagnoseSeries(links)
	if len(results) == 0 {
		fmt.Println("no anomalies detected")
		return
	}
	printHeader()
	for _, r := range results {
		printAlarm(topo, r.Bin, r)
	}
	fmt.Printf("%d anomalies over %d bins\n", len(results), links.Rows())
}

type streamConfig struct {
	history                    int
	batch                      int
	refitEvery                 int
	kind                       netanomaly.DetectorKind
	lambda                     float64
	driftTol                   float64
	levels                     int
	metrics                    []string
	quorum                     int
	alpha                      float64
	beta                       float64
	thresholdK                 float64
	triage                     netanomaly.DetectorKind
	escalation                 string
	hysteresis                 int
	incidents                  bool
	quiet                      int
	sketchSize                 int
	maxPending                 int
	overload                   netanomaly.OverloadPolicy
	autoscale                  bool
	autoscaleMin, autoscaleMax int
	burst                      int
	restore                    string
}

// parseAutoscale splits a min:max worker-bound pair.
func parseAutoscale(s string) (min, max int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("autoscale: want min:max, got %q", s)
	}
	if min, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, fmt.Errorf("autoscale min: %w", err)
	}
	if max, err = strconv.Atoi(parts[1]); err != nil {
		return 0, 0, fmt.Errorf("autoscale max: %w", err)
	}
	// Reject rather than silently clamp: an inverted or nonpositive
	// bound is a typo, and running with a pool the operator did not ask
	// for hides it.
	if min <= 0 || max < min {
		return 0, 0, fmt.Errorf("autoscale: want 0 < min <= max, got %d:%d", min, max)
	}
	return min, max, nil
}

// runStream seeds a Monitor shard on the first history rows and replays
// the rest as a live measurement channel, printing alarms as workers
// raise them.
func runStream(topo *netanomaly.Topology, links *netanomaly.Matrix, sc streamConfig, opts netanomaly.Options) {
	bins, m := links.Dims()
	if sc.history < m {
		fatal(fmt.Errorf("streaming needs at least %d history bins (one per measurement column), have %d", m, sc.history))
	}
	if sc.history >= bins {
		fatal(fmt.Errorf("history (%d bins) leaves nothing to stream (%d bins total)", sc.history, bins))
	}
	if sc.batch <= 0 {
		sc.batch = 64 // engine default; normalized here so the banner matches
	}
	viewOpts := []netanomaly.ViewOption{netanomaly.WithDetector(sc.kind)}
	switch sc.kind {
	case netanomaly.DetectorIncremental:
		viewOpts = append(viewOpts, netanomaly.WithLambda(sc.lambda), netanomaly.WithDriftTolerance(sc.driftTol))
	case netanomaly.DetectorSketch:
		viewOpts = append(viewOpts, netanomaly.WithSketchSize(sc.sketchSize), netanomaly.WithDriftTolerance(sc.driftTol))
	case netanomaly.DetectorMultiscale:
		viewOpts = append(viewOpts, netanomaly.WithLevels(sc.levels))
	case netanomaly.DetectorMultiFlow:
		viewOpts = append(viewOpts, netanomaly.WithMetrics(sc.metrics...), netanomaly.WithQuorum(sc.quorum))
	case netanomaly.DetectorEWMA, netanomaly.DetectorHoltWinters, netanomaly.DetectorFourier:
		viewOpts = append(viewOpts, netanomaly.WithAlpha(sc.alpha), netanomaly.WithBeta(sc.beta), netanomaly.WithThresholdK(sc.thresholdK))
	case netanomaly.DetectorHybrid:
		viewOpts = append(viewOpts,
			netanomaly.WithTriageKind(sc.triage), netanomaly.WithEscalation(sc.escalation),
			netanomaly.WithHysteresis(sc.hysteresis),
			netanomaly.WithAlpha(sc.alpha), netanomaly.WithBeta(sc.beta), netanomaly.WithThresholdK(sc.thresholdK))
	}
	// The detectors copy seed rows into their own state, so the history
	// view can alias the loaded matrix.
	history := netanomaly.NewMatrix(sc.history, m, links.RawData()[:sc.history*m])
	// With -incidents the correlation stage consumes the alarm stream
	// and the printed lines are incident transitions (absolute bins,
	// like the alarm lines they replace).
	var corr *netanomaly.Correlator
	if sc.incidents {
		corr = netanomaly.NewCorrelator(
			netanomaly.WithQuietPeriod(sc.quiet),
			netanomaly.WithIncidentCallback(func(e netanomaly.IncidentEvent) {
				printIncident(topo, sc.history, e)
			}),
		)
	}
	// OnAlarm may be invoked concurrently from multiple workers; the mutex
	// keeps the count exact and the output lines unscrambled.
	var alarmMu sync.Mutex
	alarms := 0
	monOpts := []netanomaly.MonitorOption{
		netanomaly.WithMaxPending(sc.maxPending),
		netanomaly.WithOverloadPolicy(sc.overload),
	}
	if sc.autoscale {
		monOpts = append(monOpts, netanomaly.WithAutoscale(sc.autoscaleMin, sc.autoscaleMax))
	}
	monCfg := netanomaly.MonitorConfig{
		BatchSize:  sc.batch,
		RefitEvery: sc.refitEvery,
		Options:    opts,
		OnAlarm: func(a netanomaly.MonitorAlarm) {
			alarmMu.Lock()
			defer alarmMu.Unlock()
			alarms++
			if corr != nil {
				corr.Observe(a.View, a.Alarm)
				return
			}
			// Seq counts from the first streamed bin; print absolute
			// bins. Bins dropped by the overload policy raise no alarms
			// but still advance Seq, so the printed bin is the alarm's
			// true stream position even after drops. A restored run's Seq
			// continues from the checkpoint, so the numbering stays
			// consistent across the restart.
			printAlarm(topo, sc.history+a.Seq, a.Diagnosis)
		},
	}
	var mon *netanomaly.Monitor
	view := "stream"
	if sc.restore != "" {
		// Warm start: the ViewSpec rebuilds the detector shell from the
		// same seed history and options, then the checkpoint replaces
		// its state. The nameless spec matches whatever the writing
		// process called its (single) view.
		f, err := os.Open(sc.restore)
		if err != nil {
			fatal(err)
		}
		spec := netanomaly.ViewSpec{History: history, Topo: topo, Options: viewOpts}
		mon, err = netanomaly.Restore(monCfg, f, []netanomaly.ViewSpec{spec}, monOpts...)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("restore %s: %w", sc.restore, err))
		}
		views := mon.Views()
		if len(views) != 1 {
			fatal(fmt.Errorf("restore %s: checkpoint holds %d views, diagnose streams exactly one", sc.restore, len(views)))
		}
		view = views[0]
	} else {
		mon = netanomaly.NewMonitor(monCfg, monOpts...)
		if err := netanomaly.AddView(mon, view, history, topo, viewOpts...); err != nil {
			fatal(err)
		}
	}
	// Grab the detector handle before Close (lookups fail afterwards);
	// the hybrid kind prints its two-stage breakdown at the end.
	det, err := mon.Detector(view)
	if err != nil {
		fatal(err)
	}
	stats, err := mon.ViewStats(view)
	if err != nil {
		fatal(err)
	}
	rankNote := fmt.Sprintf("rank %d", stats.Rank)
	if stats.Rank == 0 {
		// The multiscale backend keeps one model per wavelet scale, the
		// forecast backends one forecaster per link; neither has a single
		// subspace rank to report.
		rankNote = "per-scale/per-link models"
	}
	if sc.restore != "" {
		fmt.Printf("streaming: %s model restored from %s at bin %d (%d measurement columns, %s), %d bins to go in batches of %d\n",
			stats.Backend, sc.restore, stats.Processed, stats.Links, rankNote, bins-sc.history, sc.batch)
	} else {
		fmt.Printf("streaming: %s model seeded on %d bins (%d measurement columns, %s), %d bins to go in batches of %d\n",
			stats.Backend, sc.history, stats.Links, rankNote, bins-sc.history, sc.batch)
	}
	if corr == nil {
		printHeader()
	}
	rest := netanomaly.NewMatrix(bins-sc.history, m, links.RawData()[sc.history*m:])
	failed := false
	if sc.burst > 0 {
		// Stress mode: slam the queue with whole bursts instead of the
		// paced bin-at-a-time replay, so the overload policy actually
		// engages. The burst is enqueued front to back, so with
		// -overload dropoldest the freshest bins always survive.
		streamed := rest.Rows()
		for r0 := 0; r0 < streamed && !failed; r0 += sc.burst {
			r1 := r0 + sc.burst
			if r1 > streamed {
				r1 = streamed
			}
			chunk := netanomaly.NewMatrix(r1-r0, m, rest.RawData()[r0*m:r1*m])
			if err := mon.Ingest(view, chunk); err != nil {
				fmt.Fprintln(os.Stderr, "diagnose:", err)
				failed = true
			}
		}
	} else {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		if err := mon.IngestStream(view, netanomaly.StreamMatrix(ctx, rest, 0)); err != nil {
			fmt.Fprintln(os.Stderr, "diagnose:", err)
			failed = true
		}
	}
	mon.Close()
	for _, err := range mon.Errs() {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		failed = true
	}
	if corr != nil {
		// All workers are quiescent now: advance the incident clock to
		// the last processed bin so quiet-period closes fire, then close
		// whatever is still open — the replay is over.
		if vs, err := mon.ViewStats(view); err == nil && vs.Processed > 0 {
			corr.Advance(vs.Processed - 1)
		}
		corr.Flush()
		is := corr.Stats()
		fmt.Printf("incidents: %d opened, %d closed; %d alarms merged, %d evicted\n",
			is.Opened, is.Closed, is.Merged, is.Evicted)
	}
	fmt.Printf("%d alarms over %d streamed bins\n", alarms, bins-sc.history)
	if st := mon.Stats(); sc.maxPending > 0 || sc.autoscale {
		fmt.Printf("load: dropped %d bins (%d batches), rejected %d, workers peak %d\n",
			st.DroppedBins, st.DroppedBatches, st.RejectedBins, st.WorkersHighWater)
	}
	if hd, ok := det.(*netanomaly.HybridDetector); ok {
		hs := hd.HybridStats()
		fmt.Printf("hybrid: %s triage flagged %d bins, %d escalated to subspace (%d runs, %d held), %d identified, %d suppressed\n",
			hs.Triage.Backend, hs.TriageAlarms, hs.Escalated, hs.EscalationRuns, hs.HeldBins, hs.Identified, hs.Suppressed)
	}
	if failed {
		// Scripted callers check the exit code; an aborted or
		// error-laden run must not look like a clean, anomaly-free pass.
		os.Exit(1)
	}
}

// loadLinks reads the link matrix from a file or stdin, sniffing the
// encoding from the binary format's magic bytes.
func loadLinks(path string) (*netanomaly.Matrix, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	if len(data) >= 4 && string(data[:4]) == "NAMB" {
		return netanomaly.ReadMatrixBinary(bytes.NewReader(data))
	}
	m, _, err := netanomaly.ReadMatrixCSV(bytes.NewReader(data))
	return m, err
}

// runListen seeds a shard on the whole loaded matrix and ingests
// binary streams from TCP connections through the pooled path,
// printing alarms live — the analyzer end of a trafficgen/collector
// pipe, exiting after a fixed number of connections.
func runListen(topo *netanomaly.Topology, history *netanomaly.Matrix, sc streamConfig, opts netanomaly.Options, addr string, conns int, codecPolicy string) {
	if conns <= 0 {
		fatal(fmt.Errorf("listen mode: -conns must be positive, got %d", conns))
	}
	var alarmMu sync.Mutex
	alarms := 0
	mon := netanomaly.NewMonitor(netanomaly.MonitorConfig{
		BatchSize:  sc.batch,
		RefitEvery: sc.refitEvery,
		Options:    opts,
		OnAlarm: func(a netanomaly.MonitorAlarm) {
			alarmMu.Lock()
			defer alarmMu.Unlock()
			alarms++
			printAlarm(topo, a.Seq, a.Diagnosis)
		},
	}, netanomaly.WithMaxPending(sc.maxPending), netanomaly.WithOverloadPolicy(sc.overload))
	viewOpts := []netanomaly.ViewOption{netanomaly.WithDetector(sc.kind)}
	switch sc.kind {
	case netanomaly.DetectorIncremental:
		viewOpts = append(viewOpts, netanomaly.WithLambda(sc.lambda), netanomaly.WithDriftTolerance(sc.driftTol))
	case netanomaly.DetectorSketch:
		viewOpts = append(viewOpts, netanomaly.WithSketchSize(sc.sketchSize), netanomaly.WithDriftTolerance(sc.driftTol))
	}
	const view = "live"
	if err := netanomaly.AddView(mon, view, history, topo, viewOpts...); err != nil {
		fatal(err)
	}
	stats, err := mon.ViewStats(view)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	defer ln.Close()
	fmt.Printf("listening on %s: %s model seeded on %d bins (%d links, rank %d), %d connection(s) then exit\n",
		ln.Addr(), stats.Backend, history.Rows(), stats.Links, stats.Rank, conns)
	printHeader()
	failed := false
	for c := 0; c < conns; c++ {
		conn, err := ln.Accept()
		if err != nil {
			fatal(err)
		}
		dec, err := netanomaly.NewBinaryDecoder(conn)
		if err == nil && codecPolicy != "any" && dec.Codec().String() != codecPolicy {
			err = fmt.Errorf("stream codec %s refused (-codec %s)", dec.Codec(), codecPolicy)
		} else if err == nil {
			err = mon.IngestBinary(view, dec)
		}
		conn.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "diagnose:", err)
			failed = true
		}
	}
	mon.Close()
	for _, err := range mon.Errs() {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		failed = true
	}
	vs, _ := mon.ViewStats(view)
	fmt.Printf("%d alarms over %d streamed bins\n", alarms, vs.Processed)
	if failed {
		os.Exit(1)
	}
}

func printHeader() {
	fmt.Printf("%6s %14s %14s %-16s %14s\n", "bin", "SPE", "threshold", "flow", "bytes")
}

func printAlarm(topo *netanomaly.Topology, bin int, d netanomaly.Diagnosis) {
	flow := "-" // multiscale alarms localize in time, not to a flow
	if d.Flow >= 0 {
		flow = topo.FlowName(d.Flow)
	}
	fmt.Printf("%6d %14.4g %14.4g %-16s %14.4g\n", bin, d.SPE, d.Threshold, flow, d.Bytes)
}

// printIncident renders incident transitions with absolute bin numbers:
// incident Seqs count from the first streamed bin, so the history length
// is added back, matching the alarm lines the incident view replaces.
func printIncident(topo *netanomaly.Topology, base int, e netanomaly.IncidentEvent) {
	inc := e.Incident
	what := fmt.Sprintf("view %s (unattributed)", inc.Key.Region)
	if inc.Key.Flow >= 0 {
		what = "flow " + topo.FlowName(inc.Key.Flow)
	}
	switch e.Type {
	case netanomaly.IncidentOpened:
		fmt.Printf("incident #%d open: %s, start bin %d, SPE %.4g\n",
			inc.ID, what, base+inc.StartSeq, inc.PeakSPE)
	case netanomaly.IncidentClosed:
		fmt.Printf("incident #%d closed: %s, bins %d..%d, peak SPE %.4g, %.4g bytes, %d alarms, %d views, severity %.4g\n",
			inc.ID, what, base+inc.StartSeq, base+inc.EndSeq, inc.PeakSPE, inc.Bytes, inc.Alarms, len(inc.Views), inc.Severity())
	}
}

func parseTopology(name string) (*netanomaly.Topology, error) {
	switch {
	case name == "abilene":
		return netanomaly.Abilene(), nil
	case name == "sprint":
		return netanomaly.SprintEurope(), nil
	case strings.HasPrefix(name, "synthetic:"):
		parts := strings.Split(name, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("synthetic topology: want synthetic:<pops>:<edges>:<seed>")
		}
		pops, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		edges, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, err
		}
		seed, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return nil, err
		}
		return netanomaly.SyntheticTopology(pops, edges, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diagnose:", err)
	os.Exit(1)
}
