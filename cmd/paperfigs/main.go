// Command paperfigs regenerates every table and figure of the paper's
// evaluation section on the simulated datasets and prints them in the
// paper's layout. Run with no arguments for everything, or name specific
// experiments:
//
//	paperfigs table1 table2 table3 fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 ablations
//
// The -stride flag subsamples the injection day for the sweep-based
// experiments (stride 1 is the paper's full 144-bin day; larger strides
// run proportionally faster).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"netanomaly/internal/eval"
	"netanomaly/internal/experiments"
)

func main() {
	stride := flag.Int("stride", 3, "injection sweep bin stride (1 = full day)")
	flag.Parse()
	wanted := map[string]bool{}
	for _, a := range flag.Args() {
		wanted[strings.ToLower(a)] = true
	}
	all := len(wanted) == 0
	run := func(name string) bool { return all || wanted[name] }

	if run("table1") {
		table1()
	}
	if run("fig1") {
		figure1()
	}
	if run("fig3") {
		figure3()
	}
	if run("fig4") {
		figure4()
	}
	if run("fig5") {
		figure5()
	}
	if run("fig6") {
		figure6()
	}
	if run("table2") {
		table2()
	}
	var studies []experiments.InjectionStudy
	if run("fig7") || run("fig8") || run("fig9") || run("table3") {
		for _, d := range experiments.AllDatasets() {
			s, err := experiments.NewInjectionStudy(d, *stride)
			check(err)
			studies = append(studies, s)
		}
	}
	if run("fig7") {
		figure7(studies)
	}
	if run("fig8") {
		figure8(studies)
	}
	if run("fig9") {
		figure9(studies)
	}
	if run("table3") {
		table3(studies)
	}
	if run("fig10") {
		figure10()
	}
	if run("ablations") {
		ablations(*stride)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

func header(s string) {
	fmt.Printf("\n=== %s ===\n", s)
}

func table1() {
	header("Table 1: Summary of datasets studied")
	fmt.Printf("%-12s %6s %7s %9s %7s %s\n", "Dataset", "#PoPs", "#Links", "Time Bin", "#Bins", "Period")
	for _, r := range experiments.Table1() {
		fmt.Printf("%-12s %6d %7d %9s %7d %s\n", r.Name, r.PoPs, r.Links, r.Bin, r.Bins, r.Period)
	}
}

func figure1() {
	header("Figure 1: OD flow anomaly vs the links that carry it")
	for _, d := range experiments.AllDatasets() {
		f1 := experiments.Figure1(d)
		n := len(f1.FlowSeries)
		fmt.Printf("%s: anomaly of %.3g bytes in flow %s at bin %d\n",
			f1.Dataset, f1.Anomaly.Delta, f1.FlowName, f1.Anomaly.Bin)
		fmt.Printf("  OD flow %-10s %s\n", f1.FlowName, experiments.Sparkline(f1.FlowSeries, 72))
		for i, name := range f1.LinkNames {
			fmt.Printf("  link %-13s %s\n", name, experiments.Sparkline(f1.LinkSeries[i], 72))
		}
		fmt.Printf("  anomaly bin:       %s\n", experiments.MarkLine(n, []int{f1.Anomaly.Bin}, 72))
	}
}

func figure3() {
	header("Figure 3: Fraction of total link traffic variance per principal component")
	rows, err := experiments.Figure3()
	check(err)
	for _, r := range rows {
		fmt.Printf("%s (90%% of variance in %d components):\n", r.Dataset, r.Effective90)
		for i := 0; i < 8 && i < len(r.Fractions); i++ {
			fmt.Printf("  PC%-2d %6.4f %s\n", i+1, r.Fractions[i], experiments.HBar(r.Fractions[i], 40))
		}
	}
}

func figure4() {
	header("Figure 4: Projections on normal vs anomalous principal axes")
	for _, d := range experiments.AllDatasets() {
		f4, err := experiments.Figure4(d)
		check(err)
		fmt.Printf("%s (normal subspace rank r=%d):\n", f4.Dataset, f4.Rank)
		for _, ax := range f4.NormalAxes {
			fmt.Printf("  u%-2d (normal)    %s\n", ax+1, experiments.Sparkline(f4.Projections[ax], 72))
		}
		for _, ax := range f4.AnomalousAxes {
			fmt.Printf("  u%-2d (anomalous) %s\n", ax+1, experiments.Sparkline(f4.Projections[ax], 72))
		}
	}
}

func figure5() {
	header("Figure 5: State vector ||y||^2 vs residual vector ||y~||^2")
	for _, d := range experiments.AllDatasets() {
		f5, err := experiments.Figure5(d)
		check(err)
		n := len(f5.State)
		fmt.Printf("%s (Q-limits: 99.5%%=%.3g  99.9%%=%.3g):\n", f5.Dataset, f5.Limit995, f5.Limit999)
		fmt.Printf("  state    %s\n", experiments.Sparkline(f5.State, 72))
		fmt.Printf("  residual %s\n", experiments.Sparkline(f5.Residual, 72))
		fmt.Printf("  truth    %s\n", experiments.MarkLine(n, f5.TrueBins, 72))
		var above int
		for b, v := range f5.Residual {
			if v > f5.Limit999 && !contains(f5.TrueBins, b) {
				above++
			}
		}
		fmt.Printf("  residual false alarms at 99.9%%: %d/%d\n", above, n-len(f5.TrueBins))
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func figure6() {
	header("Figure 6: Rank-ordered anomalies — detection / identification / quantification")
	for _, d := range experiments.AllDatasets() {
		f6, err := experiments.Figure6(d, eval.FourierLabeler{}, 40)
		check(err)
		fmt.Printf("%s (Fourier ground truth, cutoff %.1e):\n", f6.Dataset, f6.Cutoff)
		fmt.Printf("  %4s %12s %9s %6s %6s %12s\n", "rank", "size", "above", "det", "ident", "estimate")
		for i, a := range f6.Ranked.Anomalies {
			if i >= 15 && a.Size < f6.Cutoff {
				fmt.Printf("  ... (%d more below cutoff)\n", len(f6.Ranked.Anomalies)-i)
				break
			}
			mark := func(b bool) string {
				if b {
					return "yes"
				}
				return "-"
			}
			aboveS := "-"
			if a.Size >= f6.Cutoff {
				aboveS = "yes"
			}
			est := "-"
			if f6.Ranked.Identified[i] {
				est = fmt.Sprintf("%.3g", f6.Ranked.Estimates[i])
			}
			fmt.Printf("  %4d %12.4g %9s %6s %6s %12s\n",
				i+1, a.Size, aboveS, mark(f6.Ranked.Detected[i]), mark(f6.Ranked.Identified[i]), est)
		}
	}
}

func table2() {
	header("Table 2: Results from actual volume anomalies (99.9% confidence)")
	fmt.Printf("%-8s %-12s %9s %10s %12s %14s %8s\n",
		"Valid.", "Dataset", "Size", "Detection", "FalseAlarm", "Identification", "Quant.")
	rows, err := experiments.Table2()
	check(err)
	for _, r := range rows {
		fmt.Printf("%-8s %-12s %9.1e %7d/%-3d %8d/%-4d %9d/%-4d %7.1f%%\n",
			r.Validation, r.Dataset, r.Cutoff,
			r.Result.Detected, r.Result.TrueAnomalies,
			r.Result.FalseAlarms, r.Result.NormalBins,
			r.Result.Identified, r.Result.IdentTrials,
			100*r.Result.QuantErr)
	}
}

func figure7(studies []experiments.InjectionStudy) {
	header("Figure 7: Detection rate histograms from injected spikes")
	for _, s := range studies {
		f7 := experiments.Figure7(s)
		fmt.Printf("%s: large %.3g (overall %.0f%%), small %.3g (overall %.0f%%)\n",
			f7.Dataset, s.Large.Size, 100*f7.LargeRate, s.Small.Size, 100*f7.SmallRate)
		lf := f7.LargeHist.Fractions()
		sf := f7.SmallHist.Fractions()
		for i := range lf {
			fmt.Printf("  [%.1f-%.1f) large %-26s small %s\n",
				float64(i)/10, float64(i+1)/10,
				experiments.HBar(lf[i], 24), experiments.HBar(sf[i], 24))
		}
	}
}

func figure8(studies []experiments.InjectionStudy) {
	header("Figure 8: Detection rate over time of day (large injections)")
	for _, s := range studies {
		f8 := experiments.Figure8(s)
		fmt.Printf("%s: rates %.2f-%.2f across the day\n  %s\n",
			f8.Dataset, f8.MinRate, f8.MaxRate, experiments.Sparkline(f8.Rates, 72))
	}
}

func figure9(studies []experiments.InjectionStudy) {
	header("Figure 9: Detection rate vs mean OD flow rate (large injections)")
	for _, s := range studies {
		f9 := experiments.Figure9(s)
		fmt.Printf("%s: smallest-quartile rate %.2f, largest-quartile %.2f, top-5 flows %.2f\n",
			f9.Dataset, f9.SmallQuartileRate, f9.LargeQuartileRate, f9.TopFlowsRate)
		// Decile summary of the scatter.
		n := len(f9.FlowRates)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return f9.FlowRates[idx[a]] < f9.FlowRates[idx[b]] })
		for dec := 0; dec < 10; dec++ {
			lo, hi := dec*n/10, (dec+1)*n/10
			var rate, det float64
			for _, i := range idx[lo:hi] {
				rate += f9.FlowRates[i]
				det += f9.DetRates[i]
			}
			k := float64(hi - lo)
			fmt.Printf("  decile %2d: mean flow %9.3g  detection %s %.2f\n",
				dec+1, rate/k, experiments.HBar(det/k, 24), det/k)
		}
	}
}

func table3(studies []experiments.InjectionStudy) {
	header("Table 3: Results on diagnosing synthetic volume anomalies")
	fmt.Printf("%-12s %-16s %10s %15s %15s\n", "Network", "Injection Size", "Detection", "Identification", "Quantification")
	for _, r := range experiments.Table3(studies) {
		fmt.Printf("%-12s %-6s (%.1e) %9.0f%% %14.0f%% %14.0f%%\n",
			r.Network, r.Injection, r.Size, 100*r.Detection, 100*r.Identification, 100*r.QuantErr)
	}
}

func figure10() {
	header("Figure 10: Subspace vs Fourier vs EWMA residuals on link data")
	for _, d := range experiments.AllDatasets() {
		f10, err := experiments.Figure10(d)
		check(err)
		n := len(f10.Subspace)
		fmt.Printf("%s (separation = min anomaly residual / max normal residual):\n", f10.Dataset)
		fmt.Printf("  subspace %s  sep %.2f\n", experiments.Sparkline(f10.Subspace, 64), f10.SubspaceSeparation)
		fmt.Printf("  fourier  %s  sep %.2f\n", experiments.Sparkline(f10.Fourier, 64), f10.FourierSeparation)
		fmt.Printf("  ewma     %s  sep %.2f\n", experiments.Sparkline(f10.EWMA, 64), f10.EWMASeparation)
		fmt.Printf("  truth    %s\n", experiments.MarkLine(n, f10.TrueBins, 64))
	}
}

func ablations(stride int) {
	header("Ablation: normal subspace rank (SprintSim-1)")
	rows, err := experiments.AblationSubspaceRank(experiments.SprintSim1(), []int{1, 2, 3, 4, 5, 6, 8, 10, 15, 20}, stride*4)
	check(err)
	fmt.Printf("%5s %6s %12s %15s\n", "rank", "by3σ", "falseAlarms", "det@cutoff")
	for _, r := range rows {
		auto := ""
		if r.ChosenBy3σ {
			auto = "yes"
		}
		fmt.Printf("%5d %6s %8d/%-4d %14.0f%%\n", r.Rank, auto, r.FalseAlarms, r.NormalBins, 100*r.Detection)
	}

	header("Ablation: confidence level (SprintSim-1)")
	crows, err := experiments.AblationConfidence(experiments.SprintSim1(), []float64{0.99, 0.995, 0.999, 0.9995})
	check(err)
	fmt.Printf("%10s %12s %12s %10s\n", "confidence", "limit", "falseAlarms", "detection")
	for _, r := range crows {
		fmt.Printf("%9.2f%% %12.3g %8d/%-4d %9.0f%%\n", 100*r.Confidence, r.Limit, r.FalseAlarms, r.NormalBins, 100*r.Detection)
	}

	header("Ablation: SVD vs covariance eigendecomposition")
	for _, d := range experiments.AllDatasets() {
		res, err := experiments.AblationEigVsSVD(d)
		check(err)
		fmt.Printf("%-12s rank %d: max variance rel diff %.2e, projector diff %.2e\n",
			res.Dataset, res.Rank, res.MaxVarianceRelDiff, res.ProjectorDiff)
	}

	header("Ablation: closed-form vs Equation (1) identification")
	for _, d := range experiments.AllDatasets() {
		res, err := experiments.AblationIdentification(d)
		check(err)
		fmt.Printf("%-12s agreement %d/%d, max byte-estimate rel diff %.2e\n",
			res.Dataset, res.Agreements, res.Trials, res.MaxBytesRel)
	}
}
