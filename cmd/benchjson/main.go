// Command benchjson measures the ingest and refit kernels behind the
// repo's committed benchmark trajectory and writes the results as
// stable JSON: BENCH_ingest.json (CSV-path versus binary-path ingest
// throughput and allocations per bin at m = 120) and BENCH_sketch.json
// (sketch versus incremental versus full-SVD refit cost, plus
// detection agreement between the sketch and incremental backends on
// the spike scenario). The files are committed per PR so the
// trajectory is visible in review; CI reruns the tool and enforces the
// same hard gates the benchmarks carry (binary >= 5x CSV with < 1
// alloc/bin; sketch and incremental flag the identical bin set), so a
// regression fails the build even though absolute numbers move with
// the hardware.
//
//	benchjson -out .
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"netanomaly"
	"netanomaly/internal/core"
	"netanomaly/internal/engine"
	"netanomaly/internal/mat"
	"netanomaly/internal/netmeas"
	"netanomaly/internal/topology"
	"netanomaly/internal/traffic"
)

const (
	ingestLinks = 120
	refitRank   = 5
)

type ingestReport struct {
	Benchmark          string  `json:"benchmark"`
	Links              int     `json:"links"`
	Bins               int     `json:"bins"`
	CSVNsPerBin        float64 `json:"csv_ns_per_bin"`
	BinaryNsPerBin     float64 `json:"binary_ns_per_bin"`
	BinaryBinsPerSec   float64 `json:"binary_bins_per_sec"`
	SpeedupVsCSV       float64 `json:"speedup_vs_csv_x"`
	BinaryAllocsPerBin float64 `json:"binary_allocs_per_bin"`
}

type sketchReport struct {
	Benchmark           string          `json:"benchmark"`
	Links               int             `json:"links"`
	Rank                int             `json:"rank"`
	SketchSize          int             `json:"sketch_size"`
	FullSVDRefitNs      float64         `json:"full_svd_refit_ns"`
	CovTrackerRefitNs   float64         `json:"covtracker_refit_ns"`
	SketchRefitNs       float64         `json:"sketch_refit_ns"`
	SpeedupVsCovTracker float64         `json:"sketch_speedup_vs_covtracker_x"`
	SpeedupVsFullSVD    float64         `json:"sketch_speedup_vs_full_svd_x"`
	Agreement           agreementReport `json:"agreement"`
}

type agreementReport struct {
	HistoryBins            int `json:"history_bins"`
	StreamBins             int `json:"stream_bins"`
	SpikesInjected         int `json:"spikes_injected"`
	SketchSize             int `json:"sketch_size"`
	IncrementalFlaggedBins int `json:"incremental_flagged_bins"`
	SketchFlaggedBins      int `json:"sketch_flagged_bins"`
	CommonFlaggedBins      int `json:"common_flagged_bins"`
	SpikesCaughtByBoth     int `json:"spikes_caught_by_both"`
}

func main() {
	outDir := flag.String("out", ".", "directory for BENCH_ingest.json and BENCH_sketch.json")
	flag.Parse()

	ing, err := measureIngest()
	if err != nil {
		fatal(err)
	}
	if err := writeJSON(filepath.Join(*outDir, "BENCH_ingest.json"), ing); err != nil {
		fatal(err)
	}
	sk, err := measureSketch()
	if err != nil {
		fatal(err)
	}
	if err := writeJSON(filepath.Join(*outDir, "BENCH_sketch.json"), sk); err != nil {
		fatal(err)
	}

	// The gates CI enforces: a slower machine moves the numbers, a
	// regression breaks the ratios.
	failed := false
	if ing.SpeedupVsCSV < 5 {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: binary ingest is %.1fx the CSV path, want >= 5x\n", ing.SpeedupVsCSV)
		failed = true
	}
	if ing.BinaryAllocsPerBin >= 1 {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: binary ingest allocates %.3f per bin, want < 1\n", ing.BinaryAllocsPerBin)
		failed = true
	}
	if sk.SpeedupVsCovTracker < 2 {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: sketch refit is %.1fx the covtracker refit, want >= 2x\n", sk.SpeedupVsCovTracker)
		failed = true
	}
	a := sk.Agreement
	if a.SpikesCaughtByBoth != a.SpikesInjected || a.CommonFlaggedBins != a.IncrementalFlaggedBins || a.SketchFlaggedBins != a.IncrementalFlaggedBins {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: sketch/incremental disagree (%d vs %d flagged, %d common, %d/%d spikes)\n",
			a.SketchFlaggedBins, a.IncrementalFlaggedBins, a.CommonFlaggedBins, a.SpikesCaughtByBoth, a.SpikesInjected)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchjson: binary ingest %.1fx CSV (%.3f allocs/bin); sketch refit %.0fx covtracker, %.0fx full SVD; agreement %d/%d bins\n",
		ing.SpeedupVsCSV, ing.BinaryAllocsPerBin, sk.SpeedupVsCovTracker, sk.SpeedupVsFullSVD, a.CommonFlaggedBins, a.IncrementalFlaggedBins)
}

// benchSink mirrors the root benchmark's counting detector: the ingest
// measurement prices transport and dispatch, not a model.
type benchSink struct {
	links int
	n     atomic.Int64
}

func (d *benchSink) Seed(*mat.Dense) error { return nil }
func (d *benchSink) ProcessBatch(y *mat.Dense) ([]core.Alarm, error) {
	d.n.Add(int64(y.Rows()))
	return nil, nil
}
func (d *benchSink) Refit() error          { return nil }
func (d *benchSink) WaitRefits()           {}
func (d *benchSink) TakeRefitError() error { return nil }
func (d *benchSink) Stats() core.ViewStats {
	return core.ViewStats{Backend: "sink", Links: d.links, Processed: int(d.n.Load())}
}

// largeLinkTrace mirrors the root benchmark's workload: a paper-shaped
// week (1008 bins) of diurnal low-rank structure plus noise.
func largeLinkTrace(links int) *mat.Dense {
	const bins = 1008
	rng := rand.New(rand.NewSource(9))
	amp := make([]float64, links)
	phase := make([]float64, links)
	for l := 0; l < links; l++ {
		amp[l] = 1e7 * (1 + rng.Float64())
		phase[l] = 2 * math.Pi * rng.Float64()
	}
	y := mat.Zeros(bins, links)
	for b := 0; b < bins; b++ {
		day := 2 * math.Pi * float64(b%144) / 144
		for l := 0; l < links; l++ {
			v := amp[l] * (1.2 + 0.8*math.Sin(day+phase[l]))
			y.Set(b, l, v+amp[l]*0.05*rng.NormFloat64())
		}
	}
	return y
}

func measureIngest() (*ingestReport, error) {
	y := largeLinkTrace(ingestLinks)
	bins := y.Rows()
	var binBuf, csvBuf bytes.Buffer
	if err := netmeas.WriteMatrixBinary(&binBuf, y); err != nil {
		return nil, err
	}
	if err := netanomaly.WriteMatrixCSV(&csvBuf, y, nil); err != nil {
		return nil, err
	}
	binBytes, csvBytes := binBuf.Bytes(), csvBuf.Bytes()

	mon := engine.NewMonitor(engine.Config{Workers: 1, BatchSize: 64, MaxPending: 256, Overload: engine.OverloadBlock})
	defer mon.Close()
	if err := mon.AddDetectorView("v", &benchSink{links: ingestLinks}); err != nil {
		return nil, err
	}
	var streamErr error
	binStream := func() {
		dec, err := netmeas.NewBinaryDecoder(bytes.NewReader(binBytes))
		if err == nil {
			err = mon.IngestBinary("v", dec)
		}
		if err != nil && streamErr == nil {
			streamErr = err
		}
		mon.Flush()
	}
	csvStream := func() {
		m, _, err := netanomaly.ReadMatrixCSV(bytes.NewReader(csvBytes))
		if err == nil {
			err = mon.Ingest("v", m)
		}
		if err != nil && streamErr == nil {
			streamErr = err
		}
		mon.Flush()
	}

	binStream() // warm the pool and the queue's backing array
	allocsPerBin := testing.AllocsPerRun(3, binStream) / float64(bins)
	perStream := func(run func(), reps int) float64 {
		run() // fault the path in before timing
		start := time.Now()
		for i := 0; i < reps; i++ {
			run()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(reps*bins)
	}
	csvNs := perStream(csvStream, 3)
	binNs := perStream(binStream, 10)
	if streamErr != nil {
		return nil, streamErr
	}
	return &ingestReport{
		Benchmark:          "BinaryIngest",
		Links:              ingestLinks,
		Bins:               bins,
		CSVNsPerBin:        round1(csvNs),
		BinaryNsPerBin:     round1(binNs),
		BinaryBinsPerSec:   round1(1e9 / binNs),
		SpeedupVsCSV:       round1(csvNs / binNs),
		BinaryAllocsPerBin: math.Round(allocsPerBin*1e4) / 1e4,
	}, nil
}

func measureSketch() (*sketchReport, error) {
	y := largeLinkTrace(ingestLinks)
	ell := 4 * refitRank

	timeIt := func(reps int, f func() error) (float64, error) {
		if err := f(); err != nil { // warm
			return 0, err
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(reps), nil
	}

	fullSVD, err := timeIt(3, func() error {
		p, err := core.Fit(y)
		if err != nil {
			return err
		}
		_, err = core.Build(p, refitRank)
		return err
	})
	if err != nil {
		return nil, err
	}

	tr, err := core.NewCovTracker(ingestLinks, 1)
	if err != nil {
		return nil, err
	}
	tr.UpdateAll(y)
	covNs, err := timeIt(3, func() error {
		_, err := tr.Model(refitRank)
		return err
	})
	if err != nil {
		return nil, err
	}

	sk, err := core.NewFDSketch(ingestLinks, ell)
	if err != nil {
		return nil, err
	}
	if err := sk.InsertAll(y); err != nil {
		return nil, err
	}
	sketchNs, err := timeIt(200, func() error {
		p, span, err := sk.PCA()
		if err != nil {
			return err
		}
		if span < refitRank {
			return fmt.Errorf("sketch spans %d directions, need %d", span, refitRank)
		}
		_, err = core.Build(p, refitRank)
		return err
	})
	if err != nil {
		return nil, err
	}

	agree, err := measureAgreement()
	if err != nil {
		return nil, err
	}
	runtime.KeepAlive(tr)
	return &sketchReport{
		Benchmark:           "SketchRefit",
		Links:               ingestLinks,
		Rank:                refitRank,
		SketchSize:          ell,
		FullSVDRefitNs:      round1(fullSVD),
		CovTrackerRefitNs:   round1(covNs),
		SketchRefitNs:       round1(sketchNs),
		SpeedupVsCovTracker: round1(covNs / sketchNs),
		SpeedupVsFullSVD:    round1(fullSVD / sketchNs),
		Agreement:           *agree,
	}, nil
}

// measureAgreement reruns the acceptance scenario of the sketch
// backend's conformance test: the trafficgen spike trace on Abilene,
// sketch at exactly 2x rank against the exact-covariance incremental
// backend, synchronized refits, flagged bin sets compared.
func measureAgreement() (*agreementReport, error) {
	const historyBins, streamBins = 1008, 288
	spikes := []int{40, 150, 260}
	topo := topology.Abilene()
	cfg := traffic.DefaultConfig(71)
	cfg.Bins = historyBins + streamBins
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		return nil, err
	}
	od := gen.Generate()
	flow := topo.FlowID(3, 8)
	for _, s := range spikes {
		traffic.Inject(od, []traffic.Anomaly{{Flow: flow, Bin: historyBins + s, Delta: 9e7}})
	}
	links := traffic.LinkLoads(topo, od)
	m := links.Cols()
	history := mat.NewDense(historyBins, m, links.RawData()[:historyBins*m])
	stream := mat.NewDense(streamBins, m, links.RawData()[historyBins*m:])
	routing := topo.RoutingMatrix()

	inc, err := core.NewIncrementalDetector(history, routing, core.IncrementalConfig{Lambda: 1})
	if err != nil {
		return nil, err
	}
	rank := inc.Stats().Rank
	sd, err := core.NewSketchDetector(history, routing, core.SketchConfig{SketchSize: 2 * rank})
	if err != nil {
		return nil, err
	}
	incFlagged := map[int]bool{}
	skFlagged := map[int]bool{}
	half := streamBins / 2
	for _, span := range [][2]int{{0, half}, {half, streamBins}} {
		chunk := mat.NewDense(span[1]-span[0], m, stream.RawData()[span[0]*m:span[1]*m])
		ia, err := inc.ProcessBatch(chunk)
		if err != nil {
			return nil, err
		}
		sa, err := sd.ProcessBatch(chunk)
		if err != nil {
			return nil, err
		}
		for _, a := range ia {
			incFlagged[a.Seq] = true
		}
		for _, a := range sa {
			skFlagged[a.Seq] = true
		}
		if err := inc.Refit(); err != nil {
			return nil, err
		}
		if err := sd.Refit(); err != nil {
			return nil, err
		}
	}
	common, caught := 0, 0
	for seq := range incFlagged {
		if skFlagged[seq] {
			common++
		}
	}
	for _, s := range spikes {
		if incFlagged[s] && skFlagged[s] {
			caught++
		}
	}
	return &agreementReport{
		HistoryBins:            historyBins,
		StreamBins:             streamBins,
		SpikesInjected:         len(spikes),
		SketchSize:             sd.SketchSize(),
		IncrementalFlaggedBins: len(incFlagged),
		SketchFlaggedBins:      len(skFlagged),
		CommonFlaggedBins:      common,
		SpikesCaughtByBoth:     caught,
	}, nil
}

func round1(v float64) float64 { return math.Round(v*10) / 10 }

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: wrote %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
