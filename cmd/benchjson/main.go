// Command benchjson measures the ingest and refit kernels behind the
// repo's committed benchmark trajectory and writes the results as
// stable JSON: BENCH_ingest.json (CSV path versus v1 per-bin binary
// versus v2 batch-framed binary under both codecs at m = 120 —
// ns/bin, read calls per bin, wire bytes/bin on the trafficgen Abilene
// scenario, allocations per bin) and BENCH_sketch.json (sketch versus
// incremental versus full-SVD refit cost, plus detection agreement
// between the sketch and incremental backends on the spike scenario)
// and BENCH_snapshot.json (per-backend checkpoint envelope size plus
// snapshot/restore/re-seed cost at m = 120, the currency of the
// ingestd -checkpoint path). The files are committed per PR so the
// trajectory is visible in review; CI reruns the tool and enforces the
// same hard gates the benchmarks carry (binary >= 5x CSV with
// < 1 alloc/bin; v2 raw >= 1.5x v1 with >= 10x fewer reads and
// <= 0.05 allocs/bin; xor >= 2x compression within 1.3x the v1 decode
// baseline; sketch and incremental flag the identical bin set; every
// restored snapshot re-encodes byte-for-byte, a subspace restore beats
// re-seeding >= 2x, and the sketch envelope stays <= 0.10x the
// subspace one), so a regression fails the build even though absolute
// numbers move with the hardware.
//
// With -scorecard the tool instead regenerates SCORECARD.json — the
// nine-backend × attack-scenario detection/false-alarm/identification
// matrix over the scenario library (deterministic in its seed, so the
// file is identical on every machine), each cell also recording how
// many incidents the correlation layer condenses its alarms into — and,
// when -baseline names a committed scorecard, fails if any cell
// regresses beyond tolerance, fragmentation (incident count rising)
// included.
//
//	benchjson -out .
//	benchjson -scorecard -out /tmp -baseline SCORECARD.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"netanomaly"
	"netanomaly/internal/core"
	"netanomaly/internal/engine"
	"netanomaly/internal/eval"
	"netanomaly/internal/forecast"
	"netanomaly/internal/mat"
	"netanomaly/internal/netmeas"
	"netanomaly/internal/topology"
	"netanomaly/internal/traffic"
)

const (
	ingestLinks = 120
	refitRank   = 5
)

type ingestReport struct {
	Benchmark string `json:"benchmark"`
	Links     int    `json:"links"`
	Bins      int    `json:"bins"`
	BatchBins int    `json:"batch_bins"`

	// Per-path cost; "binary" keeps its historical meaning of the v1
	// per-bin-frame format so the committed trajectory stays comparable
	// across PRs.
	CSVNsPerBin     float64 `json:"csv_ns_per_bin"`
	BinaryNsPerBin  float64 `json:"binary_ns_per_bin"`
	V2RawNsPerBin   float64 `json:"v2_raw_ns_per_bin"`
	V2XORNsPerBin   float64 `json:"v2_xor_ns_per_bin"`
	V2RawBinsPerSec float64 `json:"v2_raw_bins_per_sec"`

	// Gated ratios.
	SpeedupVsCSV   float64 `json:"speedup_vs_csv_x"`
	V2SpeedupVsV1  float64 `json:"v2_raw_speedup_vs_v1_x"`
	XORVsV1Ratio   float64 `json:"xor_vs_v1_ns_ratio"`
	XORVsRawRatio  float64 `json:"xor_vs_v2_raw_ns_ratio"`
	ReadsPerBinV1  float64 `json:"reads_per_bin_v1"`
	ReadsPerBinV2  float64 `json:"reads_per_bin_v2"`
	ReadReduction  float64 `json:"read_reduction_x"`
	RawBytesPerBin float64 `json:"trafficgen_raw_bytes_per_bin"`
	XORBytesPerBin float64 `json:"trafficgen_xor_bytes_per_bin"`
	XORCompression float64 `json:"xor_compression_x"`

	BinaryAllocsPerBin float64 `json:"binary_allocs_per_bin"`
	V2AllocsPerBin     float64 `json:"v2_allocs_per_bin"`
}

type sketchReport struct {
	Benchmark           string          `json:"benchmark"`
	Links               int             `json:"links"`
	Rank                int             `json:"rank"`
	SketchSize          int             `json:"sketch_size"`
	FullSVDRefitNs      float64         `json:"full_svd_refit_ns"`
	CovTrackerRefitNs   float64         `json:"covtracker_refit_ns"`
	SketchRefitNs       float64         `json:"sketch_refit_ns"`
	SpeedupVsCovTracker float64         `json:"sketch_speedup_vs_covtracker_x"`
	SpeedupVsFullSVD    float64         `json:"sketch_speedup_vs_full_svd_x"`
	Agreement           agreementReport `json:"agreement"`
}

type snapshotReport struct {
	Benchmark string              `json:"benchmark"`
	Links     int                 `json:"links"`
	Bins      int                 `json:"bins"`
	Backends  []backendSnapReport `json:"backends"`

	// Gated structural ratios: the sketch's O(l x m) portable state must
	// stay far below the subspace backend's full-window envelope, and a
	// subspace restore must beat re-seeding from history (it skips the
	// window SVD entirely — that is the point of serializing the model).
	SketchVsSubspaceSize   float64 `json:"sketch_vs_subspace_size_ratio"`
	SubspaceRestoreSpeedup float64 `json:"subspace_restore_vs_reseed_x"`
}

type backendSnapReport struct {
	Backend          string  `json:"backend"`
	SnapshotBytes    int     `json:"snapshot_bytes"`
	SnapshotNs       float64 `json:"snapshot_ns"`
	RestoreNs        float64 `json:"restore_ns"`
	ReseedNs         float64 `json:"reseed_ns"`
	RestoreVsReseedX float64 `json:"restore_vs_reseed_x"`
	Canonical        bool    `json:"canonical_reencode"`
}

type agreementReport struct {
	HistoryBins            int `json:"history_bins"`
	StreamBins             int `json:"stream_bins"`
	SpikesInjected         int `json:"spikes_injected"`
	SketchSize             int `json:"sketch_size"`
	IncrementalFlaggedBins int `json:"incremental_flagged_bins"`
	SketchFlaggedBins      int `json:"sketch_flagged_bins"`
	CommonFlaggedBins      int `json:"common_flagged_bins"`
	SpikesCaughtByBoth     int `json:"spikes_caught_by_both"`
}

func main() {
	outDir := flag.String("out", ".", "directory for BENCH_ingest.json, BENCH_sketch.json and BENCH_snapshot.json")
	scorecard := flag.Bool("scorecard", false, "regenerate SCORECARD.json (backend x scenario detection matrix) instead of the benchmarks")
	baseline := flag.String("baseline", "", "with -scorecard: committed scorecard to gate against; any cell regression fails")
	seed := flag.Int64("seed", 1, "with -scorecard: seed for traffic, metrics and scenarios")
	flag.Parse()

	if *scorecard {
		if err := runScorecardGate(*outDir, *baseline, *seed); err != nil {
			fatal(err)
		}
		return
	}

	ing, err := measureIngest()
	if err != nil {
		fatal(err)
	}
	if err := writeJSON(filepath.Join(*outDir, "BENCH_ingest.json"), ing); err != nil {
		fatal(err)
	}
	sk, err := measureSketch()
	if err != nil {
		fatal(err)
	}
	if err := writeJSON(filepath.Join(*outDir, "BENCH_sketch.json"), sk); err != nil {
		fatal(err)
	}
	snap, err := measureSnapshot()
	if err != nil {
		fatal(err)
	}
	if err := writeJSON(filepath.Join(*outDir, "BENCH_snapshot.json"), snap); err != nil {
		fatal(err)
	}

	// The gates CI enforces: a slower machine moves the numbers, a
	// regression breaks the ratios.
	failed := false
	if ing.SpeedupVsCSV < 5 {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: binary ingest is %.1fx the CSV path, want >= 5x\n", ing.SpeedupVsCSV)
		failed = true
	}
	if ing.BinaryAllocsPerBin >= 1 {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: binary ingest allocates %.3f per bin, want < 1\n", ing.BinaryAllocsPerBin)
		failed = true
	}
	if ing.V2AllocsPerBin > 0.05 {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: v2 ingest allocates %.4f per bin, want <= 0.05\n", ing.V2AllocsPerBin)
		failed = true
	}
	if ing.V2SpeedupVsV1 < 1.5 {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: v2 batch framing is %.2fx the v1 per-bin path, want >= 1.5x\n", ing.V2SpeedupVsV1)
		failed = true
	}
	if ing.ReadReduction < 10 {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: v2 batch framing only cuts read calls %.1fx, want >= 10x\n", ing.ReadReduction)
		failed = true
	}
	if ing.XORCompression < 2 {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: xor codec compresses the trafficgen week %.2fx, want >= 2x\n", ing.XORCompression)
		failed = true
	}
	if ing.XORVsV1Ratio > 1.3 {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: xor decode costs %.2fx the v1 raw-decode baseline, want <= 1.3x\n", ing.XORVsV1Ratio)
		failed = true
	}
	if ing.XORVsRawRatio > 2.2 {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: xor decode costs %.2fx the v2 zero-copy raw path, want <= 2.2x\n", ing.XORVsRawRatio)
		failed = true
	}
	if sk.SpeedupVsCovTracker < 2 {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: sketch refit is %.1fx the covtracker refit, want >= 2x\n", sk.SpeedupVsCovTracker)
		failed = true
	}
	a := sk.Agreement
	if a.SpikesCaughtByBoth != a.SpikesInjected || a.CommonFlaggedBins != a.IncrementalFlaggedBins || a.SketchFlaggedBins != a.IncrementalFlaggedBins {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: sketch/incremental disagree (%d vs %d flagged, %d common, %d/%d spikes)\n",
			a.SketchFlaggedBins, a.IncrementalFlaggedBins, a.CommonFlaggedBins, a.SpikesCaughtByBoth, a.SpikesInjected)
		failed = true
	}
	for _, bk := range snap.Backends {
		if !bk.Canonical {
			fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: %s snapshot does not re-encode byte-for-byte after restore\n", bk.Backend)
			failed = true
		}
	}
	if snap.SubspaceRestoreSpeedup < 2 {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: subspace restore is %.1fx a fresh re-seed, want >= 2x (restore must skip the window SVD)\n", snap.SubspaceRestoreSpeedup)
		failed = true
	}
	if snap.SketchVsSubspaceSize > 0.1 {
		fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: sketch snapshot is %.2fx the subspace envelope, want <= 0.10x\n", snap.SketchVsSubspaceSize)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchjson: v1 ingest %.1fx CSV; v2 raw %.2fx v1 (%.1fx fewer reads, %.4f allocs/bin); xor %.2fx compression at %.2fx v1 decode cost; sketch refit %.0fx covtracker, %.0fx full SVD; agreement %d/%d bins; subspace restore %.0fx re-seed, sketch snapshot %.3fx subspace size\n",
		ing.SpeedupVsCSV, ing.V2SpeedupVsV1, ing.ReadReduction, ing.V2AllocsPerBin, ing.XORCompression, ing.XORVsV1Ratio,
		sk.SpeedupVsCovTracker, sk.SpeedupVsFullSVD, a.CommonFlaggedBins, a.IncrementalFlaggedBins,
		snap.SubspaceRestoreSpeedup, snap.SketchVsSubspaceSize)
}

// benchSink mirrors the root benchmark's counting detector: the ingest
// measurement prices transport and dispatch, not a model.
type benchSink struct {
	links int
	n     atomic.Int64
}

func (d *benchSink) Seed(*mat.Dense) error { return nil }
func (d *benchSink) ProcessBatch(y *mat.Dense) ([]core.Alarm, error) {
	d.n.Add(int64(y.Rows()))
	return nil, nil
}
func (d *benchSink) Refit() error             { return nil }
func (d *benchSink) WaitRefits()              {}
func (d *benchSink) TakeRefitError() error    { return nil }
func (d *benchSink) Snapshot(io.Writer) error { return nil }
func (d *benchSink) Restore(io.Reader) error  { return nil }
func (d *benchSink) Stats() core.ViewStats {
	return core.ViewStats{Backend: "sink", Links: d.links, Processed: int(d.n.Load())}
}

// largeLinkTrace mirrors the root benchmark's workload: a paper-shaped
// week (1008 bins) of diurnal low-rank structure plus noise.
func largeLinkTrace(links int) *mat.Dense {
	const bins = 1008
	rng := rand.New(rand.NewSource(9))
	amp := make([]float64, links)
	phase := make([]float64, links)
	for l := 0; l < links; l++ {
		amp[l] = 1e7 * (1 + rng.Float64())
		phase[l] = 2 * math.Pi * rng.Float64()
	}
	y := mat.Zeros(bins, links)
	for b := 0; b < bins; b++ {
		day := 2 * math.Pi * float64(b%144) / 144
		for l := 0; l < links; l++ {
			v := amp[l] * (1.2 + 0.8*math.Sin(day+phase[l]))
			y.Set(b, l, v+amp[l]*0.05*rng.NormFloat64())
		}
	}
	return y
}

func measureIngest() (*ingestReport, error) {
	const batchBins = 64
	y := largeLinkTrace(ingestLinks)
	bins := y.Rows()
	// Whole-byte loads mirror cmd/trafficgen's binary path: counters on
	// the wire are integral, and integral loads are the regime the xor
	// codec is built for. The CSV reference keeps full precision.
	raw := y.RawData()
	for i, v := range raw {
		raw[i] = math.Round(v)
	}

	var v1Buf, v2RawBuf, v2XORBuf, csvBuf bytes.Buffer
	if err := netmeas.WriteMatrixBinary(&v1Buf, y); err != nil {
		return nil, err
	}
	if err := netmeas.WriteMatrixBinaryFormat(&v2RawBuf, y, netmeas.WireFormat{Version: 2, Codec: netmeas.CodecRaw, BatchBins: batchBins}); err != nil {
		return nil, err
	}
	if err := netmeas.WriteMatrixBinaryFormat(&v2XORBuf, y, netmeas.WireFormat{Version: 2, Codec: netmeas.CodecXOR, BatchBins: batchBins}); err != nil {
		return nil, err
	}
	if err := netanomaly.WriteMatrixCSV(&csvBuf, y, nil); err != nil {
		return nil, err
	}
	csvBytes := csvBuf.Bytes()

	mon := engine.NewMonitor(engine.Config{Workers: 1, BatchSize: 64, MaxPending: 256, Overload: engine.OverloadBlock})
	defer mon.Close()
	if err := mon.AddDetectorView("v", &benchSink{links: ingestLinks}); err != nil {
		return nil, err
	}
	var streamErr error
	var readCalls int64
	stream := func(payload []byte) func() {
		return func() {
			dec, err := netmeas.NewBinaryDecoder(bytes.NewReader(payload))
			if err == nil {
				err = mon.IngestBinary("v", dec)
				readCalls = dec.ReadCalls()
			}
			if err != nil && streamErr == nil {
				streamErr = err
			}
			mon.Flush()
		}
	}
	v1Stream := stream(v1Buf.Bytes())
	v2RawStream := stream(v2RawBuf.Bytes())
	v2XORStream := stream(v2XORBuf.Bytes())
	csvStream := func() {
		m, _, err := netanomaly.ReadMatrixCSV(bytes.NewReader(csvBytes))
		if err == nil {
			err = mon.Ingest("v", m)
		}
		if err != nil && streamErr == nil {
			streamErr = err
		}
		mon.Flush()
	}

	v1Stream() // warm the pools and the queue's backing arrays
	v2RawStream()
	v2XORStream()
	v1Reads := float64(0)
	v1Stream()
	v1Reads = float64(readCalls) / float64(bins)
	v2RawStream()
	v2Reads := float64(readCalls) / float64(bins)
	v1Allocs := testing.AllocsPerRun(3, v1Stream) / float64(bins)
	v2Allocs := testing.AllocsPerRun(3, v2RawStream) / float64(bins)
	xorBytes, rawBytes, err := trafficgenWireBytesPerBin(batchBins)
	if err != nil {
		return nil, err
	}

	perStream := func(run func(), reps int) float64 {
		run() // fault the path in before timing
		start := time.Now()
		for i := 0; i < reps; i++ {
			run()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(reps*bins)
	}
	// The timing ratios are capability claims; a noisy shared-runner
	// sample must not fail the CI gate by itself, so the whole
	// comparison re-runs and only a regression that misses every
	// attempt reaches the report.
	const attempts = 3
	var csvNs, v1Ns, v2Ns, xorNs float64
	for a := 0; a < attempts; a++ {
		csvNs = perStream(csvStream, 3)
		v1Ns = perStream(v1Stream, 6)
		v2Ns = perStream(v2RawStream, 10)
		xorNs = perStream(v2XORStream, 10)
		if csvNs/v2Ns >= 5 && v1Ns/v2Ns >= 1.5 && xorNs/v1Ns <= 1.3 && xorNs/v2Ns <= 2.2 {
			break
		}
	}
	if streamErr != nil {
		return nil, streamErr
	}
	return &ingestReport{
		Benchmark:          "BinaryIngest",
		Links:              ingestLinks,
		Bins:               bins,
		BatchBins:          batchBins,
		CSVNsPerBin:        round1(csvNs),
		BinaryNsPerBin:     round1(v1Ns),
		V2RawNsPerBin:      round1(v2Ns),
		V2XORNsPerBin:      round1(xorNs),
		V2RawBinsPerSec:    round1(1e9 / v2Ns),
		SpeedupVsCSV:       round1(csvNs / v1Ns),
		V2SpeedupVsV1:      round2(v1Ns / v2Ns),
		XORVsV1Ratio:       round2(xorNs / v1Ns),
		XORVsRawRatio:      round2(xorNs / v2Ns),
		ReadsPerBinV1:      round2(v1Reads),
		ReadsPerBinV2:      math.Round(v2Reads*1e4) / 1e4,
		ReadReduction:      round1(v1Reads / v2Reads),
		RawBytesPerBin:     round1(rawBytes),
		XORBytesPerBin:     round1(xorBytes),
		XORCompression:     round2(rawBytes / xorBytes),
		BinaryAllocsPerBin: math.Round(v1Allocs*1e4) / 1e4,
		V2AllocsPerBin:     math.Round(v2Allocs*1e4) / 1e4,
	}, nil
}

// trafficgenWireBytesPerBin encodes the exact link-load stream
// cmd/trafficgen emits for the Abilene diurnal week at seed 5 (loads
// rounded to whole bytes, as its binary path does) under both v2
// codecs and returns their bytes/bin. Generation is deterministic in
// the seed, so these are fixed properties of the codec rather than of
// the machine.
func trafficgenWireBytesPerBin(batchBins int) (xor, raw float64, err error) {
	topo := topology.Abilene()
	gen, err := traffic.NewGenerator(topo, traffic.DefaultConfig(5))
	if err != nil {
		return 0, 0, err
	}
	loads := traffic.LinkLoads(topo, gen.Generate())
	data := loads.RawData()
	for i, v := range data {
		data[i] = math.Round(v)
	}
	bins := loads.Rows()
	var rawBuf, xorBuf bytes.Buffer
	if err := netmeas.WriteMatrixBinaryFormat(&rawBuf, loads, netmeas.WireFormat{Version: 2, Codec: netmeas.CodecRaw, BatchBins: batchBins}); err != nil {
		return 0, 0, err
	}
	if err := netmeas.WriteMatrixBinaryFormat(&xorBuf, loads, netmeas.WireFormat{Version: 2, Codec: netmeas.CodecXOR, BatchBins: batchBins}); err != nil {
		return 0, 0, err
	}
	return float64(xorBuf.Len()) / float64(bins), float64(rawBuf.Len()) / float64(bins), nil
}

func measureSketch() (*sketchReport, error) {
	y := largeLinkTrace(ingestLinks)
	ell := 4 * refitRank

	timeIt := func(reps int, f func() error) (float64, error) {
		if err := f(); err != nil { // warm
			return 0, err
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(reps), nil
	}

	fullSVD, err := timeIt(3, func() error {
		p, err := core.Fit(y)
		if err != nil {
			return err
		}
		_, err = core.Build(p, refitRank)
		return err
	})
	if err != nil {
		return nil, err
	}

	tr, err := core.NewCovTracker(ingestLinks, 1)
	if err != nil {
		return nil, err
	}
	tr.UpdateAll(y)
	covNs, err := timeIt(3, func() error {
		_, err := tr.Model(refitRank)
		return err
	})
	if err != nil {
		return nil, err
	}

	sk, err := core.NewFDSketch(ingestLinks, ell)
	if err != nil {
		return nil, err
	}
	if err := sk.InsertAll(y); err != nil {
		return nil, err
	}
	sketchNs, err := timeIt(200, func() error {
		p, span, err := sk.PCA()
		if err != nil {
			return err
		}
		if span < refitRank {
			return fmt.Errorf("sketch spans %d directions, need %d", span, refitRank)
		}
		_, err = core.Build(p, refitRank)
		return err
	})
	if err != nil {
		return nil, err
	}

	agree, err := measureAgreement()
	if err != nil {
		return nil, err
	}
	runtime.KeepAlive(tr)
	return &sketchReport{
		Benchmark:           "SketchRefit",
		Links:               ingestLinks,
		Rank:                refitRank,
		SketchSize:          ell,
		FullSVDRefitNs:      round1(fullSVD),
		CovTrackerRefitNs:   round1(covNs),
		SketchRefitNs:       round1(sketchNs),
		SpeedupVsCovTracker: round1(covNs / sketchNs),
		SpeedupVsFullSVD:    round1(fullSVD / sketchNs),
		Agreement:           *agree,
	}, nil
}

// measureAgreement reruns the acceptance scenario of the sketch
// backend's conformance test: the trafficgen spike trace on Abilene,
// sketch at exactly 2x rank against the exact-covariance incremental
// backend, synchronized refits, flagged bin sets compared.
func measureAgreement() (*agreementReport, error) {
	const historyBins, streamBins = 1008, 288
	spikes := []int{40, 150, 260}
	topo := topology.Abilene()
	cfg := traffic.DefaultConfig(71)
	cfg.Bins = historyBins + streamBins
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		return nil, err
	}
	od := gen.Generate()
	flow := topo.FlowID(3, 8)
	for _, s := range spikes {
		traffic.Inject(od, []traffic.Anomaly{{Flow: flow, Bin: historyBins + s, Delta: 9e7}})
	}
	links := traffic.LinkLoads(topo, od)
	m := links.Cols()
	history := mat.NewDense(historyBins, m, links.RawData()[:historyBins*m])
	stream := mat.NewDense(streamBins, m, links.RawData()[historyBins*m:])
	routing := topo.RoutingMatrix()

	inc, err := core.NewIncrementalDetector(history, routing, core.IncrementalConfig{Lambda: 1})
	if err != nil {
		return nil, err
	}
	rank := inc.Stats().Rank
	sd, err := core.NewSketchDetector(history, routing, core.SketchConfig{SketchSize: 2 * rank})
	if err != nil {
		return nil, err
	}
	incFlagged := map[int]bool{}
	skFlagged := map[int]bool{}
	half := streamBins / 2
	for _, span := range [][2]int{{0, half}, {half, streamBins}} {
		chunk := mat.NewDense(span[1]-span[0], m, stream.RawData()[span[0]*m:span[1]*m])
		ia, err := inc.ProcessBatch(chunk)
		if err != nil {
			return nil, err
		}
		sa, err := sd.ProcessBatch(chunk)
		if err != nil {
			return nil, err
		}
		for _, a := range ia {
			incFlagged[a.Seq] = true
		}
		for _, a := range sa {
			skFlagged[a.Seq] = true
		}
		if err := inc.Refit(); err != nil {
			return nil, err
		}
		if err := sd.Refit(); err != nil {
			return nil, err
		}
	}
	common, caught := 0, 0
	for seq := range incFlagged {
		if skFlagged[seq] {
			common++
		}
	}
	for _, s := range spikes {
		if incFlagged[s] && skFlagged[s] {
			caught++
		}
	}
	return &agreementReport{
		HistoryBins:            historyBins,
		StreamBins:             streamBins,
		SpikesInjected:         len(spikes),
		SketchSize:             sd.SketchSize(),
		IncrementalFlaggedBins: len(incFlagged),
		SketchFlaggedBins:      len(skFlagged),
		CommonFlaggedBins:      common,
		SpikesCaughtByBoth:     caught,
	}, nil
}

// measureSnapshot prices the portable-state path on the same
// 1008-bin, 120-link trace the ingest benchmark uses: per backend, the
// checkpoint envelope size and the cost of Snapshot, of Restore into a
// separately constructed detector, and of re-seeding that detector
// from scratch — the alternative a restore competes with. The size
// ratio is a structural property of the formats; the restore-vs-reseed
// ratio is timing, so the comparison re-runs a few times and only a
// miss on every attempt reaches the gate.
func measureSnapshot() (*snapshotReport, error) {
	y := largeLinkTrace(ingestLinks)
	bins := y.Rows()
	routing := mat.Identity(ingestLinks)

	builders := []struct {
		name  string
		build func() (core.ViewDetector, error)
	}{
		{"subspace", func() (core.ViewDetector, error) {
			return core.NewOnlineDetector(y, routing, core.OnlineConfig{Window: bins})
		}},
		{"incremental", func() (core.ViewDetector, error) {
			return core.NewIncrementalDetector(y, routing, core.IncrementalConfig{})
		}},
		{"sketch", func() (core.ViewDetector, error) {
			return core.NewSketchDetector(y, routing, core.SketchConfig{})
		}},
		{"ewma", func() (core.ViewDetector, error) {
			return forecast.NewDetector(y, forecast.Config{Kind: forecast.EWMA})
		}},
		{"hybrid", func() (core.ViewDetector, error) {
			triage, err := forecast.NewDetector(y, forecast.Config{Kind: forecast.EWMA})
			if err != nil {
				return nil, err
			}
			identify, err := core.NewOnlineDetector(y, routing, core.OnlineConfig{Window: bins})
			if err != nil {
				return nil, err
			}
			return core.NewHybridDetector(triage, identify, y, core.HybridConfig{})
		}},
	}

	timeIt := func(reps int, f func() error) (float64, error) {
		if err := f(); err != nil { // warm
			return 0, err
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(reps), nil
	}

	rep := &snapshotReport{Benchmark: "SnapshotRestore", Links: ingestLinks, Bins: bins}
	const attempts = 3
	for a := 0; a < attempts; a++ {
		rep.Backends = rep.Backends[:0]
		sizes := map[string]int{}
		for _, bl := range builders {
			src, err := bl.build()
			if err != nil {
				return nil, err
			}
			reseedNs, err := timeIt(1, func() error {
				_, err := bl.build()
				return err
			})
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			snapNs, err := timeIt(5, func() error {
				buf.Reset()
				return src.Snapshot(&buf)
			})
			if err != nil {
				return nil, err
			}
			dst, err := bl.build()
			if err != nil {
				return nil, err
			}
			restNs, err := timeIt(5, func() error {
				return dst.Restore(bytes.NewReader(buf.Bytes()))
			})
			if err != nil {
				return nil, err
			}
			var again bytes.Buffer
			if err := dst.Snapshot(&again); err != nil {
				return nil, err
			}
			sizes[bl.name] = buf.Len()
			rep.Backends = append(rep.Backends, backendSnapReport{
				Backend:          bl.name,
				SnapshotBytes:    buf.Len(),
				SnapshotNs:       round1(snapNs),
				RestoreNs:        round1(restNs),
				ReseedNs:         round1(reseedNs),
				RestoreVsReseedX: round1(reseedNs / restNs),
				Canonical:        bytes.Equal(buf.Bytes(), again.Bytes()),
			})
			if bl.name == "subspace" {
				rep.SubspaceRestoreSpeedup = round1(reseedNs / restNs)
			}
		}
		rep.SketchVsSubspaceSize = math.Round(1e4*float64(sizes["sketch"])/float64(sizes["subspace"])) / 1e4
		if rep.SubspaceRestoreSpeedup >= 2 {
			break
		}
	}
	return rep, nil
}

// runScorecardGate regenerates the backend x scenario detection
// scorecard, writes it to outDir/SCORECARD.json, and — when a baseline
// is named — fails on any cell regressing beyond the default
// tolerance. Unlike the timing benchmarks the scorecard is exact: the
// run is deterministic in the seed, so a committed baseline reproduces
// bit-for-bit until a code change moves a cell.
func runScorecardGate(outDir, baseline string, seed int64) error {
	card, err := eval.RunScorecard(topology.Abilene(), eval.ScorecardConfig{Seed: seed})
	if err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(outDir, "SCORECARD.json"), card); err != nil {
		return err
	}
	fmt.Printf("benchjson: scorecard %d backends x %d scenarios (%d cells) on %s, seed %d\n",
		len(card.Backends), len(card.Scenarios), len(card.Cells), card.Topology, card.Seed)
	if baseline == "" {
		return nil
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		return err
	}
	var base eval.Scorecard
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baseline, err)
	}
	regressions := eval.CompareScorecards(&base, card, eval.DefaultScorecardTolerance())
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "benchjson: SCORECARD REGRESSION: %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("benchjson: scorecard matches baseline %s (no cell regressed)\n", baseline)
	return nil
}

func round1(v float64) float64 { return math.Round(v*10) / 10 }
func round2(v float64) float64 { return math.Round(v*100) / 100 }

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: wrote %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
