package netanomaly_test

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"netanomaly"
)

func TestPublicAPIQuickstart(t *testing.T) {
	topo := netanomaly.Abilene()
	cfg := netanomaly.DefaultTrafficConfig(42)
	od, err := netanomaly.GenerateTraffic(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	flow := topo.FlowID(2, 7)
	netanomaly.InjectAnomalies(od, []netanomaly.Anomaly{{Flow: flow, Bin: 500, Delta: 9e7}})
	links := netanomaly.LinkLoads(topo, od)
	diag, err := netanomaly.NewDiagnoser(links, topo, netanomaly.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range diag.DiagnoseSeries(links) {
		if a.Bin == 500 {
			found = true
			if a.Flow != flow {
				t.Fatalf("identified flow %d want %d", a.Flow, flow)
			}
			if math.Abs(a.Bytes-9e7)/9e7 > 0.3 {
				t.Fatalf("quantified %v want ~9e7", a.Bytes)
			}
		}
	}
	if !found {
		t.Fatal("quickstart anomaly not diagnosed")
	}
}

func TestNewDiagnoserDimensionCheck(t *testing.T) {
	topo := netanomaly.Abilene()
	if _, err := netanomaly.NewDiagnoser(netanomaly.NewMatrix(10, 3, nil), topo, netanomaly.Options{}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestNewOnlineDetectorDimensionCheck(t *testing.T) {
	topo := netanomaly.Abilene()
	if _, err := netanomaly.NewOnlineDetector(netanomaly.NewMatrix(10, 3, nil), topo, netanomaly.OnlineConfig{Window: 5}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestSyntheticTopologyExported(t *testing.T) {
	topo := netanomaly.SyntheticTopology(6, 8, 3)
	if topo.NumPoPs() != 6 || topo.NumLinks() != 6+16 {
		t.Fatalf("synthetic topology dims: %d PoPs %d links", topo.NumPoPs(), topo.NumLinks())
	}
}

func TestTopologyBuilderExported(t *testing.T) {
	b := netanomaly.NewTopologyBuilder("tiny")
	b.AddPoP("a")
	b.AddPoP("b")
	b.AddDuplex("a", "b")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumLinks() != 4 {
		t.Fatalf("links = %d", topo.NumLinks())
	}
}

func TestMultiFlowCandidates(t *testing.T) {
	topo := netanomaly.Abilene()
	cands := netanomaly.MultiFlowCandidates(topo)
	if len(cands) != topo.NumPoPs() {
		t.Fatalf("candidates = %d", len(cands))
	}
	for dst, set := range cands {
		if len(set) != topo.NumPoPs()-1 {
			t.Fatalf("candidate %d has %d flows", dst, len(set))
		}
		for _, f := range set {
			_, d := topo.FlowEndpoints(f)
			if d != dst {
				t.Fatalf("candidate %d contains flow to %d", dst, d)
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	m := netanomaly.NewMatrix(3, 2, []float64{1, 2.5, -3, 4e7, 0, 6})
	var buf bytes.Buffer
	if err := netanomaly.WriteMatrixCSV(&buf, m, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	got, header, err := netanomaly.ReadMatrixCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(header) != 2 || header[0] != "a" {
		t.Fatalf("header = %v", header)
	}
	r, c := got.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("dims = %dx%d", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatalf("(%d,%d) = %v want %v", i, j, got.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestCSVNoHeader(t *testing.T) {
	m := netanomaly.NewMatrix(2, 2, []float64{1, 2, 3, 4})
	var buf bytes.Buffer
	if err := netanomaly.WriteMatrixCSV(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	got, header, err := netanomaly.ReadMatrixCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if header != nil {
		t.Fatalf("unexpected header %v", header)
	}
	if got.At(1, 1) != 4 {
		t.Fatal("values wrong")
	}
}

func TestCSVErrors(t *testing.T) {
	if _, _, err := netanomaly.ReadMatrixCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty CSV must error")
	}
	if _, _, err := netanomaly.ReadMatrixCSV(strings.NewReader("a,b\n")); err == nil {
		t.Fatal("header-only CSV must error")
	}
	if _, _, err := netanomaly.ReadMatrixCSV(strings.NewReader("1,2\n3,x\n")); err == nil {
		t.Fatal("bad number must error")
	}
	m := netanomaly.NewMatrix(1, 2, []float64{1, 2})
	var buf bytes.Buffer
	if err := netanomaly.WriteMatrixCSV(&buf, m, []string{"only-one"}); err == nil {
		t.Fatal("header length mismatch must error")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.csv")
	m := netanomaly.NewMatrix(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if err := netanomaly.SaveMatrixCSV(path, m, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := netanomaly.LoadMatrixCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(1, 2) != 6 {
		t.Fatal("file round trip wrong")
	}
	if _, _, err := netanomaly.LoadMatrixCSV(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestOnlineDetectorViaPublicAPI(t *testing.T) {
	topo := netanomaly.SprintEurope()
	cfg := netanomaly.DefaultTrafficConfig(7)
	cfg.Bins = 1008
	od, err := netanomaly.GenerateTraffic(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	links := netanomaly.LinkLoads(topo, od)
	det, err := netanomaly.NewOnlineDetector(links, topo, netanomaly.OnlineConfig{Window: 1008})
	if err != nil {
		t.Fatal(err)
	}
	row := od.Row(200)
	row[topo.FlowID(0, 5)] += 2e8
	y := netanomaly.LinkLoads(topo, netanomaly.NewMatrix(1, len(row), row)).Row(0)
	al, anomalous, err := det.Process(y)
	if err != nil {
		t.Fatal(err)
	}
	if !anomalous {
		t.Fatal("online detector missed a 2e8-byte spike")
	}
	if al.Flow != topo.FlowID(0, 5) {
		t.Fatalf("online alarm flow %d", al.Flow)
	}
}
