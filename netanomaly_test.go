package netanomaly_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"netanomaly"
)

func TestPublicAPIQuickstart(t *testing.T) {
	topo := netanomaly.Abilene()
	cfg := netanomaly.DefaultTrafficConfig(42)
	od, err := netanomaly.GenerateTraffic(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	flow := topo.FlowID(2, 7)
	netanomaly.InjectAnomalies(od, []netanomaly.Anomaly{{Flow: flow, Bin: 500, Delta: 9e7}})
	links := netanomaly.LinkLoads(topo, od)
	diag, err := netanomaly.NewDiagnoser(links, topo, netanomaly.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range diag.DiagnoseSeries(links) {
		if a.Bin == 500 {
			found = true
			if a.Flow != flow {
				t.Fatalf("identified flow %d want %d", a.Flow, flow)
			}
			if math.Abs(a.Bytes-9e7)/9e7 > 0.3 {
				t.Fatalf("quantified %v want ~9e7", a.Bytes)
			}
		}
	}
	if !found {
		t.Fatal("quickstart anomaly not diagnosed")
	}
}

func TestNewDiagnoserDimensionCheck(t *testing.T) {
	topo := netanomaly.Abilene()
	if _, err := netanomaly.NewDiagnoser(netanomaly.NewMatrix(10, 3, nil), topo, netanomaly.Options{}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestNewOnlineDetectorDimensionCheck(t *testing.T) {
	topo := netanomaly.Abilene()
	if _, err := netanomaly.NewOnlineDetector(netanomaly.NewMatrix(10, 3, nil), topo, netanomaly.OnlineConfig{Window: 5}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestSyntheticTopologyExported(t *testing.T) {
	topo := netanomaly.SyntheticTopology(6, 8, 3)
	if topo.NumPoPs() != 6 || topo.NumLinks() != 6+16 {
		t.Fatalf("synthetic topology dims: %d PoPs %d links", topo.NumPoPs(), topo.NumLinks())
	}
}

func TestTopologyBuilderExported(t *testing.T) {
	b := netanomaly.NewTopologyBuilder("tiny")
	b.AddPoP("a")
	b.AddPoP("b")
	b.AddDuplex("a", "b")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumLinks() != 4 {
		t.Fatalf("links = %d", topo.NumLinks())
	}
}

func TestMultiFlowCandidates(t *testing.T) {
	topo := netanomaly.Abilene()
	cands := netanomaly.MultiFlowCandidates(topo)
	if len(cands) != topo.NumPoPs() {
		t.Fatalf("candidates = %d", len(cands))
	}
	for dst, set := range cands {
		if len(set) != topo.NumPoPs()-1 {
			t.Fatalf("candidate %d has %d flows", dst, len(set))
		}
		for _, f := range set {
			_, d := topo.FlowEndpoints(f)
			if d != dst {
				t.Fatalf("candidate %d contains flow to %d", dst, d)
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	m := netanomaly.NewMatrix(3, 2, []float64{1, 2.5, -3, 4e7, 0, 6})
	var buf bytes.Buffer
	if err := netanomaly.WriteMatrixCSV(&buf, m, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	got, header, err := netanomaly.ReadMatrixCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(header) != 2 || header[0] != "a" {
		t.Fatalf("header = %v", header)
	}
	r, c := got.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("dims = %dx%d", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatalf("(%d,%d) = %v want %v", i, j, got.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestCSVNoHeader(t *testing.T) {
	m := netanomaly.NewMatrix(2, 2, []float64{1, 2, 3, 4})
	var buf bytes.Buffer
	if err := netanomaly.WriteMatrixCSV(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	got, header, err := netanomaly.ReadMatrixCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if header != nil {
		t.Fatalf("unexpected header %v", header)
	}
	if got.At(1, 1) != 4 {
		t.Fatal("values wrong")
	}
}

func TestCSVHeaderWithNumericFirstColumn(t *testing.T) {
	// A header whose first cell parses as a number ("0","linkA") used to
	// be consumed as a data row — the first cell was the only one
	// inspected — failing with a confusing row-0 parse error. Any
	// non-numeric cell anywhere in the first record now marks it as a
	// header.
	in := "0,linkA\n1.5,2.5\n3.5,4.5\n"
	got, header, err := netanomaly.ReadMatrixCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(header) != 2 || header[0] != "0" || header[1] != "linkA" {
		t.Fatalf("header = %v, want [0 linkA]", header)
	}
	r, c := got.Dims()
	if r != 2 || c != 2 || got.At(0, 0) != 1.5 || got.At(1, 1) != 4.5 {
		t.Fatalf("data = %dx%d %v", r, c, got)
	}
}

func TestCSVMixedHeaderLastCellNumeric(t *testing.T) {
	// The non-numeric cell can be anywhere, including not-first.
	in := "linkA,1\n1,2\n"
	got, header, err := netanomaly.ReadMatrixCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(header) != 2 || header[0] != "linkA" {
		t.Fatalf("header = %v", header)
	}
	if got.Rows() != 1 || got.At(0, 1) != 2 {
		t.Fatalf("data wrong: %v", got)
	}
}

func TestCSVAllNumericHeaderReadAsData(t *testing.T) {
	// An all-numeric header is indistinguishable from data and is
	// documented to be read as the first row — the caller must omit such
	// headers (WriteMatrixCSV with nil header) or include a non-numeric
	// name.
	in := "0,1\n2,3\n"
	got, header, err := netanomaly.ReadMatrixCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if header != nil {
		t.Fatalf("all-numeric first record misread as header %v", header)
	}
	if got.Rows() != 2 || got.At(0, 1) != 1 {
		t.Fatalf("data wrong: %v", got)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, _, err := netanomaly.ReadMatrixCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty CSV must error")
	}
	if _, _, err := netanomaly.ReadMatrixCSV(strings.NewReader("a,b\n")); err == nil {
		t.Fatal("header-only CSV must error")
	}
	if _, _, err := netanomaly.ReadMatrixCSV(strings.NewReader("1,2\n3,x\n")); err == nil {
		t.Fatal("bad number must error")
	}
	m := netanomaly.NewMatrix(1, 2, []float64{1, 2})
	var buf bytes.Buffer
	if err := netanomaly.WriteMatrixCSV(&buf, m, []string{"only-one"}); err == nil {
		t.Fatal("header length mismatch must error")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.csv")
	m := netanomaly.NewMatrix(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if err := netanomaly.SaveMatrixCSV(path, m, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := netanomaly.LoadMatrixCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(1, 2) != 6 {
		t.Fatal("file round trip wrong")
	}
	if _, _, err := netanomaly.LoadMatrixCSV(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestBinaryPublicAPI exercises the binary wire format through the
// public surface: bit-exact round trips in memory and on disk, the
// corrupt-versus-truncated error split, and the two streaming
// consumers — StreamBinary into IngestStream and the pooled
// Monitor.IngestBinary — detecting an injected spike end to end.
func TestBinaryPublicAPI(t *testing.T) {
	m := netanomaly.NewMatrix(3, 2, []float64{1, -2.5, 3e9, 0, 5e-300, 6})
	var buf bytes.Buffer
	if err := netanomaly.WriteMatrixBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), buf.Bytes()...)
	got, err := netanomaly.ReadMatrixBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatalf("round trip changed value at %d,%d: %v -> %v", i, j, m.At(i, j), got.At(i, j))
			}
		}
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "m.bin")
	if err := netanomaly.SaveMatrixBinary(path, m); err != nil {
		t.Fatal(err)
	}
	if got, err = netanomaly.LoadMatrixBinary(path); err != nil {
		t.Fatal(err)
	}
	if got.At(2, 1) != 6 {
		t.Fatal("file round trip wrong")
	}
	if _, err := netanomaly.LoadMatrixBinary(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file must error")
	}

	// Corrupt magic is a format error; a stream cut mid-frame is not.
	bad := append([]byte(nil), wire...)
	bad[0] = 'X'
	if _, err := netanomaly.ReadMatrixBinary(bytes.NewReader(bad)); !errors.Is(err, netanomaly.ErrBinaryFormat) {
		t.Fatalf("corrupt magic returned %v, want ErrBinaryFormat", err)
	}
	if _, err := netanomaly.ReadMatrixBinary(bytes.NewReader(wire[:len(wire)-5])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated stream returned %v, want io.ErrUnexpectedEOF", err)
	}

	// End to end: a spiked stream encoded to the wire format and ingested
	// two ways must raise the same alarm.
	topo := netanomaly.Abilene()
	cfg := netanomaly.DefaultTrafficConfig(23)
	cfg.Bins = 1008 + 96
	od, err := netanomaly.GenerateTraffic(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	flow := topo.FlowID(1, 6)
	netanomaly.InjectAnomalies(od, []netanomaly.Anomaly{{Flow: flow, Bin: 1008 + 40, Delta: 9e7}})
	links := netanomaly.LinkLoads(topo, od)
	nl := links.Cols()
	history := netanomaly.NewMatrix(1008, nl, links.RawData()[:1008*nl])
	stream := netanomaly.NewMatrix(96, nl, links.RawData()[1008*nl:])
	var wireBuf bytes.Buffer
	if err := netanomaly.WriteMatrixBinary(&wireBuf, stream); err != nil {
		t.Fatal(err)
	}
	streamWire := wireBuf.Bytes()

	mon := netanomaly.NewMonitor(netanomaly.MonitorConfig{Workers: 2, BatchSize: 32})
	defer mon.Close()
	for _, view := range []string{"pooled", "channel"} {
		if err := netanomaly.AddView(mon, view, history, topo); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := netanomaly.NewBinaryDecoder(bytes.NewReader(streamWire))
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.IngestBinary("pooled", dec); err != nil {
		t.Fatal(err)
	}
	ch, errFn, err := netanomaly.StreamBinary(context.Background(), bytes.NewReader(streamWire))
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.IngestStream("channel", ch); err != nil {
		t.Fatal(err)
	}
	if err := errFn(); err != nil {
		t.Fatal(err)
	}
	mon.Flush()
	hits := make(map[string]bool)
	for _, a := range mon.TakeAlarms() {
		if a.Seq == 40 {
			hits[a.View] = true
			if a.Flow != flow {
				t.Fatalf("view %q identified flow %d want %d", a.View, a.Flow, flow)
			}
		}
	}
	for _, view := range []string{"pooled", "channel"} {
		if !hits[view] {
			t.Fatalf("view %q missed the injected spike", view)
		}
	}
}

// TestAddViewBackendsViaPublicAPI exercises the backend-selecting
// AddView options and channel-driven ingestion end to end through the
// public surface: one monitor, eight shards (one per detector kind
// except hybrid, which has its own end-to-end test), one of them fed
// from a StreamMatrix channel.
func TestAddViewBackendsViaPublicAPI(t *testing.T) {
	topo := netanomaly.Abilene()
	cfg := netanomaly.DefaultTrafficConfig(11)
	cfg.Bins = 1024 + 128 // dyadic seed so the multiscale backend fits
	od, err := netanomaly.GenerateTraffic(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	flow := topo.FlowID(4, 9)
	netanomaly.InjectAnomalies(od, []netanomaly.Anomaly{{Flow: flow, Bin: 1024 + 60, Delta: 9e7}})
	links := netanomaly.LinkLoads(topo, od)
	m := links.Cols()
	history := netanomaly.NewMatrix(1024, m, links.RawData()[:1024*m])
	stream := netanomaly.NewMatrix(128, m, links.RawData()[1024*m:])

	ms, err := netanomaly.DeriveLinkMetrics(topo, od, netanomaly.LinkMetricConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	stacked, err := netanomaly.StackMatrices(ms.Bytes, ms.FlowCounts, ms.MeanPacketSize)
	if err != nil {
		t.Fatal(err)
	}
	stackedHistory := netanomaly.NewMatrix(1024, 3*m, stacked.RawData()[:1024*3*m])
	stackedStream := netanomaly.NewMatrix(128, 3*m, stacked.RawData()[1024*3*m:])

	mon := netanomaly.NewMonitor(netanomaly.MonitorConfig{Workers: 4, BatchSize: 32})
	defer mon.Close()
	for name, opts := range map[string][]netanomaly.ViewOption{
		"subspace":    nil,
		"incremental": {netanomaly.WithDetector(netanomaly.DetectorIncremental), netanomaly.WithLambda(0.999)},
		"multiscale":  {netanomaly.WithDetector(netanomaly.DetectorMultiscale), netanomaly.WithLevels(2)},
		"ewma":        {netanomaly.WithDetectorKind("ewma"), netanomaly.WithThresholdK(6)},
		"holtwinters": {netanomaly.WithDetector(netanomaly.DetectorHoltWinters), netanomaly.WithAlpha(0.3), netanomaly.WithBeta(0.1)},
		"fourier":     {netanomaly.WithDetector(netanomaly.DetectorFourier)},
		"sketch":      {netanomaly.WithDetector(netanomaly.DetectorSketch)},
	} {
		if err := netanomaly.AddView(mon, name, history, topo, opts...); err != nil {
			t.Fatal(err)
		}
	}
	if err := netanomaly.AddView(mon, "multiflow", stackedHistory, topo,
		netanomaly.WithDetector(netanomaly.DetectorMultiFlow), netanomaly.WithQuorum(2)); err != nil {
		t.Fatal(err)
	}
	// Stacked history on a single-metric backend must be rejected.
	if err := netanomaly.AddView(mon, "bad", stackedHistory, topo); err == nil || !strings.Contains(err.Error(), "columns") {
		t.Fatalf("stacked history accepted by subspace backend: %v", err)
	}

	if err := mon.IngestStream("subspace", netanomaly.StreamMatrix(context.Background(), stream, 0)); err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"incremental", "multiscale", "ewma", "holtwinters", "fourier", "sketch"} {
		if err := mon.Ingest(v, stream); err != nil {
			t.Fatal(err)
		}
	}
	if err := mon.Ingest("multiflow", stackedStream); err != nil {
		t.Fatal(err)
	}
	mon.Flush()
	if errs := mon.Errs(); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	hits := make(map[string]bool)
	for _, a := range mon.TakeAlarms() {
		if a.Seq >= 56 && a.Seq <= 60 { // multiscale reports the region start
			hits[a.View] = true
		}
	}
	for _, v := range []string{"subspace", "incremental", "multiscale", "multiflow", "ewma", "holtwinters", "fourier", "sketch"} {
		if !hits[v] {
			t.Fatalf("view %q missed the injected spike", v)
		}
		stats, err := mon.ViewStats(v)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Backend != v {
			t.Fatalf("view %q reports backend %q", v, stats.Backend)
		}
		if stats.Processed != 128 {
			t.Fatalf("view %q processed %d bins", v, stats.Processed)
		}
	}
}

func TestOnlineDetectorViaPublicAPI(t *testing.T) {
	topo := netanomaly.SprintEurope()
	cfg := netanomaly.DefaultTrafficConfig(7)
	cfg.Bins = 1008
	od, err := netanomaly.GenerateTraffic(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	links := netanomaly.LinkLoads(topo, od)
	det, err := netanomaly.NewOnlineDetector(links, topo, netanomaly.OnlineConfig{Window: 1008})
	if err != nil {
		t.Fatal(err)
	}
	row := od.Row(200)
	row[topo.FlowID(0, 5)] += 2e8
	y := netanomaly.LinkLoads(topo, netanomaly.NewMatrix(1, len(row), row)).Row(0)
	al, anomalous, err := det.Process(y)
	if err != nil {
		t.Fatal(err)
	}
	if !anomalous {
		t.Fatal("online detector missed a 2e8-byte spike")
	}
	if al.Flow != topo.FlowID(0, 5) {
		t.Fatalf("online alarm flow %d", al.Flow)
	}
}

// TestMonitorLoadOptionsViaPublicAPI drives the load-safety surface the
// way an operator would: bounded queues, an overload policy and an
// elastic pool configured through NewMonitor options, with Stats and
// QueueStats reconciling against the processed stream afterwards.
func TestMonitorLoadOptionsViaPublicAPI(t *testing.T) {
	topo := netanomaly.Abilene()
	cfg := netanomaly.DefaultTrafficConfig(13)
	cfg.Bins = 300
	od, err := netanomaly.GenerateTraffic(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	links := netanomaly.LinkLoads(topo, od)
	m := links.Cols()
	history := netanomaly.NewMatrix(200, m, links.RawData()[:200*m])
	stream := netanomaly.NewMatrix(100, m, links.RawData()[200*m:])

	mon := netanomaly.NewMonitor(netanomaly.MonitorConfig{BatchSize: 16},
		netanomaly.WithMaxPending(32),
		netanomaly.WithOverloadPolicy(netanomaly.OverloadBlock),
		netanomaly.WithAutoscale(1, 2),
	)
	defer mon.Close()
	if err := netanomaly.AddTopologyView(mon, "v", history, topo); err != nil {
		t.Fatal(err)
	}
	if err := mon.Ingest("v", stream); err != nil {
		t.Fatal(err)
	}
	mon.Flush()

	st := mon.Stats()
	if st.EnqueuedBins != 100 || st.DroppedBins != 0 || st.RejectedBins != 0 {
		t.Fatalf("block-policy run lost bins: %+v", st)
	}
	if st.WorkersHighWater < 1 || st.WorkersHighWater > 2 {
		t.Fatalf("autoscaled pool outside [1,2]: %+v", st)
	}
	qs, err := mon.QueueStats("v")
	if err != nil {
		t.Fatal(err)
	}
	vs, err := mon.ViewStats("v")
	if err != nil {
		t.Fatal(err)
	}
	if qs.EnqueuedBins-qs.DroppedBins != int64(vs.Processed) {
		t.Fatalf("public counters do not reconcile: %+v vs processed %d", qs, vs.Processed)
	}

	if _, err := netanomaly.ParseOverloadPolicy("dropoldest"); err != nil {
		t.Fatal(err)
	}
	if _, err := netanomaly.ParseOverloadPolicy("nonsense"); err == nil {
		t.Fatal("bad overload policy name accepted")
	}
}
