// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus the ablations listed in DESIGN.md and the
// computational claim of Section 7.1. Each benchmark runs the complete
// experiment per iteration and reports the headline quantity of the
// corresponding table or figure as a custom metric, so `go test -bench=.`
// both times the pipeline and reproduces the results.
package netanomaly_test

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"netanomaly"
	"netanomaly/internal/core"
	"netanomaly/internal/engine"
	"netanomaly/internal/eval"
	"netanomaly/internal/experiments"
	"netanomaly/internal/forecast"
	"netanomaly/internal/mat"
	"netanomaly/internal/netmeas"
	"netanomaly/internal/tomo"
	"netanomaly/internal/topology"
	"netanomaly/internal/wavelet"
)

// sweepStride subsamples the injection day in sweep-based benchmarks so a
// single iteration stays in the seconds range (stride 1 is the paper's
// full 144-bin day; results at stride 6 agree within a point or two).
const sweepStride = 6

func BenchmarkTable1DatasetSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkFigure1AnomalyIllustration(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f1 := experiments.Figure1(d)
		if len(f1.LinkSeries) == 0 {
			b.Fatal("no links")
		}
	}
}

func BenchmarkFigure3ScreePlot(b *testing.B) {
	var top float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		top = rows[0].Fractions[0]
	}
	b.ReportMetric(top, "pc1_variance_fraction")
}

func BenchmarkFigure4Projections(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	var rank int
	for i := 0; i < b.N; i++ {
		f4, err := experiments.Figure4(d)
		if err != nil {
			b.Fatal(err)
		}
		rank = f4.Rank
	}
	b.ReportMetric(float64(rank), "normal_rank")
}

func BenchmarkFigure5ResidualTimeseries(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	var limit float64
	for i := 0; i < b.N; i++ {
		f5, err := experiments.Figure5(d)
		if err != nil {
			b.Fatal(err)
		}
		limit = f5.Limit999
	}
	b.ReportMetric(limit, "q_limit_999")
}

func BenchmarkFigure6RankOrder(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	var detected int
	for i := 0; i < b.N; i++ {
		f6, err := experiments.Figure6(d, eval.FourierLabeler{}, 40)
		if err != nil {
			b.Fatal(err)
		}
		detected = 0
		for j, a := range f6.Ranked.Anomalies {
			if a.Size >= f6.Cutoff && f6.Ranked.Detected[j] {
				detected++
			}
		}
	}
	b.ReportMetric(float64(detected), "above_cutoff_detected")
}

func BenchmarkTable2ActualAnomalies(b *testing.B) {
	var det float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		det = rows[0].Result.DetectionRate()
	}
	b.ReportMetric(det, "sprint1_fourier_detection")
}

// benchStudy builds (once) the injection studies shared by the Figure
// 7/8/9 and Table 3 benchmarks.
var benchStudies []experiments.InjectionStudy

func studiesForBench(b *testing.B) []experiments.InjectionStudy {
	b.Helper()
	if benchStudies != nil {
		return benchStudies
	}
	for _, d := range experiments.AllDatasets() {
		s, err := experiments.NewInjectionStudy(d, sweepStride)
		if err != nil {
			b.Fatal(err)
		}
		benchStudies = append(benchStudies, s)
	}
	return benchStudies
}

func BenchmarkFigure7InjectionHistograms(b *testing.B) {
	ss := studiesForBench(b)
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		for _, s := range ss {
			f7 := experiments.Figure7(s)
			rate = f7.LargeRate
		}
	}
	b.ReportMetric(rate, "abilene_large_detection")
}

func BenchmarkFigure8DetectionByTime(b *testing.B) {
	ss := studiesForBench(b)
	b.ResetTimer()
	var spread float64
	for i := 0; i < b.N; i++ {
		for _, s := range ss {
			f8 := experiments.Figure8(s)
			spread = f8.MaxRate - f8.MinRate
		}
	}
	b.ReportMetric(spread, "abilene_rate_spread")
}

func BenchmarkFigure9RateVsFlowSize(b *testing.B) {
	ss := studiesForBench(b)
	b.ResetTimer()
	var gap float64
	for i := 0; i < b.N; i++ {
		for _, s := range ss {
			f9 := experiments.Figure9(s)
			gap = f9.SmallQuartileRate - f9.TopFlowsRate
		}
	}
	b.ReportMetric(gap, "small_minus_top_rate")
}

func BenchmarkTable3SyntheticSummary(b *testing.B) {
	ss := studiesForBench(b)
	b.ResetTimer()
	var largeDet float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(ss)
		largeDet = rows[0].Detection
	}
	b.ReportMetric(largeDet, "sprint1_large_detection")
}

// BenchmarkTable3FullSweep runs one complete injection sweep (one size,
// full day at the bench stride, all flows) per iteration — the paper's
// actual workload, timed end to end.
func BenchmarkTable3FullSweep(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewInjectionStudy(d, sweepStride); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10BasisComparison(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	var sep float64
	for i := 0; i < b.N; i++ {
		f10, err := experiments.Figure10(d)
		if err != nil {
			b.Fatal(err)
		}
		sep = f10.SubspaceSeparation
	}
	b.ReportMetric(sep, "subspace_separation")
}

// BenchmarkSVD1008x49 times the decomposition of a paper-sized
// measurement matrix. Section 7.1 reports under two seconds on a 1 GHz
// laptop for exactly this shape.
func BenchmarkSVD1008x49(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	y := mat.Zeros(1008, 49)
	for i := 0; i < 1008; i++ {
		for j := 0; j < 49; j++ {
			y.Set(i, j, rng.NormFloat64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := mat.SVD(y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelFit times the full model pipeline (PCA + separation +
// Q-limit) on real link-load data — the cost of the weekly refit in
// online deployment.
func BenchmarkModelFit(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Diagnoser(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectPerBin times the per-measurement online cost: one SPE
// test against a fitted model.
func BenchmarkDetectPerBin(b *testing.B) {
	d := experiments.SprintSim1()
	diag, err := d.Diagnoser()
	if err != nil {
		b.Fatal(err)
	}
	row := d.Links.Row(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diag.Detector().Detect(row)
	}
}

// BenchmarkDiagnosePerBin times detection + identification +
// quantification for one anomalous measurement.
func BenchmarkDiagnosePerBin(b *testing.B) {
	d := experiments.SprintSim1()
	diag, err := d.Diagnoser()
	if err != nil {
		b.Fatal(err)
	}
	row := d.Links.Row(d.TrueAnomalies[0].Bin)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := diag.DiagnoseAt(row); !ok {
			b.Fatal("anomaly bin must alarm")
		}
	}
}

func BenchmarkAblationSubspaceRank(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSubspaceRank(d, []int{2, 5, 10}, sweepStride*4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationConfidence(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationConfidence(d, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEigVsSVD(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	var diff float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationEigVsSVD(d)
		if err != nil {
			b.Fatal(err)
		}
		diff = res.ProjectorDiff
	}
	b.ReportMetric(diff, "projector_diff")
}

// BenchmarkAblationIdentification compares the closed-form identification
// scan against the literal Equation (1) recomputation on one measurement.
func BenchmarkAblationIdentification(b *testing.B) {
	d := experiments.SprintSim1()
	diag, err := d.Diagnoser()
	if err != nil {
		b.Fatal(err)
	}
	row := d.Links.Row(d.TrueAnomalies[0].Bin)
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			diag.Identifier().Identify(row)
		}
	})
	b.Run("equation-1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			diag.Identifier().IdentifyNaive(row)
		}
	})
}

// BenchmarkEigPaperSize times the covariance eigendecomposition path on a
// paper-sized matrix, the alternative Section 7.1 discusses.
func BenchmarkEigPaperSize(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FitEig(d.Links); err != nil {
			b.Fatal(err)
		}
	}
}

// largeLinkTrace builds a paper-shaped week (1008 bins) over links
// measurement columns with diurnal low-rank structure plus noise — the
// workload profile of a large backbone where the full-SVD refit starts
// to hurt.
func largeLinkTrace(links int) *mat.Dense {
	const bins = 1008
	rng := rand.New(rand.NewSource(9))
	amp := make([]float64, links)
	phase := make([]float64, links)
	for l := 0; l < links; l++ {
		amp[l] = 1e7 * (1 + rng.Float64())
		phase[l] = 2 * math.Pi * rng.Float64()
	}
	y := mat.Zeros(bins, links)
	for b := 0; b < bins; b++ {
		day := 2 * math.Pi * float64(b%144) / 144
		for l := 0; l < links; l++ {
			v := amp[l] * (1.2 + 0.8*math.Sin(day+phase[l]))
			y.Set(b, l, v+amp[l]*0.05*rng.NormFloat64())
		}
	}
	return y
}

// benchSinkDetector counts bins and raises nothing — the ingest
// benchmarks measure the transport and dispatch layers, not a model.
type benchSinkDetector struct {
	links int
	n     atomic.Int64
}

func (d *benchSinkDetector) Seed(*mat.Dense) error { return nil }
func (d *benchSinkDetector) ProcessBatch(y *mat.Dense) ([]core.Alarm, error) {
	d.n.Add(int64(y.Rows()))
	return nil, nil
}
func (d *benchSinkDetector) Refit() error             { return nil }
func (d *benchSinkDetector) WaitRefits()              {}
func (d *benchSinkDetector) TakeRefitError() error    { return nil }
func (d *benchSinkDetector) Snapshot(io.Writer) error { return nil }
func (d *benchSinkDetector) Restore(io.Reader) error  { return nil }
func (d *benchSinkDetector) Stats() core.ViewStats {
	return core.ViewStats{Backend: "sink", Links: d.links, Processed: int(d.n.Load())}
}

// BenchmarkBinaryIngest prices one measurement bin through every
// ingest path at m = 120: the CSV reference (parse the stream, hand
// the matrix to Ingest), the v1 per-bin binary format, and the v2
// batch-framed format under both codecs (IngestBinary throughout).
// The binary streams carry whole-byte loads, mirroring
// cmd/trafficgen's binary path — counters on the wire are integral,
// and integral loads are the regime the xor codec is built for.
//
// One op is one bin; the timed loop runs the v2 raw path (the format
// cmd/trafficgen now emits by default for batch framing). The rest are
// measured as references, and the benchmark fails itself on any of the
// format's capability gates:
//
//   - v2 raw >= 5x the CSV path and >= 1.5x v1 ns/bin,
//   - v2 batching cuts decoder read calls per bin by >= 10x vs v1,
//   - xor decodes within 1.3x of the v1 raw-decode baseline, and
//     within 2.2x of v2 raw as a regression guard. The v2 raw path
//     reads payload bytes straight into the destination floats, so its
//     decode is a memcpy plus a finiteness scan — no decompressor can
//     price within 30% of that, and the codec's CPU budget is instead
//     held to the per-bin raw decode it was specified against (it
//     currently beats that baseline outright),
//   - xor carries the trafficgen Abilene diurnal week in <= half the
//     bytes/bin of raw (measured on that exact scenario, so the ratio
//     is a deterministic property of the codec, not of this machine),
//   - steady-state ingest stays under 0.05 heap allocations per bin
//     (one stream amortizes its decoder setup over 1008 bins; the
//     engine's own suite pins the pooled path at <= 0.01 across
//     streams).
//
// The timing gates are capability claims, so a noisy shared-runner
// sample must not fail CI by itself: each is re-attempted and only a
// ratio that misses every independent attempt fails the benchmark.
// The committed BENCH_ingest.json trajectory holds these numbers per
// PR.
func BenchmarkBinaryIngest(b *testing.B) {
	const links = 120
	const batchBins = 64
	y := largeLinkTrace(links)
	bins := y.Rows()
	yraw := y.RawData()
	for i, v := range yraw {
		yraw[i] = math.Round(v)
	}

	var v1Buf, v2RawBuf, v2XORBuf, csvBuf bytes.Buffer
	if err := netmeas.WriteMatrixBinary(&v1Buf, y); err != nil {
		b.Fatal(err)
	}
	if err := netmeas.WriteMatrixBinaryFormat(&v2RawBuf, y, netmeas.WireFormat{Version: 2, Codec: netmeas.CodecRaw, BatchBins: batchBins}); err != nil {
		b.Fatal(err)
	}
	if err := netmeas.WriteMatrixBinaryFormat(&v2XORBuf, y, netmeas.WireFormat{Version: 2, Codec: netmeas.CodecXOR, BatchBins: batchBins}); err != nil {
		b.Fatal(err)
	}
	if err := netanomaly.WriteMatrixCSV(&csvBuf, y, nil); err != nil {
		b.Fatal(err)
	}
	csvBytes := csvBuf.Bytes()

	mon := engine.NewMonitor(engine.Config{Workers: 1, BatchSize: 64, MaxPending: 256, Overload: engine.OverloadBlock})
	defer mon.Close()
	if err := mon.AddDetectorView("v", &benchSinkDetector{links: links}); err != nil {
		b.Fatal(err)
	}
	var readCalls int64
	stream := func(payload []byte) func() {
		return func() {
			dec, err := netmeas.NewBinaryDecoder(bytes.NewReader(payload))
			if err != nil {
				b.Fatal(err)
			}
			if err := mon.IngestBinary("v", dec); err != nil {
				b.Fatal(err)
			}
			mon.Flush()
			readCalls = dec.ReadCalls()
		}
	}
	v1Stream := stream(v1Buf.Bytes())
	v2RawStream := stream(v2RawBuf.Bytes())
	v2XORStream := stream(v2XORBuf.Bytes())
	csvStream := func() {
		m, _, err := netanomaly.ReadMatrixCSV(bytes.NewReader(csvBytes))
		if err != nil {
			b.Fatal(err)
		}
		if err := mon.Ingest("v", m); err != nil {
			b.Fatal(err)
		}
		mon.Flush()
	}
	// ns/bin for one path, best of reps — each rep feeds the whole
	// 1008-bin week, so a single sample is already well averaged.
	perBin := func(stream func()) float64 {
		const reps = 3
		best := math.Inf(1)
		for r := 0; r < reps; r++ {
			start := time.Now()
			stream()
			if t := time.Since(start).Seconds() / float64(bins); t < best {
				best = t
			}
		}
		return best
	}

	v1Stream() // warm the pools and the queue's backing arrays
	v2RawStream()
	v2XORStream()
	csvStream()

	// Deterministic gates first: read amplification and wire size do not
	// depend on the machine.
	v1Stream()
	v1Reads := float64(readCalls) / float64(bins)
	v2RawStream()
	v2Reads := float64(readCalls) / float64(bins)
	if v1Reads < 10*v2Reads {
		b.Fatalf("v2 batch framing only cuts read calls %.1fx (v1 %.3f/bin, v2 %.4f/bin), want >= 10x",
			v1Reads/v2Reads, v1Reads, v2Reads)
	}
	xorBytesPerBin, rawBytesPerBin := trafficgenWireBytesPerBin(b, batchBins)
	if xorBytesPerBin > rawBytesPerBin/2 {
		b.Fatalf("xor codec carries the trafficgen diurnal week at %.0f bytes/bin vs raw %.0f, want <= half",
			xorBytesPerBin, rawBytesPerBin)
	}
	if perStream := testing.AllocsPerRun(3, v2RawStream); perStream/float64(bins) > 0.05 {
		b.Fatalf("v2 ingest allocates %.4f heap objects per bin at steady state, want <= 0.05", perStream/float64(bins))
	}

	const attempts = 3
	var v1PerBin, v2PerBin, xorPerBin, csvPerBin float64
	ok := false
	for a := 0; a < attempts && !ok; a++ {
		csvPerBin = perBin(csvStream)
		v1PerBin = perBin(v1Stream)
		v2PerBin = perBin(v2RawStream)
		xorPerBin = perBin(v2XORStream)
		ok = csvPerBin/v2PerBin >= 5 && v1PerBin/v2PerBin >= 1.5 &&
			xorPerBin/v1PerBin <= 1.3 && xorPerBin/v2PerBin <= 2.2
	}
	if !ok {
		b.Fatalf("binary format gates failed in all %d attempts: v2 raw %.1fx CSV (want >= 5), %.2fx v1 (want >= 1.5), xor/v1 ns ratio %.2f (want <= 1.3), xor/raw ns ratio %.2f (want <= 2.2) [csv %.0f, v1 %.0f, v2 raw %.0f, v2 xor %.0f ns/bin]",
			attempts, csvPerBin/v2PerBin, v1PerBin/v2PerBin, xorPerBin/v1PerBin, xorPerBin/v2PerBin,
			csvPerBin*1e9, v1PerBin*1e9, v2PerBin*1e9, xorPerBin*1e9)
	}

	b.ReportAllocs()
	b.ResetTimer()
	fed := 0
	for fed < b.N {
		v2RawStream()
		fed += bins
	}
	b.StopTimer()
	timedPerBin := b.Elapsed().Seconds() / float64(fed)
	b.ReportMetric(csvPerBin/timedPerBin, "x_vs_csv")
	b.ReportMetric(v1PerBin/timedPerBin, "x_vs_v1")
	b.ReportMetric(xorPerBin/v2PerBin, "xor_ns_ratio")
	b.ReportMetric(rawBytesPerBin/xorBytesPerBin, "xor_compression")
	b.ReportMetric(v1Reads/v2Reads, "read_reduction")
	b.ReportMetric(1/timedPerBin, "bins/sec")
}

// trafficgenWireBytesPerBin encodes the exact link-load stream
// cmd/trafficgen emits for the Abilene diurnal week at seed 5 (loads
// rounded to whole bytes, as its binary path does) under both v2
// codecs and returns their bytes/bin. Generation is deterministic in
// the seed, so these are fixed properties of the codec.
func trafficgenWireBytesPerBin(b *testing.B, batchBins int) (xor, raw float64) {
	b.Helper()
	topo := netanomaly.Abilene()
	od, err := netanomaly.GenerateTraffic(topo, netanomaly.DefaultTrafficConfig(5))
	if err != nil {
		b.Fatal(err)
	}
	loads := netanomaly.LinkLoads(topo, od)
	data := loads.RawData()
	for i, v := range data {
		data[i] = math.Round(v)
	}
	bins := loads.Rows()
	var rawBuf, xorBuf bytes.Buffer
	if err := netmeas.WriteMatrixBinaryFormat(&rawBuf, loads, netmeas.WireFormat{Version: 2, Codec: netmeas.CodecRaw, BatchBins: batchBins}); err != nil {
		b.Fatal(err)
	}
	if err := netmeas.WriteMatrixBinaryFormat(&xorBuf, loads, netmeas.WireFormat{Version: 2, Codec: netmeas.CodecXOR, BatchBins: batchBins}); err != nil {
		b.Fatal(err)
	}
	return float64(xorBuf.Len()) / float64(bins), float64(rawBuf.Len()) / float64(bins)
}

// BenchmarkSketchRefit prices a streaming shard's model rebuild at
// m = 120 across the three covariance strategies: the full-SVD window
// fit, the incremental backend's m x m tracked-covariance eigensolve,
// and the sketch backend's l x l Frequent-Directions eigenproblem
// (l = 4x rank). Every sub-benchmark produces a ready subspace model
// of the same rank, so ns/op are directly comparable; the committed
// BENCH_sketch.json trajectory records the ratios per PR.
func BenchmarkSketchRefit(b *testing.B) {
	const links, rank = 120, 5
	y := largeLinkTrace(links)

	b.Run("full-svd-window", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := core.Fit(y)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.Build(p, rank); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("covtracker-eig", func(b *testing.B) {
		tr, err := core.NewCovTracker(links, 1)
		if err != nil {
			b.Fatal(err)
		}
		tr.UpdateAll(y)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tr.Model(rank); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("sketch-eig", func(b *testing.B) {
		sk, err := core.NewFDSketch(links, 4*rank)
		if err != nil {
			b.Fatal(err)
		}
		if err := sk.InsertAll(y); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, span, err := sk.PCA()
			if err != nil {
				b.Fatal(err)
			}
			if span < rank {
				b.Fatalf("sketch spans %d directions, need %d", span, rank)
			}
			if _, err := core.Build(p, rank); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("sketch-update-batch", func(b *testing.B) {
		// The amortized per-batch price the sketch pays to keep its
		// cheap refit available — the counterpart of the incremental
		// backend's covtracker-update-batch row.
		sk, err := core.NewFDSketch(links, 4*rank)
		if err != nil {
			b.Fatal(err)
		}
		if err := sk.InsertAll(y); err != nil {
			b.Fatal(err)
		}
		chunk := mat.NewDense(64, links, y.RawData()[:64*links])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sk.InsertAll(chunk); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIncrementalRefit compares the two ways a streaming shard can
// rebuild its model on an m >= 100 link trace: the subspace backend's
// full-SVD fit over the 1008-bin window (O(t·m^2) bidiagonalization)
// versus the incremental backend's eigensolve on the tracked m x m
// covariance (no window snapshot, no SVD). Both sub-benchmarks produce
// a ready subspace model of the same rank, so ns/op are directly
// comparable; the acceptance bar is the covtracker path winning at this
// scale. The update-batch sub-benchmark prices the amortized cost the
// tracker pays per 64-bin batch to keep that cheap refit available
// (report: 0 allocs — all scratch is preallocated).
func BenchmarkIncrementalRefit(b *testing.B) {
	const links, rank = 120, 5
	y := largeLinkTrace(links)

	b.Run("full-svd-window", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := core.Fit(y)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.Build(p, rank); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("covtracker-eig", func(b *testing.B) {
		tr, err := core.NewCovTracker(links, 1)
		if err != nil {
			b.Fatal(err)
		}
		tr.UpdateAll(y)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tr.Model(rank); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("covtracker-update-batch", func(b *testing.B) {
		tr, err := core.NewCovTracker(links, 0.999)
		if err != nil {
			b.Fatal(err)
		}
		tr.UpdateAll(y)
		chunk := mat.NewDense(64, links, y.RawData()[:64*links])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.UpdateAll(chunk)
		}
	})
}

// BenchmarkCovTrackerUpdate times the per-bin cost of the incremental
// model maintenance of Section 7.1 (rank-1 covariance update).
func BenchmarkCovTrackerUpdate(b *testing.B) {
	d := experiments.SprintSim1()
	_, dim := d.Links.Dims()
	tr, err := core.NewCovTracker(dim, 0.999)
	if err != nil {
		b.Fatal(err)
	}
	row := d.Links.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Update(row)
	}
}

// BenchmarkCovTrackerRefresh times the on-demand model rebuild from
// tracked state (the m x m eigenproblem), the cheap alternative to a
// full-window SVD refit.
func BenchmarkCovTrackerRefresh(b *testing.B) {
	d := experiments.SprintSim1()
	_, dim := d.Links.Dims()
	tr, err := core.NewCovTracker(dim, 1)
	if err != nil {
		b.Fatal(err)
	}
	tr.UpdateAll(d.Links)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Model(5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiscaleDetector times fitting and scanning the Section 7.3
// wavelet-domain detector at three scales on a paper-sized week.
func BenchmarkMultiscaleDetector(b *testing.B) {
	// 1024 bins (dyadic) on Abilene.
	topo := experiments.AbileneSim().Topo
	y := mat.Zeros(1024, topo.NumLinks())
	links := experiments.AbileneSim().Links
	for bi := 0; bi < 1008; bi++ {
		y.SetRow(bi, links.RowView(bi))
	}
	for bi := 1008; bi < 1024; bi++ {
		y.SetRow(bi, links.RowView(bi-144))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		md, err := wavelet.NewMultiscaleDetector(y, 3, 0.999)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := md.Detect(y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTomogravityEstimate times one per-bin traffic matrix estimate
// — the Section 8 comparator for anomaly sizing.
func BenchmarkTomogravityEstimate(b *testing.B) {
	d := experiments.AbileneSim()
	tg := tomo.NewTomogravity(d.Topo)
	row := d.Links.Row(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tg.Estimate(row); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorThroughput compares the engine's batched multi-shard
// hot path against the per-bin serial OnlineDetector on the same
// Abilene-scale workload. Both sub-benchmarks process one measurement
// bin per op, so their ns/op are directly comparable: the monitor path
// must be at least 3x the serial baseline's throughput (the batched
// low-rank SPE kernel does O(m*rank) work per bin where the serial
// residual projection does O(m^2), on top of lock-free model reads).
func BenchmarkMonitorThroughput(b *testing.B) {
	d := experiments.AbileneSim()
	topo := d.Topo
	links := d.Links
	bins, m := links.Dims()

	b.Run("serial-baseline", func(b *testing.B) {
		od, err := core.NewOnlineDetector(links, topo.RoutingMatrix(), core.OnlineConfig{Window: bins})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := od.Process(links.RowView(i % bins)); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("monitor-4shards", func(b *testing.B) {
		const batch = 64
		mon := engine.NewMonitor(engine.Config{
			Workers:   4,
			BatchSize: batch,
			OnAlarm:   func(engine.Alarm) {},
		})
		views := make([]string, 4)
		for s := range views {
			views[s] = fmt.Sprintf("view-%d", s)
			if err := mon.AddView(views[s], links, topo.RoutingMatrix()); err != nil {
				b.Fatal(err)
			}
		}
		data := links.RawData()
		b.ResetTimer()
		for fed, turn := 0, 0; fed < b.N; turn++ {
			n := batch
			if b.N-fed < n {
				n = b.N - fed
			}
			r0 := (turn * batch) % (bins - batch)
			chunk := mat.NewDense(n, m, data[r0*m:(r0+n)*m])
			if err := mon.Ingest(views[turn%len(views)], chunk); err != nil {
				b.Fatal(err)
			}
			fed += n
		}
		mon.Flush()
		b.StopTimer()
		mon.Close()
	})
}

// BenchmarkForecastProcessBatch times the forecast backends' streaming
// hot path — per-link prediction, residual scoring against adaptive
// thresholds, and state update — in 64-bin batches over the Abilene
// trace, reporting bins/sec per kind. The forecast model is the
// cheapest in the backend family (no matrix pass at all for the
// smoothing kinds), which is what makes per-bin refit experiments
// affordable; a regression here erases that advantage.
func BenchmarkForecastProcessBatch(b *testing.B) {
	d := experiments.AbileneSim()
	links := d.Links
	bins, m := links.Dims()
	const batch = 64
	for _, kind := range []forecast.Kind{forecast.EWMA, forecast.HoltWinters, forecast.Fourier} {
		b.Run(string(kind), func(b *testing.B) {
			det, err := forecast.NewDetector(links, forecast.Config{Kind: kind})
			if err != nil {
				b.Fatal(err)
			}
			data := links.RawData()
			b.ResetTimer()
			fed := 0
			for turn := 0; fed < b.N; turn++ {
				n := batch
				if b.N-fed < n {
					n = b.N - fed
				}
				r0 := (turn * batch) % (bins - batch)
				chunk := mat.NewDense(n, m, data[r0*m:(r0+n)*m])
				if _, err := det.ProcessBatch(chunk); err != nil {
					b.Fatal(err)
				}
				fed += n
			}
			b.StopTimer()
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed, "bins/sec")
			}
		})
	}
}

// BenchmarkHybridThroughput prices the hybrid triage→identification
// backend against its two ingredients on an anomaly-free Abilene-scale
// stream. Every sub-benchmark processes one measurement bin per op in
// 64-bin batches, so ns/op are directly comparable. The acceptance bar
// is the hybrid staying within ~1.5x of the forecast-only cost
// (measured ~1.06x): on a clean stream the triage stage never
// escalates, so the hybrid's steady state is the EWMA recursion plus
// batch bookkeeping, and the sub-benchmark fails if more than 1% of
// clean bins leak through to the subspace stage. The subspace-only row
// is the reference point: with refits disabled the batched low-rank
// SPE kernel is itself cheap at 41 links — what the hybrid saves is
// not this kernel but everything around it (the O(t·m^2) window-SVD
// refit treadmill, per-view window maintenance) while still carrying
// subspace-grade Flow attribution on every escalated bin.
func BenchmarkHybridThroughput(b *testing.B) {
	const links = 41
	y := largeLinkTrace(links)
	bins, m := y.Dims()
	routing := topology.Abilene().RoutingMatrix()
	const batch = 64

	feed := func(b *testing.B, det core.ViewDetector) {
		data := y.RawData()
		b.ResetTimer()
		fed := 0
		for turn := 0; fed < b.N; turn++ {
			n := batch
			if b.N-fed < n {
				n = b.N - fed
			}
			r0 := (turn * batch) % (bins - batch)
			chunk := mat.NewDense(n, m, data[r0*m:(r0+n)*m])
			if _, err := det.ProcessBatch(chunk); err != nil {
				b.Fatal(err)
			}
			fed += n
		}
		b.StopTimer()
		if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
			b.ReportMetric(float64(b.N)/elapsed, "bins/sec")
		}
	}

	b.Run("forecast-only", func(b *testing.B) {
		det, err := forecast.NewDetector(y, forecast.Config{Kind: forecast.EWMA})
		if err != nil {
			b.Fatal(err)
		}
		feed(b, det)
	})

	b.Run("hybrid", func(b *testing.B) {
		triage, err := forecast.NewDetector(y, forecast.Config{Kind: forecast.EWMA})
		if err != nil {
			b.Fatal(err)
		}
		identify, err := core.NewOnlineDetector(y, routing, core.OnlineConfig{Window: bins})
		if err != nil {
			b.Fatal(err)
		}
		det, err := core.NewHybridDetector(triage, identify, y, core.HybridConfig{})
		if err != nil {
			b.Fatal(err)
		}
		feed(b, det)
		if hs := det.HybridStats(); hs.Escalated > hs.Triage.Processed/100 {
			b.Fatalf("clean stream escalated %d of %d bins; the hybrid is not idling its subspace stage", hs.Escalated, hs.Triage.Processed)
		}
	})

	b.Run("subspace-only", func(b *testing.B) {
		det, err := core.NewOnlineDetector(y, routing, core.OnlineConfig{Window: bins})
		if err != nil {
			b.Fatal(err)
		}
		feed(b, det)
	})
}

// BenchmarkMultiFlowIdentification times the Theta-matrix identification
// of Section 7.2 over one candidate set per destination PoP.
func BenchmarkMultiFlowIdentification(b *testing.B) {
	d := experiments.AbileneSim()
	diag, err := d.Diagnoser()
	if err != nil {
		b.Fatal(err)
	}
	topo := d.Topo
	candidates := make([][]int, topo.NumPoPs())
	for dst := 0; dst < topo.NumPoPs(); dst++ {
		for org := 0; org < topo.NumPoPs(); org++ {
			if org != dst {
				candidates[dst] = append(candidates[dst], topo.FlowID(org, dst))
			}
		}
	}
	row := d.Links.Row(d.TrueAnomalies[0].Bin)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diag.Identifier().IdentifyMulti(row, candidates)
	}
}

// BenchmarkAutoscaleThroughput pits the elastic worker pool against a
// hand-tuned fixed pool on the two canonical load shapes, with bounded
// queues and Block backpressure pacing the producer to the service rate
// in both. Steady: two continuously busy views, for which the
// hand-tuned pool is two workers (per-view FIFO caps useful parallelism
// at the number of active shards, so more would idle) — the autoscaler
// must land within 10% of it. Bursty: synchronized eight-view bursts
// arriving at the pool still tuned for the steady trickle — the
// autoscaler must grow into the burst's parallelism and beat it
// outright. Both gates fail the benchmark, so the CI bench smoke
// enforces the autoscaler's contract, not just its liveness.
func BenchmarkAutoscaleThroughput(b *testing.B) {
	// The comparison is about real parallelism: on fewer than four
	// hardware threads the burst scenario has nothing for extra workers
	// to run on and the gates below would measure the scheduler, not
	// the autoscaler (NumCPU, not GOMAXPROCS — an env override cannot
	// conjure cores).
	if runtime.NumCPU() < 4 || runtime.GOMAXPROCS(0) < 4 {
		b.Skip("autoscale comparison needs >= 4 CPUs")
	}
	d := experiments.AbileneSim()
	links := d.Links
	bins, m := links.Dims()
	const seedBins = 256
	history := mat.NewDense(seedBins, m, links.RawData()[:seedBins*m])
	stream := mat.NewDense(bins-seedBins, m, links.RawData()[seedBins*m:])
	streamBins := stream.Rows()
	routing := d.Topo.RoutingMatrix()

	maxW := 8
	if g := runtime.GOMAXPROCS(0); g < maxW {
		maxW = g
	}
	const fixedW = 2 // hand-tuned to the steady scenario's two active views

	chunk := func(turn int) *mat.Dense {
		r0 := (turn * 64) % (streamBins - 64)
		return mat.NewDense(64, m, stream.RawData()[r0*m:(r0+64)*m])
	}
	newMonitor := func(auto bool) *engine.Monitor {
		cfg := engine.Config{
			BatchSize:  64,
			MaxPending: 128,
			Overload:   engine.OverloadBlock,
			OnAlarm:    func(engine.Alarm) {},
		}
		if auto {
			cfg.Autoscale = &engine.AutoscaleConfig{
				MinWorkers: 1, MaxWorkers: maxW,
				Interval: 2 * time.Millisecond,
				// Block pacing pins every busy view's queue at its cap
				// (two 64-bin batches under MaxPending 128), so backlog
				// per worker saturates at 2 per busy shard. A 2.5
				// target makes the pool converge on the busy-shard
				// count — 2 on steady (matching the hand-tuned pool),
				// the max on the eight-view burst — instead of parking
				// an extra idle worker per shard.
				ScaleUpBacklog: 2.5,
			}
		} else {
			cfg.Workers = fixedW
		}
		return engine.NewMonitor(cfg)
	}
	addViews := func(mon *engine.Monitor, n int) []string {
		views := make([]string, n)
		for i := range views {
			views[i] = fmt.Sprintf("view-%d", i)
			det, err := core.NewOnlineDetector(history, routing, core.OnlineConfig{Window: seedBins})
			if err != nil {
				b.Fatal(err)
			}
			if err := mon.AddDetectorView(views[i], det); err != nil {
				b.Fatal(err)
			}
		}
		return views
	}

	const steadyRounds = 400
	runSteady := func(auto bool) time.Duration {
		mon := newMonitor(auto)
		defer mon.Close()
		views := addViews(mon, 2)
		feed := func(rounds, turn0 int) {
			for r := 0; r < rounds; r++ {
				for v := range views {
					if err := mon.Ingest(views[v], chunk(turn0+r+v)); err != nil {
						b.Fatal(err)
					}
				}
			}
			mon.Flush()
		}
		feed(60, 0) // warmup: the autoscaler finds its steady pool size
		start := time.Now()
		feed(steadyRounds, 60)
		elapsed := time.Since(start)
		if auto && mon.Stats().WorkersHighWater <= 1 {
			b.Fatal("autoscaler never grew on steady load")
		}
		return elapsed
	}

	const burstCycles, burstChunks = 6, 16
	runBursty := func(auto bool) time.Duration {
		mon := newMonitor(auto)
		defer mon.Close()
		views := addViews(mon, 8)
		start := time.Now()
		for c := 0; c < burstCycles; c++ {
			for k := 0; k < burstChunks; k++ {
				for v := range views {
					if err := mon.Ingest(views[v], chunk(c*burstChunks+k+v)); err != nil {
						b.Fatal(err)
					}
				}
			}
			mon.Flush() // the burst drains before the next one arrives
		}
		elapsed := time.Since(start)
		if auto {
			if hw := mon.Stats().WorkersHighWater; hw <= fixedW {
				b.Fatalf("autoscaler peaked at %d workers on the eight-view burst", hw)
			}
		}
		return elapsed
	}

	// Best of three per configuration: the gates compare capability, not
	// one run's scheduling luck.
	best := func(run func(bool) time.Duration, auto bool) time.Duration {
		bt := run(auto)
		for i := 0; i < 2; i++ {
			if t := run(auto); t < bt {
				bt = t
			}
		}
		return bt
	}

	// The gates are capability claims — "the autoscaler can match the
	// hand-tuned pool on steady load and beat it on bursts" — so a
	// noisy shared-runner sample must not fail CI by itself: the whole
	// comparison is re-attempted, and only a property that fails every
	// independent attempt (a real regression, which fails them all
	// deterministically) fails the benchmark.
	const attempts = 3
	var steadyRatio, burstSpeedup float64
	for i := 0; i < b.N; i++ {
		ok := false
		for a := 0; a < attempts && !ok; a++ {
			steadyFixed := best(runSteady, false)
			steadyAuto := best(runSteady, true)
			burstFixed := best(runBursty, false)
			burstAuto := best(runBursty, true)
			steadyRatio = steadyAuto.Seconds() / steadyFixed.Seconds()
			burstSpeedup = burstFixed.Seconds() / burstAuto.Seconds()
			ok = steadyRatio <= 1.10 && burstSpeedup > 1.0
		}
		if !ok {
			b.Fatalf("autoscaler contract failed in all %d attempts: steady ratio %.2f (want <= 1.10), bursty speedup %.2fx (want > 1.0)",
				attempts, steadyRatio, burstSpeedup)
		}
	}
	b.ReportMetric(steadyRatio, "steady_time_ratio")
	b.ReportMetric(burstSpeedup, "bursty_speedup")
}

// BenchmarkSnapshotRestore prices the checkpoint path per backend on
// the Abilene-scale model: one op is Snapshot into a reused buffer plus
// Restore into a second, separately constructed detector — the full
// state migration a warm restart performs. snapshot-bytes reports the
// envelope size, the quantity an operator budgets checkpoint storage
// and transfer by; cmd/benchjson gates both against the committed
// BENCH_snapshot.json baselines.
func BenchmarkSnapshotRestore(b *testing.B) {
	d := experiments.AbileneSim()
	links := d.Links
	bins, _ := links.Dims()
	routing := d.Topo.RoutingMatrix()
	builders := []struct {
		name  string
		build func() (core.ViewDetector, error)
	}{
		{"subspace", func() (core.ViewDetector, error) {
			return core.NewOnlineDetector(links, routing, core.OnlineConfig{Window: bins})
		}},
		{"incremental", func() (core.ViewDetector, error) {
			return core.NewIncrementalDetector(links, routing, core.IncrementalConfig{})
		}},
		{"sketch", func() (core.ViewDetector, error) {
			return core.NewSketchDetector(links, routing, core.SketchConfig{})
		}},
		{"ewma", func() (core.ViewDetector, error) {
			return forecast.NewDetector(links, forecast.Config{Kind: forecast.EWMA})
		}},
		{"hybrid", func() (core.ViewDetector, error) {
			triage, err := forecast.NewDetector(links, forecast.Config{Kind: forecast.EWMA})
			if err != nil {
				return nil, err
			}
			identify, err := core.NewOnlineDetector(links, routing, core.OnlineConfig{Window: bins})
			if err != nil {
				return nil, err
			}
			return core.NewHybridDetector(triage, identify, links, core.HybridConfig{})
		}},
	}
	for _, bl := range builders {
		b.Run(bl.name, func(b *testing.B) {
			src, err := bl.build()
			if err != nil {
				b.Fatal(err)
			}
			dst, err := bl.build()
			if err != nil {
				b.Fatal(err)
			}
			var buf bytes.Buffer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := src.Snapshot(&buf); err != nil {
					b.Fatal(err)
				}
				if err := dst.Restore(bytes.NewReader(buf.Bytes())); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(buf.Len()), "snapshot-bytes")
		})
	}
}
