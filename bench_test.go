// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus the ablations listed in DESIGN.md and the
// computational claim of Section 7.1. Each benchmark runs the complete
// experiment per iteration and reports the headline quantity of the
// corresponding table or figure as a custom metric, so `go test -bench=.`
// both times the pipeline and reproduces the results.
package netanomaly_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"netanomaly"
	"netanomaly/internal/core"
	"netanomaly/internal/engine"
	"netanomaly/internal/eval"
	"netanomaly/internal/experiments"
	"netanomaly/internal/forecast"
	"netanomaly/internal/mat"
	"netanomaly/internal/netmeas"
	"netanomaly/internal/tomo"
	"netanomaly/internal/topology"
	"netanomaly/internal/wavelet"
)

// sweepStride subsamples the injection day in sweep-based benchmarks so a
// single iteration stays in the seconds range (stride 1 is the paper's
// full 144-bin day; results at stride 6 agree within a point or two).
const sweepStride = 6

func BenchmarkTable1DatasetSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkFigure1AnomalyIllustration(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f1 := experiments.Figure1(d)
		if len(f1.LinkSeries) == 0 {
			b.Fatal("no links")
		}
	}
}

func BenchmarkFigure3ScreePlot(b *testing.B) {
	var top float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		top = rows[0].Fractions[0]
	}
	b.ReportMetric(top, "pc1_variance_fraction")
}

func BenchmarkFigure4Projections(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	var rank int
	for i := 0; i < b.N; i++ {
		f4, err := experiments.Figure4(d)
		if err != nil {
			b.Fatal(err)
		}
		rank = f4.Rank
	}
	b.ReportMetric(float64(rank), "normal_rank")
}

func BenchmarkFigure5ResidualTimeseries(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	var limit float64
	for i := 0; i < b.N; i++ {
		f5, err := experiments.Figure5(d)
		if err != nil {
			b.Fatal(err)
		}
		limit = f5.Limit999
	}
	b.ReportMetric(limit, "q_limit_999")
}

func BenchmarkFigure6RankOrder(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	var detected int
	for i := 0; i < b.N; i++ {
		f6, err := experiments.Figure6(d, eval.FourierLabeler{}, 40)
		if err != nil {
			b.Fatal(err)
		}
		detected = 0
		for j, a := range f6.Ranked.Anomalies {
			if a.Size >= f6.Cutoff && f6.Ranked.Detected[j] {
				detected++
			}
		}
	}
	b.ReportMetric(float64(detected), "above_cutoff_detected")
}

func BenchmarkTable2ActualAnomalies(b *testing.B) {
	var det float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		det = rows[0].Result.DetectionRate()
	}
	b.ReportMetric(det, "sprint1_fourier_detection")
}

// benchStudy builds (once) the injection studies shared by the Figure
// 7/8/9 and Table 3 benchmarks.
var benchStudies []experiments.InjectionStudy

func studiesForBench(b *testing.B) []experiments.InjectionStudy {
	b.Helper()
	if benchStudies != nil {
		return benchStudies
	}
	for _, d := range experiments.AllDatasets() {
		s, err := experiments.NewInjectionStudy(d, sweepStride)
		if err != nil {
			b.Fatal(err)
		}
		benchStudies = append(benchStudies, s)
	}
	return benchStudies
}

func BenchmarkFigure7InjectionHistograms(b *testing.B) {
	ss := studiesForBench(b)
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		for _, s := range ss {
			f7 := experiments.Figure7(s)
			rate = f7.LargeRate
		}
	}
	b.ReportMetric(rate, "abilene_large_detection")
}

func BenchmarkFigure8DetectionByTime(b *testing.B) {
	ss := studiesForBench(b)
	b.ResetTimer()
	var spread float64
	for i := 0; i < b.N; i++ {
		for _, s := range ss {
			f8 := experiments.Figure8(s)
			spread = f8.MaxRate - f8.MinRate
		}
	}
	b.ReportMetric(spread, "abilene_rate_spread")
}

func BenchmarkFigure9RateVsFlowSize(b *testing.B) {
	ss := studiesForBench(b)
	b.ResetTimer()
	var gap float64
	for i := 0; i < b.N; i++ {
		for _, s := range ss {
			f9 := experiments.Figure9(s)
			gap = f9.SmallQuartileRate - f9.TopFlowsRate
		}
	}
	b.ReportMetric(gap, "small_minus_top_rate")
}

func BenchmarkTable3SyntheticSummary(b *testing.B) {
	ss := studiesForBench(b)
	b.ResetTimer()
	var largeDet float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(ss)
		largeDet = rows[0].Detection
	}
	b.ReportMetric(largeDet, "sprint1_large_detection")
}

// BenchmarkTable3FullSweep runs one complete injection sweep (one size,
// full day at the bench stride, all flows) per iteration — the paper's
// actual workload, timed end to end.
func BenchmarkTable3FullSweep(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewInjectionStudy(d, sweepStride); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10BasisComparison(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	var sep float64
	for i := 0; i < b.N; i++ {
		f10, err := experiments.Figure10(d)
		if err != nil {
			b.Fatal(err)
		}
		sep = f10.SubspaceSeparation
	}
	b.ReportMetric(sep, "subspace_separation")
}

// BenchmarkSVD1008x49 times the decomposition of a paper-sized
// measurement matrix. Section 7.1 reports under two seconds on a 1 GHz
// laptop for exactly this shape.
func BenchmarkSVD1008x49(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	y := mat.Zeros(1008, 49)
	for i := 0; i < 1008; i++ {
		for j := 0; j < 49; j++ {
			y.Set(i, j, rng.NormFloat64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := mat.SVD(y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelFit times the full model pipeline (PCA + separation +
// Q-limit) on real link-load data — the cost of the weekly refit in
// online deployment.
func BenchmarkModelFit(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Diagnoser(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectPerBin times the per-measurement online cost: one SPE
// test against a fitted model.
func BenchmarkDetectPerBin(b *testing.B) {
	d := experiments.SprintSim1()
	diag, err := d.Diagnoser()
	if err != nil {
		b.Fatal(err)
	}
	row := d.Links.Row(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diag.Detector().Detect(row)
	}
}

// BenchmarkDiagnosePerBin times detection + identification +
// quantification for one anomalous measurement.
func BenchmarkDiagnosePerBin(b *testing.B) {
	d := experiments.SprintSim1()
	diag, err := d.Diagnoser()
	if err != nil {
		b.Fatal(err)
	}
	row := d.Links.Row(d.TrueAnomalies[0].Bin)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := diag.DiagnoseAt(row); !ok {
			b.Fatal("anomaly bin must alarm")
		}
	}
}

func BenchmarkAblationSubspaceRank(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSubspaceRank(d, []int{2, 5, 10}, sweepStride*4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationConfidence(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationConfidence(d, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEigVsSVD(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	var diff float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationEigVsSVD(d)
		if err != nil {
			b.Fatal(err)
		}
		diff = res.ProjectorDiff
	}
	b.ReportMetric(diff, "projector_diff")
}

// BenchmarkAblationIdentification compares the closed-form identification
// scan against the literal Equation (1) recomputation on one measurement.
func BenchmarkAblationIdentification(b *testing.B) {
	d := experiments.SprintSim1()
	diag, err := d.Diagnoser()
	if err != nil {
		b.Fatal(err)
	}
	row := d.Links.Row(d.TrueAnomalies[0].Bin)
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			diag.Identifier().Identify(row)
		}
	})
	b.Run("equation-1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			diag.Identifier().IdentifyNaive(row)
		}
	})
}

// BenchmarkEigPaperSize times the covariance eigendecomposition path on a
// paper-sized matrix, the alternative Section 7.1 discusses.
func BenchmarkEigPaperSize(b *testing.B) {
	d := experiments.SprintSim1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FitEig(d.Links); err != nil {
			b.Fatal(err)
		}
	}
}

// largeLinkTrace builds a paper-shaped week (1008 bins) over links
// measurement columns with diurnal low-rank structure plus noise — the
// workload profile of a large backbone where the full-SVD refit starts
// to hurt.
func largeLinkTrace(links int) *mat.Dense {
	const bins = 1008
	rng := rand.New(rand.NewSource(9))
	amp := make([]float64, links)
	phase := make([]float64, links)
	for l := 0; l < links; l++ {
		amp[l] = 1e7 * (1 + rng.Float64())
		phase[l] = 2 * math.Pi * rng.Float64()
	}
	y := mat.Zeros(bins, links)
	for b := 0; b < bins; b++ {
		day := 2 * math.Pi * float64(b%144) / 144
		for l := 0; l < links; l++ {
			v := amp[l] * (1.2 + 0.8*math.Sin(day+phase[l]))
			y.Set(b, l, v+amp[l]*0.05*rng.NormFloat64())
		}
	}
	return y
}

// benchSinkDetector counts bins and raises nothing — the ingest
// benchmarks measure the transport and dispatch layers, not a model.
type benchSinkDetector struct {
	links int
	n     atomic.Int64
}

func (d *benchSinkDetector) Seed(*mat.Dense) error { return nil }
func (d *benchSinkDetector) ProcessBatch(y *mat.Dense) ([]core.Alarm, error) {
	d.n.Add(int64(y.Rows()))
	return nil, nil
}
func (d *benchSinkDetector) Refit() error          { return nil }
func (d *benchSinkDetector) WaitRefits()           {}
func (d *benchSinkDetector) TakeRefitError() error { return nil }
func (d *benchSinkDetector) Stats() core.ViewStats {
	return core.ViewStats{Backend: "sink", Links: d.links, Processed: int(d.n.Load())}
}

// BenchmarkBinaryIngest prices one measurement bin through the two
// ingest paths at m = 120: the CSV path (parse the stream, hand the
// matrix to Ingest) against the binary wire format decoded straight
// into pooled batch buffers (IngestBinary). One op is one bin; the
// timed loop runs the binary path, the CSV path is measured once as
// the reference, and the benchmark fails itself if the binary path is
// under 5x the CSV throughput or allocates a heap object per bin at
// steady state — the committed BENCH_ingest.json trajectory holds
// these two numbers per PR.
func BenchmarkBinaryIngest(b *testing.B) {
	const links = 120
	y := largeLinkTrace(links)
	bins := y.Rows()

	var binBuf, csvBuf bytes.Buffer
	if err := netmeas.WriteMatrixBinary(&binBuf, y); err != nil {
		b.Fatal(err)
	}
	if err := netanomaly.WriteMatrixCSV(&csvBuf, y, nil); err != nil {
		b.Fatal(err)
	}
	binBytes, csvBytes := binBuf.Bytes(), csvBuf.Bytes()

	mon := engine.NewMonitor(engine.Config{Workers: 1, BatchSize: 64, MaxPending: 256, Overload: engine.OverloadBlock})
	defer mon.Close()
	if err := mon.AddDetectorView("v", &benchSinkDetector{links: links}); err != nil {
		b.Fatal(err)
	}
	binStream := func() {
		dec, err := netmeas.NewBinaryDecoder(bytes.NewReader(binBytes))
		if err != nil {
			b.Fatal(err)
		}
		if err := mon.IngestBinary("v", dec); err != nil {
			b.Fatal(err)
		}
		mon.Flush()
	}
	csvStream := func() {
		m, _, err := netanomaly.ReadMatrixCSV(bytes.NewReader(csvBytes))
		if err != nil {
			b.Fatal(err)
		}
		if err := mon.Ingest("v", m); err != nil {
			b.Fatal(err)
		}
		mon.Flush()
	}

	binStream() // warm the pool and the queue's backing array
	if perBin := testing.AllocsPerRun(3, binStream) / float64(bins); perBin >= 1 {
		b.Fatalf("binary ingest allocates %.3f heap objects per bin at steady state, want amortized < 1", perBin)
	}
	csvStream() // fault in the CSV path before timing it
	const csvReps = 3
	csvStart := time.Now()
	for i := 0; i < csvReps; i++ {
		csvStream()
	}
	csvPerBin := time.Since(csvStart).Seconds() / float64(csvReps*bins)

	b.ReportAllocs()
	b.ResetTimer()
	fed := 0
	for fed < b.N {
		binStream()
		fed += bins
	}
	b.StopTimer()
	binPerBin := b.Elapsed().Seconds() / float64(fed)
	speedup := csvPerBin / binPerBin
	b.ReportMetric(speedup, "x_vs_csv")
	b.ReportMetric(1/binPerBin, "bins/sec")
	if speedup < 5 {
		b.Fatalf("binary ingest is only %.1fx the CSV path (%.0f ns/bin vs %.0f ns/bin), want >= 5x",
			speedup, binPerBin*1e9, csvPerBin*1e9)
	}
}

// BenchmarkSketchRefit prices a streaming shard's model rebuild at
// m = 120 across the three covariance strategies: the full-SVD window
// fit, the incremental backend's m x m tracked-covariance eigensolve,
// and the sketch backend's l x l Frequent-Directions eigenproblem
// (l = 4x rank). Every sub-benchmark produces a ready subspace model
// of the same rank, so ns/op are directly comparable; the committed
// BENCH_sketch.json trajectory records the ratios per PR.
func BenchmarkSketchRefit(b *testing.B) {
	const links, rank = 120, 5
	y := largeLinkTrace(links)

	b.Run("full-svd-window", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := core.Fit(y)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.Build(p, rank); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("covtracker-eig", func(b *testing.B) {
		tr, err := core.NewCovTracker(links, 1)
		if err != nil {
			b.Fatal(err)
		}
		tr.UpdateAll(y)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tr.Model(rank); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("sketch-eig", func(b *testing.B) {
		sk, err := core.NewFDSketch(links, 4*rank)
		if err != nil {
			b.Fatal(err)
		}
		if err := sk.InsertAll(y); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, span, err := sk.PCA()
			if err != nil {
				b.Fatal(err)
			}
			if span < rank {
				b.Fatalf("sketch spans %d directions, need %d", span, rank)
			}
			if _, err := core.Build(p, rank); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("sketch-update-batch", func(b *testing.B) {
		// The amortized per-batch price the sketch pays to keep its
		// cheap refit available — the counterpart of the incremental
		// backend's covtracker-update-batch row.
		sk, err := core.NewFDSketch(links, 4*rank)
		if err != nil {
			b.Fatal(err)
		}
		if err := sk.InsertAll(y); err != nil {
			b.Fatal(err)
		}
		chunk := mat.NewDense(64, links, y.RawData()[:64*links])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sk.InsertAll(chunk); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIncrementalRefit compares the two ways a streaming shard can
// rebuild its model on an m >= 100 link trace: the subspace backend's
// full-SVD fit over the 1008-bin window (O(t·m^2) bidiagonalization)
// versus the incremental backend's eigensolve on the tracked m x m
// covariance (no window snapshot, no SVD). Both sub-benchmarks produce
// a ready subspace model of the same rank, so ns/op are directly
// comparable; the acceptance bar is the covtracker path winning at this
// scale. The update-batch sub-benchmark prices the amortized cost the
// tracker pays per 64-bin batch to keep that cheap refit available
// (report: 0 allocs — all scratch is preallocated).
func BenchmarkIncrementalRefit(b *testing.B) {
	const links, rank = 120, 5
	y := largeLinkTrace(links)

	b.Run("full-svd-window", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := core.Fit(y)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.Build(p, rank); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("covtracker-eig", func(b *testing.B) {
		tr, err := core.NewCovTracker(links, 1)
		if err != nil {
			b.Fatal(err)
		}
		tr.UpdateAll(y)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tr.Model(rank); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("covtracker-update-batch", func(b *testing.B) {
		tr, err := core.NewCovTracker(links, 0.999)
		if err != nil {
			b.Fatal(err)
		}
		tr.UpdateAll(y)
		chunk := mat.NewDense(64, links, y.RawData()[:64*links])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.UpdateAll(chunk)
		}
	})
}

// BenchmarkCovTrackerUpdate times the per-bin cost of the incremental
// model maintenance of Section 7.1 (rank-1 covariance update).
func BenchmarkCovTrackerUpdate(b *testing.B) {
	d := experiments.SprintSim1()
	_, dim := d.Links.Dims()
	tr, err := core.NewCovTracker(dim, 0.999)
	if err != nil {
		b.Fatal(err)
	}
	row := d.Links.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Update(row)
	}
}

// BenchmarkCovTrackerRefresh times the on-demand model rebuild from
// tracked state (the m x m eigenproblem), the cheap alternative to a
// full-window SVD refit.
func BenchmarkCovTrackerRefresh(b *testing.B) {
	d := experiments.SprintSim1()
	_, dim := d.Links.Dims()
	tr, err := core.NewCovTracker(dim, 1)
	if err != nil {
		b.Fatal(err)
	}
	tr.UpdateAll(d.Links)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Model(5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiscaleDetector times fitting and scanning the Section 7.3
// wavelet-domain detector at three scales on a paper-sized week.
func BenchmarkMultiscaleDetector(b *testing.B) {
	// 1024 bins (dyadic) on Abilene.
	topo := experiments.AbileneSim().Topo
	y := mat.Zeros(1024, topo.NumLinks())
	links := experiments.AbileneSim().Links
	for bi := 0; bi < 1008; bi++ {
		y.SetRow(bi, links.RowView(bi))
	}
	for bi := 1008; bi < 1024; bi++ {
		y.SetRow(bi, links.RowView(bi-144))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		md, err := wavelet.NewMultiscaleDetector(y, 3, 0.999)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := md.Detect(y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTomogravityEstimate times one per-bin traffic matrix estimate
// — the Section 8 comparator for anomaly sizing.
func BenchmarkTomogravityEstimate(b *testing.B) {
	d := experiments.AbileneSim()
	tg := tomo.NewTomogravity(d.Topo)
	row := d.Links.Row(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tg.Estimate(row); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorThroughput compares the engine's batched multi-shard
// hot path against the per-bin serial OnlineDetector on the same
// Abilene-scale workload. Both sub-benchmarks process one measurement
// bin per op, so their ns/op are directly comparable: the monitor path
// must be at least 3x the serial baseline's throughput (the batched
// low-rank SPE kernel does O(m*rank) work per bin where the serial
// residual projection does O(m^2), on top of lock-free model reads).
func BenchmarkMonitorThroughput(b *testing.B) {
	d := experiments.AbileneSim()
	topo := d.Topo
	links := d.Links
	bins, m := links.Dims()

	b.Run("serial-baseline", func(b *testing.B) {
		od, err := core.NewOnlineDetector(links, topo.RoutingMatrix(), core.OnlineConfig{Window: bins})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := od.Process(links.RowView(i % bins)); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("monitor-4shards", func(b *testing.B) {
		const batch = 64
		mon := engine.NewMonitor(engine.Config{
			Workers:   4,
			BatchSize: batch,
			OnAlarm:   func(engine.Alarm) {},
		})
		views := make([]string, 4)
		for s := range views {
			views[s] = fmt.Sprintf("view-%d", s)
			if err := mon.AddView(views[s], links, topo.RoutingMatrix()); err != nil {
				b.Fatal(err)
			}
		}
		data := links.RawData()
		b.ResetTimer()
		for fed, turn := 0, 0; fed < b.N; turn++ {
			n := batch
			if b.N-fed < n {
				n = b.N - fed
			}
			r0 := (turn * batch) % (bins - batch)
			chunk := mat.NewDense(n, m, data[r0*m:(r0+n)*m])
			if err := mon.Ingest(views[turn%len(views)], chunk); err != nil {
				b.Fatal(err)
			}
			fed += n
		}
		mon.Flush()
		b.StopTimer()
		mon.Close()
	})
}

// BenchmarkForecastProcessBatch times the forecast backends' streaming
// hot path — per-link prediction, residual scoring against adaptive
// thresholds, and state update — in 64-bin batches over the Abilene
// trace, reporting bins/sec per kind. The forecast model is the
// cheapest in the backend family (no matrix pass at all for the
// smoothing kinds), which is what makes per-bin refit experiments
// affordable; a regression here erases that advantage.
func BenchmarkForecastProcessBatch(b *testing.B) {
	d := experiments.AbileneSim()
	links := d.Links
	bins, m := links.Dims()
	const batch = 64
	for _, kind := range []forecast.Kind{forecast.EWMA, forecast.HoltWinters, forecast.Fourier} {
		b.Run(string(kind), func(b *testing.B) {
			det, err := forecast.NewDetector(links, forecast.Config{Kind: kind})
			if err != nil {
				b.Fatal(err)
			}
			data := links.RawData()
			b.ResetTimer()
			fed := 0
			for turn := 0; fed < b.N; turn++ {
				n := batch
				if b.N-fed < n {
					n = b.N - fed
				}
				r0 := (turn * batch) % (bins - batch)
				chunk := mat.NewDense(n, m, data[r0*m:(r0+n)*m])
				if _, err := det.ProcessBatch(chunk); err != nil {
					b.Fatal(err)
				}
				fed += n
			}
			b.StopTimer()
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed, "bins/sec")
			}
		})
	}
}

// BenchmarkHybridThroughput prices the hybrid triage→identification
// backend against its two ingredients on an anomaly-free Abilene-scale
// stream. Every sub-benchmark processes one measurement bin per op in
// 64-bin batches, so ns/op are directly comparable. The acceptance bar
// is the hybrid staying within ~1.5x of the forecast-only cost
// (measured ~1.06x): on a clean stream the triage stage never
// escalates, so the hybrid's steady state is the EWMA recursion plus
// batch bookkeeping, and the sub-benchmark fails if more than 1% of
// clean bins leak through to the subspace stage. The subspace-only row
// is the reference point: with refits disabled the batched low-rank
// SPE kernel is itself cheap at 41 links — what the hybrid saves is
// not this kernel but everything around it (the O(t·m^2) window-SVD
// refit treadmill, per-view window maintenance) while still carrying
// subspace-grade Flow attribution on every escalated bin.
func BenchmarkHybridThroughput(b *testing.B) {
	const links = 41
	y := largeLinkTrace(links)
	bins, m := y.Dims()
	routing := topology.Abilene().RoutingMatrix()
	const batch = 64

	feed := func(b *testing.B, det core.ViewDetector) {
		data := y.RawData()
		b.ResetTimer()
		fed := 0
		for turn := 0; fed < b.N; turn++ {
			n := batch
			if b.N-fed < n {
				n = b.N - fed
			}
			r0 := (turn * batch) % (bins - batch)
			chunk := mat.NewDense(n, m, data[r0*m:(r0+n)*m])
			if _, err := det.ProcessBatch(chunk); err != nil {
				b.Fatal(err)
			}
			fed += n
		}
		b.StopTimer()
		if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
			b.ReportMetric(float64(b.N)/elapsed, "bins/sec")
		}
	}

	b.Run("forecast-only", func(b *testing.B) {
		det, err := forecast.NewDetector(y, forecast.Config{Kind: forecast.EWMA})
		if err != nil {
			b.Fatal(err)
		}
		feed(b, det)
	})

	b.Run("hybrid", func(b *testing.B) {
		triage, err := forecast.NewDetector(y, forecast.Config{Kind: forecast.EWMA})
		if err != nil {
			b.Fatal(err)
		}
		identify, err := core.NewOnlineDetector(y, routing, core.OnlineConfig{Window: bins})
		if err != nil {
			b.Fatal(err)
		}
		det, err := core.NewHybridDetector(triage, identify, y, core.HybridConfig{})
		if err != nil {
			b.Fatal(err)
		}
		feed(b, det)
		if hs := det.HybridStats(); hs.Escalated > hs.Triage.Processed/100 {
			b.Fatalf("clean stream escalated %d of %d bins; the hybrid is not idling its subspace stage", hs.Escalated, hs.Triage.Processed)
		}
	})

	b.Run("subspace-only", func(b *testing.B) {
		det, err := core.NewOnlineDetector(y, routing, core.OnlineConfig{Window: bins})
		if err != nil {
			b.Fatal(err)
		}
		feed(b, det)
	})
}

// BenchmarkMultiFlowIdentification times the Theta-matrix identification
// of Section 7.2 over one candidate set per destination PoP.
func BenchmarkMultiFlowIdentification(b *testing.B) {
	d := experiments.AbileneSim()
	diag, err := d.Diagnoser()
	if err != nil {
		b.Fatal(err)
	}
	topo := d.Topo
	candidates := make([][]int, topo.NumPoPs())
	for dst := 0; dst < topo.NumPoPs(); dst++ {
		for org := 0; org < topo.NumPoPs(); org++ {
			if org != dst {
				candidates[dst] = append(candidates[dst], topo.FlowID(org, dst))
			}
		}
	}
	row := d.Links.Row(d.TrueAnomalies[0].Bin)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diag.Identifier().IdentifyMulti(row, candidates)
	}
}

// BenchmarkAutoscaleThroughput pits the elastic worker pool against a
// hand-tuned fixed pool on the two canonical load shapes, with bounded
// queues and Block backpressure pacing the producer to the service rate
// in both. Steady: two continuously busy views, for which the
// hand-tuned pool is two workers (per-view FIFO caps useful parallelism
// at the number of active shards, so more would idle) — the autoscaler
// must land within 10% of it. Bursty: synchronized eight-view bursts
// arriving at the pool still tuned for the steady trickle — the
// autoscaler must grow into the burst's parallelism and beat it
// outright. Both gates fail the benchmark, so the CI bench smoke
// enforces the autoscaler's contract, not just its liveness.
func BenchmarkAutoscaleThroughput(b *testing.B) {
	// The comparison is about real parallelism: on fewer than four
	// hardware threads the burst scenario has nothing for extra workers
	// to run on and the gates below would measure the scheduler, not
	// the autoscaler (NumCPU, not GOMAXPROCS — an env override cannot
	// conjure cores).
	if runtime.NumCPU() < 4 || runtime.GOMAXPROCS(0) < 4 {
		b.Skip("autoscale comparison needs >= 4 CPUs")
	}
	d := experiments.AbileneSim()
	links := d.Links
	bins, m := links.Dims()
	const seedBins = 256
	history := mat.NewDense(seedBins, m, links.RawData()[:seedBins*m])
	stream := mat.NewDense(bins-seedBins, m, links.RawData()[seedBins*m:])
	streamBins := stream.Rows()
	routing := d.Topo.RoutingMatrix()

	maxW := 8
	if g := runtime.GOMAXPROCS(0); g < maxW {
		maxW = g
	}
	const fixedW = 2 // hand-tuned to the steady scenario's two active views

	chunk := func(turn int) *mat.Dense {
		r0 := (turn * 64) % (streamBins - 64)
		return mat.NewDense(64, m, stream.RawData()[r0*m:(r0+64)*m])
	}
	newMonitor := func(auto bool) *engine.Monitor {
		cfg := engine.Config{
			BatchSize:  64,
			MaxPending: 128,
			Overload:   engine.OverloadBlock,
			OnAlarm:    func(engine.Alarm) {},
		}
		if auto {
			cfg.Autoscale = &engine.AutoscaleConfig{
				MinWorkers: 1, MaxWorkers: maxW,
				Interval: 2 * time.Millisecond,
				// Block pacing pins every busy view's queue at its cap
				// (two 64-bin batches under MaxPending 128), so backlog
				// per worker saturates at 2 per busy shard. A 2.5
				// target makes the pool converge on the busy-shard
				// count — 2 on steady (matching the hand-tuned pool),
				// the max on the eight-view burst — instead of parking
				// an extra idle worker per shard.
				ScaleUpBacklog: 2.5,
			}
		} else {
			cfg.Workers = fixedW
		}
		return engine.NewMonitor(cfg)
	}
	addViews := func(mon *engine.Monitor, n int) []string {
		views := make([]string, n)
		for i := range views {
			views[i] = fmt.Sprintf("view-%d", i)
			det, err := core.NewOnlineDetector(history, routing, core.OnlineConfig{Window: seedBins})
			if err != nil {
				b.Fatal(err)
			}
			if err := mon.AddDetectorView(views[i], det); err != nil {
				b.Fatal(err)
			}
		}
		return views
	}

	const steadyRounds = 400
	runSteady := func(auto bool) time.Duration {
		mon := newMonitor(auto)
		defer mon.Close()
		views := addViews(mon, 2)
		feed := func(rounds, turn0 int) {
			for r := 0; r < rounds; r++ {
				for v := range views {
					if err := mon.Ingest(views[v], chunk(turn0+r+v)); err != nil {
						b.Fatal(err)
					}
				}
			}
			mon.Flush()
		}
		feed(60, 0) // warmup: the autoscaler finds its steady pool size
		start := time.Now()
		feed(steadyRounds, 60)
		elapsed := time.Since(start)
		if auto && mon.Stats().WorkersHighWater <= 1 {
			b.Fatal("autoscaler never grew on steady load")
		}
		return elapsed
	}

	const burstCycles, burstChunks = 6, 16
	runBursty := func(auto bool) time.Duration {
		mon := newMonitor(auto)
		defer mon.Close()
		views := addViews(mon, 8)
		start := time.Now()
		for c := 0; c < burstCycles; c++ {
			for k := 0; k < burstChunks; k++ {
				for v := range views {
					if err := mon.Ingest(views[v], chunk(c*burstChunks+k+v)); err != nil {
						b.Fatal(err)
					}
				}
			}
			mon.Flush() // the burst drains before the next one arrives
		}
		elapsed := time.Since(start)
		if auto {
			if hw := mon.Stats().WorkersHighWater; hw <= fixedW {
				b.Fatalf("autoscaler peaked at %d workers on the eight-view burst", hw)
			}
		}
		return elapsed
	}

	// Best of three per configuration: the gates compare capability, not
	// one run's scheduling luck.
	best := func(run func(bool) time.Duration, auto bool) time.Duration {
		bt := run(auto)
		for i := 0; i < 2; i++ {
			if t := run(auto); t < bt {
				bt = t
			}
		}
		return bt
	}

	// The gates are capability claims — "the autoscaler can match the
	// hand-tuned pool on steady load and beat it on bursts" — so a
	// noisy shared-runner sample must not fail CI by itself: the whole
	// comparison is re-attempted, and only a property that fails every
	// independent attempt (a real regression, which fails them all
	// deterministically) fails the benchmark.
	const attempts = 3
	var steadyRatio, burstSpeedup float64
	for i := 0; i < b.N; i++ {
		ok := false
		for a := 0; a < attempts && !ok; a++ {
			steadyFixed := best(runSteady, false)
			steadyAuto := best(runSteady, true)
			burstFixed := best(runBursty, false)
			burstAuto := best(runBursty, true)
			steadyRatio = steadyAuto.Seconds() / steadyFixed.Seconds()
			burstSpeedup = burstFixed.Seconds() / burstAuto.Seconds()
			ok = steadyRatio <= 1.10 && burstSpeedup > 1.0
		}
		if !ok {
			b.Fatalf("autoscaler contract failed in all %d attempts: steady ratio %.2f (want <= 1.10), bursty speedup %.2fx (want > 1.0)",
				attempts, steadyRatio, burstSpeedup)
		}
	}
	b.ReportMetric(steadyRatio, "steady_time_ratio")
	b.ReportMetric(burstSpeedup, "bursty_speedup")
}
