package netanomaly_test

// Go-native fuzzing of the binary ingestion boundary, the mirror of
// FuzzReadMatrixCSV for the wire format (run continuously with
// `go test -fuzz=FuzzDecodeBinaryFrames .`; the seed corpus in
// testdata/fuzz runs as an ordinary test in CI). The decoder feeds
// pooled buffers sized from attacker-controlled header fields, so the
// properties checked are load-bearing: every accepted stream is a
// rectangular matrix of finite values, every rejection is classified —
// structural corruption wraps ErrBinaryFormat, truncation wraps
// io.ErrUnexpectedEOF — and an accepted stream re-encodes to the
// identical bytes under its own negotiated wire format (v1 per-bin
// frames, or v2 batch frames with the raw or xor codec), because each
// accepted (version, codec, capacity) choice has exactly one canonical
// serialization per matrix.

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"netanomaly"
)

// binSeed renders a valid two-frame v1 stream the mutator can start from.
func binSeed() []byte {
	var buf bytes.Buffer
	m := netanomaly.NewMatrix(2, 3, []float64{1, 2.5, -3e9, 0, 5e-300, 6})
	if err := netanomaly.WriteMatrixBinary(&buf, m); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// binSeedV2 renders a valid v2 stream — one full batch frame plus a
// short trailer — under the given codec. The values mix integral
// counts (long xor delta runs), a constant column (width-0 section),
// and full-precision noise.
func binSeedV2(codec netanomaly.Codec, batch int) []byte {
	var buf bytes.Buffer
	data := []float64{
		1e6, 7, 0.125, 2e6, 7, 0.25, 1.5e6, 7, -0.5, 2.5e6, 7, 1e-9,
		3e6, 7, 64, 1e6, 7, -3e9, 9e5, 7, 5e-300, 8e5, 7, 42,
	}
	m := netanomaly.NewMatrix(8, 3, data)
	wf := netanomaly.WireFormat{Version: 2, Codec: codec, BatchBins: batch}
	if err := netanomaly.WriteMatrixBinaryFormat(&buf, m, wf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzDecodeBinaryFrames(f *testing.F) {
	valid := binSeed()
	f.Add(valid)
	f.Add([]byte{})                             // empty stream
	f.Add(valid[:12])                           // header only, no frames
	f.Add(valid[:len(valid)-5])                 // truncated mid-payload
	f.Add(valid[:13])                           // truncated mid-length-prefix
	f.Add(append([]byte("XAMB"), valid[4:]...)) // bad magic
	mut := func(b []byte, i int, v byte) []byte {
		c := append([]byte(nil), b...)
		c[i] = v
		return c
	}
	f.Add(mut(valid, 4, 9))    // unsupported version
	f.Add(mut(valid, 5, 1))    // nonzero reserved byte
	f.Add(mut(valid, 8, 0))    // link count 0 (low byte of little-endian u32)
	f.Add(mut(valid, 11, 255)) // link count far beyond MaxBinaryLinks
	f.Add(mut(valid, 12, 7))   // frame length prefix != 8*links
	// NaN payload: all-ones exponent with a mantissa bit set.
	nan := append([]byte(nil), valid...)
	for i := 16; i < 24; i++ {
		nan[i] = 0xff
	}
	f.Add(nan)

	// v2 batch frames, both codecs: valid streams (full frame + short
	// trailer, a capacity-1 degenerate, a single short frame), then the
	// v2-specific mutations — codec byte, batch capacity, bin count,
	// payload length, xor envelope bytes.
	v2raw := binSeedV2(netanomaly.CodecRaw, 5)
	v2xor := binSeedV2(netanomaly.CodecXOR, 5)
	f.Add(v2raw)
	f.Add(v2xor)
	f.Add(binSeedV2(netanomaly.CodecRaw, 1))   // every frame full at capacity 1
	f.Add(binSeedV2(netanomaly.CodecXOR, 64))  // single short frame
	f.Add(v2raw[:len(v2raw)-3])                // truncated mid-batch-payload
	f.Add(v2raw[:14])                          // truncated mid-batch-header
	f.Add(mut(v2raw, 5, 9))                    // unsupported codec
	f.Add(mut(v2raw, 6, 0))                    // batch capacity 0
	f.Add(mut(v2raw, 7, 255))                  // batch capacity beyond MaxBatchBins
	f.Add(mut(v2raw, 12, 0))                   // bin count 0
	f.Add(mut(v2raw, 12, 9))                   // bin count beyond capacity
	f.Add(mut(v2raw, 16, 77))                  // raw payload length mismatch
	f.Add(mut(v2xor, 16, 255))                 // xor payload length out of range
	f.Add(mut(v2xor, 28, 65))                  // xor trail byte > 63
	f.Add(mut(v2xor, 29, 9))                   // xor width byte > 8
	f.Add(append(append([]byte(nil), v2xor...), v2xor[12:]...)) // frame after short frame

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := netanomaly.ReadMatrixBinary(bytes.NewReader(b))
		if err != nil {
			if !errors.Is(err, netanomaly.ErrBinaryFormat) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("unclassified decode error %v: rejections must wrap ErrBinaryFormat (corrupt) or io.ErrUnexpectedEOF (truncated)", err)
			}
			return
		}
		rows, cols := m.Dims()
		if rows <= 0 || cols <= 0 {
			t.Fatalf("accepted stream produced a %dx%d matrix", rows, cols)
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if v := m.At(i, j); math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite value %v at %d,%d slipped past the decoder", v, i, j)
				}
			}
		}
		// Canonical form: under its own (version, codec, capacity) the
		// format has no padding, optional fields or alternate encodings,
		// so re-serializing an accepted stream must reproduce it byte
		// for byte. The header already decoded once, so sniffing the
		// format again cannot fail.
		dec, err := netanomaly.NewBinaryDecoder(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("re-sniffing an accepted header failed: %v", err)
		}
		var buf bytes.Buffer
		if err := netanomaly.WriteMatrixBinaryFormat(&buf, m, dec.Format()); err != nil {
			t.Fatalf("re-encoding accepted matrix: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), b) {
			t.Fatalf("accepted stream is not canonical: %d input bytes re-encode to %d different bytes under %+v", len(b), buf.Len(), dec.Format())
		}
	})
}
