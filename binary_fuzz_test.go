package netanomaly_test

// Go-native fuzzing of the binary ingestion boundary, the mirror of
// FuzzReadMatrixCSV for the wire format (run continuously with
// `go test -fuzz=FuzzDecodeBinaryFrames .`; the seed corpus in
// testdata/fuzz runs as an ordinary test in CI). The decoder feeds
// pooled buffers sized from attacker-controlled header fields, so the
// properties checked are load-bearing: every accepted stream is a
// rectangular matrix of finite values, every rejection is classified —
// structural corruption wraps ErrBinaryFormat, truncation wraps
// io.ErrUnexpectedEOF — and an accepted stream re-encodes to the
// identical bytes, because the format has exactly one canonical
// serialization per matrix.

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"netanomaly"
)

// binSeed renders a valid two-frame stream the mutator can start from.
func binSeed() []byte {
	var buf bytes.Buffer
	m := netanomaly.NewMatrix(2, 3, []float64{1, 2.5, -3e9, 0, 5e-300, 6})
	if err := netanomaly.WriteMatrixBinary(&buf, m); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzDecodeBinaryFrames(f *testing.F) {
	valid := binSeed()
	f.Add(valid)
	f.Add([]byte{})                             // empty stream
	f.Add(valid[:12])                           // header only, no frames
	f.Add(valid[:len(valid)-5])                 // truncated mid-payload
	f.Add(valid[:13])                           // truncated mid-length-prefix
	f.Add(append([]byte("XAMB"), valid[4:]...)) // bad magic
	mut := func(i int, b byte) []byte {
		c := append([]byte(nil), valid...)
		c[i] = b
		return c
	}
	f.Add(mut(4, 9))    // unsupported version
	f.Add(mut(5, 1))    // nonzero reserved byte
	f.Add(mut(8, 0))    // link count 0 (low byte of little-endian u32)
	f.Add(mut(11, 255)) // link count far beyond MaxBinaryLinks
	f.Add(mut(12, 7))   // frame length prefix != 8*links
	// NaN payload: all-ones exponent with a mantissa bit set.
	nan := append([]byte(nil), valid...)
	for i := 16; i < 24; i++ {
		nan[i] = 0xff
	}
	f.Add(nan)
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := netanomaly.ReadMatrixBinary(bytes.NewReader(b))
		if err != nil {
			if !errors.Is(err, netanomaly.ErrBinaryFormat) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("unclassified decode error %v: rejections must wrap ErrBinaryFormat (corrupt) or io.ErrUnexpectedEOF (truncated)", err)
			}
			return
		}
		rows, cols := m.Dims()
		if rows <= 0 || cols <= 0 {
			t.Fatalf("accepted stream produced a %dx%d matrix", rows, cols)
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if v := m.At(i, j); math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite value %v at %d,%d slipped past the decoder", v, i, j)
				}
			}
		}
		// Canonical form: the format has no padding, optional fields or
		// alternate encodings, so re-serializing an accepted stream must
		// reproduce it byte for byte.
		var buf bytes.Buffer
		if err := netanomaly.WriteMatrixBinary(&buf, m); err != nil {
			t.Fatalf("re-encoding accepted matrix: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), b) {
			t.Fatalf("accepted stream is not canonical: %d input bytes re-encode to %d different bytes", len(b), buf.Len())
		}
	})
}
