module netanomaly

go 1.24
