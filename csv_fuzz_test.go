package netanomaly_test

// Go-native fuzzing of the CSV ingestion boundary (run continuously
// with `go test -fuzz=FuzzReadMatrixCSV .`; the seed corpus below runs
// as an ordinary test in CI). The properties checked are the ones the
// rest of the system silently relies on: a successful parse yields a
// rectangular matrix of finite values whose header, if any, matches
// the column count — and writing that result back out and re-reading
// it reproduces it exactly, so a file that survives ingestion once
// survives it forever.

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"netanomaly"
)

func FuzzReadMatrixCSV(f *testing.F) {
	f.Add("a,b\n1,2\n3,4\n")
	f.Add("1,2\n3,4\n")
	f.Add("")
	f.Add("x\n")
	f.Add("0,linkA\n1,2\n")      // numeric-ID header
	f.Add("1, 2\n3,4\n")         // padded cells must stay data
	f.Add("NaN,1\n2,3\n")        // non-finite data
	f.Add("1e999,0\n")           // out-of-range float
	f.Add("\ufeff1,2\n3,4\n")    // UTF-8 BOM
	f.Add("\"a\nb\",c\n1,2\n")   // quoted multi-line header cell
	f.Add("h1,h2\n1,2\n3,4,5\n") // ragged data row
	f.Add("-0,0x1p-2\n5,6\n")    // negative zero, hex float
	f.Add(",\n1,2\n")            // empty header cells
	f.Add("a,b\n1,2\r\n3,4\r\n") // CRLF line endings
	f.Fuzz(func(t *testing.T, s string) {
		m, header, err := netanomaly.ReadMatrixCSV(strings.NewReader(s))
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		rows, cols := m.Dims()
		if rows <= 0 || cols <= 0 {
			t.Fatalf("accepted input produced a %dx%d matrix", rows, cols)
		}
		if header != nil && len(header) != cols {
			t.Fatalf("header has %d names for %d columns", len(header), cols)
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if v := m.At(i, j); math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite value %v at %d,%d slipped past ingestion", v, i, j)
				}
			}
		}

		// Round trip: what was accepted must survive its own
		// serialization bit for bit. (Skip the header comparison when a
		// cell contains a bare carriage return — encoding/csv
		// normalizes \r\n to \n inside quoted fields on re-read.)
		var buf bytes.Buffer
		if err := netanomaly.WriteMatrixCSV(&buf, m, header); err != nil {
			t.Fatalf("re-serializing accepted matrix: %v", err)
		}
		m2, header2, err := netanomaly.ReadMatrixCSV(&buf)
		if err != nil {
			t.Fatalf("re-reading serialized matrix: %v", err)
		}
		r2, c2 := m2.Dims()
		if r2 != rows || c2 != cols {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d", rows, cols, r2, c2)
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if a, b := m.At(i, j), m2.At(i, j); a != b {
					t.Fatalf("round trip changed value at %d,%d: %v -> %v", i, j, a, b)
				}
			}
		}
		headerHasCR := false
		for _, h := range header {
			if strings.Contains(h, "\r") {
				headerHasCR = true
			}
		}
		// A one-column header whose only cell is empty (input `""`) is
		// not representable on write: encoding/csv emits it as a blank
		// line, which every CSV reader skips. Found by the fuzzer;
		// carved out rather than contorting the writer.
		if len(header) == 1 && header[0] == "" {
			headerHasCR = true
		}
		if !headerHasCR {
			if (header == nil) != (header2 == nil) || len(header) != len(header2) {
				t.Fatalf("round trip changed header: %q -> %q", header, header2)
			}
			for j := range header {
				if header[j] != header2[j] {
					t.Fatalf("round trip changed header cell %d: %q -> %q", j, header[j], header2[j])
				}
			}
		}
	})
}

// TestReadMatrixCSVRejectsNonFinite pins the fuzz-driven fix: NaN and
// infinite cells — which strconv happily parses and every downstream
// model fit silently chokes on — now fail at the ingestion boundary
// with the offending row and column named.
func TestReadMatrixCSVRejectsNonFinite(t *testing.T) {
	for _, in := range []string{
		"1,NaN\n",
		"1,2\n+Inf,4\n",
		"a,b\n1,-inf\n",
		"1e999,0\n", // overflows to +Inf inside strconv
	} {
		if _, _, err := netanomaly.ReadMatrixCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("non-finite input %q accepted", in)
		}
	}
}

// TestReadMatrixCSVTrimsCells pins the second fix: whitespace-padded
// numeric cells ("1, 2") used to fail ParseFloat, silently demoting the
// first data row to a header and erroring on the rest; a BOM on the
// first cell did the same to otherwise clean exports.
func TestReadMatrixCSVTrimsCells(t *testing.T) {
	m, header, err := netanomaly.ReadMatrixCSV(strings.NewReader("1, 2\n 3,4 \n"))
	if err != nil {
		t.Fatal(err)
	}
	if header != nil {
		t.Fatalf("padded numeric rows misread as header %q", header)
	}
	if r, c := m.Dims(); r != 2 || c != 2 {
		t.Fatalf("parsed %dx%d, want 2x2", r, c)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("padded cells misparsed: %+v", m)
	}

	m, header, err = netanomaly.ReadMatrixCSV(strings.NewReader("\ufeff5,6\n7,8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if header != nil {
		t.Fatalf("BOM demoted the first data row to header %q", header)
	}
	if m.At(0, 0) != 5 {
		t.Fatalf("BOM cell misparsed: got %v", m.At(0, 0))
	}
}
