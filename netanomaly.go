package netanomaly

import (
	"context"
	"fmt"
	"io"
	"time"

	"netanomaly/internal/core"
	"netanomaly/internal/engine"
	"netanomaly/internal/forecast"
	"netanomaly/internal/incident"
	"netanomaly/internal/mat"
	"netanomaly/internal/netmeas"
	"netanomaly/internal/topology"
	"netanomaly/internal/traffic"
	"netanomaly/internal/wavelet"
)

// Topology is a PoP-level network with routing. Build one with
// NewTopologyBuilder or use the Abilene / SprintEurope / Synthetic
// presets.
type Topology = topology.Topology

// TopologyBuilder accumulates PoPs and duplex links.
type TopologyBuilder = topology.Builder

// PoP is a point of presence (node).
type PoP = topology.PoP

// Link is a directed link; intra-PoP links have Src == Dst.
type Link = topology.Link

// NewTopologyBuilder starts a topology definition.
func NewTopologyBuilder(name string) *TopologyBuilder { return topology.NewBuilder(name) }

// Abilene returns the 11-PoP Internet2 backbone of the paper (41 links).
func Abilene() *Topology { return topology.Abilene() }

// SprintEurope returns the 13-PoP European tier-1 backbone of the paper
// (49 links).
func SprintEurope() *Topology { return topology.SprintEurope() }

// SyntheticTopology returns a random connected topology with n PoPs and
// the given number of duplex edges, deterministic in seed.
func SyntheticTopology(n, edges int, seed int64) *Topology {
	return topology.Synthetic(n, edges, seed)
}

// Matrix is a dense row-major matrix of float64. Measurement matrices are
// bins x links; OD matrices are bins x flows.
type Matrix = mat.Dense

// NewMatrix returns a rows x cols matrix backed by data (nil allocates
// zeros).
func NewMatrix(rows, cols int, data []float64) *Matrix {
	return mat.NewDense(rows, cols, data)
}

// TrafficConfig parameterizes the synthetic OD-flow generator.
type TrafficConfig = traffic.Config

// DefaultTrafficConfig returns the paper-scale generator configuration:
// one week of ten-minute bins with diurnal and weekly structure.
func DefaultTrafficConfig(seed int64) TrafficConfig { return traffic.DefaultConfig(seed) }

// GenerateTraffic produces a bins x flows OD traffic matrix for the
// topology.
func GenerateTraffic(topo *Topology, cfg TrafficConfig) (*Matrix, error) {
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		return nil, err
	}
	return gen.Generate(), nil
}

// LinkLoads converts OD traffic to link loads through the topology's
// routing: y = Ax per bin.
func LinkLoads(topo *Topology, od *Matrix) *Matrix { return traffic.LinkLoads(topo, od) }

// Anomaly is a volume anomaly: Delta bytes added to (or, if negative,
// removed from) OD flow Flow at bin Bin.
type Anomaly = traffic.Anomaly

// InjectAnomalies adds the anomalies to the OD matrix in place.
func InjectAnomalies(od *Matrix, anomalies []Anomaly) { traffic.Inject(od, anomalies) }

// LabeledBin is one ground-truth anomaly label — the bin and, when
// known, the responsible OD flow (Flow < 0 scores detection only).
type LabeledBin = traffic.LabeledBin

// FlowCountAnomaly is a scan-shaped injection: extra IP flows, no
// extra bytes, along one OD flow's path at one bin. Apply it to a
// LinkMetricSet with InjectFlowCountAnomaly; only multi-metric
// detectors can see it.
type FlowCountAnomaly = traffic.FlowCountAnomaly

// Scenario is one entry of the labeled attack-scenario library:
// beaconing, scans, floods vs. flash crowds, exfiltration, lateral
// movement — each composing onto any topology's OD-flow routing,
// deterministic in its seed, and emitting flow-attributed ground
// truth.
type Scenario = traffic.Scenario

// ScenarioResult is a scenario application's ground truth, metric-level
// injections, and touched flows.
type ScenarioResult = traffic.ScenarioResult

// Scenarios returns the attack-scenario registry in stable order.
func Scenarios() []Scenario { return traffic.Scenarios() }

// ScenarioByName resolves a scenario registry name ("beacon", "scan",
// "synflood", "flashcrowd", "exfil", "lateral").
func ScenarioByName(name string) (Scenario, error) { return traffic.ScenarioByName(name) }

// StreamTruth rebases absolute-bin scenario truth onto a stream
// starting at bin start, dropping labels before it.
func StreamTruth(truth []LabeledBin, start int) []LabeledBin {
	return traffic.StreamTruth(truth, start)
}

// Options configure the diagnosis pipeline. The zero value gives the
// paper's defaults: 3-sigma subspace separation and a 99.9% confidence
// detection threshold.
type Options = core.Options

// Diagnosis is a detected, identified and quantified volume anomaly.
type Diagnosis = core.Diagnosis

// Diagnoser runs the subspace method's three steps over link
// measurements.
type Diagnoser = core.Diagnoser

// NewDiagnoser fits the subspace model on the measurement matrix
// (bins x links) for the given topology.
func NewDiagnoser(links *Matrix, topo *Topology, opts Options) (*Diagnoser, error) {
	_, m := links.Dims()
	if m != topo.NumLinks() {
		return nil, fmt.Errorf("netanomaly: measurements have %d links, topology has %d", m, topo.NumLinks())
	}
	return core.NewDiagnoser(links, topo.RoutingMatrix(), opts)
}

// OnlineDetector applies the method to a live measurement stream,
// refitting its model periodically (Section 7.1 of the paper).
type OnlineDetector = core.OnlineDetector

// OnlineConfig configures NewOnlineDetector.
type OnlineConfig = core.OnlineConfig

// Alarm is an anomaly raised by the online detector.
type Alarm = core.Alarm

// NewOnlineDetector fits an initial model on history (bins x links) and
// returns a streaming detector for the topology.
func NewOnlineDetector(history *Matrix, topo *Topology, cfg OnlineConfig) (*OnlineDetector, error) {
	_, m := history.Dims()
	if m != topo.NumLinks() {
		return nil, fmt.Errorf("netanomaly: history has %d links, topology has %d", m, topo.NumLinks())
	}
	return core.NewOnlineDetector(history, topo.RoutingMatrix(), cfg)
}

// Monitor is the concurrent streaming detection engine: one detector
// shard per registered traffic view, measurement batches fanned across a
// worker pool, model refits in the background with an atomic swap so
// ingestion never stalls. Use it when monitoring several topologies or
// vantage points (or one high-rate stream in batches); for a single
// stream processed bin by bin, OnlineDetector is simpler.
type Monitor = engine.Monitor

// MonitorConfig configures NewMonitor; the zero value gives GOMAXPROCS
// workers, 64-bin batches, unbounded per-view queues and the paper's
// detection defaults.
type MonitorConfig = engine.Config

// MonitorAlarm is a diagnosed anomaly tagged with the view that raised
// it.
type MonitorAlarm = engine.Alarm

// OverloadPolicy selects what Monitor.Ingest does when a view's bounded
// queue is full: block the producer (backpressure), drop the oldest
// queued batch (freshness), or fail with ErrOverloaded (load shedding).
type OverloadPolicy = engine.OverloadPolicy

const (
	// OverloadBlock stalls the producer until workers drain space — the
	// default, and with Monitor.IngestStream the backpressure reaches
	// the measurement channel and its collector.
	OverloadBlock = engine.OverloadBlock
	// OverloadDropOldest evicts the oldest queued batches to make room;
	// dropped bins raise no alarms and are counted in the monitor's
	// Stats and per-view QueueStats.
	OverloadDropOldest = engine.OverloadDropOldest
	// OverloadError rejects the overflow and returns ErrOverloaded.
	OverloadError = engine.OverloadError
)

// ErrOverloaded is returned (wrapped) by Ingest/IngestStream under
// OverloadError when a view's queue is full; test with errors.Is.
var ErrOverloaded = engine.ErrOverloaded

// ParseOverloadPolicy maps "block", "dropoldest" or "error" to its
// policy — a convenience for flag plumbing.
func ParseOverloadPolicy(s string) (OverloadPolicy, error) {
	return engine.ParseOverloadPolicy(s)
}

// AutoscaleConfig tunes the elastic worker pool; see WithAutoscale for
// the common case and the engine documentation for the knobs.
type AutoscaleConfig = engine.AutoscaleConfig

// MonitorStats is the monitor's load snapshot: current and high-water
// worker counts plus queue depth, drop and rejection counters summed
// over views. Retrieve with Monitor.Stats (works after Close too).
type MonitorStats = engine.Stats

// ViewQueueStats is one view's ingest-queue accounting (depth, accepted
// bins, bins lost to the overload policy); retrieve with
// Monitor.QueueStats. At quiescence EnqueuedBins - DroppedBins equals
// the view's ViewStats.Processed.
type ViewQueueStats = engine.QueueStats

// MonitorOption adjusts a MonitorConfig in NewMonitor — the load-safety
// knobs (WithMaxPending, WithOverloadPolicy, WithAutoscale) without
// spelling out engine configuration structs.
type MonitorOption func(*MonitorConfig)

// WithMaxPending bounds every view's queue to at most bins unprocessed
// bins; a full queue engages the overload policy. 0 (the default) is
// unbounded.
func WithMaxPending(bins int) MonitorOption {
	return func(c *MonitorConfig) { c.MaxPending = bins }
}

// WithOverloadPolicy selects the full-queue behavior (default
// OverloadBlock).
func WithOverloadPolicy(p OverloadPolicy) MonitorOption {
	return func(c *MonitorConfig) { c.Overload = p }
}

// WithAutoscale lets the worker pool grow and shrink between min and
// max workers from observed queue depth and batch latency (EW-smoothed,
// with hysteresis on scale-down), instead of holding a fixed pool.
// Shard affinity — and therefore per-view FIFO ordering — is preserved
// across every resize. Pass 0 for either bound to take the defaults
// (min 1, max GOMAXPROCS); for the finer knobs set
// MonitorConfig.Autoscale directly.
func WithAutoscale(min, max int) MonitorOption {
	return func(c *MonitorConfig) {
		c.Autoscale = &AutoscaleConfig{MinWorkers: min, MaxWorkers: max}
	}
}

// NewMonitor starts a streaming detection engine with no views. Register
// views with AddTopologyView (or Monitor.AddView with an explicit
// routing matrix) and feed them with Monitor.Ingest. Options apply on
// top of cfg.
func NewMonitor(cfg MonitorConfig, opts ...MonitorOption) *Monitor {
	for _, o := range opts {
		o(&cfg)
	}
	return engine.NewMonitor(cfg)
}

// AddTopologyView registers a subspace detector shard on the monitor
// for a topology's measurement stream: history (bins x links) seeds the
// model and sliding window, and the topology's routing matrix drives
// identification. For other backends, use AddView with options.
func AddTopologyView(m *Monitor, name string, history *Matrix, topo *Topology) error {
	return AddView(m, name, history, topo)
}

// ViewDetector is the streaming contract every detector backend
// presents to a Monitor shard; see the Detector* kinds for the shipped
// implementations.
type ViewDetector = core.ViewDetector

// ViewStats is a snapshot of a shard's detector state, retrieved with
// Monitor.ViewStats.
type ViewStats = core.ViewStats

// DetectorKind selects the streaming backend AddView builds for a view.
type DetectorKind string

const (
	// DetectorSubspace is the windowed subspace method (the default):
	// sliding-window model, full SVD refits, per-bin flow
	// identification.
	DetectorSubspace DetectorKind = "subspace"
	// DetectorIncremental maintains the model from a running
	// mean/covariance with forgetting factor lambda: no window
	// snapshots, refits solve only the m x m eigenproblem, and the
	// drift gate skips rebuilds when the subspace has not moved.
	DetectorIncremental DetectorKind = "incremental"
	// DetectorMultiscale applies one subspace model per wavelet scale
	// (Section 7.3), catching sustained anomalies single-bin detectors
	// miss; alarms report time regions without flow identification.
	DetectorMultiscale DetectorKind = "multiscale"
	// DetectorMultiFlow fans one subspace model per traffic metric
	// (bytes / flow counts / packet size, Section 7.2) over shared
	// routing and votes, catching scans that move flow counts without
	// moving bytes. History and batches carry the metric blocks
	// column-stacked (see StackMatrices and DeriveLinkMetrics).
	DetectorMultiFlow DetectorKind = "multiflow"
	// DetectorEWMA forecasts each link independently with exponential
	// smoothing and alarms on k-sigma residual exceedance against
	// adaptive per-link thresholds — the paper's Section 7.3 temporal
	// baseline, streaming. Alarms localize in time and link, not OD
	// flow (Diagnosis.Flow is -1).
	DetectorEWMA DetectorKind = "ewma"
	// DetectorHoltWinters is the level+trend double-exponential
	// forecasting baseline with the same adaptive residual thresholds.
	DetectorHoltWinters DetectorKind = "holtwinters"
	// DetectorFourier fits the paper's eight-period sinusoid basis on a
	// sliding window (refit in the background) and alarms on residuals
	// against adaptive per-link thresholds (Section 6.2's temporal
	// model, streaming).
	DetectorFourier DetectorKind = "fourier"
	// DetectorHybrid pairs an always-on forecast triage stage
	// (WithTriageKind, default ewma) with a subspace identification
	// stage: every bin pays only the cheap per-link recursion, and bins
	// the triage stage alarms are escalated (WithEscalation) to a
	// subspace model that attributes the responsible OD flow — the
	// paper's "temporal methods localize in time+link, the subspace
	// method identifies the flow" trade collapsed into one view. See
	// docs/BACKENDS.md for the full selection guide.
	DetectorHybrid DetectorKind = "hybrid"
	// DetectorSketch maintains the covariance as a Frequent-Directions
	// sketch of l rows (WithSketchSize, default 4x the model rank)
	// instead of the full m x m matrix: memory O(l x m) independent of
	// stream length, refits solve only the l x l sketch eigenproblem,
	// and the spectral-norm guarantee keeps the normal subspace — which
	// detection runs on — close to the exact fit's whenever l is at
	// least twice the model rank. The cheapest subspace-family refit on
	// wide (large-m) deployments.
	DetectorSketch DetectorKind = "sketch"
)

type viewConfig struct {
	kind       DetectorKind
	lambda     float64
	driftTol   float64
	levels     int
	quorum     int
	metrics    []string
	alpha      float64
	beta       float64
	k          float64
	triage     DetectorKind
	escalation string
	hysteresis int
	sketchSize int
	limits     engine.ViewLimits
}

// ViewOption customizes the backend AddView builds.
type ViewOption func(*viewConfig)

// WithDetector selects the backend kind (default DetectorSubspace).
func WithDetector(kind DetectorKind) ViewOption {
	return func(vc *viewConfig) { vc.kind = kind }
}

// WithDetectorKind selects the backend kind by its string name
// ("subspace", "incremental", "multiscale", "multiflow", "ewma",
// "holtwinters", "fourier", "hybrid", "sketch") — a convenience for callers
// plumbing the kind from flags or config files; unknown names fail in
// AddView.
func WithDetectorKind(kind string) ViewOption {
	return WithDetector(DetectorKind(kind))
}

// WithAlpha sets the forecast backends' level smoothing gain in (0, 1].
// For DetectorEWMA, 0 (the default) selects alpha per link by grid
// search on the seed history, mirroring the paper's multi-grid
// parameter search; DetectorHoltWinters defaults to 0.3.
func WithAlpha(alpha float64) ViewOption {
	return func(vc *viewConfig) { vc.alpha = alpha }
}

// WithBeta sets the Holt-Winters trend smoothing gain in (0, 1]
// (default 0.1).
func WithBeta(beta float64) ViewOption {
	return func(vc *viewConfig) { vc.beta = beta }
}

// WithThresholdK sets the forecast backends' threshold multiplier: a
// link alarms when its forecast residual exceeds mean + k*sigma of its
// adaptively tracked residuals (default 6).
func WithThresholdK(k float64) ViewOption {
	return func(vc *viewConfig) { vc.k = k }
}

// WithTriageKind selects the hybrid backend's triage stage: one of the
// forecast kinds (DetectorEWMA, the default, DetectorHoltWinters or
// DetectorFourier). The forecast options (WithAlpha, WithBeta,
// WithThresholdK) configure it.
func WithTriageKind(kind DetectorKind) ViewOption {
	return func(vc *viewConfig) { vc.triage = kind }
}

// WithEscalation sets the hybrid backend's escalation policy — which
// triage-alarmed bins pay for subspace flow identification:
//
//	"immediate"   every triage alarm escalates (default)
//	"confirm:<n>" only after n consecutive alarmed bins; unconfirmed
//	              blips still alarm, without flow attribution
//	"always"      every bin escalates, alarmed or not — subspace-grade
//	              detection at subspace cost, for measuring triage miss
//
// Unknown policies fail in AddView.
func WithEscalation(policy string) ViewOption {
	return func(vc *viewConfig) { vc.escalation = policy }
}

// WithHysteresis keeps the hybrid backend's identification stage
// engaged for n bins after the last policy-driven escalation, so a
// triage stage oscillating around its threshold does not open a fresh
// subspace episode every other bin; HybridStats.EscalationRuns counts
// the episodes the hold collapses. 0 (the default) disables holding.
func WithHysteresis(n int) ViewOption {
	return func(vc *viewConfig) { vc.hysteresis = n }
}

// WithSketchSize sets the sketch backend's Frequent-Directions sketch
// to l rows (memory O(l x links), refit cost O(l^2 x links)). The
// default is 4x the model rank; AddView rejects l below 2x the rank —
// under that the sketch cannot hold the normal subspace — or below 4.
func WithSketchSize(l int) ViewOption {
	return func(vc *viewConfig) { vc.sketchSize = l }
}

// WithViewMaxPending bounds this view's queue of unprocessed bins,
// overriding the monitor-wide WithMaxPending value: n > 0 is the bound,
// n < 0 makes the view explicitly unbounded, and 0 (the default)
// inherits the monitor's setting. A latency-critical view can shed load
// while an archival view on the same monitor blocks, without splitting
// them across monitors.
func WithViewMaxPending(n int) ViewOption {
	return func(vc *viewConfig) { vc.limits.MaxPending = n }
}

// WithViewOverloadPolicy selects this view's full-queue behavior,
// overriding the monitor-wide WithOverloadPolicy value; views without
// it inherit the monitor's policy.
func WithViewOverloadPolicy(p OverloadPolicy) ViewOption {
	return func(vc *viewConfig) {
		pol := p
		vc.limits.Overload = &pol
	}
}

// WithLambda sets the incremental backend's forgetting factor in
// (0, 1]; 1 weights all history equally, 0.999 forgets with roughly a
// one-week time constant at ten-minute bins.
func WithLambda(lambda float64) ViewOption {
	return func(vc *viewConfig) { vc.lambda = lambda }
}

// WithDriftTolerance sets the incremental backend's rebuild gate: an
// automatic refit only swaps the model in when the residual projector
// has moved at least tol in Frobenius norm.
func WithDriftTolerance(tol float64) ViewOption {
	return func(vc *viewConfig) { vc.driftTol = tol }
}

// WithLevels sets the multiscale backend's wavelet depth (default 3:
// 2-, 4- and 8-bin features).
func WithLevels(levels int) ViewOption {
	return func(vc *viewConfig) { vc.levels = levels }
}

// WithQuorum sets how many metrics must flag a bin before the
// multi-flow backend alarms (default 1: any metric).
func WithQuorum(q int) ViewOption {
	return func(vc *viewConfig) { vc.quorum = q }
}

// WithMetrics names the multi-flow backend's stacked metric blocks in
// column order (default bytes, flows, pktsize).
func WithMetrics(names ...string) ViewOption {
	return func(vc *viewConfig) { vc.metrics = names }
}

// AddView registers a detector shard on the monitor for a topology's
// measurement stream, with the backend selected by options. history
// seeds the model: bins x links for the subspace, incremental, sketch,
// multiscale, forecast (ewma / holtwinters / fourier) and hybrid
// kinds, bins x (metrics x links) column-stacked for multiflow. The
// monitor's Window, RefitEvery and Options configure every kind
// uniformly (the forecast kinds take their thresholds from
// WithThresholdK rather than Options.Confidence). See docs/BACKENDS.md
// for the backend selection guide.
func AddView(m *Monitor, name string, history *Matrix, topo *Topology, opts ...ViewOption) error {
	vc := viewConfig{kind: DetectorSubspace, lambda: 1, levels: 3, quorum: 1}
	for _, o := range opts {
		o(&vc)
	}
	det, err := newViewDetector(&vc, history, topo, m.Config())
	if err != nil {
		return fmt.Errorf("netanomaly: view %q: %w", name, err)
	}
	return m.AddDetectorViewLimits(name, det, vc.limits)
}

// newViewDetector constructs and seeds the backend a viewConfig selects
// — the single construction path behind AddView and Restore, so a
// restored view's detector is built with exactly the parameters a fresh
// one would get.
func newViewDetector(vc *viewConfig, history *Matrix, topo *Topology, cfg MonitorConfig) (ViewDetector, error) {
	links := topo.NumLinks()
	routing := topo.RoutingMatrix()
	bins, cols := history.Dims()
	window := cfg.Window
	if window <= 0 {
		window = bins
	}
	wantCols := links
	if vc.kind == DetectorMultiFlow {
		if len(vc.metrics) == 0 {
			vc.metrics = netmeas.DefaultMetricNames
		}
		wantCols = len(vc.metrics) * links
	}
	if cols != wantCols {
		return nil, fmt.Errorf("history has %d columns, %s backend on %d links wants %d", cols, vc.kind, links, wantCols)
	}

	switch vc.kind {
	case DetectorSubspace:
		return core.NewOnlineDetector(history, routing, core.OnlineConfig{
			Window:     window,
			RefitEvery: cfg.RefitEvery,
			Options:    cfg.Options,
		})
	case DetectorIncremental:
		return core.NewIncrementalDetector(history, routing, core.IncrementalConfig{
			Lambda:     vc.lambda,
			RefitEvery: cfg.RefitEvery,
			DriftTol:   vc.driftTol,
			Options:    cfg.Options,
		})
	case DetectorMultiscale:
		return wavelet.NewStreamDetector(history, wavelet.StreamConfig{
			Levels:     vc.levels,
			Confidence: cfg.Options.Confidence,
			Window:     window,
			RefitEvery: cfg.RefitEvery,
		})
	case DetectorMultiFlow:
		return netmeas.NewMultiMetricDetector(history, routing, netmeas.MultiMetricConfig{
			Metrics: vc.metrics,
			Quorum:  vc.quorum,
			Online: core.OnlineConfig{
				Window:     window,
				RefitEvery: cfg.RefitEvery,
				Options:    cfg.Options,
			},
		})
	case DetectorEWMA, DetectorHoltWinters, DetectorFourier:
		return forecast.NewDetector(history, forecast.Config{
			Kind:       forecast.Kind(vc.kind),
			Alpha:      vc.alpha,
			Beta:       vc.beta,
			K:          vc.k,
			Window:     window,
			RefitEvery: cfg.RefitEvery,
		})
	case DetectorHybrid:
		return buildHybrid(*vc, history, routing, window, cfg)
	case DetectorSketch:
		return core.NewSketchDetector(history, routing, core.SketchConfig{
			SketchSize: vc.sketchSize,
			RefitEvery: cfg.RefitEvery,
			DriftTol:   vc.driftTol,
			Options:    cfg.Options,
		})
	default:
		return nil, fmt.Errorf("unknown detector kind %q", vc.kind)
	}
}

// HybridDetector is the triage→identification backend behind
// DetectorHybrid; retrieve it with Monitor.Detector and a type
// assertion to read its two-stage HybridStats.
type HybridDetector = core.HybridDetector

// HybridStats is a hybrid view's two-stage breakdown: per-stage
// detector snapshots plus the escalation counters (triage alarms,
// escalated bins, identified bins, suppressed blips).
type HybridStats = core.HybridStats

// buildHybrid assembles the triage→identification backend: a forecast
// detector as the always-on triage stage and a windowed subspace
// detector as the identification stage, composed under the escalation
// policy. The subspace stage's automatic refits are disabled — the
// hybrid re-seeds it from its clean-bin window on the monitor's refit
// cadence instead, so the model stays fresh without a per-bin subspace
// pass.
func buildHybrid(vc viewConfig, history *Matrix, routing *Matrix, window int, cfg MonitorConfig) (ViewDetector, error) {
	tkind := vc.triage
	if tkind == "" {
		tkind = DetectorEWMA
	}
	switch tkind {
	case DetectorEWMA, DetectorHoltWinters, DetectorFourier:
	default:
		return nil, fmt.Errorf("triage stage must be a forecast kind, got %q", tkind)
	}
	policy, confirm, err := core.ParseEscalation(vc.escalation)
	if err != nil {
		return nil, err
	}
	triage, err := forecast.NewDetector(history, forecast.Config{
		Kind:       forecast.Kind(tkind),
		Alpha:      vc.alpha,
		Beta:       vc.beta,
		K:          vc.k,
		Window:     window,
		RefitEvery: cfg.RefitEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("triage stage: %w", err)
	}
	identify, err := core.NewOnlineDetector(history, routing, core.OnlineConfig{
		Window:  window,
		Options: cfg.Options,
	})
	if err != nil {
		return nil, fmt.Errorf("identification stage: %w", err)
	}
	return core.NewHybridDetector(triage, identify, history, core.HybridConfig{
		Escalation: policy,
		Confirm:    confirm,
		Window:     window,
		RefitEvery: cfg.RefitEvery,
		Hysteresis: vc.hysteresis,
	})
}

// Correlator clusters the Monitor's per-bin alarm stream into
// deduplicated Incident records: alarms sharing an attributed OD flow
// (across views and metrics) or, when unattributed, an emitting view,
// merge into one incident while their bins overlap or gap by less than
// the quiet period. Feed it from the monitor's OnAlarm callback —
// c.Observe(a.View, a.Alarm) — or a TakeAlarms drain; it is safe under
// the callback's concurrency. See docs/BACKENDS.md's Incidents section.
type Correlator = incident.Correlator

// Incident is one correlated anomaly: merged bin span, peak SPE,
// attributed bytes, contributing views, and a severity of peak SPE ×
// duration × view agreement.
type Incident = incident.Incident

// IncidentKey is an incident's correlation identity: the attributed
// flow, or the emitting view (Region) for Flow = -1 alarms.
type IncidentKey = incident.Key

// IncidentEvent is one incident state transition (open → update →
// closed) delivered to the WithIncidentCallback observer.
type IncidentEvent = incident.Event

// IncidentStats is a correlator's lifetime transition counts.
type IncidentStats = incident.Stats

// Incident state transitions, as IncidentEvent.Type.
const (
	IncidentOpened  = incident.Opened
	IncidentUpdated = incident.Updated
	IncidentClosed  = incident.Closed
)

// CorrelatorOption configures NewCorrelator.
type CorrelatorOption func(*incident.Config)

// WithQuietPeriod sets the gap, in bins, that separates incidents: an
// alarm within the quiet period of an open incident's last alarm merges
// into it, and an incident closes once the stream advances a full quiet
// period past its last alarm (default 8).
func WithQuietPeriod(bins int) CorrelatorOption {
	return func(c *incident.Config) { c.QuietPeriod = bins }
}

// WithMaxLiveIncidents bounds the live-incident table (default 64);
// opening an incident beyond the bound force-closes the stalest one.
func WithMaxLiveIncidents(n int) CorrelatorOption {
	return func(c *incident.Config) { c.MaxLive = n }
}

// WithIncidentCallback installs the incident observer. It is invoked
// synchronously under the correlator's lock, possibly from several of
// the monitor's worker goroutines in turn, so it must be quick and must
// not call back into the correlator.
func WithIncidentCallback(fn func(IncidentEvent)) CorrelatorOption {
	return func(c *incident.Config) { c.OnEvent = fn }
}

// NewCorrelator builds the incident correlation stage. Wire it above a
// Monitor by observing every alarm, advance its clock with the
// processed-bin count when the stream pauses, and Flush at stream end:
//
//	corr := netanomaly.NewCorrelator(netanomaly.WithIncidentCallback(onIncident))
//	cfg.OnAlarm = func(a netanomaly.MonitorAlarm) { corr.Observe(a.View, a.Alarm) }
//	...
//	corr.Flush()
//
// Its Snapshot/Restore envelope (kind "incidents") concatenates after a
// Monitor checkpoint so a warm restart resumes open incidents without
// re-opening duplicates.
func NewCorrelator(opts ...CorrelatorOption) *Correlator {
	var cfg incident.Config
	for _, o := range opts {
		o(&cfg)
	}
	return incident.New(cfg)
}

// ErrSnapshotFormat classifies structurally corrupt detector or
// monitor snapshots (bad magic, impossible lengths, contradictory
// dimensions); truncation is classified separately as
// io.ErrUnexpectedEOF. Test with errors.Is.
var ErrSnapshotFormat = core.ErrSnapshotFormat

// ErrSnapshotMismatch classifies well-formed snapshots offered to the
// wrong detector or view: a different backend kind, link count, or
// incompatible construction parameters. Test with errors.Is.
var ErrSnapshotMismatch = core.ErrSnapshotMismatch

// ViewSpec tells Restore how to reconstruct one checkpointed view's
// detector: the same seed history, topology and options the view was
// originally registered with (AddView's arguments). Construction
// parameters live here, not in the checkpoint — the snapshot then
// replaces the detector's mutable state and validates that both sides
// agree on kind, link count and the rest.
type ViewSpec struct {
	// Name matches the view name in the checkpoint. An empty Name is a
	// wildcard: it describes any checkpointed view no other spec names
	// — the escape hatch for tools that restore a single-view
	// checkpoint without knowing what the writer called it.
	Name string
	// History seeds the reconstructed detector before its state is
	// replaced; same shape rules as AddView.
	History *Matrix
	// Topo supplies the links and routing matrix.
	Topo *Topology
	// Options select and configure the backend, exactly as passed to
	// AddView. Per-view queue limits (WithViewMaxPending,
	// WithViewOverloadPolicy) are not applied on restore — restored
	// views inherit the monitor-wide limits.
	Options []ViewOption
}

// Restore rebuilds a Monitor from a Monitor.Checkpoint stream: every
// checkpointed view is reconstructed from its ViewSpec, its detector
// state and queue counters restored, so the new monitor's alarm stream
// — sequence offsets included — continues bin-for-bin where the
// checkpointed one stopped. A checkpointed view without a spec, a spec
// whose backend kind disagrees with the snapshot, or a corrupt stream
// fails the whole restore (classified per ErrSnapshotFormat /
// ErrSnapshotMismatch / io.ErrUnexpectedEOF).
func Restore(cfg MonitorConfig, r io.Reader, views []ViewSpec, opts ...MonitorOption) (*Monitor, error) {
	for _, o := range opts {
		o(&cfg)
	}
	specs := make(map[string]ViewSpec, len(views))
	for _, v := range views {
		specs[v.Name] = v
	}
	factory := func(name, kind string, links int) (ViewDetector, error) {
		spec, ok := specs[name]
		if !ok {
			spec, ok = specs[""] // wildcard spec: any otherwise-unnamed view
		}
		if !ok {
			return nil, fmt.Errorf("netanomaly: checkpoint holds view %q but no ViewSpec describes it", name)
		}
		vc := viewConfig{kind: DetectorSubspace, lambda: 1, levels: 3, quorum: 1}
		for _, o := range spec.Options {
			o(&vc)
		}
		if string(vc.kind) != kind {
			return nil, fmt.Errorf("netanomaly: view %q: %w: spec builds a %s detector, checkpoint holds %s state",
				name, ErrSnapshotMismatch, vc.kind, kind)
		}
		det, err := newViewDetector(&vc, spec.History, spec.Topo, cfg)
		if err != nil {
			return nil, fmt.Errorf("netanomaly: view %q: %w", name, err)
		}
		return det, nil
	}
	return engine.NewMonitorFromCheckpoint(cfg, r, factory)
}

// LinkMeasurement is one bin of link loads delivered by a streaming
// collector; Monitor.IngestStream consumes channels of them.
type LinkMeasurement = netmeas.LinkMeasurement

// StreamMatrix replays the rows of a measurement matrix on a channel,
// one bin per interval (immediately when interval is zero), closing it
// after the last bin or when ctx is cancelled — the simulated SNMP
// poll feed of Section 7.1. Feed it to Monitor.IngestStream to drive a
// shard end-to-end from a live source.
func StreamMatrix(ctx context.Context, y *Matrix, interval time.Duration) <-chan LinkMeasurement {
	return netmeas.Stream(ctx, y, interval)
}

// LinkMetricSet holds the per-link metric series of Section 7.2
// (bytes, IP-flow counts, mean packet size) for one traffic matrix.
type LinkMetricSet = netmeas.LinkMetricSet

// LinkMetricConfig parameterizes DeriveLinkMetrics.
type LinkMetricConfig = netmeas.MetricConfig

// DeriveLinkMetrics synthesizes the alternative per-link metric series
// from OD traffic; LinkMetricSet.Stacked lays them out as the
// multi-flow backend's stacked history.
func DeriveLinkMetrics(topo *Topology, od *Matrix, cfg LinkMetricConfig) (*LinkMetricSet, error) {
	return netmeas.LinkMetrics(topo, od, cfg)
}

// StackMatrices column-stacks equal-row matrices — the layout the
// multi-flow backend consumes for history and measurement batches.
func StackMatrices(ms ...*Matrix) (*Matrix, error) {
	return netmeas.StackMatrices(ms...)
}

// MultiFlowCandidates builds the candidate sets for multi-flow anomaly
// identification (Section 7.2): one candidate per destination PoP,
// containing all flows converging on it — the natural hypothesis set for
// DDoS-style anomalies.
func MultiFlowCandidates(topo *Topology) [][]int {
	p := topo.NumPoPs()
	out := make([][]int, p)
	for dst := 0; dst < p; dst++ {
		for org := 0; org < p; org++ {
			if org == dst {
				continue
			}
			out[dst] = append(out[dst], topo.FlowID(org, dst))
		}
	}
	return out
}
