package netanomaly

import (
	"fmt"

	"netanomaly/internal/core"
	"netanomaly/internal/engine"
	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
	"netanomaly/internal/traffic"
)

// Topology is a PoP-level network with routing. Build one with
// NewTopologyBuilder or use the Abilene / SprintEurope / Synthetic
// presets.
type Topology = topology.Topology

// TopologyBuilder accumulates PoPs and duplex links.
type TopologyBuilder = topology.Builder

// PoP is a point of presence (node).
type PoP = topology.PoP

// Link is a directed link; intra-PoP links have Src == Dst.
type Link = topology.Link

// NewTopologyBuilder starts a topology definition.
func NewTopologyBuilder(name string) *TopologyBuilder { return topology.NewBuilder(name) }

// Abilene returns the 11-PoP Internet2 backbone of the paper (41 links).
func Abilene() *Topology { return topology.Abilene() }

// SprintEurope returns the 13-PoP European tier-1 backbone of the paper
// (49 links).
func SprintEurope() *Topology { return topology.SprintEurope() }

// SyntheticTopology returns a random connected topology with n PoPs and
// the given number of duplex edges, deterministic in seed.
func SyntheticTopology(n, edges int, seed int64) *Topology {
	return topology.Synthetic(n, edges, seed)
}

// Matrix is a dense row-major matrix of float64. Measurement matrices are
// bins x links; OD matrices are bins x flows.
type Matrix = mat.Dense

// NewMatrix returns a rows x cols matrix backed by data (nil allocates
// zeros).
func NewMatrix(rows, cols int, data []float64) *Matrix {
	return mat.NewDense(rows, cols, data)
}

// TrafficConfig parameterizes the synthetic OD-flow generator.
type TrafficConfig = traffic.Config

// DefaultTrafficConfig returns the paper-scale generator configuration:
// one week of ten-minute bins with diurnal and weekly structure.
func DefaultTrafficConfig(seed int64) TrafficConfig { return traffic.DefaultConfig(seed) }

// GenerateTraffic produces a bins x flows OD traffic matrix for the
// topology.
func GenerateTraffic(topo *Topology, cfg TrafficConfig) (*Matrix, error) {
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		return nil, err
	}
	return gen.Generate(), nil
}

// LinkLoads converts OD traffic to link loads through the topology's
// routing: y = Ax per bin.
func LinkLoads(topo *Topology, od *Matrix) *Matrix { return traffic.LinkLoads(topo, od) }

// Anomaly is a volume anomaly: Delta bytes added to (or, if negative,
// removed from) OD flow Flow at bin Bin.
type Anomaly = traffic.Anomaly

// InjectAnomalies adds the anomalies to the OD matrix in place.
func InjectAnomalies(od *Matrix, anomalies []Anomaly) { traffic.Inject(od, anomalies) }

// Options configure the diagnosis pipeline. The zero value gives the
// paper's defaults: 3-sigma subspace separation and a 99.9% confidence
// detection threshold.
type Options = core.Options

// Diagnosis is a detected, identified and quantified volume anomaly.
type Diagnosis = core.Diagnosis

// Diagnoser runs the subspace method's three steps over link
// measurements.
type Diagnoser = core.Diagnoser

// NewDiagnoser fits the subspace model on the measurement matrix
// (bins x links) for the given topology.
func NewDiagnoser(links *Matrix, topo *Topology, opts Options) (*Diagnoser, error) {
	_, m := links.Dims()
	if m != topo.NumLinks() {
		return nil, fmt.Errorf("netanomaly: measurements have %d links, topology has %d", m, topo.NumLinks())
	}
	return core.NewDiagnoser(links, topo.RoutingMatrix(), opts)
}

// OnlineDetector applies the method to a live measurement stream,
// refitting its model periodically (Section 7.1 of the paper).
type OnlineDetector = core.OnlineDetector

// OnlineConfig configures NewOnlineDetector.
type OnlineConfig = core.OnlineConfig

// Alarm is an anomaly raised by the online detector.
type Alarm = core.Alarm

// NewOnlineDetector fits an initial model on history (bins x links) and
// returns a streaming detector for the topology.
func NewOnlineDetector(history *Matrix, topo *Topology, cfg OnlineConfig) (*OnlineDetector, error) {
	_, m := history.Dims()
	if m != topo.NumLinks() {
		return nil, fmt.Errorf("netanomaly: history has %d links, topology has %d", m, topo.NumLinks())
	}
	return core.NewOnlineDetector(history, topo.RoutingMatrix(), cfg)
}

// Monitor is the concurrent streaming detection engine: one detector
// shard per registered traffic view, measurement batches fanned across a
// worker pool, model refits in the background with an atomic swap so
// ingestion never stalls. Use it when monitoring several topologies or
// vantage points (or one high-rate stream in batches); for a single
// stream processed bin by bin, OnlineDetector is simpler.
type Monitor = engine.Monitor

// MonitorConfig configures NewMonitor; the zero value gives GOMAXPROCS
// workers, 64-bin batches and the paper's detection defaults.
type MonitorConfig = engine.Config

// MonitorAlarm is a diagnosed anomaly tagged with the view that raised
// it.
type MonitorAlarm = engine.Alarm

// NewMonitor starts a streaming detection engine with no views. Register
// views with AddTopologyView (or Monitor.AddView with an explicit
// routing matrix) and feed them with Monitor.Ingest.
func NewMonitor(cfg MonitorConfig) *Monitor { return engine.NewMonitor(cfg) }

// AddTopologyView registers a detector shard on the monitor for a
// topology's measurement stream: history (bins x links) seeds the model
// and sliding window, and the topology's routing matrix drives
// identification.
func AddTopologyView(m *Monitor, name string, history *Matrix, topo *Topology) error {
	_, links := history.Dims()
	if links != topo.NumLinks() {
		return fmt.Errorf("netanomaly: history has %d links, topology has %d", links, topo.NumLinks())
	}
	return m.AddView(name, history, topo.RoutingMatrix())
}

// MultiFlowCandidates builds the candidate sets for multi-flow anomaly
// identification (Section 7.2): one candidate per destination PoP,
// containing all flows converging on it — the natural hypothesis set for
// DDoS-style anomalies.
func MultiFlowCandidates(topo *Topology) [][]int {
	p := topo.NumPoPs()
	out := make([][]int, p)
	for dst := 0; dst < p; dst++ {
		for org := 0; org < p; org++ {
			if org == dst {
				continue
			}
			out[dst] = append(out[dst], topo.FlowID(org, dst))
		}
	}
	return out
}
