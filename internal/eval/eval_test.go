package eval

import (
	"math"
	"sort"
	"testing"

	"netanomaly/internal/core"
	"netanomaly/internal/forecast"
	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
	"netanomaly/internal/traffic"
)

// buildSet generates a simulated week with injected true anomalies and a
// diagnoser fitted on the anomalous link loads (as the paper fits on real
// traces that contain the anomalies).
func buildSet(t *testing.T, seed int64, anomalies []traffic.Anomaly) (*topology.Topology, *mat.Dense, *mat.Dense, *core.Diagnoser) {
	t.Helper()
	topo := topology.Abilene()
	cfg := traffic.DefaultConfig(seed)
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := gen.Generate()
	traffic.Inject(x, anomalies)
	y := traffic.LinkLoads(topo, x)
	diag, err := core.NewDiagnoser(y, topo.RoutingMatrix(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return topo, x, y, diag
}

const binHours = 1.0 / 6.0

func TestFourierLabelerFindsInjectedSpike(t *testing.T) {
	topo, x, _, _ := buildSet(t, 70, []traffic.Anomaly{{Flow: 17, Bin: 333, Delta: 6e7}})
	_ = topo
	resid, err := FourierLabeler{}.Residuals(x, binHours)
	if err != nil {
		t.Fatal(err)
	}
	top := RankedAnomalies(resid, 1)[0]
	if top.Flow != 17 || top.Bin != 333 {
		t.Fatalf("top Fourier anomaly = %+v, want flow 17 bin 333", top)
	}
	if math.Abs(top.Size-6e7)/6e7 > 0.4 {
		t.Fatalf("Fourier size estimate %v far from 6e7", top.Size)
	}
}

func TestEWMALabelerFindsInjectedSpike(t *testing.T) {
	_, x, _, _ := buildSet(t, 71, []traffic.Anomaly{{Flow: 40, Bin: 500, Delta: 6e7}})
	resid, err := EWMALabeler{Alpha: 0.25}.Residuals(x, binHours)
	if err != nil {
		t.Fatal(err)
	}
	top := RankedAnomalies(resid, 1)[0]
	if top.Flow != 40 || top.Bin != 500 {
		t.Fatalf("top EWMA anomaly = %+v, want flow 40 bin 500", top)
	}
}

func TestEWMALabelerAutoAlpha(t *testing.T) {
	_, x, _, _ := buildSet(t, 72, []traffic.Anomaly{{Flow: 9, Bin: 200, Delta: 6e7}})
	resid, err := EWMALabeler{}.Residuals(x, binHours) // per-flow grid search
	if err != nil {
		t.Fatal(err)
	}
	top := RankedAnomalies(resid, 1)[0]
	if top.Flow != 9 || top.Bin != 200 {
		t.Fatalf("auto-alpha EWMA top anomaly = %+v", top)
	}
}

func TestLabelersAgreeOnLargeSpikes(t *testing.T) {
	// The paper confirmed every visually isolated anomaly was discovered
	// by both labelers; both must rank the injected spikes on top.
	anoms := []traffic.Anomaly{
		{Flow: 5, Bin: 150, Delta: 7e7},
		{Flow: 60, Bin: 700, Delta: 8e7},
	}
	_, x, _, _ := buildSet(t, 73, anoms)
	for _, l := range []Labeler{FourierLabeler{}, EWMALabeler{Alpha: 0.25}} {
		resid, err := l.Residuals(x, binHours)
		if err != nil {
			t.Fatal(err)
		}
		top := RankedAnomalies(resid, 2)
		found := map[int]bool{}
		for _, a := range top {
			found[a.Bin] = true
		}
		if !found[150] || !found[700] {
			t.Fatalf("%s labeler missed injected anomalies: %+v", l.Name(), top)
		}
	}
}

func TestRankedAnomaliesOrderingAndCutoff(t *testing.T) {
	resid := mat.Zeros(3, 2)
	resid.Set(0, 0, 5)
	resid.Set(1, 1, 9)
	resid.Set(2, 0, 7)
	ranked := RankedAnomalies(resid, 10)
	if len(ranked) != 6 {
		t.Fatalf("ranked length %d", len(ranked))
	}
	if ranked[0].Size != 9 || ranked[1].Size != 7 || ranked[2].Size != 5 {
		t.Fatalf("ordering wrong: %+v", ranked[:3])
	}
	above := AboveCutoff(ranked, 6)
	if len(above) != 2 {
		t.Fatalf("AboveCutoff = %+v", above)
	}
}

func TestEvaluateActualScoresInjectedAnomalies(t *testing.T) {
	anoms := []traffic.Anomaly{
		{Flow: 12, Bin: 100, Delta: 8e7},
		{Flow: 33, Bin: 400, Delta: 9e7},
		{Flow: 77, Bin: 800, Delta: 7e7},
	}
	_, _, y, diag := buildSet(t, 74, anoms)
	truths := make([]LabeledAnomaly, len(anoms))
	for i, a := range anoms {
		truths[i] = LabeledAnomaly{Flow: a.Flow, Bin: a.Bin, Size: a.Delta}
	}
	r := EvaluateActual(diag, y, truths)
	if r.TrueAnomalies != 3 || r.NormalBins != 1005 {
		t.Fatalf("bin accounting wrong: %+v", r)
	}
	if r.Detected < 3 {
		t.Fatalf("detection %d/3; all large anomalies must be caught", r.Detected)
	}
	if r.Identified < 2 {
		t.Fatalf("identification %d/%d too low", r.Identified, r.IdentTrials)
	}
	if r.FalseAlarmRate() > 0.02 {
		t.Fatalf("false alarm rate %v too high", r.FalseAlarmRate())
	}
	if r.QuantErr > 0.4 {
		t.Fatalf("quantification error %v too high", r.QuantErr)
	}
	if r.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestEvaluateActualRates(t *testing.T) {
	var r ActualResult
	if r.DetectionRate() != 0 || r.FalseAlarmRate() != 0 || r.IdentificationRate() != 0 {
		t.Fatal("empty result rates must be zero")
	}
	r = ActualResult{Detected: 3, TrueAnomalies: 4, FalseAlarms: 1, NormalBins: 100, Identified: 2, IdentTrials: 3}
	if r.DetectionRate() != 0.75 {
		t.Fatalf("DetectionRate = %v", r.DetectionRate())
	}
	if r.FalseAlarmRate() != 0.01 {
		t.Fatalf("FalseAlarmRate = %v", r.FalseAlarmRate())
	}
	if math.Abs(r.IdentificationRate()-2.0/3) > 1e-12 {
		t.Fatalf("IdentificationRate = %v", r.IdentificationRate())
	}
}

func TestEvaluateActualPanicsOnBadBin(t *testing.T) {
	_, _, y, diag := buildSet(t, 75, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EvaluateActual(diag, y, []LabeledAnomaly{{Flow: 0, Bin: 99999}})
}

func TestDiagnoseRanked(t *testing.T) {
	anoms := []traffic.Anomaly{{Flow: 21, Bin: 300, Delta: 9e7}}
	_, _, y, diag := buildSet(t, 76, anoms)
	ranked := []LabeledAnomaly{
		{Flow: 21, Bin: 300, Size: 9e7},
		{Flow: 50, Bin: 10, Size: 5e6}, // noise-sized non-anomaly
	}
	rd := DiagnoseRanked(diag, y, ranked)
	if !rd.Detected[0] || !rd.Identified[0] {
		t.Fatalf("large anomaly not diagnosed: %+v", rd)
	}
	if rd.Estimates[0] < 4e7 {
		t.Fatalf("estimate %v too small", rd.Estimates[0])
	}
	if rd.Detected[1] {
		t.Fatal("noise-sized entry must not be detected")
	}
}

// meanDetectability returns the mean finite detectability threshold of
// the fitted model, the natural byte scale for "large" and "small"
// injections on a given dataset.
func meanDetectability(t *testing.T, diag *core.Diagnoser) float64 {
	t.Helper()
	ths := diag.Identifier().DetectabilityThresholds(diag.Detector().Limit())
	var sum float64
	var n int
	for _, th := range ths {
		if !math.IsInf(th, 1) {
			sum += th
			n++
		}
	}
	if n == 0 {
		t.Fatal("no detectable flows")
	}
	return sum / float64(n)
}

func TestInjectionSweepLargeVsSmall(t *testing.T) {
	topo, _, y, diag := buildSet(t, 77, nil)
	scale := meanDetectability(t, diag)
	bins := []int{60, 200, 350, 500, 650, 800, 950}
	flows := make([]int, 0, 30)
	for f := 0; f < topo.NumFlows(); f += 4 {
		flows = append(flows, f)
	}
	// "Large" injections sit well above the model's sufficient threshold,
	// "small" well below — the paper's Table 3 protocol expressed in the
	// model's own byte scale.
	large := InjectionSweep(diag, topo, y, SweepConfig{Size: 1.6 * scale, Bins: bins, Flows: flows})
	small := InjectionSweep(diag, topo, y, SweepConfig{Size: 0.15 * scale, Bins: bins, Flows: flows})
	if large.DetectionRate() < 0.85 {
		t.Fatalf("large injection detection %v too low", large.DetectionRate())
	}
	if small.DetectionRate() > 0.25 {
		t.Fatalf("small injection detection %v too high", small.DetectionRate())
	}
	if large.IdentificationRate() < 0.85 {
		t.Fatalf("large identification %v too low", large.IdentificationRate())
	}
	if large.QuantErr > 0.3 {
		t.Fatalf("large quantification error %v", large.QuantErr)
	}
	if large.String() == "" || small.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestInjectionSweepShapes(t *testing.T) {
	topo, _, y, diag := buildSet(t, 78, nil)
	bins := []int{10, 20, 30}
	flows := []int{1, 2, 3, 4}
	r := InjectionSweep(diag, topo, y, SweepConfig{Size: 5e7, Bins: bins, Flows: flows})
	if len(r.DetRateByFlow) != 4 || len(r.DetRateByBin) != 3 {
		t.Fatalf("aggregate shapes wrong: %d %d", len(r.DetRateByFlow), len(r.DetRateByBin))
	}
	if r.Injections != 12 {
		t.Fatalf("injections = %d want 12", r.Injections)
	}
	for _, v := range r.DetRateByFlow {
		if v < 0 || v > 1 {
			t.Fatalf("flow rate %v out of [0,1]", v)
		}
	}
	for _, v := range r.DetRateByBin {
		if v < 0 || v > 1 {
			t.Fatalf("bin rate %v out of [0,1]", v)
		}
	}
}

func TestInjectionSweepDefaultsToAllFlows(t *testing.T) {
	topo, _, y, diag := buildSet(t, 79, nil)
	r := InjectionSweep(diag, topo, y, SweepConfig{Size: 5e7, Bins: []int{100}})
	if r.Injections != topo.NumFlows() {
		t.Fatalf("injections = %d want %d", r.Injections, topo.NumFlows())
	}
}

func TestInjectionSweepPanics(t *testing.T) {
	topo, _, y, diag := buildSet(t, 80, nil)
	for _, fn := range []func(){
		func() { InjectionSweep(diag, topo, y, SweepConfig{Size: 0, Bins: []int{1}}) },
		func() { InjectionSweep(diag, topo, y, SweepConfig{Size: 1, Bins: []int{-1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSmallerFlowsDetectBetter(t *testing.T) {
	// The Figure 9 effect: for a fixed spike size in the sensitive band,
	// detection rates on the smallest flows dominate those on the largest
	// flows, because the normal subspace aligns with the large-variance
	// flows (Section 5.4).
	topo, x, y, diag := buildSet(t, 81, nil)
	scale := meanDetectability(t, diag)
	bins := make([]int, 0, 24)
	for b := 24; b < 1008; b += 42 {
		bins = append(bins, b)
	}
	r := InjectionSweep(diag, topo, y, SweepConfig{Size: 0.5 * scale, Bins: bins})
	rates := MeanFlowRates(x)
	// Compare the bottom quartile of flows by mean rate against the top
	// decile (where the heavy, subspace-aligned flows live).
	order := make([]int, len(r.Flows))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rates[r.Flows[order[a]]] < rates[r.Flows[order[b]]] })
	n := len(order)
	var loSum, hiSum float64
	loN, hiN := n/4, n/10
	for _, i := range order[:loN] {
		loSum += r.DetRateByFlow[i]
	}
	for _, i := range order[n-hiN:] {
		hiSum += r.DetRateByFlow[i]
	}
	lo, hi := loSum/float64(loN), hiSum/float64(hiN)
	if lo <= hi {
		t.Fatalf("smallest flows detect worse (%.3f) than largest flows (%.3f)", lo, hi)
	}
}

func TestMeanFlowRates(t *testing.T) {
	x := mat.Zeros(2, 2)
	x.Set(0, 0, 10)
	x.Set(1, 0, 20)
	x.Set(0, 1, 4)
	got := MeanFlowRates(x)
	if got[0] != 15 || got[1] != 2 {
		t.Fatalf("MeanFlowRates = %v", got)
	}
}

func TestScoreAlarmBins(t *testing.T) {
	r := ScoreAlarmBins("ewma", map[int]bool{10: true, 20: true, 30: true}, []int{10, 40}, 100)
	if r.Detected != 1 || r.TrueAnomalies != 2 {
		t.Fatalf("detection %d/%d want 1/2", r.Detected, r.TrueAnomalies)
	}
	if r.FalseAlarms != 2 || r.NormalBins != 98 {
		t.Fatalf("false alarms %d/%d want 2/98", r.FalseAlarms, r.NormalBins)
	}
	if got := r.DetectionRate(); got != 0.5 {
		t.Fatalf("detection rate %v", got)
	}
	if got := r.FalseAlarmRate(); math.Abs(got-2.0/98) > 1e-12 {
		t.Fatalf("false alarm rate %v", got)
	}
	if zero := (StreamResult{}); zero.DetectionRate() != 0 || zero.FalseAlarmRate() != 0 {
		t.Fatal("zero-denominator rates must be 0")
	}
}

// TestEvaluateStreamingBackends runs the online Section 7.3 comparison
// end to end: subspace and forecast backends stream the same spiked
// trace and the helper scores both against the same labels.
func TestEvaluateStreamingBackends(t *testing.T) {
	topo := topology.Abilene()
	cfg := traffic.DefaultConfig(9)
	cfg.Bins = 1008 + 288
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := gen.Generate()
	truth := []int{60, 170}
	for _, b := range truth {
		traffic.Inject(x, []traffic.Anomaly{{Flow: topo.FlowID(2, 8), Bin: 1008 + b, Delta: 9e7}})
	}
	y := traffic.LinkLoads(topo, x)
	links := topo.NumLinks()
	history := mat.NewDense(1008, links, y.RawData()[:1008*links])
	stream := mat.NewDense(288, links, y.RawData()[1008*links:])

	subspace, err := core.NewOnlineDetector(history, topo.RoutingMatrix(), core.OnlineConfig{Window: 1008})
	if err != nil {
		t.Fatal(err)
	}
	ewma, err := forecast.NewDetector(history, forecast.Config{Kind: forecast.EWMA})
	if err != nil {
		t.Fatal(err)
	}
	for _, det := range []core.ViewDetector{subspace, ewma} {
		r, err := EvaluateStreaming(det, stream, 64, truth)
		if err != nil {
			t.Fatal(err)
		}
		if r.TrueAnomalies != 2 || r.NormalBins != 286 {
			t.Fatalf("%s: denominators %d/%d wrong", r.Backend, r.TrueAnomalies, r.NormalBins)
		}
		if r.Detected != 2 {
			t.Fatalf("%s detected %d/2 9e7-byte spikes: %+v", r.Backend, r.Detected, r)
		}
		if r.FalseAlarms > 10 {
			t.Fatalf("%s false alarms %d too high", r.Backend, r.FalseAlarms)
		}
	}
	// Alarm seqs must have been rebased: a second evaluation on a
	// detector that already processed 288 bins still scores stream-local
	// labels.
	r, err := EvaluateStreaming(ewma, stream, 64, truth)
	if err != nil {
		t.Fatal(err)
	}
	if r.Detected != 2 {
		t.Fatalf("rebased evaluation detected %d/2: %+v", r.Detected, r)
	}
}
