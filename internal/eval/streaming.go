package eval

import (
	"fmt"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
)

// StreamResult scores one streaming backend's alarms against labeled
// anomaly bins — the online analogue of ActualResult, for the paper's
// Section 7.3 comparison of the subspace method with temporal
// forecasting baselines. Detection is scored per bin: a true anomaly is
// detected when an alarm carries its exact stream sequence number, and
// an alarm at an unlabeled bin is a false alarm.
type StreamResult struct {
	// Backend names the scored detector ("subspace", "ewma", ...).
	Backend string
	// Detected of TrueAnomalies labeled bins raised an alarm.
	Detected, TrueAnomalies int
	// FalseAlarms of NormalBins unlabeled bins raised an alarm.
	FalseAlarms, NormalBins int
}

// DetectionRate returns Detected/TrueAnomalies (0 when no anomalies).
func (r StreamResult) DetectionRate() float64 {
	if r.TrueAnomalies == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.TrueAnomalies)
}

// FalseAlarmRate returns FalseAlarms/NormalBins (0 when no normal bins).
func (r StreamResult) FalseAlarmRate() float64 {
	if r.NormalBins == 0 {
		return 0
	}
	return float64(r.FalseAlarms) / float64(r.NormalBins)
}

// String renders the result in the paper's Table 2 style.
func (r StreamResult) String() string {
	return fmt.Sprintf("%-12s detection %d/%d (%.0f%%)  false alarms %d/%d (%.2f%%)",
		r.Backend, r.Detected, r.TrueAnomalies, 100*r.DetectionRate(),
		r.FalseAlarms, r.NormalBins, 100*r.FalseAlarmRate())
}

// ScoreAlarmBins scores a set of alarmed stream bins against the labeled
// truth bins over a stream of streamBins total bins.
func ScoreAlarmBins(backend string, alarmBins map[int]bool, truthBins []int, streamBins int) StreamResult {
	truth := make(map[int]bool, len(truthBins))
	for _, b := range truthBins {
		truth[b] = true
	}
	r := StreamResult{
		Backend:       backend,
		TrueAnomalies: len(truth),
		NormalBins:    streamBins - len(truth),
	}
	for b := range alarmBins {
		if truth[b] {
			r.Detected++
		} else {
			r.FalseAlarms++
		}
	}
	return r
}

// EvaluateStreaming replays the measurement stream (bins x links)
// through any streaming backend in batchSize chunks — the engine's
// ingest pattern, without the worker pool — waits out background refits,
// and scores the raised alarms against the labeled truth bins (indices
// into the stream). The detector may have processed bins before; alarm
// sequence numbers are rebased to the stream. This is how the paper's
// Section 7.3 online comparison runs: every backend sees the identical
// bins and is scored on the identical labels.
func EvaluateStreaming(det core.ViewDetector, stream *mat.Dense, batchSize int, truthBins []int) (StreamResult, error) {
	bins, cols := stream.Dims()
	if batchSize <= 0 {
		batchSize = 64
	}
	base := det.Stats().Processed
	flagged := make(map[int]bool)
	data := stream.RawData()
	for r0 := 0; r0 < bins; r0 += batchSize {
		r1 := r0 + batchSize
		if r1 > bins {
			r1 = bins
		}
		chunk := mat.NewDense(r1-r0, cols, data[r0*cols:r1*cols])
		alarms, err := det.ProcessBatch(chunk)
		if err != nil {
			return StreamResult{}, fmt.Errorf("eval: streaming %s: %w", det.Stats().Backend, err)
		}
		for _, a := range alarms {
			flagged[a.Seq-base] = true
		}
	}
	det.WaitRefits()
	if err := det.TakeRefitError(); err != nil {
		return StreamResult{}, fmt.Errorf("eval: streaming %s refit: %w", det.Stats().Backend, err)
	}
	return ScoreAlarmBins(det.Stats().Backend, flagged, truthBins, bins), nil
}
