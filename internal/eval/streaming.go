package eval

import (
	"fmt"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
	"netanomaly/internal/traffic"
)

// StreamResult scores one streaming backend's alarms against labeled
// anomaly bins — the online analogue of ActualResult, for the paper's
// Section 7.3 comparison of the subspace method with temporal
// forecasting baselines. Detection is scored per bin: a true anomaly is
// detected when an alarm carries its exact stream sequence number, and
// an alarm at an unlabeled bin is a false alarm.
type StreamResult struct {
	// Backend names the scored detector ("subspace", "ewma", ...).
	Backend string
	// Detected of TrueAnomalies labeled bins raised an alarm. A labeled
	// bin with no alarm is the detector's miss — for a hybrid backend,
	// the triage stage's miss, since nothing unalarmed ever reaches its
	// identification stage (except under the always-escalate policy).
	Detected, TrueAnomalies int
	// FalseAlarms of NormalBins unlabeled bins raised an alarm.
	FalseAlarms, NormalBins int
	// Identified of IdentTrials detected labeled bins carried the true
	// OD flow. IdentTrials counts the detected labeled bins whose truth
	// names a flow AND whose alarm attributed one: a region alarm
	// (alarm Flow == -1, the multiscale and forecast backends) counts
	// as a detection but not an identification trial, so both stay zero
	// when the truth carries no flows or the backend never attributes.
	Identified, IdentTrials int
}

// DetectionRate returns Detected/TrueAnomalies (0 when no anomalies).
func (r StreamResult) DetectionRate() float64 {
	if r.TrueAnomalies == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.TrueAnomalies)
}

// FalseAlarmRate returns FalseAlarms/NormalBins (0 when no normal bins).
func (r StreamResult) FalseAlarmRate() float64 {
	if r.NormalBins == 0 {
		return 0
	}
	return float64(r.FalseAlarms) / float64(r.NormalBins)
}

// IdentificationRate returns Identified/IdentTrials (0 when no trials).
func (r StreamResult) IdentificationRate() float64 {
	if r.IdentTrials == 0 {
		return 0
	}
	return float64(r.Identified) / float64(r.IdentTrials)
}

// String renders the result in the paper's Table 2 style, with a flow
// identification column when the evaluation scored any.
func (r StreamResult) String() string {
	s := fmt.Sprintf("%-12s detection %d/%d (%.0f%%)  false alarms %d/%d (%.2f%%)",
		r.Backend, r.Detected, r.TrueAnomalies, 100*r.DetectionRate(),
		r.FalseAlarms, r.NormalBins, 100*r.FalseAlarmRate())
	if r.IdentTrials > 0 {
		s += fmt.Sprintf("  identified %d/%d", r.Identified, r.IdentTrials)
	}
	return s
}

// ScoreAlarmBins scores a set of alarmed stream bins against the labeled
// truth bins over a stream of streamBins total bins. Detection only; use
// ScoreAlarmFlows when the alarms and truths carry OD flows.
func ScoreAlarmBins(backend string, alarmBins map[int]bool, truthBins []int, streamBins int) StreamResult {
	alarmFlows := make(map[int]int, len(alarmBins))
	for b := range alarmBins {
		alarmFlows[b] = -1
	}
	truth := make([]LabeledBin, len(truthBins))
	for i, b := range truthBins {
		truth[i] = LabeledBin{Bin: b, Flow: -1}
	}
	return ScoreAlarmFlows(backend, alarmFlows, truth, streamBins)
}

// ScoreAlarmFlows scores alarmed stream bins (mapped to the flow each
// alarm attributed, -1 for none) against labeled truths over a stream of
// streamBins total bins: detection and false alarms per bin, plus flow
// identification for the detected truths that name a flow. Truth bins
// past the stream end are counted as (undetectable) true anomalies and
// never shrink the normal-bin population; an identification trial needs
// both sides to name a flow — a region alarm (flow -1) on a flow-labeled
// truth is a detection, not a wrong identification.
func ScoreAlarmFlows(backend string, alarmFlows map[int]int, truth []LabeledBin, streamBins int) StreamResult {
	truthFlows := make(map[int]int, len(truth))
	inStream := 0
	for _, tb := range truth {
		if _, dup := truthFlows[tb.Bin]; !dup && tb.Bin >= 0 && tb.Bin < streamBins {
			inStream++
		}
		truthFlows[tb.Bin] = tb.Flow
	}
	r := StreamResult{
		Backend:       backend,
		TrueAnomalies: len(truthFlows),
		NormalBins:    streamBins - inStream,
	}
	for b, flow := range alarmFlows {
		want, ok := truthFlows[b]
		if !ok {
			r.FalseAlarms++
			continue
		}
		r.Detected++
		if want >= 0 && flow >= 0 {
			r.IdentTrials++
			if flow == want {
				r.Identified++
			}
		}
	}
	return r
}

// EvaluateStreaming replays the measurement stream (bins x links)
// through any streaming backend in batchSize chunks — the engine's
// ingest pattern, without the worker pool — waits out background refits,
// and scores the raised alarms against the labeled truth bins (indices
// into the stream). The detector may have processed bins before; alarm
// sequence numbers are rebased to the stream. This is how the paper's
// Section 7.3 online comparison runs: every backend sees the identical
// bins and is scored on the identical labels.
func EvaluateStreaming(det core.ViewDetector, stream *mat.Dense, batchSize int, truthBins []int) (StreamResult, error) {
	truth := make([]LabeledBin, len(truthBins))
	for i, b := range truthBins {
		truth[i] = LabeledBin{Bin: b, Flow: -1}
	}
	return EvaluateStreamingFlows(det, stream, batchSize, truth)
}

// LabeledBin is one ground-truth anomaly for streaming evaluation: the
// stream bin it lands in and, when known, the responsible OD flow
// (Flow < 0 scores detection only). It is an alias for the traffic
// package's type so the attack-scenario library's ground truth feeds
// EvaluateStreamingFlows directly.
type LabeledBin = traffic.LabeledBin

// EvaluateStreamingFlows is EvaluateStreaming with flow-attribution
// scoring: truth entries that name an OD flow are additionally scored
// on whether the detected bin's alarm identified that flow — the
// paper's identification step, measured online. This is how the hybrid
// backend's two claims separate: Detected/TrueAnomalies scores its
// triage stage's misses, Identified/IdentTrials the identification
// accuracy on the bins that escalated. Backends that never attribute
// flows (forecast, multiscale) score 0/n identified on flow-labeled
// truths.
func EvaluateStreamingFlows(det core.ViewDetector, stream *mat.Dense, batchSize int, truth []LabeledBin) (StreamResult, error) {
	r, _, err := EvaluateStreamingAlarms(det, stream, batchSize, truth)
	return r, err
}

// EvaluateStreamingAlarms is EvaluateStreamingFlows returning the raw
// alarm stream alongside the per-bin score, with every alarm's Seq
// rebased to the stream (bin 0 = first streamed row) and in stream
// order. The alarms feed incident-level scoring: the per-bin result
// cannot distinguish one sustained anomaly from n fragments, but the
// correlation layer consuming these alarms can.
func EvaluateStreamingAlarms(det core.ViewDetector, stream *mat.Dense, batchSize int, truth []LabeledBin) (StreamResult, []core.Alarm, error) {
	bins, cols := stream.Dims()
	if batchSize <= 0 {
		batchSize = 64
	}
	base := det.Stats().Processed
	// flagged maps an alarmed stream bin to the flow its alarm
	// attributed (-1 when the backend does not identify).
	flagged := make(map[int]int)
	var raised []core.Alarm
	data := stream.RawData()
	for r0 := 0; r0 < bins; r0 += batchSize {
		r1 := r0 + batchSize
		if r1 > bins {
			r1 = bins
		}
		chunk := mat.NewDense(r1-r0, cols, data[r0*cols:r1*cols])
		alarms, err := det.ProcessBatch(chunk)
		if err != nil {
			return StreamResult{}, nil, fmt.Errorf("eval: streaming %s: %w", det.Stats().Backend, err)
		}
		for _, a := range alarms {
			flagged[a.Seq-base] = a.Flow
			a.Seq -= base
			raised = append(raised, a)
		}
	}
	det.WaitRefits()
	if err := det.TakeRefitError(); err != nil {
		return StreamResult{}, nil, fmt.Errorf("eval: streaming %s refit: %w", det.Stats().Backend, err)
	}
	return ScoreAlarmFlows(det.Stats().Backend, flagged, truth, bins), raised, nil
}
