package eval

import (
	"fmt"
	"math"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
)

// SweepConfig parameterizes a synthetic injection sweep (Section 6.3): a
// spike of Size bytes is inserted into every OD flow at every listed bin,
// and the diagnosis procedure is applied to the resulting link loads.
type SweepConfig struct {
	// Size is the injected spike in bytes.
	Size float64
	// Bins are the timesteps to inject at (the paper sweeps one day).
	Bins []int
	// Flows restricts the swept OD flows; nil means all flows.
	Flows []int
}

// SweepResult aggregates a sweep. Rates are relative to all injections
// (detection), and to detected injections (identification), matching
// Section 6.1; quantification error averages over correct identifications.
type SweepResult struct {
	Size       float64
	Flows      []int
	Bins       []int
	Injections int
	Detections int
	Identified int
	QuantErr   float64
	// DetRateByFlow[i] is flow Flows[i]'s detection rate over bins
	// (the Figure 7 histograms and Figure 9 scatter).
	DetRateByFlow []float64
	// DetRateByBin[j] is bin Bins[j]'s detection rate over flows
	// (the Figure 8 timeseries).
	DetRateByBin []float64
}

// DetectionRate returns the overall fraction of injections detected.
func (r SweepResult) DetectionRate() float64 {
	if r.Injections == 0 {
		return 0
	}
	return float64(r.Detections) / float64(r.Injections)
}

// IdentificationRate returns the fraction of detected injections whose
// flow was correctly identified.
func (r SweepResult) IdentificationRate() float64 {
	if r.Detections == 0 {
		return 0
	}
	return float64(r.Identified) / float64(r.Detections)
}

// String summarizes the sweep in the paper's Table 3 style.
func (r SweepResult) String() string {
	return fmt.Sprintf("size %.3g: detection %.0f%%  identification %.0f%%  quantification %.0f%%",
		r.Size, 100*r.DetectionRate(), 100*r.IdentificationRate(), 100*r.QuantErr)
}

// InjectionSweep inserts a spike of cfg.Size into OD flow f at bin b for
// every (f, b) in the sweep, regenerates the affected link-load vector,
// and applies the diagnoser fitted on the unmodified data. The injected
// link loads are y_b + size * A_f, so only the perturbed timestep needs
// recomputation (the paper repeats this for every permutation of spike
// size, timestep and flow).
func InjectionSweep(diag *core.Diagnoser, topo *topology.Topology, y *mat.Dense, cfg SweepConfig) SweepResult {
	if cfg.Size <= 0 {
		panic(fmt.Sprintf("eval: sweep size %v <= 0", cfg.Size))
	}
	bins, links := y.Dims()
	if links != topo.NumLinks() {
		panic(fmt.Sprintf("eval: series has %d links, topology %d", links, topo.NumLinks()))
	}
	flows := cfg.Flows
	if flows == nil {
		flows = make([]int, topo.NumFlows())
		for i := range flows {
			flows[i] = i
		}
	}
	for _, b := range cfg.Bins {
		if b < 0 || b >= bins {
			panic(fmt.Sprintf("eval: sweep bin %d out of range %d", b, bins))
		}
	}
	res := SweepResult{
		Size:          cfg.Size,
		Flows:         flows,
		Bins:          cfg.Bins,
		DetRateByFlow: make([]float64, len(flows)),
		DetRateByBin:  make([]float64, len(cfg.Bins)),
	}
	var quantSum float64
	var quantN int
	spiked := make([]float64, links)
	for fi, f := range flows {
		route := topo.Route(f)
		if len(route) == 0 {
			continue
		}
		var flowDet int
		for bi, b := range cfg.Bins {
			copy(spiked, y.RowView(b))
			for _, li := range route {
				spiked[li] += cfg.Size
			}
			res.Injections++
			d, alarmed := diag.DiagnoseAt(spiked)
			if !alarmed {
				continue
			}
			res.Detections++
			flowDet++
			res.DetRateByBin[bi]++
			if d.Flow == f {
				res.Identified++
				quantSum += math.Abs(d.Bytes-cfg.Size) / cfg.Size
				quantN++
			}
		}
		res.DetRateByFlow[fi] = float64(flowDet) / float64(len(cfg.Bins))
	}
	for bi := range res.DetRateByBin {
		res.DetRateByBin[bi] /= float64(len(flows))
	}
	if quantN > 0 {
		res.QuantErr = quantSum / float64(quantN)
	}
	return res
}

// MeanFlowRates returns each flow's time-averaged traffic from the OD
// matrix — the x-axis of the Figure 9 scatter.
func MeanFlowRates(x *mat.Dense) []float64 {
	bins, flows := x.Dims()
	out := make([]float64, flows)
	for b := 0; b < bins; b++ {
		row := x.RowView(b)
		for f, v := range row {
			out[f] += v
		}
	}
	for f := range out {
		out[f] /= float64(bins)
	}
	return out
}
