// Package eval implements the paper's validation methodology (Section 6):
// extracting "true" anomalies from OD flows with temporal methods (EWMA
// and Fourier labelers), scoring the subspace diagnosis against them
// (detection, false alarm, identification and quantification metrics),
// and the synthetic injection sweeps across flows and timesteps.
package eval

import (
	"fmt"
	"sort"

	"netanomaly/internal/mat"
	"netanomaly/internal/timeseries"
)

// LabeledAnomaly is a ground-truth volume anomaly at the OD-flow level, as
// determined by a temporal labeler (not visible to the subspace method).
type LabeledAnomaly struct {
	Flow int
	Bin  int
	// Size is the labeler's estimate of the anomalous byte count.
	Size float64
}

// Labeler extracts per-(bin, flow) residual magnitudes from an OD matrix.
// Large residuals are candidate true anomalies.
type Labeler interface {
	// Name identifies the labeler in reports ("Fourier", "EWMA").
	Name() string
	// Residuals returns a bins x flows matrix of residual magnitudes.
	// binHours is the bin duration in hours (0.1666.. for 10 minutes).
	Residuals(x *mat.Dense, binHours float64) (*mat.Dense, error)
}

// FourierLabeler models each OD flow as a weighted sum of the paper's
// eight Fourier basis functions and reports |z - zhat| (Section 6.2).
type FourierLabeler struct {
	// PeriodsHours overrides the default basis periods when non-nil.
	PeriodsHours []float64
}

// Name implements Labeler.
func (FourierLabeler) Name() string { return "Fourier" }

// Residuals implements Labeler.
func (l FourierLabeler) Residuals(x *mat.Dense, binHours float64) (*mat.Dense, error) {
	model := timeseries.NewFourierModel(binHours)
	if l.PeriodsHours != nil {
		model.PeriodsHours = l.PeriodsHours
	}
	bins, flows := x.Dims()
	out := mat.Zeros(bins, flows)
	for f := 0; f < flows; f++ {
		res, err := model.Residuals(x.Col(f))
		if err != nil {
			return nil, fmt.Errorf("eval: fourier labeler flow %d: %w", f, err)
		}
		out.SetCol(f, res)
	}
	return out, nil
}

// EWMALabeler forecasts each OD flow with exponential smoothing and
// reports the bidirectional residual of footnote 4. When Alpha is zero it
// is selected per flow by grid search over the paper's working range.
type EWMALabeler struct {
	Alpha float64
}

// Name implements Labeler.
func (EWMALabeler) Name() string { return "EWMA" }

// Residuals implements Labeler.
func (l EWMALabeler) Residuals(x *mat.Dense, binHours float64) (*mat.Dense, error) {
	bins, flows := x.Dims()
	out := mat.Zeros(bins, flows)
	for f := 0; f < flows; f++ {
		col := x.Col(f)
		alpha := l.Alpha
		if alpha == 0 {
			var err error
			if alpha, err = timeseries.SelectAlpha(col, timeseries.DefaultAlphaGrid); err != nil {
				return nil, fmt.Errorf("eval: ewma labeler flow %d: %w", f, err)
			}
		}
		out.SetCol(f, timeseries.BidirectionalResiduals(col, alpha))
	}
	return out, nil
}

// RankedAnomalies returns the k largest residual cells as labeled
// anomalies, in decreasing size order — the rank-order sets plotted in
// Figure 6.
func RankedAnomalies(resid *mat.Dense, k int) []LabeledAnomaly {
	bins, flows := resid.Dims()
	all := make([]LabeledAnomaly, 0, bins*flows)
	for b := 0; b < bins; b++ {
		row := resid.RowView(b)
		for f, v := range row {
			all = append(all, LabeledAnomaly{Flow: f, Bin: b, Size: v})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Size > all[j].Size })
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// AboveCutoff filters a ranked anomaly list to sizes >= cutoff — the
// paper's "important set to detect" left of the knee.
func AboveCutoff(ranked []LabeledAnomaly, cutoff float64) []LabeledAnomaly {
	var out []LabeledAnomaly
	for _, a := range ranked {
		if a.Size >= cutoff {
			out = append(out, a)
		}
	}
	return out
}
