package eval

import (
	"fmt"
	"math"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
)

// ActualResult scores the subspace diagnosis against a labeled set of
// actual anomalies (Table 2 of the paper). Rates follow Section 6.1:
// detection rate is the fraction of true anomalies detected; false alarm
// rate is the fraction of normal bins that trigger detection;
// identification rate is the fraction of detected anomalies whose OD flow
// is correctly identified; quantification error is the mean absolute
// relative error over correctly identified anomalies.
type ActualResult struct {
	Detected, TrueAnomalies int
	FalseAlarms, NormalBins int
	Identified, IdentTrials int
	QuantErr                float64
	quantSum                float64
	quantN                  int
}

// DetectionRate returns Detected/TrueAnomalies (0 when no anomalies).
func (r ActualResult) DetectionRate() float64 {
	if r.TrueAnomalies == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.TrueAnomalies)
}

// FalseAlarmRate returns FalseAlarms/NormalBins (0 when no normal bins).
func (r ActualResult) FalseAlarmRate() float64 {
	if r.NormalBins == 0 {
		return 0
	}
	return float64(r.FalseAlarms) / float64(r.NormalBins)
}

// IdentificationRate returns Identified/IdentTrials (0 when nothing was
// detected).
func (r ActualResult) IdentificationRate() float64 {
	if r.IdentTrials == 0 {
		return 0
	}
	return float64(r.Identified) / float64(r.IdentTrials)
}

// String renders the result in the paper's Table 2 style.
func (r ActualResult) String() string {
	return fmt.Sprintf("detection %d/%d  false alarms %d/%d  identification %d/%d  quantification %.1f%%",
		r.Detected, r.TrueAnomalies, r.FalseAlarms, r.NormalBins,
		r.Identified, r.IdentTrials, 100*r.QuantErr)
}

// EvaluateActual runs the full diagnosis pipeline over the measurement
// series y and scores it against the labeled anomalies. A true anomaly is
// detected when its bin raises an alarm; an alarm at a bin with no labeled
// anomaly is a false alarm. Identification is attempted only on detected
// anomalies (as in the paper).
func EvaluateActual(diag *core.Diagnoser, y *mat.Dense, truths []LabeledAnomaly) ActualResult {
	bins, _ := y.Dims()
	byBin := make(map[int]LabeledAnomaly, len(truths))
	for _, a := range truths {
		if a.Bin < 0 || a.Bin >= bins {
			panic(fmt.Sprintf("eval: labeled anomaly bin %d out of range %d", a.Bin, bins))
		}
		byBin[a.Bin] = a
	}
	var r ActualResult
	r.TrueAnomalies = len(byBin)
	r.NormalBins = bins - len(byBin)
	for b := 0; b < bins; b++ {
		d, alarmed := diag.DiagnoseAt(y.Row(b))
		truth, isTrue := byBin[b]
		switch {
		case alarmed && isTrue:
			r.Detected++
			r.IdentTrials++
			if d.Flow == truth.Flow {
				r.Identified++
				if truth.Size > 0 {
					r.quantSum += math.Abs(d.Bytes-truth.Size) / truth.Size
					r.quantN++
				}
			}
		case alarmed && !isTrue:
			r.FalseAlarms++
		}
	}
	if r.quantN > 0 {
		r.QuantErr = r.quantSum / float64(r.quantN)
	}
	return r
}

// RankedDiagnosis marks, for each anomaly of a ranked list, whether the
// subspace method detected it and whether it identified the right flow —
// the light/dark bars of Figure 6. Estimates carries the quantified size
// for identified anomalies (0 otherwise).
type RankedDiagnosis struct {
	Anomalies  []LabeledAnomaly
	Detected   []bool
	Identified []bool
	Estimates  []float64
}

// DiagnoseRanked applies the diagnosis pipeline to each ranked anomaly's
// bin.
func DiagnoseRanked(diag *core.Diagnoser, y *mat.Dense, ranked []LabeledAnomaly) RankedDiagnosis {
	out := RankedDiagnosis{
		Anomalies:  ranked,
		Detected:   make([]bool, len(ranked)),
		Identified: make([]bool, len(ranked)),
		Estimates:  make([]float64, len(ranked)),
	}
	for i, a := range ranked {
		d, alarmed := diag.DiagnoseAt(y.Row(a.Bin))
		if !alarmed {
			continue
		}
		out.Detected[i] = true
		if d.Flow == a.Flow {
			out.Identified[i] = true
			out.Estimates[i] = d.Bytes
		}
	}
	return out
}
