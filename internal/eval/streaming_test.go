package eval

import (
	"errors"
	"io"
	"strings"
	"testing"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
)

// scriptedDetector is a minimal core.ViewDetector whose alarm behavior
// is a function of the absolute sequence number — just enough contract
// for the EvaluateStreaming edge cases.
type scriptedDetector struct {
	links     int
	processed int
	alarmAt   func(seq int) (core.Diagnosis, bool)
	deferred  error
}

func (s *scriptedDetector) Seed(*mat.Dense) error { return nil }

func (s *scriptedDetector) ProcessBatch(y *mat.Dense) ([]core.Alarm, error) {
	bins, _ := y.Dims()
	var alarms []core.Alarm
	for b := 0; b < bins; b++ {
		seq := s.processed + b
		if diag, ok := s.alarmAt(seq); ok {
			diag.Bin = seq
			alarms = append(alarms, core.Alarm{Seq: seq, Diagnosis: diag})
		}
	}
	s.processed += bins
	return alarms, nil
}

func (s *scriptedDetector) Refit() error             { return nil }
func (s *scriptedDetector) WaitRefits()              {}
func (s *scriptedDetector) Snapshot(io.Writer) error { return nil }
func (s *scriptedDetector) Restore(io.Reader) error  { return nil }
func (s *scriptedDetector) TakeRefitError() error {
	err := s.deferred
	s.deferred = nil
	return err
}
func (s *scriptedDetector) Stats() core.ViewStats {
	return core.ViewStats{Backend: "scripted", Links: s.links, Processed: s.processed}
}

func never(int) (core.Diagnosis, bool) { return core.Diagnosis{}, false }

// TestEvaluateStreamingZeroAlarmStream pins the all-quiet case: a
// detector that never alarms scores zero detections and zero false
// alarms, with the denominators still accounted, on labeled and
// unlabeled streams alike.
func TestEvaluateStreamingZeroAlarmStream(t *testing.T) {
	const bins, links = 100, 3
	stream := mat.Zeros(bins, links)
	det := &scriptedDetector{links: links, alarmAt: never}
	r, err := EvaluateStreaming(det, stream, 7, []int{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if r.Detected != 0 || r.FalseAlarms != 0 || r.TrueAnomalies != 2 || r.NormalBins != 98 {
		t.Fatalf("zero-alarm result %+v", r)
	}
	if r.DetectionRate() != 0 || r.FalseAlarmRate() != 0 || r.IdentificationRate() != 0 {
		t.Fatalf("zero-alarm rates %+v", r)
	}
	// A zero-alarm stream with no labels at all: every denominator on
	// the truth side is zero and the rates must stay defined.
	r, err = EvaluateStreaming(det, stream, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.TrueAnomalies != 0 || r.NormalBins != bins || r.DetectionRate() != 0 {
		t.Fatalf("unlabeled result %+v", r)
	}
}

// TestEvaluateStreamingAllAlarmStream pins the fire-hose case: a
// detector alarming on every bin detects every truth and charges every
// unlabeled bin as a false alarm — rates land exactly on 1.
func TestEvaluateStreamingAllAlarmStream(t *testing.T) {
	const bins, links = 64, 2
	stream := mat.Zeros(bins, links)
	always := func(int) (core.Diagnosis, bool) {
		return core.Diagnosis{SPE: 1, Threshold: 0.5, Flow: -1}, true
	}
	det := &scriptedDetector{links: links, alarmAt: always}
	r, err := EvaluateStreaming(det, stream, 10, []int{0, 31, 63})
	if err != nil {
		t.Fatal(err)
	}
	if r.Detected != 3 || r.TrueAnomalies != 3 || r.FalseAlarms != 61 || r.NormalBins != 61 {
		t.Fatalf("all-alarm result %+v", r)
	}
	if r.DetectionRate() != 1 || r.FalseAlarmRate() != 1 {
		t.Fatalf("all-alarm rates %+v", r)
	}
	// Flow-labeled truths against a backend that never attributes
	// (every alarm is a region alarm, Flow -1): both truths are
	// detected, but neither opens an identification trial — a region
	// alarm is a detection, not a wrong identification.
	det = &scriptedDetector{links: links, alarmAt: always}
	r, err = EvaluateStreamingFlows(det, stream, 10, []LabeledBin{{Bin: 5, Flow: 17}, {Bin: 6, Flow: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Detected != 2 || r.IdentTrials != 0 || r.Identified != 0 {
		t.Fatalf("flow-labeled result %+v", r)
	}
}

// TestEvaluateStreamingFlowAttribution scores a detector that
// attributes flows: correct attributions count, wrong ones are trials
// without credit, and flowless truths never enter the trial count.
func TestEvaluateStreamingFlowAttribution(t *testing.T) {
	const bins, links = 50, 2
	stream := mat.Zeros(bins, links)
	flows := map[int]int{5: 17, 9: 3, 20: 8}
	det := &scriptedDetector{links: links, alarmAt: func(seq int) (core.Diagnosis, bool) {
		f, ok := flows[seq]
		return core.Diagnosis{SPE: 1, Threshold: 0.5, Flow: f}, ok
	}}
	truth := []LabeledBin{
		{Bin: 5, Flow: 17},  // detected, correctly identified
		{Bin: 9, Flow: 4},   // detected, misidentified (alarm says 3)
		{Bin: 20, Flow: -1}, // detected, no flow label: no trial
		{Bin: 40, Flow: 9},  // missed: no trial
	}
	r, err := EvaluateStreamingFlows(det, stream, 16, truth)
	if err != nil {
		t.Fatal(err)
	}
	if r.Detected != 3 || r.TrueAnomalies != 4 {
		t.Fatalf("detection accounting %+v", r)
	}
	if r.IdentTrials != 2 || r.Identified != 1 {
		t.Fatalf("identification accounting %+v", r)
	}
	if r.IdentificationRate() != 0.5 {
		t.Fatalf("identification rate %v", r.IdentificationRate())
	}
	if !strings.Contains(r.String(), "identified 1/2") {
		t.Fatalf("String() lacks identification column: %q", r.String())
	}
}

// TestScoreAlarmFlowsRegionAlarms pins the region-alarm rule directly
// on the scorer: an alarm that attributes no flow (Flow == -1) on a
// flow-labeled truth counts as a detection but opens no identification
// trial, while an attributing alarm on the same truth does.
func TestScoreAlarmFlowsRegionAlarms(t *testing.T) {
	truth := []LabeledBin{{Bin: 3, Flow: 7}, {Bin: 8, Flow: 9}}
	r := ScoreAlarmFlows("x", map[int]int{3: -1, 8: 9}, truth, 20)
	if r.Detected != 2 || r.TrueAnomalies != 2 {
		t.Fatalf("detection accounting %+v", r)
	}
	if r.IdentTrials != 1 || r.Identified != 1 {
		t.Fatalf("region alarm must not open an identification trial: %+v", r)
	}
	if r.FalseAlarms != 0 || r.NormalBins != 18 {
		t.Fatalf("normal-bin accounting %+v", r)
	}
}

// TestScoreAlarmFlowsDuplicateAlarms pins per-bin collapsing: a
// detector re-alarming the same bin (e.g. once per batch overlap, or
// from two metrics) scores one detection or one false alarm, never
// two — EvaluateStreamingFlows keeps the last attribution per bin.
func TestScoreAlarmFlowsDuplicateAlarms(t *testing.T) {
	const bins, links = 30, 2
	stream := mat.Zeros(bins, links)
	// Alarm bin 5 on every call within its batch — ProcessBatch emits
	// one alarm per bin, so duplicates arise from the alarm list
	// carrying the same Seq twice.
	det := &scriptedDetector{links: links, alarmAt: func(seq int) (core.Diagnosis, bool) {
		if seq == 5 || seq == 12 {
			return core.Diagnosis{SPE: 1, Threshold: 0.5, Flow: 4}, true
		}
		return core.Diagnosis{}, false
	}}
	// Feed the stream twice in overlapping halves via two detectors is
	// out of contract; instead exercise the scorer directly with the
	// collapsed map plus a sanity pass through the evaluator.
	r := ScoreAlarmFlows("x", map[int]int{5: 4, 12: 4}, []LabeledBin{{Bin: 5, Flow: 4}}, bins)
	if r.Detected != 1 || r.FalseAlarms != 1 || r.IdentTrials != 1 || r.Identified != 1 {
		t.Fatalf("collapsed duplicate accounting %+v", r)
	}
	// Duplicate truth labels for one bin also collapse: a single truth
	// event double-labeled must not inflate TrueAnomalies' denominator
	// beyond distinct bins or shrink NormalBins twice.
	r = ScoreAlarmFlows("x", map[int]int{5: 4}, []LabeledBin{{Bin: 5, Flow: 4}, {Bin: 5, Flow: 4}}, bins)
	if r.TrueAnomalies != 1 || r.NormalBins != bins-1 {
		t.Fatalf("duplicate truth accounting %+v", r)
	}
	rr, err := EvaluateStreamingFlows(det, stream, 10, []LabeledBin{{Bin: 5, Flow: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Detected != 1 || rr.FalseAlarms != 1 {
		t.Fatalf("evaluator duplicate accounting %+v", rr)
	}
}

// TestScoreAlarmFlowsTruthPastStreamEnd pins out-of-stream truth: a
// labeled bin beyond the replayed stream still counts as a (missed)
// true anomaly, but must not shrink the normal-bin denominator — the
// stream's unlabeled bins are all still normal.
func TestScoreAlarmFlowsTruthPastStreamEnd(t *testing.T) {
	const bins = 10
	truth := []LabeledBin{{Bin: 2, Flow: 1}, {Bin: 25, Flow: 3}, {Bin: -4, Flow: 2}}
	r := ScoreAlarmFlows("x", map[int]int{2: 1}, truth, bins)
	if r.TrueAnomalies != 3 || r.Detected != 1 {
		t.Fatalf("out-of-stream truth accounting %+v", r)
	}
	if r.NormalBins != bins-1 {
		t.Fatalf("NormalBins = %d, out-of-stream truths must not shrink it", r.NormalBins)
	}
	if r.FalseAlarms != 0 {
		t.Fatalf("false-alarm accounting %+v", r)
	}
}

// TestEvaluateStreamingSurfacesDeferredRefitError pins the final
// WaitRefits/TakeRefitError sweep: a refit failure parked after the
// last batch (which no later ProcessBatch would report) must fail the
// evaluation rather than silently score.
func TestEvaluateStreamingSurfacesDeferredRefitError(t *testing.T) {
	const bins, links = 8, 2
	det := &scriptedDetector{links: links, alarmAt: never, deferred: errors.New("stale-window")}
	_, err := EvaluateStreaming(det, mat.Zeros(bins, links), 4, nil)
	if err == nil || !strings.Contains(err.Error(), "stale-window") {
		t.Fatalf("deferred refit error not surfaced: %v", err)
	}
}
