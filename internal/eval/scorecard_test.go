package eval

import (
	"reflect"
	"strings"
	"testing"

	"netanomaly/internal/topology"
)

// scorecardTestConfig keeps the matrix cheap: a dyadic 256-bin history
// (the multiscale backend needs one) and the minimum scenario stream.
func scorecardTestConfig() ScorecardConfig {
	return ScorecardConfig{Seed: 3, HistoryBins: 256, StreamBins: 128, BatchSize: 32}
}

func TestRunScorecardShapeAndDeterminism(t *testing.T) {
	topo := topology.Abilene()
	card, err := RunScorecard(topo, scorecardTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(card.Backends) != 9 {
		t.Fatalf("scorecard has %d backends, want 9", len(card.Backends))
	}
	if len(card.Scenarios) < 5 {
		t.Fatalf("scorecard has %d scenarios, want >= 5", len(card.Scenarios))
	}
	if want := len(card.Backends) * len(card.Scenarios); len(card.Cells) != want {
		t.Fatalf("scorecard has %d cells, want %d", len(card.Cells), want)
	}
	for _, b := range card.Backends {
		for _, s := range card.Scenarios {
			c := card.Cell(b, s)
			if c == nil {
				t.Fatalf("cell (%s, %s) missing", b, s)
			}
			if s != "flashcrowd" && c.TrueAnomalies == 0 {
				t.Fatalf("cell (%s, %s) has no true anomalies", b, s)
			}
			if s == "flashcrowd" && c.TrueAnomalies != 0 {
				t.Fatalf("flashcrowd is a control: cell (%s, %s) claims %d truths", b, s, c.TrueAnomalies)
			}
		}
	}
	if card.Cell("subspace", "nonesuch") != nil {
		t.Fatal("Cell must return nil for unknown scenario")
	}
	again, err := RunScorecard(topo, scorecardTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(card, again) {
		t.Fatal("RunScorecard is not deterministic in its seed")
	}
}

// TestScorecardQualitativeStructure pins the matrix's load-bearing
// asymmetries: the scan lives only in flow counts, so the multi-metric
// backend must catch and attribute it while the byte-only subspace
// backend stays blind; the concentrated flood must be caught and
// attributed by the subspace backend.
func TestScorecardQualitativeStructure(t *testing.T) {
	card, err := RunScorecard(topology.Abilene(), scorecardTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	mfScan := card.Cell("multiflow", "scan")
	if mfScan.DetectionRate < 0.5 {
		t.Fatalf("multiflow detects %.2f of the scan, want >= 0.5", mfScan.DetectionRate)
	}
	if mfScan.Identified == 0 {
		t.Fatal("multiflow must attribute the scanned flow")
	}
	// The scan moves no bytes, so the byte-only subspace backend can
	// only hit its labels by background-alarm coincidence — far below
	// the multi-metric backend's rate.
	if ssScan := card.Cell("subspace", "scan"); ssScan.DetectionRate >= mfScan.DetectionRate/2 {
		t.Fatalf("byte-only subspace backend detects %.2f of the scan (multiflow %.2f); the scan moves no bytes",
			ssScan.DetectionRate, mfScan.DetectionRate)
	}
	ssFlood := card.Cell("subspace", "synflood")
	if ssFlood.DetectionRate < 0.9 || ssFlood.IdentificationRate < 0.9 {
		t.Fatalf("subspace on synflood: detection %.2f identification %.2f, want >= 0.9",
			ssFlood.DetectionRate, ssFlood.IdentificationRate)
	}
	// Incident-level structure: the flood is one sustained window, so a
	// clean detector's alarms must condense to exactly one incident; the
	// flashcrowd control raises none; the beacon's bursts are spaced
	// wider than the quiet period, so they must NOT merge into one.
	if c := card.Cell("fourier", "synflood"); c.Incidents != 1 {
		t.Fatalf("fourier on synflood: %d alarmed bins became %d incidents, want exactly 1",
			c.Detected+c.FalseAlarms, c.Incidents)
	}
	for _, b := range []string{"ewma", "fourier", "hybrid"} {
		if c := card.Cell(b, "flashcrowd"); c.Incidents != 0 {
			t.Fatalf("%s on the flashcrowd control opened %d incidents, want 0", b, c.Incidents)
		}
	}
	if c := card.Cell("ewma", "beacon"); c.Incidents <= 1 {
		t.Fatalf("ewma on beacon condensed to %d incidents; spaced bursts must stay separate", c.Incidents)
	}
}

func TestCompareScorecards(t *testing.T) {
	card, err := RunScorecard(topology.Abilene(), scorecardTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	tol := DefaultScorecardTolerance()
	if regs := CompareScorecards(card, card, tol); len(regs) != 0 {
		t.Fatalf("self-comparison regressed: %v", regs)
	}

	// A detection drop beyond tolerance must be reported.
	tampered := *card
	tampered.Cells = append([]ScorecardCell(nil), card.Cells...)
	cell := &tampered.Cells[0]
	cell.DetectionRate -= tol.Detection + 0.05
	regs := CompareScorecards(card, &tampered, tol)
	if len(regs) != 1 || !strings.Contains(regs[0], "detection rate") {
		t.Fatalf("detection drop not flagged: %v", regs)
	}
	// Drift within tolerance passes.
	within := *card
	within.Cells = append([]ScorecardCell(nil), card.Cells...)
	within.Cells[0].DetectionRate -= tol.Detection / 2
	if regs := CompareScorecards(card, &within, tol); len(regs) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", regs)
	}
	// A false-alarm rise and an identification drop are regressions too.
	noisy := *card
	noisy.Cells = append([]ScorecardCell(nil), card.Cells...)
	noisy.Cells[1].FalseAlarmRate += tol.FalseAlarm + 0.05
	noisy.Cells[2].IdentificationRate -= tol.Identification + 0.05
	regs = CompareScorecards(card, &noisy, tol)
	if len(regs) != 2 {
		t.Fatalf("false-alarm/identification regressions not flagged: %v", regs)
	}
	// Fragmentation — the incident count rising beyond tolerance — is a
	// regression; a rise within the slack passes.
	frag := *card
	frag.Cells = append([]ScorecardCell(nil), card.Cells...)
	frag.Cells[3].Incidents += tol.Incidents + 2
	regs = CompareScorecards(card, &frag, tol)
	if len(regs) != 1 || !strings.Contains(regs[0], "fragmentation") {
		t.Fatalf("fragmentation not flagged: %v", regs)
	}
	frag.Cells[3].Incidents = card.Cells[3].Incidents + tol.Incidents
	if regs := CompareScorecards(card, &frag, tol); len(regs) != 0 {
		t.Fatalf("within-tolerance incident rise flagged: %v", regs)
	}
	// A cell missing from the current scorecard is a regression, not a
	// silent pass.
	shrunk := *card
	shrunk.Cells = append([]ScorecardCell(nil), card.Cells[1:]...)
	regs = CompareScorecards(card, &shrunk, tol)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("missing cell not flagged: %v", regs)
	}
	// Improvements pass silently: a baseline with a worse cell than
	// current is no regression.
	if regs := CompareScorecards(&tampered, card, tol); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}
