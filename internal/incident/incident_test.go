package incident

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sync"
	"testing"

	"netanomaly/internal/core"
)

func alarm(seq, flow int, spe float64) core.Alarm {
	return core.Alarm{Seq: seq, Diagnosis: core.Diagnosis{
		Bin: seq, SPE: spe, Threshold: 1, Flow: flow, Bytes: spe * 10,
	}}
}

// recorder collects events in order; safe because the correlator emits
// under its lock.
type recorder struct {
	events []Event
}

func (r *recorder) on(e Event) { r.events = append(r.events, e) }

func (r *recorder) byType(t EventType) []Event {
	var out []Event
	for _, e := range r.events {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

// TestDisjointFlowsStayTwoIncidents is the first incident-layer edge
// case from the issue: two overlapping anomalies on disjoint flows must
// not merge.
func TestDisjointFlowsStayTwoIncidents(t *testing.T) {
	var rec recorder
	c := New(Config{QuietPeriod: 4, OnEvent: rec.on})
	for seq := 100; seq < 108; seq++ {
		c.Observe("net", alarm(seq, 7, 5))
		c.Observe("net", alarm(seq, 21, 3))
	}
	c.Flush()
	if got := c.Stats().Opened; got != 2 {
		t.Fatalf("opened %d incidents, want 2", got)
	}
	closed := rec.byType(Closed)
	if len(closed) != 2 {
		t.Fatalf("closed %d incidents, want 2", len(closed))
	}
	for _, e := range closed {
		inc := e.Incident
		if inc.StartSeq != 100 || inc.EndSeq != 107 || inc.Alarms != 8 {
			t.Errorf("incident %+v: want span 100..107 with 8 alarms", inc)
		}
		if inc.Key.Flow != 7 && inc.Key.Flow != 21 {
			t.Errorf("incident keyed on flow %d, want 7 or 21", inc.Key.Flow)
		}
	}
	if closed[0].Incident.Key.Flow == closed[1].Incident.Key.Flow {
		t.Errorf("both incidents keyed on flow %d", closed[0].Incident.Key.Flow)
	}
}

// TestCrossViewMerge is the second edge case: the same attributed flow
// seen by two views is one incident with both views agreeing (and the
// agreement doubling severity).
func TestCrossViewMerge(t *testing.T) {
	var rec recorder
	c := New(Config{QuietPeriod: 4, OnEvent: rec.on})
	for seq := 50; seq < 54; seq++ {
		c.Observe("bytes-view", alarm(seq, 7, 5))
		c.Observe("flows-view", alarm(seq, 7, 9))
	}
	c.Flush()
	closed := rec.byType(Closed)
	if len(closed) != 1 {
		t.Fatalf("closed %d incidents, want 1", len(closed))
	}
	inc := closed[0].Incident
	if want := []string{"bytes-view", "flows-view"}; !reflect.DeepEqual(inc.Views, want) {
		t.Errorf("views %v, want %v", inc.Views, want)
	}
	if inc.PeakSPE != 9 || inc.Alarms != 8 {
		t.Errorf("peak %v alarms %d, want peak 9 from 8 alarms", inc.PeakSPE, inc.Alarms)
	}
	// Severity: peak 9 x 4 bins x 2 views.
	if got, want := inc.Severity(), 9.0*4*2; got != want {
		t.Errorf("severity %v, want %v", got, want)
	}
}

// Unattributed alarms (Flow = -1) correlate per emitting view: two
// views raising them concurrently stay two incidents, keyed by region.
func TestUnattributedAlarmsKeyPerView(t *testing.T) {
	c := New(Config{QuietPeriod: 4})
	for seq := 10; seq < 14; seq++ {
		c.Observe("east", alarm(seq, -1, 2))
		c.Observe("west", alarm(seq, -1, 2))
	}
	open := c.Open()
	if len(open) != 2 {
		t.Fatalf("%d open incidents, want 2", len(open))
	}
	regions := map[string]bool{}
	for _, inc := range open {
		if inc.Key.Flow != -1 {
			t.Errorf("incident flow %d, want -1", inc.Key.Flow)
		}
		regions[inc.Key.Region] = true
	}
	if !regions["east"] || !regions["west"] {
		t.Errorf("regions %v, want east and west", regions)
	}
}

// A gap wider than the quiet period on the same key closes the first
// incident and opens a second; a gap inside it merges.
func TestQuietPeriodSplitsAndMerges(t *testing.T) {
	var rec recorder
	c := New(Config{QuietPeriod: 4, OnEvent: rec.on})
	c.Observe("net", alarm(100, 7, 5))
	c.Observe("net", alarm(104, 7, 5)) // gap 4 == quiet: merges
	c.Observe("net", alarm(109, 7, 5)) // gap 5 > quiet: splits
	c.Flush()
	if got := c.Stats().Opened; got != 2 {
		t.Fatalf("opened %d incidents, want 2", got)
	}
	first := rec.byType(Closed)[0].Incident
	if first.StartSeq != 100 || first.EndSeq != 104 {
		t.Errorf("first incident spans %d..%d, want 100..104", first.StartSeq, first.EndSeq)
	}
}

// Advance is the no-alarm clock: an open incident closes once the
// stream moves a full quiet period past its last alarm, and not before.
func TestAdvanceClosesOnTime(t *testing.T) {
	var rec recorder
	c := New(Config{QuietPeriod: 4, OnEvent: rec.on})
	c.Observe("net", alarm(100, 7, 5))
	c.Advance(104)
	if n := c.Stats().Open; n != 1 {
		t.Fatalf("incident closed at watermark 104 inside quiet period")
	}
	c.Advance(105)
	if n := c.Stats().Open; n != 0 {
		t.Fatalf("incident still open at watermark 105 past quiet period")
	}
	if len(rec.byType(Closed)) != 1 {
		t.Fatalf("no Closed event emitted")
	}
}

// An unrelated alarm's sequence number also advances the clock.
func TestObserveAdvancesClock(t *testing.T) {
	c := New(Config{QuietPeriod: 4})
	c.Observe("net", alarm(100, 7, 5))
	c.Observe("net", alarm(200, 9, 5))
	open := c.Open()
	if len(open) != 1 || open[0].Key.Flow != 9 {
		t.Fatalf("open table %+v, want only flow 9", open)
	}
}

// The live table is bounded: exceeding MaxLive force-closes the stalest
// open incident.
func TestMaxLiveEvicts(t *testing.T) {
	var rec recorder
	c := New(Config{QuietPeriod: 100, MaxLive: 3, OnEvent: rec.on})
	for f := 0; f < 4; f++ {
		c.Observe("net", alarm(10+f, f, 5))
	}
	st := c.Stats()
	if st.Open != 3 || st.Evicted != 1 {
		t.Fatalf("stats %+v, want 3 open and 1 evicted", st)
	}
	closed := rec.byType(Closed)
	if len(closed) != 1 || closed[0].Incident.Key.Flow != 0 {
		t.Fatalf("evicted %+v, want the stalest (flow 0)", closed)
	}
}

// TestSnapshotResumeConformance is the issue's checkpoint leg: split an
// alarm stream mid-incident, snapshot, restore into a fresh correlator,
// and the union of events must match an uninterrupted run — the open
// incident is neither duplicated (no second Opened) nor lost, the
// re-encoded snapshot is byte-identical, and final stats agree.
func TestSnapshotResumeConformance(t *testing.T) {
	// Two incidents: flow 7 spans the split point, flow 21 opens after.
	feed := func(c *Correlator, from, to int) {
		for seq := from; seq < to; seq++ {
			if seq >= 100 && seq < 112 {
				c.Observe("net", alarm(seq, 7, 5))
			}
			if seq >= 120 && seq < 124 {
				c.Observe("net", alarm(seq, 21, 3))
			}
		}
		c.Advance(to - 1)
	}

	var whole recorder
	ref := New(Config{QuietPeriod: 4, OnEvent: whole.on})
	feed(ref, 0, 200)
	ref.Flush()

	const split = 106 // inside flow 7's span
	var first recorder
	a := New(Config{QuietPeriod: 4, OnEvent: first.on})
	feed(a, 0, split)
	var snap bytes.Buffer
	if err := a.Snapshot(&snap); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	var second recorder
	b := New(Config{QuietPeriod: 4, OnEvent: second.on})
	if err := b.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	var again bytes.Buffer
	if err := b.Snapshot(&again); err != nil {
		t.Fatalf("re-Snapshot: %v", err)
	}
	if !bytes.Equal(snap.Bytes(), again.Bytes()) {
		t.Fatalf("restored snapshot re-encodes differently: %d vs %d bytes", snap.Len(), again.Len())
	}
	feed(b, split, 200)
	b.Flush()

	resumed := append(append([]Event{}, first.events...), second.events...)
	if !reflect.DeepEqual(whole.events, resumed) {
		t.Fatalf("event streams diverge:\nwhole   %+v\nresumed %+v", whole.events, resumed)
	}
	if w, r := ref.Stats(), b.Stats(); !reflect.DeepEqual(w, r) {
		t.Fatalf("stats diverge: whole %+v, resumed %+v", w, r)
	}
	// The conformance above implies it, but assert the headline
	// directly: exactly one Opened for the split-spanning incident.
	var openedFlow7 int
	for _, e := range resumed {
		if e.Type == Opened && e.Incident.Key.Flow == 7 {
			openedFlow7++
		}
	}
	if openedFlow7 != 1 {
		t.Fatalf("flow 7 opened %d times across the restart, want 1", openedFlow7)
	}
}

// Observe is called from the Monitor's worker goroutines concurrently;
// run interleaved observers under -race and check totals.
func TestObserveConcurrent(t *testing.T) {
	c := New(Config{QuietPeriod: 1000})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for seq := 0; seq < 100; seq++ {
				c.Observe(fmt.Sprintf("view%d", g%2), alarm(seq, g%4, 5))
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Open != 4 {
		t.Fatalf("%d open incidents, want 4 (one per flow)", st.Open)
	}
	if st.Opened+st.Merged != 800 {
		t.Fatalf("opened %d + merged %d alarms, want 800", st.Opened, st.Merged)
	}
}

func TestRestoreRejections(t *testing.T) {
	mutate := func(t *testing.T, f func(*Correlator)) []byte {
		t.Helper()
		c := New(Config{QuietPeriod: 4})
		if f != nil {
			f(c)
		}
		var buf bytes.Buffer
		if err := c.Snapshot(&buf); err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		return buf.Bytes()
	}

	t.Run("wrong kind", func(t *testing.T) {
		blob := mutate(t, nil)
		blob[5] = core.SnapKindSubspace
		err := New(Config{}).Restore(bytes.NewReader(blob))
		if !errors.Is(err, core.ErrSnapshotMismatch) {
			t.Fatalf("err %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		blob := mutate(t, func(c *Correlator) { c.Observe("net", alarm(5, 3, 2)) })
		err := New(Config{}).Restore(bytes.NewReader(blob[:len(blob)-4]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("err %v, want ErrUnexpectedEOF", err)
		}
	})
	t.Run("roundtrip with live table", func(t *testing.T) {
		blob := mutate(t, func(c *Correlator) {
			c.Observe("net", alarm(5, 3, 2))
			c.Observe("other", alarm(6, -1, 1))
		})
		c := New(Config{})
		if err := c.Restore(bytes.NewReader(blob)); err != nil {
			t.Fatalf("Restore: %v", err)
		}
		if got := c.Open(); len(got) != 2 {
			t.Fatalf("restored %d open incidents, want 2", len(got))
		}
	})
}
