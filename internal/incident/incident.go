// Package incident correlates the per-bin alarm stream the engine's
// backends emit into deduplicated incident records. The paper's subspace
// method (and the forecast backends beside it) flag and attribute one
// alarm per anomalous bin per view, so a single sustained synflood
// produces dozens of alarm lines across views and metrics; operators
// want one root-caused incident with a start, an end, a severity, and
// the attributed flow. The correlator is that stage: it sits above
// engine.Monitor, consumes alarms (from the OnAlarm callback or a
// TakeAlarms drain), and clusters them by correlation key — the
// attributed OD flow when the alarm carries one, the emitting view when
// it does not (Flow = -1) — merging alarms whose bins overlap or gap by
// less than a configurable quiet period into one open incident.
//
// Incidents move open → updated → closed: an incident opens on the
// first alarm for its key, updates as further alarms merge in (across
// views and metrics — the flow key deliberately ignores which view saw
// it), and closes once the stream has advanced a full quiet period past
// its last alarm. Severity is peak SPE magnitude × duration in bins ×
// the number of distinct views that agreed — a sustained, wide-seen,
// high-residual anomaly outranks a one-bin single-view blip. The live
// table is bounded: opening an incident beyond MaxLive force-closes the
// stalest open one, so an alarm storm cannot grow state without bound.
package incident

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"netanomaly/internal/core"
)

// Key is an incident's correlation identity. Flow-attributed alarms
// correlate on the flow alone (Region "") so the same anomaly seen by
// several views or metrics merges into one incident; unattributed
// alarms (Flow = -1) correlate per emitting view, carried in Region,
// because nothing else ties them together.
type Key struct {
	// Flow is the attributed OD flow index, or -1.
	Flow int
	// Region scopes unattributed alarms: the emitting view's name when
	// Flow is -1, "" otherwise.
	Region string
}

// EventType is the incident state transition an Event reports.
type EventType int

const (
	// Opened fires when the first alarm for a key opens an incident.
	Opened EventType = iota
	// Updated fires when a further alarm merges into an open incident.
	Updated
	// Closed fires when the quiet period expires after an incident's
	// last alarm, when the bounded table evicts it, or when Flush ends
	// the stream.
	Closed
)

// String names the transition as CLI incident lines print it.
func (t EventType) String() string {
	switch t {
	case Opened:
		return "open"
	case Updated:
		return "update"
	case Closed:
		return "closed"
	}
	return fmt.Sprintf("event(%d)", int(t))
}

// Incident is one correlated anomaly: the merged span of every alarm
// sharing its Key, with severity inputs accumulated across them.
type Incident struct {
	// ID is assigned at open, strictly increasing per correlator.
	ID int
	// Key is the correlation identity the incident's alarms share.
	Key Key
	// StartSeq and EndSeq are the first and last alarmed bins merged
	// in (inclusive, stream sequence numbers).
	StartSeq, EndSeq int
	// Alarms counts the raw alarms merged in, across views.
	Alarms int
	// PeakSPE is the largest SPE magnitude any merged alarm carried.
	PeakSPE float64
	// Bytes is the attributed anomaly size from the alarm that carried
	// PeakSPE (0 when no merged alarm attributed bytes).
	Bytes float64
	// Views are the distinct views that contributed alarms, sorted.
	Views []string
}

// Duration is the incident's span in bins, inclusive of both ends.
func (inc *Incident) Duration() int { return inc.EndSeq - inc.StartSeq + 1 }

// Severity scores the incident: peak SPE magnitude × duration in bins
// × view agreement count.
func (inc *Incident) Severity() float64 {
	return inc.PeakSPE * float64(inc.Duration()) * float64(len(inc.Views))
}

// Event is one state transition, delivered to Config.OnEvent with a
// copy of the incident as of the transition.
type Event struct {
	Type     EventType
	Incident Incident
}

// Stats is a correlator's lifetime breakdown.
type Stats struct {
	// Open is the current live-table size.
	Open int
	// Opened, Closed, and Merged count lifetime transitions: incidents
	// opened, incidents closed (eviction and Flush included), and
	// alarms merged into already-open incidents.
	Opened, Closed, Merged int
	// Evicted counts the subset of Closed forced out by the MaxLive
	// bound.
	Evicted int
}

// Config configures New.
type Config struct {
	// QuietPeriod is the gap, in bins, that separates incidents: an
	// alarm within QuietPeriod bins of an open incident's last alarm
	// merges; an incident closes once the stream advances more than
	// QuietPeriod bins past its last alarm. 0 uses 8.
	QuietPeriod int
	// MaxLive bounds the live table; opening an incident beyond it
	// force-closes the open incident with the oldest last-alarm bin.
	// 0 uses 64.
	MaxLive int
	// OnEvent, if set, receives every state transition. It is invoked
	// synchronously under the correlator's lock — transitions arrive in
	// order, from whichever goroutine observed the alarm — so it must
	// not call back into the correlator.
	OnEvent func(Event)
}

// Correlator clusters an alarm stream into incidents. All methods are
// safe for concurrent use — engine.Monitor invokes OnAlarm from many
// worker goroutines at once, and the correlator is built to sit in that
// callback.
type Correlator struct {
	quiet   int
	maxLive int
	onEvent func(Event)

	mu        sync.Mutex
	nextID    int
	watermark int // highest bin observed or advanced to
	open      map[Key]*Incident
	stats     Stats
}

// New builds a correlator. Feed it with Observe (one call per alarm),
// move its clock with Advance (or let observed alarms do it), and end
// the stream with Flush.
func New(cfg Config) *Correlator {
	if cfg.QuietPeriod <= 0 {
		cfg.QuietPeriod = 8
	}
	if cfg.MaxLive <= 0 {
		cfg.MaxLive = 64
	}
	return &Correlator{
		quiet:     cfg.QuietPeriod,
		maxLive:   cfg.MaxLive,
		onEvent:   cfg.OnEvent,
		watermark: -1,
		open:      make(map[Key]*Incident),
	}
}

// QuietPeriod reports the configured merge/close gap in bins.
func (c *Correlator) QuietPeriod() int { return c.quiet }

func (c *Correlator) emit(t EventType, inc *Incident) {
	if c.onEvent == nil {
		return
	}
	cp := *inc
	cp.Views = append([]string(nil), inc.Views...)
	c.onEvent(Event{Type: t, Incident: cp})
}

// keyOf derives the correlation key: flow-attributed alarms merge
// across views, unattributed alarms stay scoped to the view that
// raised them.
func keyOf(view string, a core.Alarm) Key {
	if a.Flow >= 0 {
		return Key{Flow: a.Flow}
	}
	return Key{Flow: -1, Region: view}
}

// Observe folds one alarm into the table: it merges into the open
// incident for its key when the gap since that incident's last alarm is
// within the quiet period, closes-and-reopens when the gap is larger,
// and opens fresh otherwise. The alarm's sequence number also advances
// the correlator's clock, closing unrelated incidents whose quiet
// period has expired.
func (c *Correlator) Observe(view string, a core.Alarm) {
	key := keyOf(view, a)
	c.mu.Lock()
	defer c.mu.Unlock()
	if a.Seq > c.watermark {
		c.watermark = a.Seq
	}

	inc, ok := c.open[key]
	if ok && a.Seq-inc.EndSeq > c.quiet {
		// Same key, but the gap exceeds the quiet period: a distinct
		// later anomaly, not a continuation.
		c.closeLocked(inc, false)
		ok = false
	}
	if ok {
		c.mergeLocked(inc, view, a)
	} else {
		c.openLocked(key, view, a)
	}
	c.sweepLocked()
}

func (c *Correlator) mergeLocked(inc *Incident, view string, a core.Alarm) {
	if a.Seq < inc.StartSeq {
		inc.StartSeq = a.Seq
	}
	if a.Seq > inc.EndSeq {
		inc.EndSeq = a.Seq
	}
	inc.Alarms++
	if a.SPE > inc.PeakSPE {
		inc.PeakSPE = a.SPE
		inc.Bytes = a.Bytes
	}
	if i := sort.SearchStrings(inc.Views, view); i == len(inc.Views) || inc.Views[i] != view {
		inc.Views = append(inc.Views, "")
		copy(inc.Views[i+1:], inc.Views[i:])
		inc.Views[i] = view
	}
	c.stats.Merged++
	c.emit(Updated, inc)
}

func (c *Correlator) openLocked(key Key, view string, a core.Alarm) {
	inc := &Incident{
		ID:       c.nextID,
		Key:      key,
		StartSeq: a.Seq,
		EndSeq:   a.Seq,
		Alarms:   1,
		PeakSPE:  a.SPE,
		Bytes:    a.Bytes,
		Views:    []string{view},
	}
	c.nextID++
	c.open[key] = inc
	c.stats.Opened++
	c.emit(Opened, inc)
	if len(c.open) > c.maxLive {
		c.evictLocked()
	}
}

// evictLocked force-closes the open incident with the oldest last-alarm
// bin (lowest ID on ties) to hold the MaxLive bound.
func (c *Correlator) evictLocked() {
	var victim *Incident
	for _, inc := range c.open {
		if victim == nil || inc.EndSeq < victim.EndSeq ||
			(inc.EndSeq == victim.EndSeq && inc.ID < victim.ID) {
			victim = inc
		}
	}
	c.closeLocked(victim, true)
}

func (c *Correlator) closeLocked(inc *Incident, evicted bool) {
	delete(c.open, inc.Key)
	c.stats.Closed++
	if evicted {
		c.stats.Evicted++
	}
	c.emit(Closed, inc)
}

// sweepLocked closes every open incident the clock has moved a full
// quiet period past.
func (c *Correlator) sweepLocked() {
	var expired []*Incident
	for _, inc := range c.open {
		if c.watermark-inc.EndSeq > c.quiet {
			expired = append(expired, inc)
		}
	}
	// Deterministic close order regardless of map iteration.
	sort.Slice(expired, func(i, j int) bool { return expired[i].ID < expired[j].ID })
	for _, inc := range expired {
		c.closeLocked(inc, false)
	}
}

// Advance moves the correlator's clock to seq without an alarm —
// drivers call it with the processed-bin count after a batch so
// incidents close on time even when the stream goes quiet.
func (c *Correlator) Advance(seq int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if seq > c.watermark {
		c.watermark = seq
	}
	c.sweepLocked()
}

// Flush closes every remaining open incident — the stream has ended, so
// nothing further can merge.
func (c *Correlator) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rest []*Incident
	for _, inc := range c.open {
		rest = append(rest, inc)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].ID < rest[j].ID })
	for _, inc := range rest {
		c.closeLocked(inc, false)
	}
}

// Open returns copies of the live incidents, ordered by ID.
func (c *Correlator) Open() []Incident {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Incident, 0, len(c.open))
	for _, inc := range c.open {
		cp := *inc
		cp.Views = append([]string(nil), inc.Views...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats reports the lifetime transition counts and live-table size.
func (c *Correlator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Open = len(c.open)
	return s
}

// Snapshot serializes the correlator's portable state — ID counter,
// clock, lifetime counters, and the live table sorted by ID — as one
// NAMS envelope (kind "incidents"). Configuration (quiet period, table
// bound, callback) is construction state and travels outside the
// snapshot, like routing does for the detectors. A restored correlator
// continues the alarm stream without duplicating or losing any open
// incident.
func (c *Correlator) Snapshot(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := make([]*Incident, 0, len(c.open))
	for _, inc := range c.open {
		live = append(live, inc)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].ID < live[j].ID })
	return core.EncodeSnapshot(w, core.SnapKindIncidents, func(sw *core.SnapshotWriter) {
		sw.Int(c.nextID)
		sw.Int(c.watermark)
		sw.Int(c.stats.Opened)
		sw.Int(c.stats.Closed)
		sw.Int(c.stats.Merged)
		sw.Int(c.stats.Evicted)
		sw.U32(uint32(len(live)))
		for _, inc := range live {
			sw.Int(inc.ID)
			sw.Int(inc.Key.Flow)
			sw.String(inc.Key.Region)
			sw.Int(inc.StartSeq)
			sw.Int(inc.EndSeq)
			sw.Int(inc.Alarms)
			sw.F64(inc.PeakSPE)
			sw.F64(inc.Bytes)
			sw.U32(uint32(len(inc.Views)))
			for _, v := range inc.Views {
				sw.String(v)
			}
		}
	})
}

// Restore replaces the correlator's state with a Snapshot envelope.
// The encoding is canonical: IDs strictly increasing, views sorted and
// distinct, spans ordered, the clock at or past every incident — a
// payload violating any of these is rejected as corruption.
func (c *Correlator) Restore(r io.Reader) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return core.DecodeSnapshot(r, core.SnapKindIncidents, func(sr *core.SnapshotReader) error {
		nextID := sr.NonNegInt()
		watermark := sr.Int()
		opened := sr.NonNegInt()
		closed := sr.NonNegInt()
		merged := sr.NonNegInt()
		evicted := sr.NonNegInt()
		n := sr.U32()
		if err := sr.Err(); err != nil {
			return err
		}
		open := make(map[Key]*Incident, n)
		lastID := -1
		for i := uint32(0); i < n; i++ {
			inc := &Incident{
				ID:  sr.NonNegInt(),
				Key: Key{Flow: sr.Int(), Region: sr.String()},
			}
			inc.StartSeq = sr.NonNegInt()
			inc.EndSeq = sr.NonNegInt()
			inc.Alarms = sr.NonNegInt()
			inc.PeakSPE = sr.F64()
			inc.Bytes = sr.F64()
			nv := sr.U32()
			if err := sr.Err(); err != nil {
				return err
			}
			for j := uint32(0); j < nv; j++ {
				inc.Views = append(inc.Views, sr.String())
			}
			if err := sr.Err(); err != nil {
				return err
			}
			switch {
			case inc.ID <= lastID:
				return core.SnapshotFormatf("incident IDs not strictly increasing at %d", inc.ID)
			case inc.ID >= nextID:
				return core.SnapshotFormatf("incident ID %d beyond counter %d", inc.ID, nextID)
			case inc.Key.Flow < -1:
				return core.SnapshotFormatf("incident flow %d", inc.Key.Flow)
			case inc.Key.Flow >= 0 && inc.Key.Region != "":
				return core.SnapshotFormatf("flow-keyed incident %d carries region %q", inc.ID, inc.Key.Region)
			case inc.Key.Flow == -1 && inc.Key.Region == "":
				return core.SnapshotFormatf("unattributed incident %d missing region", inc.ID)
			case inc.EndSeq < inc.StartSeq:
				return core.SnapshotFormatf("incident %d span %d..%d inverted", inc.ID, inc.StartSeq, inc.EndSeq)
			case inc.EndSeq > watermark:
				return core.SnapshotFormatf("incident %d ends at %d past clock %d", inc.ID, inc.EndSeq, watermark)
			case inc.Alarms < 1:
				return core.SnapshotFormatf("incident %d has %d alarms", inc.ID, inc.Alarms)
			case len(inc.Views) == 0:
				return core.SnapshotFormatf("incident %d has no views", inc.ID)
			case !sort.StringsAreSorted(inc.Views):
				return core.SnapshotFormatf("incident %d views not sorted", inc.ID)
			}
			for j := 1; j < len(inc.Views); j++ {
				if inc.Views[j] == inc.Views[j-1] {
					return core.SnapshotFormatf("incident %d repeats view %q", inc.ID, inc.Views[j])
				}
			}
			lastID = inc.ID
			if _, dup := open[inc.Key]; dup {
				return core.SnapshotFormatf("incident key %+v repeated", inc.Key)
			}
			open[inc.Key] = inc
		}
		c.nextID = nextID
		c.watermark = watermark
		c.open = open
		c.stats = Stats{Opened: opened, Closed: closed, Merged: merged, Evicted: evicted}
		return nil
	})
}
