package timeseries

import "sort"

// Spike is a point anomaly in a single timeseries: a residual at bin T of
// magnitude Size (bytes, for OD-flow series).
type Spike struct {
	T    int
	Size float64
}

// ExtractSpikes returns the bins whose residual magnitude meets or exceeds
// cutoff, in time order.
func ExtractSpikes(resid []float64, cutoff float64) []Spike {
	var out []Spike
	for t, r := range resid {
		if r >= cutoff {
			out = append(out, Spike{T: t, Size: r})
		}
	}
	return out
}

// TopSpikes returns the k largest residuals as spikes, ordered by
// decreasing size. If fewer than k bins exist, all are returned.
func TopSpikes(resid []float64, k int) []Spike {
	all := make([]Spike, len(resid))
	for t, r := range resid {
		all[t] = Spike{T: t, Size: r}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Size > all[j].Size })
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// KneeIndex locates the knee in a rank-ordered (descending) size sequence
// using the maximum-distance-to-chord rule: the index whose point is
// farthest from the straight line joining the first and last points.
// The paper reads the anomaly-size cutoff off exactly such a knee in the
// rank-order plots of Figure 6. It returns 0 for sequences shorter than 3.
func KneeIndex(sortedDesc []float64) int {
	n := len(sortedDesc)
	if n < 3 {
		return 0
	}
	x1, y1 := 0.0, sortedDesc[0]
	x2, y2 := float64(n-1), sortedDesc[n-1]
	dx, dy := x2-x1, y2-y1
	best, bestDist := 0, -1.0
	for i := 0; i < n; i++ {
		// Unnormalized distance from (i, v) to the chord; the constant
		// denominator does not change the argmax.
		d := dx*(y1-sortedDesc[i]) - dy*(x1-float64(i))
		if d < 0 {
			d = -d
		}
		if d > bestDist {
			bestDist = d
			best = i
		}
	}
	return best
}
