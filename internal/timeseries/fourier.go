package timeseries

import (
	"fmt"
	"math"

	"netanomaly/internal/mat"
)

// DefaultPeriodsHours are the eight periods of the paper's Fourier basis
// (Section 6.2): 7 days, 5 days, 3 days, 24 h, 12 h, 6 h, 3 h, 1.5 h.
var DefaultPeriodsHours = []float64{168, 120, 72, 24, 12, 6, 3, 1.5}

// FourierModel approximates a timeseries as a weighted sum of sinusoids at
// fixed periods plus a constant, fit by least squares.
type FourierModel struct {
	// PeriodsHours lists the basis periods in hours.
	PeriodsHours []float64
	// BinHours is the duration of one sample bin in hours (paper: 1/6 h).
	BinHours float64
}

// NewFourierModel returns a model over the paper's default periods for the
// given bin duration in hours.
func NewFourierModel(binHours float64) *FourierModel {
	return &FourierModel{PeriodsHours: DefaultPeriodsHours, BinHours: binHours}
}

// designMatrix builds the t x (2p+1) regression matrix: a constant column
// plus sin/cos pairs for each period.
func (f *FourierModel) designMatrix(n int) *mat.Dense {
	if f.BinHours <= 0 {
		panic(fmt.Sprintf("timeseries: FourierModel bin duration %v <= 0", f.BinHours))
	}
	p := len(f.PeriodsHours)
	d := mat.Zeros(n, 2*p+1)
	for t := 0; t < n; t++ {
		row := d.RowView(t)
		row[0] = 1
		hours := float64(t) * f.BinHours
		for k, period := range f.PeriodsHours {
			w := 2 * math.Pi * hours / period
			row[1+2*k] = math.Sin(w)
			row[2+2*k] = math.Cos(w)
		}
	}
	return d
}

// Fit returns the least-squares approximation of z in the Fourier basis.
// This is the paper's modeled value zhat; anomalies are |z - zhat|.
func (f *FourierModel) Fit(z []float64) ([]float64, error) {
	n := len(z)
	if n == 0 {
		return nil, nil
	}
	d := f.designMatrix(n)
	coef, err := mat.SolveLS(d, z)
	if err != nil {
		return nil, fmt.Errorf("timeseries: fourier fit: %w", err)
	}
	return mat.MulVec(d, coef), nil
}

// Residuals returns |z - Fit(z)|.
func (f *FourierModel) Residuals(z []float64) ([]float64, error) {
	fit, err := f.Fit(z)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(z))
	for t := range z {
		out[t] = math.Abs(z[t] - fit[t])
	}
	return out, nil
}
