// Package timeseries implements the temporal methods the paper uses to
// extract "true" anomalies from OD flows (Section 6.2) and to contrast
// against the subspace method (Section 7.3): EWMA forecasting with the
// bidirectional minimum trick from footnote 4, Fourier basis-function
// fitting over the paper's eight periods, Holt-Winters smoothing, spike
// extraction, and knee detection for rank-ordered anomaly sizes.
package timeseries

import (
	"fmt"
	"math"
)

// EWMA is an exponentially weighted moving average forecaster:
// zhat[t+1] = alpha*z[t] + (1-alpha)*zhat[t]. The paper selects
// 0.2 <= alpha <= 0.3 by multi-grid search on training data.
type EWMA struct {
	// Alpha controls the relative weight on recent values, 0 <= Alpha <= 1.
	Alpha float64
}

// Forecast returns the one-step-ahead predictions for z: out[t] is the
// prediction of z[t] made from z[0..t-1]. out[0] is seeded with z[0]
// (a zero-information prediction), so the first residual is zero.
func (e EWMA) Forecast(z []float64) []float64 {
	if e.Alpha < 0 || e.Alpha > 1 {
		panic(fmt.Sprintf("timeseries: EWMA alpha %v out of [0,1]", e.Alpha))
	}
	out := make([]float64, len(z))
	if len(z) == 0 {
		return out
	}
	pred := z[0]
	out[0] = pred
	for t := 1; t < len(z); t++ {
		pred = e.Alpha*z[t-1] + (1-e.Alpha)*pred
		out[t] = pred
	}
	return out
}

// Residuals returns |z[t] - zhat[t]| for the one-step EWMA forecast.
func (e EWMA) Residuals(z []float64) []float64 {
	pred := e.Forecast(z)
	out := make([]float64, len(z))
	for t := range z {
		out[t] = math.Abs(z[t] - pred[t])
	}
	return out
}

// BidirectionalResiduals runs EWMA in both time directions and reports the
// per-point minimum of the two residual estimates. This implements the
// paper's footnote 4: a plain forward EWMA mistakenly marks the bin after a
// spike as a second spike; taking the minimum of the forward and backward
// estimates suppresses that echo.
func BidirectionalResiduals(z []float64, alpha float64) []float64 {
	e := EWMA{Alpha: alpha}
	fwd := e.Residuals(z)
	rev := make([]float64, len(z))
	for i, v := range z {
		rev[len(z)-1-i] = v
	}
	bwdRev := e.Residuals(rev)
	out := make([]float64, len(z))
	for t := range z {
		b := bwdRev[len(z)-1-t]
		out[t] = math.Min(fwd[t], b)
	}
	return out
}

// SelectAlpha picks the alpha from grid minimizing the sum of squared
// one-step forecast errors on train, mirroring the paper's multi-grid
// parameter search. It panics on an empty grid. Candidates whose SSE is
// not finite (a train series containing NaN or Inf, or one that
// overflows) are skipped; when every candidate's SSE is non-finite an
// error is returned, since no comparison is meaningful. Exact SSE ties
// — constant series tie every alpha — are broken toward the paper's
// 0.2–0.3 working range rather than whatever happens to come first in
// the grid.
func SelectAlpha(train []float64, grid []float64) (float64, error) {
	if len(grid) == 0 {
		panic("timeseries: SelectAlpha needs a non-empty grid")
	}
	best := math.NaN()
	bestErr := math.Inf(1)
	found := false
	for _, a := range grid {
		pred := EWMA{Alpha: a}.Forecast(train)
		var sse float64
		for t := 1; t < len(train); t++ {
			d := train[t] - pred[t]
			sse += d * d
		}
		if !isFinite(sse) {
			continue
		}
		if !found || sse < bestErr || (sse == bestErr && alphaInWorkingRange(a) && !alphaInWorkingRange(best)) {
			bestErr = sse
			best = a
			found = true
		}
	}
	if !found {
		return 0, fmt.Errorf("timeseries: SelectAlpha: no grid alpha has a finite SSE on the training series")
	}
	return best, nil
}

// alphaInWorkingRange reports whether alpha falls in the paper's
// empirically chosen 0.2 <= alpha <= 0.3 band (Section 6.2).
func alphaInWorkingRange(a float64) bool { return a >= 0.2 && a <= 0.3 }

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// DefaultAlphaGrid spans the paper's working range with its neighbourhood.
var DefaultAlphaGrid = []float64{0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5}

// HoltWinters is a double exponential smoother (level + trend). The paper
// cites Holt-Winters as a forecasting-based detection alternative; it is
// provided for completeness and used in ablation benchmarks.
type HoltWinters struct {
	// Alpha smooths the level, Beta the trend; both in [0,1].
	Alpha, Beta float64
}

// Forecast returns one-step-ahead predictions: out[t] predicts z[t] from
// z[0..t-1]. The level is seeded with z[0] and the trend with zero.
func (h HoltWinters) Forecast(z []float64) []float64 {
	if h.Alpha < 0 || h.Alpha > 1 || h.Beta < 0 || h.Beta > 1 {
		panic(fmt.Sprintf("timeseries: HoltWinters parameters (%v,%v) out of [0,1]", h.Alpha, h.Beta))
	}
	out := make([]float64, len(z))
	if len(z) == 0 {
		return out
	}
	level := z[0]
	trend := 0.0
	out[0] = z[0]
	for t := 1; t < len(z); t++ {
		out[t] = level + trend
		newLevel := h.Alpha*z[t] + (1-h.Alpha)*(level+trend)
		trend = h.Beta*(newLevel-level) + (1-h.Beta)*trend
		level = newLevel
	}
	return out
}

// Residuals returns |z[t] - forecast[t]| for the Holt-Winters forecast.
func (h HoltWinters) Residuals(z []float64) []float64 {
	pred := h.Forecast(z)
	out := make([]float64, len(z))
	for t := range z {
		out[t] = math.Abs(z[t] - pred[t])
	}
	return out
}
