package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEWMAForecastConstantSeries(t *testing.T) {
	z := []float64{5, 5, 5, 5, 5}
	pred := EWMA{Alpha: 0.3}.Forecast(z)
	for i, p := range pred {
		if math.Abs(p-5) > 1e-12 {
			t.Fatalf("pred[%d] = %v, constant series must forecast itself", i, p)
		}
	}
}

func TestEWMAAlphaOneTracksExactly(t *testing.T) {
	z := []float64{1, 2, 3, 4}
	pred := EWMA{Alpha: 1}.Forecast(z)
	// With alpha=1 the prediction of z[t] is z[t-1].
	want := []float64{1, 1, 2, 3}
	for i := range want {
		if math.Abs(pred[i]-want[i]) > 1e-12 {
			t.Fatalf("pred = %v want %v", pred, want)
		}
	}
}

func TestEWMAResidualsSpike(t *testing.T) {
	z := make([]float64, 100)
	for i := range z {
		z[i] = 10
	}
	z[50] = 100
	res := EWMA{Alpha: 0.25}.Residuals(z)
	if res[50] < 80 {
		t.Fatalf("spike residual %v too small", res[50])
	}
	// Forward EWMA leaves an echo at t=51.
	if res[51] < 10 {
		t.Fatalf("expected echo at t+1, got %v", res[51])
	}
}

func TestBidirectionalSuppressesEcho(t *testing.T) {
	z := make([]float64, 100)
	for i := range z {
		z[i] = 10
	}
	z[50] = 100
	res := BidirectionalResiduals(z, 0.25)
	if res[50] < 80 {
		t.Fatalf("spike residual %v too small", res[50])
	}
	if res[51] > 1 {
		t.Fatalf("echo at t+1 not suppressed: %v", res[51])
	}
	if res[49] > 1 {
		t.Fatalf("echo at t-1 not suppressed: %v", res[49])
	}
}

func TestBidirectionalNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		z := make([]float64, 50)
		for i := range z {
			z[i] = rng.NormFloat64() * 100
		}
		for _, r := range BidirectionalResiduals(z, 0.3) {
			if r < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMAInvalidAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EWMA{Alpha: 1.5}.Forecast([]float64{1})
}

func TestEWMAEmpty(t *testing.T) {
	if got := (EWMA{Alpha: 0.2}).Forecast(nil); len(got) != 0 {
		t.Fatal("empty input must yield empty output")
	}
}

func TestSelectAlphaPrefersBetterFit(t *testing.T) {
	// A noisy random walk favours large alpha; verify grid search picks the
	// alpha with the lowest SSE, consistent with a brute-force check.
	rng := rand.New(rand.NewSource(5))
	z := make([]float64, 300)
	z[0] = 100
	for i := 1; i < len(z); i++ {
		z[i] = z[i-1] + rng.NormFloat64()
	}
	grid := []float64{0.05, 0.3, 0.9}
	got, err := SelectAlpha(z, grid)
	if err != nil {
		t.Fatal(err)
	}
	best, bestErr := 0.0, math.Inf(1)
	for _, a := range grid {
		pred := EWMA{Alpha: a}.Forecast(z)
		var sse float64
		for t := 1; t < len(z); t++ {
			d := z[t] - pred[t]
			sse += d * d
		}
		if sse < bestErr {
			bestErr, best = sse, a
		}
	}
	if got != best {
		t.Fatalf("SelectAlpha = %v want %v", got, best)
	}
}

func TestSelectAlphaEmptyGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SelectAlpha([]float64{1, 2}, nil)
}

func TestSelectAlphaConstantSeriesTiesTowardWorkingRange(t *testing.T) {
	// Every alpha forecasts a constant series perfectly (SSE 0 across the
	// grid); the tie must break into the paper's 0.2-0.3 band rather than
	// returning whichever grid entry comes first.
	z := []float64{7, 7, 7, 7, 7, 7}
	got, err := SelectAlpha(z, DefaultAlphaGrid)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.2 || got > 0.3 {
		t.Fatalf("constant-series tie picked alpha %v outside the paper's 0.2-0.3 range", got)
	}
}

func TestSelectAlphaSkipsNaNSSE(t *testing.T) {
	// A NaN in the training series poisons every candidate's SSE; NaN
	// never compares less-than, so the old code silently returned grid[0].
	// Now the non-finite candidates are skipped and, with none left, the
	// failure is explicit.
	z := []float64{1, 2, math.NaN(), 4, 5}
	if _, err := SelectAlpha(z, DefaultAlphaGrid); err == nil {
		t.Fatal("all-NaN SSEs must return an error, not grid[0]")
	}
}

func TestSelectAlphaTieWithoutWorkingRangeCandidate(t *testing.T) {
	// When no candidate falls in the working range, ties still resolve to
	// a finite grid member.
	z := []float64{3, 3, 3}
	got, err := SelectAlpha(z, []float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 && got != 0.9 {
		t.Fatalf("SelectAlpha = %v not from grid", got)
	}
}

func TestHoltWintersTracksLinearTrend(t *testing.T) {
	z := make([]float64, 200)
	for i := range z {
		z[i] = 10 + 2*float64(i)
	}
	pred := HoltWinters{Alpha: 0.5, Beta: 0.3}.Forecast(z)
	// After warm-up the forecaster must lock onto the trend.
	for i := 150; i < 200; i++ {
		if math.Abs(pred[i]-z[i]) > 0.5 {
			t.Fatalf("HW pred[%d] = %v want %v", i, pred[i], z[i])
		}
	}
}

func TestHoltWintersResidualSpike(t *testing.T) {
	z := make([]float64, 100)
	for i := range z {
		z[i] = 50
	}
	z[60] = 500
	res := HoltWinters{Alpha: 0.3, Beta: 0.1}.Residuals(z)
	if res[60] < 400 {
		t.Fatalf("spike residual = %v", res[60])
	}
}

func TestHoltWintersInvalidParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HoltWinters{Alpha: 0.5, Beta: -0.1}.Forecast([]float64{1})
}

func TestFourierFitsPureSinusoid(t *testing.T) {
	// 1008 ten-minute bins over a week; a pure diurnal signal must be fit
	// almost exactly by the 24h basis pair.
	m := NewFourierModel(1.0 / 6.0)
	n := 1008
	z := make([]float64, n)
	for i := range z {
		hours := float64(i) / 6.0
		z[i] = 100 + 30*math.Sin(2*math.Pi*hours/24+0.7)
	}
	fit, err := m.Fit(z)
	if err != nil {
		t.Fatal(err)
	}
	for i := range z {
		if math.Abs(fit[i]-z[i]) > 1e-6 {
			t.Fatalf("fit[%d] = %v want %v", i, fit[i], z[i])
		}
	}
}

func TestFourierResidualIsolatesSpike(t *testing.T) {
	m := NewFourierModel(1.0 / 6.0)
	n := 1008
	z := make([]float64, n)
	for i := range z {
		hours := float64(i) / 6.0
		z[i] = 100 + 30*math.Sin(2*math.Pi*hours/24)
	}
	z[500] += 400
	res, err := m.Residuals(z)
	if err != nil {
		t.Fatal(err)
	}
	// The spike must dominate every other residual.
	for i := range res {
		if i == 500 {
			continue
		}
		if res[i] > res[500]/2 {
			t.Fatalf("residual at %d (%v) not dominated by spike (%v)", i, res[i], res[500])
		}
	}
	if res[500] < 300 {
		t.Fatalf("spike residual = %v", res[500])
	}
}

func TestFourierEmptyInput(t *testing.T) {
	m := NewFourierModel(1.0 / 6.0)
	fit, err := m.Fit(nil)
	if err != nil || fit != nil {
		t.Fatalf("empty fit = %v, %v", fit, err)
	}
}

func TestFourierInvalidBinPanics(t *testing.T) {
	m := &FourierModel{PeriodsHours: DefaultPeriodsHours, BinHours: 0}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Fit(make([]float64, 10))
}

func TestDefaultPeriods(t *testing.T) {
	want := []float64{168, 120, 72, 24, 12, 6, 3, 1.5}
	if len(DefaultPeriodsHours) != len(want) {
		t.Fatal("period count wrong")
	}
	for i, p := range want {
		if DefaultPeriodsHours[i] != p {
			t.Fatalf("period[%d] = %v want %v", i, DefaultPeriodsHours[i], p)
		}
	}
}

func TestExtractSpikes(t *testing.T) {
	res := []float64{1, 10, 2, 20, 3}
	got := ExtractSpikes(res, 10)
	if len(got) != 2 || got[0].T != 1 || got[1].T != 3 || got[1].Size != 20 {
		t.Fatalf("ExtractSpikes = %v", got)
	}
	if got := ExtractSpikes(res, 100); len(got) != 0 {
		t.Fatal("no spikes expected")
	}
}

func TestTopSpikes(t *testing.T) {
	res := []float64{5, 1, 9, 3}
	got := TopSpikes(res, 2)
	if len(got) != 2 || got[0].T != 2 || got[0].Size != 9 || got[1].T != 0 {
		t.Fatalf("TopSpikes = %v", got)
	}
	if got := TopSpikes(res, 100); len(got) != 4 {
		t.Fatal("k larger than series must return all")
	}
}

func TestKneeIndex(t *testing.T) {
	// Sharp knee after the 3rd value.
	vals := []float64{100, 90, 80, 5, 4, 3, 2, 1}
	k := KneeIndex(vals)
	if k < 2 || k > 3 {
		t.Fatalf("KneeIndex = %d want near 2-3", k)
	}
	if KneeIndex([]float64{1, 2}) != 0 {
		t.Fatal("short input must return 0")
	}
}

func TestKneeIndexLinearSeries(t *testing.T) {
	// A straight line has no knee; any answer is acceptable but it must not
	// panic and must be in range.
	vals := []float64{10, 9, 8, 7, 6, 5}
	k := KneeIndex(vals)
	if k < 0 || k >= len(vals) {
		t.Fatalf("KneeIndex out of range: %d", k)
	}
}
