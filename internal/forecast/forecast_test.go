package forecast

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
)

// synthSeries builds a bins x links matrix of diurnal sinusoids with
// per-link mean/phase and Gaussian noise — enough temporal structure for
// the forecasters to model and enough noise for thresholds to be
// meaningful.
func synthSeries(bins, links int, seed int64, noise float64) *mat.Dense {
	rng := rand.New(rand.NewSource(seed))
	phase := make([]float64, links)
	mean := make([]float64, links)
	for l := 0; l < links; l++ {
		phase[l] = rng.Float64() * 2 * math.Pi
		mean[l] = 5e7 * (1 + rng.Float64())
	}
	y := mat.Zeros(bins, links)
	for b := 0; b < bins; b++ {
		hours := float64(b) / 6.0
		for l := 0; l < links; l++ {
			diurnal := 1 + 0.4*math.Sin(2*math.Pi*hours/24+phase[l])
			y.Set(b, l, mean[l]*diurnal*(1+noise*rng.NormFloat64()))
		}
	}
	return y
}

func splitRows(y *mat.Dense, at int) (*mat.Dense, *mat.Dense) {
	_, cols := y.Dims()
	head := mat.NewDense(at, cols, y.RawData()[:at*cols])
	tail := mat.NewDense(y.Rows()-at, cols, y.RawData()[at*cols:])
	return head, tail
}

func kinds() []Kind { return []Kind{EWMA, HoltWinters, Fourier} }

func TestDetectorFlagsSpikeEveryKind(t *testing.T) {
	const historyBins, streamBins, spikeBin, spikeLink = 1008, 144, 60, 3
	for _, kind := range kinds() {
		t.Run(string(kind), func(t *testing.T) {
			y := synthSeries(historyBins+streamBins, 8, 7, 0.02)
			y.Set(historyBins+spikeBin, spikeLink, y.At(historyBins+spikeBin, spikeLink)+4e7)
			history, stream := splitRows(y, historyBins)
			det, err := NewDetector(history, Config{Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			alarms, err := det.ProcessBatch(stream)
			if err != nil {
				t.Fatal(err)
			}
			spiked := false
			for _, a := range alarms {
				if a.Seq == spikeBin {
					spiked = true
					if a.Flow != -1 {
						t.Fatalf("forecast alarm identified flow %d; temporal methods cannot", a.Flow)
					}
					if a.Bytes < 2e7 {
						t.Fatalf("worst-link residual %v far below the injected 4e7", a.Bytes)
					}
					if a.SPE <= a.Threshold {
						t.Fatalf("alarm with SPE %v <= threshold %v", a.SPE, a.Threshold)
					}
				}
			}
			if !spiked {
				t.Fatalf("spike at stream bin %d not flagged; alarms %+v", spikeBin, alarms)
			}
			if len(alarms) > 8 {
				t.Fatalf("too many false alarms: %d over %d bins", len(alarms), streamBins)
			}
		})
	}
}

func TestEWMASpikeEchoSuppressed(t *testing.T) {
	// A forward EWMA that absorbed the spike would alarm again on the
	// bin after it (the footnote-4 echo); withholding alarmed bins from
	// the forecaster state must suppress it.
	const historyBins, spikeBin = 1008, 40
	y := synthSeries(historyBins+100, 4, 11, 0.015)
	for l := 0; l < 4; l++ {
		y.Set(historyBins+spikeBin, l, y.At(historyBins+spikeBin, l)+5e7)
	}
	history, stream := splitRows(y, historyBins)
	det, err := NewDetector(history, Config{Kind: EWMA, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	alarms, err := det.ProcessBatch(stream)
	if err != nil {
		t.Fatal(err)
	}
	spiked, echoed := false, false
	for _, a := range alarms {
		if a.Seq == spikeBin {
			spiked = true
		}
		if a.Seq == spikeBin+1 {
			echoed = true
		}
	}
	if !spiked {
		t.Fatalf("spike not flagged; alarms %+v", alarms)
	}
	if echoed {
		t.Fatalf("echo at bin %d not suppressed; alarms %+v", spikeBin+1, alarms)
	}
}

func TestSeedSelectsAlphaPerLink(t *testing.T) {
	history := synthSeries(1008, 5, 3, 0.05)
	det, err := NewDetector(history, Config{Kind: EWMA})
	if err != nil {
		t.Fatal(err)
	}
	for l, a := range det.Alphas() {
		if a < 0.05 || a > 1 {
			t.Fatalf("link %d grid-selected alpha %v outside the grid", l, a)
		}
	}
	// An explicit alpha bypasses the search.
	det, err = NewDetector(history, Config{Kind: EWMA, Alpha: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	for l, a := range det.Alphas() {
		if a != 0.25 {
			t.Fatalf("link %d alpha %v, want the configured 0.25", l, a)
		}
	}
}

func TestAdaptiveThresholdTracksTrafficLevel(t *testing.T) {
	// Double the traffic (and with it the absolute residual scale) and
	// stream enough bins for the rolling statistics to adapt: thresholds
	// must rise with the level instead of staying frozen at seed values.
	const links = 4
	history := synthSeries(1008, links, 19, 0.03)
	det, err := NewDetector(history, Config{Kind: EWMA, Alpha: 0.3, K: 1e9, Adapt: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// K is huge so nothing alarms and every bin feeds the statistics.
	before := det.Thresholds()
	scaled := synthSeries(1008, links, 19, 0.03)
	data := scaled.RawData()
	for i := range data {
		data[i] *= 2
	}
	if _, err := det.ProcessBatch(scaled); err != nil {
		t.Fatal(err)
	}
	after := det.Thresholds()
	for l := 0; l < links; l++ {
		if after[l] < 1.5*before[l] {
			t.Fatalf("link %d threshold did not track the doubled level: %v -> %v", l, before[l], after[l])
		}
	}
}

func TestRefitReestimatesThresholds(t *testing.T) {
	// After streaming quieter traffic, an explicit Refit (which fits on
	// the retained window, now full of quiet bins) must lower thresholds.
	const links = 3
	history := synthSeries(1008, links, 23, 0.08)
	// Adapt is tiny, so the rolling statistics stay pinned at the noisy
	// seed level; only a refit can re-base them on the quiet window.
	det, err := NewDetector(history, Config{Kind: EWMA, Alpha: 0.3, Window: 256, Adapt: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	// Same seed as the history, so per-link means and phases line up (1008
	// bins is a whole number of diurnal cycles) — only the noise drops.
	quiet := synthSeries(512, links, 23, 0.005)
	if _, err := det.ProcessBatch(quiet); err != nil {
		t.Fatal(err)
	}
	before := det.Thresholds()
	if err := det.Refit(); err != nil {
		t.Fatal(err)
	}
	after := det.Thresholds()
	for l := 0; l < links; l++ {
		if after[l] > before[l]/2 {
			t.Fatalf("link %d refit did not re-base the threshold on the quiet window: %v -> %v", l, before[l], after[l])
		}
	}
	if got := det.Stats().Refits; got != 1 {
		t.Fatalf("refits = %d want 1", got)
	}
}

func TestFourierPhaseSurvivesRefit(t *testing.T) {
	// The basis is fitted on absolute bin indices, so predictions after a
	// refit must stay phase-aligned: a clean diurnal stream keeps fitting
	// well (no alarm burst after the refit swap).
	y := synthSeries(1008+576, 4, 31, 0.01)
	history, stream := splitRows(y, 1008)
	det, err := NewDetector(history, Config{Kind: Fourier, RefitEvery: 144})
	if err != nil {
		t.Fatal(err)
	}
	alarms, err := det.ProcessBatch(stream)
	if err != nil {
		t.Fatal(err)
	}
	det.WaitRefits()
	if err := det.TakeRefitError(); err != nil {
		t.Fatal(err)
	}
	if det.Stats().Refits == 0 {
		t.Fatal("automatic refit did not run")
	}
	if len(alarms) > 12 {
		t.Fatalf("alarm burst across refits: %d alarms on clean traffic", len(alarms))
	}
}

func TestDetectorRejectsMisSizedBatch(t *testing.T) {
	history := synthSeries(1008, 4, 37, 0.02)
	det, err := NewDetector(history, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.ProcessBatch(mat.Zeros(4, 5)); err == nil {
		t.Fatal("mis-sized batch accepted")
	}
	if got := det.Stats().Processed; got != 0 {
		t.Fatalf("rejected batch advanced the counter to %d", got)
	}
}

func TestConfigValidation(t *testing.T) {
	history := synthSeries(1008, 3, 41, 0.02)
	cases := []Config{
		{Kind: "arima"},
		{Alpha: 1.5},
		{Beta: -0.1},
		{K: -1},
		{Adapt: 2},
		{BinHours: -1},
	}
	for _, cfg := range cases {
		if _, err := NewDetector(history, cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	// Too-short histories are rejected per kind.
	short := synthSeries(4, 3, 43, 0.02)
	for _, kind := range kinds() {
		if _, err := NewDetector(short, Config{Kind: kind}); err == nil || !strings.Contains(err.Error(), "seed needs") {
			t.Fatalf("%s accepted a 4-bin seed: %v", kind, err)
		}
	}
}

func TestSeedKeepsProcessedAndAlignsPhase(t *testing.T) {
	y := synthSeries(1008+288, 4, 47, 0.02)
	history, stream := splitRows(y, 1008)
	for _, kind := range kinds() {
		det, err := NewDetector(history, Config{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		firstHalf, secondHalf := splitRows(stream, 144)
		if _, err := det.ProcessBatch(firstHalf); err != nil {
			t.Fatal(err)
		}
		// Re-seed on the most recent week (history tail + streamed half).
		recent := mat.Zeros(1008, 4)
		for b := 0; b < 864; b++ {
			recent.SetRow(b, y.RowView(144+b))
		}
		for b := 0; b < 144; b++ {
			recent.SetRow(864+b, firstHalf.RowView(b))
		}
		if err := det.Seed(recent); err != nil {
			t.Fatal(err)
		}
		if got := det.Stats().Processed; got != 144 {
			t.Fatalf("%s: Seed reset the processed counter to %d", kind, got)
		}
		alarms, err := det.ProcessBatch(secondHalf)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range alarms {
			if a.Seq < 144 {
				t.Fatalf("%s: alarm seq %d before the re-seed point", kind, a.Seq)
			}
		}
		if len(alarms) > 10 {
			t.Fatalf("%s: alarm burst after re-seed: %d alarms on clean traffic", kind, len(alarms))
		}
	}
}

func TestPersistentLevelShiftReconverges(t *testing.T) {
	// A legitimate permanent traffic step (a reroute doubling one link's
	// load) must not alarm forever: after ReabsorbAfter consecutive
	// alarmed bins the link's forecaster resumes absorbing observations
	// and re-converges on the new level.
	const links, shiftLink = 4, 1
	y := synthSeries(1008+288, links, 61, 0.02)
	data := y.RawData()
	for b := 1008 + 20; b < 1008+288; b++ {
		data[b*links+shiftLink] *= 2
	}
	history, stream := splitRows(y, 1008)
	for _, kind := range kinds() {
		// The small window lets refits adopt the shifted regime quickly —
		// the Fourier kind's recovery path runs through the refit, so the
		// stream goes in chunks with each scheduled refit waited out
		// (deterministic; a real deployment just sees it a little later).
		det, err := NewDetector(history, Config{Kind: kind, Alpha: alphaFor(kind), ReabsorbAfter: 5, RefitEvery: 32, Window: 128})
		if err != nil {
			t.Fatal(err)
		}
		var alarms []core.Alarm
		cols := stream.Cols()
		for b := 0; b < stream.Rows(); b += 32 {
			chunk := mat.NewDense(32, cols, stream.RawData()[b*cols:(b+32)*cols])
			got, err := det.ProcessBatch(chunk)
			if err != nil {
				t.Fatal(err)
			}
			alarms = append(alarms, got...)
			det.WaitRefits()
		}
		if err := det.TakeRefitError(); err != nil {
			t.Fatal(err)
		}
		last := -1
		for _, a := range alarms {
			if a.Seq > last {
				last = a.Seq
			}
		}
		if last < 20 {
			t.Fatalf("%s: level shift never alarmed", kind)
		}
		// The smoothing kinds re-converge within the reabsorb horizon
		// plus smoothing settle time; the Fourier kind needs the next
		// refit to adopt the shifted window. Well before the stream ends,
		// the alarms must have stopped.
		if last > 220 {
			t.Fatalf("%s: still alarming at stream bin %d — no level-shift recovery (alarms %d)", kind, last, len(alarms))
		}
	}
}

// alphaFor pins deterministic smoothing gains per kind for tests that
// stream regime changes (grid-searched alphas vary with the series).
func alphaFor(kind Kind) float64 {
	if kind == Fourier {
		return 0
	}
	return 0.3
}

func TestSeedPreservesPinnedAlpha(t *testing.T) {
	history := synthSeries(1008, 3, 67, 0.03)
	det, err := NewDetector(history, Config{Kind: EWMA, Alpha: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Seed(history); err != nil {
		t.Fatal(err)
	}
	for l, a := range det.Alphas() {
		if a != 0.25 {
			t.Fatalf("link %d alpha %v after re-seed, want the pinned 0.25", l, a)
		}
	}
}

func TestConstantLinkDoesNotAlarmOnFloatNoise(t *testing.T) {
	// A perfectly constant link has zero residual history; the threshold
	// floor (relative to the forecast level) must keep double-precision
	// noise from alarming while a real deviation still does.
	const bins, links = 1008, 3
	y := mat.Zeros(bins+100, links)
	for b := 0; b < bins+100; b++ {
		for l := 0; l < links; l++ {
			y.Set(b, l, 1e8) // constant traffic
		}
	}
	history, stream := splitRows(y, bins)
	det, err := NewDetector(history, Config{Kind: EWMA, Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	alarms, err := det.ProcessBatch(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) != 0 {
		t.Fatalf("constant stream raised %d alarms", len(alarms))
	}
	// A one-byte jitter is below the relative floor (1e-9 * 1e8 = 0.1 is
	// the floor; 1 byte exceeds it and is a genuine deviation from a
	// perfectly constant series, so it may alarm); a sub-floor change
	// must not.
	jitter := mat.Zeros(1, links)
	jitter.SetRow(0, []float64{1e8 + 0.01, 1e8, 1e8})
	alarms, err = det.ProcessBatch(jitter)
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) != 0 {
		t.Fatalf("sub-floor 0.01-byte jitter on a 1e8 constant link alarmed: %+v", alarms)
	}
}

func TestRefitConcurrentWithProcessing(t *testing.T) {
	// Refit and Stats from other goroutines while one caller streams:
	// the ViewDetector contract, exercised under -race.
	y := synthSeries(1008+640, 6, 53, 0.03)
	history, stream := splitRows(y, 1008)
	det, err := NewDetector(history, Config{Kind: EWMA, Alpha: 0.3, RefitEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = det.Refit()
				_ = det.Stats()
				det.WaitRefits()
			}
		}
	}()
	cols := stream.Cols()
	for b := 0; b+32 <= stream.Rows(); b += 32 {
		chunk := mat.NewDense(32, cols, stream.RawData()[b*cols:(b+32)*cols])
		if _, err := det.ProcessBatch(chunk); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	det.WaitRefits()
	if err := det.TakeRefitError(); err != nil {
		t.Fatal(err)
	}
	if got := det.Stats().Processed; got != 640 {
		t.Fatalf("processed %d want 640", got)
	}
}
