// Package forecast implements the paper's temporal forecasting baselines
// — EWMA, Holt-Winters, and Fourier basis fitting (Sections 6.2 and 7.3)
// — as streaming detector backends behind core.ViewDetector, so they run
// in the concurrent engine side by side with the subspace method and the
// Section 7.3 comparison becomes reproducible online.
//
// Each backend forecasts every link's timeseries independently and
// alarms on forecast residuals, the design of Brutlag's Holt-Winters
// detector and the signal-analysis baselines of Barford et al.:
//
//   - ewma: the incremental one-step EWMA recursion. Alarmed bins are
//     withheld from the forecaster state, which suppresses the
//     bin-after-a-spike echo exactly as the paper's footnote-4
//     bidirectional minimum does offline.
//   - holtwinters: double exponential smoothing (level + trend), the
//     same recursion as timeseries.HoltWinters run incrementally.
//   - fourier: least-squares fit of the paper's eight-period sinusoid
//     basis on a window snapshot, refit in the background with the
//     engine's refit-gate discipline; prediction extrapolates the
//     fitted basis to the current absolute bin, so phase is preserved
//     across refits.
//
// Thresholds are adaptive and per link: the detector tracks an
// exponentially weighted mean and variance of each link's absolute
// residual, alarms when a residual exceeds mean + K·sigma, and
// re-estimates the statistics from the retained window on every refit —
// thresholds track the traffic level instead of being frozen at seed
// time. Anomalous bins are withheld from both the forecaster state and
// the threshold statistics, mirroring the window exclusion of the
// subspace backends.
//
// Alarms localize in time and link, not OD flow (temporal methods see
// one series at a time; that inability to identify flows is the paper's
// core argument for the subspace method), so Diagnosis.Flow is -1,
// Diagnosis.SPE/Threshold carry the worst link's squared residual and
// squared threshold, and Diagnosis.Bytes the worst link's signed
// residual.
package forecast

import (
	"fmt"
	"io"
	"math"
	"sync"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
	"netanomaly/internal/timeseries"
)

// Kind selects the forecasting model.
type Kind string

const (
	// EWMA is the exponentially weighted moving average forecaster.
	EWMA Kind = "ewma"
	// HoltWinters is the level+trend double exponential smoother.
	HoltWinters Kind = "holtwinters"
	// Fourier fits the paper's sinusoid basis on the retained window.
	Fourier Kind = "fourier"
)

// Config configures NewDetector. The zero value of every field has a
// usable default.
type Config struct {
	// Kind selects the model; default EWMA.
	Kind Kind
	// Alpha is the level smoothing gain in (0, 1]. For the EWMA kind, 0
	// selects it per link by grid search on the seed history (the
	// paper's multi-grid parameter search); for Holt-Winters, 0 uses
	// 0.3. Ignored by the Fourier kind.
	Alpha float64
	// Beta is the Holt-Winters trend gain in (0, 1]; 0 uses 0.1.
	Beta float64
	// K is the threshold multiplier: a link alarms when its absolute
	// residual exceeds mean + K*sigma of its tracked residuals. 0 uses 6.
	K float64
	// Adapt is the learning rate of the rolling residual statistics in
	// (0, 1); 0 uses 0.02 (a ~50-bin time constant: thresholds follow
	// the traffic level within hours at ten-minute bins).
	Adapt float64
	// Window is the number of recent non-anomalous bins retained for
	// refits; 0 retains as many as the seed history.
	Window int
	// ReabsorbAfter is the level-shift recovery horizon: after this
	// many consecutive alarmed bins on one link, the link's forecaster
	// resumes absorbing observed values (so a legitimate persistent
	// level change re-converges instead of alarming forever), and after
	// this many consecutive alarmed bins overall the window resumes
	// retaining rows (so refits see the new regime). Single-bin spikes
	// stay fully excluded — echo suppression is unaffected. 0 uses 5.
	ReabsorbAfter int
	// RefitEvery schedules a background refit (threshold re-estimation,
	// plus a basis refit for the Fourier kind) after this many processed
	// bins; 0 disables automatic refits.
	RefitEvery int
	// BinHours is the bin duration in hours for the Fourier basis; 0
	// uses the paper's ten-minute bins (1/6 h).
	BinHours float64
	// PeriodsHours overrides the Fourier basis periods; nil uses the
	// paper's eight periods.
	PeriodsHours []float64
	// AlphaGrid overrides the EWMA alpha search grid; nil uses
	// timeseries.DefaultAlphaGrid.
	AlphaGrid []float64
}

func (c *Config) fillDefaults() {
	if c.Kind == "" {
		c.Kind = EWMA
	}
	if c.Alpha == 0 && c.Kind == HoltWinters {
		c.Alpha = 0.3
	}
	if c.Beta == 0 {
		c.Beta = 0.1
	}
	if c.K == 0 {
		c.K = 6
	}
	if c.Adapt == 0 {
		c.Adapt = 0.02
	}
	if c.ReabsorbAfter == 0 {
		c.ReabsorbAfter = 5
	}
	if c.BinHours == 0 {
		c.BinHours = 1.0 / 6.0
	}
	if c.PeriodsHours == nil {
		c.PeriodsHours = timeseries.DefaultPeriodsHours
	}
	if c.AlphaGrid == nil {
		c.AlphaGrid = timeseries.DefaultAlphaGrid
	}
}

// fourierCoef is an immutable fitted basis: the periods the fit could
// resolve and one coefficient vector per link. It is replaced wholesale
// on refit, never mutated. Periods travel with the coefficients because
// a fit on a short window drops the periods longer than the window can
// determine — a near-collinear long-period pair fits the window fine
// in-sample but extrapolates wildly one bin past it.
type fourierCoef struct {
	periods []float64
	coef    [][]float64 // links x (2*len(periods)+1)
}

// seedState is everything a seed or refit computes off to the side
// before committing, so a failed fit leaves the live state untouched.
type seedState struct {
	alpha        []float64
	level, trend []float64
	coef         *fourierCoef
	rmean, rvar  []float64
	window       *mat.RowRing
	times        *intRing
}

// Detector is a streaming per-link forecasting detector satisfying
// core.ViewDetector. Concurrency follows the other backends: one
// ProcessBatch caller at a time (the engine's per-shard FIFO guarantees
// it), with Refit/Seed/WaitRefits/TakeRefitError/Stats callable
// concurrently; model fitting runs on snapshots outside the detector
// lock and never blocks detection.
type Detector struct {
	kind     Kind
	beta     float64
	k, adapt float64
	binHours float64
	periods  []float64
	grid     []float64
	links    int
	reabsorb int
	// alphaCfg is the configured level gain (defaults applied): 0 for
	// the EWMA kind means per-link grid search, at construction and on
	// every re-Seed alike. A pinned alpha survives re-seeding.
	alphaCfg float64

	mu    sync.Mutex // guards everything below
	alpha []float64  // per-link level gain (ewma, holtwinters)
	level []float64  // ewma: next-bin prediction; holtwinters: level
	trend []float64  // holtwinters trend
	coef  *fourierCoef
	// rmean/rvar are the exponentially weighted mean and variance of
	// each link's absolute residual; the alarm threshold is
	// rmean + K*sqrt(rvar).
	rmean, rvar []float64
	// alarmRun counts each link's consecutive alarmed bins and
	// binAlarmRun the detector's consecutive alarmed bins; both drive
	// the ReabsorbAfter level-shift recovery.
	alarmRun    []int
	binAlarmRun int
	window      *mat.RowRing
	times       *intRing
	clock       int // absolute bin index, seed history included (Fourier phase)
	processed   int
	sinceRefit  int
	refitEvery  int
	gate        *core.RefitGate
	refits      int
	refitHook   func()
}

var _ core.ViewDetector = (*Detector)(nil)

// NewDetector seeds a forecast detector of cfg.Kind on history
// (bins x links): forecaster state is warmed by replaying the history,
// per-link thresholds are estimated from the replay residuals, and (for
// the Fourier kind) the basis is fitted on the history. The history also
// fills the refit window.
func NewDetector(history *mat.Dense, cfg Config) (*Detector, error) {
	cfg.fillDefaults()
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	t, links := history.Dims()
	d := &Detector{
		kind:       cfg.Kind,
		beta:       cfg.Beta,
		k:          cfg.K,
		adapt:      cfg.Adapt,
		binHours:   cfg.BinHours,
		periods:    cfg.PeriodsHours,
		grid:       cfg.AlphaGrid,
		links:      links,
		reabsorb:   cfg.ReabsorbAfter,
		alphaCfg:   cfg.Alpha,
		refitEvery: cfg.RefitEvery,
	}
	d.gate = core.NewRefitGate(&d.mu)
	capacity := cfg.Window
	if capacity <= 0 {
		capacity = t
	}
	st, err := d.seedState(history, 0, capacity, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	d.install(st)
	d.clock = t
	return d, nil
}

func validateConfig(cfg Config) error {
	switch cfg.Kind {
	case EWMA, HoltWinters, Fourier:
	default:
		return fmt.Errorf("forecast: unknown kind %q", cfg.Kind)
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		return fmt.Errorf("forecast: alpha %v out of [0,1]", cfg.Alpha)
	}
	if cfg.Beta < 0 || cfg.Beta > 1 {
		return fmt.Errorf("forecast: beta %v out of [0,1]", cfg.Beta)
	}
	if cfg.K < 0 {
		return fmt.Errorf("forecast: threshold multiplier %v < 0", cfg.K)
	}
	if cfg.Adapt <= 0 || cfg.Adapt >= 1 {
		return fmt.Errorf("forecast: adapt rate %v out of (0,1)", cfg.Adapt)
	}
	if cfg.ReabsorbAfter < 0 {
		return fmt.Errorf("forecast: reabsorb horizon %v < 0", cfg.ReabsorbAfter)
	}
	if cfg.BinHours <= 0 {
		return fmt.Errorf("forecast: bin duration %v <= 0", cfg.BinHours)
	}
	return nil
}

// minSeedBins is the smallest history the kind can be seeded on: the
// Fourier fit needs more rows than basis columns to be determined, the
// recursive kinds just need a residual sample to estimate thresholds.
func (d *Detector) minSeedBins() int {
	if d.kind == Fourier {
		return 2 * (2*len(d.periods) + 1)
	}
	return 8
}

// SetRefitHook installs a function that runs inside every background
// refit goroutine before fitting begins; tests use it to hold a refit
// open. Call before streaming starts.
func (d *Detector) SetRefitHook(h func()) { d.refitHook = h }

// seedState builds the complete detector state from a history block off
// to the side: per-link smoothing gains (grid-searched when alphaCfg is
// 0 and the kind is EWMA), warmed forecaster state, residual statistics,
// and a filled window. start is the absolute bin index of the first
// history row; capacity sizes the refit window.
func (d *Detector) seedState(history *mat.Dense, start, capacity int, alphaCfg float64) (*seedState, error) {
	t, links := history.Dims()
	if links != d.links {
		return nil, fmt.Errorf("forecast: seed history has %d links, detector expects %d", links, d.links)
	}
	if min := d.minSeedBins(); t < min {
		return nil, fmt.Errorf("forecast: %s seed needs at least %d bins, have %d", d.kind, min, t)
	}
	st := &seedState{
		alpha:  make([]float64, links),
		level:  make([]float64, links),
		trend:  make([]float64, links),
		rmean:  make([]float64, links),
		rvar:   make([]float64, links),
		window: mat.NewRowRing(capacity, links),
		times:  newIntRing(capacity),
	}
	var design *mat.Dense
	if d.kind == Fourier {
		periods := d.resolvablePeriods(t)
		st.coef = &fourierCoef{periods: periods, coef: make([][]float64, links)}
		design = d.designMatrix(periods, start, t)
	}
	resid := make([]float64, t)
	for l := 0; l < links; l++ {
		col := history.Col(l)
		alpha := alphaCfg
		if d.kind == EWMA && alpha == 0 {
			var err error
			if alpha, err = timeseries.SelectAlpha(col, d.grid); err != nil {
				return nil, fmt.Errorf("forecast: link %d: %w", l, err)
			}
		}
		fit, err := d.fitLink(col, alpha, design, resid)
		if err != nil {
			return nil, fmt.Errorf("forecast: link %d: %w", l, err)
		}
		st.alpha[l] = alpha
		st.level[l], st.trend[l] = fit.level, fit.trend
		if st.coef != nil {
			st.coef.coef[l] = fit.coef
		}
		st.rmean[l], st.rvar[l] = fit.rmean, fit.rvar
	}
	for b := 0; b < t; b++ {
		st.window.Push(history.RowView(b))
		st.times.Push(start + b)
	}
	return st, nil
}

// linkFit is one link's replayed model fit: the forecaster end state,
// the fitted basis coefficients (Fourier only), and the threshold
// statistics of the post-warmup residuals.
type linkFit struct {
	level, trend float64
	coef         []float64
	rmean, rvar  float64
}

// fitLink replays (smoothing kinds) or fits (Fourier, against the
// provided design matrix) one link's column from a cold start, writing
// one-step residuals into the resid buffer (len(col)) and returning the
// end state plus residual statistics. It is the single shared fit used
// by seeding and threshold re-estimation alike, so the two can never
// diverge.
func (d *Detector) fitLink(col []float64, alpha float64, design *mat.Dense, resid []float64) (linkFit, error) {
	var fit linkFit
	switch d.kind {
	case EWMA:
		pred := col[0]
		for i, z := range col {
			resid[i] = z - pred
			pred = alpha*z + (1-alpha)*pred
		}
		fit.level = pred
	case HoltWinters:
		level, trend := col[0], 0.0
		resid[0] = 0
		for i := 1; i < len(col); i++ {
			pred := level + trend
			resid[i] = col[i] - pred
			newLevel := alpha*col[i] + (1-alpha)*pred
			trend = d.beta*(newLevel-level) + (1-d.beta)*trend
			level = newLevel
		}
		fit.level, fit.trend = level, trend
	case Fourier:
		coef, err := mat.SolveLS(design, col)
		if err != nil {
			return linkFit{}, fmt.Errorf("fourier fit: %w", err)
		}
		fit.coef = coef
		basis := mat.MulVec(design, coef)
		for i := range col {
			resid[i] = col[i] - basis[i]
		}
	}
	fit.rmean, fit.rvar = absStats(resid[warmup(len(col)):])
	return fit, nil
}

// warmup is the prefix of replayed residuals excluded from threshold
// estimation: the cold-started recursions have not converged there.
func warmup(n int) int {
	w := n / 8
	if w < 2 {
		w = 2
	}
	if w >= n {
		w = n - 1
	}
	return w
}

// absStats returns the mean and variance of |r| over the residuals.
func absStats(resid []float64) (mean, variance float64) {
	if len(resid) == 0 {
		return 0, 0
	}
	for _, r := range resid {
		mean += math.Abs(r)
	}
	mean /= float64(len(resid))
	for _, r := range resid {
		d := math.Abs(r) - mean
		variance += d * d
	}
	variance /= float64(len(resid))
	return mean, variance
}

// install commits a computed seed/refit state. Callers hold d.mu or own
// the detector exclusively (construction).
func (d *Detector) install(st *seedState) {
	d.alpha = st.alpha
	d.level, d.trend = st.level, st.trend
	d.coef = st.coef
	d.rmean, d.rvar = st.rmean, st.rvar
	d.alarmRun = make([]int, d.links)
	d.binAlarmRun = 0
	d.window, d.times = st.window, st.times
}

// resolvablePeriods returns the configured basis periods a fit over the
// given time span (in bins) can determine: a sinusoid pair whose period
// exceeds twice the span is near-collinear with the constant and the
// other long periods on that span, and its unconstrained coefficients
// extrapolate wildly right past the window.
func (d *Detector) resolvablePeriods(spanBins int) []float64 {
	spanHours := float64(spanBins) * d.binHours
	var out []float64
	for _, p := range d.periods {
		if p <= 2*spanHours {
			out = append(out, p)
		}
	}
	return out
}

// designMatrix builds the regression matrix of the sinusoid basis over
// the given periods for n consecutive bins starting at absolute bin
// index start.
func (d *Detector) designMatrix(periods []float64, start, n int) *mat.Dense {
	m := mat.Zeros(n, 2*len(periods)+1)
	for i := 0; i < n; i++ {
		d.basisRow(periods, start+i, m.RowView(i))
	}
	return m
}

// basisRow fills out with the basis values at absolute bin index b:
// a constant plus sin/cos pairs for each period.
func (d *Detector) basisRow(periods []float64, b int, out []float64) {
	out[0] = 1
	hours := float64(b) * d.binHours
	for k, period := range periods {
		w := 2 * math.Pi * hours / period
		out[1+2*k] = math.Sin(w)
		out[2+2*k] = math.Cos(w)
	}
}

// thresholdLocked returns link l's current alarm threshold:
// mean + K*sigma of its tracked absolute residuals, with two floors so
// a link whose residual history is (near-)zero — a perfectly predicted
// or constant link — does not alarm on floating-point noise: sigma
// never drops below a thousandth of the mean residual, and the whole
// threshold never drops below a billionth of the forecast magnitude
// (double-precision noise on a value of that scale sits ~1e-7 lower
// still). Callers hold d.mu.
func (d *Detector) thresholdLocked(l int, scale float64) float64 {
	sigma := math.Sqrt(d.rvar[l])
	if f := 1e-3 * d.rmean[l]; sigma < f {
		sigma = f
	}
	thr := d.rmean[l] + d.k*sigma
	if f := 1e-9 * math.Abs(scale); thr < f {
		thr = f
	}
	return thr
}

// ProcessBatch tests a block of measurements (bins x links) against the
// per-link forecasts, updates forecaster state and rolling thresholds
// with the non-anomalous bins, and schedules a background refit when the
// interval has elapsed. Alarms carry sequence numbers continuing the
// per-detector count; a deferred refit failure is reported alongside the
// batch's detections.
func (d *Detector) ProcessBatch(y *mat.Dense) ([]core.Alarm, error) {
	bins, cols := y.Dims()
	if cols != d.links {
		return nil, fmt.Errorf("forecast: batch has %d links, detector expects %d", cols, d.links)
	}
	pred := make([]float64, d.links)
	exceeded := make([]bool, d.links)

	d.mu.Lock()
	// d.coef cannot change while mu is held (installs take mu), so the
	// basis buffer sized to its period set stays valid for the batch.
	var basis []float64
	if d.kind == Fourier {
		basis = make([]float64, 2*len(d.coef.periods)+1)
	}
	base := d.processed
	d.processed += bins
	var alarms []core.Alarm
	for b := 0; b < bins; b++ {
		row := y.RowView(b)
		if basis != nil {
			d.basisRow(d.coef.periods, d.clock, basis)
		}
		// Score every link against its forecast and adaptive threshold;
		// the bin alarms when any link exceeds, and the alarm reports the
		// link with the largest exceedance ratio.
		alarmed := false
		worstR, worstThr, worstRatio := 0.0, 0.0, 0.0
		for l := 0; l < d.links; l++ {
			switch d.kind {
			case EWMA:
				pred[l] = d.level[l]
			case HoltWinters:
				pred[l] = d.level[l] + d.trend[l]
			case Fourier:
				pred[l] = mat.Dot(basis, d.coef.coef[l])
			}
			r := row[l] - pred[l]
			thr := d.thresholdLocked(l, pred[l])
			exceeded[l] = math.Abs(r) > thr
			if exceeded[l] {
				alarmed = true
				ratio := math.Abs(r)
				if thr > 0 {
					ratio = math.Abs(r) / thr
				}
				if ratio > worstRatio {
					worstRatio, worstR, worstThr = ratio, r, thr
				}
			}
		}
		seq := base + b
		if alarmed {
			alarms = append(alarms, core.Alarm{Seq: seq, Diagnosis: core.Diagnosis{
				Bin:       seq,
				SPE:       worstR * worstR,
				Threshold: worstThr * worstThr,
				Flow:      -1,
				Bytes:     worstR,
			}})
		}
		// Per-link state update. Quiet links always advance their
		// forecaster and rolling threshold statistics; an exceeding link
		// is withheld (the forecaster keeps its pre-spike prediction —
		// the streaming equivalent of the footnote-4 echo suppression,
		// and the spike does not inflate its own threshold) until it has
		// alarmed reabsorb bins in a row, at which point the forecaster
		// resumes absorbing observations so a legitimate persistent
		// level shift re-converges instead of alarming forever. The
		// threshold statistics stay withheld; they resume once the
		// re-converged forecaster stops exceeding.
		for l := 0; l < d.links; l++ {
			if exceeded[l] {
				d.alarmRun[l]++
				if d.alarmRun[l] < d.reabsorb {
					continue
				}
			} else {
				d.alarmRun[l] = 0
			}
			z := row[l]
			var r float64
			switch d.kind {
			case EWMA:
				r = z - d.level[l]
				d.level[l] = d.alpha[l]*z + (1-d.alpha[l])*d.level[l]
			case HoltWinters:
				r = z - pred[l]
				newLevel := d.alpha[l]*z + (1-d.alpha[l])*pred[l]
				d.trend[l] = d.beta*(newLevel-d.level[l]) + (1-d.beta)*d.trend[l]
				d.level[l] = newLevel
			case Fourier:
				r = z - pred[l]
			}
			if exceeded[l] {
				continue // forecaster re-absorbs, thresholds stay withheld
			}
			delta := math.Abs(r) - d.rmean[l]
			d.rmean[l] += d.adapt * delta
			d.rvar[l] = (1 - d.adapt) * (d.rvar[l] + d.adapt*delta*delta)
		}
		// The refit window drops alarmed bins so spikes cannot
		// contaminate the next fit, but after reabsorb consecutive
		// alarmed bins it resumes retaining rows so refits can see (and
		// adopt) a persistent new regime — without this, the Fourier
		// kind would never recover from a level shift.
		if alarmed {
			d.binAlarmRun++
		} else {
			d.binAlarmRun = 0
		}
		if !alarmed || d.binAlarmRun >= d.reabsorb {
			d.window.Push(row)
			d.times.Push(d.clock)
		}
		d.clock++
	}
	err := d.gate.TakeErrorLocked()
	var snap *refitSnapshot
	if d.refitEvery > 0 {
		d.sinceRefit += bins
		if d.sinceRefit >= d.refitEvery && d.gate.TryBeginLocked() {
			d.sinceRefit = 0
			snap = d.snapshotLocked()
		}
	}
	d.mu.Unlock()

	if snap != nil {
		d.spawnRefit(snap)
	}
	return alarms, err
}

// refitSnapshot carries what a background refit fits on: the window
// rows, their absolute bin indices, and the per-link gains in force.
type refitSnapshot struct {
	rows  *mat.Dense
	times []int
	alpha []float64
}

// snapshotLocked captures the refit inputs. Callers hold d.mu.
func (d *Detector) snapshotLocked() *refitSnapshot {
	return &refitSnapshot{rows: d.window.Matrix(), times: d.times.Slice(), alpha: append([]float64(nil), d.alpha...)}
}

// refitState re-estimates the per-link threshold statistics from the
// snapshot — replaying the recursions for the smoothing kinds, refitting
// the basis for the Fourier kind — entirely outside the detector lock.
// The returned state carries only the fields a refit replaces (thresholds
// and, for Fourier, coefficients); nil slices mean "keep the live value".
func (d *Detector) refitState(snap *refitSnapshot) (*seedState, error) {
	if snap.rows == nil {
		return nil, fmt.Errorf("forecast: refit window is empty")
	}
	t, links := snap.rows.Dims()
	st := &seedState{
		rmean: make([]float64, links),
		rvar:  make([]float64, links),
	}
	var design *mat.Dense
	if d.kind == Fourier {
		// The window may have gaps (withheld anomalous bins); its
		// resolvable periods come from the true time span it covers.
		span := snap.times[len(snap.times)-1] - snap.times[0] + 1
		periods := d.resolvablePeriods(span)
		if t < 2*(2*len(periods)+1) {
			return nil, fmt.Errorf("forecast: refit window has %d bins, fourier basis needs %d", t, 2*(2*len(periods)+1))
		}
		st.coef = &fourierCoef{periods: periods, coef: make([][]float64, links)}
		design = d.designMatrixAt(periods, snap.times)
	}
	resid := make([]float64, t)
	for l := 0; l < links; l++ {
		fit, err := d.fitLink(snap.rows.Col(l), snap.alpha[l], design, resid)
		if err != nil {
			return nil, fmt.Errorf("forecast: link %d: %w", l, err)
		}
		if st.coef != nil {
			st.coef.coef[l] = fit.coef
		}
		st.rmean[l], st.rvar[l] = fit.rmean, fit.rvar
	}
	return st, nil
}

// designMatrixAt builds the basis regression matrix for explicit
// absolute bin indices — the refit window may have gaps where anomalous
// bins were withheld, so row times are not consecutive.
func (d *Detector) designMatrixAt(periods []float64, times []int) *mat.Dense {
	m := mat.Zeros(len(times), 2*len(periods)+1)
	for i, b := range times {
		d.basisRow(periods, b, m.RowView(i))
	}
	return m
}

// installRefit commits a refit result under the lock: thresholds are
// re-based on the window estimate and the Fourier basis (when present)
// is swapped; the live forecaster state stays, since it is more current
// than any replay of the snapshot.
func (d *Detector) installRefit(st *seedState) {
	d.rmean, d.rvar = st.rmean, st.rvar
	if st.coef != nil {
		d.coef = st.coef
	}
}

// spawnRefit runs the refit on the snapshot in a background goroutine.
// The caller has already claimed the gate; the goroutine releases it
// after the install decision so fits never interleave.
func (d *Detector) spawnRefit(snap *refitSnapshot) {
	go func() {
		if h := d.refitHook; h != nil {
			h()
		}
		st, err := d.refitState(snap)
		if err != nil {
			err = fmt.Errorf("forecast: %s refit: %w", d.kind, err)
		}
		d.mu.Lock()
		if err == nil {
			d.installRefit(st)
			d.refits++
		}
		d.gate.EndLocked(err)
		d.mu.Unlock()
	}()
}

// Refit synchronously re-estimates the thresholds (and refits the
// Fourier basis) from the current window. It serializes with background
// refits but never blocks concurrent detection: the fit runs on a
// snapshot outside the lock. A failed fit leaves the active state in
// force.
func (d *Detector) Refit() error {
	d.mu.Lock()
	d.gate.BeginLocked()
	snap := d.snapshotLocked()
	d.mu.Unlock()

	st, err := d.refitState(snap)
	if err != nil {
		err = fmt.Errorf("forecast: %s refit: %w", d.kind, err)
	}

	d.mu.Lock()
	if err == nil {
		d.installRefit(st)
		d.refits++
	}
	d.gate.EndLocked(nil)
	d.mu.Unlock()
	return err
}

// Seed rebuilds the full detector state from a history block, replacing
// the windowed state a later Refit would fit on; the history is treated
// as the immediately preceding bins, so the Fourier phase stays aligned
// with the running clock. It serializes with in-flight refits; the
// processed-bin counter keeps running. A history that cannot be fitted
// leaves the active state untouched.
func (d *Detector) Seed(history *mat.Dense) error {
	t, links := history.Dims()
	if links != d.links {
		return fmt.Errorf("forecast: seed history has %d links, detector expects %d", links, d.links)
	}
	d.mu.Lock()
	d.gate.BeginLocked()
	start := d.clock - t
	capacity := d.window.Cap()
	d.mu.Unlock()

	// The configured alpha is re-applied exactly as construction did: a
	// pinned gain survives re-seeding, and an unset EWMA gain re-runs
	// the per-link grid search on the new history.
	st, err := d.seedState(history, start, capacity, d.alphaCfg)
	if err != nil {
		err = fmt.Errorf("forecast: %s seed: %w", d.kind, err)
	}

	d.mu.Lock()
	if err == nil {
		d.install(st)
		d.sinceRefit = 0
		d.refits++
	}
	d.gate.EndLocked(nil)
	d.mu.Unlock()
	return err
}

// WaitRefits blocks until no fit is in flight.
func (d *Detector) WaitRefits() { d.gate.Wait() }

// TakeRefitError returns and clears the deferred error from the last
// failed background refit, if any.
func (d *Detector) TakeRefitError() error { return d.gate.TakeError() }

// Stats reports the detector's current state. Rank is 0: forecast
// backends model links independently and have no subspace dimension.
func (d *Detector) Stats() core.ViewStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return core.ViewStats{
		Backend:   string(d.kind),
		Links:     d.links,
		Processed: d.processed,
		Refits:    d.refits,
	}
}

// snapshotKind maps the forecast kind to its snapshot kind byte, so an
// EWMA snapshot can never restore into a Holt-Winters detector even
// though the two share most state.
func snapshotKind(k Kind) byte {
	switch k {
	case EWMA:
		return core.SnapKindEWMA
	case HoltWinters:
		return core.SnapKindHoltWinters
	default:
		return core.SnapKindFourier
	}
}

// Snapshot serializes the per-link forecaster recursions (gains, level,
// trend, fitted Fourier basis), the adaptive threshold statistics, the
// alarm-run counters, the refit window with its bin-time ring, and the
// absolute clock that keeps the Fourier phase aligned. The refit gate
// is taken first so an in-flight refit is waited out, never captured
// mid-install.
func (d *Detector) Snapshot(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gate.BeginLocked()
	defer d.gate.EndLocked(nil)
	return core.EncodeSnapshot(w, snapshotKind(d.kind), func(sw *core.SnapshotWriter) {
		sw.Int(d.links)
		sw.Floats(d.alpha)
		sw.Floats(d.level)
		sw.Floats(d.trend)
		sw.Bool(d.coef != nil)
		if d.coef != nil {
			sw.Floats(d.coef.periods)
			for _, c := range d.coef.coef {
				sw.Floats(c)
			}
		}
		sw.Floats(d.rmean)
		sw.Floats(d.rvar)
		sw.Ints(d.alarmRun)
		sw.Int(d.binAlarmRun)
		sw.RowRing(d.window)
		sw.Ints(d.times.Slice())
		sw.Int(d.clock)
		sw.Int(d.processed)
		sw.Int(d.sinceRefit)
		sw.Int(d.refits)
	})
}

// Restore replaces the forecaster state, thresholds, window, and clock
// with a snapshot from an identically configured detector of the same
// kind. The state commits only after the whole payload validates; the
// receiver's configuration (K, adapt rate, reabsorb horizon, bin
// duration, refit cadence) stays in force.
func (d *Detector) Restore(r io.Reader) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gate.BeginLocked()
	defer d.gate.EndLocked(nil)
	return core.DecodeSnapshot(r, snapshotKind(d.kind), func(sr *core.SnapshotReader) error {
		links := sr.Int()
		if sr.Err() == nil && links != d.links {
			return core.SnapshotMismatchf("snapshot has %d links, detector expects %d", links, d.links)
		}
		alpha := sr.Floats()
		level := sr.Floats()
		trend := sr.Floats()
		var coef *fourierCoef
		if sr.Bool() {
			coef = &fourierCoef{periods: sr.Floats(), coef: make([][]float64, d.links)}
			for l := range coef.coef {
				coef.coef[l] = sr.Floats()
			}
		}
		rmean := sr.Floats()
		rvar := sr.Floats()
		alarmRun := sr.Ints()
		binAlarmRun := sr.NonNegInt()
		window := sr.RowRing(d.links)
		times := sr.Ints()
		clock := sr.Int()
		processed := sr.NonNegInt()
		sinceRefit := sr.NonNegInt()
		refits := sr.NonNegInt()
		if err := sr.Err(); err != nil {
			return err
		}
		for _, s := range [][]float64{alpha, level, trend, rmean, rvar} {
			if len(s) != d.links {
				return fmt.Errorf("%w: per-link state has %d entries, want %d", core.ErrSnapshotFormat, len(s), d.links)
			}
		}
		if len(alarmRun) != d.links {
			return fmt.Errorf("%w: alarm runs have %d entries, want %d", core.ErrSnapshotFormat, len(alarmRun), d.links)
		}
		if (coef != nil) != (d.kind == Fourier) {
			return fmt.Errorf("%w: fourier basis presence disagrees with kind %q", core.ErrSnapshotFormat, d.kind)
		}
		if coef != nil {
			width := 2*len(coef.periods) + 1
			for l, c := range coef.coef {
				if len(c) != width {
					return fmt.Errorf("%w: link %d basis has %d coefficients, want %d", core.ErrSnapshotFormat, l, len(c), width)
				}
			}
		}
		if len(times) != window.Len() {
			return fmt.Errorf("%w: %d bin times for %d window rows", core.ErrSnapshotFormat, len(times), window.Len())
		}
		timeRing := newIntRing(window.Cap())
		for _, t := range times {
			timeRing.Push(t)
		}
		d.alpha = alpha
		d.level, d.trend = level, trend
		d.coef = coef
		d.rmean, d.rvar = rmean, rvar
		d.alarmRun = alarmRun
		d.binAlarmRun = binAlarmRun
		d.window, d.times = window, timeRing
		d.clock = clock
		d.processed = processed
		d.sinceRefit = sinceRefit
		d.refits = refits
		return nil
	})
}

// Thresholds returns each link's current alarm threshold
// (mean + K*sigma of its tracked absolute residuals, floored against
// the magnitude of the next bin's forecast — the same floor scale
// ProcessBatch would apply), for inspection and tests.
func (d *Detector) Thresholds() []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var basis []float64
	if d.kind == Fourier {
		basis = make([]float64, 2*len(d.coef.periods)+1)
		d.basisRow(d.coef.periods, d.clock, basis)
	}
	out := make([]float64, d.links)
	for l := range out {
		var pred float64
		switch d.kind {
		case EWMA:
			pred = d.level[l]
		case HoltWinters:
			pred = d.level[l] + d.trend[l]
		case Fourier:
			pred = mat.Dot(basis, d.coef.coef[l])
		}
		out[l] = d.thresholdLocked(l, pred)
	}
	return out
}

// Alphas returns the per-link level smoothing gains in force (the grid
// search result when Config.Alpha was 0 for the EWMA kind).
func (d *Detector) Alphas() []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]float64(nil), d.alpha...)
}

// intRing is a fixed-capacity ring of ints, pushed in lockstep with the
// window's RowRing to remember each retained row's absolute bin index
// (the window has gaps where anomalous bins were withheld, and the
// Fourier basis needs true times).
type intRing struct {
	data     []int
	capacity int
	next     int
	count    int
}

func newIntRing(capacity int) *intRing {
	return &intRing{data: make([]int, capacity), capacity: capacity}
}

func (r *intRing) Push(v int) {
	r.data[r.next] = v
	r.next = (r.next + 1) % r.capacity
	if r.count < r.capacity {
		r.count++
	}
}

// Slice returns the buffered values, oldest first.
func (r *intRing) Slice() []int {
	out := make([]int, r.count)
	start := 0
	if r.count == r.capacity {
		start = r.next
	}
	n := copy(out, r.data[start:r.count])
	copy(out[n:], r.data[:start])
	return out
}
