// Package stats provides the scalar statistics used across the anomaly
// diagnosis pipeline: moments, percentiles, the standard normal
// distribution (including the inverse CDF needed for the Q-statistic's
// c_alpha), histograms, and evaluation error metrics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x. It returns NaN for empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the unbiased sample variance of x (denominator n-1).
// It returns 0 for inputs with fewer than two values.
func Variance(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// Std returns the sample standard deviation of x.
func Std(x []float64) float64 { return math.Sqrt(Variance(x)) }

// MeanStd returns the mean and sample standard deviation of x in one pass.
func MeanStd(x []float64) (mean, std float64) {
	mean = Mean(x)
	return mean, Std(x)
}

// Median returns the median of x. It returns NaN for empty input.
func Median(x []float64) float64 { return Percentile(x, 50) }

// Percentile returns the p-th percentile (0 <= p <= 100) of x using linear
// interpolation between closest ranks. It returns NaN for empty input and
// panics for p outside [0,100].
func Percentile(x []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p))
	}
	if len(x) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MinMax returns the minimum and maximum of x. It returns (NaN, NaN) for
// empty input.
func MinMax(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// MeanAbsRelError returns the mean of |est-truth|/|truth| over the paired
// slices, skipping pairs where truth is zero. This is the quantification
// error metric of Section 6.1. It returns NaN when no valid pair exists.
func MeanAbsRelError(est, truth []float64) float64 {
	if len(est) != len(truth) {
		panic(fmt.Sprintf("stats: MeanAbsRelError length mismatch %d vs %d", len(est), len(truth)))
	}
	var s float64
	var n int
	for i, tv := range truth {
		if tv == 0 {
			continue
		}
		s += math.Abs(est[i]-tv) / math.Abs(tv)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

// NormalPDF returns the standard normal density at z.
func NormalPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// NormalCDF returns P(Z <= z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the p-quantile of the standard normal
// distribution (the inverse of NormalCDF), 0 < p < 1. It uses Acklam's
// rational approximation refined with one Halley step, giving relative
// error below 1e-15 across the domain. The Q-statistic threshold uses this
// for c_alpha, the 1-alpha percentile (Section 5.1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p == 0 {
			return math.Inf(-1)
		}
		if p == 1 {
			return math.Inf(1)
		}
		panic(fmt.Sprintf("stats: NormalQuantile p=%v out of (0,1)", p))
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}
