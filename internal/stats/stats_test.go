package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) must be NaN")
	}
}

func TestVarianceStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1: 32/7.
	want := 32.0 / 7.0
	if got := Variance(x); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %v want %v", got, want)
	}
	if got := Std(x); math.Abs(got-math.Sqrt(want)) > 1e-12 {
		t.Fatalf("Std = %v", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Fatal("Variance of singleton must be 0")
	}
}

func TestVarianceShiftInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		shift := rng.NormFloat64() * 100
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = x[i] + shift
		}
		return math.Abs(Variance(x)-Variance(y)) < 1e-8*(1+Variance(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{1, 3})
	if m != 2 || math.Abs(s-math.Sqrt2) > 1e-12 {
		t.Fatalf("MeanStd = %v,%v", m, s)
	}
}

func TestMedianPercentile(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("Median = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("Median even = %v", got)
	}
	x := []float64{10, 20, 30, 40, 50}
	if got := Percentile(x, 0); got != 10 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(x, 100); got != 50 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(x, 25); got != 20 {
		t.Fatalf("P25 = %v", got)
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Fatalf("singleton percentile = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile must be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	x := []float64{3, 1, 2}
	Percentile(x, 50)
	if x[0] != 3 || x[1] != 1 || x[2] != 2 {
		t.Fatal("Percentile must not sort the caller's slice")
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Fatal("MinMax(nil) must be NaN,NaN")
	}
}

func TestMeanAbsRelError(t *testing.T) {
	got := MeanAbsRelError([]float64{110, 90}, []float64{100, 100})
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MARE = %v want 0.1", got)
	}
	// Zero-truth entries are skipped.
	got = MeanAbsRelError([]float64{110, 5}, []float64{100, 0})
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MARE with zero truth = %v want 0.1", got)
	}
	if !math.IsNaN(MeanAbsRelError([]float64{1}, []float64{0})) {
		t.Fatal("all-zero truth must yield NaN")
	}
}

func TestNormalPDF(t *testing.T) {
	if got := NormalPDF(0); math.Abs(got-1/math.Sqrt(2*math.Pi)) > 1e-15 {
		t.Fatalf("NormalPDF(0) = %v", got)
	}
	if NormalPDF(3) >= NormalPDF(0) {
		t.Fatal("PDF must decrease away from 0")
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{2.5758293035489004, 0.995},
		{3.0902323061678132, 0.999},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("NormalCDF(%v) = %v want %v", c.z, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Float64()*0.998 + 0.001
		z := NormalQuantile(p)
		return math.Abs(NormalCDF(z)-p) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.995, 2.5758293035489004},
		{0.999, 3.0902323061678132},
		{0.9995, 3.2905267314918945},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("NormalQuantile(%v) = %v want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileTails(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("endpoints must map to infinities")
	}
	if z := NormalQuantile(1e-10); z > -6 {
		t.Fatalf("deep left tail %v not negative enough", z)
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Float64()*0.498 + 0.001
		return math.Abs(NormalQuantile(p)+NormalQuantile(1-p)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NormalQuantile(-0.1)
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.AddAll([]float64{0.05, 0.15, 0.15, 0.95})
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Total() != 4 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-0.5)
	h.Add(1.5)
	h.Add(1.0) // exactly max lands in last bin
	if h.Counts[0] != 1 || h.Counts[3] != 2 {
		t.Fatalf("clamping wrong: %v", h.Counts)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Fatalf("BinCenter(4) = %v", got)
	}
}

func TestHistogramFractions(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if f := h.Fractions(); f[0] != 0 || f[1] != 0 {
		t.Fatal("empty histogram fractions must be zero")
	}
	h.Add(0.25)
	h.Add(0.75)
	h.Add(0.8)
	f := h.Fractions()
	if math.Abs(f[0]-1.0/3) > 1e-12 || math.Abs(f[1]-2.0/3) > 1e-12 {
		t.Fatalf("fractions = %v", f)
	}
}

func TestHistogramInvalidConstruction(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
