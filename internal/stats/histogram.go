package stats

import "fmt"

// Histogram accumulates values into equal-width bins over [Min, Max].
// Values outside the range are clamped into the first or last bin, which
// matches how the paper's rate histograms (Figure 7) treat the endpoints
// 0 and 1.
type Histogram struct {
	Min, Max float64
	Counts   []int
	total    int
}

// NewHistogram returns a histogram with n equal-width bins spanning
// [min, max]. It panics for n <= 0 or min >= max.
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 {
		panic(fmt.Sprintf("stats: histogram bins %d <= 0", n))
	}
	if min >= max {
		panic(fmt.Sprintf("stats: histogram range [%v,%v] invalid", min, max))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, n)}
}

// Add records v into its bin.
func (h *Histogram) Add(v float64) {
	n := len(h.Counts)
	idx := int(float64(n) * (v - h.Min) / (h.Max - h.Min))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Counts[idx]++
	h.total++
}

// AddAll records every value in vs.
func (h *Histogram) AddAll(vs []float64) {
	for _, v := range vs {
		h.Add(v)
	}
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// Fractions returns each bin's share of the total (zeros when empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}
