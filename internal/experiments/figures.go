package experiments

import (
	"fmt"

	"netanomaly/internal/core"
	"netanomaly/internal/eval"
	"netanomaly/internal/mat"
	"netanomaly/internal/stats"
	"netanomaly/internal/timeseries"
	"netanomaly/internal/traffic"
)

// Figure1Result reproduces Figure 1: an OD-flow volume anomaly (top row)
// and the traffic on the links that carry the flow — the only data the
// diagnosis algorithm sees.
type Figure1Result struct {
	Dataset    string
	FlowName   string
	Anomaly    traffic.Anomaly
	FlowSeries []float64
	LinkNames  []string
	LinkSeries [][]float64
}

// Figure1 extracts the illustration for the dataset's true anomaly with
// the longest link path (the paper shows four-link examples).
func Figure1(d *Dataset) Figure1Result {
	best := d.TrueAnomalies[0]
	for _, a := range d.TrueAnomalies[1:] {
		if len(d.Topo.Route(a.Flow)) > len(d.Topo.Route(best.Flow)) {
			best = a
		}
	}
	links := d.Topo.Links()
	pops := d.Topo.PoPs()
	res := Figure1Result{
		Dataset:    d.Name,
		FlowName:   d.Topo.FlowName(best.Flow),
		Anomaly:    best,
		FlowSeries: d.OD.Col(best.Flow),
	}
	for _, li := range d.Topo.Route(best.Flow) {
		l := links[li]
		res.LinkNames = append(res.LinkNames, fmt.Sprintf("%s-%s", pops[l.Src].Name, pops[l.Dst].Name))
		res.LinkSeries = append(res.LinkSeries, d.Links.Col(li))
	}
	return res
}

// ScreeResult is one dataset's Figure 3 curve: the fraction of total link
// traffic variance captured by each principal component.
type ScreeResult struct {
	Dataset   string
	Fractions []float64
	// Effective90 is the number of components needed for 90% of variance.
	Effective90 int
}

// Figure3 computes the scree curve for every dataset.
func Figure3() ([]ScreeResult, error) {
	var out []ScreeResult
	for _, d := range AllDatasets() {
		p, err := core.Fit(d.Links)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 3 on %s: %w", d.Name, err)
		}
		out = append(out, ScreeResult{
			Dataset:     d.Name,
			Fractions:   p.VarianceFractions(),
			Effective90: p.EffectiveDimension(0.9),
		})
	}
	return out, nil
}

// Figure4Result reproduces Figure 4: projections of the measurement
// matrix on normal principal axes (periodic, deterministic) and on
// anomalous axes (spikes).
type Figure4Result struct {
	Dataset string
	// Rank is the normal subspace size chosen by the 3-sigma rule.
	Rank int
	// NormalAxes and AnomalousAxes are the axis indices shown (1-based in
	// the paper's labels; 0-based here).
	NormalAxes, AnomalousAxes []int
	// Projections maps axis index to its projection timeseries u_i.
	Projections map[int][]float64
}

// Figure4 extracts two normal-axis and two anomalous-axis projections.
func Figure4(d *Dataset) (Figure4Result, error) {
	p, err := core.Fit(d.Links)
	if err != nil {
		return Figure4Result{}, fmt.Errorf("experiments: figure 4 on %s: %w", d.Name, err)
	}
	r := core.SeparateAxes(p, core.DefaultSigma)
	res := Figure4Result{
		Dataset:     d.Name,
		Rank:        r,
		NormalAxes:  []int{0, 1},
		Projections: map[int][]float64{},
	}
	m := p.NumComponents()
	a1 := r
	a2 := r + 2
	if a2 >= m {
		a2 = m - 1
	}
	res.AnomalousAxes = []int{a1, a2}
	for _, ax := range append(append([]int{}, res.NormalAxes...), res.AnomalousAxes...) {
		res.Projections[ax] = p.Projections.Col(ax)
	}
	return res, nil
}

// Figure5Result reproduces Figure 5: the squared magnitude of the state
// vector per bin (top) versus the squared magnitude of the residual
// vector (bottom) with the Q-statistic limits, and the bins where true
// anomalies occur.
type Figure5Result struct {
	Dataset  string
	State    []float64
	Residual []float64
	Limit995 float64
	Limit999 float64
	TrueBins []int
}

// Figure5 computes the state/residual timeseries for one dataset.
func Figure5(d *Dataset) (Figure5Result, error) {
	p, err := core.Fit(d.Links)
	if err != nil {
		return Figure5Result{}, err
	}
	model, err := core.Build(p, core.SeparateAxes(p, core.DefaultSigma))
	if err != nil {
		return Figure5Result{}, err
	}
	l995, err := model.QLimit(0.995)
	if err != nil {
		return Figure5Result{}, err
	}
	l999, err := model.QLimit(0.999)
	if err != nil {
		return Figure5Result{}, err
	}
	bins := d.Bins()
	res := Figure5Result{
		Dataset:  d.Name,
		State:    make([]float64, bins),
		Residual: make([]float64, bins),
		Limit995: l995,
		Limit999: l999,
	}
	means := model.Means()
	for b := 0; b < bins; b++ {
		row := d.Links.Row(b)
		res.State[b] = mat.SqNorm(mat.SubVec(row, means))
		res.Residual[b] = model.SPE(row)
	}
	for _, a := range d.TrueAnomalies {
		res.TrueBins = append(res.TrueBins, a.Bin)
	}
	return res, nil
}

// Figure6Result reproduces one panel column of Figure 6: the top-k
// anomalies ranked by a labeler's size estimate, with detection,
// identification and quantification outcomes of the subspace method.
type Figure6Result struct {
	Dataset string
	Labeler string
	Cutoff  float64
	Ranked  eval.RankedDiagnosis
}

// Figure6 ranks the labeler's top-k OD anomalies and diagnoses each from
// link data.
func Figure6(d *Dataset, labeler eval.Labeler, k int) (Figure6Result, error) {
	resid, err := labeler.Residuals(d.OD, d.BinHours())
	if err != nil {
		return Figure6Result{}, fmt.Errorf("experiments: figure 6 labeler on %s: %w", d.Name, err)
	}
	ranked := eval.RankedAnomalies(resid, k)
	diag, err := d.Diagnoser()
	if err != nil {
		return Figure6Result{}, err
	}
	return Figure6Result{
		Dataset: d.Name,
		Labeler: labeler.Name(),
		Cutoff:  d.Cutoff,
		Ranked:  eval.DiagnoseRanked(diag, d.Links, ranked),
	}, nil
}

// InjectionStudy is the full synthetic-injection sweep of Section 6.3 for
// one dataset: spikes of the dataset's large and small sizes inserted in
// every OD flow at every sampled bin of a day. Figures 7, 8, 9 and
// Table 3 are views of this study.
type InjectionStudy struct {
	Dataset   string
	Bins      []int
	Large     eval.SweepResult
	Small     eval.SweepResult
	FlowRates []float64
}

// NewInjectionStudy runs the sweep. binStride samples every binStride-th
// bin of the first day (stride 1 = the paper's full 144-bin day).
func NewInjectionStudy(d *Dataset, binStride int) (InjectionStudy, error) {
	if binStride <= 0 {
		binStride = 1
	}
	diag, err := d.Diagnoser()
	if err != nil {
		return InjectionStudy{}, err
	}
	binsPerDay := int((24 * 60 * 60) / d.BinDuration.Seconds())
	var bins []int
	for b := 0; b < binsPerDay && b < d.Bins(); b += binStride {
		bins = append(bins, b)
	}
	study := InjectionStudy{
		Dataset:   d.Name,
		Bins:      bins,
		FlowRates: eval.MeanFlowRates(d.OD),
	}
	study.Large = eval.InjectionSweep(diag, d.Topo, d.Links, eval.SweepConfig{Size: d.LargeInjection, Bins: bins})
	study.Small = eval.InjectionSweep(diag, d.Topo, d.Links, eval.SweepConfig{Size: d.SmallInjection, Bins: bins})
	return study, nil
}

// Figure7Result reproduces Figure 7: histograms of per-flow detection
// rates for large and small injections.
type Figure7Result struct {
	Dataset   string
	LargeHist *stats.Histogram
	SmallHist *stats.Histogram
	LargeRate float64
	SmallRate float64
}

// Figure7 builds the detection-rate histograms from a study.
func Figure7(study InjectionStudy) Figure7Result {
	lh := stats.NewHistogram(0, 1, 10)
	sh := stats.NewHistogram(0, 1, 10)
	lh.AddAll(study.Large.DetRateByFlow)
	sh.AddAll(study.Small.DetRateByFlow)
	return Figure7Result{
		Dataset:   study.Dataset,
		LargeHist: lh,
		SmallHist: sh,
		LargeRate: study.Large.DetectionRate(),
		SmallRate: study.Small.DetectionRate(),
	}
}

// Figure8Result reproduces Figure 8: the timeseries of detection rates
// (over flows) for large injections across the day.
type Figure8Result struct {
	Dataset string
	Bins    []int
	Rates   []float64
	// MinRate and MaxRate bound the series; the paper's point is that the
	// rate is fairly constant across the day.
	MinRate, MaxRate float64
}

// Figure8 extracts the by-time detection rates from a study.
func Figure8(study InjectionStudy) Figure8Result {
	lo, hi := stats.MinMax(study.Large.DetRateByBin)
	return Figure8Result{
		Dataset: study.Dataset,
		Bins:    study.Bins,
		Rates:   study.Large.DetRateByBin,
		MinRate: lo,
		MaxRate: hi,
	}
}

// Figure9Result reproduces Figure 9: scatter of per-flow detection rate
// against mean OD flow rate for large injections.
type Figure9Result struct {
	Dataset string
	// FlowRates[i] and DetRates[i] are one scatter point.
	FlowRates, DetRates []float64
	// SmallQuartileRate and LargeQuartileRate are the mean detection
	// rates of the smallest 25% and largest 25% of flows; the paper's
	// observation is SmallQuartileRate > LargeQuartileRate.
	SmallQuartileRate, LargeQuartileRate float64
	// TopFlowsRate is the mean detection rate of the five largest flows,
	// where the subspace alignment effect is strongest (the low outliers
	// on the right of the paper's scatter).
	TopFlowsRate float64
}

// Figure9 extracts the scatter from a study.
func Figure9(study InjectionStudy) Figure9Result {
	res := Figure9Result{Dataset: study.Dataset}
	type pt struct{ rate, det float64 }
	var pts []pt
	for i, f := range study.Large.Flows {
		pts = append(pts, pt{study.FlowRates[f], study.Large.DetRateByFlow[i]})
	}
	// Sort by flow rate for quartile means.
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[j].rate < pts[i].rate {
				pts[i], pts[j] = pts[j], pts[i]
			}
		}
	}
	q := len(pts) / 4
	var loSum, hiSum float64
	for _, p := range pts[:q] {
		loSum += p.det
	}
	for _, p := range pts[len(pts)-q:] {
		hiSum += p.det
	}
	if q > 0 {
		res.SmallQuartileRate = loSum / float64(q)
		res.LargeQuartileRate = hiSum / float64(q)
	}
	topN := 5
	if topN > len(pts) {
		topN = len(pts)
	}
	var topSum float64
	for _, p := range pts[len(pts)-topN:] {
		topSum += p.det
	}
	if topN > 0 {
		res.TopFlowsRate = topSum / float64(topN)
	}
	for _, p := range pts {
		res.FlowRates = append(res.FlowRates, p.rate)
		res.DetRates = append(res.DetRates, p.det)
	}
	return res
}

// Figure10Result reproduces Figure 10: the squared residual magnitude per
// bin under three alternate bases for link measurements — the subspace
// method (spatial correlation) versus Fourier filtering and EWMA
// smoothing applied to each link timeseries (temporal correlation).
type Figure10Result struct {
	Dataset  string
	Subspace []float64
	Fourier  []float64
	EWMA     []float64
	TrueBins []int
	// Separation scores: the ratio of the smallest residual at a true
	// anomaly bin to the largest residual at a normal bin. A ratio above
	// 1 means a perfect threshold exists (the paper finds this for the
	// subspace method only).
	SubspaceSeparation, FourierSeparation, EWMASeparation float64
}

// Figure10 computes the three residual timeseries for one dataset.
func Figure10(d *Dataset) (Figure10Result, error) {
	res := Figure10Result{Dataset: d.Name}
	for _, a := range d.TrueAnomalies {
		res.TrueBins = append(res.TrueBins, a.Bin)
	}
	bins, links := d.Links.Dims()

	// Subspace residual.
	p, err := core.Fit(d.Links)
	if err != nil {
		return res, err
	}
	model, err := core.Build(p, core.SeparateAxes(p, core.DefaultSigma))
	if err != nil {
		return res, err
	}
	res.Subspace = make([]float64, bins)
	for b := 0; b < bins; b++ {
		res.Subspace[b] = model.SPE(d.Links.Row(b))
	}

	// Fourier residual: filter each link timeseries, square the
	// per-bin residual vector norm.
	fm := timeseries.NewFourierModel(d.BinHours())
	res.Fourier = make([]float64, bins)
	res.EWMA = make([]float64, bins)
	for l := 0; l < links; l++ {
		col := d.Links.Col(l)
		fit, err := fm.Fit(col)
		if err != nil {
			return res, fmt.Errorf("experiments: figure 10 fourier on link %d: %w", l, err)
		}
		pred := (timeseries.EWMA{Alpha: 0.25}).Forecast(col)
		for b := 0; b < bins; b++ {
			df := col[b] - fit[b]
			res.Fourier[b] += df * df
			de := col[b] - pred[b]
			res.EWMA[b] += de * de
		}
	}
	res.SubspaceSeparation = separation(res.Subspace, res.TrueBins)
	res.FourierSeparation = separation(res.Fourier, res.TrueBins)
	res.EWMASeparation = separation(res.EWMA, res.TrueBins)
	return res, nil
}

// separation returns min(residual at anomaly bins) / max(residual at
// normal bins): above 1 means a clean threshold exists.
func separation(resid []float64, trueBins []int) float64 {
	isTrue := map[int]bool{}
	for _, b := range trueBins {
		isTrue[b] = true
	}
	minAnom, maxNorm := -1.0, 0.0
	for b, v := range resid {
		if isTrue[b] {
			if minAnom < 0 || v < minAnom {
				minAnom = v
			}
		} else if v > maxNorm {
			maxNorm = v
		}
	}
	if maxNorm == 0 || minAnom < 0 {
		return 0
	}
	return minAnom / maxNorm
}
