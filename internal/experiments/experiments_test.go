package experiments

import (
	"math"
	"testing"

	"netanomaly/internal/eval"
)

// The experiments tests assert the paper's qualitative results — who
// wins, by roughly what factor, where crossovers fall — on the fixed
// simulated datasets. They share the package-level dataset cache, so the
// expensive generation happens once per test binary.

func TestDatasetsMatchTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("Table 1 rows = %d", len(rows))
	}
	want := []struct {
		name  string
		pops  int
		links int
	}{
		{"SprintSim-1", 13, 49},
		{"SprintSim-2", 13, 49},
		{"AbileneSim", 11, 41},
	}
	for i, w := range want {
		r := rows[i]
		if r.Name != w.name || r.PoPs != w.pops || r.Links != w.links {
			t.Fatalf("row %d = %+v want %+v", i, r, w)
		}
		if r.Bins != 1008 {
			t.Fatalf("%s bins = %d want 1008", r.Name, r.Bins)
		}
		if r.Bin.Minutes() != 10 {
			t.Fatalf("%s bin duration = %v want 10m", r.Name, r.Bin)
		}
	}
}

func TestDatasetByName(t *testing.T) {
	d, err := DatasetByName("AbileneSim")
	if err != nil || d.Name != "AbileneSim" {
		t.Fatalf("DatasetByName: %v %v", d, err)
	}
	if _, err := DatasetByName("nosuch"); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	d := SprintSim1()
	d2 := buildDataset(specs[0])
	if !equalMat(d.OD, d2.OD) {
		t.Fatal("dataset generation must be deterministic")
	}
}

func equalMat(a, b interface{ At(int, int) float64 }) bool {
	type dims interface{ Dims() (int, int) }
	r1, c1 := a.(dims).Dims()
	r2, c2 := b.(dims).Dims()
	if r1 != r2 || c1 != c2 {
		return false
	}
	for i := 0; i < r1; i++ {
		for j := 0; j < c1; j++ {
			if a.At(i, j) != b.At(i, j) {
				return false
			}
		}
	}
	return true
}

func TestFigure1PicksLongPathAnomaly(t *testing.T) {
	for _, d := range AllDatasets() {
		f1 := Figure1(d)
		if len(f1.LinkSeries) < 2 {
			t.Fatalf("%s: illustration path too short (%d links)", d.Name, len(f1.LinkSeries))
		}
		if len(f1.FlowSeries) != d.Bins() {
			t.Fatalf("%s: flow series length %d", d.Name, len(f1.FlowSeries))
		}
		// The anomaly must be visible in the OD flow at its bin.
		bin := f1.Anomaly.Bin
		if f1.FlowSeries[bin] < f1.Anomaly.Delta {
			t.Fatalf("%s: OD series at anomaly bin %d (%v) below injected %v",
				d.Name, bin, f1.FlowSeries[bin], f1.Anomaly.Delta)
		}
		if len(f1.LinkNames) != len(f1.LinkSeries) {
			t.Fatal("link names and series must align")
		}
	}
}

func TestFigure3LowEffectiveDimensionality(t *testing.T) {
	rows, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Figure 3's claim: the vast majority of variance in 3-5
		// components despite 40+ links.
		if r.Effective90 > 5 {
			t.Fatalf("%s: %d components for 90%% variance (paper: 3-4)", r.Dataset, r.Effective90)
		}
		var sum float64
		for _, f := range r.Fractions {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: fractions sum %v", r.Dataset, sum)
		}
	}
}

func TestFigure4NormalAxesBoundedAnomalousSpiky(t *testing.T) {
	for _, d := range AllDatasets() {
		f4, err := Figure4(d)
		if err != nil {
			t.Fatal(err)
		}
		if f4.Rank < 1 {
			t.Fatalf("%s: rank %d", d.Name, f4.Rank)
		}
		// Normal-axis projections stay within 3 sigma by construction of
		// the separation rule.
		for _, ax := range f4.NormalAxes {
			u := f4.Projections[ax]
			if maxAbsDev(u) > 3.0 {
				t.Fatalf("%s: normal axis %d deviates %v sigma", d.Name, ax, maxAbsDev(u))
			}
		}
		// The first anomalous axis must violate 3 sigma (that is what
		// put it in the anomalous subspace).
		u := f4.Projections[f4.AnomalousAxes[0]]
		if maxAbsDev(u) <= 3.0 {
			t.Fatalf("%s: first anomalous axis within 3 sigma (%v)", d.Name, maxAbsDev(u))
		}
	}
}

func maxAbsDev(u []float64) float64 {
	var mean float64
	for _, v := range u {
		mean += v
	}
	mean /= float64(len(u))
	var varSum float64
	for _, v := range u {
		varSum += (v - mean) * (v - mean)
	}
	std := math.Sqrt(varSum / float64(len(u)-1))
	var mx float64
	for _, v := range u {
		d := math.Abs(v - mean)
		if d > mx {
			mx = d
		}
	}
	return mx / std
}

func TestFigure5ResidualSeparatesAnomalies(t *testing.T) {
	for _, d := range AllDatasets() {
		f5, err := Figure5(d)
		if err != nil {
			t.Fatal(err)
		}
		if f5.Limit999 <= f5.Limit995 {
			t.Fatalf("%s: limits not ordered", d.Name)
		}
		// Every true anomaly bin should exceed the 99.9% limit in the
		// residual while the state vector does not make them stand out:
		// the anomaly bins are not even in the top-|anomalies| of state.
		for _, b := range f5.TrueBins {
			if f5.Residual[b] <= f5.Limit999 {
				t.Fatalf("%s: anomaly at bin %d below residual limit", d.Name, b)
			}
		}
		// The state vector admits no clean threshold: the smallest state
		// magnitude at an anomaly bin is buried below the largest normal
		// magnitude (the paper: "quite difficult to see the effects of
		// anomalies on the traffic volume as a whole"). The residual
		// does admit one (checked above via the Q-limit).
		isTrue := map[int]bool{}
		for _, b := range f5.TrueBins {
			isTrue[b] = true
		}
		minAnomState := math.Inf(1)
		maxNormState := 0.0
		for b, v := range f5.State {
			if isTrue[b] {
				if v < minAnomState {
					minAnomState = v
				}
			} else if v > maxNormState {
				maxNormState = v
			}
		}
		if minAnomState > maxNormState {
			t.Fatalf("%s: state vector separates anomalies cleanly — the detection problem would be trivial", d.Name)
		}
	}
}

func TestFigure6RankOrderShape(t *testing.T) {
	for _, d := range AllDatasets() {
		f6, err := Figure6(d, eval.FourierLabeler{}, 40)
		if err != nil {
			t.Fatal(err)
		}
		if len(f6.Ranked.Anomalies) != 40 {
			t.Fatalf("%s: ranked %d", d.Name, len(f6.Ranked.Anomalies))
		}
		var above, detected, identified, belowDetected int
		for i, a := range f6.Ranked.Anomalies {
			if a.Size >= f6.Cutoff {
				above++
				if f6.Ranked.Detected[i] {
					detected++
				}
				if f6.Ranked.Identified[i] {
					identified++
				}
			} else if f6.Ranked.Detected[i] {
				belowDetected++
			}
		}
		if above == 0 {
			t.Fatalf("%s: no anomalies above cutoff", d.Name)
		}
		// Above the knee, nearly everything is detected and identified.
		if float64(detected)/float64(above) < 0.8 {
			t.Fatalf("%s: only %d/%d above-cutoff anomalies detected", d.Name, detected, above)
		}
		if detected > 0 && float64(identified)/float64(detected) < 0.8 {
			t.Fatalf("%s: only %d/%d detected anomalies identified", d.Name, identified, detected)
		}
		// Below the knee, detections are rare (the knee is real).
		if float64(belowDetected) > 0.25*float64(40-above) {
			t.Fatalf("%s: %d/%d below-cutoff entries detected", d.Name, belowDetected, 40-above)
		}
	}
}

func TestTable2PaperShape(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Table 2 rows = %d want 6", len(rows))
	}
	for _, r := range rows {
		if r.Result.DetectionRate() < 0.75 {
			t.Fatalf("%s/%s: detection rate %.2f below the paper's band",
				r.Validation, r.Dataset, r.Result.DetectionRate())
		}
		if r.Result.FalseAlarmRate() > 0.015 {
			t.Fatalf("%s/%s: false alarm rate %.4f above the paper's band",
				r.Validation, r.Dataset, r.Result.FalseAlarmRate())
		}
		if r.Result.IdentificationRate() < 0.6 {
			t.Fatalf("%s/%s: identification rate %.2f too low",
				r.Validation, r.Dataset, r.Result.IdentificationRate())
		}
		// Quantification within the operationally-sufficient band the
		// paper cites (its own numbers are 15-33%).
		if r.Result.QuantErr > 0.35 {
			t.Fatalf("%s/%s: quantification error %.2f", r.Validation, r.Dataset, r.Result.QuantErr)
		}
		if r.String() == "" {
			t.Fatal("row String empty")
		}
	}
}

// sharedStudies caches the injection studies across Figure 7/8/9 and
// Table 3 tests.
var sharedStudies []InjectionStudy

func studies(t *testing.T) []InjectionStudy {
	t.Helper()
	if sharedStudies != nil {
		return sharedStudies
	}
	for _, d := range AllDatasets() {
		s, err := NewInjectionStudy(d, 12)
		if err != nil {
			t.Fatal(err)
		}
		sharedStudies = append(sharedStudies, s)
	}
	return sharedStudies
}

func TestTable3PaperShape(t *testing.T) {
	rows := Table3(studies(t))
	if len(rows) != 6 {
		t.Fatalf("Table 3 rows = %d", len(rows))
	}
	for _, r := range rows[:3] { // large injections
		if r.Detection < 0.85 {
			t.Fatalf("%s large: detection %.2f below paper's ~90%%", r.Network, r.Detection)
		}
		if r.Identification < 0.65 {
			t.Fatalf("%s large: identification %.2f below paper's ~69-85%%", r.Network, r.Identification)
		}
		if r.QuantErr > 0.3 {
			t.Fatalf("%s large: quantification error %.2f above paper's ~21%%", r.Network, r.QuantErr)
		}
	}
	for _, r := range rows[3:] { // small injections
		if r.Detection > 0.35 {
			t.Fatalf("%s small: detection %.2f — small spikes must rarely trigger", r.Network, r.Detection)
		}
	}
}

func TestFigure7HistogramShape(t *testing.T) {
	for _, s := range studies(t) {
		f7 := Figure7(s)
		// Large-injection histogram mass concentrates in the top bins;
		// small-injection mass in the bottom bins.
		lf := f7.LargeHist.Fractions()
		sf := f7.SmallHist.Fractions()
		if lf[len(lf)-1]+lf[len(lf)-2] < 0.6 {
			t.Fatalf("%s: large-injection histogram not top-heavy: %v", s.Dataset, lf)
		}
		if sf[0]+sf[1]+sf[2] < 0.5 {
			t.Fatalf("%s: small-injection histogram not bottom-heavy: %v", s.Dataset, sf)
		}
		if f7.LargeRate <= f7.SmallRate {
			t.Fatalf("%s: large rate %.2f <= small rate %.2f", s.Dataset, f7.LargeRate, f7.SmallRate)
		}
	}
}

func TestFigure8RatesStableAcrossDay(t *testing.T) {
	for _, s := range studies(t) {
		f8 := Figure8(s)
		if len(f8.Rates) != len(f8.Bins) {
			t.Fatal("rate/bin length mismatch")
		}
		// The paper's point: detection is fairly constant over the day.
		if f8.MaxRate-f8.MinRate > 0.35 {
			t.Fatalf("%s: detection rate swings %.2f-%.2f across the day",
				s.Dataset, f8.MinRate, f8.MaxRate)
		}
		if f8.MinRate < 0.6 {
			t.Fatalf("%s: min rate %.2f too low for large injections", s.Dataset, f8.MinRate)
		}
	}
}

func TestFigure9LargeFlowsHarder(t *testing.T) {
	for _, s := range studies(t) {
		f9 := Figure9(s)
		if len(f9.FlowRates) != len(f9.DetRates) {
			t.Fatal("scatter length mismatch")
		}
		// The paper's effect: the largest flows detect worse than the
		// smallest.
		if f9.TopFlowsRate >= f9.SmallQuartileRate {
			t.Fatalf("%s: top flows rate %.2f >= small-flow rate %.2f",
				s.Dataset, f9.TopFlowsRate, f9.SmallQuartileRate)
		}
	}
}

func TestFigure10SubspaceBeatsTemporal(t *testing.T) {
	for _, d := range AllDatasets() {
		f10, err := Figure10(d)
		if err != nil {
			t.Fatal(err)
		}
		// The subspace separation must admit a clean threshold
		// (ratio > 1) and beat both temporal filters.
		if f10.SubspaceSeparation <= 1 {
			t.Fatalf("%s: subspace separation %.2f <= 1", d.Name, f10.SubspaceSeparation)
		}
		if f10.SubspaceSeparation <= f10.FourierSeparation {
			t.Fatalf("%s: subspace (%.2f) does not beat Fourier (%.2f)",
				d.Name, f10.SubspaceSeparation, f10.FourierSeparation)
		}
		if f10.SubspaceSeparation <= f10.EWMASeparation {
			t.Fatalf("%s: subspace (%.2f) does not beat EWMA (%.2f)",
				d.Name, f10.SubspaceSeparation, f10.EWMASeparation)
		}
	}
}

func TestAblationSubspaceRank(t *testing.T) {
	d := SprintSim1()
	rows, err := AblationSubspaceRank(d, []int{2, 5, 10, 20}, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Very large ranks absorb anomaly energy into the normal subspace:
	// detection at rank 20 must not beat detection at the 3-sigma rank.
	var auto, big RankAblationRow
	for _, r := range rows {
		if r.Rank == 5 {
			auto = r
		}
		if r.Rank == 20 {
			big = r
		}
	}
	if big.Detection > auto.Detection {
		t.Fatalf("rank 20 detection %.2f beats rank 5 %.2f", big.Detection, auto.Detection)
	}
}

func TestAblationConfidence(t *testing.T) {
	rows, err := AblationConfidence(SprintSim1(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Limit >= rows[1].Limit {
		t.Fatal("99.9% limit must exceed 99.5%")
	}
	if rows[0].FalseAlarms < rows[1].FalseAlarms {
		t.Fatal("lower confidence cannot have fewer false alarms")
	}
	if rows[1].Detection < 0.8 {
		t.Fatalf("99.9%% detection of true anomalies = %.2f", rows[1].Detection)
	}
}

func TestAblationEigVsSVD(t *testing.T) {
	res, err := AblationEigVsSVD(SprintSim1())
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxVarianceRelDiff > 1e-6 {
		t.Fatalf("solver variance disagreement %v", res.MaxVarianceRelDiff)
	}
	if res.ProjectorDiff > 1e-6 {
		t.Fatalf("solver projector disagreement %v", res.ProjectorDiff)
	}
}

func TestAblationIdentification(t *testing.T) {
	res, err := AblationIdentification(SprintSim1())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials == 0 || res.Agreements != res.Trials {
		t.Fatalf("closed form disagrees with Equation (1): %d/%d", res.Agreements, res.Trials)
	}
	if res.MaxBytesRel > 1e-9 {
		t.Fatalf("byte estimates diverge: %v", res.MaxBytesRel)
	}
}

func TestRenderHelpers(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 2, 1, 0, 9}, 8)
	if len([]rune(s)) != 8 {
		t.Fatalf("sparkline width %d", len([]rune(s)))
	}
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty series must render empty")
	}
	if got := HBar(0.5, 10); got != "#####....." {
		t.Fatalf("HBar = %q", got)
	}
	if got := HBar(-1, 4); got != "...." {
		t.Fatalf("HBar clamp = %q", got)
	}
	ml := MarkLine(100, []int{0, 50, 99, -5, 200}, 10)
	if len(ml) != 10 || ml[0] != '^' || ml[5] != '^' || ml[9] != '^' {
		t.Fatalf("MarkLine = %q", ml)
	}
}
