package experiments

import (
	"fmt"

	"netanomaly/internal/core"
	"netanomaly/internal/eval"
	"netanomaly/internal/mat"
)

// RankAblationRow records detection and false-alarm behaviour for one
// forced normal-subspace rank — the sensitivity study behind the paper's
// 3-sigma separation rule (DESIGN.md section 4).
type RankAblationRow struct {
	Rank        int
	ChosenBy3σ  bool
	FalseAlarms int
	NormalBins  int
	// Detection is the rate for cutoff-sized injections swept over a day.
	Detection float64
}

// AblationSubspaceRank sweeps the normal subspace rank. binStride
// subsamples the injection day as in NewInjectionStudy.
func AblationSubspaceRank(d *Dataset, ranks []int, binStride int) ([]RankAblationRow, error) {
	p, err := core.Fit(d.Links)
	if err != nil {
		return nil, err
	}
	auto := core.SeparateAxes(p, core.DefaultSigma)
	truthBins := map[int]bool{}
	for _, a := range d.TrueAnomalies {
		truthBins[a.Bin] = true
	}
	binsPerDay := int((24 * 60 * 60) / d.BinDuration.Seconds())
	var sweepBins []int
	for b := 0; b < binsPerDay && b < d.Bins(); b += binStride {
		sweepBins = append(sweepBins, b)
	}
	var out []RankAblationRow
	for _, r := range ranks {
		diag, err := core.NewDiagnoser(d.Links, d.Topo.RoutingMatrix(), core.Options{Rank: r})
		if err != nil {
			return nil, fmt.Errorf("experiments: rank ablation r=%d: %w", r, err)
		}
		row := RankAblationRow{Rank: r, ChosenBy3σ: r == auto}
		for b := 0; b < d.Bins(); b++ {
			if truthBins[b] {
				continue
			}
			row.NormalBins++
			if det := diag.Detector().Detect(d.Links.Row(b)); det.Alarm {
				row.FalseAlarms++
			}
		}
		sweep := eval.InjectionSweep(diag, d.Topo, d.Links, eval.SweepConfig{
			Size: d.Cutoff, Bins: sweepBins,
		})
		row.Detection = sweep.DetectionRate()
		out = append(out, row)
	}
	return out, nil
}

// ConfidenceAblationRow compares operating points of the Q-statistic.
type ConfidenceAblationRow struct {
	Confidence  float64
	Limit       float64
	FalseAlarms int
	NormalBins  int
	Detection   float64 // of the dataset's true anomalies
}

// AblationConfidence evaluates the paper's two confidence levels (99.5%
// and 99.9%) plus any extras given.
func AblationConfidence(d *Dataset, confidences []float64) ([]ConfidenceAblationRow, error) {
	if confidences == nil {
		confidences = []float64{0.995, 0.999}
	}
	p, err := core.Fit(d.Links)
	if err != nil {
		return nil, err
	}
	model, err := core.Build(p, core.SeparateAxes(p, core.DefaultSigma))
	if err != nil {
		return nil, err
	}
	truthBins := map[int]bool{}
	for _, a := range d.TrueAnomalies {
		truthBins[a.Bin] = true
	}
	var out []ConfidenceAblationRow
	for _, c := range confidences {
		det, err := core.NewDetector(model, c)
		if err != nil {
			return nil, err
		}
		row := ConfidenceAblationRow{Confidence: c, Limit: det.Limit()}
		var detected int
		for b := 0; b < d.Bins(); b++ {
			alarm := det.Detect(d.Links.Row(b)).Alarm
			if truthBins[b] {
				if alarm {
					detected++
				}
			} else {
				row.NormalBins++
				if alarm {
					row.FalseAlarms++
				}
			}
		}
		if len(truthBins) > 0 {
			row.Detection = float64(detected) / float64(len(truthBins))
		}
		out = append(out, row)
	}
	return out, nil
}

// SolverAblation compares the SVD-based PCA against the covariance
// eigendecomposition (Section 7.1 notes their equivalence): agreement of
// captured variances and of the projection operator for the chosen rank.
type SolverAblation struct {
	Dataset string
	Rank    int
	// MaxVarianceRelDiff is the largest relative difference between
	// per-axis variances of the two solvers.
	MaxVarianceRelDiff float64
	// ProjectorDiff is ||C_svd - C_eig||_F for the normal projector.
	ProjectorDiff float64
}

// AblationEigVsSVD runs both solvers on a dataset.
func AblationEigVsSVD(d *Dataset) (SolverAblation, error) {
	pSVD, err := core.Fit(d.Links)
	if err != nil {
		return SolverAblation{}, err
	}
	pEig, err := core.FitEig(d.Links)
	if err != nil {
		return SolverAblation{}, err
	}
	r := core.SeparateAxes(pSVD, core.DefaultSigma)
	mSVD, err := core.Build(pSVD, r)
	if err != nil {
		return SolverAblation{}, err
	}
	mEig, err := core.Build(pEig, r)
	if err != nil {
		return SolverAblation{}, err
	}
	res := SolverAblation{Dataset: d.Name, Rank: r}
	for i, v := range pSVD.Variances {
		if v <= 0 {
			continue
		}
		rel := (v - pEig.Variances[i]) / v
		if rel < 0 {
			rel = -rel
		}
		if rel > res.MaxVarianceRelDiff {
			res.MaxVarianceRelDiff = rel
		}
	}
	res.ProjectorDiff = mat.Sub(mSVD.ResidualOperator(), mEig.ResidualOperator()).Frobenius()
	return res, nil
}

// IdentAblation verifies the closed-form identification scan against the
// paper's literal Equation (1) recomputation on anomalous bins.
type IdentAblation struct {
	Dataset     string
	Trials      int
	Agreements  int
	MaxBytesRel float64
}

// AblationIdentification compares the two identification implementations
// on every true-anomaly bin of the dataset.
func AblationIdentification(d *Dataset) (IdentAblation, error) {
	diag, err := d.Diagnoser()
	if err != nil {
		return IdentAblation{}, err
	}
	id := diag.Identifier()
	res := IdentAblation{Dataset: d.Name}
	for _, a := range d.TrueAnomalies {
		y := d.Links.Row(a.Bin)
		fast := id.Identify(y)
		naive := id.IdentifyNaive(y)
		res.Trials++
		if fast.Flow == naive.Flow {
			res.Agreements++
			rel := 0.0
			if naive.Bytes != 0 {
				rel = (fast.Bytes - naive.Bytes) / naive.Bytes
				if rel < 0 {
					rel = -rel
				}
			}
			if rel > res.MaxBytesRel {
				res.MaxBytesRel = rel
			}
		}
	}
	return res, nil
}
