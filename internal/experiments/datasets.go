// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 3-7) on simulated counterparts of its datasets.
// Each experiment is a pure function of the Dataset values defined here,
// so results are reproducible byte for byte.
package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
	"netanomaly/internal/traffic"
)

// Dataset is a simulated counterpart of one of the paper's Table 1 rows:
// a topology, a week of OD-flow traffic with injected "actual" volume
// anomalies, and the derived link loads the subspace method consumes.
type Dataset struct {
	// Name identifies the dataset in reports ("SprintSim-1", ...).
	Name string
	// Topo is the network.
	Topo *topology.Topology
	// OD is the bins x flows OD traffic matrix, anomalies included.
	OD *mat.Dense
	// Links is the bins x links measurement matrix Y = X A^T.
	Links *mat.Dense
	// TrueAnomalies are the injected ground-truth volume anomalies.
	TrueAnomalies []traffic.Anomaly
	// Cutoff is the anomaly-size knee for this dataset (the paper: 2e7
	// bytes for Sprint, 8e7 for Abilene).
	Cutoff float64
	// LargeInjection and SmallInjection are the Table 3 spike sizes.
	LargeInjection, SmallInjection float64
	// BinDuration is the measurement bin length.
	BinDuration time.Duration
	// Period is the label reported in Table 1.
	Period string
}

// BinHours returns the bin duration in hours.
func (d *Dataset) BinHours() float64 { return d.BinDuration.Hours() }

// Bins returns the number of time bins.
func (d *Dataset) Bins() int { r, _ := d.OD.Dims(); return r }

// Diagnoser fits the full subspace pipeline on the dataset's link loads
// with the paper's defaults (3-sigma separation, 99.9% confidence).
func (d *Dataset) Diagnoser() (*core.Diagnoser, error) {
	return core.NewDiagnoser(d.Links, d.Topo.RoutingMatrix(), core.Options{})
}

// datasetSpec fixes every parameter of a simulated dataset.
type datasetSpec struct {
	name         string
	topo         func() *topology.Topology
	seed         int64
	totalRate    float64
	weightSigma  float64 // 0 keeps the generator default
	noiseSigma   float64 // 0 keeps the generator default
	cutoff       float64
	large, small float64
	numAnomalies int
	minSize      float64
	maxSize      float64
	anomalySeed  int64
	period       string
}

// The three datasets mirror Table 1. Byte scales follow the paper: the
// Sprint knee is 2e7 bytes per 10-minute bin with 3e7 "large" and 1.5e7
// "small" injections; Abilene runs at a higher traffic scale with an 8e7
// knee, 1.2e8 large and 5e7 small. Seeds are fixed and were validated to
// land the 3-sigma separation in the regime the paper reports (all
// significant-variance axes in the normal subspace, sub-1% false alarms).
var specs = []datasetSpec{
	{
		name: "SprintSim-1", topo: topology.SprintEurope, seed: 1101,
		totalRate: 7.2e8, cutoff: 2e7, large: 3e7, small: 8e6,
		numAnomalies: 9, minSize: 2.2e7, maxSize: 4.4e7, anomalySeed: 9101,
		period: "sim week 1",
	},
	{
		name: "SprintSim-2", topo: topology.SprintEurope, seed: 1202,
		totalRate: 7.2e8, cutoff: 2e7, large: 3e7, small: 8e6,
		numAnomalies: 11, minSize: 2.05e7, maxSize: 4.2e7, anomalySeed: 9202,
		period: "sim week 2",
	},
	{
		name: "AbileneSim", topo: topology.Abilene, seed: 1303,
		totalRate: 3e9, weightSigma: 0.7, cutoff: 8e7, large: 1.2e8, small: 3.5e7,
		numAnomalies: 6, minSize: 8.8e7, maxSize: 2.4e8, anomalySeed: 9303,
		period: "sim week 3",
	},
}

func buildDataset(spec datasetSpec) *Dataset {
	topo := spec.topo()
	cfg := traffic.DefaultConfig(spec.seed)
	cfg.TotalMeanRate = spec.totalRate
	if spec.weightSigma > 0 {
		cfg.WeightSigma = spec.weightSigma
	}
	if spec.noiseSigma > 0 {
		cfg.NoiseSigma = spec.noiseSigma
	}
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: dataset %s: %v", spec.name, err))
	}
	x := gen.Generate()
	// Ground-truth anomalies: sparse spikes at unique random bins, on
	// flows large enough to carry them (an anomaly is a traffic surge
	// through an existing flow).
	rng := rand.New(rand.NewSource(spec.anomalySeed))
	bins := cfg.Bins
	binPerm := rng.Perm(bins - 2)
	anomalies := make([]traffic.Anomaly, spec.numAnomalies)
	for i := range anomalies {
		anomalies[i] = traffic.Anomaly{
			Flow:  rng.Intn(topo.NumFlows()),
			Bin:   binPerm[i] + 1,
			Delta: spec.minSize + rng.Float64()*(spec.maxSize-spec.minSize),
		}
	}
	traffic.Inject(x, anomalies)
	return &Dataset{
		Name:           spec.name,
		Topo:           topo,
		OD:             x,
		Links:          traffic.LinkLoads(topo, x),
		TrueAnomalies:  anomalies,
		Cutoff:         spec.cutoff,
		LargeInjection: spec.large,
		SmallInjection: spec.small,
		BinDuration:    cfg.BinDuration,
		Period:         spec.period,
	}
}

var (
	datasetOnce  sync.Once
	datasetCache []*Dataset
)

// AllDatasets returns the three simulated datasets of Table 1, building
// them on first use and caching thereafter (they are immutable by
// convention; do not modify the returned matrices).
func AllDatasets() []*Dataset {
	datasetOnce.Do(func() {
		datasetCache = make([]*Dataset, len(specs))
		for i, s := range specs {
			datasetCache[i] = buildDataset(s)
		}
	})
	return datasetCache
}

// DatasetByName returns the named dataset.
func DatasetByName(name string) (*Dataset, error) {
	for _, d := range AllDatasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown dataset %q", name)
}

// SprintSim1 returns the first simulated Sprint week.
func SprintSim1() *Dataset { return AllDatasets()[0] }

// SprintSim2 returns the second simulated Sprint week.
func SprintSim2() *Dataset { return AllDatasets()[1] }

// AbileneSim returns the simulated Abilene week.
func AbileneSim() *Dataset { return AllDatasets()[2] }
