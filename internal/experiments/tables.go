package experiments

import (
	"fmt"
	"time"

	"netanomaly/internal/eval"
)

// Table1Row is one row of Table 1: the dataset summary.
type Table1Row struct {
	Name   string
	PoPs   int
	Links  int
	Bin    time.Duration
	Bins   int
	Period string
}

// Table1 summarizes the simulated datasets.
func Table1() []Table1Row {
	var out []Table1Row
	for _, d := range AllDatasets() {
		out = append(out, Table1Row{
			Name:   d.Name,
			PoPs:   d.Topo.NumPoPs(),
			Links:  d.Topo.NumLinks(),
			Bin:    d.BinDuration,
			Bins:   d.Bins(),
			Period: d.Period,
		})
	}
	return out
}

// Table2Row is one row of Table 2: diagnosis results against the actual
// (labeled) volume anomalies at the 99.9% confidence level.
type Table2Row struct {
	Validation string
	Dataset    string
	Cutoff     float64
	Result     eval.ActualResult
}

// String renders the row in the paper's format.
func (r Table2Row) String() string {
	return fmt.Sprintf("%-8s %-12s %.1e  %d/%d  %d/%d  %d/%d  %.1f%%",
		r.Validation, r.Dataset, r.Cutoff,
		r.Result.Detected, r.Result.TrueAnomalies,
		r.Result.FalseAlarms, r.Result.NormalBins,
		r.Result.Identified, r.Result.IdentTrials,
		100*r.Result.QuantErr)
}

// Table2 evaluates the subspace method against both labelers on every
// dataset: the labeler runs on OD flows, its above-cutoff spikes become
// the "true" anomaly set, and the subspace diagnosis of the link data is
// scored against them (Section 6.2).
func Table2() ([]Table2Row, error) {
	labelers := []eval.Labeler{eval.FourierLabeler{}, eval.EWMALabeler{Alpha: 0.25}}
	var out []Table2Row
	for _, labeler := range labelers {
		for _, d := range AllDatasets() {
			resid, err := labeler.Residuals(d.OD, d.BinHours())
			if err != nil {
				return nil, fmt.Errorf("experiments: table 2 %s on %s: %w", labeler.Name(), d.Name, err)
			}
			ranked := eval.RankedAnomalies(resid, 40)
			truths := eval.AboveCutoff(ranked, d.Cutoff)
			diag, err := d.Diagnoser()
			if err != nil {
				return nil, err
			}
			out = append(out, Table2Row{
				Validation: labeler.Name(),
				Dataset:    d.Name,
				Cutoff:     d.Cutoff,
				Result:     eval.EvaluateActual(diag, d.Links, truths),
			})
		}
	}
	return out, nil
}

// Table3Row is one row of Table 3: synthetic injection results.
type Table3Row struct {
	Network        string
	Injection      string
	Size           float64
	Detection      float64
	Identification float64
	QuantErr       float64
}

// String renders the row in the paper's format.
func (r Table3Row) String() string {
	return fmt.Sprintf("%-12s %-6s (%.1e)  %3.0f%%  %3.0f%%  %3.0f%%",
		r.Network, r.Injection, r.Size,
		100*r.Detection, 100*r.Identification, 100*r.QuantErr)
}

// Table3 summarizes injection studies in the paper's layout: large
// injections first (diagnosis ability), then small ones (false-anomaly
// avoidance).
func Table3(studies []InjectionStudy) []Table3Row {
	var out []Table3Row
	for _, s := range studies {
		out = append(out, Table3Row{
			Network:        s.Dataset,
			Injection:      "Large",
			Size:           s.Large.Size,
			Detection:      s.Large.DetectionRate(),
			Identification: s.Large.IdentificationRate(),
			QuantErr:       s.Large.QuantErr,
		})
	}
	for _, s := range studies {
		out = append(out, Table3Row{
			Network:        s.Dataset,
			Injection:      "Small",
			Size:           s.Small.Size,
			Detection:      s.Small.DetectionRate(),
			Identification: s.Small.IdentificationRate(),
			QuantErr:       s.Small.QuantErr,
		})
	}
	return out
}
