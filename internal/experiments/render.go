package experiments

import (
	"strings"
)

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as a fixed-width unicode sparkline,
// downsampling by max within each cell so that single-bin spikes stay
// visible — essential for anomaly timeseries.
func Sparkline(series []float64, width int) string {
	if len(series) == 0 || width <= 0 {
		return ""
	}
	if width > len(series) {
		width = len(series)
	}
	cells := make([]float64, width)
	for i := range cells {
		lo := i * len(series) / width
		hi := (i + 1) * len(series) / width
		if hi <= lo {
			hi = lo + 1
		}
		mx := series[lo]
		for _, v := range series[lo:hi] {
			if v > mx {
				mx = v
			}
		}
		cells[i] = mx
	}
	min, max := cells[0], cells[0]
	for _, v := range cells {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range cells {
		idx := 0
		if max > min {
			idx = int(float64(len(sparkLevels)-1) * (v - min) / (max - min))
		}
		sb.WriteRune(sparkLevels[idx])
	}
	return sb.String()
}

// HBar renders a fraction in [0,1] as a horizontal bar of the given width.
func HBar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// MarkLine renders a width-sized line with '^' at the cells containing
// the marked indices of a series of length n — used to show where true
// anomalies sit under a sparkline.
func MarkLine(n int, marks []int, width int) string {
	if n <= 0 || width <= 0 {
		return ""
	}
	if width > n {
		width = n
	}
	cells := make([]byte, width)
	for i := range cells {
		cells[i] = ' '
	}
	for _, m := range marks {
		if m < 0 || m >= n {
			continue
		}
		cells[m*width/n] = '^'
	}
	return string(cells)
}
