package core

import (
	"testing"

	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
	"netanomaly/internal/traffic"
)

// streamDataset splits a generated trace into a seed history and a
// continuation stream with spikes injected at the given stream offsets
// (flow 9, 9e7 bytes — comfortably detectable on Abilene).
func streamDataset(t *testing.T, seed int64, historyBins, streamBins int, spikes []int) (*topology.Topology, *mat.Dense, *mat.Dense, int) {
	t.Helper()
	topo := topology.Abilene()
	cfg := traffic.DefaultConfig(seed)
	cfg.Bins = historyBins + streamBins
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := gen.Generate()
	const flow = 9
	for _, s := range spikes {
		x.Set(historyBins+s, flow, x.At(historyBins+s, flow)+9e7)
	}
	y := traffic.LinkLoads(topo, x)
	links := topo.NumLinks()
	history := mat.Zeros(historyBins, links)
	for b := 0; b < historyBins; b++ {
		history.SetRow(b, y.RowView(b))
	}
	stream := mat.Zeros(streamBins, links)
	for b := 0; b < streamBins; b++ {
		stream.SetRow(b, y.RowView(historyBins+b))
	}
	return topo, history, stream, flow
}

func alarmSeqs(alarms []Alarm) map[int]bool {
	out := make(map[int]bool, len(alarms))
	for _, a := range alarms {
		out[a.Seq] = true
	}
	return out
}

// TestIncrementalAgreesWithOnline is the cross-backend agreement check:
// with lambda = 1, the same seed history, a full-history window on the
// subspace backend, and synchronized explicit refits, the incremental
// detector must flag exactly the bins the windowed OnlineDetector flags
// on the same trace — the tracked-covariance eigensolve and the window
// SVD are the same model up to round-off.
func TestIncrementalAgreesWithOnline(t *testing.T) {
	const historyBins, streamBins = 1008, 288
	topo, history, stream, flow := streamDataset(t, 60, historyBins, streamBins, []int{40, 150, 260})
	routing := topo.RoutingMatrix()

	online, err := NewOnlineDetector(history, routing, OnlineConfig{Window: historyBins + streamBins})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncrementalDetector(history, routing, IncrementalConfig{Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := inc.Stats().Rank, online.Stats().Rank; got != want {
		t.Fatalf("seed ranks differ: incremental %d, online %d", got, want)
	}

	var onlineAlarms, incAlarms []Alarm
	half := streamBins / 2
	for _, span := range [][2]int{{0, half}, {half, streamBins}} {
		chunk := mat.NewDense(span[1]-span[0], stream.Cols(), stream.RawData()[span[0]*stream.Cols():span[1]*stream.Cols()])
		oa, err := online.ProcessBatch(chunk)
		if err != nil {
			t.Fatal(err)
		}
		ia, err := inc.ProcessBatch(chunk)
		if err != nil {
			t.Fatal(err)
		}
		onlineAlarms = append(onlineAlarms, oa...)
		incAlarms = append(incAlarms, ia...)
		// Refit both synchronously at the same point so the models stay
		// in lockstep (background refits would swap at racy times).
		if err := online.Refit(); err != nil {
			t.Fatal(err)
		}
		if err := inc.Refit(); err != nil {
			t.Fatal(err)
		}
	}

	got, want := alarmSeqs(incAlarms), alarmSeqs(onlineAlarms)
	if len(got) != len(want) {
		t.Fatalf("flagged bins differ: incremental %v, online %v", got, want)
	}
	for seq := range want {
		if !got[seq] {
			t.Fatalf("incremental missed bin %d flagged by online; incremental %v, online %v", seq, got, want)
		}
	}
	for _, spike := range []int{40, 150, 260} {
		if !got[spike] {
			t.Fatalf("injected spike at %d not flagged; flagged %v", spike, got)
		}
	}
	for _, a := range incAlarms {
		if a.Seq == 40 && a.Flow != flow {
			t.Fatalf("spike identified flow %d want %d", a.Flow, flow)
		}
	}
}

func TestIncrementalBackgroundRebuildAndDriftGate(t *testing.T) {
	const historyBins, streamBins = 504, 240
	topo, history, stream, _ := streamDataset(t, 61, historyBins, streamBins, nil)
	routing := topo.RoutingMatrix()

	// DriftTol 0: every interval swaps a rebuilt model in.
	always, err := NewIncrementalDetector(history, routing, IncrementalConfig{Lambda: 1, RefitEvery: 60})
	if err != nil {
		t.Fatal(err)
	}
	// A huge DriftTol: candidates are solved but never swapped — the
	// traffic is stationary, so the subspace barely moves.
	gated, err := NewIncrementalDetector(history, routing, IncrementalConfig{Lambda: 1, RefitEvery: 60, DriftTol: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*IncrementalDetector{always, gated} {
		for b := 0; b < streamBins; b += 60 {
			chunk := mat.NewDense(60, stream.Cols(), stream.RawData()[b*stream.Cols():(b+60)*stream.Cols()])
			if _, err := d.ProcessBatch(chunk); err != nil {
				t.Fatal(err)
			}
			d.WaitRefits()
		}
		if err := d.TakeRefitError(); err != nil {
			t.Fatal(err)
		}
		if got := d.Stats().Processed; got != streamBins {
			t.Fatalf("processed %d want %d", got, streamBins)
		}
	}
	if always.Stats().Refits == 0 {
		t.Fatal("DriftTol=0 detector never swapped a rebuilt model")
	}
	if always.SkippedRebuilds() != 0 {
		t.Fatalf("DriftTol=0 detector skipped %d rebuilds", always.SkippedRebuilds())
	}
	if gated.Stats().Refits != 0 {
		t.Fatalf("gated detector swapped %d models despite stationary traffic", gated.Stats().Refits)
	}
	if gated.SkippedRebuilds() == 0 {
		t.Fatal("gated detector never exercised the drift gate")
	}
}

func TestIncrementalSeedAndValidation(t *testing.T) {
	_, history, stream, _ := streamDataset(t, 62, 504, 60, nil)
	routing := topology.Abilene().RoutingMatrix()
	d, err := NewIncrementalDetector(history, routing, IncrementalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProcessBatch(mat.Zeros(4, 3)); err == nil {
		t.Fatal("mis-sized batch accepted")
	}
	if _, err := d.ProcessBatch(stream); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	if err := d.Seed(mat.Zeros(10, 3)); err == nil {
		t.Fatal("mis-sized seed accepted")
	}
	if err := d.Seed(history); err != nil {
		t.Fatal(err)
	}
	after := d.Stats()
	if after.Processed != before.Processed {
		t.Fatalf("Seed reset the processed counter: %d -> %d", before.Processed, after.Processed)
	}
	if after.Refits != before.Refits+1 {
		t.Fatalf("Seed did not count as a refit: %d -> %d", before.Refits, after.Refits)
	}
}

func TestCovTrackerUpdateMasked(t *testing.T) {
	_, _, y := testDataset(t, 63, 64)
	_, dim := y.Dims()
	skip := make([]bool, 64)
	for b := 0; b < 64; b += 5 {
		skip[b] = true
	}
	masked, _ := NewCovTracker(dim, 1)
	masked.UpdateMasked(y, skip)
	manual, _ := NewCovTracker(dim, 1)
	for b := 0; b < 64; b++ {
		if !skip[b] {
			manual.Update(y.RowView(b))
		}
	}
	if masked.Count() != manual.Count() {
		t.Fatalf("masked count %d want %d", masked.Count(), manual.Count())
	}
	if !mat.EqualApprox(masked.Covariance(), manual.Covariance(), 1e-12) {
		t.Fatal("masked covariance diverges from row-by-row exclusion")
	}
}

// TestCovTrackerUpdateAllAllocFree pins the satellite requirement: a
// whole-batch absorb must not allocate per bin (all scratch lives on
// the tracker).
func TestCovTrackerUpdateAllAllocFree(t *testing.T) {
	_, _, y := testDataset(t, 64, 128)
	_, dim := y.Dims()
	tr, _ := NewCovTracker(dim, 0.999)
	tr.UpdateAll(y) // warm up
	allocs := testing.AllocsPerRun(5, func() {
		tr.UpdateAll(y)
	})
	if allocs > 0 {
		t.Fatalf("UpdateAll allocates %.1f times per batch", allocs)
	}
}
