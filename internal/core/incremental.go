package core

import (
	"fmt"
	"math"

	"netanomaly/internal/mat"
)

// CovTracker maintains an exponentially weighted running estimate of the
// mean and covariance of link measurements, supporting the occasional
// cheap model refresh that Section 7.1 recommends for online use: rather
// than recomputing an SVD over a full window, each arriving vector makes
// a rank-1 update, and Model() re-solves only the small m x m symmetric
// eigenproblem when a refreshed subspace is actually needed.
type CovTracker struct {
	dim    int
	lambda float64
	n      int
	mean   []float64
	cov    *mat.Dense
}

// NewCovTracker returns a tracker for dim-dimensional measurements with
// forgetting factor lambda in (0, 1]: lambda = 1 weights all history
// equally; smaller values forget with time constant ~1/(1-lambda) bins
// (e.g. 0.999 ~ a week of 10-minute bins).
func NewCovTracker(dim int, lambda float64) (*CovTracker, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("core: tracker dimension %d <= 0", dim)
	}
	if lambda <= 0 || lambda > 1 {
		return nil, fmt.Errorf("core: forgetting factor %v out of (0,1]", lambda)
	}
	return &CovTracker{
		dim:    dim,
		lambda: lambda,
		mean:   make([]float64, dim),
		cov:    mat.Zeros(dim, dim),
	}, nil
}

// Count returns the number of observations absorbed.
func (c *CovTracker) Count() int { return c.n }

// Update absorbs one measurement vector with a rank-1 covariance update
// (O(m^2) per observation).
func (c *CovTracker) Update(y []float64) {
	if len(y) != c.dim {
		panic(fmt.Sprintf("core: tracker update length %d != dim %d", len(y), c.dim))
	}
	c.n++
	if c.n == 1 {
		copy(c.mean, y)
		return
	}
	// Exponentially weighted analog of Welford's update. With lambda = 1
	// this reproduces the exact sample mean/covariance recursion.
	var w float64
	if c.lambda == 1 {
		w = 1 / float64(c.n)
	} else {
		w = 1 - c.lambda
	}
	delta := mat.SubVec(y, c.mean)
	mat.AddScaled(c.mean, w, delta)
	delta2 := mat.SubVec(y, c.mean)
	// cov <- (1-w)*cov + w*delta*delta2^T
	for i := 0; i < c.dim; i++ {
		row := c.cov.RowView(i)
		di := delta[i]
		for j := 0; j < c.dim; j++ {
			row[j] = (1-w)*row[j] + w*di*delta2[j]
		}
	}
}

// UpdateAll absorbs every row of a measurement matrix.
func (c *CovTracker) UpdateAll(y *mat.Dense) {
	rows, _ := y.Dims()
	for b := 0; b < rows; b++ {
		c.Update(y.RowView(b))
	}
}

// Mean returns a copy of the current mean estimate.
func (c *CovTracker) Mean() []float64 { return mat.CloneVec(c.mean) }

// Covariance returns a copy of the current covariance estimate.
func (c *CovTracker) Covariance() *mat.Dense { return c.cov.Clone() }

// PCA solves the m x m eigenproblem on the tracked covariance and
// returns the equivalent of a batch PCA (without temporal projections,
// which a running estimate cannot provide; SeparateAxes on this PCA is
// not meaningful — choose the rank from a batch fit or a fixed policy).
func (c *CovTracker) PCA() (*PCA, error) {
	if c.n < 2 {
		return nil, ErrTooFewSamples
	}
	vals, vecs, err := mat.SymEig(c.cov)
	if err != nil {
		return nil, fmt.Errorf("core: tracker eigendecomposition: %w", err)
	}
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0 // PSD up to round-off
		}
	}
	return &PCA{
		Components:  vecs,
		Variances:   vals,
		Projections: mat.Zeros(1, len(vals)), // no temporal view
		Means:       mat.CloneVec(c.mean),
		SampleCount: c.n,
	}, nil
}

// Model builds a subspace model of the given rank from the tracked
// state.
func (c *CovTracker) Model(rank int) (*Model, error) {
	p, err := c.PCA()
	if err != nil {
		return nil, err
	}
	return Build(p, rank)
}

// Drift measures how far the tracked subspace has moved from a reference
// model: ||C~_ref - C~_now||_F for the same rank. The paper observes the
// projection P P^T is stable week to week; Drift quantifies when a refit
// is warranted.
func (c *CovTracker) Drift(ref *Model) (float64, error) {
	m, err := c.Model(ref.Rank())
	if err != nil {
		return math.NaN(), err
	}
	return mat.Sub(ref.ResidualOperator(), m.ResidualOperator()).Frobenius(), nil
}
