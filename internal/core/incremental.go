package core

import (
	"fmt"
	"math"

	"netanomaly/internal/mat"
)

// CovTracker maintains an exponentially weighted running estimate of the
// mean and covariance of link measurements, supporting the occasional
// cheap model refresh that Section 7.1 recommends for online use: rather
// than recomputing an SVD over a full window, each arriving vector makes
// a rank-1 update, and Model() re-solves only the small m x m symmetric
// eigenproblem when a refreshed subspace is actually needed.
type CovTracker struct {
	dim    int
	lambda float64
	n      int
	mean   []float64
	cov    *mat.Dense
	// delta and delta2 are scratch for Update so the per-bin rank-1 pass
	// allocates nothing: batched ingest calls UpdateAll once per block
	// and must not churn the garbage collector per bin.
	delta, delta2 []float64
}

// NewCovTracker returns a tracker for dim-dimensional measurements with
// forgetting factor lambda in (0, 1]: lambda = 1 weights all history
// equally; smaller values forget with time constant ~1/(1-lambda) bins
// (e.g. 0.999 ~ a week of 10-minute bins).
func NewCovTracker(dim int, lambda float64) (*CovTracker, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("core: tracker dimension %d <= 0", dim)
	}
	if lambda <= 0 || lambda > 1 {
		return nil, fmt.Errorf("core: forgetting factor %v out of (0,1]", lambda)
	}
	return &CovTracker{
		dim:    dim,
		lambda: lambda,
		mean:   make([]float64, dim),
		cov:    mat.Zeros(dim, dim),
		delta:  make([]float64, dim),
		delta2: make([]float64, dim),
	}, nil
}

// Snapshot returns an independent copy of the tracker's current state,
// so a background model rebuild can work from a consistent mean and
// covariance while streaming updates continue on the original.
func (c *CovTracker) Snapshot() *CovTracker {
	return &CovTracker{
		dim:    c.dim,
		lambda: c.lambda,
		n:      c.n,
		mean:   mat.CloneVec(c.mean),
		cov:    c.cov.Clone(),
		delta:  make([]float64, c.dim),
		delta2: make([]float64, c.dim),
	}
}

// Count returns the number of observations absorbed.
func (c *CovTracker) Count() int { return c.n }

// Update absorbs one measurement vector with a rank-1 covariance update
// (O(m^2) per observation).
func (c *CovTracker) Update(y []float64) {
	if len(y) != c.dim {
		panic(fmt.Sprintf("core: tracker update length %d != dim %d", len(y), c.dim))
	}
	c.n++
	if c.n == 1 {
		copy(c.mean, y)
		return
	}
	// Exponentially weighted analog of Welford's update. With lambda = 1
	// this reproduces the exact sample mean/covariance recursion.
	var w float64
	if c.lambda == 1 {
		w = 1 / float64(c.n)
	} else {
		w = 1 - c.lambda
	}
	delta, delta2 := c.delta, c.delta2
	for i, v := range y {
		delta[i] = v - c.mean[i]
		c.mean[i] += w * delta[i]
		delta2[i] = v - c.mean[i]
	}
	// cov <- (1-w)*cov + w*delta*delta2^T, fused over rows: the inner
	// loop runs over one contiguous covariance row with both scale and
	// rank-1 accumulation in a single pass.
	cov := c.cov.RawData()
	decay := 1 - w
	for i := 0; i < c.dim; i++ {
		row := cov[i*c.dim : (i+1)*c.dim]
		wdi := w * delta[i]
		for j, d2 := range delta2 {
			row[j] = decay*row[j] + wdi*d2
		}
	}
}

// UpdateAll absorbs every row of a measurement matrix. The covariance
// recursion is inherently sequential (each row's deltas depend on the
// mean after the previous row), so the fusion is within the per-row
// pass: all scratch is preallocated on the tracker and a whole batch
// allocates nothing.
func (c *CovTracker) UpdateAll(y *mat.Dense) {
	rows, cols := y.Dims()
	if cols != c.dim {
		panic(fmt.Sprintf("core: tracker batch width %d != dim %d", cols, c.dim))
	}
	data := y.RawData()
	for b := 0; b < rows; b++ {
		c.Update(data[b*cols : (b+1)*cols])
	}
}

// UpdateMasked absorbs the rows of y whose skip flag is false — the
// streaming path uses it to withhold anomalous bins from the tracked
// model, mirroring the window exclusion of the subspace backend. A nil
// skip absorbs every row.
func (c *CovTracker) UpdateMasked(y *mat.Dense, skip []bool) {
	rows, cols := y.Dims()
	if cols != c.dim {
		panic(fmt.Sprintf("core: tracker batch width %d != dim %d", cols, c.dim))
	}
	if skip == nil {
		c.UpdateAll(y)
		return
	}
	if len(skip) != rows {
		panic(fmt.Sprintf("core: tracker mask length %d != rows %d", len(skip), rows))
	}
	data := y.RawData()
	for b := 0; b < rows; b++ {
		if !skip[b] {
			c.Update(data[b*cols : (b+1)*cols])
		}
	}
}

// Mean returns a copy of the current mean estimate.
func (c *CovTracker) Mean() []float64 { return mat.CloneVec(c.mean) }

// Covariance returns a copy of the current covariance estimate.
func (c *CovTracker) Covariance() *mat.Dense { return c.cov.Clone() }

// PCA solves the m x m eigenproblem on the tracked covariance and
// returns the equivalent of a batch PCA (without temporal projections,
// which a running estimate cannot provide; SeparateAxes on this PCA is
// not meaningful — choose the rank from a batch fit or a fixed policy).
func (c *CovTracker) PCA() (*PCA, error) {
	if c.n < 2 {
		return nil, ErrTooFewSamples
	}
	vals, vecs, err := mat.SymEig(c.cov)
	if err != nil {
		return nil, fmt.Errorf("core: tracker eigendecomposition: %w", err)
	}
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0 // PSD up to round-off
		}
	}
	return &PCA{
		Components:  vecs,
		Variances:   vals,
		Projections: mat.Zeros(1, len(vals)), // no temporal view
		Means:       mat.CloneVec(c.mean),
		SampleCount: c.n,
	}, nil
}

// Model builds a subspace model of the given rank from the tracked
// state.
func (c *CovTracker) Model(rank int) (*Model, error) {
	p, err := c.PCA()
	if err != nil {
		return nil, err
	}
	return Build(p, rank)
}

// Drift measures how far the tracked subspace has moved from a reference
// model: ||C~_ref - C~_now||_F for the same rank. The paper observes the
// projection P P^T is stable week to week; Drift quantifies when a refit
// is warranted.
func (c *CovTracker) Drift(ref *Model) (float64, error) {
	m, err := c.Model(ref.Rank())
	if err != nil {
		return math.NaN(), err
	}
	return mat.Sub(ref.ResidualOperator(), m.ResidualOperator()).Frobenius(), nil
}
