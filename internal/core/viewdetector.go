package core

import (
	"io"

	"netanomaly/internal/mat"
)

// ViewStats is a point-in-time snapshot of a streaming detector's state,
// uniform across backends so the engine and its callers can report on a
// shard without knowing which implementation is behind it.
type ViewStats struct {
	// Backend names the implementation ("subspace", "incremental",
	// "multiscale", "multiflow", ...).
	Backend string
	// Links is the expected measurement-vector width. For backends that
	// consume several stacked metric blocks this is the total stacked
	// width, not the per-metric link count.
	Links int
	// Processed is the number of measurement bins seen since creation.
	Processed int
	// Rank is the normal-subspace dimension of the active model, or 0
	// when the backend has no single meaningful rank (e.g. one model per
	// wavelet scale).
	Rank int
	// Refits counts completed model rebuilds (successful fits swapped in
	// after seeding; skipped drift-gated rebuilds do not count).
	Refits int
}

// ViewDetector is the streaming detection contract an engine shard runs
// against: the subspace method and its Section 7 variants — incremental
// covariance tracking, multiscale wavelet analysis, multi-metric voting —
// all present this surface, so a Monitor can mix backends freely.
//
// Implementations must be safe for one ProcessBatch caller at a time
// (the engine guarantees this: queued batches run through the per-shard
// FIFO, and synchronous Monitor.ProcessBatch serializes with it on a
// per-shard lock) with Refit, WaitRefits, TakeRefitError and Stats
// callable concurrently from other goroutines.
// Detection must not block on model fitting: fits run on background
// goroutines and swap the active model atomically, and a failed
// background fit keeps the previous model in force, surfacing its error
// on a later ProcessBatch or TakeRefitError call.
type ViewDetector interface {
	// Seed (re)fits the model from a history block (bins x Links),
	// replacing the windowed state a later Refit would fit on. The
	// processed-bin counter keeps running; sequence numbers of later
	// alarms are unaffected. Seed serializes with in-flight refits.
	Seed(history *mat.Dense) error
	// ProcessBatch tests a block of measurements (bins x Links) against
	// the active model and returns the rows that alarm, with sequence
	// numbers continuing the per-detector count. Alarms are returned
	// even when err is non-nil (a deferred refit failure reports
	// alongside valid detections).
	ProcessBatch(y *mat.Dense) ([]Alarm, error)
	// Refit synchronously rebuilds the model from current state. It
	// serializes with background refits but must not block concurrent
	// detection.
	Refit() error
	// WaitRefits blocks until no model fit is in flight.
	WaitRefits()
	// TakeRefitError returns and clears the deferred error from the last
	// failed background refit, if any.
	TakeRefitError() error
	// Stats reports the detector's current state.
	Stats() ViewStats
	// Snapshot serializes the detector's portable state — everything a
	// Restore on an identically configured detector needs to continue
	// the alarm stream bin-for-bin: sliding windows, the active model,
	// forecaster recursions, processed/refit counters — as one NAMS
	// envelope. It serializes with in-flight model fits (waiting any
	// out through the refit gate), so it never captures a half-swapped
	// model, and it must not block concurrent Stats calls forever.
	Snapshot(w io.Writer) error
	// Restore replaces the detector's mutable state with a snapshot
	// taken from an identically configured detector of the same kind.
	// A snapshot of a different backend kind or link count is rejected
	// (wrapping ErrSnapshotMismatch) without touching the receiver;
	// corrupt input wraps ErrSnapshotFormat and truncated input wraps
	// io.ErrUnexpectedEOF. Construction-time configuration — routing
	// matrix, refit cadence, thresholds — stays the receiver's own.
	Restore(r io.Reader) error
}
