package core

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"

	"netanomaly/internal/mat"
)

// stubStage is a scripted ViewDetector for exercising the hybrid's
// escalation plumbing without real models. Each row's first column is a
// marker the alarm predicate reads; the stage records every batch and
// seed it receives.
type stubStage struct {
	mu        sync.Mutex
	backend   string
	links     int
	processed int
	refits    int
	alarmAt   func(row []float64) (Diagnosis, bool)
	batches   []*mat.Dense
	seeds     []*mat.Dense
	seedErr   error
	deferred  error
}

func (s *stubStage) Seed(h *mat.Dense) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := mat.Zeros(h.Rows(), h.Cols())
	copy(cp.RawData(), h.RawData())
	s.seeds = append(s.seeds, cp)
	if s.seedErr != nil {
		return s.seedErr
	}
	s.refits++
	return nil
}

func (s *stubStage) ProcessBatch(y *mat.Dense) ([]Alarm, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bins, _ := y.Dims()
	s.batches = append(s.batches, y)
	var alarms []Alarm
	for b := 0; b < bins; b++ {
		if diag, ok := s.alarmAt(y.RowView(b)); ok {
			diag.Bin = s.processed + b
			alarms = append(alarms, Alarm{Seq: s.processed + b, Diagnosis: diag})
		}
	}
	s.processed += bins
	return alarms, nil
}

func (s *stubStage) Refit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refits++
	return nil
}

func (s *stubStage) WaitRefits() {}

func (s *stubStage) Snapshot(io.Writer) error { return nil }
func (s *stubStage) Restore(io.Reader) error  { return nil }

func (s *stubStage) TakeRefitError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.deferred
	s.deferred = nil
	return err
}

func (s *stubStage) Stats() ViewStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ViewStats{Backend: s.backend, Links: s.links, Processed: s.processed, Refits: s.refits}
}

func (s *stubStage) receivedRows() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []float64
	for _, b := range s.batches {
		for r := 0; r < b.Rows(); r++ {
			out = append(out, b.At(r, 0))
		}
	}
	return out
}

// Marker convention for stub batches (first column of each row):
// 0 clean, 1 triage-only alarm, 2 identify-only alarm, 3 both stages
// alarm. The identify stub attributes flow 7.
func stubStages(links int) (*stubStage, *stubStage) {
	triage := &stubStage{backend: "stub-triage", links: links, alarmAt: func(row []float64) (Diagnosis, bool) {
		v := row[0]
		return Diagnosis{SPE: v, Threshold: 0.5, Flow: -1, Bytes: v}, v == 1 || v == 3
	}}
	identify := &stubStage{backend: "stub-identify", links: links, alarmAt: func(row []float64) (Diagnosis, bool) {
		v := row[0]
		return Diagnosis{SPE: 2 * v, Threshold: 0.5, Flow: 7, Bytes: v}, v == 2 || v == 3
	}}
	return triage, identify
}

func markerBatch(links int, markers ...float64) *mat.Dense {
	y := mat.Zeros(len(markers), links)
	for b, v := range markers {
		y.Set(b, 0, v)
	}
	return y
}

func newStubHybrid(t *testing.T, links int, cfg HybridConfig) (*HybridDetector, *stubStage, *stubStage) {
	t.Helper()
	triage, identify := stubStages(links)
	d, err := NewHybridDetector(triage, identify, mat.Zeros(4, links), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, triage, identify
}

func TestHybridEscalateImmediate(t *testing.T) {
	const links = 3
	d, triage, identify := newStubHybrid(t, links, HybridConfig{})

	alarms, err := d.ProcessBatch(markerBatch(links, 0, 1, 0, 3, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Identification saw exactly the triage-alarmed rows.
	if got := identify.receivedRows(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("identify stage received rows %v, want [1 3 1]", got)
	}
	if got := triage.receivedRows(); len(got) != 6 {
		t.Fatalf("triage stage received %d rows, want every bin", len(got))
	}
	// One alarm per triage-alarmed bin, in order; the confirmed bin
	// (marker 3) carries the identify stage's flow.
	if len(alarms) != 3 {
		t.Fatalf("alarms: %+v", alarms)
	}
	wantSeq := []int{1, 3, 4}
	wantFlow := []int{-1, 7, -1}
	for i, a := range alarms {
		if a.Seq != wantSeq[i] || a.Bin != wantSeq[i] || a.Flow != wantFlow[i] {
			t.Fatalf("alarm %d = %+v, want seq %d flow %d", i, a, wantSeq[i], wantFlow[i])
		}
	}
	hs := d.HybridStats()
	if hs.TriageAlarms != 3 || hs.Escalated != 3 || hs.Identified != 1 || hs.Suppressed != 0 {
		t.Fatalf("stats %+v", hs)
	}
	if hs.Triage.Backend != "stub-triage" || hs.Identify.Backend != "stub-identify" {
		t.Fatalf("stage stats %+v", hs)
	}
	if got := d.Stats(); got.Backend != "hybrid" || got.Processed != 6 || got.Links != links {
		t.Fatalf("Stats() = %+v", got)
	}
}

func TestHybridEscalateConfirm(t *testing.T) {
	const links = 2
	d, _, identify := newStubHybrid(t, links, HybridConfig{Escalation: EscalateConfirm, Confirm: 2})

	// Runs: bin1 (len 1, suppressed), bins 3-5 (len 3: bin 3 suppressed,
	// bins 4 and 5 escalate).
	alarms, err := d.ProcessBatch(markerBatch(links, 0, 3, 0, 3, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got := identify.receivedRows(); len(got) != 2 {
		t.Fatalf("identify received %d rows, want 2 (confirmed tail of the run)", len(got))
	}
	// Every triage alarm still fires; only confirmed bins carry flow.
	wantFlow := map[int]int{1: -1, 3: -1, 4: 7, 5: 7}
	if len(alarms) != len(wantFlow) {
		t.Fatalf("alarms: %+v", alarms)
	}
	for _, a := range alarms {
		if want, ok := wantFlow[a.Seq]; !ok || a.Flow != want {
			t.Fatalf("alarm %+v, want flow %d", a, wantFlow[a.Seq])
		}
	}
	hs := d.HybridStats()
	if hs.Suppressed != 2 || hs.Escalated != 2 || hs.Identified != 2 {
		t.Fatalf("stats %+v", hs)
	}

	// The run carries across batch boundaries: the stream ended mid-run,
	// so the next batch's first alarmed bin is already confirmed.
	alarms, err = d.ProcessBatch(markerBatch(links, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) != 1 || alarms[0].Seq != 6 || alarms[0].Flow != 7 {
		t.Fatalf("cross-batch run not continued: %+v", alarms)
	}
}

func TestHybridEscalateAlways(t *testing.T) {
	const links = 2
	d, _, identify := newStubHybrid(t, links, HybridConfig{Escalation: EscalateAlways})

	// Marker 2: triage misses, identify catches — the alarm must still
	// surface, with flow attribution.
	alarms, err := d.ProcessBatch(markerBatch(links, 0, 2, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := identify.receivedRows(); len(got) != 4 {
		t.Fatalf("always policy escalated %d of 4 bins", len(got))
	}
	if len(alarms) != 2 {
		t.Fatalf("alarms: %+v", alarms)
	}
	if alarms[0].Seq != 1 || alarms[0].Flow != 7 {
		t.Fatalf("triage-missed bin not surfaced by identify: %+v", alarms[0])
	}
	if alarms[1].Seq != 2 || alarms[1].Flow != -1 {
		t.Fatalf("triage-only bin wrong: %+v", alarms[1])
	}
}

func TestHybridSeqRebaseWithPreStreamedStages(t *testing.T) {
	const links = 2
	triage, identify := stubStages(links)
	// Both stages streamed before the hybrid wrapped them; hybrid
	// sequence numbers must still start at zero.
	if _, err := triage.ProcessBatch(mat.Zeros(5, links)); err != nil {
		t.Fatal(err)
	}
	if _, err := identify.ProcessBatch(mat.Zeros(9, links)); err != nil {
		t.Fatal(err)
	}
	d, err := NewHybridDetector(triage, identify, mat.Zeros(4, links), HybridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	alarms, err := d.ProcessBatch(markerBatch(links, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) != 1 || alarms[0].Seq != 1 || alarms[0].Flow != 7 {
		t.Fatalf("rebased alarms wrong: %+v", alarms)
	}
}

func TestHybridBackgroundReseed(t *testing.T) {
	const links = 2
	d, _, identify := newStubHybrid(t, links, HybridConfig{RefitEvery: 4, Window: 8})

	// Two clean bins, then two alarmed ones: the re-seed fires after
	// bin 4 and must fit on clean bins only (4 history + 2 clean).
	if _, err := d.ProcessBatch(markerBatch(links, 0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	d.WaitRefits()
	identify.mu.Lock()
	seeds := len(identify.seeds)
	var rows int
	if seeds > 0 {
		rows = identify.seeds[0].Rows()
	}
	identify.mu.Unlock()
	if seeds != 1 || rows != 6 {
		t.Fatalf("re-seed: %d seeds, %d rows, want 1 seed of 6 clean rows", seeds, rows)
	}
	if err := d.TakeRefitError(); err != nil {
		t.Fatalf("clean re-seed parked an error: %v", err)
	}
	if got := d.Stats().Refits; got != 1 {
		t.Fatalf("refits = %d want 1", got)
	}
}

func TestHybridReseedFailureDeferred(t *testing.T) {
	const links = 2
	triage, identify := stubStages(links)
	identify.seedErr = errors.New("boom")
	d, err := NewHybridDetector(triage, identify, mat.Zeros(4, links), HybridConfig{RefitEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProcessBatch(markerBatch(links, 0, 0)); err != nil {
		t.Fatal(err)
	}
	d.WaitRefits()
	// The failed re-seed surfaces on the next batch (or TakeRefitError),
	// alongside that batch's valid detections.
	alarms, err := d.ProcessBatch(markerBatch(links, 3))
	if err == nil || !strings.Contains(err.Error(), "re-seed") {
		t.Fatalf("deferred re-seed failure not reported: %v", err)
	}
	if len(alarms) != 1 || alarms[0].Flow != 7 {
		t.Fatalf("detections dropped alongside deferred error: %+v", alarms)
	}
	if err := d.TakeRefitError(); err != nil {
		t.Fatalf("deferred error not cleared: %v", err)
	}
}

func TestHybridRejectsMismatches(t *testing.T) {
	triage, _ := stubStages(3)
	_, identify := stubStages(4)
	if _, err := NewHybridDetector(triage, identify, mat.Zeros(4, 3), HybridConfig{}); err == nil {
		t.Fatal("stage width mismatch accepted")
	}
	d, _, _ := func() (*HybridDetector, *stubStage, *stubStage) {
		tr, id := stubStages(3)
		d, err := NewHybridDetector(tr, id, mat.Zeros(4, 3), HybridConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return d, tr, id
	}()
	if _, err := d.ProcessBatch(mat.Zeros(2, 5)); err == nil {
		t.Fatal("mis-sized batch accepted")
	}
	if got := d.Stats().Processed; got != 0 {
		t.Fatalf("rejected batch advanced the counter to %d", got)
	}
}

func TestHybridTakeRefitErrorJoinsStages(t *testing.T) {
	const links = 2
	triage, identify := stubStages(links)
	triage.deferred = errors.New("triage-deferred")
	identify.deferred = errors.New("identify-deferred")
	d, err := NewHybridDetector(triage, identify, mat.Zeros(4, links), HybridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got := d.TakeRefitError()
	if got == nil || !strings.Contains(got.Error(), "triage-deferred") || !strings.Contains(got.Error(), "identify-deferred") {
		t.Fatalf("stage deferred errors not joined: %v", got)
	}
	if d.TakeRefitError() != nil {
		t.Fatal("deferred errors not cleared")
	}
}

func TestParseEscalation(t *testing.T) {
	cases := []struct {
		in      string
		policy  Escalation
		confirm int
		ok      bool
	}{
		{"", EscalateImmediate, 0, true},
		{"immediate", EscalateImmediate, 0, true},
		{"always", EscalateAlways, 0, true},
		{"confirm", EscalateConfirm, 0, true},
		{"confirm:3", EscalateConfirm, 3, true},
		{"confirm:0", 0, 0, false},
		{"confirm:x", 0, 0, false},
		{"sometimes", 0, 0, false},
	}
	for _, c := range cases {
		policy, confirm, err := ParseEscalation(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseEscalation(%q) err = %v", c.in, err)
		}
		if c.ok && (policy != c.policy || confirm != c.confirm) {
			t.Fatalf("ParseEscalation(%q) = %v, %d", c.in, policy, confirm)
		}
	}
	for _, e := range []Escalation{EscalateImmediate, EscalateConfirm, EscalateAlways} {
		back, _, err := ParseEscalation(e.String())
		if err != nil || back != e {
			t.Fatalf("round trip %v: %v %v", e, back, err)
		}
	}
}

// TestHybridHysteresisCollapsesChurn drives a noisy-threshold stream —
// the triage stage flipping between alarmed and quiet every bin — and
// proves the hold window collapses the escalation churn: without
// hysteresis every alarmed bin opens its own escalation episode, with
// it the whole flap is one episode and the alarm stream is unchanged.
func TestHybridHysteresisCollapsesChurn(t *testing.T) {
	const links = 2
	flap := make([]float64, 20)
	for b := range flap {
		if b%2 == 0 {
			flap[b] = 1
		}
	}

	flat, _, _ := newStubHybrid(t, links, HybridConfig{})
	flatAlarms, err := flat.ProcessBatch(markerBatch(links, flap...))
	if err != nil {
		t.Fatal(err)
	}
	held, _, identify := newStubHybrid(t, links, HybridConfig{Hysteresis: 2})
	heldAlarms, err := held.ProcessBatch(markerBatch(links, flap...))
	if err != nil {
		t.Fatal(err)
	}

	fs, hs := flat.HybridStats(), held.HybridStats()
	if fs.EscalationRuns != 10 || fs.HeldBins != 0 || fs.Escalated != 10 {
		t.Fatalf("no-hysteresis stats %+v, want 10 one-bin escalation runs", fs)
	}
	if hs.EscalationRuns != 1 {
		t.Fatalf("hysteresis stats %+v, want the flap collapsed to 1 escalation run", hs)
	}
	if hs.HeldBins != 10 || hs.Escalated != 20 {
		t.Fatalf("hysteresis stats %+v, want 10 held bins among 20 escalated", hs)
	}
	// The quiet bins reached the identification stage during the hold.
	if got := identify.receivedRows(); len(got) != 20 {
		t.Fatalf("identify saw %d rows under hysteresis, want all 20", len(got))
	}
	// Same alarm stream either way: holding changes what the identify
	// stage sees, not which bins alarm.
	if len(flatAlarms) != len(heldAlarms) {
		t.Fatalf("alarm streams diverge: %d vs %d", len(flatAlarms), len(heldAlarms))
	}
	for i := range flatAlarms {
		if flatAlarms[i].Seq != heldAlarms[i].Seq {
			t.Fatalf("alarm %d at seq %d vs %d", i, flatAlarms[i].Seq, heldAlarms[i].Seq)
		}
	}
}

// The hold window survives a snapshot/restore mid-flap: the resumed
// hybrid keeps holding instead of starting a new escalation episode.
func TestHybridHysteresisSnapshotResume(t *testing.T) {
	const links = 2
	d, _, _ := newStubHybrid(t, links, HybridConfig{Hysteresis: 3})
	if _, err := d.ProcessBatch(markerBatch(links, 1, 0)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, _, _ := newStubHybrid(t, links, HybridConfig{Hysteresis: 3})
	if err := r.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ProcessBatch(markerBatch(links, 0, 1)); err != nil {
		t.Fatal(err)
	}
	hs := r.HybridStats()
	if hs.EscalationRuns != 1 {
		t.Fatalf("restored hybrid started a new escalation run: %+v", hs)
	}
	if hs.HeldBins != 2 || hs.Escalated != 4 {
		t.Fatalf("restored hold window wrong: %+v", hs)
	}
}
