package core

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"netanomaly/internal/mat"
)

// FDSketch maintains a Frequent-Directions sketch of the centered
// measurement stream: an ell x m row buffer B whose Gram matrix B^T B
// approximates the unnormalized covariance of everything inserted, with
// spectral error at most 2 * total energy / ell (Liberty 2013, Ghashami
// et al. 2016). Memory is O(ell * m) regardless of how many bins have
// streamed through — the property that lets a covariance-based detector
// run per view at a scale where even an m x m tracker's refit cost
// hurts, let alone a sliding window of raw bins.
//
// When the buffer fills, the sketch shrinks: it eigendecomposes the
// small ell x ell Gram B B^T, subtracts the median eigenvalue from
// every direction and rebuilds the buffer from the surviving ones — at
// least half the rows come back empty, so shrinks amortize to
// O(ell*m + ell^2) per inserted row. The energy removed by shrinking is
// tracked exactly (total inserted energy minus energy retained in B)
// and restored at model-build time as an isotropic correction
// alpha * I spread over all m directions — the "robust" FD covariance
// estimate — which keeps the residual spectrum positive so the
// Q-statistic threshold stays calibrated.
//
// Rows are centered against a running mean that evolves as bins are
// inserted; like every single-pass mean estimate this differs from
// retrospective centering by O(1/n) terms, which the seed history (n of
// at least m bins) makes negligible.
type FDSketch struct {
	m, ell int
	b      *mat.Dense // ell x m row buffer
	used   int        // occupied rows of b
	mean   []float64  // running per-link mean
	n      int        // total inserted rows
	energy float64    // exact sum of ||x - mean||^2 over inserted rows
}

// NewFDSketch returns an empty sketch of ell rows over m links.
func NewFDSketch(m, ell int) (*FDSketch, error) {
	if m <= 0 {
		return nil, fmt.Errorf("core: sketch needs m > 0, got %d", m)
	}
	if ell < 4 {
		return nil, fmt.Errorf("core: sketch size %d too small (need >= 4)", ell)
	}
	return &FDSketch{
		m:    m,
		ell:  ell,
		b:    mat.Zeros(ell, m),
		mean: make([]float64, m),
	}, nil
}

// Size returns the sketch size ell.
func (s *FDSketch) Size() int { return s.ell }

// Count returns how many rows have been inserted.
func (s *FDSketch) Count() int { return s.n }

// rowsView returns the occupied prefix of the buffer without copying.
func (s *FDSketch) rowsView() *mat.Dense {
	return mat.NewDense(s.used, s.m, s.b.RawData()[:s.used*s.m])
}

// Insert absorbs one measurement vector: the running mean advances,
// the centered row lands in the buffer, and a full buffer triggers a
// shrink.
func (s *FDSketch) Insert(x []float64) error {
	if len(x) != s.m {
		return fmt.Errorf("core: sketch insert has %d links, want %d", len(x), s.m)
	}
	s.n++
	inv := 1 / float64(s.n)
	row := s.b.RowView(s.used)
	var norm2 float64
	for j, v := range x {
		s.mean[j] += (v - s.mean[j]) * inv
		c := v - s.mean[j]
		row[j] = c
		norm2 += c * c
	}
	s.energy += norm2
	s.used++
	if s.used == s.ell {
		return s.shrink()
	}
	return nil
}

// InsertAll absorbs every row of y.
func (s *FDSketch) InsertAll(y *mat.Dense) error {
	for i := 0; i < y.Rows(); i++ {
		if err := s.Insert(y.RowView(i)); err != nil {
			return err
		}
	}
	return nil
}

// InsertMasked absorbs the rows of y whose skip flag is false — the
// sketch equivalent of withholding anomalous bins from the model
// window.
func (s *FDSketch) InsertMasked(y *mat.Dense, skip []bool) error {
	for i := 0; i < y.Rows(); i++ {
		if i < len(skip) && skip[i] {
			continue
		}
		if err := s.Insert(y.RowView(i)); err != nil {
			return err
		}
	}
	return nil
}

// shrink halves the buffer occupancy: eigendecompose G = B B^T, shed
// the median eigenvalue delta from every direction, and rebuild the
// buffer rows as sqrt(lambda_i - delta) * v_i for the directions that
// survive. All linear algebra is ell-sized; m enters only through the
// two rectangular products.
func (s *FDSketch) shrink() error {
	bu := s.rowsView()
	vals, vecs, err := mat.SymEig(mat.Mul(bu, bu.T()))
	if err != nil {
		return fmt.Errorf("core: sketch shrink: %w", err)
	}
	delta := vals[s.ell/2]
	if delta < 0 {
		delta = 0
	}
	fresh := mat.Zeros(s.ell, s.m)
	k := 0
	for i := 0; i < s.used; i++ {
		li := vals[i]
		if li <= delta || li <= 0 {
			break // descending spectrum: everything after is shed too
		}
		// New row k = sigma'_i * v_i = sqrt((li-delta)/li) * B^T u_i.
		scale := math.Sqrt((li - delta) / li)
		dir := mat.MulTVec(bu, vecs.Col(i))
		row := fresh.RowView(k)
		for j, v := range dir {
			row[j] = scale * v
		}
		k++
	}
	s.b = fresh
	s.used = k
	return nil
}

// Snapshot returns an independent copy for a background model solve.
func (s *FDSketch) Snapshot() *FDSketch {
	return &FDSketch{
		m:      s.m,
		ell:    s.ell,
		b:      s.b.Clone(),
		used:   s.used,
		mean:   mat.CloneVec(s.mean),
		n:      s.n,
		energy: s.energy,
	}
}

// PCA solves the sketch's small eigenproblem and assembles a PCA over
// all m link directions: the sketch's surviving directions carry their
// (shed-corrected) variances, and the energy lost to shrinking returns
// as an isotropic alpha*I term so the tail of the spectrum — the
// residual subspace the Q-statistic integrates over — stays positive.
// The second result is how many leading directions the sketch actually
// spans; a model rank beyond it would project onto zero columns.
func (s *FDSketch) PCA() (*PCA, int, error) {
	if s.n < 2 {
		return nil, 0, ErrTooFewSamples
	}
	if s.used == 0 {
		return nil, 0, fmt.Errorf("core: sketch holds no directions")
	}
	bu := s.rowsView()
	vals, vecs, err := mat.SymEig(mat.Mul(bu, bu.T()))
	if err != nil {
		return nil, 0, fmt.Errorf("core: sketch eigendecomposition: %w", err)
	}
	var retained float64
	for _, v := range vals {
		if v > 0 {
			retained += v
		}
	}
	alpha := (s.energy - retained) / float64(s.m)
	if alpha < 0 {
		alpha = 0 // exact-regime round-off: nothing was shed
	}
	denom := float64(s.n - 1)
	comps := mat.Zeros(s.m, s.m)
	variances := make([]float64, s.m)
	floor := 1e-12 * vals[0]
	k := 0
	for i := 0; i < s.used && k < s.m; i++ {
		li := vals[i]
		if li <= floor || li <= 0 {
			break
		}
		dir := mat.MulTVec(bu, vecs.Col(i))
		inv := 1 / math.Sqrt(li)
		for r, v := range dir {
			comps.Set(r, k, inv*v)
		}
		variances[k] = (li + alpha) / denom
		k++
	}
	if k == 0 {
		return nil, 0, fmt.Errorf("core: sketch spectrum collapsed")
	}
	for i := k; i < s.m; i++ {
		variances[i] = alpha / denom
	}
	p := &PCA{
		Components:  comps,
		Variances:   variances,
		Projections: mat.Zeros(1, s.m), // no temporal view, like CovTracker
		Means:       mat.CloneVec(s.mean),
		SampleCount: s.n,
	}
	return p, k, nil
}

// SketchConfig configures NewSketchDetector.
type SketchConfig struct {
	// SketchSize is ell, the number of sketch rows. Memory is O(ell*m)
	// and a refit costs O(ell^2*m + ell^3) — both independent of how
	// long the stream runs. Detection agreement with the exact-
	// covariance backends needs ell >= 2*rank (the shrink step always
	// preserves the top ell/2 directions); 0 picks max(8, 4*rank) from
	// the seed fit's resolved rank.
	SketchSize int
	// RefitEvery triggers a background model rebuild from the sketch
	// after this many processed bins; 0 disables automatic rebuilds.
	RefitEvery int
	// DriftTol gates automatic rebuilds exactly as in
	// IncrementalConfig: swap only when the residual projector moved at
	// least this far (Frobenius). 0 swaps every interval.
	DriftTol float64
	// Options configure the diagnoser (confidence, sigma, fixed rank).
	Options Options
}

// SketchDetector is the Frequent-Directions streaming backend: the
// ninth member of the detector family. It seeds exactly like the
// subspace and incremental backends (full batch fit on the history, the
// paper's rank separation), then tracks the covariance in an FDSketch
// instead of a window or an m x m tracker, so per-view memory is
// O(ell*m) and a rebuild solves an ell-sized eigenproblem instead of an
// m x m one — the cheapest refit in the family, bought with a bounded
// spectral error that detection absorbs (the normal subspace needs only
// the top-rank directions, which FD preserves best).
//
// Concurrency follows IncrementalDetector: lock-free detection against
// an atomically swapped Diagnoser, background rebuilds on a sketch
// snapshot serialized by a RefitGate, deferred error reporting.
type SketchDetector struct {
	a        *mat.Dense
	opts     Options
	links    int
	ell      int
	driftTol float64

	diag atomic.Pointer[Diagnoser]

	mu         sync.Mutex // guards the fields below
	sk         *FDSketch
	rank       int
	processed  int
	sinceRefit int
	refitEvery int
	gate       *RefitGate
	refits     int
	skipped    int
	refitHook  func()
}

var _ ViewDetector = (*SketchDetector)(nil)

// sketchSizeFor validates or defaults ell against the resolved model
// rank.
func sketchSizeFor(ell, rank int) (int, error) {
	if ell == 0 {
		ell = 4 * rank
		if ell < 8 {
			ell = 8
		}
	}
	if ell < 2*rank {
		return 0, fmt.Errorf("core: sketch size %d < 2*rank (rank %d): shrinking would discard normal-subspace directions", ell, rank)
	}
	if ell < 4 {
		return 0, fmt.Errorf("core: sketch size %d too small (need >= 4)", ell)
	}
	return ell, nil
}

// NewSketchDetector seeds the model with a full batch fit on history
// (bins x links) — identical to the subspace and incremental seeds, so
// all three start from the same model — and initializes the sketch from
// the same rows. routing (links x flows) drives identification.
func NewSketchDetector(history, a *mat.Dense, cfg SketchConfig) (*SketchDetector, error) {
	cfg.Options.fillDefaults()
	t, links := history.Dims()
	if t < 2 {
		return nil, ErrTooFewSamples
	}
	diag, err := NewDiagnoser(history, a, cfg.Options)
	if err != nil {
		return nil, err
	}
	rank := diag.Detector().Model().Rank()
	ell, err := sketchSizeFor(cfg.SketchSize, rank)
	if err != nil {
		return nil, err
	}
	sk, err := NewFDSketch(links, ell)
	if err != nil {
		return nil, err
	}
	if err := sk.InsertAll(history); err != nil {
		return nil, err
	}
	d := &SketchDetector{
		a:          a,
		opts:       cfg.Options,
		links:      links,
		ell:        ell,
		driftTol:   cfg.DriftTol,
		sk:         sk,
		rank:       rank,
		refitEvery: cfg.RefitEvery,
	}
	d.gate = NewRefitGate(&d.mu)
	d.diag.Store(diag)
	return d, nil
}

// SetRefitHook installs a function that runs inside every background
// rebuild goroutine before solving begins; tests use it to hold a
// rebuild open. Call before streaming starts.
func (d *SketchDetector) SetRefitHook(h func()) { d.refitHook = h }

// diagnoserFromSketch assembles the full pipeline from a sketch
// snapshot at the given rank.
func (d *SketchDetector) diagnoserFromSketch(sk *FDSketch, rank int) (*Diagnoser, error) {
	p, span, err := sk.PCA()
	if err != nil {
		return nil, err
	}
	if rank > span {
		return nil, fmt.Errorf("core: sketch spans %d directions, model rank is %d", span, rank)
	}
	model, err := Build(p, rank)
	if err != nil {
		return nil, err
	}
	det, err := NewDetector(model, d.opts.Confidence)
	if err != nil {
		return nil, err
	}
	id, err := NewIdentifier(model, d.a)
	if err != nil {
		return nil, err
	}
	return &Diagnoser{det: det, id: id}, nil
}

// ProcessBatch tests a block of measurements (bins x links) against the
// active model, absorbs the non-anomalous rows into the sketch, and
// schedules a background rebuild when the refit interval has elapsed.
// Alarms carry sequence numbers continuing the per-detector count; a
// deferred rebuild failure is reported alongside the batch's
// detections.
func (d *SketchDetector) ProcessBatch(y *mat.Dense) ([]Alarm, error) {
	bins, cols := y.Dims()
	if cols != d.links {
		return nil, fmt.Errorf("core: batch has %d links, detector expects %d", cols, d.links)
	}
	diags, flags := d.diag.Load().DiagnoseBatch(y)

	d.mu.Lock()
	base := d.processed
	d.processed += bins
	var alarms []Alarm
	for b := 0; b < bins; b++ {
		if flags[b] {
			diag := diags[b]
			diag.Bin = base + b
			alarms = append(alarms, Alarm{Seq: base + b, Diagnosis: diag})
		}
	}
	// Anomalous bins are withheld from the sketch, mirroring the window
	// exclusion of the subspace backend.
	err := d.sk.InsertMasked(y, flags)
	if gerr := d.gate.TakeErrorLocked(); err == nil {
		err = gerr
	}
	var snap *FDSketch
	rank := d.rank
	if d.refitEvery > 0 {
		d.sinceRefit += bins
		if d.sinceRefit >= d.refitEvery && d.gate.TryBeginLocked() {
			d.sinceRefit = 0
			snap = d.sk.Snapshot()
		}
	}
	d.mu.Unlock()

	if snap != nil {
		d.spawnRebuild(snap, rank)
	}
	return alarms, err
}

// spawnRebuild solves a candidate model from the sketch snapshot in a
// background goroutine and swaps it in when it has drifted at least
// DriftTol from the model active at decision time (always, when
// DriftTol is 0).
func (d *SketchDetector) spawnRebuild(snap *FDSketch, rank int) {
	go func() {
		if h := d.refitHook; h != nil {
			h()
		}
		cand, err := d.diagnoserFromSketch(snap, rank)
		swap := err == nil
		if swap && d.driftTol > 0 {
			drift := mat.Sub(
				d.diag.Load().Detector().Model().ResidualOperator(),
				cand.Detector().Model().ResidualOperator(),
			).Frobenius()
			swap = drift >= d.driftTol
		}
		if swap {
			d.diag.Store(cand)
		}
		if err != nil {
			err = fmt.Errorf("core: sketch rebuild: %w", err)
		}
		d.mu.Lock()
		switch {
		case err == nil && swap:
			d.refits++
		case err == nil:
			d.skipped++
		}
		d.gate.EndLocked(err)
		d.mu.Unlock()
	}()
}

// Refit synchronously rebuilds the model from the current sketch state,
// bypassing the drift gate. The eigensolve runs on a snapshot outside
// the lock, so concurrent detection never stalls.
func (d *SketchDetector) Refit() error {
	d.mu.Lock()
	d.gate.BeginLocked()
	snap := d.sk.Snapshot()
	rank := d.rank
	d.mu.Unlock()

	cand, err := d.diagnoserFromSketch(snap, rank)
	if err == nil {
		d.diag.Store(cand)
	} else {
		err = fmt.Errorf("core: sketch rebuild: %w", err)
	}

	d.mu.Lock()
	if err == nil {
		d.refits++
	}
	d.gate.EndLocked(nil)
	d.mu.Unlock()
	return err
}

// Seed resets the sketch to the history block and refits the model with
// a full batch fit on it, re-resolving the rank exactly as construction
// does. It serializes with in-flight rebuilds; the processed-bin
// counter keeps running.
func (d *SketchDetector) Seed(history *mat.Dense) error {
	t, links := history.Dims()
	if links != d.links {
		return fmt.Errorf("core: seed history has %d links, detector expects %d", links, d.links)
	}
	if t < 2 {
		return ErrTooFewSamples
	}
	d.mu.Lock()
	d.gate.BeginLocked()
	d.mu.Unlock()

	diag, err := NewDiagnoser(history, d.a, d.opts)
	var sk *FDSketch
	var rank int
	if err == nil {
		rank = diag.Detector().Model().Rank()
		var ell int
		if ell, err = sketchSizeFor(d.ell, rank); err == nil {
			if sk, err = NewFDSketch(links, ell); err == nil {
				if err = sk.InsertAll(history); err == nil {
					d.diag.Store(diag)
				}
			}
		}
	}
	if err != nil {
		err = fmt.Errorf("core: sketch seed: %w", err)
	}

	d.mu.Lock()
	if err == nil {
		d.sk = sk
		d.rank = rank
		d.sinceRefit = 0
		d.refits++
	}
	d.gate.EndLocked(nil)
	d.mu.Unlock()
	return err
}

// WaitRefits blocks until no rebuild is in flight.
func (d *SketchDetector) WaitRefits() { d.gate.Wait() }

// TakeRefitError returns and clears the deferred error from the last
// failed background rebuild, if any.
func (d *SketchDetector) TakeRefitError() error { return d.gate.TakeError() }

// Stats reports the detector's current state. Refits counts swapped-in
// rebuilds.
func (d *SketchDetector) Stats() ViewStats {
	d.mu.Lock()
	processed, refits := d.processed, d.refits
	d.mu.Unlock()
	return ViewStats{
		Backend:   "sketch",
		Links:     d.links,
		Processed: processed,
		Rank:      d.diag.Load().Detector().Model().Rank(),
		Refits:    refits,
	}
}

// Snapshot serializes the Frequent-Directions buffer (all ell rows,
// occupancy, running mean, inserted count, shed energy), the retained
// rank, the counters, and the exact active model. The refit gate is
// taken first so an in-flight rebuild is waited out, never captured
// mid-swap.
func (d *SketchDetector) Snapshot(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gate.BeginLocked()
	defer d.gate.EndLocked(nil)
	return EncodeSnapshot(w, SnapKindSketch, func(sw *SnapshotWriter) {
		sw.Int(d.links)
		sw.Int(d.ell)
		sw.Matrix(d.sk.b)
		sw.Int(d.sk.used)
		sw.Floats(d.sk.mean)
		sw.Int(d.sk.n)
		sw.F64(d.sk.energy)
		sw.Int(d.rank)
		sw.Int(d.processed)
		sw.Int(d.sinceRefit)
		sw.Int(d.refits)
		sw.Int(d.skipped)
		encodeDiagnoser(sw, d.diag.Load())
	})
}

// Restore replaces the sketch, counters, and active model with a
// snapshot from an identically configured sketch detector. The
// snapshot's sketch size must match the receiver's ell — the buffer
// shape is construction configuration — and the state commits only
// after the whole payload validates.
func (d *SketchDetector) Restore(r io.Reader) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gate.BeginLocked()
	defer d.gate.EndLocked(nil)
	return DecodeSnapshot(r, SnapKindSketch, func(sr *SnapshotReader) error {
		links := sr.Int()
		if sr.Err() == nil && links != d.links {
			return SnapshotMismatchf("snapshot has %d links, detector expects %d", links, d.links)
		}
		ell := sr.Int()
		if sr.Err() == nil && ell != d.ell {
			return SnapshotMismatchf("snapshot sketch size %d, detector uses %d", ell, d.ell)
		}
		b := sr.Matrix()
		used := sr.NonNegInt()
		mean := sr.Floats()
		n := sr.NonNegInt()
		energy := sr.F64()
		rank := sr.NonNegInt()
		processed := sr.NonNegInt()
		sinceRefit := sr.NonNegInt()
		refits := sr.NonNegInt()
		skipped := sr.NonNegInt()
		if err := sr.Err(); err != nil {
			return err
		}
		if b == nil {
			return snapshotFormatf("sketch buffer missing")
		}
		if rows, cols := b.Dims(); rows != d.ell || cols != d.links {
			return snapshotFormatf("sketch buffer is %dx%d, want %dx%d", rows, cols, d.ell, d.links)
		}
		if used > d.ell {
			return snapshotFormatf("sketch occupancy %d over size %d", used, d.ell)
		}
		if len(mean) != d.links {
			return snapshotFormatf("sketch mean has %d entries, want %d", len(mean), d.links)
		}
		if rank < 1 || rank >= d.links {
			return snapshotFormatf("retained rank %d out of [1, %d]", rank, d.links-1)
		}
		diag, err := decodeDiagnoser(sr, d.a, d.links)
		if err != nil {
			return err
		}
		d.sk = &FDSketch{
			m:      d.links,
			ell:    d.ell,
			b:      b,
			used:   used,
			mean:   mean,
			n:      n,
			energy: energy,
		}
		d.rank = rank
		d.processed = processed
		d.sinceRefit = sinceRefit
		d.refits = refits
		d.skipped = skipped
		d.diag.Store(diag)
		return nil
	})
}

// SkippedRebuilds returns how many automatic rebuild intervals solved a
// candidate model but left the active one in place because the subspace
// had drifted less than DriftTol.
func (d *SketchDetector) SkippedRebuilds() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.skipped
}

// Diagnoser returns the currently active model pipeline.
func (d *SketchDetector) Diagnoser() *Diagnoser { return d.diag.Load() }

// SketchSize returns ell, the sketch's row budget.
func (d *SketchDetector) SketchSize() int { return d.ell }
