package core

import (
	"fmt"
	"math"

	"netanomaly/internal/mat"
)

// Identifier locates which hypothesized anomaly best explains a residual
// measurement vector, and quantifies it (Sections 5.2 and 5.3). The
// candidate anomaly set is the columns of the routing matrix A: each OD
// flow adds an equal amount of traffic to every link on its path, so the
// anomaly direction for flow i is theta_i = A_i / ||A_i||.
type Identifier struct {
	model *Model
	// theta[i] is the unit-norm anomaly direction for flow i (nil for
	// flows with an empty route).
	theta [][]float64
	// thetaTilde[i] = C~ theta_i, its projection onto the anomalous
	// subspace; thetaTildeSq[i] = ||C~ theta_i||^2.
	thetaTilde   [][]float64
	thetaTildeSq []float64
	// aNorm[i] = ||A_i|| = sqrt(path length); aSum[i] = sum(A_i) = path
	// length. Used by quantification via the column-normalized Abar.
	aNorm []float64
	aSum  []float64
}

// NewIdentifier precomputes the per-flow anomaly directions and their
// anomalous-subspace projections for the model and routing matrix a
// (links x flows). Flows whose routing column is all-zero are excluded
// from identification.
func NewIdentifier(m *Model, a *mat.Dense) (*Identifier, error) {
	links, flows := a.Dims()
	if links != m.NumLinks() {
		return nil, fmt.Errorf("core: routing matrix has %d links, model has %d", links, m.NumLinks())
	}
	id := &Identifier{
		model:        m,
		theta:        make([][]float64, flows),
		thetaTilde:   make([][]float64, flows),
		thetaTildeSq: make([]float64, flows),
		aNorm:        make([]float64, flows),
		aSum:         make([]float64, flows),
	}
	for i := 0; i < flows; i++ {
		col := a.Col(i)
		var sum float64
		for _, v := range col {
			sum += v
		}
		norm := mat.Norm2(col)
		if norm == 0 {
			continue // unroutable flow, cannot hypothesize
		}
		theta := mat.CloneVec(col)
		mat.ScaleVec(theta, 1/norm)
		tt := mat.MulVec(m.ct, theta)
		id.theta[i] = theta
		id.thetaTilde[i] = tt
		id.thetaTildeSq[i] = mat.SqNorm(tt)
		id.aNorm[i] = norm
		id.aSum[i] = sum
	}
	return id, nil
}

// NumFlows returns the number of candidate anomalies (OD flows).
func (id *Identifier) NumFlows() int { return len(id.theta) }

// Result is an identified and quantified anomaly hypothesis.
type Result struct {
	// Flow is the index of the best anomaly hypothesis (OD flow).
	Flow int
	// Magnitude is fhat_i, the anomaly amplitude along theta_i.
	Magnitude float64
	// Bytes is the quantification estimate Abar_i^T y' of the anomalous
	// byte count in the flow (Section 5.3).
	Bytes float64
	// ResidualSq is ||C~ y*_i||^2, the residual left after removing the
	// hypothesized anomaly; the chosen flow minimizes it.
	ResidualSq float64
}

// Identify chooses the best single-flow hypothesis for the measurement y.
// It minimizes ||C~ y*_i||^2 over flows i, where y*_i = y - theta_i fhat_i
// and fhat_i = (theta~_i^T theta~_i)^-1 theta~_i^T y~ (Equation 1). By
// orthogonal projection the minimized residual equals
// ||y~||^2 - (theta~_i^T y~)^2 / ||theta~_i||^2, so the scan is O(flows x
// links) without rebuilding y*_i per hypothesis.
func (id *Identifier) Identify(y []float64) Result {
	yt := id.model.Residual(y)
	base := mat.SqNorm(yt)
	best := Result{Flow: -1, ResidualSq: base}
	for i := range id.theta {
		if id.theta[i] == nil || id.thetaTildeSq[i] == 0 {
			continue
		}
		dot := mat.Dot(id.thetaTilde[i], yt)
		resid := base - dot*dot/id.thetaTildeSq[i]
		if best.Flow < 0 || resid < best.ResidualSq {
			fhat := dot / id.thetaTildeSq[i]
			best = Result{
				Flow:       i,
				Magnitude:  fhat,
				Bytes:      id.quantify(i, fhat),
				ResidualSq: resid,
			}
		}
	}
	return best
}

// IdentifyNaive recomputes y*_i with Equation (1) and projects it for each
// hypothesis, exactly as written in the paper. It is O(flows x links^2)
// and exists to validate the closed form used by Identify (the two must
// agree; see the ablation benchmark).
func (id *Identifier) IdentifyNaive(y []float64) Result {
	yc := id.model.center(y)
	yt := mat.MulVec(id.model.ct, yc)
	best := Result{Flow: -1, ResidualSq: math.Inf(1)}
	for i := range id.theta {
		if id.theta[i] == nil || id.thetaTildeSq[i] == 0 {
			continue
		}
		fhat := mat.Dot(id.thetaTilde[i], yt) / id.thetaTildeSq[i]
		// y*_i = y - theta_i fhat
		ystar := mat.CloneVec(yc)
		mat.AddScaled(ystar, -fhat, id.theta[i])
		resid := mat.SqNorm(mat.MulVec(id.model.ct, ystar))
		if resid < best.ResidualSq {
			best = Result{Flow: i, Magnitude: fhat, Bytes: id.quantify(i, fhat), ResidualSq: resid}
		}
	}
	return best
}

// quantify computes Abar_i^T y' for y' = theta_i * fhat (Section 5.3):
// the anomalous traffic on each affected link, averaged through the
// column-normalized routing matrix, which for a single flow reduces to
// fhat * (A_i^T A_i / (||A_i|| * sum(A_i))) = fhat / ||A_i|| for a 0/1
// column.
func (id *Identifier) quantify(flow int, fhat float64) float64 {
	if id.aSum[flow] == 0 {
		return 0
	}
	// Abar_i^T theta_i = (A_i^T A_i) / (sum(A_i) * ||A_i||)
	//                  = ||A_i||^2 / (sum * norm)
	return fhat * id.aNorm[flow] * id.aNorm[flow] / (id.aSum[flow] * id.aNorm[flow])
}

// DetectabilityThreshold returns the minimum number of anomalous bytes
// b_i in flow i that guarantees detection at the SPE threshold delta
// (Section 5.4): b_i > 2*delta / (||C~ theta_i|| * ||A_i||). delta is the
// square root of the Q-statistic limit (the limit applies to SPE, which
// is a squared norm). Flows aligned with the normal subspace have small
// ||C~ theta_i|| and thus a high threshold; a flow with a zero projection
// is undetectable and the threshold is +Inf.
func (id *Identifier) DetectabilityThreshold(flow int, delta float64) float64 {
	if flow < 0 || flow >= len(id.theta) {
		panic(fmt.Sprintf("core: flow %d out of range %d", flow, len(id.theta)))
	}
	if delta < 0 {
		panic(fmt.Sprintf("core: delta %v < 0", delta))
	}
	if id.theta[flow] == nil {
		return math.Inf(1)
	}
	proj := math.Sqrt(id.thetaTildeSq[flow])
	if proj == 0 {
		return math.Inf(1)
	}
	return 2 * delta / (proj * id.aNorm[flow])
}

// DetectabilityThresholds returns the sufficient detection threshold (in
// bytes) for every flow at the given SPE limit, with +Inf for flows the
// model cannot detect at all.
func (id *Identifier) DetectabilityThresholds(limit float64) []float64 {
	delta := math.Sqrt(limit)
	out := make([]float64, len(id.theta))
	for f := range out {
		out[f] = id.DetectabilityThreshold(f, delta)
	}
	return out
}

// MultiResult is the outcome of multi-flow identification (Section 7.2).
type MultiResult struct {
	// Candidate is the index into the candidate set that best explains
	// the residual.
	Candidate int
	// Flows are the OD flows of that candidate.
	Flows []int
	// Magnitudes are the fitted per-flow intensities f (one per flow).
	Magnitudes []float64
	// Bytes are per-flow quantification estimates.
	Bytes []float64
	// ResidualSq is the remaining ||C~ y*||^2.
	ResidualSq float64
}

// IdentifyMulti generalizes identification to anomalies spanning several
// OD flows with different intensities: each candidate is a set of flows;
// theta_i becomes the matrix Theta_i with one normalized routing column
// per flow and f_i a vector fitted by least squares (Section 7.2,
// following Dunia & Qin). The candidate minimizing the remaining residual
// wins. Candidates whose flows are all unroutable are skipped; if every
// candidate is skipped, Candidate is -1.
func (id *Identifier) IdentifyMulti(y []float64, candidates [][]int) MultiResult {
	yt := id.model.Residual(y)
	best := MultiResult{Candidate: -1, ResidualSq: math.Inf(1)}
	for ci, flows := range candidates {
		var usable []int
		for _, f := range flows {
			if f < 0 || f >= len(id.theta) {
				panic(fmt.Sprintf("core: candidate %d references flow %d out of range %d", ci, f, len(id.theta)))
			}
			if id.theta[f] != nil {
				usable = append(usable, f)
			}
		}
		if len(usable) == 0 {
			continue
		}
		m := len(yt)
		thetaT := mat.Zeros(m, len(usable))
		for j, f := range usable {
			thetaT.SetCol(j, id.thetaTilde[f])
		}
		fvec, err := mat.SolveLS(thetaT, yt)
		if err != nil {
			// Collinear candidate directions (e.g. identical routes);
			// skip rather than fabricate a solution.
			continue
		}
		resid := mat.CloneVec(yt)
		for j, f := range usable {
			mat.AddScaled(resid, -fvec[j], id.thetaTilde[f])
		}
		rsq := mat.SqNorm(resid)
		if rsq < best.ResidualSq {
			bytes := make([]float64, len(usable))
			for j, f := range usable {
				bytes[j] = id.quantify(f, fvec[j])
			}
			best = MultiResult{
				Candidate:  ci,
				Flows:      append([]int(nil), usable...),
				Magnitudes: fvec,
				Bytes:      bytes,
				ResidualSq: rsq,
			}
		}
	}
	return best
}
