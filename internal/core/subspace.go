package core

import (
	"errors"
	"fmt"
	"math"

	"netanomaly/internal/mat"
	"netanomaly/internal/stats"
)

// DefaultSigma is the deviation threshold of the paper's separation
// procedure: the first principal axis whose projection contains a 3-sigma
// deviation from its mean starts the anomalous subspace (Section 4.3).
const DefaultSigma = 3.0

// SeparateAxes applies the threshold-based separation procedure to the
// fitted PCA: it examines the projection u_i on each principal axis in
// order and returns r, the number of leading axes assigned to the normal
// subspace. Axis i is the first (0-based index r) whose projection
// deviates from its mean by more than sigma standard deviations at any
// timestep; that axis and all subsequent ones are anomalous.
//
// The returned r is clamped to [1, m-1] so that both subspaces are
// non-empty: r = 0 would leave no traffic model, and r = m would make
// detection impossible (the paper's datasets yield r = 4).
func SeparateAxes(p *PCA, sigma float64) int {
	if sigma <= 0 {
		panic(fmt.Sprintf("core: separation sigma %v <= 0", sigma))
	}
	m := p.NumComponents()
	r := m
	for i := 0; i < m; i++ {
		u := p.Projections.Col(i)
		mean, std := stats.MeanStd(u)
		if std == 0 {
			continue
		}
		violated := false
		for _, v := range u {
			if v > mean+sigma*std || v < mean-sigma*std {
				violated = true
				break
			}
		}
		if violated {
			r = i
			break
		}
	}
	if r < 1 {
		r = 1
	}
	if r > m-1 {
		r = m - 1
	}
	return r
}

// Model is a fitted subspace separation: the projection operators onto the
// normal subspace S (spanned by the first r principal axes) and the
// anomalous subspace S~, plus what the Q-statistic needs.
type Model struct {
	rank  int
	means []float64
	// p is the m x rank matrix of normal principal axes (orthonormal
	// columns); the low-rank identity ||ytilde||^2 = ||yc||^2 - ||P^T yc||^2
	// lets batched SPE run in O(m*rank) per bin instead of O(m^2).
	p *mat.Dense
	// pmeans = P^T means, precomputed so batched SPE can project raw
	// (uncentered) measurements and correct afterwards.
	pmeans []float64
	// c = P P^T projects onto S; ct = I - P P^T projects onto S~.
	c, ct *mat.Dense
	// residVariances are the variances lambda_j for the anomalous axes
	// j > r, used by the Q-statistic.
	residVariances []float64
}

// Build constructs the subspace model from a fitted PCA with the first
// rank axes normal. rank must be in [1, m-1].
func Build(p *PCA, rank int) (*Model, error) {
	m := p.NumComponents()
	if rank < 1 || rank >= m {
		return nil, fmt.Errorf("core: rank %d out of [1, %d]", rank, m-1)
	}
	pm := mat.Zeros(m, rank)
	for j := 0; j < rank; j++ {
		pm.SetCol(j, p.Components.Col(j))
	}
	c := mat.Mul(pm, pm.T())
	ct := mat.Sub(mat.Identity(m), c)
	// Variances that are numerically zero relative to the leading one are
	// decomposition round-off, not signal; floor them so the Q-statistic
	// recognizes a genuinely degenerate residual subspace.
	resid := mat.CloneVec(p.Variances[rank:])
	floor := 1e-12 * p.Variances[0]
	for i, v := range resid {
		if v < floor {
			resid[i] = 0
		}
	}
	return &Model{
		rank:           rank,
		means:          mat.CloneVec(p.Means),
		p:              pm,
		pmeans:         mat.MulTVec(pm, p.Means),
		c:              c,
		ct:             ct,
		residVariances: resid,
	}, nil
}

// BuildAuto fits the separation with SeparateAxes at DefaultSigma and
// builds the model.
func BuildAuto(p *PCA) (*Model, error) {
	return Build(p, SeparateAxes(p, DefaultSigma))
}

// Rank returns r, the dimension of the normal subspace.
func (m *Model) Rank() int { return m.rank }

// NumLinks returns the number of links the model was fitted on.
func (m *Model) NumLinks() int { return len(m.means) }

// Means returns a copy of the per-link means the model removes.
func (m *Model) Means() []float64 { return mat.CloneVec(m.means) }

// center returns y - means, validating the dimension.
func (m *Model) center(y []float64) []float64 {
	if len(y) != len(m.means) {
		panic(fmt.Sprintf("core: measurement length %d != model links %d", len(y), len(m.means)))
	}
	return mat.SubVec(y, m.means)
}

// Decompose splits a link measurement vector y into its modeled part
// yhat (projection onto S) and residual part ytilde (projection onto S~),
// working on the mean-centered vector: y - mean = yhat + ytilde.
func (m *Model) Decompose(y []float64) (yhat, ytilde []float64) {
	yc := m.center(y)
	yhat = mat.MulVec(m.c, yc)
	ytilde = mat.MulVec(m.ct, yc)
	return yhat, ytilde
}

// Residual returns the anomalous-subspace projection ytilde = C~ (y-mean).
func (m *Model) Residual(y []float64) []float64 {
	return mat.MulVec(m.ct, m.center(y))
}

// SPE returns the squared prediction error ||ytilde||^2 for the
// measurement vector y (Section 5.1).
func (m *Model) SPE(y []float64) float64 {
	return mat.SqNorm(m.Residual(y))
}

// ResidualOperator returns the projection matrix onto the anomalous
// subspace, C~ = I - P P^T. The returned matrix must not be modified.
func (m *Model) ResidualOperator() *mat.Dense { return m.ct }

// SPEBatch computes the squared prediction error for every row of the
// measurement matrix y (bins x links) in one matrix pass. Because P has
// orthonormal columns, ||ytilde||^2 = ||y-mean||^2 - ||P^T (y-mean)||^2,
// so the batch costs one bins x m x rank multiply (through the blocked
// kernels) plus two row-norm sweeps — O(m*rank) per bin instead of the
// O(m^2) residual matvec of SPE. Results agree with SPE to floating-point
// roundoff and are clamped at zero. If out has capacity for one value per
// row it is reused, otherwise a new slice is allocated.
func (m *Model) SPEBatch(y *mat.Dense, out []float64) []float64 {
	bins, links := y.Dims()
	if links != len(m.means) {
		panic(fmt.Sprintf("core: batch has %d links, model has %d", links, len(m.means)))
	}
	if cap(out) < bins {
		out = make([]float64, bins)
	}
	out = out[:bins]
	// Project each raw row (u = P^T y) and correct for the mean
	// afterwards: P^T (y - mean) = P^T y - pmeans. The accumulation
	// iterates links-major so the inner loop runs over a contiguous
	// rank-length row of P, and the only scratch is one rank-sized
	// buffer reused across the batch — no per-call matrix allocation on
	// the streaming hot path.
	u := make([]float64, m.rank)
	ydata := y.RawData()
	pdata := m.p.RawData()
	rank := m.rank
	for b := 0; b < bins; b++ {
		row := ydata[b*links : (b+1)*links]
		var sq float64
		for k, v := range row {
			d := v - m.means[k]
			sq += d * d
		}
		for j := range u {
			u[j] = 0
		}
		// u += row * P, four P rows per pass (the mulStripe unroll).
		var k int
		for ; k+4 <= links; k += 4 {
			v0, v1, v2, v3 := row[k], row[k+1], row[k+2], row[k+3]
			p0 := pdata[k*rank : (k+1)*rank]
			p1 := pdata[(k+1)*rank : (k+2)*rank]
			p2 := pdata[(k+2)*rank : (k+3)*rank]
			p3 := pdata[(k+3)*rank : (k+4)*rank]
			for j := range u {
				u[j] += v0*p0[j] + v1*p1[j] + v2*p2[j] + v3*p3[j]
			}
		}
		for ; k < links; k++ {
			v := row[k]
			prow := pdata[k*rank : (k+1)*rank]
			for j, pv := range prow {
				u[j] += v * pv
			}
		}
		var proj float64
		for j, v := range u {
			d := v - m.pmeans[j]
			proj += d * d
		}
		spe := sq - proj
		if spe < 0 {
			spe = 0
		}
		out[b] = spe
	}
	return out
}

// ErrDegenerateResidual is returned by QLimit when the anomalous subspace
// carries no variance, leaving the Q-statistic undefined.
var ErrDegenerateResidual = errors.New("core: anomalous subspace has zero variance")

// QLimit returns the threshold delta^2_alpha for the SPE at the given
// confidence level (e.g. 0.999 for the paper's 99.9%), using the result of
// Jackson and Mudholkar (Section 5.1):
//
//	delta^2 = phi1 * [ c_a*sqrt(2*phi2*h0^2)/phi1 + 1 +
//	                   phi2*h0*(h0-1)/phi1^2 ]^(1/h0)
//
// with phi_i = sum_{j>r} lambda_j^i and h0 = 1 - 2*phi1*phi3/(3*phi2^2).
// The result holds regardless of how many components are retained, and is
// robust to departures from Gaussianity (Jensen and Solomon, cited in the
// paper).
func (m *Model) QLimit(confidence float64) (float64, error) {
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("core: confidence %v out of (0,1)", confidence)
	}
	var phi1, phi2, phi3 float64
	for _, l := range m.residVariances {
		phi1 += l
		phi2 += l * l
		phi3 += l * l * l
	}
	if phi1 <= 0 || phi2 <= 0 {
		return 0, ErrDegenerateResidual
	}
	h0 := 1 - 2*phi1*phi3/(3*phi2*phi2)
	ca := stats.NormalQuantile(confidence)
	if h0 <= 0 {
		// Degenerate eigenvalue structure; fall back to the one-term
		// normal approximation SPE ~ N(phi1, 2*phi2).
		return phi1 + ca*math.Sqrt(2*phi2), nil
	}
	term := ca*math.Sqrt(2*phi2)*h0/phi1 + 1 + phi2*h0*(h0-1)/(phi1*phi1)
	if term <= 0 {
		return 0, ErrDegenerateResidual
	}
	return phi1 * math.Pow(term, 1/h0), nil
}
