package core

import (
	"math"
	"math/rand"
	"testing"

	"netanomaly/internal/mat"
	"netanomaly/internal/stats"
)

func fitModel(t *testing.T, y *mat.Dense, rank int) *Model {
	t.Helper()
	p, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	if rank == 0 {
		rank = SeparateAxes(p, DefaultSigma)
	}
	m, err := Build(p, rank)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSeparateAxesRange(t *testing.T) {
	_, _, y := testDataset(t, 1, 432)
	p, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	r := SeparateAxes(p, DefaultSigma)
	if r < 1 || r >= p.NumComponents() {
		t.Fatalf("rank %d out of [1,%d)", r, p.NumComponents())
	}
}

func TestSeparateAxesSpikeShrinksRank(t *testing.T) {
	// A giant spike in the measurements must push at least one early axis
	// into the anomalous subspace relative to clean data: rank must not
	// grow, and the spike's axis must violate 3 sigma.
	_, _, y := testDataset(t, 2, 432)
	pClean, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	rClean := SeparateAxes(pClean, DefaultSigma)

	dirty := y.Clone()
	row := dirty.RowView(200)
	for j := range row {
		row[j] *= 4 // network-wide burst at one bin
	}
	pDirty, err := Fit(dirty)
	if err != nil {
		t.Fatal(err)
	}
	rDirty := SeparateAxes(pDirty, DefaultSigma)
	if rDirty > rClean+1 {
		t.Fatalf("spike increased rank from %d to %d", rClean, rDirty)
	}
}

func TestSeparateAxesSigmaMonotone(t *testing.T) {
	// Looser sigma cannot shrink the normal subspace.
	_, _, y := testDataset(t, 3, 432)
	p, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	r3 := SeparateAxes(p, 3)
	r6 := SeparateAxes(p, 6)
	if r6 < r3 {
		t.Fatalf("sigma=6 rank %d < sigma=3 rank %d", r6, r3)
	}
}

func TestSeparateAxesPanics(t *testing.T) {
	_, _, y := testDataset(t, 4, 288)
	p, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SeparateAxes(p, 0)
}

func TestBuildRankValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	y := randMatrix(rng, 30, 5)
	p, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{0, 5, -1, 6} {
		if _, err := Build(p, r); err == nil {
			t.Fatalf("rank %d must be rejected", r)
		}
	}
	if _, err := Build(p, 2); err != nil {
		t.Fatalf("valid rank rejected: %v", err)
	}
}

func TestProjectionOperatorsComplementary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	y := randMatrix(rng, 40, 6)
	m := fitModel(t, y, 3)
	// C + C~ = I
	sum := mat.Add(m.c, m.ct)
	if !mat.EqualApprox(sum, mat.Identity(6), 1e-10) {
		t.Fatal("C + C~ != I")
	}
	// Both idempotent.
	if !mat.EqualApprox(mat.Mul(m.c, m.c), m.c, 1e-10) {
		t.Fatal("C not idempotent")
	}
	if !mat.EqualApprox(mat.Mul(m.ct, m.ct), m.ct, 1e-10) {
		t.Fatal("C~ not idempotent")
	}
	// Orthogonal: C * C~ = 0.
	if mat.Mul(m.c, m.ct).MaxAbs() > 1e-10 {
		t.Fatal("C and C~ not orthogonal")
	}
}

func TestDecomposeReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	y := randMatrix(rng, 40, 6)
	m := fitModel(t, y, 2)
	v := y.Row(7)
	yhat, ytilde := m.Decompose(v)
	recon := mat.AddVec(mat.AddVec(yhat, ytilde), m.Means())
	if !mat.VecEqualApprox(recon, v, 1e-9) {
		t.Fatal("yhat + ytilde + mean != y")
	}
	// The two parts are orthogonal.
	if math.Abs(mat.Dot(yhat, ytilde)) > 1e-8 {
		t.Fatal("modeled and residual parts not orthogonal")
	}
}

func TestSPEOfNormalSubspaceVectorIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	y := randMatrix(rng, 40, 6)
	p, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A vector along v_1 offset by the means lies in S: SPE ~ 0.
	v1 := p.Components.Col(0)
	vec := mat.AddVec(m.Means(), v1)
	if spe := m.SPE(vec); spe > 1e-15 {
		t.Fatalf("SPE of normal-subspace vector = %v", spe)
	}
	// A vector along v_m lies in S~: SPE ~ 1.
	vm := p.Components.Col(5)
	vec = mat.AddVec(m.Means(), vm)
	if spe := m.SPE(vec); math.Abs(spe-1) > 1e-9 {
		t.Fatalf("SPE of anomalous-subspace unit vector = %v want 1", spe)
	}
}

func TestSPEAdditivity(t *testing.T) {
	// SPE(y) = ||y-mean||^2 - ||C(y-mean)||^2 (Pythagoras).
	rng := rand.New(rand.NewSource(5))
	y := randMatrix(rng, 40, 6)
	m := fitModel(t, y, 2)
	v := y.Row(11)
	yhat, _ := m.Decompose(v)
	centered := mat.SubVec(v, m.Means())
	want := mat.SqNorm(centered) - mat.SqNorm(yhat)
	if got := m.SPE(v); math.Abs(got-want) > 1e-8*(1+want) {
		t.Fatalf("SPE = %v want %v", got, want)
	}
}

func TestModelAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	y := randMatrix(rng, 40, 6)
	m := fitModel(t, y, 2)
	if m.Rank() != 2 {
		t.Fatalf("Rank = %d", m.Rank())
	}
	if m.NumLinks() != 6 {
		t.Fatalf("NumLinks = %d", m.NumLinks())
	}
	means := m.Means()
	means[0] = 1e18 // mutating the copy must not affect the model
	if m.Means()[0] == 1e18 {
		t.Fatal("Means must return a copy")
	}
}

func TestSPEDimensionPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	y := randMatrix(rng, 40, 6)
	m := fitModel(t, y, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.SPE([]float64{1, 2, 3})
}

func TestQLimitMonotoneInConfidence(t *testing.T) {
	_, _, y := testDataset(t, 8, 432)
	m := fitModel(t, y, 0)
	l995, err := m.QLimit(0.995)
	if err != nil {
		t.Fatal(err)
	}
	l999, err := m.QLimit(0.999)
	if err != nil {
		t.Fatal(err)
	}
	if l999 <= l995 || l995 <= 0 {
		t.Fatalf("QLimit not increasing: 99.5%% = %v, 99.9%% = %v", l995, l999)
	}
}

func TestQLimitBadConfidence(t *testing.T) {
	_, _, y := testDataset(t, 9, 288)
	m := fitModel(t, y, 0)
	for _, c := range []float64{0, 1, -0.5, 1.5} {
		if _, err := m.QLimit(c); err == nil {
			t.Fatalf("confidence %v must be rejected", c)
		}
	}
}

func TestQLimitDegenerateResidual(t *testing.T) {
	// Data of exact rank 2 with r=2: residual variance is zero.
	rng := rand.New(rand.NewSource(10))
	base := randMatrix(rng, 30, 2)
	mix := randMatrix(rng, 2, 5)
	y := mat.Mul(base, mix) // rank 2, 5 columns
	p, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.QLimit(0.999); err != ErrDegenerateResidual {
		t.Fatalf("expected ErrDegenerateResidual, got %v", err)
	}
}

func TestQLimitFalseAlarmRateGaussian(t *testing.T) {
	// On multivariate Gaussian data the Q-statistic must deliver its
	// nominal false alarm rate. Build data with a known low-rank signal
	// plus noise, fit on one sample, test on fresh data from the same
	// distribution.
	rng := rand.New(rand.NewSource(11))
	const dim = 10
	const n = 4000
	gen := func(rows int) *mat.Dense {
		m := mat.Zeros(rows, dim)
		for i := 0; i < rows; i++ {
			// Strong 2-D signal + isotropic noise.
			s1, s2 := 10*rng.NormFloat64(), 6*rng.NormFloat64()
			row := m.RowView(i)
			for j := 0; j < dim; j++ {
				row[j] = s1*math.Sin(float64(j)) + s2*math.Cos(2*float64(j)) + rng.NormFloat64()
			}
		}
		return m
	}
	train := gen(n)
	p, err := Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	limit, err := m.QLimit(0.995)
	if err != nil {
		t.Fatal(err)
	}
	test := gen(n)
	var alarms int
	for i := 0; i < n; i++ {
		if m.SPE(test.Row(i)) > limit {
			alarms++
		}
	}
	rate := float64(alarms) / float64(n)
	// Nominal 0.5%; allow generous sampling slack.
	if rate > 0.02 {
		t.Fatalf("false alarm rate %v far above nominal 0.005", rate)
	}
}

func TestResidualVariancesMatchSPEMean(t *testing.T) {
	// E[SPE] over the training data should match phi1 = sum of residual
	// variances (up to the (t-1)/t normalization).
	_, _, y := testDataset(t, 12, 432)
	m := fitModel(t, y, 0)
	rows, _ := y.Dims()
	spes := make([]float64, rows)
	for b := 0; b < rows; b++ {
		spes[b] = m.SPE(y.Row(b))
	}
	var phi1 float64
	for _, l := range m.residVariances {
		phi1 += l
	}
	meanSPE := stats.Mean(spes)
	ratio := meanSPE / phi1
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("mean SPE %v vs phi1 %v (ratio %v)", meanSPE, phi1, ratio)
	}
}
