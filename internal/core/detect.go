package core

import (
	"fmt"

	"netanomaly/internal/mat"
)

// Detection is the outcome of the SPE test at one timestep.
type Detection struct {
	// Bin is the time index within the series (0 for single-shot tests).
	Bin int
	// SPE is the squared prediction error ||ytilde||^2.
	SPE float64
	// Threshold is the Q-statistic limit delta^2_alpha in force.
	Threshold float64
	// Alarm is true when SPE exceeds the threshold.
	Alarm bool
}

// Detector couples a subspace model with a fixed confidence level.
type Detector struct {
	model      *Model
	confidence float64
	limit      float64
}

// NewDetector returns a detector at the given confidence (e.g. 0.999).
func NewDetector(m *Model, confidence float64) (*Detector, error) {
	limit, err := m.QLimit(confidence)
	if err != nil {
		return nil, err
	}
	return &Detector{model: m, confidence: confidence, limit: limit}, nil
}

// Model returns the underlying subspace model.
func (d *Detector) Model() *Model { return d.model }

// Confidence returns the configured confidence level.
func (d *Detector) Confidence() float64 { return d.confidence }

// Limit returns the Q-statistic threshold delta^2_alpha.
func (d *Detector) Limit() float64 { return d.limit }

// Detect runs the SPE test on one measurement vector.
func (d *Detector) Detect(y []float64) Detection {
	spe := d.model.SPE(y)
	return Detection{SPE: spe, Threshold: d.limit, Alarm: spe > d.limit}
}

// DetectSeries runs the SPE test on every row of the measurement matrix
// (bins x links) and returns one Detection per bin.
func (d *Detector) DetectSeries(y *mat.Dense) []Detection {
	t, m := y.Dims()
	if m != d.model.NumLinks() {
		panic(fmt.Sprintf("core: series has %d links, model has %d", m, d.model.NumLinks()))
	}
	out := make([]Detection, t)
	for b := 0; b < t; b++ {
		det := d.Detect(y.Row(b))
		det.Bin = b
		out[b] = det
	}
	return out
}

// DetectBatch runs the SPE test on every row of the measurement matrix
// (bins x links) through the batched low-rank SPE kernel: one matrix pass
// for the whole block instead of a per-vector projection loop. It matches
// DetectSeries up to floating-point roundoff in SPE.
func (d *Detector) DetectBatch(y *mat.Dense) []Detection {
	spes := d.model.SPEBatch(y, nil)
	out := make([]Detection, len(spes))
	for b, spe := range spes {
		out[b] = Detection{Bin: b, SPE: spe, Threshold: d.limit, Alarm: spe > d.limit}
	}
	return out
}

// Diagnosis is a fully diagnosed volume anomaly: when it happened, how
// anomalous the traffic was, which OD flow caused it, and how many bytes
// were involved (the paper's three-step output).
type Diagnosis struct {
	Bin       int
	SPE       float64
	Threshold float64
	Flow      int
	Bytes     float64
}

// Diagnoser runs the complete detect-identify-quantify pipeline.
type Diagnoser struct {
	det *Detector
	id  *Identifier
}

// Options configures NewDiagnoser.
type Options struct {
	// Confidence is the detection confidence level; default 0.999.
	Confidence float64
	// Sigma is the subspace separation threshold; default 3.
	Sigma float64
	// Rank fixes the normal subspace dimension; 0 selects it with the
	// sigma rule (the paper's procedure).
	Rank int
}

func (o *Options) fillDefaults() {
	if o.Confidence == 0 {
		o.Confidence = 0.999
	}
	if o.Sigma == 0 {
		o.Sigma = DefaultSigma
	}
}

// NewDiagnoser fits the subspace model on the measurement matrix y
// (bins x links) and prepares identification against the routing matrix a
// (links x flows).
func NewDiagnoser(y, a *mat.Dense, opts Options) (*Diagnoser, error) {
	opts.fillDefaults()
	pca, err := Fit(y)
	if err != nil {
		return nil, err
	}
	rank := opts.Rank
	if rank == 0 {
		rank = SeparateAxes(pca, opts.Sigma)
	}
	model, err := Build(pca, rank)
	if err != nil {
		return nil, err
	}
	det, err := NewDetector(model, opts.Confidence)
	if err != nil {
		return nil, err
	}
	id, err := NewIdentifier(model, a)
	if err != nil {
		return nil, err
	}
	return &Diagnoser{det: det, id: id}, nil
}

// Detector exposes the detection stage.
func (d *Diagnoser) Detector() *Detector { return d.det }

// Identifier exposes the identification stage.
func (d *Diagnoser) Identifier() *Identifier { return d.id }

// DiagnoseAt runs the three steps on one measurement vector. ok is false
// when no anomaly is detected (identification is not attempted, matching
// the paper's evaluation protocol).
func (d *Diagnoser) DiagnoseAt(y []float64) (diag Diagnosis, ok bool) {
	det := d.det.Detect(y)
	if !det.Alarm {
		return Diagnosis{SPE: det.SPE, Threshold: det.Threshold, Flow: -1}, false
	}
	res := d.id.Identify(y)
	return Diagnosis{
		SPE:       det.SPE,
		Threshold: det.Threshold,
		Flow:      res.Flow,
		Bytes:     res.Bytes,
	}, true
}

// DiagnoseBatch runs the three-step pipeline over every row of the
// measurement matrix (bins x links) in one batched pass: SPE for the whole
// block comes from a single bins x m x rank multiply (Model.SPEBatch), and
// only the rows that alarm pay for identification and quantification. It
// returns one Diagnosis per row (Flow is -1 for quiet rows) and a parallel
// slice marking which rows are anomalous. Bin is the row index within the
// batch; streaming callers re-number it with their own sequence.
func (d *Diagnoser) DiagnoseBatch(y *mat.Dense) ([]Diagnosis, []bool) {
	bins, m := y.Dims()
	if m != d.det.model.NumLinks() {
		panic(fmt.Sprintf("core: batch has %d links, model has %d", m, d.det.model.NumLinks()))
	}
	spes := d.det.model.SPEBatch(y, nil)
	diags := make([]Diagnosis, bins)
	flags := make([]bool, bins)
	for b, spe := range spes {
		diag := Diagnosis{Bin: b, SPE: spe, Threshold: d.det.limit, Flow: -1}
		if spe > d.det.limit {
			res := d.id.Identify(y.RowView(b))
			diag.Flow = res.Flow
			diag.Bytes = res.Bytes
			flags[b] = true
		}
		diags[b] = diag
	}
	return diags, flags
}

// DiagnoseSeries runs the pipeline over every bin of the measurement
// matrix and returns the diagnosed anomalies, in time order.
func (d *Diagnoser) DiagnoseSeries(y *mat.Dense) []Diagnosis {
	t, m := y.Dims()
	if m != d.det.model.NumLinks() {
		panic(fmt.Sprintf("core: series has %d links, model has %d", m, d.det.model.NumLinks()))
	}
	var out []Diagnosis
	for b := 0; b < t; b++ {
		if diag, ok := d.DiagnoseAt(y.Row(b)); ok {
			diag.Bin = b
			out = append(out, diag)
		}
	}
	return out
}
