package core

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"netanomaly/internal/mat"
)

// snapshotHistory builds a small deterministic link-load history with
// enough structure for a rank-deficient normal subspace: a shared
// diurnal component plus per-link phase and a little deterministic
// noise.
func snapshotHistory(bins, links int) *mat.Dense {
	h := mat.Zeros(bins, links)
	for b := 0; b < bins; b++ {
		for l := 0; l < links; l++ {
			base := 1e6 * float64(l+1)
			diurnal := 1 + 0.3*math.Sin(2*math.Pi*float64(b)/24+float64(l))
			noise := 1 + 0.005*math.Sin(float64(b*(l+3)))*math.Cos(float64(7*b+l))
			h.Set(b, l, base*diurnal*noise)
		}
	}
	return h
}

// snapshotOnline builds the small subspace detector the taxonomy tests
// and the fuzz harness restore into.
func snapshotOnline(t testing.TB, links int) *OnlineDetector {
	t.Helper()
	history := snapshotHistory(48, links)
	det, err := NewOnlineDetector(history, mat.Identity(links), OnlineConfig{Window: 48})
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// TestSnapshotRoundTripCanonical pins the tentpole contract at the
// detector level: state moved through Snapshot/Restore yields the same
// alarm stream as the original, and an accepted snapshot re-encodes
// byte-for-byte (the canonical-encoding property the fuzz harness
// relies on).
func TestSnapshotRoundTripCanonical(t *testing.T) {
	const links = 4
	orig := snapshotOnline(t, links)
	probe := snapshotHistory(64, links)
	if _, err := orig.ProcessBatch(mat.NewDense(8, links, probe.RawData()[:8*links])); err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	if err := orig.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored := snapshotOnline(t, links)
	if err := restored.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}

	var again bytes.Buffer
	if err := restored.Snapshot(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap.Bytes(), again.Bytes()) {
		t.Fatalf("restore→snapshot is not byte-identical: %d vs %d bytes", snap.Len(), again.Len())
	}

	if got, want := restored.Stats(), orig.Stats(); got != want {
		t.Fatalf("restored stats %+v, original %+v", got, want)
	}
	tail := mat.NewDense(16, links, probe.RawData()[8*links:24*links])
	// Spike one bin so alarm payloads (not just counts) are compared.
	tail.Set(5, 2, tail.At(5, 2)*3)
	wantAlarms, err := orig.ProcessBatch(tail)
	if err != nil {
		t.Fatal(err)
	}
	gotAlarms, err := restored.ProcessBatch(tail)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotAlarms, wantAlarms) {
		t.Fatalf("restored alarm stream diverged:\n got %+v\nwant %+v", gotAlarms, wantAlarms)
	}
	if len(wantAlarms) == 0 {
		t.Fatal("probe spike raised no alarms; the equality check proved nothing")
	}
}

// TestSnapshotTruncationClassified cuts a valid snapshot at every
// length and requires each prefix to fail as truncation — wrapping
// io.ErrUnexpectedEOF, never a panic, never a misclassification.
func TestSnapshotTruncationClassified(t *testing.T) {
	const links = 4
	var snap bytes.Buffer
	if err := snapshotOnline(t, links).Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	target := snapshotOnline(t, links)
	for cut := 0; cut < snap.Len(); cut++ {
		err := target.Restore(bytes.NewReader(snap.Bytes()[:cut]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("prefix of %d/%d bytes: got %v, want io.ErrUnexpectedEOF", cut, snap.Len(), err)
		}
	}
}

// TestSnapshotCorruptionClassified flips the structural invariants one
// at a time — magic, version, kind byte, payload length — and requires
// each to land in the right taxonomy bucket.
func TestSnapshotCorruptionClassified(t *testing.T) {
	const links = 4
	var snap bytes.Buffer
	if err := snapshotOnline(t, links).Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	valid := snap.Bytes()
	mutate := func(idx int, b byte) []byte {
		out := append([]byte(nil), valid...)
		out[idx] = b
		return out
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"bad magic", mutate(0, 'X'), ErrSnapshotFormat},
		{"bad version", mutate(4, 99), ErrSnapshotFormat},
		{"unknown kind", mutate(5, 0x7f), ErrSnapshotFormat},
		// A view envelope is well-formed, just not a detector state —
		// the mismatch bucket, same as any other wrong kind.
		{"engine kind", mutate(5, SnapKindView), ErrSnapshotMismatch},
		{"wrong detector kind", mutate(5, SnapKindEWMA), ErrSnapshotMismatch},
		// Shrinking the length prefix delivers a whole (short) payload,
		// so running off its end is a lying length — corruption.
		{"shrunk payload length", mutate(6, valid[6]-8), ErrSnapshotFormat},
		// Growing it makes the stream end before the promised payload —
		// truncation.
		{"grown payload length", mutate(6, valid[6]+8), io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			target := snapshotOnline(t, links)
			if err := target.Restore(bytes.NewReader(tc.data)); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestSnapshotWrongKindMismatch offers one backend's state to another
// backend of the same package and requires ErrSnapshotMismatch — the
// well-formed-but-not-yours bucket.
func TestSnapshotWrongKindMismatch(t *testing.T) {
	const links = 4
	var snap bytes.Buffer
	if err := snapshotOnline(t, links).Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	sketch, err := NewSketchDetector(snapshotHistory(48, links), mat.Identity(links), SketchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sketch.Restore(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("subspace state restored into sketch: %v", err)
	}
}

// TestSnapshotWrongLinksMismatch restores a 4-link subspace snapshot
// into a 6-link detector and requires ErrSnapshotMismatch.
func TestSnapshotWrongLinksMismatch(t *testing.T) {
	var snap bytes.Buffer
	if err := snapshotOnline(t, 4).Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	wide := snapshotOnline(t, 6)
	if err := wide.Restore(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("4-link state restored into 6-link detector: %v", err)
	}
}

// FuzzDecodeSnapshot throws arbitrary bytes at the restore path of a
// real detector: any input must either restore cleanly or fail with a
// classified error (format, mismatch, or truncation) — never a panic —
// and an accepted envelope must re-encode byte-for-byte.
func FuzzDecodeSnapshot(f *testing.F) {
	const links = 4
	var valid bytes.Buffer
	if err := snapshotOnline(f, links).Snapshot(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte("NAMS"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid.Bytes()...)
	corrupt[5] = SnapKindSketch
	f.Add(corrupt)
	// One shared detector: Restore decodes into locals and commits only
	// on success, so a failed iteration leaves no partial state behind
	// and a successful one fully defines the state the canonical check
	// re-encodes.
	det := snapshotOnline(f, links)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		err := det.Restore(r)
		if err != nil {
			if !errors.Is(err, ErrSnapshotFormat) &&
				!errors.Is(err, ErrSnapshotMismatch) &&
				!errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("unclassified restore error: %v", err)
			}
			return
		}
		// Restore consumes exactly one envelope; canonical re-encoding
		// must reproduce the consumed prefix bit-for-bit.
		consumed := data[:len(data)-r.Len()]
		var out bytes.Buffer
		if err := det.Snapshot(&out); err != nil {
			t.Fatalf("snapshot after accepted restore: %v", err)
		}
		if !bytes.Equal(out.Bytes(), consumed) {
			t.Fatalf("accepted envelope is not canonical: consumed %d bytes, re-encoded %d", len(consumed), out.Len())
		}
	})
}
