package core

import (
	"math"
	"testing"

	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
	"netanomaly/internal/traffic"
)

// fitPipeline builds model + identifier on a simulated dataset.
func fitPipeline(t *testing.T, seed int64, bins int) (*topology.Topology, *mat.Dense, *Model, *Identifier, float64) {
	t.Helper()
	topo, x, y := testDataset(t, seed, bins)
	p, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(p, SeparateAxes(p, DefaultSigma))
	if err != nil {
		t.Fatal(err)
	}
	id, err := NewIdentifier(m, topo.RoutingMatrix())
	if err != nil {
		t.Fatal(err)
	}
	limit, err := m.QLimit(0.999)
	if err != nil {
		t.Fatal(err)
	}
	return topo, x, m, id, limit
}

// spikedLinkLoad returns the link-load vector at bin with a spike of size
// bytes added to the given flow.
func spikedLinkLoad(topo *topology.Topology, x *mat.Dense, bin, flow int, size float64) []float64 {
	row := x.Row(bin)
	row[flow] += size
	return traffic.LinkLoadAt(topo, row)
}

func TestNewIdentifierDimensionMismatch(t *testing.T) {
	_, _, y := testDataset(t, 1, 288)
	p, _ := Fit(y)
	m, _ := Build(p, 4)
	if _, err := NewIdentifier(m, mat.Zeros(5, 7)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestIdentifyRecoversInjectedFlow(t *testing.T) {
	topo, x, m, id, limit := fitPipeline(t, 20, 1008)
	const size = 5e7 // comfortably detectable
	hits := 0
	trials := 0
	for flow := 3; flow < topo.NumFlows(); flow += 17 {
		for _, bin := range []int{111, 555, 901} {
			y := spikedLinkLoad(topo, x, bin, flow, size)
			if m.SPE(y) <= limit {
				continue // skip rare undetected combinations
			}
			trials++
			if res := id.Identify(y); res.Flow == flow {
				hits++
			}
		}
	}
	if trials < 10 {
		t.Fatalf("too few detectable trials: %d", trials)
	}
	if rate := float64(hits) / float64(trials); rate < 0.9 {
		t.Fatalf("identification rate %v too low (%d/%d)", rate, hits, trials)
	}
}

func TestIdentifyAgreesWithNaive(t *testing.T) {
	topo, x, _, id, _ := fitPipeline(t, 21, 432)
	for _, bin := range []int{50, 200, 400} {
		for _, flow := range []int{5, 40, 77} {
			y := spikedLinkLoad(topo, x, bin, flow, 4e7)
			fast := id.Identify(y)
			naive := id.IdentifyNaive(y)
			if fast.Flow != naive.Flow {
				t.Fatalf("bin %d flow %d: fast chose %d, naive chose %d", bin, flow, fast.Flow, naive.Flow)
			}
			if math.Abs(fast.Magnitude-naive.Magnitude) > 1e-6*(1+math.Abs(naive.Magnitude)) {
				t.Fatalf("magnitudes disagree: %v vs %v", fast.Magnitude, naive.Magnitude)
			}
			if math.Abs(fast.ResidualSq-naive.ResidualSq) > 1e-4*(1+naive.ResidualSq) {
				t.Fatalf("residuals disagree: %v vs %v", fast.ResidualSq, naive.ResidualSq)
			}
		}
	}
}

func TestQuantificationAccuracy(t *testing.T) {
	topo, x, m, id, limit := fitPipeline(t, 22, 1008)
	const size = 6e7
	var relErrSum float64
	var n int
	for flow := 1; flow < topo.NumFlows(); flow += 23 {
		y := spikedLinkLoad(topo, x, 300, flow, size)
		if m.SPE(y) <= limit {
			continue
		}
		res := id.Identify(y)
		if res.Flow != flow {
			continue
		}
		relErrSum += math.Abs(res.Bytes-size) / size
		n++
	}
	if n < 3 {
		t.Fatalf("too few identified trials: %d", n)
	}
	if mare := relErrSum / float64(n); mare > 0.25 {
		t.Fatalf("mean quantification error %v exceeds 25%% (paper reports 15-33%%)", mare)
	}
}

func TestQuantifyUnitPath(t *testing.T) {
	// Hand-built check of Abar^T y': one flow over k links of equal
	// magnitude f/sqrt(k) must quantify to f/sqrt(k).
	_, _, y := testDataset(t, 23, 288)
	p, _ := Fit(y)
	m, _ := Build(p, 4)
	// Routing matrix with a single flow over 4 links.
	a := mat.Zeros(m.NumLinks(), 1)
	for i := 0; i < 4; i++ {
		a.Set(i, 0, 1)
	}
	id, err := NewIdentifier(m, a)
	if err != nil {
		t.Fatal(err)
	}
	got := id.quantify(0, 10)
	want := 10.0 / 2.0 // fhat / ||A_i||, k=4
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("quantify = %v want %v", got, want)
	}
}

func TestIdentifySkipsUnroutableFlows(t *testing.T) {
	_, _, y := testDataset(t, 24, 288)
	p, _ := Fit(y)
	m, _ := Build(p, 4)
	// Two flows: one unroutable (zero column), one real.
	a := mat.Zeros(m.NumLinks(), 2)
	a.Set(0, 1, 1)
	a.Set(1, 1, 1)
	id, err := NewIdentifier(m, a)
	if err != nil {
		t.Fatal(err)
	}
	yv := make([]float64, m.NumLinks())
	copy(yv, m.Means())
	yv[0] += 1e8
	res := id.Identify(yv)
	if res.Flow != 1 {
		t.Fatalf("Identify chose %d, must skip unroutable flow 0", res.Flow)
	}
}

func TestDetectabilityThresholdOrdersDetection(t *testing.T) {
	// A spike at 2.5x the sufficient threshold must always be detected;
	// the guarantee bound itself must hold (spikes above it detected).
	topo, x, m, id, limit := fitPipeline(t, 25, 1008)
	delta := math.Sqrt(limit)
	for flow := 2; flow < topo.NumFlows(); flow += 31 {
		th := id.DetectabilityThreshold(flow, delta)
		if math.IsInf(th, 1) {
			continue
		}
		y := spikedLinkLoad(topo, x, 404, flow, 2.5*th)
		if m.SPE(y) <= limit {
			t.Fatalf("flow %d: spike at 2.5x detectability threshold %v not detected", flow, th)
		}
	}
}

func TestDetectabilityThresholdInfForUnroutable(t *testing.T) {
	_, _, y := testDataset(t, 26, 288)
	p, _ := Fit(y)
	m, _ := Build(p, 4)
	a := mat.Zeros(m.NumLinks(), 1) // unroutable flow
	id, _ := NewIdentifier(m, a)
	if th := id.DetectabilityThreshold(0, 1); !math.IsInf(th, 1) {
		t.Fatalf("threshold = %v want +Inf", th)
	}
}

func TestDetectabilityThresholdPanics(t *testing.T) {
	_, _, _, id, _ := fitPipeline(t, 27, 288)
	for _, fn := range []func(){
		func() { id.DetectabilityThreshold(-1, 1) },
		func() { id.DetectabilityThreshold(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestIdentifyMultiTwoFlowAnomaly(t *testing.T) {
	// A DDoS-like anomaly on two flows with different intensities must be
	// preferred over single-flow candidates and its magnitudes recovered.
	topo, x, _, id, _ := fitPipeline(t, 28, 1008)
	f1 := topo.FlowID(0, 5)
	f2 := topo.FlowID(3, 5)
	row := x.Row(250)
	row[f1] += 8e7
	row[f2] += 4e7
	y := traffic.LinkLoadAt(topo, row)

	candidates := [][]int{
		{f1},
		{f2},
		{f1, f2},
		{topo.FlowID(1, 2), topo.FlowID(4, 8)},
	}
	res := id.IdentifyMulti(y, candidates)
	if res.Candidate != 2 {
		t.Fatalf("IdentifyMulti chose candidate %d, want 2 (the true pair)", res.Candidate)
	}
	// Recovered byte estimates should be near the injected sizes.
	byFlow := map[int]float64{}
	for i, f := range res.Flows {
		byFlow[f] = res.Bytes[i]
	}
	if math.Abs(byFlow[f1]-8e7)/8e7 > 0.35 {
		t.Fatalf("flow %d bytes = %v want ~8e7", f1, byFlow[f1])
	}
	if math.Abs(byFlow[f2]-4e7)/4e7 > 0.35 {
		t.Fatalf("flow %d bytes = %v want ~4e7", f2, byFlow[f2])
	}
}

func TestIdentifyMultiMatchesSingleForSingleton(t *testing.T) {
	topo, x, _, id, _ := fitPipeline(t, 29, 432)
	y := spikedLinkLoad(topo, x, 111, 7, 6e7)
	single := id.Identify(y)
	candidates := make([][]int, id.NumFlows())
	for i := range candidates {
		candidates[i] = []int{i}
	}
	multi := id.IdentifyMulti(y, candidates)
	if multi.Candidate != single.Flow {
		t.Fatalf("multi chose %d, single chose %d", multi.Candidate, single.Flow)
	}
	if math.Abs(multi.Magnitudes[0]-single.Magnitude) > 1e-6*(1+math.Abs(single.Magnitude)) {
		t.Fatal("singleton magnitudes disagree")
	}
}

func TestIdentifyMultiEmptyAndInvalid(t *testing.T) {
	_, x, _, id, _ := fitPipeline(t, 30, 288)
	_ = x
	y := make([]float64, id.model.NumLinks())
	res := id.IdentifyMulti(y, nil)
	if res.Candidate != -1 {
		t.Fatalf("no candidates must yield -1, got %d", res.Candidate)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range flow")
		}
	}()
	id.IdentifyMulti(y, [][]int{{99999}})
}
