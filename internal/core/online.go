package core

import (
	"fmt"
	"sync"

	"netanomaly/internal/mat"
)

// OnlineDetector applies the subspace method as a first-level online
// monitoring tool (Section 7.1): each arriving measurement vector is
// tested against a model fitted on a sliding window of history, and
// alarms carry the identified OD flow and estimated size so that
// fine-grained collection can be triggered. The model matrix P P^T is
// stable week to week, so refits are occasional (Refit), not per-bin.
//
// OnlineDetector is safe for concurrent use.
type OnlineDetector struct {
	mu         sync.Mutex
	a          *mat.Dense
	opts       Options
	window     *ring
	diag       *Diagnoser
	processed  int
	refitEvery int
}

// ring is a fixed-capacity row buffer for measurement vectors.
type ring struct {
	rows  [][]float64
	next  int
	count int
}

func newRing(capacity int) *ring { return &ring{rows: make([][]float64, capacity)} }

func (r *ring) push(row []float64) {
	r.rows[r.next] = mat.CloneVec(row)
	r.next = (r.next + 1) % len(r.rows)
	if r.count < len(r.rows) {
		r.count++
	}
}

// matrix returns the buffered rows, oldest first, as a dense matrix.
func (r *ring) matrix() *mat.Dense {
	if r.count == 0 {
		return nil
	}
	cols := len(r.rows[(r.next-1+len(r.rows))%len(r.rows)])
	m := mat.Zeros(r.count, cols)
	start := 0
	if r.count == len(r.rows) {
		start = r.next
	}
	for i := 0; i < r.count; i++ {
		m.SetRow(i, r.rows[(start+i)%len(r.rows)])
	}
	return m
}

// OnlineConfig configures NewOnlineDetector.
type OnlineConfig struct {
	// Window is the number of most recent bins kept for model fitting
	// (the paper fits on one week: 1008 ten-minute bins).
	Window int
	// RefitEvery triggers an automatic refit after this many processed
	// bins; 0 disables automatic refits (call Refit explicitly).
	RefitEvery int
	// Options configure the underlying diagnoser.
	Options Options
}

// NewOnlineDetector fits an initial model on history (bins x links) and
// returns a streaming detector. history must have at least as many bins
// as links; its most recent Window rows seed the sliding window.
func NewOnlineDetector(history, a *mat.Dense, cfg OnlineConfig) (*OnlineDetector, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("core: online window %d <= 0", cfg.Window)
	}
	t, _ := history.Dims()
	if t < cfg.Window {
		cfg.Window = t
	}
	o := &OnlineDetector{a: a, opts: cfg.Options, refitEvery: cfg.RefitEvery}
	o.window = newRing(cfg.Window)
	for b := t - cfg.Window; b < t; b++ {
		o.window.push(history.RowView(b))
	}
	diag, err := NewDiagnoser(o.window.matrix(), a, o.opts)
	if err != nil {
		return nil, err
	}
	o.diag = diag
	return o, nil
}

// Alarm is an anomaly raised by the online detector.
type Alarm struct {
	// Seq is the running index of the processed measurement.
	Seq int
	Diagnosis
}

// Process tests one measurement vector, appends it to the window, and
// refits when the refit interval elapses. It returns an alarm when the
// measurement is anomalous. Refit errors are returned; the previous model
// stays in force when a refit fails.
func (o *OnlineDetector) Process(y []float64) (Alarm, bool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	diag, anomalous := o.diag.DiagnoseAt(y)
	seq := o.processed
	o.processed++
	diag.Bin = seq
	// Anomalous bins are withheld from the window so they do not inflate
	// the residual variance of the next model (the paper's model is fit
	// on normal traffic; one contaminated week changed results little,
	// but exclusion is the conservative choice).
	if !anomalous {
		o.window.push(y)
	}
	var err error
	if o.refitEvery > 0 && o.processed%o.refitEvery == 0 {
		err = o.refitLocked()
	}
	return Alarm{Seq: seq, Diagnosis: diag}, anomalous, err
}

// Refit rebuilds the model from the current window contents.
func (o *OnlineDetector) Refit() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.refitLocked()
}

func (o *OnlineDetector) refitLocked() error {
	w := o.window.matrix()
	if w == nil {
		return fmt.Errorf("core: online window empty")
	}
	diag, err := NewDiagnoser(w, o.a, o.opts)
	if err != nil {
		return fmt.Errorf("core: online refit: %w", err)
	}
	o.diag = diag
	return nil
}

// Processed returns the number of measurements seen so far.
func (o *OnlineDetector) Processed() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.processed
}
