package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"netanomaly/internal/mat"
)

// OnlineDetector applies the subspace method as a first-level online
// monitoring tool (Section 7.1): each arriving measurement vector is
// tested against a model fitted on a sliding window of history, and
// alarms carry the identified OD flow and estimated size so that
// fine-grained collection can be triggered. The model matrix P P^T is
// stable week to week, so refits are occasional (Refit), not per-bin.
//
// OnlineDetector is safe for concurrent use, and detection never blocks
// on model fitting: the active Diagnoser is held in an atomic pointer
// that Process reads lock-free, automatic refits run in a background
// goroutine on a snapshot of the window, and the freshly fitted model is
// swapped in atomically when ready. A failed refit leaves the previous
// model in force and surfaces its error on a subsequent Process call.
type OnlineDetector struct {
	a    *mat.Dense
	opts Options
	// links is the expected measurement vector length; mismatched rows
	// are rejected with an error, never buffered.
	links int

	// diag is the active model; Process and ProcessBatch load it without
	// taking mu, so a concurrent refit cannot stall detection.
	diag atomic.Pointer[Diagnoser]

	mu         sync.Mutex // guards the fields below
	window     *mat.RowRing
	processed  int
	sinceRefit int
	refitEvery int
	// gate serializes model fits (held from window snapshot to model
	// swap by background and explicit refits alike) and parks the
	// deferred error of a failed background refit.
	gate   *RefitGate
	refits int // completed model rebuilds since creation

	// refitHook, when set (before streaming starts), runs inside the
	// background refit goroutine before fitting begins. Tests use it to
	// hold a refit open and prove Process does not block behind it.
	refitHook func()
}

// assert the streaming contract at compile time.
var _ ViewDetector = (*OnlineDetector)(nil)

// SetRefitHook installs a function that runs inside every background
// refit goroutine before fitting begins. It exists so tests outside this
// package can hold a refit open deterministically; call it before
// streaming starts.
func (o *OnlineDetector) SetRefitHook(h func()) { o.refitHook = h }

// OnlineConfig configures NewOnlineDetector.
type OnlineConfig struct {
	// Window is the number of most recent bins kept for model fitting
	// (the paper fits on one week: 1008 ten-minute bins).
	Window int
	// RefitEvery triggers an automatic background refit after this many
	// processed bins; 0 disables automatic refits (call Refit explicitly).
	RefitEvery int
	// Options configure the underlying diagnoser.
	Options Options
}

// NewOnlineDetector fits an initial model on history (bins x links) and
// returns a streaming detector. history must have at least as many bins
// as links; its most recent Window rows seed the sliding window.
func NewOnlineDetector(history, a *mat.Dense, cfg OnlineConfig) (*OnlineDetector, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("core: online window %d <= 0", cfg.Window)
	}
	t, links := history.Dims()
	if t < cfg.Window {
		cfg.Window = t
	}
	o := &OnlineDetector{a: a, opts: cfg.Options, links: links, refitEvery: cfg.RefitEvery}
	o.gate = NewRefitGate(&o.mu)
	o.window = mat.NewRowRing(cfg.Window, links)
	for b := t - cfg.Window; b < t; b++ {
		o.window.Push(history.RowView(b))
	}
	diag, err := NewDiagnoser(o.window.Matrix(), a, o.opts)
	if err != nil {
		return nil, err
	}
	o.diag.Store(diag)
	return o, nil
}

// Alarm is an anomaly raised by the online detector.
type Alarm struct {
	// Seq is the running index of the processed measurement.
	Seq int
	Diagnosis
}

// Process tests one measurement vector against the active model and
// appends it to the window. Detection runs lock-free against the current
// model; when the refit interval elapses a background refit is launched
// on a window snapshot and the stream continues uninterrupted. The error
// of a failed background refit is reported by a later Process call (the
// previous model stays in force); a measurement of the wrong length is
// rejected with an error and not buffered.
func (o *OnlineDetector) Process(y []float64) (Alarm, bool, error) {
	if len(y) != o.links {
		return Alarm{}, false, fmt.Errorf("core: measurement has %d links, detector expects %d", len(y), o.links)
	}
	diag, anomalous := o.diag.Load().DiagnoseAt(y)

	o.mu.Lock()
	seq := o.processed
	o.processed++
	diag.Bin = seq
	// Anomalous bins are withheld from the window so they do not inflate
	// the residual variance of the next model (the paper's model is fit
	// on normal traffic; one contaminated week changed results little,
	// but exclusion is the conservative choice).
	if !anomalous {
		o.window.Push(y)
	}
	err := o.gate.TakeErrorLocked()
	snapshot := o.maybeSnapshotLocked(1)
	o.mu.Unlock()

	if snapshot != nil {
		o.spawnRefit(snapshot)
	}
	return Alarm{Seq: seq, Diagnosis: diag}, anomalous, err
}

// ProcessBatch tests a block of measurements (bins x links) in one
// batched pass (Diagnoser.DiagnoseBatch) and returns only the rows that
// alarm, with sequence numbers assigned in row order. Window maintenance,
// refit scheduling and error reporting follow Process; the whole batch is
// detected against one consistent model snapshot.
func (o *OnlineDetector) ProcessBatch(y *mat.Dense) ([]Alarm, error) {
	bins, cols := y.Dims()
	if cols != o.links {
		return nil, fmt.Errorf("core: batch has %d links, detector expects %d", cols, o.links)
	}
	diags, flags := o.diag.Load().DiagnoseBatch(y)

	o.mu.Lock()
	base := o.processed
	o.processed += bins
	var alarms []Alarm
	for b := 0; b < bins; b++ {
		if flags[b] {
			d := diags[b]
			d.Bin = base + b
			alarms = append(alarms, Alarm{Seq: base + b, Diagnosis: d})
		} else {
			o.window.Push(y.RowView(b))
		}
	}
	err := o.gate.TakeErrorLocked()
	snapshot := o.maybeSnapshotLocked(bins)
	o.mu.Unlock()

	if snapshot != nil {
		o.spawnRefit(snapshot)
	}
	return alarms, err
}

// maybeSnapshotLocked advances the refit counter by n processed bins and,
// when the interval has elapsed and no refit is already in flight, marks
// a refit as started and returns the window snapshot to fit on. Callers
// must hold o.mu.
func (o *OnlineDetector) maybeSnapshotLocked(n int) *mat.Dense {
	if o.refitEvery <= 0 {
		return nil
	}
	o.sinceRefit += n
	if o.sinceRefit < o.refitEvery || !o.gate.TryBeginLocked() {
		return nil
	}
	o.sinceRefit = 0
	return o.window.Matrix()
}

// spawnRefit fits a new model on the snapshot in a background goroutine
// and swaps it in atomically on success. On failure the previous model
// stays active and the error is stashed for the next Process call. The
// caller has already claimed the gate; the goroutine releases it (swap
// first, then release, so no other fit can interleave between them).
func (o *OnlineDetector) spawnRefit(w *mat.Dense) {
	go func() {
		if h := o.refitHook; h != nil {
			h()
		}
		diag, err := NewDiagnoser(w, o.a, o.opts)
		if err == nil {
			o.diag.Store(diag)
		} else {
			err = fmt.Errorf("core: online refit: %w", err)
		}
		o.mu.Lock()
		if err == nil {
			o.refits++
		}
		o.gate.EndLocked(err)
		o.mu.Unlock()
	}()
}

// Refit synchronously rebuilds the model from the current window
// contents. It serializes with background refits (waiting for any fit
// in flight, so a fit on an older window can never overwrite a newer
// model) but never blocks Process: the fit runs on a snapshot outside
// the detector lock and concurrent Process calls keep flowing against
// the previous model until the atomic swap. A failed fit leaves the
// previous model in force.
func (o *OnlineDetector) Refit() error {
	o.mu.Lock()
	o.gate.BeginLocked()
	w := o.window.Matrix()
	o.mu.Unlock()

	var diag *Diagnoser
	var err error
	if w == nil {
		err = fmt.Errorf("core: online window empty")
	} else if diag, err = NewDiagnoser(w, o.a, o.opts); err != nil {
		err = fmt.Errorf("core: online refit: %w", err)
	} else {
		o.diag.Store(diag)
	}

	o.mu.Lock()
	if err == nil {
		o.refits++
	}
	o.gate.EndLocked(nil)
	o.mu.Unlock()
	return err
}

// Seed replaces the sliding window with (the most recent Window rows
// of) history and synchronously refits the model on it, serializing
// with any in-flight background refit. The replacement window and model
// are built off to the side and committed together only when the fit
// succeeds: a history that cannot be fitted leaves both the active
// model and the healthy window untouched. The processed-bin counter
// keeps running.
func (o *OnlineDetector) Seed(history *mat.Dense) error {
	t, links := history.Dims()
	if links != o.links {
		return fmt.Errorf("core: seed history has %d links, detector expects %d", links, o.links)
	}
	if t == 0 {
		return fmt.Errorf("core: seed history is empty")
	}
	o.mu.Lock()
	o.gate.BeginLocked()
	capacity := o.window.Cap()
	o.mu.Unlock()

	window := mat.NewRowRing(capacity, o.links)
	start := t - capacity
	if start < 0 {
		start = 0
	}
	for b := start; b < t; b++ {
		window.Push(history.RowView(b))
	}
	diag, err := NewDiagnoser(window.Matrix(), o.a, o.opts)
	if err == nil {
		o.diag.Store(diag)
	} else {
		err = fmt.Errorf("core: online seed: %w", err)
	}

	o.mu.Lock()
	if err == nil {
		o.window = window
		o.refits++
		// The model is freshly fitted; restart the automatic-refit
		// clock so the next interval is not spent refitting the window
		// that was just seeded.
		o.sinceRefit = 0
	}
	o.gate.EndLocked(nil)
	o.mu.Unlock()
	return err
}

// Stats reports the detector's current state under the streaming
// contract.
func (o *OnlineDetector) Stats() ViewStats {
	o.mu.Lock()
	processed, refits := o.processed, o.refits
	o.mu.Unlock()
	return ViewStats{
		Backend:   "subspace",
		Links:     o.links,
		Processed: processed,
		Rank:      o.diag.Load().Detector().Model().Rank(),
		Refits:    refits,
	}
}

// WaitRefits blocks until no model fit is in flight. Safe to call while
// other goroutines keep streaming (each in-flight fit is waited out as
// it completes); it does not prevent new refits from starting after it
// returns.
func (o *OnlineDetector) WaitRefits() { o.gate.Wait() }

// TakeRefitError returns and clears the deferred error from the last
// failed background refit, if any. Streaming callers see these errors
// on their next Process/ProcessBatch call; TakeRefitError exists for
// shutdown paths that stop processing (engine Flush/Errs) and would
// otherwise never observe a failure from the final refit.
func (o *OnlineDetector) TakeRefitError() error { return o.gate.TakeError() }

// Snapshot serializes the sliding window, the counters, and the exact
// active model as a NAMS envelope. It takes the refit gate first, so a
// background fit in flight is waited out rather than captured
// half-swapped, and no new fit can start mid-serialization.
func (o *OnlineDetector) Snapshot(w io.Writer) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.gate.BeginLocked()
	defer o.gate.EndLocked(nil)
	return EncodeSnapshot(w, SnapKindSubspace, func(sw *SnapshotWriter) {
		sw.Int(o.links)
		sw.RowRing(o.window)
		sw.Int(o.processed)
		sw.Int(o.sinceRefit)
		sw.Int(o.refits)
		encodeDiagnoser(sw, o.diag.Load())
	})
}

// Restore replaces the window, counters, and active model with a
// snapshot from an identically configured subspace detector. The
// decoded state is committed only after the whole payload validates;
// a rejected snapshot leaves the receiver untouched. The receiver's
// routing matrix, refit cadence, and options stay in force.
func (o *OnlineDetector) Restore(r io.Reader) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.gate.BeginLocked()
	defer o.gate.EndLocked(nil)
	return DecodeSnapshot(r, SnapKindSubspace, func(sr *SnapshotReader) error {
		links := sr.Int()
		if sr.Err() == nil && links != o.links {
			return SnapshotMismatchf("snapshot has %d links, detector expects %d", links, o.links)
		}
		window := sr.RowRing(o.links)
		processed := sr.NonNegInt()
		sinceRefit := sr.NonNegInt()
		refits := sr.NonNegInt()
		if err := sr.Err(); err != nil {
			return err
		}
		diag, err := decodeDiagnoser(sr, o.a, o.links)
		if err != nil {
			return err
		}
		o.window = window
		o.processed = processed
		o.sinceRefit = sinceRefit
		o.refits = refits
		o.diag.Store(diag)
		return nil
	})
}

// Diagnoser returns the currently active model pipeline. The returned
// value is immutable; a concurrent refit swaps in a new one rather than
// mutating it.
func (o *OnlineDetector) Diagnoser() *Diagnoser { return o.diag.Load() }

// Processed returns the number of measurements seen so far.
func (o *OnlineDetector) Processed() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.processed
}
