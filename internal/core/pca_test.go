package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
	"netanomaly/internal/traffic"
)

// testDataset builds a small simulated link-load matrix for core tests:
// two days of 10-minute bins on Abilene.
func testDataset(t *testing.T, seed int64, bins int) (*topology.Topology, *mat.Dense, *mat.Dense) {
	t.Helper()
	topo := topology.Abilene()
	cfg := traffic.DefaultConfig(seed)
	cfg.Bins = bins
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := gen.Generate()
	y := traffic.LinkLoads(topo, x)
	return topo, x, y
}

func randMatrix(rng *rand.Rand, rows, cols int) *mat.Dense {
	m := mat.Zeros(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestFitBasicProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	y := randMatrix(rng, 60, 8)
	p, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumComponents() != 8 {
		t.Fatalf("components = %d", p.NumComponents())
	}
	if p.SampleCount != 60 {
		t.Fatalf("SampleCount = %d", p.SampleCount)
	}
	// Variances descending and non-negative.
	for i, v := range p.Variances {
		if v < 0 {
			t.Fatalf("negative variance %v", v)
		}
		if i > 0 && v > p.Variances[i-1]+1e-12 {
			t.Fatalf("variances not sorted: %v", p.Variances)
		}
	}
	// Components orthonormal.
	if !mat.EqualApprox(p.Components.Gram(), mat.Identity(8), 1e-9) {
		t.Fatal("components not orthonormal")
	}
	// Projections orthonormal (full rank random data).
	if !mat.EqualApprox(p.Projections.Gram(), mat.Identity(8), 1e-9) {
		t.Fatal("projections not orthonormal")
	}
}

func TestFitDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	y := randMatrix(rng, 20, 4)
	orig := y.Clone()
	if _, err := Fit(y); err != nil {
		t.Fatal(err)
	}
	if !mat.EqualApprox(y, orig, 0) {
		t.Fatal("Fit must not modify its input")
	}
}

func TestFitTotalVariancePreserved(t *testing.T) {
	// Sum of PCA variances equals total sample variance of the data.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		y := randMatrix(rng, 30, 5)
		p, err := Fit(y)
		if err != nil {
			return false
		}
		var pcaTotal float64
		for _, v := range p.Variances {
			pcaTotal += v
		}
		c := y.Clone()
		c.CenterColumns()
		dataTotal := 0.0
		for j := 0; j < 5; j++ {
			col := c.Col(j)
			dataTotal += mat.SqNorm(col) / float64(29)
		}
		return math.Abs(pcaTotal-dataTotal) < 1e-8*(1+dataTotal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFitVarianceMatchesProjection(t *testing.T) {
	// Variances[i] must equal ||Y v_i||^2/(t-1) computed directly.
	rng := rand.New(rand.NewSource(3))
	y := randMatrix(rng, 40, 6)
	p, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	c := y.Clone()
	c.CenterColumns()
	for i := 0; i < 6; i++ {
		yv := mat.MulVec(c, p.Components.Col(i))
		want := mat.SqNorm(yv) / 39
		if math.Abs(p.Variances[i]-want) > 1e-9*(1+want) {
			t.Fatalf("variance[%d] = %v want %v", i, p.Variances[i], want)
		}
	}
}

func TestFitFirstComponentMaximizesVariance(t *testing.T) {
	// No random direction may capture more variance than v_1.
	rng := rand.New(rand.NewSource(4))
	y := randMatrix(rng, 50, 6)
	p, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	c := y.Clone()
	c.CenterColumns()
	for trial := 0; trial < 50; trial++ {
		v := make([]float64, 6)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		mat.Normalize(v)
		varV := mat.SqNorm(mat.MulVec(c, v)) / 49
		if varV > p.Variances[0]+1e-9 {
			t.Fatalf("random direction captured %v > leading %v", varV, p.Variances[0])
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(mat.Zeros(1, 3)); err != ErrTooFewSamples {
		t.Fatalf("expected ErrTooFewSamples, got %v", err)
	}
	if _, err := Fit(mat.Zeros(3, 5)); err == nil {
		t.Fatal("expected error for t < m")
	}
}

func TestFitEigAgreesWithFit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	y := randMatrix(rng, 60, 7)
	p1, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := FitEig(y)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecEqualApprox(p1.Variances, p2.Variances, 1e-6*(1+p1.Variances[0])) {
		t.Fatalf("variances disagree:\n%v\n%v", p1.Variances, p2.Variances)
	}
	// Components agree up to sign.
	for i := 0; i < 7; i++ {
		d := math.Abs(mat.Dot(p1.Components.Col(i), p2.Components.Col(i)))
		if math.Abs(d-1) > 1e-6 {
			t.Fatalf("component %d disagreement: |dot| = %v", i, d)
		}
	}
}

func TestVarianceFractionsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	y := randMatrix(rng, 30, 5)
	p, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, f := range p.VarianceFractions() {
		if f < 0 {
			t.Fatal("negative fraction")
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestLinkTrafficLowEffectiveDimensionality(t *testing.T) {
	// The Figure 3 phenomenon: network link traffic with shared diurnal
	// structure concentrates its variance in a handful of components even
	// though there are 41 links.
	_, _, y := testDataset(t, 9, 1008)
	p, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	dim := p.EffectiveDimension(0.9)
	if dim > 10 {
		t.Fatalf("effective dimension %d too high for diurnal traffic (want <= 10 of 41)", dim)
	}
	fr := p.VarianceFractions()
	if fr[0] < 0.3 {
		t.Fatalf("leading component captures only %v of variance", fr[0])
	}
}

func TestEffectiveDimensionBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	y := randMatrix(rng, 30, 5)
	p, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.EffectiveDimension(1.0); d != 5 {
		t.Fatalf("full-variance dimension = %d want 5", d)
	}
	if d := p.EffectiveDimension(0.01); d != 1 {
		t.Fatalf("tiny-variance dimension = %d want 1", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for frac out of range")
		}
	}()
	p.EffectiveDimension(0)
}
