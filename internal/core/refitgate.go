package core

import "sync"

// RefitGate is the fit-serialization device every streaming backend runs
// its model rebuilds behind: a fit-in-flight flag with a cond to wait it
// out, plus the deferred error a failed background fit parks for a later
// ProcessBatch or TakeRefitError call to report. The gate borrows the
// backend's own mutex — the flag must be read and written under the same
// lock that guards the rest of the backend's mutable state (window,
// counters, forecaster state), so the gate cannot own a lock of its own.
//
// The lifecycle is identical across backends:
//
//   - Automatic background fit: TryBeginLocked (skip the interval when a
//     fit is already in flight), snapshot the fit inputs under the lock,
//     fit outside it, then EndLocked(err) — a non-nil err parks as the
//     deferred error.
//   - Explicit Refit/Seed: BeginLocked (wait out any in-flight fit),
//     snapshot, fit, EndLocked(nil) — the fit error is returned to the
//     caller directly instead of being parked.
//   - WaitRefits: Wait (or WaitLocked under the mutex).
//
// Holding the gate from snapshot to swap is what guarantees two fits
// never run concurrently and a fit on an older snapshot can never
// overwrite a newer model.
type RefitGate struct {
	mu     *sync.Mutex
	done   *sync.Cond
	active bool
	err    error
}

// NewRefitGate returns a gate serialized by the backend's own mutex.
func NewRefitGate(mu *sync.Mutex) *RefitGate {
	return &RefitGate{mu: mu, done: sync.NewCond(mu)}
}

// BeginLocked waits out any in-flight fit and claims the gate. Callers
// hold the mutex; the cond releases it while waiting.
func (g *RefitGate) BeginLocked() {
	for g.active {
		g.done.Wait()
	}
	g.active = true
}

// TryBeginLocked claims the gate only when no fit is in flight,
// reporting whether it did. Callers hold the mutex.
func (g *RefitGate) TryBeginLocked() bool {
	if g.active {
		return false
	}
	g.active = true
	return true
}

// EndLocked releases the gate and wakes waiters. A non-nil err parks as
// the deferred error (the background-fit path); synchronous fits pass
// nil and return their error to the caller directly. Callers hold the
// mutex.
func (g *RefitGate) EndLocked(err error) {
	g.active = false
	if err != nil {
		g.err = err
	}
	g.done.Broadcast()
}

// WaitLocked blocks until no fit is in flight. Callers hold the mutex.
func (g *RefitGate) WaitLocked() {
	for g.active {
		g.done.Wait()
	}
}

// Wait takes the mutex and blocks until no fit is in flight. It does
// not prevent new fits from starting after it returns.
func (g *RefitGate) Wait() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.WaitLocked()
}

// TakeErrorLocked returns and clears the parked deferred error, if any.
// Callers hold the mutex.
func (g *RefitGate) TakeErrorLocked() error {
	err := g.err
	g.err = nil
	return err
}

// TakeError takes the mutex, then returns and clears the deferred
// error, if any.
func (g *RefitGate) TakeError() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.TakeErrorLocked()
}
