package core

import (
	"math"
	"testing"

	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
)

// TestFDSketchApproximatesPCA checks the Frequent-Directions guarantee
// on generated traffic: with a sketch a fraction of the stream length,
// the sketch's leading variances and normal subspace land close to the
// exact batch fit's. The tail is allowed to differ — that is the whole
// bargain — but the top of the spectrum, which detection runs on, must
// survive sketching.
func TestFDSketchApproximatesPCA(t *testing.T) {
	_, _, y := testDataset(t, 70, 1008)
	bins, links := y.Dims()

	exact, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	rank := SeparateAxes(exact, DefaultSigma)

	sk, err := NewFDSketch(links, 4*rank)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.InsertAll(y); err != nil {
		t.Fatal(err)
	}
	if sk.Count() != bins {
		t.Fatalf("sketch counted %d rows, want %d", sk.Count(), bins)
	}
	p, span, err := sk.PCA()
	if err != nil {
		t.Fatal(err)
	}
	if span < rank {
		t.Fatalf("sketch spans %d directions, need at least rank %d", span, rank)
	}
	for i := 0; i < rank; i++ {
		rel := math.Abs(p.Variances[i]-exact.Variances[i]) / exact.Variances[i]
		if rel > 0.15 {
			t.Fatalf("leading variance %d off by %.1f%% (sketch %g, exact %g)",
				i, 100*rel, p.Variances[i], exact.Variances[i])
		}
	}
	// Subspace agreement: the projector onto the sketch's top-rank
	// directions must be close to the exact one (principal angles small).
	proj := func(p *PCA) *mat.Dense {
		pm := mat.Zeros(links, rank)
		for j := 0; j < rank; j++ {
			pm.SetCol(j, p.Components.Col(j))
		}
		return mat.Mul(pm, pm.T())
	}
	diff := mat.Sub(proj(p), proj(exact)).Frobenius()
	if diff > 0.2*math.Sqrt(float64(rank)) {
		t.Fatalf("normal-subspace projectors differ by %g in Frobenius norm", diff)
	}
	// Residual variances stay positive (the alpha*I correction), so the
	// Q-statistic threshold is computable from the sketched model.
	if _, err := Build(p, rank); err != nil {
		t.Fatal(err)
	}
}

// TestSketchAgreesWithIncremental is the acceptance check: on the
// trafficgen spike scenario, with the sketch at exactly 2*rank, the
// sketch backend must flag the same bins as the exact-covariance
// incremental backend across synchronized refits — in particular every
// injected spike, identified to the right flow.
func TestSketchAgreesWithIncremental(t *testing.T) {
	const historyBins, streamBins = 1008, 288
	spikes := []int{40, 150, 260}
	topo, history, stream, flow := streamDataset(t, 71, historyBins, streamBins, spikes)
	routing := topo.RoutingMatrix()

	inc, err := NewIncrementalDetector(history, routing, IncrementalConfig{Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	rank := inc.Stats().Rank
	sd, err := NewSketchDetector(history, routing, SketchConfig{SketchSize: 2 * rank})
	if err != nil {
		t.Fatal(err)
	}
	if got := sd.Stats().Rank; got != rank {
		t.Fatalf("seed ranks differ: sketch %d, incremental %d", got, rank)
	}

	var incAlarms, skAlarms []Alarm
	half := streamBins / 2
	for _, span := range [][2]int{{0, half}, {half, streamBins}} {
		chunk := mat.NewDense(span[1]-span[0], stream.Cols(), stream.RawData()[span[0]*stream.Cols():span[1]*stream.Cols()])
		ia, err := inc.ProcessBatch(chunk)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := sd.ProcessBatch(chunk)
		if err != nil {
			t.Fatal(err)
		}
		incAlarms = append(incAlarms, ia...)
		skAlarms = append(skAlarms, sa...)
		if err := inc.Refit(); err != nil {
			t.Fatal(err)
		}
		if err := sd.Refit(); err != nil {
			t.Fatal(err)
		}
	}

	got, want := alarmSeqs(skAlarms), alarmSeqs(incAlarms)
	for _, spike := range spikes {
		if !want[spike] {
			t.Fatalf("incremental baseline missed spike %d; flagged %v", spike, want)
		}
		if !got[spike] {
			t.Fatalf("sketch missed spike %d flagged by incremental; sketch %v, incremental %v", spike, got, want)
		}
	}
	// Full agreement on flagged bins, not just spikes: at ell = 2*rank
	// the sketch preserves the normal subspace well enough that the two
	// backends reach the same verdict bin for bin on this trace.
	if len(got) != len(want) {
		t.Fatalf("flagged bins differ: sketch %v, incremental %v", got, want)
	}
	for seq := range want {
		if !got[seq] {
			t.Fatalf("sketch missed bin %d flagged by incremental", seq)
		}
	}
	for _, a := range skAlarms {
		if a.Seq == spikes[0] && a.Flow != flow {
			t.Fatalf("spike identified flow %d want %d", a.Flow, flow)
		}
	}
}

func TestSketchBackgroundRebuildAndDriftGate(t *testing.T) {
	const historyBins, streamBins = 504, 240
	topo, history, stream, _ := streamDataset(t, 72, historyBins, streamBins, nil)
	routing := topo.RoutingMatrix()

	always, err := NewSketchDetector(history, routing, SketchConfig{RefitEvery: 60})
	if err != nil {
		t.Fatal(err)
	}
	gated, err := NewSketchDetector(history, routing, SketchConfig{RefitEvery: 60, DriftTol: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*SketchDetector{always, gated} {
		for b := 0; b < streamBins; b += 60 {
			chunk := mat.NewDense(60, stream.Cols(), stream.RawData()[b*stream.Cols():(b+60)*stream.Cols()])
			if _, err := d.ProcessBatch(chunk); err != nil {
				t.Fatal(err)
			}
			d.WaitRefits()
		}
		if err := d.TakeRefitError(); err != nil {
			t.Fatal(err)
		}
		if got := d.Stats().Processed; got != streamBins {
			t.Fatalf("processed %d want %d", got, streamBins)
		}
	}
	if always.Stats().Refits == 0 {
		t.Fatal("DriftTol=0 detector never swapped a rebuilt model")
	}
	if gated.Stats().Refits != 0 {
		t.Fatalf("gated detector swapped %d models despite stationary traffic", gated.Stats().Refits)
	}
	if gated.SkippedRebuilds() == 0 {
		t.Fatal("gated detector never exercised the drift gate")
	}
}

func TestSketchSeedAndValidation(t *testing.T) {
	_, history, stream, _ := streamDataset(t, 73, 504, 60, nil)
	routing := topology.Abilene().RoutingMatrix()
	d, err := NewSketchDetector(history, routing, SketchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProcessBatch(mat.Zeros(4, 3)); err == nil {
		t.Fatal("mis-sized batch accepted")
	}
	if _, err := d.ProcessBatch(stream); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	if err := d.Seed(mat.Zeros(10, 3)); err == nil {
		t.Fatal("mis-sized seed accepted")
	}
	if err := d.Seed(history); err != nil {
		t.Fatal(err)
	}
	after := d.Stats()
	if after.Processed != before.Processed {
		t.Fatalf("Seed reset the processed counter: %d -> %d", before.Processed, after.Processed)
	}
	if after.Refits != before.Refits+1 {
		t.Fatalf("Seed did not count as a refit: %d -> %d", before.Refits, after.Refits)
	}
}

func TestSketchSizeValidation(t *testing.T) {
	_, history, _, _ := streamDataset(t, 74, 504, 2, nil)
	routing := topology.Abilene().RoutingMatrix()
	if _, err := NewSketchDetector(history, routing, SketchConfig{SketchSize: 3}); err == nil {
		t.Fatal("sketch size 3 accepted")
	}
	d, err := NewSketchDetector(history, routing, SketchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rank := d.Stats().Rank
	if rank > 1 {
		if _, err := NewSketchDetector(history, routing, SketchConfig{SketchSize: 2*rank - 1}); err == nil {
			t.Fatalf("sketch size %d < 2*rank accepted", 2*rank-1)
		}
	}
	if d.SketchSize() < 2*rank {
		t.Fatalf("defaulted sketch size %d below 2*rank (%d)", d.SketchSize(), 2*rank)
	}
}
