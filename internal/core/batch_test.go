package core

import (
	"math"
	"testing"

	"netanomaly/internal/traffic"
)

func TestSPEBatchMatchesSPE(t *testing.T) {
	_, _, y := testDataset(t, 70, 432)
	m := fitModel(t, y, 0)
	spes := m.SPEBatch(y, nil)
	if len(spes) != 432 {
		t.Fatalf("SPEBatch returned %d values", len(spes))
	}
	for b := 0; b < 432; b++ {
		want := m.SPE(y.RowView(b))
		tol := 1e-8 * (want + 1)
		if math.Abs(spes[b]-want) > tol {
			t.Fatalf("bin %d: batch SPE %v, per-vector SPE %v", b, spes[b], want)
		}
	}
}

func TestSPEBatchReusesOutput(t *testing.T) {
	_, _, y := testDataset(t, 71, 288)
	m := fitModel(t, y, 0)
	buf := make([]float64, 288)
	out := m.SPEBatch(y, buf)
	if &out[0] != &buf[0] {
		t.Fatal("SPEBatch allocated despite sufficient capacity")
	}
}

func TestDetectBatchMatchesDetectSeries(t *testing.T) {
	_, _, y := testDataset(t, 72, 432)
	m := fitModel(t, y, 0)
	det, err := NewDetector(m, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	batch := det.DetectBatch(y)
	series := det.DetectSeries(y)
	for b := range series {
		if batch[b].Alarm != series[b].Alarm {
			t.Fatalf("bin %d: batch alarm %v, series alarm %v", b, batch[b].Alarm, series[b].Alarm)
		}
		if batch[b].Bin != b {
			t.Fatalf("bin %d mislabeled as %d", b, batch[b].Bin)
		}
	}
}

func TestDiagnoseBatchMatchesDiagnoseAt(t *testing.T) {
	// A dataset with a known injected spike: the batched pipeline must
	// alarm on the same bins and identify the same flows as the
	// per-vector pipeline.
	topo, x, _, _, _ := fitPipeline(t, 73, 1008)
	flow := topo.FlowID(2, 6)
	x.Set(500, flow, x.At(500, flow)+9e7)
	y := traffic.LinkLoads(topo, x)
	diag, err := NewDiagnoser(y, topo.RoutingMatrix(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	diags, flags := diag.DiagnoseBatch(y)
	if len(diags) != 1008 || len(flags) != 1008 {
		t.Fatalf("batch sizes %d/%d", len(diags), len(flags))
	}
	anomalies := 0
	for b := 0; b < 1008; b++ {
		want, wantOK := diag.DiagnoseAt(y.RowView(b))
		if flags[b] != wantOK {
			t.Fatalf("bin %d: batch anomalous=%v, per-vector=%v", b, flags[b], wantOK)
		}
		if diags[b].Flow != want.Flow {
			t.Fatalf("bin %d: batch flow %d, per-vector flow %d", b, diags[b].Flow, want.Flow)
		}
		if flags[b] {
			anomalies++
			if math.Abs(diags[b].Bytes-want.Bytes) > 1e-6*(math.Abs(want.Bytes)+1) {
				t.Fatalf("bin %d: batch bytes %v, per-vector bytes %v", b, diags[b].Bytes, want.Bytes)
			}
		}
	}
	if anomalies == 0 {
		t.Fatal("injected spike produced no anomalies")
	}
	if !flags[500] {
		t.Fatal("batch pipeline missed the injected spike bin")
	}
	if diags[500].Flow != flow {
		t.Fatalf("spike bin identified flow %d want %d", diags[500].Flow, flow)
	}
}
