package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"netanomaly/internal/mat"
	"netanomaly/internal/traffic"
)

func TestOnlineDetectorAlarmsOnSpike(t *testing.T) {
	// Two simulated weeks: fit the model on week one (the paper's
	// deployment mode, Section 7.1), stream week two.
	topo, x, _, _, _ := fitPipeline(t, 60, 2016)
	y := traffic.LinkLoads(topo, x)
	history := mat.Zeros(1008, topo.NumLinks())
	for b := 0; b < 1008; b++ {
		history.SetRow(b, y.RowView(b))
	}
	od, err := NewOnlineDetector(history, topo.RoutingMatrix(), OnlineConfig{Window: 1008})
	if err != nil {
		t.Fatal(err)
	}
	flow := topo.FlowID(1, 7)
	alarms := 0
	const spikeBin = 1200
	for b := 1008; b < 1296; b++ {
		v := x.Row(b)
		if b == spikeBin {
			v[flow] += 9e7
		}
		al, anomalous, err := od.Process(traffic.LinkLoadAt(topo, v))
		if err != nil {
			t.Fatal(err)
		}
		if anomalous {
			alarms++
			if b == spikeBin {
				if al.Flow != flow {
					t.Fatalf("online alarm identified flow %d want %d", al.Flow, flow)
				}
				if al.Bytes < 4e7 {
					t.Fatalf("online alarm bytes = %v", al.Bytes)
				}
			}
		} else if b == spikeBin {
			t.Fatal("online detector missed the injected spike")
		}
	}
	if alarms > 10 {
		t.Fatalf("online false alarms too high: %d", alarms)
	}
	if od.Processed() != 288 {
		t.Fatalf("Processed = %d want 288", od.Processed())
	}
}

func TestOnlineDetectorRefit(t *testing.T) {
	topo, x, _, _, _ := fitPipeline(t, 61, 1008)
	y := traffic.LinkLoads(topo, x)
	history := mat.Zeros(600, topo.NumLinks())
	for b := 0; b < 600; b++ {
		history.SetRow(b, y.RowView(b))
	}
	od, err := NewOnlineDetector(history, topo.RoutingMatrix(), OnlineConfig{
		Window:     600,
		RefitEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	for b := 600; b < 900; b++ {
		if _, _, err := od.Process(y.Row(b)); err != nil {
			t.Fatalf("bin %d: refit failed: %v", b, err)
		}
	}
	if err := od.Refit(); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineDetectorWindowShorterThanHistory(t *testing.T) {
	topo, _, y := testDataset(t, 62, 432)
	od, err := NewOnlineDetector(y, topo.RoutingMatrix(), OnlineConfig{Window: 300})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := od.Process(y.Row(0)); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineDetectorBadWindow(t *testing.T) {
	topo, _, y := testDataset(t, 63, 288)
	if _, err := NewOnlineDetector(y, topo.RoutingMatrix(), OnlineConfig{Window: 0}); err == nil {
		t.Fatal("expected error for zero window")
	}
}

func TestOnlineDetectorConcurrentProcess(t *testing.T) {
	topo, _, y := testDataset(t, 64, 432)
	od, err := NewOnlineDetector(y, topo.RoutingMatrix(), OnlineConfig{Window: 432})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < 50; b++ {
				od.Process(y.Row((g*50 + b) % 432))
			}
		}(g)
	}
	wg.Wait()
	if od.Processed() != 200 {
		t.Fatalf("Processed = %d want 200", od.Processed())
	}
}

func TestOnlineDetectorRejectsBadLength(t *testing.T) {
	topo, _, y := testDataset(t, 65, 432)
	od, err := NewOnlineDetector(y, topo.RoutingMatrix(), OnlineConfig{Window: 432})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := od.Process([]float64{1, 2, 3}); err == nil {
		t.Fatal("expected error for mismatched measurement length")
	}
	if od.Processed() != 0 {
		t.Fatalf("rejected measurement was counted: Processed = %d", od.Processed())
	}
	// The window must be intact: a refit on it still succeeds.
	if err := od.Refit(); err != nil {
		t.Fatalf("refit after rejected measurement: %v", err)
	}
	if _, err := od.ProcessBatch(mat.Zeros(4, 3)); err == nil {
		t.Fatal("expected error for mismatched batch width")
	}
}

func TestOnlineDetectorProcessBatchMatchesSerial(t *testing.T) {
	topo, x, _, _, _ := fitPipeline(t, 66, 1440)
	y := traffic.LinkLoads(topo, x)
	history := mat.Zeros(1008, topo.NumLinks())
	for b := 0; b < 1008; b++ {
		history.SetRow(b, y.RowView(b))
	}
	flow := topo.FlowID(0, 5)
	stream := mat.Zeros(432, topo.NumLinks())
	for b := 0; b < 432; b++ {
		v := x.Row(1008 + b)
		if b == 200 {
			v[flow] += 9e7
		}
		stream.SetRow(b, traffic.LinkLoadAt(topo, v))
	}
	cfg := OnlineConfig{Window: 1008}
	serial, err := NewOnlineDetector(history, topo.RoutingMatrix(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewOnlineDetector(history, topo.RoutingMatrix(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want []Alarm
	for b := 0; b < 432; b++ {
		al, anomalous, err := serial.Process(stream.RowView(b))
		if err != nil {
			t.Fatal(err)
		}
		if anomalous {
			want = append(want, al)
		}
	}
	var got []Alarm
	for b := 0; b < 432; b += 48 {
		alarms, err := batched.ProcessBatch(mat.NewDense(48, topo.NumLinks(), stream.RawData()[b*topo.NumLinks():(b+48)*topo.NumLinks()]))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, alarms...)
	}
	if len(got) != len(want) {
		t.Fatalf("batched path raised %d alarms, serial raised %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Seq != want[i].Seq || got[i].Flow != want[i].Flow {
			t.Fatalf("alarm %d: batched (seq %d flow %d) vs serial (seq %d flow %d)",
				i, got[i].Seq, got[i].Flow, want[i].Seq, want[i].Flow)
		}
	}
	if batched.Processed() != 432 {
		t.Fatalf("batched Processed = %d want 432", batched.Processed())
	}
}

// constantDetector builds a detector whose window can be driven into a
// degenerate (zero-variance) state: feeding `fill` copies of the history
// column means replaces every window row with an identical vector, on
// which model fitting must fail (the residual subspace carries no
// variance, so the Q-statistic is undefined).
func constantDetector(t *testing.T, refitEvery int) (*OnlineDetector, []float64) {
	t.Helper()
	const bins, links = 40, 6
	rng := rand.New(rand.NewSource(99))
	history := mat.Zeros(bins, links)
	for i := 0; i < bins; i++ {
		for j := 0; j < links; j++ {
			history.Set(i, j, 100+10*rng.NormFloat64())
		}
	}
	od, err := NewOnlineDetector(history, mat.Identity(links), OnlineConfig{
		Window:     bins,
		RefitEvery: refitEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	return od, history.ColMeans()
}

func TestOnlineDetectorFailedRefitKeepsModel(t *testing.T) {
	od, mean := constantDetector(t, 0)
	before := od.Diagnoser()
	for i := 0; i < 40; i++ {
		if _, anomalous, err := od.Process(mean); err != nil || anomalous {
			t.Fatalf("mean vector rejected: anomalous=%v err=%v", anomalous, err)
		}
	}
	if err := od.Refit(); err == nil {
		t.Fatal("expected refit on a constant window to fail")
	}
	if od.Diagnoser() != before {
		t.Fatal("failed refit replaced the model")
	}
	// The previous model must remain fully operational.
	if _, anomalous, err := od.Process(mean); err != nil || anomalous {
		t.Fatalf("detector broken after failed refit: anomalous=%v err=%v", anomalous, err)
	}
}

func TestOnlineDetectorFailedBackgroundRefitKeepsModel(t *testing.T) {
	od, mean := constantDetector(t, 40)
	before := od.Diagnoser()
	var refitErr error
	for i := 0; i < 40; i++ {
		_, _, err := od.Process(mean)
		if err != nil {
			refitErr = err
		}
	}
	od.WaitRefits()
	// The 40th Process triggered a background refit on the now-constant
	// window; its failure is harvestable without another measurement...
	if err := od.TakeRefitError(); err != nil {
		refitErr = err
	} else if _, _, err := od.Process(mean); err != nil {
		// ...and would otherwise surface on the next call.
		refitErr = err
	}
	if refitErr == nil {
		t.Fatal("background refit on a constant window reported no error")
	}
	if od.Diagnoser() != before {
		t.Fatal("failed background refit replaced the model")
	}
	if err := od.TakeRefitError(); err != nil {
		t.Fatalf("refit error not cleared after harvest: %v", err)
	}
}

func TestOnlineDetectorRefitDoesNotBlockProcess(t *testing.T) {
	topo, _, y := testDataset(t, 67, 432)
	od, err := NewOnlineDetector(y, topo.RoutingMatrix(), OnlineConfig{Window: 432, RefitEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	od.refitHook = func() {
		once.Do(func() { close(entered) })
		<-hold
	}
	// Cross the refit interval so a background refit starts and parks in
	// the hook.
	for b := 0; b < 10; b++ {
		if _, _, err := od.Process(y.RowView(b)); err != nil {
			t.Fatal(err)
		}
	}
	<-entered
	// With the refit held open, the stream must keep flowing. If Process
	// blocked behind the refit, this goroutine would never finish and the
	// watchdog below would fire.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for b := 0; b < 100; b++ {
			if _, _, err := od.Process(y.RowView(b % 432)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Process blocked while a refit was in flight")
	}
	close(hold)
	od.WaitRefits()
	if od.Processed() != 110 {
		t.Fatalf("Processed = %d want 110", od.Processed())
	}
}

func TestOnlineDetectorConcurrentBatchesAndRefits(t *testing.T) {
	// Race hammer: concurrent Process, ProcessBatch and explicit Refit
	// calls must be safe together (run under -race in CI).
	topo, _, y := testDataset(t, 68, 432)
	od, err := NewOnlineDetector(y, topo.RoutingMatrix(), OnlineConfig{Window: 432, RefitEvery: 25})
	if err != nil {
		t.Fatal(err)
	}
	links := topo.NumLinks()
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < 60; b++ {
				od.Process(y.RowView((g*60 + b) % 432))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			batch := mat.Zeros(12, links)
			for b := 0; b < 12; b++ {
				batch.SetRow(b, y.RowView((i*12+b)%432))
			}
			if _, err := od.ProcessBatch(batch); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := od.Refit(); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
	od.WaitRefits()
	if od.Processed() != 3*60+5*12 {
		t.Fatalf("Processed = %d want %d", od.Processed(), 3*60+5*12)
	}
}

func TestOnlineSeedFailureKeepsWindowAndModel(t *testing.T) {
	topo, _, y := testDataset(t, 66, 432)
	od, err := NewOnlineDetector(y, topo.RoutingMatrix(), OnlineConfig{Window: 432})
	if err != nil {
		t.Fatal(err)
	}
	before := od.Diagnoser()
	// One row cannot be fitted; the error must not destroy the healthy
	// window or the active model.
	if err := od.Seed(mat.NewDense(1, y.Cols(), y.RawData()[:y.Cols()])); err == nil {
		t.Fatal("unfittable seed accepted")
	}
	if od.Diagnoser() != before {
		t.Fatal("failed Seed replaced the active model")
	}
	if err := od.Refit(); err != nil {
		t.Fatalf("window destroyed by failed Seed: refit errors with %v", err)
	}
	// A good Seed still works afterwards.
	if err := od.Seed(y); err != nil {
		t.Fatal(err)
	}
}
