package core

import (
	"sync"
	"testing"

	"netanomaly/internal/mat"
	"netanomaly/internal/traffic"
)

func TestOnlineDetectorAlarmsOnSpike(t *testing.T) {
	// Two simulated weeks: fit the model on week one (the paper's
	// deployment mode, Section 7.1), stream week two.
	topo, x, _, _, _ := fitPipeline(t, 60, 2016)
	y := traffic.LinkLoads(topo, x)
	history := mat.Zeros(1008, topo.NumLinks())
	for b := 0; b < 1008; b++ {
		history.SetRow(b, y.RowView(b))
	}
	od, err := NewOnlineDetector(history, topo.RoutingMatrix(), OnlineConfig{Window: 1008})
	if err != nil {
		t.Fatal(err)
	}
	flow := topo.FlowID(1, 7)
	alarms := 0
	const spikeBin = 1200
	for b := 1008; b < 1296; b++ {
		v := x.Row(b)
		if b == spikeBin {
			v[flow] += 9e7
		}
		al, anomalous, err := od.Process(traffic.LinkLoadAt(topo, v))
		if err != nil {
			t.Fatal(err)
		}
		if anomalous {
			alarms++
			if b == spikeBin {
				if al.Flow != flow {
					t.Fatalf("online alarm identified flow %d want %d", al.Flow, flow)
				}
				if al.Bytes < 4e7 {
					t.Fatalf("online alarm bytes = %v", al.Bytes)
				}
			}
		} else if b == spikeBin {
			t.Fatal("online detector missed the injected spike")
		}
	}
	if alarms > 10 {
		t.Fatalf("online false alarms too high: %d", alarms)
	}
	if od.Processed() != 288 {
		t.Fatalf("Processed = %d want 288", od.Processed())
	}
}

func TestOnlineDetectorRefit(t *testing.T) {
	topo, x, _, _, _ := fitPipeline(t, 61, 1008)
	y := traffic.LinkLoads(topo, x)
	history := mat.Zeros(600, topo.NumLinks())
	for b := 0; b < 600; b++ {
		history.SetRow(b, y.RowView(b))
	}
	od, err := NewOnlineDetector(history, topo.RoutingMatrix(), OnlineConfig{
		Window:     600,
		RefitEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	for b := 600; b < 900; b++ {
		if _, _, err := od.Process(y.Row(b)); err != nil {
			t.Fatalf("bin %d: refit failed: %v", b, err)
		}
	}
	if err := od.Refit(); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineDetectorWindowShorterThanHistory(t *testing.T) {
	topo, _, y := testDataset(t, 62, 432)
	od, err := NewOnlineDetector(y, topo.RoutingMatrix(), OnlineConfig{Window: 300})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := od.Process(y.Row(0)); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineDetectorBadWindow(t *testing.T) {
	topo, _, y := testDataset(t, 63, 288)
	if _, err := NewOnlineDetector(y, topo.RoutingMatrix(), OnlineConfig{Window: 0}); err == nil {
		t.Fatal("expected error for zero window")
	}
}

func TestOnlineDetectorConcurrentProcess(t *testing.T) {
	topo, _, y := testDataset(t, 64, 432)
	od, err := NewOnlineDetector(y, topo.RoutingMatrix(), OnlineConfig{Window: 432})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < 50; b++ {
				od.Process(y.Row((g*50 + b) % 432))
			}
		}(g)
	}
	wg.Wait()
	if od.Processed() != 200 {
		t.Fatalf("Processed = %d want 200", od.Processed())
	}
}

func TestRingBuffer(t *testing.T) {
	r := newRing(3)
	if r.matrix() != nil {
		t.Fatal("empty ring must return nil matrix")
	}
	r.push([]float64{1, 1})
	r.push([]float64{2, 2})
	m := r.matrix()
	if m.Rows() != 2 || m.At(0, 0) != 1 || m.At(1, 0) != 2 {
		t.Fatalf("partial ring matrix wrong: %v", m)
	}
	r.push([]float64{3, 3})
	r.push([]float64{4, 4}) // evicts 1
	m = r.matrix()
	if m.Rows() != 3 {
		t.Fatalf("full ring rows = %d", m.Rows())
	}
	if m.At(0, 0) != 2 || m.At(2, 0) != 4 {
		t.Fatalf("ring order wrong: %v", m)
	}
}
