package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"netanomaly/internal/mat"
)

// Snapshot wire format ("NAMS"): every portable detector state is one
// self-framing envelope —
//
//	magic "NAMS" | version u8 | kind u8 | payload length u64 LE | payload
//
// so envelopes nest (multiflow and hybrid embed their stage detectors'
// envelopes inside their own payload) and concatenate (a monitor
// checkpoint is a sequence of view envelopes) without any out-of-band
// framing. All integers are little-endian; floats are IEEE-754 bits.
// The encoding is canonical: a payload the decoder accepts re-encodes
// byte-for-byte, which is what lets the fuzz harness prove round-trip
// stability.
//
// Error taxonomy mirrors the NAMB matrix format: structural corruption
// (bad magic, impossible lengths, dimensions that contradict each
// other) wraps ErrSnapshotFormat; a stream that simply ends early wraps
// io.ErrUnexpectedEOF; and a well-formed snapshot offered to the wrong
// detector (different kind, different link count) wraps
// ErrSnapshotMismatch. Test with errors.Is.

// ErrSnapshotFormat is the classification for structurally corrupt
// snapshots: wrong magic, unsupported version, lengths or dimensions
// that cannot be satisfied. Truncation is classified separately as
// io.ErrUnexpectedEOF.
var ErrSnapshotFormat = errors.New("core: malformed detector snapshot")

// ErrSnapshotMismatch is the classification for well-formed snapshots
// that do not belong to the detector asked to restore them: a different
// backend kind, a different link count, or incompatible construction
// parameters.
var ErrSnapshotMismatch = errors.New("core: snapshot does not match detector")

const (
	snapshotMagic   = "NAMS"
	snapshotVersion = 1

	// snapshotHeaderLen is magic + version + kind + payload length.
	snapshotHeaderLen = 4 + 1 + 1 + 8

	// maxSnapshotPayload bounds a single envelope's payload so a
	// corrupted or adversarial length prefix cannot force a huge
	// allocation before any content is validated.
	maxSnapshotPayload = 1 << 30
	// maxSnapshotElems bounds one encoded slice or matrix (in float64
	// elements) for the same reason.
	maxSnapshotElems = 1 << 24
)

// Snapshot kind bytes, one per portable state shape. The low range is
// the detector backends; 0x20+ is reserved for engine-level envelopes
// (per-view and whole-monitor checkpoints) so a detector Restore can
// never confuse an engine checkpoint for its own state.
const (
	SnapKindSubspace    byte = 1
	SnapKindIncremental byte = 2
	SnapKindMultiscale  byte = 3
	SnapKindMultiflow   byte = 4
	SnapKindEWMA        byte = 5
	SnapKindHoltWinters byte = 6
	SnapKindFourier     byte = 7
	SnapKindHybrid      byte = 8
	SnapKindSketch      byte = 9

	SnapKindView    byte = 0x20
	SnapKindMonitor byte = 0x21
	// SnapKindIncidents is the incident correlator's live table — an
	// engine-level envelope appended after the monitor envelope in a
	// checkpoint file so a warm restart resumes open incidents.
	SnapKindIncidents byte = 0x22
)

// KindName maps a snapshot kind byte to the backend name Stats()
// reports ("subspace", "ewma", ...), or "" for an unknown byte.
func KindName(kind byte) string {
	switch kind {
	case SnapKindSubspace:
		return "subspace"
	case SnapKindIncremental:
		return "incremental"
	case SnapKindMultiscale:
		return "multiscale"
	case SnapKindMultiflow:
		return "multiflow"
	case SnapKindEWMA:
		return "ewma"
	case SnapKindHoltWinters:
		return "holtwinters"
	case SnapKindFourier:
		return "fourier"
	case SnapKindHybrid:
		return "hybrid"
	case SnapKindSketch:
		return "sketch"
	case SnapKindView:
		return "view"
	case SnapKindMonitor:
		return "monitor"
	case SnapKindIncidents:
		return "incidents"
	default:
		return ""
	}
}

// SnapshotMismatchf builds an ErrSnapshotMismatch-classified error.
func SnapshotMismatchf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSnapshotMismatch, fmt.Sprintf(format, args...))
}

// SnapshotFormatf builds an ErrSnapshotFormat-classified error, for
// decoders outside this package (the incident correlator) that enforce
// canonical payloads of their own.
func SnapshotFormatf(format string, args ...any) error {
	return snapshotFormatf(format, args...)
}

func snapshotFormatf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSnapshotFormat, fmt.Sprintf(format, args...))
}

// SnapshotWriter serializes snapshot payload fields. It latches the
// first write error; callers check Err once at the end.
type SnapshotWriter struct {
	w       io.Writer
	err     error
	scratch [8]byte
}

// NewSnapshotWriter wraps w. Most callers use EncodeSnapshot instead,
// which frames the payload in an envelope.
func NewSnapshotWriter(w io.Writer) *SnapshotWriter { return &SnapshotWriter{w: w} }

// Err returns the first error any write hit.
func (sw *SnapshotWriter) Err() error { return sw.err }

func (sw *SnapshotWriter) write(b []byte) {
	if sw.err != nil {
		return
	}
	_, sw.err = sw.w.Write(b)
}

// U8 writes one byte.
func (sw *SnapshotWriter) U8(v byte) {
	sw.scratch[0] = v
	sw.write(sw.scratch[:1])
}

// U32 writes a little-endian uint32.
func (sw *SnapshotWriter) U32(v uint32) {
	binary.LittleEndian.PutUint32(sw.scratch[:4], v)
	sw.write(sw.scratch[:4])
}

// U64 writes a little-endian uint64.
func (sw *SnapshotWriter) U64(v uint64) {
	binary.LittleEndian.PutUint64(sw.scratch[:8], v)
	sw.write(sw.scratch[:8])
}

// I64 writes a little-endian int64.
func (sw *SnapshotWriter) I64(v int64) { sw.U64(uint64(v)) }

// Int writes an int as an int64.
func (sw *SnapshotWriter) Int(v int) { sw.I64(int64(v)) }

// F64 writes a float64's IEEE-754 bits.
func (sw *SnapshotWriter) F64(v float64) { sw.U64(math.Float64bits(v)) }

// Bool writes a bool as one byte.
func (sw *SnapshotWriter) Bool(v bool) {
	if v {
		sw.U8(1)
	} else {
		sw.U8(0)
	}
}

// Floats writes a length-prefixed float64 slice.
func (sw *SnapshotWriter) Floats(v []float64) {
	sw.U32(uint32(len(v)))
	for _, f := range v {
		sw.F64(f)
	}
}

// Ints writes a length-prefixed int slice (as int64s).
func (sw *SnapshotWriter) Ints(v []int) {
	sw.U32(uint32(len(v)))
	for _, n := range v {
		sw.I64(int64(n))
	}
}

// String writes a length-prefixed UTF-8 string.
func (sw *SnapshotWriter) String(s string) {
	sw.U32(uint32(len(s)))
	sw.write([]byte(s))
}

// Bytes writes a length-prefixed byte blob.
func (sw *SnapshotWriter) Bytes(b []byte) {
	sw.U32(uint32(len(b)))
	sw.write(b)
}

// Matrix writes a possibly-nil dense matrix: a presence byte, then
// dims and row-major data.
func (sw *SnapshotWriter) Matrix(m *mat.Dense) {
	if m == nil {
		sw.U8(0)
		return
	}
	sw.U8(1)
	rows, cols := m.Dims()
	sw.U32(uint32(rows))
	sw.U32(uint32(cols))
	for _, f := range m.RawData() {
		sw.F64(f)
	}
}

// RowRing writes a sliding window: its capacity plus the buffered rows
// oldest-first, so a restore rebuilds an equivalent ring by pushing
// them back in order.
func (sw *SnapshotWriter) RowRing(r *mat.RowRing) {
	sw.U32(uint32(r.Cap()))
	sw.Matrix(r.Matrix())
}

// Nested hands the writer to write so a composite backend (multiflow,
// hybrid) can embed a stage detector's self-framed envelope inside its
// own payload. The child's error latches like any other write error.
func (sw *SnapshotWriter) Nested(write func(io.Writer) error) {
	if sw.err != nil {
		return
	}
	sw.err = write(sw.w)
}

// SnapshotReader deserializes snapshot payload fields, latching the
// first error (classified per the package taxonomy). Reads after an
// error return zero values.
type SnapshotReader struct {
	r       io.Reader
	err     error
	scratch [8]byte
}

// NewSnapshotReader wraps r. Most callers use DecodeSnapshot instead,
// which strips the envelope and enforces the trailing-byte check.
func NewSnapshotReader(r io.Reader) *SnapshotReader { return &SnapshotReader{r: r} }

// Err returns the first error any read hit.
func (sr *SnapshotReader) Err() error { return sr.err }

func (sr *SnapshotReader) fail(err error) {
	if sr.err == nil {
		sr.err = err
	}
}

func (sr *SnapshotReader) read(b []byte) bool {
	if sr.err != nil {
		return false
	}
	if _, err := io.ReadFull(sr.r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		sr.err = fmt.Errorf("core: snapshot truncated: %w", err)
		return false
	}
	return true
}

// U8 reads one byte.
func (sr *SnapshotReader) U8() byte {
	if !sr.read(sr.scratch[:1]) {
		return 0
	}
	return sr.scratch[0]
}

// U32 reads a little-endian uint32.
func (sr *SnapshotReader) U32() uint32 {
	if !sr.read(sr.scratch[:4]) {
		return 0
	}
	return binary.LittleEndian.Uint32(sr.scratch[:4])
}

// U64 reads a little-endian uint64.
func (sr *SnapshotReader) U64() uint64 {
	if !sr.read(sr.scratch[:8]) {
		return 0
	}
	return binary.LittleEndian.Uint64(sr.scratch[:8])
}

// I64 reads a little-endian int64.
func (sr *SnapshotReader) I64() int64 { return int64(sr.U64()) }

// Int reads an int64 into an int.
func (sr *SnapshotReader) Int() int { return int(sr.I64()) }

// NonNegInt reads an int64 and rejects negative values as corruption.
func (sr *SnapshotReader) NonNegInt() int {
	v := sr.I64()
	if sr.err == nil && v < 0 {
		sr.fail(snapshotFormatf("negative count %d", v))
		return 0
	}
	return int(v)
}

// F64 reads a float64 from its IEEE-754 bits.
func (sr *SnapshotReader) F64() float64 { return math.Float64frombits(sr.U64()) }

// Bool reads a bool, rejecting bytes other than 0 or 1 as corruption
// (keeping the encoding canonical).
func (sr *SnapshotReader) Bool() bool {
	switch b := sr.U8(); b {
	case 0:
		return false
	case 1:
		return true
	default:
		sr.fail(snapshotFormatf("bool byte %#x", b))
		return false
	}
}

// sliceLen reads a u32 length prefix and bounds it.
func (sr *SnapshotReader) sliceLen(what string) int {
	n := sr.U32()
	if sr.err == nil && n > maxSnapshotElems {
		sr.fail(snapshotFormatf("%s length %d exceeds limit", what, n))
		return 0
	}
	return int(n)
}

// Floats reads a length-prefixed float64 slice.
func (sr *SnapshotReader) Floats() []float64 {
	n := sr.sliceLen("float slice")
	if sr.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = sr.F64()
	}
	if sr.err != nil {
		return nil
	}
	return out
}

// Ints reads a length-prefixed int slice.
func (sr *SnapshotReader) Ints() []int {
	n := sr.sliceLen("int slice")
	if sr.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = sr.Int()
	}
	if sr.err != nil {
		return nil
	}
	return out
}

// String reads a length-prefixed UTF-8 string.
func (sr *SnapshotReader) String() string {
	n := sr.sliceLen("string")
	if sr.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	if !sr.read(b) {
		return ""
	}
	return string(b)
}

// Bytes reads a length-prefixed byte blob.
func (sr *SnapshotReader) Bytes() []byte {
	n := sr.sliceLen("byte blob")
	if sr.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, n)
	if !sr.read(b) {
		return nil
	}
	return b
}

// Matrix reads a possibly-nil dense matrix.
func (sr *SnapshotReader) Matrix() *mat.Dense {
	switch p := sr.U8(); p {
	case 0:
		return nil
	case 1:
	default:
		sr.fail(snapshotFormatf("matrix presence byte %#x", p))
		return nil
	}
	rows, cols := sr.U32(), sr.U32()
	if sr.err != nil {
		return nil
	}
	if rows == 0 || cols == 0 {
		sr.fail(snapshotFormatf("matrix dims %dx%d", rows, cols))
		return nil
	}
	if uint64(rows)*uint64(cols) > maxSnapshotElems {
		sr.fail(snapshotFormatf("matrix %dx%d exceeds element limit", rows, cols))
		return nil
	}
	data := make([]float64, int(rows)*int(cols))
	for i := range data {
		data[i] = sr.F64()
	}
	if sr.err != nil {
		return nil
	}
	return mat.NewDense(int(rows), int(cols), data)
}

// RowRing reads a sliding window serialized by SnapshotWriter.RowRing
// into a fresh ring with the serialized capacity, validating the column
// count against cols.
func (sr *SnapshotReader) RowRing(cols int) *mat.RowRing {
	capacity := sr.U32()
	m := sr.Matrix()
	if sr.err != nil {
		return nil
	}
	if capacity == 0 || capacity > maxSnapshotElems {
		sr.fail(snapshotFormatf("ring capacity %d", capacity))
		return nil
	}
	ring := mat.NewRowRing(int(capacity), cols)
	if m == nil {
		return ring
	}
	rows, c := m.Dims()
	if c != cols {
		sr.fail(SnapshotMismatchf("ring has %d columns, detector expects %d", c, cols))
		return nil
	}
	if rows > int(capacity) {
		sr.fail(snapshotFormatf("ring holds %d rows over capacity %d", rows, capacity))
		return nil
	}
	for b := 0; b < rows; b++ {
		ring.Push(m.RowView(b))
	}
	return ring
}

// Nested hands the remaining payload stream to read so a composite
// backend can restore a stage detector from the envelope embedded at
// this position. The child's (already classified) error latches like
// any other read error.
func (sr *SnapshotReader) Nested(read func(io.Reader) error) {
	if sr.err != nil {
		return
	}
	sr.err = read(sr.r)
}

// EncodeSnapshot buffers the payload encode writes, then frames it in a
// NAMS envelope on w. The payload is buffered (not streamed) because
// the envelope's length prefix must be exact — it is what lets
// envelopes nest and concatenate.
func EncodeSnapshot(w io.Writer, kind byte, encode func(*SnapshotWriter)) error {
	var buf bytes.Buffer
	sw := NewSnapshotWriter(&buf)
	encode(sw)
	if err := sw.Err(); err != nil {
		return err
	}
	var hdr [snapshotHeaderLen]byte
	copy(hdr[:4], snapshotMagic)
	hdr[4] = snapshotVersion
	hdr[5] = kind
	binary.LittleEndian.PutUint64(hdr[6:], uint64(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// readSnapshotHeader validates the envelope header and returns the kind
// byte and payload length.
func readSnapshotHeader(r io.Reader) (kind byte, payloadLen uint64, err error) {
	var hdr [snapshotHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, 0, fmt.Errorf("core: snapshot header truncated: %w", io.ErrUnexpectedEOF)
		}
		return 0, 0, err
	}
	if string(hdr[:4]) != snapshotMagic {
		return 0, 0, snapshotFormatf("bad magic %q", hdr[:4])
	}
	if hdr[4] != snapshotVersion {
		return 0, 0, snapshotFormatf("unsupported snapshot version %d", hdr[4])
	}
	kind = hdr[5]
	if KindName(kind) == "" {
		return 0, 0, snapshotFormatf("unknown snapshot kind %#x", kind)
	}
	payloadLen = binary.LittleEndian.Uint64(hdr[6:])
	if payloadLen > maxSnapshotPayload {
		return 0, 0, snapshotFormatf("payload length %d exceeds limit", payloadLen)
	}
	return kind, payloadLen, nil
}

// ReadSnapshotEnvelope consumes exactly one envelope from r and returns
// its kind and the complete envelope bytes (header included), so a
// caller can route the blob to the right detector's Restore without
// understanding the payload. Errors follow the package taxonomy.
func ReadSnapshotEnvelope(r io.Reader) (kind byte, envelope []byte, err error) {
	var hdr [snapshotHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, err // clean end-of-stream: caller distinguishes
		}
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("core: snapshot header truncated: %w", err)
		}
		return 0, nil, err
	}
	kind, payloadLen, err := readSnapshotHeader(bytes.NewReader(hdr[:]))
	if err != nil {
		return 0, nil, err
	}
	envelope = make([]byte, snapshotHeaderLen+int(payloadLen))
	copy(envelope, hdr[:])
	if _, err := io.ReadFull(r, envelope[snapshotHeaderLen:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("core: snapshot payload truncated: %w", err)
	}
	return kind, envelope, nil
}

// SnapshotKind returns the kind byte of an envelope blob produced by
// ReadSnapshotEnvelope or EncodeSnapshot.
func SnapshotKind(envelope []byte) (byte, error) {
	if len(envelope) < snapshotHeaderLen {
		return 0, fmt.Errorf("core: snapshot header truncated: %w", io.ErrUnexpectedEOF)
	}
	kind, _, err := readSnapshotHeader(bytes.NewReader(envelope))
	return kind, err
}

// DecodeSnapshot strips one envelope from r, verifies the kind matches
// wantKind (a mismatch wraps ErrSnapshotMismatch — the caller offered
// the snapshot to the wrong detector), and hands the payload to decode.
// The payload must be consumed exactly: trailing bytes are corruption,
// which is what keeps accepted snapshots canonical.
func DecodeSnapshot(r io.Reader, wantKind byte, decode func(*SnapshotReader) error) error {
	kind, payloadLen, err := readSnapshotHeader(r)
	if err != nil {
		return err
	}
	if kind != wantKind {
		return SnapshotMismatchf("snapshot is a %s state, detector is %s",
			KindName(kind), KindName(wantKind))
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("core: snapshot payload truncated: %w", err)
	}
	br := bytes.NewReader(payload)
	sr := &SnapshotReader{r: br}
	err = decode(sr)
	if err == nil {
		err = sr.Err()
	}
	if err != nil {
		// The payload was delivered whole, so running off its end is a
		// length prefix that lied — corruption, not truncation. This
		// holds whether the EOF was latched in the reader or returned
		// early by the decode callback.
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return snapshotFormatf("payload shorter than its structure: %v", err)
		}
		return err
	}
	if br.Len() > 0 {
		return snapshotFormatf("%d trailing bytes after payload", br.Len())
	}
	return nil
}

// EncodeDetector writes a fitted Detector — the exact active model, not
// its training window — as a payload fragment: rank, means, the normal
// principal axes P, the residual variances, and the confidence level.
// Serializing the model itself (rather than refitting on restore) is
// what makes a restored detector's alarm stream bin-for-bin identical
// to the original's.
func EncodeDetector(sw *SnapshotWriter, det *Detector) {
	m := det.Model()
	sw.Int(m.rank)
	sw.Floats(m.means)
	sw.Matrix(m.p)
	sw.Floats(m.residVariances)
	sw.F64(det.Confidence())
}

// DecodeDetector reads an EncodeDetector fragment and rebuilds the
// detector, recomputing the derived operators (C = P P^T, C~ = I - C,
// P^T means) with the same arithmetic Build uses so restored detection
// matches the original to the bit.
func DecodeDetector(sr *SnapshotReader) (*Detector, error) {
	rank := sr.NonNegInt()
	means := sr.Floats()
	pm := sr.Matrix()
	resid := sr.Floats()
	confidence := sr.F64()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	m := len(means)
	if rank < 1 || rank >= m {
		return nil, snapshotFormatf("model rank %d out of [1, %d]", rank, m-1)
	}
	if pm == nil {
		return nil, snapshotFormatf("model axes missing")
	}
	if rows, cols := pm.Dims(); rows != m || cols != rank {
		return nil, snapshotFormatf("model axes are %dx%d, want %dx%d", rows, cols, m, rank)
	}
	if len(resid) != m-rank {
		return nil, snapshotFormatf("model has %d residual variances, want %d", len(resid), m-rank)
	}
	if confidence <= 0 || confidence >= 1 {
		return nil, snapshotFormatf("model confidence %v out of (0,1)", confidence)
	}
	c := mat.Mul(pm, pm.T())
	model := &Model{
		rank:           rank,
		means:          means,
		p:              pm,
		pmeans:         mat.MulTVec(pm, means),
		c:              c,
		ct:             mat.Sub(mat.Identity(m), c),
		residVariances: resid,
	}
	det, err := NewDetector(model, confidence)
	if err != nil {
		return nil, snapshotFormatf("model threshold: %v", err)
	}
	return det, nil
}

// encodeDiagnoser writes the detection stage of a diagnose pipeline;
// the identification stage is derived entirely from the model and the
// routing matrix, so it is rebuilt on decode rather than serialized.
func encodeDiagnoser(sw *SnapshotWriter, d *Diagnoser) {
	EncodeDetector(sw, d.det)
}

// decodeDiagnoser reads an encodeDiagnoser fragment and rebuilds the
// pipeline against the restoring detector's own routing matrix —
// routing is construction configuration, not portable state.
func decodeDiagnoser(sr *SnapshotReader, a *mat.Dense, links int) (*Diagnoser, error) {
	det, err := DecodeDetector(sr)
	if err != nil {
		return nil, err
	}
	if det.Model().NumLinks() != links {
		return nil, SnapshotMismatchf("model has %d links, detector expects %d",
			det.Model().NumLinks(), links)
	}
	id, err := NewIdentifier(det.Model(), a)
	if err != nil {
		return nil, snapshotFormatf("identifier: %v", err)
	}
	return &Diagnoser{det: det, id: id}, nil
}
