package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"netanomaly/internal/mat"
)

// IncrementalConfig configures NewIncrementalDetector.
type IncrementalConfig struct {
	// Lambda is the covariance forgetting factor in (0, 1]; 1 (the
	// default) weights all history equally, smaller values forget with
	// time constant ~1/(1-Lambda) bins (0.999 ~ a week of ten-minute
	// bins).
	Lambda float64
	// RefitEvery triggers a background model rebuild from the tracked
	// covariance after this many processed bins; 0 disables automatic
	// rebuilds (call Refit explicitly).
	RefitEvery int
	// DriftTol gates automatic rebuilds: the freshly solved model
	// replaces the active one only when the Frobenius distance between
	// their residual projectors reaches DriftTol (the paper observes
	// P P^T is stable week to week, so most intervals need no new
	// model). 0 swaps on every interval. Explicit Refit ignores the
	// gate.
	DriftTol float64
	// Options configure the diagnoser (confidence, sigma, fixed rank).
	Options Options
}

// IncrementalDetector is the streaming subspace backend that maintains
// its model from an exponentially weighted mean/covariance estimate
// (CovTracker) instead of a sliding window of raw measurements. Each
// batch makes rank-1 covariance updates in place — no window snapshot
// copy — and a rebuild re-solves only the small m x m symmetric
// eigenproblem rather than the O(t·m^2) full-window SVD, which is what
// makes frequent refits affordable at scale (Section 7.1's "cheap
// model refresh"). The normal-subspace rank is resolved once at seed
// time with the paper's separation procedure on the seed history (a
// running covariance has no temporal projections to separate on) and
// retained across rebuilds unless Options.Rank pins it.
//
// Concurrency follows OnlineDetector: the active Diagnoser sits behind
// an atomic pointer that ProcessBatch loads lock-free, rebuilds run on
// a tracker snapshot in a background goroutine, and a failed rebuild
// keeps the previous model in force and surfaces its error on a later
// call.
type IncrementalDetector struct {
	a        *mat.Dense
	opts     Options
	links    int
	lambda   float64
	driftTol float64

	diag atomic.Pointer[Diagnoser]

	mu         sync.Mutex // guards the fields below
	tracker    *CovTracker
	rank       int
	processed  int
	sinceRefit int
	refitEvery int
	gate       *RefitGate
	refits     int
	// skipped counts drift-gated intervals where a candidate model was
	// solved but found too close to the active one to swap.
	skipped   int
	refitHook func()
}

var _ ViewDetector = (*IncrementalDetector)(nil)

// NewIncrementalDetector seeds the model with a full batch fit on
// history (bins x links) — identical to the subspace backend's seed, so
// the two start from the same model — and initializes the covariance
// tracker from the same rows. routing (links x flows) drives
// identification.
func NewIncrementalDetector(history, a *mat.Dense, cfg IncrementalConfig) (*IncrementalDetector, error) {
	if cfg.Lambda == 0 {
		cfg.Lambda = 1
	}
	cfg.Options.fillDefaults()
	t, links := history.Dims()
	if t < 2 {
		return nil, ErrTooFewSamples
	}
	diag, err := NewDiagnoser(history, a, cfg.Options)
	if err != nil {
		return nil, err
	}
	tracker, err := NewCovTracker(links, cfg.Lambda)
	if err != nil {
		return nil, err
	}
	tracker.UpdateAll(history)
	d := &IncrementalDetector{
		a:          a,
		opts:       cfg.Options,
		links:      links,
		lambda:     cfg.Lambda,
		driftTol:   cfg.DriftTol,
		tracker:    tracker,
		rank:       diag.Detector().Model().Rank(),
		refitEvery: cfg.RefitEvery,
	}
	d.gate = NewRefitGate(&d.mu)
	d.diag.Store(diag)
	return d, nil
}

// SetRefitHook installs a function that runs inside every background
// rebuild goroutine before solving begins; tests use it to hold a
// rebuild open. Call before streaming starts.
func (d *IncrementalDetector) SetRefitHook(h func()) { d.refitHook = h }

// diagnoserFromTracker solves the m x m eigenproblem on a tracker
// snapshot and assembles the full pipeline at the given rank. With
// lambda = 1 the tracked covariance is the population estimate (divide
// by n); the variances are rescaled to the sample convention (divide by
// n-1) so thresholds match the batch SVD fit exactly.
func (d *IncrementalDetector) diagnoserFromTracker(tr *CovTracker, rank int) (*Diagnoser, error) {
	p, err := tr.PCA()
	if err != nil {
		return nil, err
	}
	if d.lambda == 1 && tr.Count() > 1 {
		bias := float64(tr.Count()) / float64(tr.Count()-1)
		for i := range p.Variances {
			p.Variances[i] *= bias
		}
	}
	model, err := Build(p, rank)
	if err != nil {
		return nil, err
	}
	det, err := NewDetector(model, d.opts.Confidence)
	if err != nil {
		return nil, err
	}
	id, err := NewIdentifier(model, d.a)
	if err != nil {
		return nil, err
	}
	return &Diagnoser{det: det, id: id}, nil
}

// ProcessBatch tests a block of measurements (bins x links) against the
// active model, absorbs the non-anomalous rows into the covariance
// tracker, and schedules a background rebuild when the refit interval
// has elapsed. Alarms carry sequence numbers continuing the
// per-detector count; a deferred rebuild failure is reported alongside
// the batch's detections.
func (d *IncrementalDetector) ProcessBatch(y *mat.Dense) ([]Alarm, error) {
	bins, cols := y.Dims()
	if cols != d.links {
		return nil, fmt.Errorf("core: batch has %d links, detector expects %d", cols, d.links)
	}
	diags, flags := d.diag.Load().DiagnoseBatch(y)

	d.mu.Lock()
	base := d.processed
	d.processed += bins
	var alarms []Alarm
	for b := 0; b < bins; b++ {
		if flags[b] {
			diag := diags[b]
			diag.Bin = base + b
			alarms = append(alarms, Alarm{Seq: base + b, Diagnosis: diag})
		}
	}
	// Anomalous bins are withheld from the tracked model, mirroring the
	// window exclusion of the subspace backend.
	d.tracker.UpdateMasked(y, flags)
	err := d.gate.TakeErrorLocked()
	var snap *CovTracker
	rank := d.rank
	if d.refitEvery > 0 {
		d.sinceRefit += bins
		if d.sinceRefit >= d.refitEvery && d.gate.TryBeginLocked() {
			d.sinceRefit = 0
			snap = d.tracker.Snapshot()
		}
	}
	d.mu.Unlock()

	if snap != nil {
		d.spawnRebuild(snap, rank)
	}
	return alarms, err
}

// spawnRebuild solves a candidate model from the tracker snapshot in a
// background goroutine and swaps it in when it has drifted at least
// DriftTol from the model active at decision time (always, when
// DriftTol is 0). The caller has already claimed the gate; the
// goroutine releases it after the swap decision so fits never
// interleave.
func (d *IncrementalDetector) spawnRebuild(snap *CovTracker, rank int) {
	go func() {
		if h := d.refitHook; h != nil {
			h()
		}
		cand, err := d.diagnoserFromTracker(snap, rank)
		swap := err == nil
		if swap && d.driftTol > 0 {
			// Measure drift against the model active now, not the one
			// active when the batch was processed: an explicit Refit or
			// Seed may have swapped in a fresher reference since.
			drift := mat.Sub(
				d.diag.Load().Detector().Model().ResidualOperator(),
				cand.Detector().Model().ResidualOperator(),
			).Frobenius()
			swap = drift >= d.driftTol
		}
		if swap {
			d.diag.Store(cand)
		}
		if err != nil {
			err = fmt.Errorf("core: incremental rebuild: %w", err)
		}
		d.mu.Lock()
		switch {
		case err == nil && swap:
			d.refits++
		case err == nil:
			d.skipped++
		}
		d.gate.EndLocked(err)
		d.mu.Unlock()
	}()
}

// Refit synchronously rebuilds the model from the current tracker state,
// bypassing the drift gate. It serializes with background rebuilds but
// never blocks concurrent detection (the eigensolve runs on a snapshot
// outside the lock; streaming keeps hitting the previous model until the
// atomic swap). A failed rebuild leaves the previous model in force.
func (d *IncrementalDetector) Refit() error {
	d.mu.Lock()
	d.gate.BeginLocked()
	snap := d.tracker.Snapshot()
	rank := d.rank
	d.mu.Unlock()

	cand, err := d.diagnoserFromTracker(snap, rank)
	if err == nil {
		d.diag.Store(cand)
	} else {
		err = fmt.Errorf("core: incremental rebuild: %w", err)
	}

	d.mu.Lock()
	if err == nil {
		d.refits++
	}
	d.gate.EndLocked(nil)
	d.mu.Unlock()
	return err
}

// Seed resets the covariance tracker to the history block and refits
// the model with a full batch fit on it, re-resolving the rank exactly
// as construction does. It serializes with in-flight rebuilds; the
// processed-bin counter keeps running.
func (d *IncrementalDetector) Seed(history *mat.Dense) error {
	t, links := history.Dims()
	if links != d.links {
		return fmt.Errorf("core: seed history has %d links, detector expects %d", links, d.links)
	}
	if t < 2 {
		return ErrTooFewSamples
	}
	d.mu.Lock()
	d.gate.BeginLocked()
	d.mu.Unlock()

	diag, err := NewDiagnoser(history, d.a, d.opts)
	var tracker *CovTracker
	if err == nil {
		if tracker, err = NewCovTracker(links, d.lambda); err == nil {
			tracker.UpdateAll(history)
			d.diag.Store(diag)
		}
	}
	if err != nil {
		err = fmt.Errorf("core: incremental seed: %w", err)
	}

	d.mu.Lock()
	if err == nil {
		d.tracker = tracker
		d.rank = diag.Detector().Model().Rank()
		d.sinceRefit = 0
		d.refits++
	}
	d.gate.EndLocked(nil)
	d.mu.Unlock()
	return err
}

// WaitRefits blocks until no rebuild is in flight.
func (d *IncrementalDetector) WaitRefits() { d.gate.Wait() }

// TakeRefitError returns and clears the deferred error from the last
// failed background rebuild, if any.
func (d *IncrementalDetector) TakeRefitError() error { return d.gate.TakeError() }

// Stats reports the detector's current state. Refits counts swapped-in
// rebuilds; drift-gated intervals that solved a candidate but kept the
// active model are visible through SkippedRebuilds.
func (d *IncrementalDetector) Stats() ViewStats {
	d.mu.Lock()
	processed, refits := d.processed, d.refits
	d.mu.Unlock()
	return ViewStats{
		Backend:   "incremental",
		Links:     d.links,
		Processed: processed,
		Rank:      d.diag.Load().Detector().Model().Rank(),
		Refits:    refits,
	}
}

// Snapshot serializes the covariance tracker's moments (count, mean,
// covariance), the forgetting factor, the retained rank, the counters,
// and the exact active model. The refit gate is taken first so an
// in-flight rebuild is waited out, never captured mid-swap.
func (d *IncrementalDetector) Snapshot(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gate.BeginLocked()
	defer d.gate.EndLocked(nil)
	return EncodeSnapshot(w, SnapKindIncremental, func(sw *SnapshotWriter) {
		sw.Int(d.links)
		sw.F64(d.lambda)
		sw.Int(d.tracker.n)
		sw.Floats(d.tracker.mean)
		sw.Matrix(d.tracker.cov)
		sw.Int(d.rank)
		sw.Int(d.processed)
		sw.Int(d.sinceRefit)
		sw.Int(d.refits)
		sw.Int(d.skipped)
		encodeDiagnoser(sw, d.diag.Load())
	})
}

// Restore replaces the tracker, counters, and active model with a
// snapshot from an identically configured incremental detector. The
// snapshot's forgetting factor must match the receiver's — a tracker
// restored under a different lambda would silently diverge — and the
// state commits only after the whole payload validates.
func (d *IncrementalDetector) Restore(r io.Reader) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gate.BeginLocked()
	defer d.gate.EndLocked(nil)
	return DecodeSnapshot(r, SnapKindIncremental, func(sr *SnapshotReader) error {
		links := sr.Int()
		if sr.Err() == nil && links != d.links {
			return SnapshotMismatchf("snapshot has %d links, detector expects %d", links, d.links)
		}
		lambda := sr.F64()
		if sr.Err() == nil && lambda != d.lambda {
			return SnapshotMismatchf("snapshot forgetting factor %v, detector uses %v", lambda, d.lambda)
		}
		n := sr.NonNegInt()
		mean := sr.Floats()
		cov := sr.Matrix()
		rank := sr.NonNegInt()
		processed := sr.NonNegInt()
		sinceRefit := sr.NonNegInt()
		refits := sr.NonNegInt()
		skipped := sr.NonNegInt()
		if err := sr.Err(); err != nil {
			return err
		}
		if len(mean) != d.links {
			return snapshotFormatf("tracker mean has %d entries, want %d", len(mean), d.links)
		}
		if cov == nil {
			return snapshotFormatf("tracker covariance missing")
		}
		if rows, cols := cov.Dims(); rows != d.links || cols != d.links {
			return snapshotFormatf("tracker covariance is %dx%d, want %dx%d", rows, cols, d.links, d.links)
		}
		if rank < 1 || rank >= d.links {
			return snapshotFormatf("retained rank %d out of [1, %d]", rank, d.links-1)
		}
		diag, err := decodeDiagnoser(sr, d.a, d.links)
		if err != nil {
			return err
		}
		d.tracker = &CovTracker{
			dim:    d.links,
			lambda: d.lambda,
			n:      n,
			mean:   mean,
			cov:    cov,
			delta:  make([]float64, d.links),
			delta2: make([]float64, d.links),
		}
		d.rank = rank
		d.processed = processed
		d.sinceRefit = sinceRefit
		d.refits = refits
		d.skipped = skipped
		d.diag.Store(diag)
		return nil
	})
}

// SkippedRebuilds returns how many automatic rebuild intervals solved a
// candidate model but left the active one in place because the subspace
// had drifted less than DriftTol.
func (d *IncrementalDetector) SkippedRebuilds() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.skipped
}

// Diagnoser returns the currently active model pipeline.
func (d *IncrementalDetector) Diagnoser() *Diagnoser { return d.diag.Load() }
