package core

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"netanomaly/internal/mat"
)

// Escalation selects which bins a HybridDetector's identification stage
// sees. The triage stage sees every bin regardless.
type Escalation int

const (
	// EscalateImmediate escalates every triage-alarmed bin as it
	// happens (the default): single-bin spikes get flow identification
	// at the cost of one subspace pass per triage alarm.
	EscalateImmediate Escalation = iota
	// EscalateConfirm escalates a triage-alarmed bin only once the run
	// of consecutive alarmed bins reaches HybridConfig.Confirm: brief
	// triage blips never pay the identification cost (their alarms
	// still fire, without flow attribution). Keep Confirm below the
	// triage stage's ReabsorbAfter horizon, or a persistent anomaly
	// stops alarming before it ever confirms.
	EscalateConfirm
	// EscalateAlways escalates every bin, alarmed or not — the
	// identification stage runs at full subspace cost and can flag
	// anomalies the triage stage misses. Use it to measure the triage
	// stage's miss rate against subspace-grade detection.
	EscalateAlways
)

// String names the policy as ParseEscalation accepts it.
func (e Escalation) String() string {
	switch e {
	case EscalateImmediate:
		return "immediate"
	case EscalateConfirm:
		return "confirm"
	case EscalateAlways:
		return "always"
	}
	return fmt.Sprintf("escalation(%d)", int(e))
}

// ParseEscalation parses a policy name — "immediate", "always",
// "confirm", or "confirm:<n>" — into the policy and its confirmation
// count (0 means HybridConfig's default). An empty string is
// "immediate".
func ParseEscalation(s string) (Escalation, int, error) {
	switch {
	case s == "" || s == "immediate":
		return EscalateImmediate, 0, nil
	case s == "always":
		return EscalateAlways, 0, nil
	case s == "confirm":
		return EscalateConfirm, 0, nil
	case strings.HasPrefix(s, "confirm:"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "confirm:"))
		if err != nil || n < 1 {
			return 0, 0, fmt.Errorf("core: escalation %q: confirmation count must be a positive integer", s)
		}
		return EscalateConfirm, n, nil
	}
	return 0, 0, fmt.Errorf("core: unknown escalation policy %q (want immediate, confirm[:n], or always)", s)
}

// HybridConfig configures NewHybridDetector.
type HybridConfig struct {
	// Escalation selects which bins reach the identification stage;
	// default EscalateImmediate.
	Escalation Escalation
	// Confirm is the consecutive-alarm count EscalateConfirm requires
	// before escalating; 0 uses 2. Ignored by the other policies.
	Confirm int
	// Window is the capacity of the hybrid's clean-bin window, which
	// feeds the identification stage's background re-seeds; 0 uses the
	// seed history length.
	Window int
	// RefitEvery re-seeds the identification stage from the clean-bin
	// window in the background after this many processed bins; 0
	// disables the re-seed (the triage stage's own refit cadence is
	// configured on the triage detector itself).
	RefitEvery int
	// Hysteresis keeps the identification stage engaged for this many
	// bins after the last policy-driven escalation, so a triage stage
	// oscillating around its threshold does not escalate and
	// de-escalate every other bin. Held bins run identification even
	// when the triage stage is quiet (their alarms, if any, come from
	// the identification stage); 0 disables holding. Ignored by
	// EscalateAlways, which escalates everything anyway.
	Hysteresis int
}

// HybridStats is a HybridDetector's two-stage breakdown: the per-stage
// detector snapshots plus the escalation counters that price the
// triage→identification trade.
type HybridStats struct {
	// Triage and Identify are the stage detectors' own Stats.
	Triage, Identify ViewStats
	// TriageAlarms counts bins the triage stage flagged.
	TriageAlarms int
	// Escalated counts bins handed to the identification stage — the
	// subspace work actually paid for. Under EscalateAlways this is
	// every processed bin.
	Escalated int
	// Identified counts escalated bins the identification stage
	// confirmed; their alarms carry Flow attribution.
	Identified int
	// Suppressed counts triage alarms never escalated (the confirm
	// policy withholding identification from unconfirmed blips); their
	// alarms fired with Flow = -1.
	Suppressed int
	// EscalationRuns counts distinct escalation episodes: transitions
	// from not-escalating to escalating. A triage stage flapping around
	// its threshold shows here as many short runs; hysteresis exists to
	// drive this down without losing escalated coverage.
	EscalationRuns int
	// HeldBins counts bins escalated purely by hysteresis — the triage
	// stage was quiet, but the hold window kept identification engaged.
	HeldBins int
}

// HybridDetector pairs a cheap always-on triage stage with a subspace
// identification stage behind one ViewDetector: every bin runs through
// the triage detector (typically a per-link forecast backend whose
// steady-state cost is a smoothing recursion), and only escalated bins
// reach the identification detector (typically the windowed subspace
// backend), whose DiagnoseBatch supplies the OD-flow attribution
// temporal methods cannot. On an anomaly-free stream the hybrid's cost
// is the triage recursion; when the triage stage alarms, the escalated
// bins pay one batched subspace pass and the resulting alarms carry
// Flow and Bytes — the paper's Section 6.2/7.3 trade (temporal methods
// localize in time+link, the subspace method identifies the flow)
// collapsed into one operating point.
//
// Alarm semantics: a bin alarms when the triage stage flags it (or,
// under EscalateAlways, when either stage does). When the
// identification stage confirms an escalated bin, the alarm carries its
// Diagnosis — subspace SPE, threshold, identified Flow and estimated
// Bytes; otherwise the alarm carries the triage stage's Diagnosis
// (worst link's residual, Flow = -1). One alarm per bin, in sequence
// order.
//
// Model freshness: the identification stage never sees clean bins, so
// its sliding window would go stale. The hybrid keeps its own window of
// recent clean (un-alarmed) bins and re-seeds the identification stage
// from it in the background every RefitEvery bins, under the same
// refit-gate discipline as the other backends — detection never blocks,
// a failed re-seed keeps the previous model and parks its error. The
// triage stage schedules its own refits exactly as it would standalone.
//
// Concurrency follows the ViewDetector contract: one ProcessBatch
// caller at a time, with Seed, Refit, WaitRefits, TakeRefitError and
// Stats callable concurrently. The hybrid must be the stages' only
// caller — handing either stage to another Monitor view breaks the
// one-ProcessBatch-caller guarantee it relies on.
type HybridDetector struct {
	triage     ViewDetector
	identify   ViewDetector
	policy     Escalation
	confirm    int
	hysteresis int
	links      int

	mu         sync.Mutex // guards the fields below
	window     *mat.RowRing
	processed  int
	run        int // consecutive triage-alarmed bins
	hold       int // hysteresis bins left before de-escalating
	inEsc      bool
	sinceRefit int
	refitEvery int
	gate       *RefitGate
	refits     int
	// escalation counters, surfaced by HybridStats
	triageAlarms int
	escalated    int
	identified   int
	suppressed   int
	escRuns      int
	heldBins     int
	refitHook    func()
}

var _ ViewDetector = (*HybridDetector)(nil)

// NewHybridDetector composes two already-seeded stage detectors into a
// hybrid view. history (bins x links) prefills the clean-bin window the
// identification stage re-seeds from — normally the same history both
// stages were seeded on. The stages must agree on the measurement
// width, and the hybrid must become their only caller.
func NewHybridDetector(triage, identify ViewDetector, history *mat.Dense, cfg HybridConfig) (*HybridDetector, error) {
	tLinks, iLinks := triage.Stats().Links, identify.Stats().Links
	if tLinks != iLinks {
		return nil, fmt.Errorf("core: hybrid stages disagree on width: triage %d links, identify %d", tLinks, iLinks)
	}
	bins, cols := history.Dims()
	if cols != tLinks {
		return nil, fmt.Errorf("core: hybrid history has %d links, stages expect %d", cols, tLinks)
	}
	if bins == 0 {
		return nil, fmt.Errorf("core: hybrid history is empty")
	}
	if cfg.Confirm == 0 {
		cfg.Confirm = 2
	}
	if cfg.Confirm < 1 {
		return nil, fmt.Errorf("core: hybrid confirmation count %d < 1", cfg.Confirm)
	}
	if cfg.Hysteresis < 0 {
		return nil, fmt.Errorf("core: hybrid hysteresis %d < 0", cfg.Hysteresis)
	}
	capacity := cfg.Window
	if capacity <= 0 {
		capacity = bins
	}
	d := &HybridDetector{
		triage:     triage,
		identify:   identify,
		policy:     cfg.Escalation,
		confirm:    cfg.Confirm,
		hysteresis: cfg.Hysteresis,
		links:      tLinks,
		window:     mat.NewRowRing(capacity, tLinks),
		refitEvery: cfg.RefitEvery,
	}
	d.gate = NewRefitGate(&d.mu)
	for b := max(0, bins-capacity); b < bins; b++ {
		d.window.Push(history.RowView(b))
	}
	return d, nil
}

// SetRefitHook installs a function that runs inside every background
// re-seed goroutine before fitting begins; tests use it to hold a
// re-seed open. Call before streaming starts.
func (d *HybridDetector) SetRefitHook(h func()) { d.refitHook = h }

// ProcessBatch runs the batch through the triage stage, escalates bins
// per the policy, identifies them with the subspace stage, and returns
// one alarm per alarmed bin in sequence order. Clean bins feed the
// window the identification stage re-seeds from; a deferred failure
// from either stage's background fit (or the hybrid's own re-seed)
// reports alongside the batch's detections.
func (d *HybridDetector) ProcessBatch(y *mat.Dense) ([]Alarm, error) {
	bins, cols := y.Dims()
	if cols != d.links {
		return nil, fmt.Errorf("core: batch has %d links, detector expects %d", cols, d.links)
	}

	// Stage 1: triage, every bin. The stages keep their own sequence
	// counts (they may have streamed before the hybrid wrapped them),
	// so stage alarms are rebased to batch rows via the counter read
	// just before the call — safe because the hybrid is the only
	// ProcessBatch caller.
	tBase := d.triage.Stats().Processed
	tAlarms, err := d.triage.ProcessBatch(y)
	triaged := make(map[int]Diagnosis, len(tAlarms))
	for _, a := range tAlarms {
		row := a.Seq - tBase
		if row < 0 || row >= bins {
			return nil, fmt.Errorf("core: hybrid triage alarm seq %d outside batch of %d bins at base %d", a.Seq, bins, tBase)
		}
		triaged[row] = a.Diagnosis
	}

	// Escalation decisions need the run counter; they and the sequence
	// base are the only state the batch touches before identification.
	d.mu.Lock()
	base := d.processed
	d.processed += bins
	d.triageAlarms += len(tAlarms)
	var escRows []int
	for b := 0; b < bins; b++ {
		_, alarmed := triaged[b]
		if alarmed {
			d.run++
		} else {
			d.run = 0
		}
		esc := false
		switch d.policy {
		case EscalateAlways:
			esc = true
		case EscalateImmediate:
			esc = alarmed
		case EscalateConfirm:
			esc = alarmed && d.run >= d.confirm
		}
		// Hysteresis: a policy-driven escalation re-arms the hold; a
		// quiet bin inside the hold window stays escalated so a triage
		// stage flapping around its threshold does not start a fresh
		// subspace episode every other bin.
		if esc {
			d.hold = d.hysteresis
		} else if d.hold > 0 {
			d.hold--
			d.heldBins++
			esc = true
		}
		if esc && !d.inEsc {
			d.escRuns++
		}
		d.inEsc = esc
		if esc {
			escRows = append(escRows, b)
		} else if alarmed {
			d.suppressed++
		}
	}
	d.escalated += len(escRows)
	d.mu.Unlock()

	// Stage 2: identification, escalated bins only — one batched
	// subspace pass over just those rows.
	identified := make(map[int]Diagnosis)
	if len(escRows) > 0 {
		esc := mat.Zeros(len(escRows), d.links)
		for i, b := range escRows {
			esc.SetRow(i, y.RowView(b))
		}
		iBase := d.identify.Stats().Processed
		iAlarms, ierr := d.identify.ProcessBatch(esc)
		if ierr != nil {
			err = errors.Join(err, ierr)
		}
		for _, a := range iAlarms {
			row := a.Seq - iBase
			if row < 0 || row >= len(escRows) {
				return nil, fmt.Errorf("core: hybrid identify alarm seq %d outside %d escalated bins at base %d", a.Seq, len(escRows), iBase)
			}
			identified[escRows[row]] = a.Diagnosis
		}
	}

	// Emit one alarm per alarmed bin; the identification stage's
	// diagnosis wins when it confirmed the bin (it carries Flow).
	var alarms []Alarm
	for b := 0; b < bins; b++ {
		diag, ok := identified[b]
		if !ok {
			if diag, ok = triaged[b]; !ok {
				continue
			}
		}
		diag.Bin = base + b
		alarms = append(alarms, Alarm{Seq: base + b, Diagnosis: diag})
	}

	// Window and re-seed bookkeeping: bins neither stage flagged are
	// clean and feed the identification stage's next model.
	d.mu.Lock()
	d.identified += len(identified)
	for b := 0; b < bins; b++ {
		if _, tOK := triaged[b]; tOK {
			continue
		}
		if _, iOK := identified[b]; iOK {
			continue
		}
		d.window.Push(y.RowView(b))
	}
	if derr := d.gate.TakeErrorLocked(); derr != nil {
		err = errors.Join(err, derr)
	}
	var snap *mat.Dense
	if d.refitEvery > 0 {
		d.sinceRefit += bins
		if d.sinceRefit >= d.refitEvery && d.window.Len() > 0 && d.gate.TryBeginLocked() {
			d.sinceRefit = 0
			snap = d.window.Matrix()
		}
	}
	d.mu.Unlock()

	if snap != nil {
		d.spawnReseed(snap)
	}
	return alarms, err
}

// spawnReseed re-seeds the identification stage from the clean-bin
// window snapshot in a background goroutine. The caller has already
// claimed the gate; the goroutine releases it, parking a failure as the
// deferred error (the previous model stays in force — Seed commits
// nothing on error).
func (d *HybridDetector) spawnReseed(snap *mat.Dense) {
	go func() {
		if h := d.refitHook; h != nil {
			h()
		}
		err := d.identify.Seed(snap)
		if err != nil {
			err = fmt.Errorf("core: hybrid identify re-seed: %w", err)
		}
		d.mu.Lock()
		if err == nil {
			d.refits++
		}
		d.gate.EndLocked(err)
		d.mu.Unlock()
	}()
}

// Refit synchronously refits both stages: the triage stage from its own
// retained state, the identification stage re-seeded from the hybrid's
// clean-bin window. It serializes with background re-seeds but never
// blocks concurrent detection (both stages fit on snapshots and swap
// atomically). A failed fit leaves that stage's previous model in
// force.
func (d *HybridDetector) Refit() error {
	terr := d.triage.Refit()

	d.mu.Lock()
	d.gate.BeginLocked()
	// The window is never empty: construction and Seed reject empty
	// histories and prefill the ring, and rows are only ever added.
	snap := d.window.Matrix()
	d.mu.Unlock()

	ierr := d.identify.Seed(snap)
	if ierr != nil {
		ierr = fmt.Errorf("core: hybrid identify refit: %w", ierr)
	}

	d.mu.Lock()
	if terr == nil && ierr == nil {
		d.refits++
	}
	d.gate.EndLocked(nil)
	d.mu.Unlock()
	return errors.Join(terr, ierr)
}

// Seed re-seeds both stages from the history block and refills the
// clean-bin window with it, serializing with in-flight re-seeds. The
// processed-bin counter and stage sequence numbers keep running; the
// escalation run resets (the history is presumed clean).
func (d *HybridDetector) Seed(history *mat.Dense) error {
	bins, cols := history.Dims()
	if cols != d.links {
		return fmt.Errorf("core: seed history has %d links, detector expects %d", cols, d.links)
	}
	if bins == 0 {
		return fmt.Errorf("core: seed history is empty")
	}
	d.mu.Lock()
	d.gate.BeginLocked()
	capacity := d.window.Cap()
	d.mu.Unlock()

	err := errors.Join(d.triage.Seed(history), d.identify.Seed(history))
	var window *mat.RowRing
	if err == nil {
		window = mat.NewRowRing(capacity, d.links)
		for b := max(0, bins-capacity); b < bins; b++ {
			window.Push(history.RowView(b))
		}
	}

	d.mu.Lock()
	if err == nil {
		d.window = window
		d.run = 0
		d.hold = 0
		d.inEsc = false
		d.sinceRefit = 0
		d.refits++
	}
	d.gate.EndLocked(nil)
	d.mu.Unlock()
	return err
}

// WaitRefits blocks until no fit is in flight anywhere in the hybrid:
// its own background re-seed, then each stage's internal fits.
func (d *HybridDetector) WaitRefits() {
	d.gate.Wait()
	d.triage.WaitRefits()
	d.identify.WaitRefits()
}

// TakeRefitError returns and clears the deferred errors from the last
// failed background fits — the hybrid's own re-seed and both stages' —
// joined, if any.
func (d *HybridDetector) TakeRefitError() error {
	return errors.Join(d.gate.TakeError(), d.triage.TakeRefitError(), d.identify.TakeRefitError())
}

// Stats reports the detector's current state. Rank is the
// identification stage's normal-subspace rank; Refits counts hybrid-
// level fits (explicit Refit/Seed and background re-seeds of the
// identification stage — the triage stage's own refit cadence is
// visible through HybridStats).
func (d *HybridDetector) Stats() ViewStats {
	d.mu.Lock()
	processed, refits := d.processed, d.refits
	d.mu.Unlock()
	return ViewStats{
		Backend:   "hybrid",
		Links:     d.links,
		Processed: processed,
		Rank:      d.identify.Stats().Rank,
		Refits:    refits,
	}
}

// Snapshot serializes the clean-bin window, the escalation run and
// counters, and then both stage detectors' own envelopes nested inside
// the payload — everything ProcessBatch's sequence rebasing relies on
// (the stage processed counters travel inside the stage envelopes). The
// hybrid's gate is taken first so an in-flight identify re-seed is
// waited out; each stage Snapshot then takes its own gate.
func (d *HybridDetector) Snapshot(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gate.BeginLocked()
	defer d.gate.EndLocked(nil)
	return EncodeSnapshot(w, SnapKindHybrid, func(sw *SnapshotWriter) {
		sw.Int(d.links)
		sw.RowRing(d.window)
		sw.Int(d.processed)
		sw.Int(d.run)
		sw.Int(d.hold)
		sw.Bool(d.inEsc)
		sw.Int(d.sinceRefit)
		sw.Int(d.refits)
		sw.Int(d.triageAlarms)
		sw.Int(d.escalated)
		sw.Int(d.identified)
		sw.Int(d.suppressed)
		sw.Int(d.escRuns)
		sw.Int(d.heldBins)
		sw.Nested(d.triage.Snapshot)
		sw.Nested(d.identify.Snapshot)
	})
}

// Restore replaces the hybrid's window, counters, and both stage
// detectors' state with a snapshot from an identically composed hybrid
// (same stage kinds, same link count; escalation policy and re-seed
// cadence stay the receiver's). Stage state is restored through the
// stages' own Restore, so a snapshot whose nested stage kinds do not
// match the receiver's stages is rejected; if a stage restore fails the
// hybrid should be discarded, as the stages may no longer agree.
func (d *HybridDetector) Restore(r io.Reader) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gate.BeginLocked()
	defer d.gate.EndLocked(nil)
	return DecodeSnapshot(r, SnapKindHybrid, func(sr *SnapshotReader) error {
		links := sr.Int()
		if sr.Err() == nil && links != d.links {
			return SnapshotMismatchf("snapshot has %d links, detector expects %d", links, d.links)
		}
		window := sr.RowRing(d.links)
		processed := sr.NonNegInt()
		run := sr.NonNegInt()
		hold := sr.NonNegInt()
		inEsc := sr.Bool()
		sinceRefit := sr.NonNegInt()
		refits := sr.NonNegInt()
		triageAlarms := sr.NonNegInt()
		escalated := sr.NonNegInt()
		identified := sr.NonNegInt()
		suppressed := sr.NonNegInt()
		escRuns := sr.NonNegInt()
		heldBins := sr.NonNegInt()
		if err := sr.Err(); err != nil {
			return err
		}
		sr.Nested(d.triage.Restore)
		sr.Nested(d.identify.Restore)
		if err := sr.Err(); err != nil {
			return err
		}
		d.window = window
		d.processed = processed
		d.run = run
		d.hold = hold
		d.inEsc = inEsc
		d.sinceRefit = sinceRefit
		d.refits = refits
		d.triageAlarms = triageAlarms
		d.escalated = escalated
		d.identified = identified
		d.suppressed = suppressed
		d.escRuns = escRuns
		d.heldBins = heldBins
		return nil
	})
}

// HybridStats reports the two-stage breakdown: per-stage detector
// snapshots and the escalation counters.
func (d *HybridDetector) HybridStats() HybridStats {
	d.mu.Lock()
	hs := HybridStats{
		TriageAlarms:   d.triageAlarms,
		Escalated:      d.escalated,
		Identified:     d.identified,
		Suppressed:     d.suppressed,
		EscalationRuns: d.escRuns,
		HeldBins:       d.heldBins,
	}
	d.mu.Unlock()
	hs.Triage = d.triage.Stats()
	hs.Identify = d.identify.Stats()
	return hs
}
