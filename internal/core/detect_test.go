package core

import (
	"math"
	"testing"

	"netanomaly/internal/mat"
	"netanomaly/internal/traffic"
)

func TestDetectorFlagsInjectedSpike(t *testing.T) {
	topo, x, m, _, _ := fitPipeline(t, 40, 1008)
	det, err := NewDetector(m, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	clean := traffic.LinkLoadAt(topo, x.Row(500))
	if d := det.Detect(clean); d.Alarm {
		t.Fatalf("clean bin raised alarm: SPE %v > %v", d.SPE, d.Threshold)
	}
	spiked := spikedLinkLoad(topo, x, 500, 9, 8e7)
	if d := det.Detect(spiked); !d.Alarm {
		t.Fatalf("8e7-byte spike not detected: SPE %v <= %v", d.SPE, d.Threshold)
	}
}

func TestDetectorAccessors(t *testing.T) {
	_, _, m, _, _ := fitPipeline(t, 41, 288)
	det, err := NewDetector(m, 0.995)
	if err != nil {
		t.Fatal(err)
	}
	if det.Confidence() != 0.995 {
		t.Fatalf("Confidence = %v", det.Confidence())
	}
	if det.Limit() <= 0 {
		t.Fatalf("Limit = %v", det.Limit())
	}
	if det.Model() != m {
		t.Fatal("Model accessor wrong")
	}
}

func TestDetectSeriesLowFalseAlarms(t *testing.T) {
	topo, _, y := testDataset(t, 42, 1008)
	_ = topo
	p, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(p, SeparateAxes(p, DefaultSigma))
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(m, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	ds := det.DetectSeries(y)
	if len(ds) != 1008 {
		t.Fatalf("detections = %d", len(ds))
	}
	alarms := 0
	for i, d := range ds {
		if d.Bin != i {
			t.Fatalf("bin index %d != %d", d.Bin, i)
		}
		if d.Alarm {
			alarms++
		}
	}
	// Clean simulated data: false alarm rate must stay near nominal 0.1%.
	if alarms > 15 {
		t.Fatalf("false alarms %d/1008 too high", alarms)
	}
}

func TestDetectSeriesDimensionPanic(t *testing.T) {
	_, _, m, _, _ := fitPipeline(t, 43, 288)
	det, _ := NewDetector(m, 0.999)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	det.DetectSeries(mat.Zeros(5, 3))
}

func TestDiagnoserEndToEnd(t *testing.T) {
	topo, x, _, _, _ := fitPipeline(t, 44, 1008)
	// Inject a known anomaly, rebuild loads, diagnose the full series.
	flow := topo.FlowID(2, 9)
	const bin, size = 600, 9e7
	dirty := x.Clone()
	traffic.Inject(dirty, []traffic.Anomaly{{Flow: flow, Bin: bin, Delta: size}})
	y := traffic.LinkLoads(topo, dirty)

	diag, err := NewDiagnoser(y, topo.RoutingMatrix(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	results := diag.DiagnoseSeries(y)
	found := false
	for _, r := range results {
		if r.Bin == bin {
			found = true
			if r.Flow != flow {
				t.Fatalf("identified flow %d want %d", r.Flow, flow)
			}
			if math.Abs(r.Bytes-size)/size > 0.3 {
				t.Fatalf("quantified %v want ~%v", r.Bytes, size)
			}
			if r.SPE <= r.Threshold {
				t.Fatal("diagnosed anomaly must exceed threshold")
			}
		}
	}
	if !found {
		t.Fatalf("anomaly at bin %d not diagnosed; got %d detections", bin, len(results))
	}
	// The alarm list must stay short on otherwise-clean data.
	if len(results) > 12 {
		t.Fatalf("too many detections: %d", len(results))
	}
}

func TestDiagnoseAtNonAnomalous(t *testing.T) {
	topo, x, _, _, _ := fitPipeline(t, 45, 432)
	y := traffic.LinkLoads(topo, x)
	diag, err := NewDiagnoser(y, topo.RoutingMatrix(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, ok := diag.DiagnoseAt(y.Row(100))
	if ok {
		t.Fatal("clean bin diagnosed as anomalous")
	}
	if d.Flow != -1 {
		t.Fatalf("non-anomalous diagnosis must carry Flow=-1, got %d", d.Flow)
	}
}

func TestDiagnoserOptionDefaults(t *testing.T) {
	o := Options{}
	o.fillDefaults()
	if o.Confidence != 0.999 || o.Sigma != DefaultSigma {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestDiagnoserFixedRank(t *testing.T) {
	topo, _, y := testDataset(t, 46, 432)
	diag, err := NewDiagnoser(y, topo.RoutingMatrix(), Options{Rank: 6})
	if err != nil {
		t.Fatal(err)
	}
	if diag.Detector().Model().Rank() != 6 {
		t.Fatalf("rank = %d want 6", diag.Detector().Model().Rank())
	}
}

func TestNewDetectorBadConfidence(t *testing.T) {
	_, _, m, _, _ := fitPipeline(t, 47, 288)
	if _, err := NewDetector(m, 1.5); err == nil {
		t.Fatal("expected error")
	}
}
