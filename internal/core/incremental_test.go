package core

import (
	"math"
	"testing"

	"netanomaly/internal/mat"
)

func TestCovTrackerValidation(t *testing.T) {
	if _, err := NewCovTracker(0, 0.9); err == nil {
		t.Fatal("zero dim must error")
	}
	if _, err := NewCovTracker(3, 0); err == nil {
		t.Fatal("lambda 0 must error")
	}
	if _, err := NewCovTracker(3, 1.5); err == nil {
		t.Fatal("lambda > 1 must error")
	}
}

func TestCovTrackerMatchesBatchWithLambdaOne(t *testing.T) {
	// With lambda=1 the tracker reproduces the batch mean and the
	// population covariance of the data.
	_, _, y := testDataset(t, 50, 288)
	_, dim := y.Dims()
	tr, err := NewCovTracker(dim, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.UpdateAll(y)
	if tr.Count() != 288 {
		t.Fatalf("Count = %d", tr.Count())
	}
	wantMean := y.ColMeans()
	if !mat.VecEqualApprox(tr.Mean(), wantMean, 1e-6*(1+mat.Norm2(wantMean))) {
		t.Fatal("tracked mean diverges from batch mean")
	}
	// Population covariance: (Y-mean)^T (Y-mean) / n.
	c := y.Clone()
	c.CenterColumns()
	want := c.Gram()
	want.Scale(1.0 / 288)
	got := tr.Covariance()
	if !mat.EqualApprox(got, want, 1e-6*(1+want.MaxAbs())) {
		t.Fatalf("tracked covariance diverges: max diff %v", mat.Sub(got, want).MaxAbs())
	}
}

func TestCovTrackerPCAAgreesWithBatch(t *testing.T) {
	_, _, y := testDataset(t, 51, 432)
	_, dim := y.Dims()
	tr, _ := NewCovTracker(dim, 1)
	tr.UpdateAll(y)
	pInc, err := tr.PCA()
	if err != nil {
		t.Fatal(err)
	}
	pBatch, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	// Variances agree up to the n vs n-1 normalization.
	scale := float64(431) / 432
	for i := 0; i < 6; i++ {
		want := pBatch.Variances[i] * scale
		if math.Abs(pInc.Variances[i]-want) > 1e-6*(1+want) {
			t.Fatalf("variance[%d]: incremental %v batch %v", i, pInc.Variances[i], want)
		}
	}
	// Leading subspace agrees: projectors close for a fixed rank.
	mInc, err := tr.Model(4)
	if err != nil {
		t.Fatal(err)
	}
	mBatch, err := Build(pBatch, 4)
	if err != nil {
		t.Fatal(err)
	}
	diff := mat.Sub(mInc.ResidualOperator(), mBatch.ResidualOperator()).Frobenius()
	if diff > 1e-6 {
		t.Fatalf("projector difference %v", diff)
	}
}

func TestCovTrackerDetectsWithQLimit(t *testing.T) {
	// A model built from the tracker must detect a spike exactly like the
	// batch pipeline.
	topo, x, y := testDataset(t, 52, 1008)
	_, dim := y.Dims()
	tr, _ := NewCovTracker(dim, 1)
	tr.UpdateAll(y)
	pBatch, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	rank := SeparateAxes(pBatch, DefaultSigma)
	m, err := tr.Model(rank)
	if err != nil {
		t.Fatal(err)
	}
	limit, err := m.QLimit(0.999)
	if err != nil {
		t.Fatal(err)
	}
	spiked := spikedLinkLoad(topo, x, 600, 9, 9e7)
	if m.SPE(spiked) <= limit {
		t.Fatal("incremental model missed a 9e7 spike")
	}
	if m.SPE(y.Row(600)) > limit {
		t.Fatal("incremental model false alarm on clean bin")
	}
}

func TestCovTrackerForgetsDrift(t *testing.T) {
	// With forgetting, the tracker adapts to a mean shift; without, it
	// lags. Feed 300 bins at one level then 300 at double the level.
	const dim = 4
	mkRow := func(level float64, i int) []float64 {
		return []float64{level, level / 2, level / 3, float64(i%7) + level/4}
	}
	forgetful, _ := NewCovTracker(dim, 0.98)
	stubborn, _ := NewCovTracker(dim, 1)
	for i := 0; i < 300; i++ {
		forgetful.Update(mkRow(100, i))
		stubborn.Update(mkRow(100, i))
	}
	for i := 0; i < 300; i++ {
		forgetful.Update(mkRow(200, i))
		stubborn.Update(mkRow(200, i))
	}
	fErr := math.Abs(forgetful.Mean()[0] - 200)
	sErr := math.Abs(stubborn.Mean()[0] - 200)
	if fErr > 5 {
		t.Fatalf("forgetful tracker mean error %v", fErr)
	}
	if sErr < 20 {
		t.Fatalf("lambda=1 tracker should lag a mean shift, error only %v", sErr)
	}
}

func TestCovTrackerDrift(t *testing.T) {
	_, _, y := testDataset(t, 53, 432)
	_, dim := y.Dims()
	tr, _ := NewCovTracker(dim, 1)
	tr.UpdateAll(y)
	p, err := Fit(y)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Build(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := tr.Drift(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Same data: drift must be negligible.
	if d > 1e-6 {
		t.Fatalf("drift on identical data = %v", d)
	}
}

func TestCovTrackerTooFewSamples(t *testing.T) {
	tr, _ := NewCovTracker(3, 1)
	if _, err := tr.PCA(); err != ErrTooFewSamples {
		t.Fatalf("expected ErrTooFewSamples, got %v", err)
	}
	tr.Update([]float64{1, 2, 3})
	if _, err := tr.PCA(); err != ErrTooFewSamples {
		t.Fatalf("expected ErrTooFewSamples after one sample, got %v", err)
	}
}

func TestCovTrackerUpdatePanics(t *testing.T) {
	tr, _ := NewCovTracker(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Update([]float64{1, 2})
}
