// Package core implements the paper's contribution: the subspace method
// for diagnosing network-wide traffic anomalies (Sections 4 and 5).
//
// The pipeline is:
//
//  1. Fit PCA to the t x m link measurement matrix Y (mean-centered).
//  2. Separate the principal axes into a normal subspace S (the first r
//     axes) and an anomalous subspace S~ using the 3-sigma rule on the
//     axis projections (Section 4.3).
//  3. Detect: flag timesteps whose squared prediction error SPE = ||y~||^2
//     exceeds the Q-statistic threshold delta^2_alpha of Jackson and
//     Mudholkar (Section 5.1).
//  4. Identify: choose the OD flow whose anomaly direction best explains
//     the residual (Section 5.2).
//  5. Quantify: estimate the number of anomalous bytes via the
//     column-normalized routing matrix (Section 5.3).
package core

import (
	"errors"
	"fmt"

	"netanomaly/internal/mat"
)

// PCA holds the principal component decomposition of a link measurement
// matrix Y (t bins x m links), computed on mean-centered data.
type PCA struct {
	// Components has the principal axes v_i as columns (m x m).
	Components *mat.Dense
	// Variances[i] is the sample variance captured by axis i,
	// ||Y v_i||^2 / (t-1), sorted descending.
	Variances []float64
	// Projections has the normalized projections u_i = Y v_i / ||Y v_i||
	// as columns (t x m). Columns for zero-variance axes are zero.
	Projections *mat.Dense
	// Means are the per-link means removed from Y before the analysis.
	Means []float64
	// SampleCount is t, the number of time bins.
	SampleCount int
}

// ErrTooFewSamples is returned when Y has fewer rows than needed for a
// meaningful covariance estimate.
var ErrTooFewSamples = errors.New("core: need at least 2 time bins")

// Fit computes the PCA of the measurement matrix y (t x m). The input is
// not modified; centering happens on a copy. Requires t >= 2 and t >= m.
func Fit(y *mat.Dense) (*PCA, error) {
	t, m := y.Dims()
	if t < 2 {
		return nil, ErrTooFewSamples
	}
	if t < m {
		return nil, fmt.Errorf("core: need at least as many bins (%d) as links (%d)", t, m)
	}
	work := y.Clone()
	means := work.CenterColumns()
	u, s, v, err := mat.SVD(work)
	if err != nil {
		return nil, fmt.Errorf("core: PCA decomposition failed: %w", err)
	}
	variances := make([]float64, m)
	for i, sv := range s {
		variances[i] = sv * sv / float64(t-1)
	}
	return &PCA{
		Components:  v,
		Variances:   variances,
		Projections: u,
		Means:       means,
		SampleCount: t,
	}, nil
}

// FitEig computes the same decomposition via the eigendecomposition of the
// covariance matrix Y^T Y instead of an SVD of Y. The paper notes the two
// are equivalent (Section 7.1); this variant exists for the ablation
// benchmark comparing cost and accuracy. Projections are reconstructed as
// u_i = Y v_i / ||Y v_i||.
func FitEig(y *mat.Dense) (*PCA, error) {
	t, m := y.Dims()
	if t < 2 {
		return nil, ErrTooFewSamples
	}
	if t < m {
		return nil, fmt.Errorf("core: need at least as many bins (%d) as links (%d)", t, m)
	}
	work := y.Clone()
	means := work.CenterColumns()
	vals, vecs, err := mat.SymEig(work.Gram())
	if err != nil {
		return nil, fmt.Errorf("core: covariance eigendecomposition failed: %w", err)
	}
	variances := make([]float64, m)
	proj := mat.Zeros(t, m)
	for i := 0; i < m; i++ {
		ev := vals[i]
		if ev < 0 {
			ev = 0 // numerical noise on a PSD matrix
		}
		variances[i] = ev / float64(t-1)
		ui := mat.MulVec(work, vecs.Col(i))
		mat.Normalize(ui)
		proj.SetCol(i, ui)
	}
	return &PCA{
		Components:  vecs,
		Variances:   variances,
		Projections: proj,
		Means:       means,
		SampleCount: t,
	}, nil
}

// NumComponents returns the number of principal axes (m).
func (p *PCA) NumComponents() int { return len(p.Variances) }

// VarianceFractions returns each axis's share of total variance — the
// scree curve of Figure 3.
func (p *PCA) VarianceFractions() []float64 {
	var total float64
	for _, v := range p.Variances {
		total += v
	}
	out := make([]float64, len(p.Variances))
	if total == 0 {
		return out
	}
	for i, v := range p.Variances {
		out[i] = v / total
	}
	return out
}

// EffectiveDimension returns the smallest number of leading axes whose
// cumulative variance fraction reaches frac (e.g. 0.95). The paper
// observes 3-4 axes suffice for real backbone link traffic (Figure 3).
func (p *PCA) EffectiveDimension(frac float64) int {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("core: EffectiveDimension frac %v out of (0,1]", frac))
	}
	fracs := p.VarianceFractions()
	var cum float64
	for i, f := range fracs {
		cum += f
		if cum >= frac {
			return i + 1
		}
	}
	return len(fracs)
}
