package wavelet

import (
	"testing"

	"netanomaly/internal/mat"
	"netanomaly/internal/traffic"
)

// streamWaveletData builds a 1024-bin seed plus a 256-bin continuation
// with a sustained dyadic-misaligned anomaly injected at stream offset
// spikeStart (length 8, flow 3->8), mirroring the batch multiscale test.
func streamWaveletData(t *testing.T, seed int64, spikeStart int) (history, stream *mat.Dense, links int) {
	t.Helper()
	topo, _, _ := buildWaveletDataset(t, seed)
	cfg := traffic.DefaultConfig(seed)
	cfg.Bins = 1024 + 256
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := gen.Generate()
	if spikeStart >= 0 {
		flow := topo.FlowID(3, 8)
		for b := 1024 + spikeStart; b < 1024+spikeStart+8; b++ {
			x.Set(b, flow, x.At(b, flow)+5e7)
		}
	}
	y := traffic.LinkLoads(topo, x)
	links = topo.NumLinks()
	history = mat.NewDense(1024, links, y.RawData()[:1024*links])
	stream = mat.NewDense(256, links, y.RawData()[1024*links:])
	return history, stream, links
}

func TestStreamDetectorFindsSustainedAnomaly(t *testing.T) {
	const spikeStart = 67 // misaligned with the dyadic grid
	history, stream, _ := streamWaveletData(t, 94, spikeStart)
	sd, err := NewStreamDetector(history, StreamConfig{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sd.Levels() != 3 {
		t.Fatalf("levels = %d", sd.Levels())
	}
	// Feed in deliberately awkward batch sizes so blocks straddle batch
	// boundaries.
	var alarms []struct{ seq int }
	for b := 0; b < stream.Rows(); {
		n := 7
		if b+n > stream.Rows() {
			n = stream.Rows() - b
		}
		chunk := mat.NewDense(n, stream.Cols(), stream.RawData()[b*stream.Cols():(b+n)*stream.Cols()])
		got, err := sd.ProcessBatch(chunk)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range got {
			if a.Flow != -1 {
				t.Fatalf("multiscale alarm carries flow %d, want -1", a.Flow)
			}
			if a.SPE <= a.Threshold {
				t.Fatal("alarm below threshold")
			}
			alarms = append(alarms, struct{ seq int }{a.Seq})
		}
		b += n
	}
	found := false
	for _, a := range alarms {
		// The anomaly spans [spikeStart, spikeStart+8); a detection at
		// any scale reports a region start within one coarsest block.
		if a.seq >= spikeStart-8 && a.seq < spikeStart+8 {
			found = true
		}
	}
	if !found {
		t.Fatalf("sustained anomaly not alarmed; alarms: %+v", alarms)
	}
	if len(alarms) > 12 {
		t.Fatalf("too many alarms: %d", len(alarms))
	}
	if got := sd.Stats(); got.Processed != 256 || got.Backend != "multiscale" {
		t.Fatalf("stats = %+v", got)
	}
}

func TestStreamDetectorRefitAndSeed(t *testing.T) {
	history, stream, links := streamWaveletData(t, 95, -1)
	sd, err := NewStreamDetector(history, StreamConfig{Levels: 2, RefitEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sd.ProcessBatch(mat.Zeros(4, 3)); err == nil {
		t.Fatal("mis-sized batch accepted")
	}
	if _, err := sd.ProcessBatch(stream); err != nil {
		t.Fatal(err)
	}
	sd.WaitRefits()
	if err := sd.TakeRefitError(); err != nil {
		t.Fatal(err)
	}
	if sd.Stats().Refits == 0 {
		t.Fatal("no background refit completed")
	}
	if err := sd.Refit(); err != nil {
		t.Fatal(err)
	}
	if err := sd.Seed(history); err != nil {
		t.Fatal(err)
	}
	if err := sd.Seed(mat.Zeros(16, links)); err == nil {
		t.Fatal("too-short seed accepted")
	}
	if got := sd.Stats().Processed; got != 256 {
		t.Fatalf("processed %d want 256", got)
	}
}

func TestStreamDetectorValidation(t *testing.T) {
	history, _, links := streamWaveletData(t, 96, -1)
	if _, err := NewStreamDetector(mat.Zeros(links, links), StreamConfig{Levels: 3}); err == nil {
		t.Fatal("insufficient history accepted")
	}
	if _, err := NewStreamDetector(history, StreamConfig{Levels: 3, Window: 16}); err == nil {
		t.Fatal("undersized window accepted")
	}
	sd, err := NewStreamDetector(history, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sd.Levels() != 3 {
		t.Fatalf("default levels = %d", sd.Levels())
	}
}
