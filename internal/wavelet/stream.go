package wavelet

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
)

// StreamConfig configures NewStreamDetector.
type StreamConfig struct {
	// Levels is the number of wavelet scales (default 3: 2-, 4- and
	// 8-bin features).
	Levels int
	// Confidence is the per-scale detection confidence (default 0.999).
	Confidence float64
	// Window is the number of recent bins retained for refits, rounded
	// down to a multiple of 2^Levels; 0 uses the seed history length.
	// Each scale k must retain at least as many coefficient rows as
	// links, so Window must be at least links * 2^Levels.
	Window int
	// RefitEvery triggers a background refit after this many processed
	// bins; 0 disables automatic refits.
	RefitEvery int
}

// StreamDetector adapts the Section 7.3 multiscale detector to the
// streaming ViewDetector contract: arriving bins accumulate into
// 2^Levels-aligned blocks, each completed block is tested against one
// fitted subspace model per wavelet scale, and alarms report the
// original-time region that misbehaved (Seq is the region's first bin;
// no flow identification — wavelet coefficients mix bins, so Flow is
// always -1 and a subspace or incremental shard on the same view should
// localize). Detection latency is therefore up to 2^Levels bins: a
// spike is only testable once its enclosing block completes.
//
// Concurrency follows the other backends: the fitted per-scale models
// sit behind an atomic pointer, refits run on a window snapshot in a
// background goroutine, and a failed refit keeps the previous models
// and surfaces its error on a later call.
type StreamDetector struct {
	levels     int
	span       int // 1 << levels, the block size in bins
	links      int
	confidence float64

	det atomic.Pointer[MultiscaleDetector]

	mu         sync.Mutex // guards the fields below
	window     *mat.RowRing
	pending    []float64 // partial block, pendingN*links of span*links
	pendingN   int
	processed  int
	sinceRefit int
	refitEvery int
	gate       *core.RefitGate
	refits     int
	refitHook  func()
}

var _ core.ViewDetector = (*StreamDetector)(nil)

// NewStreamDetector fits the per-scale models on history (bins x links)
// and returns a streaming multiscale detector. history must supply at
// least links * 2^Levels bins; only its largest 2^Levels-aligned suffix
// is used.
func NewStreamDetector(history *mat.Dense, cfg StreamConfig) (*StreamDetector, error) {
	if cfg.Levels <= 0 {
		cfg.Levels = 3
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = 0.999
	}
	bins, links := history.Dims()
	span := 1 << cfg.Levels
	window := cfg.Window
	if window <= 0 {
		window = bins
	}
	window -= window % span
	if window < links*span {
		return nil, fmt.Errorf("wavelet: window %d bins cannot hold %d coefficient rows per scale at %d levels", window, links, cfg.Levels)
	}
	s := &StreamDetector{
		levels:     cfg.Levels,
		span:       span,
		links:      links,
		confidence: cfg.Confidence,
		window:     mat.NewRowRing(window, links),
		pending:    make([]float64, span*links),
		refitEvery: cfg.RefitEvery,
	}
	s.gate = core.NewRefitGate(&s.mu)
	if err := s.Seed(history); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.refits = 0 // the seed fit is the baseline, not a refit
	s.mu.Unlock()
	return s, nil
}

// SetRefitHook installs a function that runs inside every background
// refit goroutine before fitting begins; tests use it to hold a refit
// open. Call before streaming starts.
func (s *StreamDetector) SetRefitHook(h func()) { s.refitHook = h }

// Seed refits the per-scale models on (the aligned suffix of) history
// and refills the refit window, serializing with in-flight refits. The
// processed-bin counter and any partially accumulated block carry over.
func (s *StreamDetector) Seed(history *mat.Dense) error {
	bins, links := history.Dims()
	if links != s.links {
		return fmt.Errorf("wavelet: seed history has %d links, detector expects %d", links, s.links)
	}
	aligned := bins - bins%s.span
	if aligned < s.links*s.span {
		return fmt.Errorf("wavelet: seed history %d bins cannot hold %d coefficient rows per scale at %d levels", bins, s.links, s.levels)
	}
	start := bins - aligned
	fit := mat.NewDense(aligned, links, history.RawData()[start*links:])

	s.mu.Lock()
	s.gate.BeginLocked()
	s.mu.Unlock()

	md, err := NewMultiscaleDetector(fit, s.levels, s.confidence)
	if err == nil {
		s.det.Store(md)
	} else {
		err = fmt.Errorf("wavelet: seed: %w", err)
	}

	s.mu.Lock()
	if err == nil {
		s.window.Reset()
		for b := aligned - min(aligned, s.window.Cap()); b < aligned; b++ {
			s.window.Push(fit.RowView(b))
		}
		s.refits++
		// Restart the automatic-refit clock: the models were just
		// fitted on this window, matching the other backends' Seed.
		s.sinceRefit = 0
	}
	s.gate.EndLocked(nil)
	s.mu.Unlock()
	return err
}

// ProcessBatch accumulates the rows of y (bins x links) into
// 2^Levels-aligned blocks and scans every completed block at all fitted
// scales. Alarms carry the first original-time bin of each anomalous
// region as Seq (deduplicated across scales, keeping the strongest
// exceedance); Flow is always -1. The per-block scan runs outside the
// detector lock — like the other backends, detection never blocks a
// concurrent Stats, Refit or WaitRefits.
func (s *StreamDetector) ProcessBatch(y *mat.Dense) ([]core.Alarm, error) {
	bins, cols := y.Dims()
	if cols != s.links {
		return nil, fmt.Errorf("wavelet: batch has %d links, detector expects %d", cols, s.links)
	}
	det := s.det.Load()

	// Fold rows into the pending block under the lock, copying each
	// completed block out with its start sequence; the expensive
	// wavelet scan happens after release.
	type block struct {
		start int
		rows  *mat.Dense
	}
	s.mu.Lock()
	err := s.gate.TakeErrorLocked()
	base := s.processed
	var blocks []block
	for b := 0; b < bins; b++ {
		copy(s.pending[s.pendingN*s.links:(s.pendingN+1)*s.links], y.RowView(b))
		s.pendingN++
		if s.pendingN < s.span {
			continue
		}
		s.pendingN = 0
		rows := mat.Zeros(s.span, s.links)
		copy(rows.RawData(), s.pending)
		blocks = append(blocks, block{start: base + b + 1 - s.span, rows: rows})
	}
	s.processed += bins
	s.mu.Unlock()

	var alarms []core.Alarm
	var clean []*mat.Dense
	for _, blk := range blocks {
		dets, derr := det.Detect(blk.rows)
		if derr != nil {
			// A block sized to span is always transformable; keep the
			// error visible rather than dropping it.
			if err == nil {
				err = derr
			}
			continue
		}
		if len(dets) == 0 {
			// Clean blocks feed the refit window; anomalous blocks are
			// withheld so they cannot inflate the next model's residual
			// variance (block-level analog of the subspace backend's
			// window exclusion).
			clean = append(clean, blk.rows)
			continue
		}
		// One alarm per region start, strongest exceedance wins.
		best := make(map[int]core.Alarm, len(dets))
		for _, d := range dets {
			seq := blk.start + d.BinStart
			a := core.Alarm{Seq: seq, Diagnosis: core.Diagnosis{
				Bin:       seq,
				SPE:       d.SPE,
				Threshold: d.Threshold,
				Flow:      -1,
			}}
			if prev, ok := best[seq]; !ok || a.SPE/a.Threshold > prev.SPE/prev.Threshold {
				best[seq] = a
			}
		}
		for _, a := range best {
			alarms = append(alarms, a)
		}
	}
	sort.Slice(alarms, func(i, j int) bool { return alarms[i].Seq < alarms[j].Seq })

	s.mu.Lock()
	for _, rows := range clean {
		raw := rows.RawData()
		for r := 0; r < s.span; r++ {
			s.window.Push(raw[r*s.links : (r+1)*s.links])
		}
	}
	var snapshot *mat.Dense
	if s.refitEvery > 0 {
		// Accumulate every bin, but only launch at a block boundary so
		// a refit always follows fresh window rows.
		s.sinceRefit += bins
		if s.sinceRefit >= s.refitEvery && len(blocks) > 0 && s.gate.TryBeginLocked() {
			s.sinceRefit = 0
			snapshot = s.window.Matrix()
		}
	}
	s.mu.Unlock()

	if snapshot != nil {
		s.spawnRefit(snapshot)
	}
	return alarms, err
}

func (s *StreamDetector) spawnRefit(w *mat.Dense) {
	go func() {
		if h := s.refitHook; h != nil {
			h()
		}
		md, err := NewMultiscaleDetector(w, s.levels, s.confidence)
		if err == nil {
			s.det.Store(md)
		} else {
			err = fmt.Errorf("wavelet: refit: %w", err)
		}
		s.mu.Lock()
		if err == nil {
			s.refits++
		}
		s.gate.EndLocked(err)
		s.mu.Unlock()
	}()
}

// Refit synchronously refits the per-scale models on the current window
// contents, serializing with background refits without blocking
// concurrent detection. A failed fit leaves the previous models in
// force.
func (s *StreamDetector) Refit() error {
	s.mu.Lock()
	s.gate.BeginLocked()
	w := s.window.Matrix()
	s.mu.Unlock()

	var md *MultiscaleDetector
	var err error
	if w == nil {
		err = fmt.Errorf("wavelet: refit window empty")
	} else if md, err = NewMultiscaleDetector(w, s.levels, s.confidence); err != nil {
		err = fmt.Errorf("wavelet: refit: %w", err)
	} else {
		s.det.Store(md)
	}

	s.mu.Lock()
	if err == nil {
		s.refits++
	}
	s.gate.EndLocked(nil)
	s.mu.Unlock()
	return err
}

// Snapshot serializes the detector's portable state — the refit window,
// the partially accumulated block, the processed-bin counters, and the
// fitted per-scale subspace models — as one multiscale envelope. It
// waits out any in-flight refit so the serialized models are never
// half-swapped.
func (s *StreamDetector) Snapshot(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gate.BeginLocked()
	defer s.gate.EndLocked(nil)
	md := s.det.Load()
	return core.EncodeSnapshot(w, core.SnapKindMultiscale, func(sw *core.SnapshotWriter) {
		sw.Int(s.links)
		sw.Int(s.levels)
		sw.F64(s.confidence)
		sw.RowRing(s.window)
		sw.Int(s.pendingN)
		sw.Floats(s.pending[:s.pendingN*s.links])
		sw.Int(s.processed)
		sw.Int(s.sinceRefit)
		sw.Int(s.refits)
		for _, det := range md.detectors {
			core.EncodeDetector(sw, det)
		}
	})
}

// Restore replaces the detector's mutable state with a Snapshot taken
// from an equivalently configured detector (same links, levels and
// confidence — construction parameters are validated, not restored).
// On any error the receiver is left unchanged.
func (s *StreamDetector) Restore(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gate.BeginLocked()
	defer s.gate.EndLocked(nil)
	var (
		window     *mat.RowRing
		pending    []float64
		pendingN   int
		processed  int
		sinceRefit int
		refits     int
		md         *MultiscaleDetector
	)
	err := core.DecodeSnapshot(r, core.SnapKindMultiscale, func(sr *core.SnapshotReader) error {
		if links := sr.Int(); sr.Err() == nil && links != s.links {
			return core.SnapshotMismatchf("snapshot has %d links, detector expects %d", links, s.links)
		}
		if levels := sr.Int(); sr.Err() == nil && levels != s.levels {
			return core.SnapshotMismatchf("snapshot has %d levels, detector expects %d", levels, s.levels)
		}
		if conf := sr.F64(); sr.Err() == nil && conf != s.confidence {
			return core.SnapshotMismatchf("snapshot confidence %v, detector expects %v", conf, s.confidence)
		}
		window = sr.RowRing(s.links)
		pendingN = sr.NonNegInt()
		part := sr.Floats()
		processed = sr.NonNegInt()
		sinceRefit = sr.NonNegInt()
		refits = sr.NonNegInt()
		if err := sr.Err(); err != nil {
			return err
		}
		if pendingN >= s.span {
			return fmt.Errorf("%w: pending block has %d rows, span is %d", core.ErrSnapshotFormat, pendingN, s.span)
		}
		if len(part) != pendingN*s.links {
			return fmt.Errorf("%w: pending block has %d values, want %d", core.ErrSnapshotFormat, len(part), pendingN*s.links)
		}
		pending = make([]float64, s.span*s.links)
		copy(pending, part)
		md = &MultiscaleDetector{levels: s.levels, confidence: s.confidence}
		for k := 0; k < s.levels; k++ {
			det, err := core.DecodeDetector(sr)
			if err != nil {
				return fmt.Errorf("scale %d: %w", k, err)
			}
			if det.Model().NumLinks() != s.links {
				return core.SnapshotMismatchf("scale %d model has %d links, detector expects %d",
					k, det.Model().NumLinks(), s.links)
			}
			md.detectors = append(md.detectors, det)
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.window = window
	s.pending = pending
	s.pendingN = pendingN
	s.processed = processed
	s.sinceRefit = sinceRefit
	s.refits = refits
	s.det.Store(md)
	return nil
}

// WaitRefits blocks until no model fit is in flight.
func (s *StreamDetector) WaitRefits() { s.gate.Wait() }

// TakeRefitError returns and clears the deferred error from the last
// failed background refit, if any.
func (s *StreamDetector) TakeRefitError() error { return s.gate.TakeError() }

// Stats reports the detector's current state. Rank is 0: each scale
// keeps its own normal subspace, so no single rank is meaningful.
func (s *StreamDetector) Stats() core.ViewStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return core.ViewStats{
		Backend:   "multiscale",
		Links:     s.links,
		Processed: s.processed,
		Refits:    s.refits,
	}
}

// Levels returns the number of fitted wavelet scales.
func (s *StreamDetector) Levels() int { return s.levels }
