// Package wavelet implements the Haar discrete wavelet transform and the
// multiscale subspace detector sketched in Section 7.3 of the paper
// (following Misra et al., "Multivariate process monitoring and fault
// diagnosis by multi-scale PCA"): applying PCA to the wavelet transform
// of the measurements allows the detection of anomalies at all
// timescales, not just single-bin spikes.
package wavelet

import (
	"fmt"
	"math"

	"netanomaly/internal/mat"
)

// sqrt2 halves/doubles energy correctly for the orthonormal Haar basis.
var sqrt2 = math.Sqrt(2)

// Forward computes one level of the orthonormal Haar transform:
// approx[i] = (x[2i] + x[2i+1]) / sqrt2, detail[i] = (x[2i] - x[2i+1]) /
// sqrt2. len(x) must be even.
func Forward(x []float64) (approx, detail []float64) {
	if len(x)%2 != 0 {
		panic(fmt.Sprintf("wavelet: Forward needs even length, got %d", len(x)))
	}
	n := len(x) / 2
	approx = make([]float64, n)
	detail = make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := x[2*i], x[2*i+1]
		approx[i] = (a + b) / sqrt2
		detail[i] = (a - b) / sqrt2
	}
	return approx, detail
}

// Inverse reconstructs a signal from one level of approximation and
// detail coefficients.
func Inverse(approx, detail []float64) []float64 {
	if len(approx) != len(detail) {
		panic(fmt.Sprintf("wavelet: Inverse length mismatch %d vs %d", len(approx), len(detail)))
	}
	x := make([]float64, 2*len(approx))
	for i := range approx {
		x[2*i] = (approx[i] + detail[i]) / sqrt2
		x[2*i+1] = (approx[i] - detail[i]) / sqrt2
	}
	return x
}

// Decomposition is a full multi-level Haar decomposition: Details[k]
// holds the detail coefficients at scale k (k=0 finest, 2-bin features),
// and Approx the final coarse approximation.
type Decomposition struct {
	Details [][]float64
	Approx  []float64
}

// Decompose runs levels of the transform. The input length must be
// divisible by 2^levels. The transform is orthonormal: total energy is
// preserved (Parseval).
func Decompose(x []float64, levels int) (*Decomposition, error) {
	if levels < 1 {
		return nil, fmt.Errorf("wavelet: levels %d < 1", levels)
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("wavelet: empty input")
	}
	if len(x)%(1<<levels) != 0 {
		return nil, fmt.Errorf("wavelet: length %d not divisible by 2^%d", len(x), levels)
	}
	d := &Decomposition{}
	cur := mat.CloneVec(x)
	for k := 0; k < levels; k++ {
		approx, detail := Forward(cur)
		d.Details = append(d.Details, detail)
		cur = approx
	}
	d.Approx = cur
	return d, nil
}

// Reconstruct inverts Decompose exactly.
func (d *Decomposition) Reconstruct() []float64 {
	cur := mat.CloneVec(d.Approx)
	for k := len(d.Details) - 1; k >= 0; k-- {
		cur = Inverse(cur, d.Details[k])
	}
	return cur
}

// Energy returns the squared norm of all coefficients.
func (d *Decomposition) Energy() float64 {
	e := mat.SqNorm(d.Approx)
	for _, det := range d.Details {
		e += mat.SqNorm(det)
	}
	return e
}

// DetailMatrix applies a level-k detail transform to every column of a
// bins x links measurement matrix, returning the (bins/2^(k+1)) x links
// matrix of detail coefficients at that scale. Row b of the result
// summarizes the measurement difference structure around time 2^(k+1)*b.
func DetailMatrix(y *mat.Dense, level int) (*mat.Dense, error) {
	bins, links := y.Dims()
	if level < 0 {
		return nil, fmt.Errorf("wavelet: negative level")
	}
	if bins%(1<<(level+1)) != 0 {
		return nil, fmt.Errorf("wavelet: %d bins not divisible by 2^%d", bins, level+1)
	}
	outRows := bins >> (level + 1)
	out := mat.Zeros(outRows, links)
	for l := 0; l < links; l++ {
		d, err := Decompose(y.Col(l), level+1)
		if err != nil {
			return nil, err
		}
		out.SetCol(l, d.Details[level])
	}
	return out, nil
}
