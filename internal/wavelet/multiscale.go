package wavelet

import (
	"fmt"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
)

// ScaleDetection is one anomalous region found at one timescale.
type ScaleDetection struct {
	// Level is the wavelet scale (0 = 2-bin features, 1 = 4-bin, ...).
	Level int
	// CoefBin is the index in detail-coefficient time.
	CoefBin int
	// BinStart and BinEnd delimit the original-time region [start, end).
	BinStart, BinEnd int
	// SPE and Threshold are the subspace statistics at that scale.
	SPE, Threshold float64
}

// MultiscaleDetector applies the subspace method independently to the
// wavelet detail coefficients of the link measurements at several scales
// (Section 7.3: "it is possible to use the subspace method across
// multiple time scales by applying PCA to the wavelet transform of
// measured data; in principle, such a method can allow the detection of
// anomalies at all timescales").
type MultiscaleDetector struct {
	levels     int
	confidence float64
	detectors  []*core.Detector
}

// NewMultiscaleDetector fits one subspace model per scale on the detail
// matrices of y (bins x links). bins must be divisible by 2^levels, and
// each scale must retain at least as many coefficient rows as links.
func NewMultiscaleDetector(y *mat.Dense, levels int, confidence float64) (*MultiscaleDetector, error) {
	if levels < 1 {
		return nil, fmt.Errorf("wavelet: levels %d < 1", levels)
	}
	bins, links := y.Dims()
	md := &MultiscaleDetector{levels: levels, confidence: confidence}
	for k := 0; k < levels; k++ {
		rows := bins >> (k + 1)
		if rows < links {
			return nil, fmt.Errorf("wavelet: scale %d has %d coefficient rows for %d links", k, rows, links)
		}
		dm, err := DetailMatrix(y, k)
		if err != nil {
			return nil, err
		}
		pca, err := core.Fit(dm)
		if err != nil {
			return nil, fmt.Errorf("wavelet: scale %d PCA: %w", k, err)
		}
		model, err := core.Build(pca, core.SeparateAxes(pca, core.DefaultSigma))
		if err != nil {
			return nil, fmt.Errorf("wavelet: scale %d model: %w", k, err)
		}
		det, err := core.NewDetector(model, confidence)
		if err != nil {
			return nil, fmt.Errorf("wavelet: scale %d detector: %w", k, err)
		}
		md.detectors = append(md.detectors, det)
	}
	return md, nil
}

// Levels returns the number of fitted scales.
func (md *MultiscaleDetector) Levels() int { return md.levels }

// Detect scans the measurement matrix at every fitted scale and returns
// all anomalous regions, finest scale first.
func (md *MultiscaleDetector) Detect(y *mat.Dense) ([]ScaleDetection, error) {
	var out []ScaleDetection
	for k, det := range md.detectors {
		dm, err := DetailMatrix(y, k)
		if err != nil {
			return nil, err
		}
		span := 1 << (k + 1)
		for _, d := range det.DetectSeries(dm) {
			if !d.Alarm {
				continue
			}
			out = append(out, ScaleDetection{
				Level:     k,
				CoefBin:   d.Bin,
				BinStart:  d.Bin * span,
				BinEnd:    (d.Bin + 1) * span,
				SPE:       d.SPE,
				Threshold: d.Threshold,
			})
		}
	}
	return out, nil
}
