package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
	"netanomaly/internal/traffic"
)

func TestForwardInverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 * (1 + rng.Intn(64))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		a, d := Forward(x)
		return mat.VecEqualApprox(Inverse(a, d), x, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardOddLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Forward(make([]float64, 3))
}

func TestInverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Inverse(make([]float64, 2), make([]float64, 3))
}

func TestForwardConstantSignal(t *testing.T) {
	x := []float64{5, 5, 5, 5}
	a, d := Forward(x)
	for i := range d {
		if d[i] != 0 {
			t.Fatalf("constant signal must have zero details: %v", d)
		}
		if math.Abs(a[i]-5*sqrt2) > 1e-12 {
			t.Fatalf("approx = %v", a)
		}
	}
}

func TestDecomposeReconstruct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		levels := 1 + rng.Intn(4)
		n := (1 << levels) * (1 + rng.Intn(16))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		d, err := Decompose(x, levels)
		if err != nil {
			return false
		}
		return mat.VecEqualApprox(d.Reconstruct(), x, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeParseval(t *testing.T) {
	// Orthonormal transform preserves energy.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 64)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		d, err := Decompose(x, 3)
		if err != nil {
			return false
		}
		return math.Abs(d.Energy()-mat.SqNorm(x)) < 1e-9*(1+mat.SqNorm(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(make([]float64, 6), 2); err == nil {
		t.Fatal("length not divisible by 2^levels must error")
	}
	if _, err := Decompose(nil, 1); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := Decompose(make([]float64, 8), 0); err == nil {
		t.Fatal("zero levels must error")
	}
}

func TestDetailMatrixShape(t *testing.T) {
	y := mat.Zeros(32, 3)
	dm, err := DetailMatrix(y, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, c := dm.Dims()
	if r != 8 || c != 3 {
		t.Fatalf("DetailMatrix dims %dx%d want 8x3", r, c)
	}
	if _, err := DetailMatrix(mat.Zeros(30, 3), 1); err == nil {
		t.Fatal("non-divisible bins must error")
	}
	if _, err := DetailMatrix(y, -1); err == nil {
		t.Fatal("negative level must error")
	}
}

func TestDetailMatrixLocalizesStep(t *testing.T) {
	// A sharp step between bins 16 and 17 shows up as a large level-0
	// detail coefficient at coefficient index 8.
	y := mat.Zeros(32, 1)
	for b := 17; b < 32; b++ {
		y.Set(b, 0, 100)
	}
	dm, err := DetailMatrix(y, 0)
	if err != nil {
		t.Fatal(err)
	}
	var maxIdx int
	var maxAbs float64
	for i := 0; i < dm.Rows(); i++ {
		if a := math.Abs(dm.At(i, 0)); a > maxAbs {
			maxAbs, maxIdx = a, i
		}
	}
	if maxIdx != 8 {
		t.Fatalf("step localized at coefficient %d want 8", maxIdx)
	}
}

// buildWaveletDataset produces a 1024-bin link-load matrix (divisible by
// 2^levels) on Abilene.
func buildWaveletDataset(t *testing.T, seed int64) (*topology.Topology, *mat.Dense, *mat.Dense) {
	t.Helper()
	topo := topology.Abilene()
	cfg := traffic.DefaultConfig(seed)
	cfg.Bins = 1024
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := gen.Generate()
	return topo, x, traffic.LinkLoads(topo, x)
}

func TestMultiscaleDetectorFindsSustainedAnomaly(t *testing.T) {
	topo, x, _ := buildWaveletDataset(t, 91)
	// A sustained 8-bin (80-minute) anomaly of modest per-bin size,
	// deliberately misaligned with the dyadic grid (start 515) so its
	// edges carry detail energy: a constant block aligned on a multiple
	// of 2^levels would be invisible to detail coefficients, which only
	// see change.
	flow := topo.FlowID(3, 8)
	const start, length = 515, 8
	for b := start; b < start+length; b++ {
		x.Set(b, flow, x.At(b, flow)+5e7)
	}
	y := traffic.LinkLoads(topo, x)
	md, err := NewMultiscaleDetector(y, 3, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if md.Levels() != 3 {
		t.Fatalf("levels = %d", md.Levels())
	}
	dets, err := md.Detect(y)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range dets {
		if d.BinEnd > start && d.BinStart < start+length {
			found = true
			if d.SPE <= d.Threshold {
				t.Fatal("alarm below threshold")
			}
		}
	}
	if !found {
		t.Fatalf("sustained anomaly not found at any scale; detections: %+v", dets)
	}
}

func TestMultiscaleDetectorFewFalseAlarmsOnCleanData(t *testing.T) {
	_, _, y := buildWaveletDataset(t, 92)
	md, err := NewMultiscaleDetector(y, 3, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	dets, err := md.Detect(y)
	if err != nil {
		t.Fatal(err)
	}
	// 512+256+128 = 896 scale-bins tested at 99.9%.
	if len(dets) > 10 {
		t.Fatalf("too many clean-data detections: %d", len(dets))
	}
}

func TestMultiscaleDetectorErrors(t *testing.T) {
	_, _, y := buildWaveletDataset(t, 93)
	if _, err := NewMultiscaleDetector(y, 0, 0.999); err == nil {
		t.Fatal("zero levels must error")
	}
	// Too many levels: coefficient rows < links.
	if _, err := NewMultiscaleDetector(y, 6, 0.999); err == nil {
		t.Fatal("too-deep decomposition must error")
	}
}
