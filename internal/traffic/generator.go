// Package traffic synthesizes network-wide OD-flow traffic with the
// statistical structure the subspace method relies on, computes link loads
// through the routing matrix (y = Ax, Section 4.1), and injects volume
// anomalies into OD flows (Section 6.3).
//
// The generator substitutes for the paper's proprietary Sprint/Abilene
// traces (see DESIGN.md). It produces: heavy-tailed flow means from a
// gravity model; diurnal and weekly cycles shared across flows (which
// gives the measurement matrix its low effective dimensionality, Figure
// 3); and multiplicative, temporally correlated noise whose absolute
// magnitude grows with the flow mean (which drives the detection-rate
// versus flow-size effect of Figure 9).
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
)

// Config parameterizes the OD-flow generator.
type Config struct {
	// Bins is the number of time bins (the paper uses 1008 ten-minute
	// bins, one week).
	Bins int
	// BinDuration is the duration of each bin.
	BinDuration time.Duration
	// Seed makes generation deterministic.
	Seed int64
	// TotalMeanRate is the network-wide mean traffic per bin, in bytes.
	TotalMeanRate float64
	// WeightSigma is the lognormal sigma of the gravity-model PoP weights;
	// larger values give a heavier-tailed flow size distribution.
	WeightSigma float64
	// DiurnalAmplitude scales the shared 24-hour cycle (0..1).
	DiurnalAmplitude float64
	// AmplitudeJitter is the lognormal sigma of per-flow diurnal amplitude
	// variation; it spreads the daily cycle's energy over several
	// principal components, as in real backbone traffic.
	AmplitudeJitter float64
	// SemiDiurnalWeight scales a per-flow 12-hour harmonic relative to the
	// flow's diurnal amplitude; real backbone traffic carries such
	// harmonics (the paper's own Fourier labeler includes a 12 h basis).
	SemiDiurnalWeight float64
	// HeavyFlows is the number of largest flows that carry an extra slow
	// multi-day trend of their own. Their large structured variance makes
	// the normal subspace align with them, which is why fixed-size
	// anomalies are harder to detect in large flows (Section 5.4 and
	// Figure 9 of the paper).
	HeavyFlows int
	// HeavyTrendAmplitude is that trend's amplitude relative to the flow
	// mean.
	HeavyTrendAmplitude float64
	// HeavyTrendPeriodHours is the trend period (default 72 h — three
	// days, one of the paper's Fourier basis periods).
	HeavyTrendPeriodHours float64
	// WeeklyAmplitude scales the weekend dip (0..1).
	WeeklyAmplitude float64
	// PoPPhaseSigmaHours is the std-dev of per-PoP diurnal peak offsets
	// (regional time-of-day structure: a flow peaks according to its
	// endpoints' local busy hours).
	PoPPhaseSigmaHours float64
	// PhaseJitterHours is the std-dev of each flow's own diurnal peak
	// offset on top of its endpoints' regional offsets.
	PhaseJitterHours float64
	// NoiseSigma is the lognormal sigma of multiplicative per-bin noise.
	NoiseSigma float64
	// NoiseAR is the AR(1) coefficient of the noise process in (-1, 1).
	NoiseAR float64
}

// DefaultConfig returns the configuration used for the paper-scale
// simulated datasets: one week of 10-minute bins.
func DefaultConfig(seed int64) Config {
	return Config{
		Bins:                  1008,
		BinDuration:           10 * time.Minute,
		Seed:                  seed,
		TotalMeanRate:         8e8, // network-wide bytes per 10-minute bin
		WeightSigma:           1.0,
		DiurnalAmplitude:      0.45,
		AmplitudeJitter:       0.6,
		SemiDiurnalWeight:     0.35,
		WeeklyAmplitude:       0.25,
		PoPPhaseSigmaHours:    2.5,
		PhaseJitterHours:      0.5,
		NoiseSigma:            0.07,
		NoiseAR:               0.35,
		HeavyFlows:            6,
		HeavyTrendAmplitude:   0.3,
		HeavyTrendPeriodHours: 72,
	}
}

func (c Config) validate() error {
	switch {
	case c.Bins <= 0:
		return fmt.Errorf("traffic: Bins %d <= 0", c.Bins)
	case c.BinDuration <= 0:
		return fmt.Errorf("traffic: BinDuration %v <= 0", c.BinDuration)
	case c.TotalMeanRate <= 0:
		return fmt.Errorf("traffic: TotalMeanRate %v <= 0", c.TotalMeanRate)
	case c.NoiseAR <= -1 || c.NoiseAR >= 1:
		return fmt.Errorf("traffic: NoiseAR %v out of (-1,1)", c.NoiseAR)
	case c.DiurnalAmplitude < 0 || c.DiurnalAmplitude > 1:
		return fmt.Errorf("traffic: DiurnalAmplitude %v out of [0,1]", c.DiurnalAmplitude)
	case c.WeeklyAmplitude < 0 || c.WeeklyAmplitude > 1:
		return fmt.Errorf("traffic: WeeklyAmplitude %v out of [0,1]", c.WeeklyAmplitude)
	case c.NoiseSigma < 0:
		return fmt.Errorf("traffic: NoiseSigma %v < 0", c.NoiseSigma)
	case c.AmplitudeJitter < 0:
		return fmt.Errorf("traffic: AmplitudeJitter %v < 0", c.AmplitudeJitter)
	case c.SemiDiurnalWeight < 0:
		return fmt.Errorf("traffic: SemiDiurnalWeight %v < 0", c.SemiDiurnalWeight)
	case c.HeavyFlows < 0:
		return fmt.Errorf("traffic: HeavyFlows %d < 0", c.HeavyFlows)
	case c.HeavyTrendAmplitude < 0 || c.HeavyTrendAmplitude > 1:
		return fmt.Errorf("traffic: HeavyTrendAmplitude %v out of [0,1]", c.HeavyTrendAmplitude)
	case c.HeavyFlows > 0 && c.HeavyTrendPeriodHours <= 0:
		return fmt.Errorf("traffic: HeavyTrendPeriodHours %v <= 0", c.HeavyTrendPeriodHours)
	case c.PoPPhaseSigmaHours < 0:
		return fmt.Errorf("traffic: PoPPhaseSigmaHours %v < 0", c.PoPPhaseSigmaHours)
	}
	return nil
}

// Generator produces OD-flow matrices for a topology.
type Generator struct {
	topo *topology.Topology
	cfg  Config
}

// NewGenerator returns a generator for the topology, or an error for an
// invalid configuration.
func NewGenerator(topo *topology.Topology, cfg Config) (*Generator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Generator{topo: topo, cfg: cfg}, nil
}

// FlowMeans returns the gravity-model mean rate of every OD flow, in
// bytes per bin. Deterministic in the configured seed.
func (g *Generator) FlowMeans() []float64 {
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	return g.flowMeans(rng)
}

func (g *Generator) flowMeans(rng *rand.Rand) []float64 {
	p := g.topo.NumPoPs()
	w := make([]float64, p)
	var sum float64
	for i := range w {
		w[i] = math.Exp(g.cfg.WeightSigma * rng.NormFloat64())
		sum += w[i]
	}
	means := make([]float64, g.topo.NumFlows())
	for o := 0; o < p; o++ {
		for d := 0; d < p; d++ {
			means[g.topo.FlowID(o, d)] = g.cfg.TotalMeanRate * w[o] * w[d] / (sum * sum)
		}
	}
	return means
}

// Generate returns the t x n OD-flow matrix (bins by flows), in bytes per
// bin. The result is deterministic in the configured seed.
func (g *Generator) Generate() *mat.Dense {
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	means := g.flowMeans(rng)
	n := g.topo.NumFlows()
	p := g.topo.NumPoPs()
	t := g.cfg.Bins
	binHours := g.cfg.BinDuration.Hours()

	// Per-PoP regional peak offsets (hours): traffic between two PoPs
	// peaks according to its endpoints' local busy hours.
	popOffset := make([]float64, p)
	for i := range popOffset {
		popOffset[i] = g.cfg.PoPPhaseSigmaHours * rng.NormFloat64()
	}
	// Per-flow diurnal peak (hours), amplitudes (24 h and 12 h harmonics),
	// and noise state.
	phase := make([]float64, n)
	amp := make([]float64, n)
	amp2 := make([]float64, n)
	phase2 := make([]float64, n)
	noise := make([]float64, n)
	ampBias := g.cfg.AmplitudeJitter * g.cfg.AmplitudeJitter / 2
	for f := 0; f < n; f++ {
		o, d := g.topo.FlowEndpoints(f)
		phase[f] = 15 + (popOffset[o]+popOffset[d])/2 + g.cfg.PhaseJitterHours*rng.NormFloat64()
		a := g.cfg.DiurnalAmplitude * math.Exp(g.cfg.AmplitudeJitter*rng.NormFloat64()-ampBias)
		if a > 0.85 {
			a = 0.85
		}
		amp[f] = a
		amp2[f] = g.cfg.SemiDiurnalWeight * a * rng.Float64()
		phase2[f] = 24 * rng.Float64()
		noise[f] = rng.NormFloat64()
	}
	// The largest flows carry an extra slow trend of their own; its phase
	// is drawn per flow.
	heavyAmp := make([]float64, n)
	heavyPhase := make([]float64, n)
	if g.cfg.HeavyFlows > 0 && g.cfg.HeavyTrendAmplitude > 0 {
		for _, f := range topFlows(means, g.cfg.HeavyFlows) {
			heavyAmp[f] = g.cfg.HeavyTrendAmplitude
			heavyPhase[f] = g.cfg.HeavyTrendPeriodHours * rng.Float64()
		}
	}
	rho := g.cfg.NoiseAR
	innov := math.Sqrt(1 - rho*rho)

	x := mat.Zeros(t, n)
	for b := 0; b < t; b++ {
		hours := float64(b) * binHours
		dayFrac := math.Mod(hours, 24) / 24
		weekend := weekendFactor(hours, g.cfg.WeeklyAmplitude)
		row := x.RowView(b)
		for f := 0; f < n; f++ {
			diurnal := 1 + amp[f]*math.Cos(2*math.Pi*(dayFrac-phase[f]/24)) +
				amp2[f]*math.Cos(4*math.Pi*(dayFrac-phase2[f]/24))
			if heavyAmp[f] > 0 {
				diurnal += heavyAmp[f] * math.Cos(2*math.Pi*(hours-heavyPhase[f])/g.cfg.HeavyTrendPeriodHours)
			}
			noise[f] = rho*noise[f] + innov*rng.NormFloat64()
			// Noise is additive at a magnitude proportional to the flow's
			// mean (bigger flows are absolutely noisier, the effect behind
			// Figure 9) but independent of the instantaneous level, so the
			// residual process is homoscedastic as the Q-statistic assumes.
			v := means[f]*diurnal*weekend + means[f]*g.cfg.NoiseSigma*noise[f]
			if v < 0 {
				v = 0
			}
			row[f] = v
		}
	}
	return x
}

// topFlows returns the indices of the k largest values in means.
func topFlows(means []float64, k int) []int {
	idx := make([]int, len(means))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return means[idx[a]] > means[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// weekendFactor dips traffic over days 5 and 6 of the week (Sat/Sun when
// bin 0 is Monday 00:00), with smooth edges.
func weekendFactor(hours, amplitude float64) float64 {
	if amplitude == 0 {
		return 1
	}
	day := math.Mod(hours/24, 7)
	// Smooth indicator of the [5,7) interval via raised cosine ramps of
	// half a day at each edge.
	var w float64
	switch {
	case day >= 5.5 && day < 6.5:
		w = 1
	case day >= 5 && day < 5.5:
		w = (1 - math.Cos(2*math.Pi*(day-5))) / 2
	case day >= 6.5:
		w = (1 + math.Cos(2*math.Pi*(day-6.5))) / 2
	}
	return 1 - amplitude*w
}

// LinkLoads computes the t x m link-load matrix Y from the OD-flow matrix
// X via the topology's routes: Y = X A^T in the paper's notation, so that
// each row satisfies y = Ax.
func LinkLoads(topo *topology.Topology, x *mat.Dense) *mat.Dense {
	t, n := x.Dims()
	if n != topo.NumFlows() {
		panic(fmt.Sprintf("traffic: LinkLoads flow count %d != topology flows %d", n, topo.NumFlows()))
	}
	y := mat.Zeros(t, topo.NumLinks())
	for f := 0; f < n; f++ {
		route := topo.Route(f)
		if len(route) == 0 {
			continue
		}
		for b := 0; b < t; b++ {
			v := x.At(b, f)
			if v == 0 {
				continue
			}
			yrow := y.RowView(b)
			for _, li := range route {
				yrow[li] += v
			}
		}
	}
	return y
}

// LinkLoadAt computes a single link-load vector for the OD-flow vector x
// at one timestep (y = Ax).
func LinkLoadAt(topo *topology.Topology, x []float64) []float64 {
	if len(x) != topo.NumFlows() {
		panic(fmt.Sprintf("traffic: LinkLoadAt flow count %d != topology flows %d", len(x), topo.NumFlows()))
	}
	y := make([]float64, topo.NumLinks())
	for f, v := range x {
		if v == 0 {
			continue
		}
		for _, li := range topo.Route(f) {
			y[li] += v
		}
	}
	return y
}
