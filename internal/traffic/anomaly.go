package traffic

import (
	"fmt"
	"math/rand"

	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
)

// Anomaly is a volume anomaly: a sudden change (positive or negative) of
// Delta bytes in OD flow Flow during bin Bin (Section 2).
type Anomaly struct {
	Flow int
	Bin  int
	// Delta is the byte change; negative values model traffic loss.
	Delta float64
}

// Inject adds the anomalies to x in place. Flow traffic never goes below
// zero: a negative spike larger than the flow's traffic clips at zero.
func Inject(x *mat.Dense, anomalies []Anomaly) {
	t, n := x.Dims()
	for _, a := range anomalies {
		if a.Bin < 0 || a.Bin >= t || a.Flow < 0 || a.Flow >= n {
			panic(fmt.Sprintf("traffic: anomaly (flow %d, bin %d) out of range %dx%d", a.Flow, a.Bin, t, n))
		}
		v := x.At(a.Bin, a.Flow) + a.Delta
		if v < 0 {
			v = 0
		}
		x.Set(a.Bin, a.Flow, v)
	}
}

// WithAnomalies returns a copy of x with the anomalies injected.
func WithAnomalies(x *mat.Dense, anomalies []Anomaly) *mat.Dense {
	out := x.Clone()
	Inject(out, anomalies)
	return out
}

// RandomAnomalies draws count anomalies uniformly over flows and bins,
// with sizes uniform in [minSize, maxSize]. At most one anomaly is placed
// per bin so that ground truth stays unambiguous (the paper's datasets
// likewise treat each anomalous timestep as a single event). Deterministic
// in seed. Degenerate requests — a non-positive count or bin budget, more
// anomalies than bins, or an inverted size range — are errors, never a
// silent empty slice.
func RandomAnomalies(topo *topology.Topology, bins, count int, minSize, maxSize float64, seed int64) ([]Anomaly, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("traffic: anomaly bin budget %d must be positive", bins)
	}
	if count <= 0 {
		return nil, fmt.Errorf("traffic: anomaly count %d must be positive", count)
	}
	if count > bins {
		return nil, fmt.Errorf("traffic: cannot place %d anomalies in %d bins", count, bins)
	}
	if minSize > maxSize {
		return nil, fmt.Errorf("traffic: size range [%v,%v] invalid", minSize, maxSize)
	}
	rng := rand.New(rand.NewSource(seed))
	binPerm := rng.Perm(bins)
	out := make([]Anomaly, count)
	for i := 0; i < count; i++ {
		out[i] = Anomaly{
			Flow:  rng.Intn(topo.NumFlows()),
			Bin:   binPerm[i],
			Delta: minSize + rng.Float64()*(maxSize-minSize),
		}
	}
	return out, nil
}
