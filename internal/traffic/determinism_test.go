package traffic

// Bin-for-bin reproducibility pins. The end-to-end smokes and
// examples/compare quote exact alarm bins and byte counts; those
// numbers are only stable across runs and machines because every
// random draw in the pipeline flows from the configured seed through
// math/rand's stable generator. A refactor that sneaks in an unseeded
// source (or reorders draws per bin) breaks reproducibility silently —
// these tests make it loud.

import (
	"testing"

	"netanomaly/internal/topology"
)

func TestGenerateBinForBinReproducible(t *testing.T) {
	topo := topology.Abilene()
	cfg := DefaultConfig(99)
	cfg.Bins = 288
	gen1, err := NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := gen1.Generate(), gen2.Generate()
	ar, br := a.RawData(), b.RawData()
	if len(ar) != len(br) {
		t.Fatalf("shapes differ: %d vs %d values", len(ar), len(br))
	}
	for i := range ar {
		if ar[i] != br[i] {
			t.Fatalf("same seed diverged at value %d: %v vs %v", i, ar[i], br[i])
		}
	}
	// Repeated Generate on one generator must also restart the stream
	// identically — the generator reseeds per call, it does not consume
	// a shared RNG.
	c := gen1.Generate().RawData()
	for i := range ar {
		if ar[i] != c[i] {
			t.Fatalf("second Generate on the same generator diverged at value %d", i)
		}
	}

	cfg.Seed = 100
	gen3, err := NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := gen3.Generate().RawData()
	same := true
	for i := range ar {
		if ar[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traffic")
	}
}

func TestRandomAnomaliesReproducible(t *testing.T) {
	topo := topology.Abilene()
	a := RandomAnomalies(topo, 500, 20, 1e6, 1e8, 7)
	b := RandomAnomalies(topo, 500, 20, 1e6, 1e8, 7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at anomaly %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := RandomAnomalies(topo, 500, 20, 1e6, 1e8, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical anomalies")
	}
}
