package traffic

// Bin-for-bin reproducibility pins. The end-to-end smokes and
// examples/compare quote exact alarm bins and byte counts; those
// numbers are only stable across runs and machines because every
// random draw in the pipeline flows from the configured seed through
// math/rand's stable generator. A refactor that sneaks in an unseeded
// source (or reorders draws per bin) breaks reproducibility silently —
// these tests make it loud.

import (
	"testing"

	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
)

func TestGenerateBinForBinReproducible(t *testing.T) {
	topo := topology.Abilene()
	cfg := DefaultConfig(99)
	cfg.Bins = 288
	gen1, err := NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := gen1.Generate(), gen2.Generate()
	ar, br := a.RawData(), b.RawData()
	if len(ar) != len(br) {
		t.Fatalf("shapes differ: %d vs %d values", len(ar), len(br))
	}
	for i := range ar {
		if ar[i] != br[i] {
			t.Fatalf("same seed diverged at value %d: %v vs %v", i, ar[i], br[i])
		}
	}
	// Repeated Generate on one generator must also restart the stream
	// identically — the generator reseeds per call, it does not consume
	// a shared RNG.
	c := gen1.Generate().RawData()
	for i := range ar {
		if ar[i] != c[i] {
			t.Fatalf("second Generate on the same generator diverged at value %d", i)
		}
	}

	cfg.Seed = 100
	gen3, err := NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := gen3.Generate().RawData()
	same := true
	for i := range ar {
		if ar[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traffic")
	}
}

// TestScenariosBinForBinReproducible extends the reproducibility pins
// to every attack-scenario kind: same seed, same topology → the
// mutated OD matrix, ground truth, flow-count injections and affected
// flows are identical value for value; a different seed must move the
// injection somewhere else for at least one scenario draw.
func TestScenariosBinForBinReproducible(t *testing.T) {
	topo := topology.Abilene()
	const start, bins = 64, 192
	apply := func(name string, seed int64) (*mat.Dense, *ScenarioResult) {
		cfg := DefaultConfig(seed)
		cfg.Bins = bins
		gen, err := NewGenerator(topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		od := gen.Generate()
		sc, err := ScenarioByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sc.Apply(topo, od, start, seed)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return od, res
	}
	for _, sc := range Scenarios() {
		odA, resA := apply(sc.Name, 21)
		odB, resB := apply(sc.Name, 21)
		ar, br := odA.RawData(), odB.RawData()
		for i := range ar {
			if ar[i] != br[i] {
				t.Fatalf("%s: same seed diverged at value %d: %v vs %v", sc.Name, i, ar[i], br[i])
			}
		}
		if len(resA.Truth) != len(resB.Truth) {
			t.Fatalf("%s: truth lengths diverged: %d vs %d", sc.Name, len(resA.Truth), len(resB.Truth))
		}
		for i := range resA.Truth {
			if resA.Truth[i] != resB.Truth[i] {
				t.Fatalf("%s: truth[%d] diverged: %+v vs %+v", sc.Name, i, resA.Truth[i], resB.Truth[i])
			}
		}
		if len(resA.FlowCountAnomalies) != len(resB.FlowCountAnomalies) {
			t.Fatalf("%s: flow-count injections diverged in length", sc.Name)
		}
		for i := range resA.FlowCountAnomalies {
			if resA.FlowCountAnomalies[i] != resB.FlowCountAnomalies[i] {
				t.Fatalf("%s: flow-count injection %d diverged", sc.Name, i)
			}
		}
		if len(resA.AffectedFlows) != len(resB.AffectedFlows) {
			t.Fatalf("%s: affected flows diverged in length", sc.Name)
		}
		for i := range resA.AffectedFlows {
			if resA.AffectedFlows[i] != resB.AffectedFlows[i] {
				t.Fatalf("%s: affected flow %d diverged", sc.Name, i)
			}
		}
		// Different seed: at least the event placement must move for the
		// scenarios that label bins (the flash-crowd control has no
		// labels; its dispersion is checked in scenario_test.go).
		if len(resA.Truth) == 0 {
			continue
		}
		_, resC := apply(sc.Name, 22)
		same := len(resA.Truth) == len(resC.Truth)
		if same {
			for i := range resA.Truth {
				if resA.Truth[i] != resC.Truth[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical ground truth", sc.Name)
		}
	}
}

func TestRandomAnomaliesReproducible(t *testing.T) {
	topo := topology.Abilene()
	a, err := RandomAnomalies(topo, 500, 20, 1e6, 1e8, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomAnomalies(topo, 500, 20, 1e6, 1e8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at anomaly %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := RandomAnomalies(topo, 500, 20, 1e6, 1e8, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical anomalies")
	}
}
