package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"netanomaly/internal/mat"
	"netanomaly/internal/stats"
	"netanomaly/internal/topology"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Bins = 288 // two days, fast tests
	return cfg
}

func mustGen(t *testing.T, topo *topology.Topology, cfg Config) *Generator {
	t.Helper()
	g, err := NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidation(t *testing.T) {
	topo := topology.Abilene()
	bad := []func(*Config){
		func(c *Config) { c.Bins = 0 },
		func(c *Config) { c.BinDuration = 0 },
		func(c *Config) { c.TotalMeanRate = -1 },
		func(c *Config) { c.NoiseAR = 1 },
		func(c *Config) { c.DiurnalAmplitude = 2 },
		func(c *Config) { c.WeeklyAmplitude = -0.1 },
		func(c *Config) { c.NoiseSigma = -1 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig(1)
		mut(&cfg)
		if _, err := NewGenerator(topo, cfg); err == nil {
			t.Fatalf("case %d: expected config error", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	topo := topology.Abilene()
	g := mustGen(t, topo, smallConfig(1))
	x := g.Generate()
	r, c := x.Dims()
	if r != 288 || c != topo.NumFlows() {
		t.Fatalf("Generate dims = %dx%d", r, c)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	topo := topology.Abilene()
	x1 := mustGen(t, topo, smallConfig(7)).Generate()
	x2 := mustGen(t, topo, smallConfig(7)).Generate()
	if !mat.EqualApprox(x1, x2, 0) {
		t.Fatal("same seed must reproduce the matrix exactly")
	}
	x3 := mustGen(t, topo, smallConfig(8)).Generate()
	if mat.EqualApprox(x1, x3, 0) {
		t.Fatal("different seeds must differ")
	}
}

func TestGenerateNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		topo := topology.Synthetic(5, 6, seed)
		cfg := smallConfig(seed)
		cfg.Bins = 144
		g, err := NewGenerator(topo, cfg)
		if err != nil {
			return false
		}
		x := g.Generate()
		r, c := x.Dims()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if x.At(i, j) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowMeansGravity(t *testing.T) {
	topo := topology.Abilene()
	cfg := DefaultConfig(3)
	g := mustGen(t, topo, cfg)
	means := g.FlowMeans()
	var sum float64
	for _, m := range means {
		if m <= 0 {
			t.Fatal("gravity means must be positive")
		}
		sum += m
	}
	if math.Abs(sum-cfg.TotalMeanRate)/cfg.TotalMeanRate > 1e-9 {
		t.Fatalf("means must sum to TotalMeanRate: %v", sum)
	}
	// Heavy-tailedness: the largest flow should dominate the median.
	lo, hi := stats.MinMax(means)
	if hi/lo < 10 {
		t.Fatalf("flow size spread too small: min %v max %v", lo, hi)
	}
}

func TestGenerateMeansApproximatelyGravity(t *testing.T) {
	topo := topology.Abilene()
	cfg := DefaultConfig(11)
	g := mustGen(t, topo, cfg)
	x := g.Generate()
	want := g.FlowMeans()
	// Time-averaged traffic per flow should track the gravity mean within
	// a modest tolerance (diurnal shape and weekend dip are mean-reducing,
	// so compare relative ordering and overall scale).
	var totGen, totWant float64
	for f := 0; f < topo.NumFlows(); f++ {
		totGen += stats.Mean(x.Col(f))
		totWant += want[f]
	}
	if math.Abs(totGen-totWant)/totWant > 0.25 {
		t.Fatalf("total generated %v too far from gravity total %v", totGen, totWant)
	}
}

func TestDiurnalCycleVisible(t *testing.T) {
	topo := topology.Abilene()
	cfg := DefaultConfig(5)
	cfg.Bins = 1008
	g := mustGen(t, topo, cfg)
	x := g.Generate()
	// Aggregate network traffic per bin; afternoon (peak) bins should
	// carry clearly more traffic than pre-dawn bins on weekdays.
	var peak, trough float64
	var npk, ntr int
	for b := 0; b < 5*144; b++ { // weekdays only
		hour := math.Mod(float64(b)/6.0, 24)
		var tot float64
		for f := 0; f < topo.NumFlows(); f++ {
			tot += x.At(b, f)
		}
		if hour >= 14 && hour < 16 {
			peak += tot
			npk++
		}
		if hour >= 3 && hour < 5 {
			trough += tot
			ntr++
		}
	}
	peak /= float64(npk)
	trough /= float64(ntr)
	if peak < 1.3*trough {
		t.Fatalf("diurnal cycle too weak: peak %v trough %v", peak, trough)
	}
}

func TestWeekendDip(t *testing.T) {
	topo := topology.Abilene()
	cfg := DefaultConfig(5)
	cfg.Bins = 1008
	x := mustGen(t, topo, cfg).Generate()
	dayTotal := func(day int) float64 {
		var tot float64
		for b := day * 144; b < (day+1)*144; b++ {
			for f := 0; f < topo.NumFlows(); f++ {
				tot += x.At(b, f)
			}
		}
		return tot
	}
	wed := dayTotal(2)
	sun := dayTotal(6)
	if sun > 0.95*wed {
		t.Fatalf("weekend dip missing: Wed %v Sun %v", wed, sun)
	}
}

func TestWeekendFactorBounds(t *testing.T) {
	for h := 0.0; h < 168; h += 0.5 {
		w := weekendFactor(h, 0.3)
		if w < 0.7-1e-12 || w > 1+1e-12 {
			t.Fatalf("weekendFactor(%v) = %v out of [0.7,1]", h, w)
		}
	}
	if weekendFactor(100, 0) != 1 {
		t.Fatal("zero amplitude must disable the dip")
	}
}

func TestLinkLoadsSuperposition(t *testing.T) {
	// Link loads must equal A*x at every timestep.
	topo := topology.SprintEurope()
	cfg := smallConfig(2)
	cfg.Bins = 12
	x := mustGen(t, topo, cfg).Generate()
	y := LinkLoads(topo, x)
	a := topo.RoutingMatrix()
	for b := 0; b < 12; b++ {
		want := mat.MulVec(a, x.Row(b))
		if !mat.VecEqualApprox(y.Row(b), want, 1e-6*(1+mat.Norm2(want))) {
			t.Fatalf("bin %d: link loads disagree with Ax", b)
		}
	}
}

func TestLinkLoadAtMatchesMatrix(t *testing.T) {
	topo := topology.Abilene()
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, topo.NumFlows())
	for i := range x {
		x[i] = rng.Float64() * 1e6
	}
	got := LinkLoadAt(topo, x)
	want := mat.MulVec(topo.RoutingMatrix(), x)
	if !mat.VecEqualApprox(got, want, 1e-6) {
		t.Fatal("LinkLoadAt disagrees with routing matrix product")
	}
}

func TestLinkLoadsDimensionPanic(t *testing.T) {
	topo := topology.Abilene()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LinkLoads(topo, mat.Zeros(5, 3))
}

func TestInject(t *testing.T) {
	x := mat.Zeros(10, 4)
	x.Set(3, 2, 100)
	Inject(x, []Anomaly{{Flow: 2, Bin: 3, Delta: 50}})
	if x.At(3, 2) != 150 {
		t.Fatalf("Inject add = %v", x.At(3, 2))
	}
	// Negative spikes clip at zero.
	Inject(x, []Anomaly{{Flow: 2, Bin: 3, Delta: -1000}})
	if x.At(3, 2) != 0 {
		t.Fatalf("Inject clip = %v", x.At(3, 2))
	}
}

func TestInjectOutOfRangePanics(t *testing.T) {
	x := mat.Zeros(5, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Inject(x, []Anomaly{{Flow: 9, Bin: 0, Delta: 1}})
}

func TestWithAnomaliesCopies(t *testing.T) {
	x := mat.Zeros(5, 5)
	y := WithAnomalies(x, []Anomaly{{Flow: 1, Bin: 1, Delta: 9}})
	if x.At(1, 1) != 0 {
		t.Fatal("WithAnomalies must not mutate its input")
	}
	if y.At(1, 1) != 9 {
		t.Fatal("WithAnomalies must apply the spike")
	}
}

func TestRandomAnomalies(t *testing.T) {
	topo := topology.Abilene()
	as, err := RandomAnomalies(topo, 1008, 12, 1e7, 4e7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 12 {
		t.Fatalf("count = %d", len(as))
	}
	seenBins := map[int]bool{}
	for _, a := range as {
		if a.Flow < 0 || a.Flow >= topo.NumFlows() {
			t.Fatalf("flow out of range: %v", a)
		}
		if a.Bin < 0 || a.Bin >= 1008 {
			t.Fatalf("bin out of range: %v", a)
		}
		if a.Delta < 1e7 || a.Delta > 4e7 {
			t.Fatalf("delta out of range: %v", a)
		}
		if seenBins[a.Bin] {
			t.Fatal("bins must be unique")
		}
		seenBins[a.Bin] = true
	}
	// Deterministic in seed.
	as2, err := RandomAnomalies(topo, 1008, 12, 1e7, 4e7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range as {
		if as[i] != as2[i] {
			t.Fatal("RandomAnomalies must be deterministic")
		}
	}
}

func TestRandomAnomaliesRejectsDegenerate(t *testing.T) {
	topo := topology.Abilene()
	cases := []struct {
		name        string
		bins, count int
		min, max    float64
	}{
		{"count exceeds bins", 5, 6, 1, 2},
		{"inverted size range", 10, 2, 5, 1},
		{"zero count", 10, 0, 1, 2},
		{"negative count", 10, -3, 1, 2},
		{"zero bins", 0, 1, 1, 2},
		{"negative bins", -5, 1, 1, 2},
	}
	for _, tc := range cases {
		as, err := RandomAnomalies(topo, tc.bins, tc.count, tc.min, tc.max, 0)
		if err == nil {
			t.Fatalf("%s: expected error, got %d anomalies", tc.name, len(as))
		}
		if as != nil {
			t.Fatalf("%s: error must not also return anomalies", tc.name)
		}
	}
}

func TestDefaultConfigIsPaperScale(t *testing.T) {
	cfg := DefaultConfig(1)
	if cfg.Bins != 1008 {
		t.Fatalf("Bins = %d want 1008", cfg.Bins)
	}
	if cfg.BinDuration != 10*time.Minute {
		t.Fatalf("BinDuration = %v want 10m", cfg.BinDuration)
	}
}
