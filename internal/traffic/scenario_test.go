package traffic

import (
	"strings"
	"testing"

	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
)

// scenarioFixture generates a clean trace and applies one scenario,
// returning both the mutated matrix and an untouched clone of the
// clean trace for differencing.
func scenarioFixture(t *testing.T, topo *topology.Topology, name string, start, bins int, seed int64) (*mat.Dense, *mat.Dense, *ScenarioResult) {
	t.Helper()
	cfg := DefaultConfig(seed)
	cfg.Bins = bins
	gen, err := NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	od := gen.Generate()
	clean := od.Clone()
	sc, err := ScenarioByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Apply(topo, od, start, seed)
	if err != nil {
		t.Fatal(err)
	}
	return od, clean, res
}

func TestScenarioRegistry(t *testing.T) {
	scs := Scenarios()
	if len(scs) < 5 {
		t.Fatalf("registry has %d scenarios, want >= 5", len(scs))
	}
	seen := map[string]bool{}
	for _, sc := range scs {
		if sc.Name == "" || sc.Summary == "" {
			t.Fatalf("scenario %+v missing name or summary", sc)
		}
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		got, err := ScenarioByName(sc.Name)
		if err != nil || got.Name != sc.Name {
			t.Fatalf("ScenarioByName(%q) = %v, %v", sc.Name, got.Name, err)
		}
	}
	for _, want := range []string{"beacon", "scan", "synflood", "flashcrowd", "exfil", "lateral"} {
		if !seen[want] {
			t.Fatalf("registry lacks %q", want)
		}
	}
	if _, err := ScenarioByName("nonesuch"); err == nil || !strings.Contains(err.Error(), "nonesuch") {
		t.Fatalf("unknown scenario error = %v", err)
	}
}

// TestScenarioLabelsAndConfinement pins, for every scenario: mutations
// confined to [start, bins), truth bins in range with valid flows, and
// affected flows accounted.
func TestScenarioLabelsAndConfinement(t *testing.T) {
	topo := topology.Abilene()
	const start, bins = 64, 192
	for _, sc := range Scenarios() {
		od, clean, res := scenarioFixture(t, topo, sc.Name, start, bins, 42)
		// History untouched.
		for b := 0; b < start; b++ {
			for f := 0; f < topo.NumFlows(); f++ {
				if od.At(b, f) != clean.At(b, f) {
					t.Fatalf("%s: history bin %d flow %d mutated", sc.Name, b, f)
				}
			}
		}
		// Byte mutations only on affected flows, only in the stream.
		affected := map[int]bool{}
		for _, f := range res.AffectedFlows {
			if f < 0 || f >= topo.NumFlows() {
				t.Fatalf("%s: affected flow %d out of range", sc.Name, f)
			}
			affected[f] = true
		}
		for b := start; b < bins; b++ {
			for f := 0; f < topo.NumFlows(); f++ {
				if od.At(b, f) != clean.At(b, f) && !affected[f] {
					t.Fatalf("%s: bin %d flow %d mutated but not in AffectedFlows", sc.Name, b, f)
				}
			}
		}
		// Truth labels in range, attributed to affected flows.
		if sc.Name == "flashcrowd" {
			if len(res.Truth) != 0 {
				t.Fatalf("flashcrowd is a control scenario, got %d labels", len(res.Truth))
			}
		} else if len(res.Truth) == 0 {
			t.Fatalf("%s emitted no ground truth", sc.Name)
		}
		for _, tb := range res.Truth {
			if tb.Bin < start || tb.Bin >= bins {
				t.Fatalf("%s: truth bin %d outside stream [%d,%d)", sc.Name, tb.Bin, start, bins)
			}
			if !affected[tb.Flow] {
				t.Fatalf("%s: truth flow %d not in AffectedFlows", sc.Name, tb.Flow)
			}
		}
		// Flow-count injections: scan-only, in range.
		for _, fa := range res.FlowCountAnomalies {
			if fa.Bin < start || fa.Bin >= bins || !affected[fa.Flow] || fa.Extra <= 0 {
				t.Fatalf("%s: bad flow-count anomaly %+v", sc.Name, fa)
			}
		}
		if sc.Name == "scan" && len(res.FlowCountAnomalies) == 0 {
			t.Fatal("scan emitted no flow-count anomalies")
		}
	}
}

// TestScanLeavesBytesFlat pins the scan scenario's defining property:
// the OD byte matrix is untouched — the injection lives entirely in
// the flow-count metric.
func TestScanLeavesBytesFlat(t *testing.T) {
	topo := topology.Abilene()
	od, clean, res := scenarioFixture(t, topo, "scan", 64, 192, 7)
	a, b := od.RawData(), clean.RawData()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scan mutated OD bytes at value %d", i)
		}
	}
	if len(res.FlowCountAnomalies) == 0 || len(res.Truth) == 0 {
		t.Fatalf("scan result %+v lacks injections or labels", res)
	}
}

// TestScenarioRespectsRouting pins that scenario injections reach link
// loads only through the topology's routing: the link-load delta is
// nonzero exactly on links routed by some affected flow.
func TestScenarioRespectsRouting(t *testing.T) {
	topo := topology.Abilene()
	for _, name := range []string{"beacon", "synflood", "flashcrowd", "exfil", "lateral"} {
		od, clean, res := scenarioFixture(t, topo, name, 64, 192, 11)
		routed := map[int]bool{}
		for _, f := range res.AffectedFlows {
			for _, l := range topo.Route(f) {
				routed[l] = true
			}
		}
		dy, cy := LinkLoads(topo, od), LinkLoads(topo, clean)
		bins, links := dy.Dims()
		touched := false
		for b := 0; b < bins; b++ {
			for l := 0; l < links; l++ {
				if dy.At(b, l) != cy.At(b, l) {
					touched = true
					if !routed[l] {
						t.Fatalf("%s: link %d moved but no affected flow routes it", name, l)
					}
				}
			}
		}
		if !touched {
			t.Fatalf("%s left link loads untouched", name)
		}
	}
}

// TestFlashCrowdMirrorsFloodVictim pins the control pairing: under one
// seed, the flash crowd disperses toward the same victim PoP the SYN
// flood concentrates on, so the two streams differ only in dispersion
// and ramp — the comparison the scenario pair exists to make.
func TestFlashCrowdMirrorsFloodVictim(t *testing.T) {
	topo := topology.Abilene()
	_, _, flood := scenarioFixture(t, topo, "synflood", 64, 192, 5)
	_, _, crowd := scenarioFixture(t, topo, "flashcrowd", 64, 192, 5)
	_, floodVictim := topo.FlowEndpoints(flood.AffectedFlows[0])
	if len(crowd.AffectedFlows) != topo.NumPoPs()-1 {
		t.Fatalf("flash crowd touches %d flows, want every origin into the victim (%d)",
			len(crowd.AffectedFlows), topo.NumPoPs()-1)
	}
	for _, f := range crowd.AffectedFlows {
		if _, dst := topo.FlowEndpoints(f); dst != floodVictim {
			t.Fatalf("flash crowd flow %d targets PoP %d, flood victim is %d", f, dst, floodVictim)
		}
	}
}

func TestScenarioApplyRejectsBadInput(t *testing.T) {
	topo := topology.Abilene()
	sc, err := ScenarioByName("beacon")
	if err != nil {
		t.Fatal(err)
	}
	od := mat.Zeros(200, topo.NumFlows())
	cases := []struct {
		name string
		od   *mat.Dense
		star int
	}{
		{"wrong flow count", mat.Zeros(200, 5), 64},
		{"start at zero", od, 0},
		{"start past end", od, 200},
		{"stream too short", od, 150},
	}
	for _, tc := range cases {
		if _, err := sc.Apply(topo, tc.od, tc.star, 1); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
	// A zero-traffic history cannot scale injections.
	if _, err := sc.Apply(topo, od, 64, 1); err == nil {
		t.Fatal("zero-traffic history: expected error")
	}
}

func TestStreamTruthRebasing(t *testing.T) {
	truth := []LabeledBin{{Bin: 10, Flow: 1}, {Bin: 64, Flow: 2}, {Bin: 100, Flow: -1}}
	got := StreamTruth(truth, 64)
	want := []LabeledBin{{Bin: 0, Flow: 2}, {Bin: 36, Flow: -1}}
	if len(got) != len(want) {
		t.Fatalf("StreamTruth = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StreamTruth[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}
