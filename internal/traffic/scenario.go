package traffic

// The attack-scenario library: labeled traffic-anomaly compositions
// that go beyond the single-bin spikes and level shifts of the paper's
// Section 6.3 injections. Each scenario mutates an OD-flow matrix in
// place — so it composes onto any topology's routing via LinkLoads
// exactly like organic traffic — and emits flow-attributed ground
// truth, deterministic in the seed. The shapes follow the taxonomies
// of the flow-monitoring identification and DoS-analysis literature:
// low-rate periodic C2 beaconing, port/host scans that move flow
// counts but not bytes, volumetric floods versus equally sized but
// dispersed flash crowds, slow data exfiltration, and lateral
// movement walking a sequence of OD pairs.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"netanomaly/internal/mat"
	"netanomaly/internal/topology"
)

// LabeledBin is one ground-truth anomaly label: the bin it lands in
// and, when known, the responsible OD flow (Flow < 0 scores detection
// only). Scenario results carry absolute bin indices; rebase with
// StreamTruth before scoring a post-history stream. The eval package
// aliases this type, so scenario truth feeds eval.EvaluateStreamingFlows
// directly.
type LabeledBin struct {
	Bin, Flow int
}

// StreamTruth rebases absolute-bin truth labels onto a stream that
// starts at bin start, dropping labels before it.
func StreamTruth(truth []LabeledBin, start int) []LabeledBin {
	out := make([]LabeledBin, 0, len(truth))
	for _, tb := range truth {
		if tb.Bin < start {
			continue
		}
		out = append(out, LabeledBin{Bin: tb.Bin - start, Flow: tb.Flow})
	}
	return out
}

// FlowCountAnomaly is extra IP flows (with no byte movement) along one
// OD flow's path at one bin — the wire signature of a scan. Apply to a
// derived LinkMetricSet with InjectFlowCountAnomaly; byte-only
// pipelines ignore it, which is the point: only a multi-metric
// detector can see it.
type FlowCountAnomaly struct {
	Flow, Bin int
	// Extra is the added IP-flow count on every link of the flow's path.
	Extra float64
}

// ScenarioResult is what applying a scenario produced: the ground
// truth to score detectors against, any metric-level injections the
// byte matrix cannot carry, and the set of OD flows the scenario
// touched (for routing-consistency checks and reporting).
type ScenarioResult struct {
	// Truth labels every anomalous bin with the responsible flow,
	// absolute bin indices, ascending. Control scenarios (flashcrowd)
	// emit no labels: every alarm they draw is a false alarm.
	Truth []LabeledBin
	// FlowCountAnomalies carry scan-shaped injections that live in the
	// IP-flow-count metric, not in bytes.
	FlowCountAnomalies []FlowCountAnomaly
	// AffectedFlows lists the OD flows whose traffic (bytes or flow
	// counts) the scenario altered, ascending and unique.
	AffectedFlows []int
}

// Scenario is one labeled attack scenario. Apply composes it onto an
// OD-flow matrix whose first start bins are clean history: every
// mutation lands in [start, bins), deterministic in seed.
type Scenario struct {
	// Name is the registry key (trafficgen -scenario <name>).
	Name string
	// Summary is a one-line description for listings.
	Summary string
	apply func(c *scenarioContext) (*ScenarioResult, error)
}

// MinScenarioStreamBins is the smallest post-history stream a scenario
// fits its event sequence into.
const MinScenarioStreamBins = 96

// Scenarios returns the registry in stable order.
func Scenarios() []Scenario {
	return []Scenario{
		{"beacon", "C2 beaconing: low-rate periodic spikes on one flow", applyBeacon},
		{"scan", "port/host scan: flow counts up, bytes flat (multi-metric only)", applyScan},
		{"synflood", "volumetric flood: abrupt sustained surge on one victim flow", applySynFlood},
		{"flashcrowd", "control: the flood's volume, dispersed and ramped — no labels", applyFlashCrowd},
		{"exfil", "slow exfiltration: small sustained level shift on one flow", applyExfil},
		{"lateral", "lateral movement: short spikes walking a chain of OD pairs", applyLateral},
	}
}

// ScenarioByName resolves a registry name.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, 0, len(Scenarios()))
	for _, s := range Scenarios() {
		names = append(names, s.Name)
	}
	return Scenario{}, fmt.Errorf("traffic: unknown scenario %q (have %v)", name, names)
}

// scenarioContext bundles what every scenario generator needs: the
// matrix to mutate, the clean-history boundary, a seeded RNG, per-flow
// history means, and the network scale factor that keeps absolute
// injection sizes proportional to the configured traffic level.
type scenarioContext struct {
	topo        *topology.Topology
	od          *mat.Dense
	start, bins int
	rng         *rand.Rand
	means       []float64
	scale       float64
}

// Apply composes the scenario onto od (bins x flows) in place. start
// is the first attackable bin — everything before it stays clean
// history for seeding detectors. Deterministic in seed.
func (s Scenario) Apply(topo *topology.Topology, od *mat.Dense, start int, seed int64) (*ScenarioResult, error) {
	bins, flows := od.Dims()
	if flows != topo.NumFlows() {
		return nil, fmt.Errorf("traffic: scenario %s: OD matrix has %d flows, topology %d", s.Name, flows, topo.NumFlows())
	}
	if start < 1 || start >= bins {
		return nil, fmt.Errorf("traffic: scenario %s: start %d outside (0,%d)", s.Name, start, bins)
	}
	if stream := bins - start; stream < MinScenarioStreamBins {
		return nil, fmt.Errorf("traffic: scenario %s: %d stream bins after start, need >= %d", s.Name, stream, MinScenarioStreamBins)
	}
	c := &scenarioContext{
		topo:  topo,
		od:    od,
		start: start,
		bins:  bins,
		rng:   rand.New(rand.NewSource(seed)),
		means: historyFlowMeans(od, start),
	}
	var total float64
	for _, m := range c.means {
		total += m
	}
	// Injection sizes are calibrated against the default network-wide
	// rate (8e8 bytes/bin); scale keeps them proportional when the
	// generator runs hotter or colder.
	c.scale = total / 8e8
	if c.scale <= 0 || math.IsNaN(c.scale) || math.IsInf(c.scale, 0) {
		return nil, fmt.Errorf("traffic: scenario %s: history carries no traffic to scale against", s.Name)
	}
	res, err := s.apply(c)
	if err != nil {
		return nil, err
	}
	sort.Slice(res.Truth, func(i, j int) bool { return res.Truth[i].Bin < res.Truth[j].Bin })
	sort.Ints(res.AffectedFlows)
	return res, nil
}

// historyFlowMeans returns each flow's mean rate over the clean
// history bins [0, start).
func historyFlowMeans(od *mat.Dense, start int) []float64 {
	_, flows := od.Dims()
	means := make([]float64, flows)
	for b := 0; b < start; b++ {
		row := od.RowView(b)
		for f, v := range row {
			means[f] += v
		}
	}
	for f := range means {
		means[f] /= float64(start)
	}
	return means
}

// pickRanked draws a flow whose history mean sits between the lo and
// hi quantiles of the flow-size distribution — e.g. (0.5, 0.75) picks
// an upper-middle flow, avoiding both the near-idle tail (too small to
// matter) and the heavy flows whose structured variance the normal
// subspace absorbs (Section 5.4).
func (c *scenarioContext) pickRanked(lo, hi float64) int {
	n := len(c.means)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if c.means[idx[a]] != c.means[idx[b]] {
			return c.means[idx[a]] < c.means[idx[b]]
		}
		return idx[a] < idx[b]
	})
	loI, hiI := int(lo*float64(n)), int(hi*float64(n))
	if hiI <= loI {
		hiI = loI + 1
	}
	if hiI > n {
		hiI = n
	}
	return idx[loI+c.rng.Intn(hiI-loI)]
}

// bump adds delta bytes to (bin, flow), clipping at zero.
func (c *scenarioContext) bump(bin, flow int, delta float64) {
	v := c.od.At(bin, flow) + delta
	if v < 0 {
		v = 0
	}
	c.od.Set(bin, flow, v)
}

// applyBeacon models command-and-control beaconing: one compromised
// host's flow emits a modest burst on a fixed period — individually
// small, collectively a low-rate periodic signature.
func applyBeacon(c *scenarioContext) (*ScenarioResult, error) {
	flow := c.pickRanked(0.50, 0.75)
	first := c.start + 4 + c.rng.Intn(4)
	const period = 12
	delta := 4e7 * c.scale
	res := &ScenarioResult{AffectedFlows: []int{flow}}
	for b := first; b < c.bins; b += period {
		c.bump(b, flow, delta)
		res.Truth = append(res.Truth, LabeledBin{Bin: b, Flow: flow})
	}
	return res, nil
}

// applyScan models a port/host scan: the scanner opens thousands of
// probe flows that carry almost no payload, so IP-flow counts surge
// along the path while byte counts stay flat. The OD byte matrix is
// deliberately untouched — only a multi-metric detector can see this
// scenario, which is exactly what it exercises.
func applyScan(c *scenarioContext) (*ScenarioResult, error) {
	flow := c.pickRanked(0.25, 0.75)
	first := c.start + 30 + c.rng.Intn(8)
	const duration = 24
	extra := 6000 * c.scale
	res := &ScenarioResult{AffectedFlows: []int{flow}}
	for b := first; b < first+duration && b < c.bins; b++ {
		res.FlowCountAnomalies = append(res.FlowCountAnomalies, FlowCountAnomaly{Flow: flow, Bin: b, Extra: extra})
		res.Truth = append(res.Truth, LabeledBin{Bin: b, Flow: flow})
	}
	return res, nil
}

// floodVolume is the per-bin byte surge shared by synflood and
// flashcrowd — same volume, different dispersion is the whole
// comparison.
func floodVolume(scale float64) float64 { return 1.5e8 * scale }

// floodOnset places the flood's first bin two thirds into the stream,
// leaving room for the flash crowd's symmetric ramp.
func floodOnset(start, bins int) int { return start + 2*(bins-start)/3 }

// applySynFlood models a volumetric SYN/UDP flood: an abrupt surge
// concentrated on one attacker→victim flow, sustained for over an
// hour. Concentration is what makes it detectable — the added traffic
// points far outside the normal subspace.
func applySynFlood(c *scenarioContext) (*ScenarioResult, error) {
	p := c.topo.NumPoPs()
	victim := c.rng.Intn(p)
	attacker := (victim + 1 + c.rng.Intn(p-1)) % p
	flow := c.topo.FlowID(attacker, victim)
	first := floodOnset(c.start, c.bins)
	const duration = 8
	delta := floodVolume(c.scale)
	res := &ScenarioResult{AffectedFlows: []int{flow}}
	for b := first; b < first+duration && b < c.bins; b++ {
		c.bump(b, flow, delta)
		res.Truth = append(res.Truth, LabeledBin{Bin: b, Flow: flow})
	}
	return res, nil
}

// applyFlashCrowd is the flood's control: the same peak volume toward
// the same victim (the first RNG draw matches applySynFlood's, so a
// given seed targets the same PoP), but dispersed across every
// origin's flow into it in proportion to their normal shares, rising
// and falling on a raised-cosine ramp over eight hours. Legitimate
// demand growth, not an attack: it emits no truth labels, so every
// alarm a detector raises here is scored as a false alarm.
func applyFlashCrowd(c *scenarioContext) (*ScenarioResult, error) {
	p := c.topo.NumPoPs()
	victim := c.rng.Intn(p)
	stream := c.bins - c.start
	width := 48
	if width > stream/2 {
		width = stream / 2
	}
	center := floodOnset(c.start, c.bins) + 4
	peak := floodVolume(c.scale)

	// Per-origin shares of traffic into the victim, from history means.
	flows := make([]int, 0, p-1)
	var total float64
	for o := 0; o < p; o++ {
		if o == victim {
			continue
		}
		f := c.topo.FlowID(o, victim)
		flows = append(flows, f)
		total += c.means[f]
	}
	res := &ScenarioResult{AffectedFlows: append([]int(nil), flows...)}
	if total <= 0 {
		return res, nil
	}
	for b := center - width; b <= center+width; b++ {
		if b < c.start || b >= c.bins {
			continue
		}
		w := (1 + math.Cos(math.Pi*float64(b-center)/float64(width))) / 2
		for _, f := range flows {
			c.bump(b, f, peak*w*c.means[f]/total)
		}
	}
	return res, nil
}

// applyExfil models slow data exfiltration: a small constant byte
// shift on one flow, sustained for sixteen hours — too small for a
// spike detector bin by bin, visible only as a level shift.
func applyExfil(c *scenarioContext) (*ScenarioResult, error) {
	flow := c.pickRanked(0.50, 0.90)
	first := c.start + 40 + c.rng.Intn(6)
	duration := 96
	if max := c.bins - first; duration > max {
		duration = max
	}
	delta := 2.5e7 * c.scale
	res := &ScenarioResult{AffectedFlows: []int{flow}}
	for b := first; b < first+duration; b++ {
		c.bump(b, flow, delta)
		res.Truth = append(res.Truth, LabeledBin{Bin: b, Flow: flow})
	}
	return res, nil
}

// applyLateral models lateral movement: a chain of short transfers
// hopping PoP to PoP — each hop a two-bin spike on the flow from the
// previously compromised PoP to the next, a stepping-stone walk
// across OD pairs.
func applyLateral(c *scenarioContext) (*ScenarioResult, error) {
	p := c.topo.NumPoPs()
	hops := 6
	if hops > p {
		hops = p
	}
	walk := c.rng.Perm(p)[:hops]
	first := c.start + 20 + c.rng.Intn(4)
	const gap, duration = 6, 2
	delta := 8e7 * c.scale
	res := &ScenarioResult{}
	for h := 0; h+1 < len(walk); h++ {
		flow := c.topo.FlowID(walk[h], walk[h+1])
		res.AffectedFlows = append(res.AffectedFlows, flow)
		for i := 0; i < duration; i++ {
			b := first + h*gap + i
			if b >= c.bins {
				break
			}
			c.bump(b, flow, delta)
			res.Truth = append(res.Truth, LabeledBin{Bin: b, Flow: flow})
		}
	}
	return res, nil
}
