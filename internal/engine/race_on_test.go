//go:build race

package engine

// raceEnabled reports whether this binary was built with the race
// detector. Under -race, sync.Pool intentionally drops some Puts to
// widen the race window, so allocation gates that depend on pool
// recycling loosen their thresholds.
const raceEnabled = true
