package engine

// Deterministic load/stress harness for the elastic engine. Time is a
// fake clock the tests advance by hand, arrivals are scripted per-view
// bursts of marker-tagged bins, and service time is controlled either
// by a token gate (a batch proceeds only when the test releases it) or
// by fake per-batch cost charged to the clock — so queue depths, drop
// counts and autoscaler decisions are exact, not timing-dependent. Run
// under -race in CI.

import (
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"netanomaly/internal/core"
	"netanomaly/internal/forecast"
	"netanomaly/internal/mat"
)

// fakeClock is a hand-advanced clock injected through Config.now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(0, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// loadDetector is a scripted ViewDetector: it records the column-0
// marker of every bin it processes (in processing order, so FIFO
// violations are directly visible), optionally blocks each batch on a
// token gate, optionally charges a fake service time to the clock, and
// can raise one alarm per bin carrying the bin's marker in SPE so alarm
// delivery is checkable bin-for-bin.
type loadDetector struct {
	links    int
	gate     chan struct{} // non-nil: consume one token per batch before processing
	clock    *fakeClock
	cost     time.Duration // fake per-batch service time charged to clock
	alarmAll bool          // raise an alarm for every bin (SPE = marker)

	mu        sync.Mutex
	processed int
	markers   []float64
}

func (d *loadDetector) Seed(*mat.Dense) error { return nil }

func (d *loadDetector) ProcessBatch(y *mat.Dense) ([]core.Alarm, error) {
	if d.gate != nil {
		<-d.gate
	}
	if d.clock != nil && d.cost > 0 {
		d.clock.Advance(d.cost)
	}
	rows, cols := y.Dims()
	if cols != d.links {
		return nil, fmt.Errorf("load: batch has %d links, want %d", cols, d.links)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var alarms []core.Alarm
	for r := 0; r < rows; r++ {
		marker := y.At(r, 0)
		d.markers = append(d.markers, marker)
		if d.alarmAll {
			alarms = append(alarms, core.Alarm{
				Seq:       d.processed,
				Diagnosis: core.Diagnosis{SPE: marker, Flow: -1},
			})
		}
		d.processed++
	}
	return alarms, nil
}

func (d *loadDetector) Refit() error             { return nil }
func (d *loadDetector) WaitRefits()              {}
func (d *loadDetector) TakeRefitError() error    { return nil }
func (d *loadDetector) Snapshot(io.Writer) error { return nil }
func (d *loadDetector) Restore(io.Reader) error  { return nil }

func (d *loadDetector) Stats() core.ViewStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return core.ViewStats{Backend: "load", Links: d.links, Processed: d.processed}
}

// seenMarkers snapshots the processing-order marker log.
func (d *loadDetector) seenMarkers() []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]float64(nil), d.markers...)
}

// markerBatch builds an n x links batch whose column 0 carries
// consecutive markers start, start+1, ...
func markerBatch(start, n, links int) *mat.Dense {
	b := mat.Zeros(n, links)
	for r := 0; r < n; r++ {
		b.Set(r, 0, float64(start+r))
	}
	return b
}

// resizePool is the test hook for scripted pool resizes — the same
// entry point the autoscaler uses, minus its heuristics.
func resizePool(m *Monitor, n int) {
	m.dispatchMu.Lock()
	m.resizePoolLocked(n)
	m.dispatchMu.Unlock()
}

// requireIncreasingByOne fails unless markers are exactly 0,1,2,...,n-1:
// any drop, duplicate or reorder across pool resizes shows up here.
func requireIncreasingByOne(t *testing.T, view string, markers []float64, n int) {
	t.Helper()
	if len(markers) != n {
		t.Fatalf("view %s processed %d bins, want %d", view, len(markers), n)
	}
	for i, mk := range markers {
		if mk != float64(i) {
			t.Fatalf("view %s FIFO broken: position %d holds marker %v", view, i, mk)
		}
	}
}

// waitUntil polls cond (a pure read) until it holds or the deadline
// passes. It is used only to wait for concurrent goroutines to reach a
// scripted state, never to assert a quantity — the quantities asserted
// by the harness are invariants that hold at every instant.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestLoadFIFOPreservedAcrossPoolResizes hammers scripted grow/shrink
// cycles while four views ingest marker-tagged bursts, and requires
// every view to have processed exactly its arrival order afterwards:
// shard affinity, not pool size, is what serializes a view.
func TestLoadFIFOPreservedAcrossPoolResizes(t *testing.T) {
	clock := newFakeClock()
	m := NewMonitor(Config{
		Workers:   1,
		BatchSize: 8,
		// Autoscale present so the elastic-pool machinery is live, but
		// with an hour-long interval: the script below drives every
		// resize by hand, deterministically.
		Autoscale: &AutoscaleConfig{MinWorkers: 1, MaxWorkers: 8, Interval: time.Hour},
		now:       clock.Now,
	})
	defer m.Close()

	const views, waves, binsPerWave = 4, 6, 40
	dets := make([]*loadDetector, views)
	for v := range dets {
		dets[v] = &loadDetector{links: 3}
		if err := m.AddDetectorView(fmt.Sprintf("v%d", v), dets[v]); err != nil {
			t.Fatal(err)
		}
	}
	sizes := []int{1, 6, 2, 8, 3, 1}
	for wave := 0; wave < waves; wave++ {
		resizePool(m, sizes[wave])
		for v := 0; v < views; v++ {
			if err := m.Ingest(fmt.Sprintf("v%d", v), markerBatch(wave*binsPerWave, binsPerWave, 3)); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.Flush()
	for v, det := range dets {
		requireIncreasingByOne(t, fmt.Sprintf("v%d", v), det.seenMarkers(), waves*binsPerWave)
	}
	st := m.Stats()
	if st.WorkersHighWater != 8 {
		t.Fatalf("high-water mark %d, want 8", st.WorkersHighWater)
	}
	if st.QueuedBins != 0 || st.DroppedBins != 0 {
		t.Fatalf("post-flush stats not clean: %+v", st)
	}
}

// TestLoadBoundedQueueUnderSustainedOverload holds the single worker on
// a token gate and floods one view far past MaxPending, then checks
// each policy's contract: queued bins never exceed the bound (memory
// stays bounded no matter how long the overload lasts), Block loses
// nothing, DropOldest loses oldest-first and counts every loss,
// OverloadError rejects without corrupting the queue — and in every
// case the engine's counters reconcile exactly with the bins the
// detector actually saw.
func TestLoadBoundedQueueUnderSustainedOverload(t *testing.T) {
	const (
		links      = 3
		batchSize  = 4
		maxPending = 12
		chunks     = 50
		totalBins  = chunks * batchSize
	)
	for _, tc := range []struct {
		name   string
		policy OverloadPolicy
	}{
		{"block", OverloadBlock},
		{"dropoldest", OverloadDropOldest},
		{"error", OverloadError},
	} {
		t.Run(tc.name, func(t *testing.T) {
			gate := make(chan struct{})
			det := &loadDetector{links: links, gate: gate}
			m := NewMonitor(Config{
				Workers:    1,
				BatchSize:  batchSize,
				MaxPending: maxPending,
				Overload:   tc.policy,
			})
			defer m.Close()
			if err := m.AddDetectorView("v", det); err != nil {
				t.Fatal(err)
			}

			var ingestErrs []error
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < chunks; i++ {
					if err := m.Ingest("v", markerBatch(i*batchSize, batchSize, links)); err != nil {
						ingestErrs = append(ingestErrs, err)
					}
				}
			}()

			checkBound := func() {
				if q := m.Stats().QueuedBins; q > maxPending {
					t.Fatalf("queue grew to %d bins, bound is %d", q, maxPending)
				}
			}
			switch tc.policy {
			case OverloadBlock:
				// The producer must wedge against the full queue; feed
				// batches through one token at a time, checking the
				// bound at every step.
				waitUntil(t, "queue to fill", func() bool {
					return m.Stats().QueuedBins == maxPending
				})
				for i := 0; i < chunks; i++ {
					checkBound()
					gate <- struct{}{}
				}
				<-done
			default:
				// Non-blocking policies: the producer finishes against
				// a held worker, then the backlog drains.
				<-done
				checkBound()
				close(gate)
			}
			if tc.policy == OverloadBlock {
				close(gate) // tokens delivered above; open for stragglers
			}
			m.Flush()
			checkBound()

			qs, err := m.QueueStats("v")
			if err != nil {
				t.Fatal(err)
			}
			stats := det.Stats()
			if qs.QueuedBins != 0 || qs.QueuedBatches != 0 {
				t.Fatalf("queue not drained: %+v", qs)
			}
			// The universal reconciliation: what went in minus what was
			// shed is exactly what the detector processed.
			if got := qs.EnqueuedBins - qs.DroppedBins; got != int64(stats.Processed) {
				t.Fatalf("counters do not reconcile: enqueued %d - dropped %d != processed %d",
					qs.EnqueuedBins, qs.DroppedBins, stats.Processed)
			}
			if qs.EnqueuedBins+qs.RejectedBins != totalBins {
				t.Fatalf("accepted %d + rejected %d != sent %d", qs.EnqueuedBins, qs.RejectedBins, totalBins)
			}
			// Survivors must still be in arrival order.
			markers := det.seenMarkers()
			for i := 1; i < len(markers); i++ {
				if markers[i] <= markers[i-1] {
					t.Fatalf("FIFO broken on survivors: %v then %v", markers[i-1], markers[i])
				}
			}
			switch tc.policy {
			case OverloadBlock:
				if len(ingestErrs) != 0 {
					t.Fatalf("block policy returned errors: %v", ingestErrs)
				}
				if qs.DroppedBins != 0 || qs.RejectedBins != 0 {
					t.Fatalf("block policy lost bins: %+v", qs)
				}
				if stats.Processed != totalBins {
					t.Fatalf("processed %d want %d", stats.Processed, totalBins)
				}
			case OverloadDropOldest:
				if len(ingestErrs) != 0 {
					t.Fatalf("dropoldest returned errors: %v", ingestErrs)
				}
				if qs.DroppedBins == 0 {
					t.Fatal("sustained overload dropped nothing")
				}
				if qs.EnqueuedBins != totalBins {
					t.Fatalf("dropoldest must accept everything: enqueued %d of %d", qs.EnqueuedBins, totalBins)
				}
				// Newest data survives: the final chunk is never dropped.
				last := markers[len(markers)-1]
				if last != totalBins-1 {
					t.Fatalf("newest bin lost: last processed marker %v, want %d", last, totalBins-1)
				}
			case OverloadError:
				if len(ingestErrs) == 0 {
					t.Fatal("error policy returned no error under overload")
				}
				for _, err := range ingestErrs {
					if !errors.Is(err, ErrOverloaded) {
						t.Fatalf("unexpected ingest error: %v", err)
					}
				}
				if qs.RejectedBins == 0 {
					t.Fatal("error policy rejected nothing")
				}
				if qs.DroppedBins != 0 {
					t.Fatalf("error policy dropped queued work: %+v", qs)
				}
			}
		})
	}
}

// TestLoadMixedOverloadPoliciesPerView floods one monitor whose views
// carry different per-view queue limits — an explicit Block view, a
// DropOldest view, an Error view with a tighter bound, and a view
// inheriting the monitor-wide defaults — against a single gated worker,
// and requires each view to honor its own contract simultaneously:
// per-view bounds are enforced independently, the shedding views never
// stall their producers, the blocking views lose nothing, and every
// view's counters reconcile. This is ViewLimits' reason to exist: a
// latency-critical view sheds while an archival view on the same
// monitor backpressures.
func TestLoadMixedOverloadPoliciesPerView(t *testing.T) {
	const (
		links     = 3
		batchSize = 4
		chunks    = 50
		totalBins = chunks * batchSize
	)
	drop, errPol := OverloadDropOldest, OverloadError
	views := []struct {
		name  string
		lim   ViewLimits
		bound int // resolved queue bound the flood must respect
	}{
		{"block", ViewLimits{MaxPending: 12, Overload: new(OverloadPolicy)}, 12}, // explicit Block (zero value)
		{"shed", ViewLimits{Overload: &drop}, 12},                                // inherits the bound, sheds oldest
		{"strict", ViewLimits{MaxPending: 8, Overload: &errPol}, 8},              // tighter bound, rejects
		{"inherit", ViewLimits{}, 12},                                            // monitor defaults: Block at 12
	}

	gate := make(chan struct{})
	dets := make(map[string]*loadDetector, len(views))
	m := NewMonitor(Config{
		Workers:    1,
		BatchSize:  batchSize,
		MaxPending: 12,
		Overload:   OverloadBlock,
	})
	defer m.Close()
	for _, v := range views {
		dets[v.name] = &loadDetector{links: links, gate: gate}
		if err := m.AddDetectorViewLimits(v.name, dets[v.name], v.lim); err != nil {
			t.Fatal(err)
		}
	}

	errs := make(map[string][]error, len(views))
	var errsMu sync.Mutex
	done := make(map[string]chan struct{}, len(views))
	for _, v := range views {
		v := v
		vDone := make(chan struct{})
		done[v.name] = vDone
		go func() {
			defer close(vDone)
			for i := 0; i < chunks; i++ {
				if err := m.Ingest(v.name, markerBatch(i*batchSize, batchSize, links)); err != nil {
					errsMu.Lock()
					errs[v.name] = append(errs[v.name], err)
					errsMu.Unlock()
				}
			}
		}()
	}

	// The shedding views' producers must finish against the held worker
	// (their policies never block); the blocking views' producers must
	// wedge with their queues exactly full.
	<-done["shed"]
	<-done["strict"]
	for _, name := range []string{"block", "inherit"} {
		name := name
		waitUntil(t, name+" producer wedged at the bound", func() bool {
			qs, err := m.QueueStats(name)
			return err == nil && qs.QueuedBins == 12
		})
		select {
		case <-done[name]:
			t.Fatalf("%s producer finished without backpressure", name)
		default:
		}
	}
	// With all four floods landed, every view must sit within its own
	// resolved bound — the strict view's tighter MaxPending in
	// particular must not have widened to the monitor default.
	for _, v := range views {
		qs, err := m.QueueStats(v.name)
		if err != nil {
			t.Fatal(err)
		}
		if qs.QueuedBins > v.bound {
			t.Fatalf("view %s queued %d bins, bound is %d", v.name, qs.QueuedBins, v.bound)
		}
	}

	close(gate)
	<-done["block"]
	<-done["inherit"]
	m.Flush()

	for _, v := range views {
		qs, err := m.QueueStats(v.name)
		if err != nil {
			t.Fatal(err)
		}
		stats := dets[v.name].Stats()
		if qs.QueuedBins != 0 || qs.QueuedBatches != 0 {
			t.Fatalf("view %s queue not drained: %+v", v.name, qs)
		}
		if got := qs.EnqueuedBins - qs.DroppedBins; got != int64(stats.Processed) {
			t.Fatalf("view %s counters do not reconcile: enqueued %d - dropped %d != processed %d",
				v.name, qs.EnqueuedBins, qs.DroppedBins, stats.Processed)
		}
		if qs.EnqueuedBins+qs.RejectedBins != totalBins {
			t.Fatalf("view %s accepted %d + rejected %d != sent %d",
				v.name, qs.EnqueuedBins, qs.RejectedBins, totalBins)
		}
		markers := dets[v.name].seenMarkers()
		for i := 1; i < len(markers); i++ {
			if markers[i] <= markers[i-1] {
				t.Fatalf("view %s FIFO broken on survivors: %v then %v", v.name, markers[i-1], markers[i])
			}
		}
	}

	// Per-policy contracts, side by side on one monitor.
	for _, name := range []string{"block", "inherit"} {
		qs, _ := m.QueueStats(name)
		if len(errs[name]) != 0 {
			t.Fatalf("%s view returned errors: %v", name, errs[name])
		}
		if qs.DroppedBins != 0 || qs.RejectedBins != 0 {
			t.Fatalf("%s view lost bins: %+v", name, qs)
		}
		requireIncreasingByOne(t, name, dets[name].seenMarkers(), totalBins)
	}
	qs, _ := m.QueueStats("shed")
	if len(errs["shed"]) != 0 {
		t.Fatalf("shed view returned errors: %v", errs["shed"])
	}
	if qs.DroppedBins == 0 {
		t.Fatal("shed view dropped nothing under sustained overload")
	}
	if qs.EnqueuedBins != totalBins {
		t.Fatalf("shed view must accept everything: enqueued %d of %d", qs.EnqueuedBins, totalBins)
	}
	shedMarkers := dets["shed"].seenMarkers()
	if last := shedMarkers[len(shedMarkers)-1]; last != totalBins-1 {
		t.Fatalf("shed view lost newest bin: last marker %v, want %d", last, totalBins-1)
	}
	qs, _ = m.QueueStats("strict")
	if len(errs["strict"]) == 0 {
		t.Fatal("strict view returned no error under overload")
	}
	for _, err := range errs["strict"] {
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("strict view unexpected error: %v", err)
		}
	}
	if qs.RejectedBins == 0 {
		t.Fatal("strict view rejected nothing")
	}
	if qs.DroppedBins != 0 {
		t.Fatalf("strict view dropped queued work: %+v", qs)
	}
}

// TestLoadAutoscalerGrowsOnBacklogAndShrinksWithHysteresis drives the
// autoscaler evaluation by hand against an exactly known queue: a held
// worker pins the backlog, each tick's decision is asserted, and the
// scale-down path must wait out the full hysteresis count before
// releasing a worker.
func TestLoadAutoscalerGrowsOnBacklogAndShrinksWithHysteresis(t *testing.T) {
	clock := newFakeClock()
	gate := make(chan struct{})
	det := &loadDetector{links: 3, gate: gate}
	m := NewMonitor(Config{
		BatchSize:  4,
		MaxPending: 0,
		Autoscale: &AutoscaleConfig{
			MinWorkers: 1, MaxWorkers: 4,
			Interval:       time.Hour,
			ScaleUpBacklog: 1.5, ScaleDownBacklog: 0.25,
			ScaleDownAfter: 3,
			Smoothing:      1, // no EW memory: decisions depend only on the scripted state
		},
		now:                  clock.Now,
		disableAutoscaleLoop: true, // every tick below is driven by the test
	})
	defer m.Close()
	if err := m.AddDetectorView("v", det); err != nil {
		t.Fatal(err)
	}
	if w := m.Stats().Workers; w != 1 {
		t.Fatalf("autoscaled pool starts at %d workers, want MinWorkers=1", w)
	}

	// Flood: 12 chunks pile up behind the held worker (one in flight,
	// eleven queued).
	for i := 0; i < 12; i++ {
		if err := m.Ingest("v", markerBatch(i*4, 4, 3)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "backlog to queue", func() bool { return m.Stats().QueuedBatches == 11 })
	m.autoscaleTick()
	if w := m.Stats().Workers; w != 4 {
		t.Fatalf("tick under backlog 11 scaled to %d workers, want MaxWorkers=4", w)
	}
	if hw := m.Stats().WorkersHighWater; hw != 4 {
		t.Fatalf("high-water %d, want 4", hw)
	}

	// Drain and go calm: shrink must wait ScaleDownAfter consecutive
	// calm ticks, then release exactly one worker at a time.
	close(gate)
	m.Flush()
	for tick := 1; tick <= 2; tick++ {
		m.autoscaleTick()
		if w := m.Stats().Workers; w != 4 {
			t.Fatalf("calm tick %d shrank early to %d workers (hysteresis is 3)", tick, w)
		}
	}
	m.autoscaleTick()
	// An excess worker exits between batches, not instantaneously:
	// converge on the live count after each shrink decision.
	waitUntil(t, "third calm tick to release one worker", func() bool {
		return m.Stats().Workers == 3
	})
	for tick := 0; tick < 3*3; tick++ {
		m.autoscaleTick()
	}
	waitUntil(t, "sustained calm to shrink to MinWorkers", func() bool {
		return m.Stats().Workers == 1
	})
	for tick := 0; tick < 5; tick++ {
		m.autoscaleTick()
	}
	if w := m.Stats().Workers; w != 1 {
		t.Fatalf("pool shrank below MinWorkers: %d", w)
	}
}

// TestLoadAutoscalerScalesUpOnBatchLatency pins the latency half of the
// decision: a shallow backlog that would never trip the depth trigger
// must still grow the pool when the observed (fake-clock) batch latency
// says draining it will outlast an evaluation interval.
func TestLoadAutoscalerScalesUpOnBatchLatency(t *testing.T) {
	clock := newFakeClock()
	gate := make(chan struct{})
	det := &loadDetector{links: 3, gate: gate, clock: clock, cost: 50 * time.Millisecond}
	m := NewMonitor(Config{
		BatchSize: 4,
		Autoscale: &AutoscaleConfig{
			MinWorkers: 1, MaxWorkers: 4,
			// Interval doubles as the drain-time target the test
			// exercises, so it must stay short — the background loop is
			// disabled instead, keeping the test the tick's only driver.
			Interval:       10 * time.Millisecond,
			ScaleUpBacklog: 1.5, ScaleDownBacklog: 0.25,
			ScaleDownAfter: 3,
			Smoothing:      1,
		},
		now:                  clock.Now,
		disableAutoscaleLoop: true,
	})
	defer m.Close()
	if err := m.AddDetectorView("v", det); err != nil {
		t.Fatal(err)
	}
	// Let three batches through so the 50ms-per-batch latency is on
	// record.
	for i := 0; i < 3; i++ {
		if err := m.Ingest("v", markerBatch(i*4, 4, 3)); err != nil {
			t.Fatal(err)
		}
		gate <- struct{}{}
	}
	m.Flush()
	m.autoscaleTick() // absorbs the latency samples; backlog 0, stays at 1
	if w := m.Stats().Workers; w != 1 {
		t.Fatalf("idle tick resized the pool to %d", w)
	}
	// One batch in flight, one queued: backlog 1 < 1.5 per worker, but
	// 1 batch x 50ms / 1 worker > the 10ms interval, so the pool must
	// still grow.
	for i := 0; i < 2; i++ {
		if err := m.Ingest("v", markerBatch(100+i*4, 4, 3)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "one batch queued behind the held worker", func() bool {
		return m.Stats().QueuedBatches == 1
	})
	m.autoscaleTick()
	if w := m.Stats().Workers; w != 2 {
		t.Fatalf("latency-bound tick left %d workers, want 2", w)
	}
	close(gate)
	m.Flush()
}

// TestLoadNoLostAlarmsOnCloseMidBurst races three bursting producers
// against Close under the Block policy and requires exact alarm
// accounting afterwards: every bin of every Ingest call that was
// accepted has its alarm in TakeAlarms, every call rejected by the
// closed monitor contributed nothing, and nothing deadlocks.
func TestLoadNoLostAlarmsOnCloseMidBurst(t *testing.T) {
	const (
		producers = 3
		calls     = 30
		binsPer   = 8
		links     = 3
	)
	det := &loadDetector{links: links, alarmAll: true}
	m := NewMonitor(Config{
		Workers:    2,
		BatchSize:  4,
		MaxPending: 16,
		Overload:   OverloadBlock,
	})
	if err := m.AddDetectorView("v", det); err != nil {
		t.Fatal(err)
	}

	type result struct {
		start, n int
		accepted bool
	}
	results := make([][]result, producers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for c := 0; c < calls; c++ {
				start := (p*calls + c) * binsPer
				err := m.Ingest("v", markerBatch(start, binsPer, links))
				results[p] = append(results[p], result{start, binsPer, err == nil})
			}
		}(p)
	}
	// Close mid-burst: wait for some real work to be in, then pull the
	// plug while producers are still pushing.
	waitUntil(t, "burst to be underway", func() bool {
		return m.Stats().EnqueuedBins >= 100
	})
	closed := make(chan struct{})
	go func() {
		m.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked against bursting producers")
	}
	wg.Wait()

	alarmed := make(map[float64]bool)
	for _, a := range m.TakeAlarms() {
		alarmed[a.SPE] = true
	}
	var accepted int64
	for p := range results {
		for _, r := range results[p] {
			for i := 0; i < r.n; i++ {
				marker := float64(r.start + i)
				if r.accepted && !alarmed[marker] {
					t.Fatalf("bin %v was accepted but its alarm is missing", marker)
				}
				if !r.accepted && alarmed[marker] {
					t.Fatalf("bin %v of a rejected Ingest call was processed", marker)
				}
			}
			if r.accepted {
				accepted += int64(r.n)
			}
		}
	}
	qs, err := m.QueueStats("v")
	if err != nil {
		t.Fatal(err)
	}
	if qs.EnqueuedBins != accepted || qs.DroppedBins != 0 || qs.QueuedBins != 0 {
		t.Fatalf("accounting after Close: %+v, accepted %d", qs, accepted)
	}
	if got := det.Stats().Processed; int64(got) != accepted {
		t.Fatalf("detector processed %d of %d accepted bins", got, accepted)
	}
	if got := m.TakeAlarms(); len(got) != 0 {
		t.Fatalf("second TakeAlarms returned %d alarms", len(got))
	}
}

// TestLoadCloseDuringRefitUnderOverload composes the worst case: a
// bounded queue under Block backpressure, a background refit held in
// flight, and Close racing a still-bursting producer. Close must wait
// out both the drain and the refit, nothing may deadlock, and no
// goroutine may outlive it. Run under -race in CI.
func TestLoadCloseDuringRefitUnderOverload(t *testing.T) {
	const bins, links = 64, 4
	history := mat.Zeros(bins, links)
	for i := 0; i < bins; i++ {
		for j := 0; j < links; j++ {
			history.Set(i, j, 1e6*(1+0.3*math.Sin(float64(i)/9+float64(j))))
		}
	}
	det, err := forecast.NewDetector(history, forecast.Config{Kind: forecast.EWMA, Alpha: 0.3, RefitEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	det.SetRefitHook(func() {
		once.Do(func() { close(started) })
		<-release
	})

	goroutinesBefore := runtime.NumGoroutine()
	m := NewMonitor(Config{
		Workers:    1,
		BatchSize:  16,
		MaxPending: 32,
		Overload:   OverloadBlock,
	})
	if err := m.AddDetectorView("v", det); err != nil {
		t.Fatal(err)
	}
	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		for i := 0; i < 12; i++ {
			if err := m.Ingest("v", history); err != nil {
				return // monitor closed mid-burst: expected
			}
		}
	}()
	<-started // a background refit is in flight and held open

	closed := make(chan struct{})
	go func() {
		m.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a refit was still held open")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked with refit in flight under overload")
	}
	select {
	case <-prodDone:
	case <-time.After(30 * time.Second):
		t.Fatal("producer deadlocked against the closed monitor")
	}
	if errs := m.Errs(); len(errs) != 0 {
		t.Fatalf("clean run left errors: %v", errs)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across Close: %d before, %d after", goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLoadOversizedChunkAdmittedAlone pins the wedge-avoidance rule: a
// chunk larger than MaxPending is admitted into an empty queue instead
// of blocking (or erroring) forever.
func TestLoadOversizedChunkAdmittedAlone(t *testing.T) {
	for _, policy := range []OverloadPolicy{OverloadBlock, OverloadDropOldest, OverloadError} {
		t.Run(policy.String(), func(t *testing.T) {
			det := &loadDetector{links: 3}
			m := NewMonitor(Config{
				Workers:    1,
				BatchSize:  16,
				MaxPending: 4, // smaller than one chunk
				Overload:   policy,
			})
			defer m.Close()
			if err := m.AddDetectorView("v", det); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if err := m.Ingest("v", markerBatch(i*16, 16, 3)); err != nil && !errors.Is(err, ErrOverloaded) {
					t.Fatal(err)
				}
			}
			m.Flush()
			if got := det.Stats().Processed; got == 0 {
				t.Fatal("oversized chunks never processed")
			}
		})
	}
}

// TestLoadDropAwareSeq pins the drop-aware Seq contract: under
// OverloadDropOldest an alarm's Seq must be the bin's true offset in
// the ingest stream, not the detector's post-drop processing count.
// Column-0 markers carry each bin's stream offset, and the alarmAll
// detector echoes the marker in SPE, so Seq == SPE is checkable
// alarm-for-alarm.
func TestLoadDropAwareSeq(t *testing.T) {
	const links = 4
	det := &loadDetector{links: links, gate: make(chan struct{}), alarmAll: true}
	m := NewMonitor(Config{
		Workers:    1,
		BatchSize:  4,
		MaxPending: 8,
		Overload:   OverloadDropOldest,
	})
	defer m.Close()
	if err := m.AddDetectorView("v", det); err != nil {
		t.Fatal(err)
	}

	// First batch: the worker dequeues it and parks on the gate, so the
	// queue is empty but the shard is busy for the rest of the script.
	if err := m.Ingest("v", markerBatch(0, 4, links)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "worker to take the first batch", func() bool {
		qs, err := m.QueueStats("v")
		return err == nil && qs.QueuedBins == 0
	})

	// Fill the queue (8 bins), then push two more batches: each evicts
	// the oldest queued batch. Bins 4..11 are dropped, 12..19 survive.
	for _, start := range []int{4, 8, 12, 16} {
		if err := m.Ingest("v", markerBatch(start, 4, links)); err != nil {
			t.Fatal(err)
		}
	}
	qs, err := m.QueueStats("v")
	if err != nil {
		t.Fatal(err)
	}
	if qs.DroppedBins != 8 {
		t.Fatalf("dropped %d bins, want 8", qs.DroppedBins)
	}

	close(det.gate)
	m.Flush()

	want := []float64{0, 1, 2, 3, 12, 13, 14, 15, 16, 17, 18, 19}
	got := det.seenMarkers()
	if len(got) != len(want) {
		t.Fatalf("processed markers %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("processed markers %v, want %v", got, want)
		}
	}

	alarms := m.TakeAlarms()
	if len(alarms) != len(want) {
		t.Fatalf("got %d alarms, want %d", len(alarms), len(want))
	}
	seen := make(map[int]bool)
	for _, a := range alarms {
		if a.Seq != int(a.SPE) {
			t.Fatalf("alarm for stream bin %v reports Seq %d (post-drop queue position?)", a.SPE, a.Seq)
		}
		seen[a.Seq] = true
	}
	for _, w := range want {
		if !seen[int(w)] {
			t.Fatalf("no alarm with stream offset %v; alarms: %+v", w, alarms)
		}
	}
}
