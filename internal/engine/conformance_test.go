package engine

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"netanomaly/internal/core"
	"netanomaly/internal/forecast"
	"netanomaly/internal/mat"
	"netanomaly/internal/netmeas"
	"netanomaly/internal/timeseries"
	"netanomaly/internal/topology"
	"netanomaly/internal/traffic"
	"netanomaly/internal/wavelet"
)

// backendFixture carries everything the shared conformance battery
// needs for one backend: a seeded detector, its seed history (for
// re-Seed), the continuation stream, and where the injected spike must
// surface. The spike is a 9e7-byte volume anomaly on one OD flow at
// stream offset spikeBin; backends that localize in time report that
// exact sequence number, the multiscale backend reports the start of
// the anomalous region enclosing it.
type backendFixture struct {
	name             string
	det              core.ViewDetector
	history, stream  *mat.Dense
	spikeLo, spikeHi int
}

const (
	confHistoryBins = 1024 // dyadic so the multiscale backend can seed
	confStreamBins  = 128
	confSpikeBin    = 60
)

// conformanceFixtures builds all nine backends over one synthetic
// Abilene trace (shared OD matrix, shared routing): the five subspace
// family members (including the Frequent-Directions sketch), the three
// forecast baselines, and the hybrid triage→identification composition.
func conformanceFixtures(t *testing.T, seed int64) []backendFixture {
	t.Helper()
	topo := topology.Abilene()
	cfg := traffic.DefaultConfig(seed)
	cfg.Bins = confHistoryBins + confStreamBins
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	od := gen.Generate()
	flow := topo.FlowID(1, 7)
	od.Set(confHistoryBins+confSpikeBin, flow, od.At(confHistoryBins+confSpikeBin, flow)+9e7)
	y := traffic.LinkLoads(topo, od)
	links := topo.NumLinks()
	routing := topo.RoutingMatrix()
	history := mat.NewDense(confHistoryBins, links, y.RawData()[:confHistoryBins*links])
	stream := mat.NewDense(confStreamBins, links, y.RawData()[confHistoryBins*links:])

	ms, err := netmeas.LinkMetrics(topo, od, netmeas.MetricConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	stacked, err := ms.Stacked()
	if err != nil {
		t.Fatal(err)
	}
	cols := stacked.Cols()
	stackedHistory := mat.NewDense(confHistoryBins, cols, stacked.RawData()[:confHistoryBins*cols])
	stackedStream := mat.NewDense(confStreamBins, cols, stacked.RawData()[confHistoryBins*cols:])

	subspace, err := core.NewOnlineDetector(history, routing, core.OnlineConfig{Window: confHistoryBins})
	if err != nil {
		t.Fatal(err)
	}
	incremental, err := core.NewIncrementalDetector(history, routing, core.IncrementalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	multiscale, err := wavelet.NewStreamDetector(history, wavelet.StreamConfig{Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	multiflow, err := netmeas.NewMultiMetricDetector(stackedHistory, routing, netmeas.MultiMetricConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sketch, err := core.NewSketchDetector(history, routing, core.SketchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fixtures := []backendFixture{
		{"subspace", subspace, history, stream, confSpikeBin, confSpikeBin},
		{"incremental", incremental, history, stream, confSpikeBin, confSpikeBin},
		{"sketch", sketch, history, stream, confSpikeBin, confSpikeBin},
		{"multiscale", multiscale, history, stream, confSpikeBin - 3, confSpikeBin},
		{"multiflow", multiflow, stackedHistory, stackedStream, confSpikeBin, confSpikeBin},
	}
	for _, kind := range []forecast.Kind{forecast.EWMA, forecast.HoltWinters, forecast.Fourier} {
		det, err := forecast.NewDetector(history, forecast.Config{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		fixtures = append(fixtures, backendFixture{string(kind), det, history, stream, confSpikeBin, confSpikeBin})
	}
	fixtures = append(fixtures, backendFixture{"hybrid", hybridFixture(t, history, routing), history, stream, confSpikeBin, confSpikeBin})
	return fixtures
}

// hybridFixture composes the 8th backend: an EWMA triage stage over a
// windowed subspace identification stage with immediate escalation.
func hybridFixture(t *testing.T, history, routing *mat.Dense) *core.HybridDetector {
	t.Helper()
	triage, err := forecast.NewDetector(history, forecast.Config{Kind: forecast.EWMA})
	if err != nil {
		t.Fatal(err)
	}
	identify, err := core.NewOnlineDetector(history, routing, core.OnlineConfig{Window: history.Rows()})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := core.NewHybridDetector(triage, identify, history, core.HybridConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return hybrid
}

// TestViewDetectorConformance runs every backend through the shared
// streaming contract: width validation, sequence numbering, spike
// detection, explicit refits, deferred-error hygiene, and re-seeding.
func TestViewDetectorConformance(t *testing.T) {
	for _, f := range conformanceFixtures(t, 120) {
		f := f
		t.Run(f.name, func(t *testing.T) {
			stats := f.det.Stats()
			if stats.Backend != f.name {
				t.Fatalf("backend reports %q", stats.Backend)
			}
			if stats.Links != f.history.Cols() {
				t.Fatalf("links %d want %d", stats.Links, f.history.Cols())
			}
			if stats.Processed != 0 || stats.Refits != 0 {
				t.Fatalf("fresh detector stats = %+v", stats)
			}
			if _, err := f.det.ProcessBatch(mat.Zeros(4, f.history.Cols()+1)); err == nil {
				t.Fatal("mis-sized batch accepted")
			}
			if got := f.det.Stats().Processed; got != 0 {
				t.Fatalf("rejected batch advanced the counter to %d", got)
			}

			var alarms []core.Alarm
			cols := f.stream.Cols()
			half := confStreamBins / 2
			for _, span := range [][2]int{{0, half}, {half, confStreamBins}} {
				chunk := mat.NewDense(span[1]-span[0], cols, f.stream.RawData()[span[0]*cols:span[1]*cols])
				got, err := f.det.ProcessBatch(chunk)
				if err != nil {
					t.Fatal(err)
				}
				for i, a := range got {
					if a.Seq < span[0] || a.Seq >= span[1] {
						t.Fatalf("alarm seq %d outside batch span %v", a.Seq, span)
					}
					if i > 0 && got[i-1].Seq > a.Seq {
						t.Fatalf("alarm seqs out of order: %d then %d", got[i-1].Seq, a.Seq)
					}
				}
				alarms = append(alarms, got...)
			}
			spiked := false
			for _, a := range alarms {
				if a.Seq >= f.spikeLo && a.Seq <= f.spikeHi {
					spiked = true
				}
			}
			if !spiked {
				t.Fatalf("injected spike not alarmed in [%d,%d]; alarms: %+v", f.spikeLo, f.spikeHi, alarms)
			}
			if len(alarms) > 20 {
				t.Fatalf("too many alarms: %d", len(alarms))
			}
			if got := f.det.Stats().Processed; got != confStreamBins {
				t.Fatalf("processed %d want %d", got, confStreamBins)
			}

			refitsBefore := f.det.Stats().Refits
			if err := f.det.Refit(); err != nil {
				t.Fatal(err)
			}
			if got := f.det.Stats().Refits; got <= refitsBefore {
				t.Fatalf("explicit refit not counted: %d -> %d", refitsBefore, got)
			}
			f.det.WaitRefits()
			if err := f.det.TakeRefitError(); err != nil {
				t.Fatalf("clean run left a deferred error: %v", err)
			}
			if err := f.det.Seed(f.history); err != nil {
				t.Fatal(err)
			}
			if got := f.det.Stats().Processed; got != confStreamBins {
				t.Fatalf("Seed reset the processed counter to %d", got)
			}
		})
	}
}

// TestMonitorMixedBackends runs every backend kind — subspace family
// and forecast baselines alike — as shards of one Monitor over the
// shared pool, each receiving its own copy of the spiked trace, and
// checks every shard localizes the anomaly.
func TestMonitorMixedBackends(t *testing.T) {
	fixtures := conformanceFixtures(t, 121)
	m := NewMonitor(Config{Workers: 4, BatchSize: 32})
	defer m.Close()
	for _, f := range fixtures {
		if err := m.AddDetectorView(f.name, f.det); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range fixtures {
		if err := m.Ingest(f.name, f.stream); err != nil {
			t.Fatal(err)
		}
	}
	m.Flush()
	if errs := m.Errs(); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	byView := make(map[string][]core.Alarm)
	for _, a := range m.TakeAlarms() {
		byView[a.View] = append(byView[a.View], a.Alarm)
	}
	for _, f := range fixtures {
		stats, err := m.ViewStats(f.name)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Backend != f.name {
			t.Fatalf("view %q reports backend %q", f.name, stats.Backend)
		}
		if stats.Processed != confStreamBins {
			t.Fatalf("view %q processed %d", f.name, stats.Processed)
		}
		spiked := false
		for _, a := range byView[f.name] {
			if a.Seq >= f.spikeLo && a.Seq <= f.spikeHi {
				spiked = true
			}
		}
		if !spiked {
			t.Fatalf("view %q missed the spike; alarms: %+v", f.name, byView[f.name])
		}
	}
}

// scenarioFixtures builds the full backend family over one
// attack-scenario-library stream — the synflood scenario composed onto
// an Abilene trace through its OD routing — instead of the synthetic
// single-bin spike: the scenario's flow-labeled ground truth supplies
// the window every backend must alarm in.
func scenarioFixtures(t *testing.T, seed int64) ([]backendFixture, []traffic.LabeledBin) {
	t.Helper()
	topo := topology.Abilene()
	cfg := traffic.DefaultConfig(seed)
	cfg.Bins = confHistoryBins + confStreamBins
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	od := gen.Generate()
	sc, err := traffic.ScenarioByName("synflood")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Apply(topo, od, confHistoryBins, seed)
	if err != nil {
		t.Fatal(err)
	}
	truth := traffic.StreamTruth(res.Truth, confHistoryBins)
	if len(truth) == 0 {
		t.Fatal("synflood scenario emitted no stream truth")
	}
	floodLo, floodHi := truth[0].Bin, truth[len(truth)-1].Bin

	y := traffic.LinkLoads(topo, od)
	links := topo.NumLinks()
	routing := topo.RoutingMatrix()
	history := mat.NewDense(confHistoryBins, links, y.RawData()[:confHistoryBins*links])
	stream := mat.NewDense(confStreamBins, links, y.RawData()[confHistoryBins*links:])

	ms, err := netmeas.LinkMetrics(topo, od, netmeas.MetricConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for _, fa := range res.FlowCountAnomalies {
		ms.InjectFlowCountAnomaly(topo, fa.Flow, fa.Bin, fa.Extra)
	}
	stacked, err := ms.Stacked()
	if err != nil {
		t.Fatal(err)
	}
	cols := stacked.Cols()
	stackedHistory := mat.NewDense(confHistoryBins, cols, stacked.RawData()[:confHistoryBins*cols])
	stackedStream := mat.NewDense(confStreamBins, cols, stacked.RawData()[confHistoryBins*cols:])

	subspace, err := core.NewOnlineDetector(history, routing, core.OnlineConfig{Window: confHistoryBins})
	if err != nil {
		t.Fatal(err)
	}
	incremental, err := core.NewIncrementalDetector(history, routing, core.IncrementalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	multiscale, err := wavelet.NewStreamDetector(history, wavelet.StreamConfig{Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	multiflow, err := netmeas.NewMultiMetricDetector(stackedHistory, routing, netmeas.MultiMetricConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sketch, err := core.NewSketchDetector(history, routing, core.SketchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fixtures := []backendFixture{
		{"subspace", subspace, history, stream, floodLo, floodHi},
		{"incremental", incremental, history, stream, floodLo, floodHi},
		{"sketch", sketch, history, stream, floodLo, floodHi},
		{"multiscale", multiscale, history, stream, floodLo - 4, floodHi},
		{"multiflow", multiflow, stackedHistory, stackedStream, floodLo, floodHi},
	}
	for _, kind := range []forecast.Kind{forecast.EWMA, forecast.HoltWinters, forecast.Fourier} {
		det, err := forecast.NewDetector(history, forecast.Config{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		fixtures = append(fixtures, backendFixture{string(kind), det, history, stream, floodLo, floodHi})
	}
	fixtures = append(fixtures, backendFixture{"hybrid", hybridFixture(t, history, routing), history, stream, floodLo, floodHi})
	return fixtures, truth
}

// TestMonitorScenarioStream runs the full backend family as shards of
// one Monitor over the scenario-library flood stream: every backend
// must alarm inside the scenario's labeled window, the flow-attributing
// backends must name the scenario's flow, and the whole run — scenario
// injection included — must be bin-for-bin reproducible across two
// independently built monitors on the same seed.
func TestMonitorScenarioStream(t *testing.T) {
	run := func(seed int64) (map[string][]core.Alarm, []traffic.LabeledBin, []backendFixture) {
		fixtures, truth := scenarioFixtures(t, seed)
		m := NewMonitor(Config{Workers: 4, BatchSize: 32})
		defer m.Close()
		for _, f := range fixtures {
			if err := m.AddDetectorView(f.name, f.det); err != nil {
				t.Fatal(err)
			}
		}
		for _, f := range fixtures {
			if err := m.Ingest(f.name, f.stream); err != nil {
				t.Fatal(err)
			}
		}
		m.Flush()
		if errs := m.Errs(); len(errs) != 0 {
			t.Fatalf("unexpected errors: %v", errs)
		}
		byView := make(map[string][]core.Alarm)
		for _, a := range m.TakeAlarms() {
			byView[a.View] = append(byView[a.View], a.Alarm)
		}
		return byView, truth, fixtures
	}

	byView, truth, fixtures := run(140)
	wantFlow := truth[0].Flow
	for _, f := range fixtures {
		hit := false
		for _, a := range byView[f.name] {
			if a.Seq >= f.spikeLo && a.Seq <= f.spikeHi {
				hit = true
				// The flow-attributing backends must name the
				// scenario's labeled flow.
				switch f.name {
				case "subspace", "incremental", "sketch":
					if a.Flow != wantFlow {
						t.Fatalf("%s attributed flow %d at bin %d, scenario labels %d", f.name, a.Flow, a.Seq, wantFlow)
					}
				}
			}
		}
		if !hit {
			t.Fatalf("view %q missed the flood window [%d,%d]; alarms: %+v", f.name, f.spikeLo, f.spikeHi, byView[f.name])
		}
	}

	// Same seed, fresh monitor: the alarm stream must reproduce
	// bin-for-bin — the engine-level seed-determinism pin for scenario
	// injection.
	again, _, _ := run(140)
	for _, f := range fixtures {
		a, b := byView[f.name], again[f.name]
		if len(a) != len(b) {
			t.Fatalf("%s: rerun alarm count diverged: %d vs %d", f.name, len(a), len(b))
		}
		for i := range a {
			if a[i].Seq != b[i].Seq || a[i].Flow != b[i].Flow {
				t.Fatalf("%s: rerun alarm %d diverged: %+v vs %+v", f.name, i, a[i], b[i])
			}
		}
	}
}

// gatedDetector wraps a real backend so a test controls exactly when
// each batch is serviced: ProcessBatch consumes one token from gate
// (close the channel to open the floodgates). Stats, refits and errors
// pass straight through to the wrapped detector.
type gatedDetector struct {
	core.ViewDetector
	gate chan struct{}
}

func (g *gatedDetector) ProcessBatch(y *mat.Dense) ([]core.Alarm, error) {
	<-g.gate
	return g.ViewDetector.ProcessBatch(y)
}

// TestConformanceOverloadPolicies runs every backend once per overload
// policy on a bounded queue with the worker held on a token gate, so
// overload is certain and scripted, then requires the engine's queue
// accounting to reconcile exactly with the bins the backend actually
// processed: enqueued - dropped == ViewStats.Processed, rejected bins
// were never enqueued, and the bound was never exceeded.
func TestConformanceOverloadPolicies(t *testing.T) {
	const (
		batchSize  = 16
		maxPending = 32
	)
	for pi, policy := range []OverloadPolicy{OverloadBlock, OverloadDropOldest, OverloadError} {
		policy := policy
		fixtures := conformanceFixtures(t, int64(130+pi))
		t.Run(policy.String(), func(t *testing.T) {
			for _, f := range fixtures {
				f := f
				t.Run(f.name, func(t *testing.T) {
					gate := make(chan struct{})
					m := NewMonitor(Config{
						Workers:    1,
						BatchSize:  batchSize,
						MaxPending: maxPending,
						Overload:   policy,
					})
					defer m.Close()
					if err := m.AddDetectorView(f.name, &gatedDetector{f.det, gate}); err != nil {
						t.Fatal(err)
					}
					ingested := make(chan error, 1)
					go func() { ingested <- m.Ingest(f.name, f.stream) }()
					if policy == OverloadBlock {
						// The producer must wedge against the bound
						// before anything is released.
						waitUntil(t, "queue to fill", func() bool {
							return m.Stats().QueuedBins == maxPending
						})
					}
					var ingestErr error
					if policy == OverloadBlock {
						close(gate)
						ingestErr = <-ingested
					} else {
						ingestErr = <-ingested
						if q := m.Stats().QueuedBins; q > maxPending {
							t.Fatalf("queue grew to %d bins, bound is %d", q, maxPending)
						}
						close(gate)
					}
					m.Flush()

					qs, err := m.QueueStats(f.name)
					if err != nil {
						t.Fatal(err)
					}
					stats, err := m.ViewStats(f.name)
					if err != nil {
						t.Fatal(err)
					}
					if qs.QueuedBins != 0 {
						t.Fatalf("queue not drained: %+v", qs)
					}
					if got := qs.EnqueuedBins - qs.DroppedBins; got != int64(stats.Processed) {
						t.Fatalf("counters do not reconcile with backend: enqueued %d - dropped %d != processed %d",
							qs.EnqueuedBins, qs.DroppedBins, stats.Processed)
					}
					if qs.EnqueuedBins+qs.RejectedBins != int64(f.stream.Rows()) {
						t.Fatalf("accepted %d + rejected %d != streamed %d", qs.EnqueuedBins, qs.RejectedBins, f.stream.Rows())
					}
					switch policy {
					case OverloadBlock:
						if ingestErr != nil {
							t.Fatal(ingestErr)
						}
						if qs.DroppedBins != 0 || qs.RejectedBins != 0 {
							t.Fatalf("block policy lost bins: %+v", qs)
						}
						if stats.Processed != f.stream.Rows() {
							t.Fatalf("processed %d want %d", stats.Processed, f.stream.Rows())
						}
						// Nothing was lost, so the spike alarm must be
						// there just as in the unloaded conformance run.
						spiked := false
						for _, a := range m.TakeAlarms() {
							if a.Seq >= f.spikeLo && a.Seq <= f.spikeHi {
								spiked = true
							}
						}
						if !spiked {
							t.Fatalf("backpressured run missed the spike")
						}
					case OverloadDropOldest:
						if ingestErr != nil {
							t.Fatal(ingestErr)
						}
						if qs.DroppedBins == 0 {
							t.Fatal("held worker and flooded queue dropped nothing")
						}
						if qs.EnqueuedBins != int64(f.stream.Rows()) {
							t.Fatalf("dropoldest must accept everything: %+v", qs)
						}
					case OverloadError:
						if !errors.Is(ingestErr, ErrOverloaded) {
							t.Fatalf("expected ErrOverloaded, got %v", ingestErr)
						}
						if qs.RejectedBins == 0 || qs.DroppedBins != 0 {
							t.Fatalf("error-policy accounting: %+v", qs)
						}
					}
					if errs := m.Errs(); len(errs) != 0 {
						t.Fatalf("unexpected errors: %v", errs)
					}
				})
			}
		})
	}
}

// TestMonitorIngestStream drives a shard end-to-end from a live
// netmeas.Stream channel — the wiring a real SNMP collector would use.
func TestMonitorIngestStream(t *testing.T) {
	topo, history, stream, flow := viewData(t, 86, 1008, 200, 75)
	m := NewMonitor(Config{Workers: 2, BatchSize: 48})
	defer m.Close()
	if err := m.AddView("live", history, topo.RoutingMatrix()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := m.IngestStream("live", netmeas.Stream(ctx, stream, 0)); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	if errs := m.Errs(); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	stats, err := m.ViewStats("live")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Processed != 200 {
		t.Fatalf("processed %d want 200 (stream bins must all arrive, batch-aligned or not)", stats.Processed)
	}
	spiked := false
	for _, a := range m.TakeAlarms() {
		if a.Seq == 75 {
			spiked = true
			if a.Flow != flow {
				t.Fatalf("spike identified flow %d want %d", a.Flow, flow)
			}
		}
	}
	if !spiked {
		t.Fatal("spike not alarmed over the live stream")
	}

	// A mis-sized measurement fails fast without wedging the monitor.
	bad := make(chan netmeas.LinkMeasurement, 1)
	bad <- netmeas.LinkMeasurement{Bin: 0, Loads: []float64{1, 2, 3}}
	close(bad)
	if err := m.IngestStream("live", bad); err == nil || !strings.Contains(err.Error(), "links") {
		t.Fatalf("mis-sized stream measurement not rejected: %v", err)
	}
}

// TestStreamingEWMAAgreesWithBidirectionalResiduals pins the forecast
// backend's echo suppression to the paper's footnote-4 semantics: on a
// replayed trace with a large spike, the streaming EWMA detector (which
// withholds alarmed bins from its forecaster state) must flag exactly
// the bins whose offline bidirectional residual exceeds the same
// per-link thresholds — the spike itself, and in particular NOT the
// bin after it, which a plain forward EWMA would mark as a second
// spike.
func TestStreamingEWMAAgreesWithBidirectionalResiduals(t *testing.T) {
	const historyBins, streamBins, links = 1008, 192, 5
	const alpha = 0.3
	total := historyBins + streamBins
	full := mat.Zeros(total, links)
	for b := 0; b < total; b++ {
		hours := float64(b) / 6.0
		for l := 0; l < links; l++ {
			base := 4e7 * float64(l+1)
			diurnal := 1 + 0.35*math.Sin(2*math.Pi*hours/24+float64(l))
			noise := 1 + 0.01*math.Sin(float64(b*(l+3)))*math.Cos(float64(b*7+l))
			full.Set(b, l, base*diurnal*noise)
		}
	}
	// One large spike mid-stream on two links.
	spikeBin := historyBins + 90
	full.Set(spikeBin, 1, full.At(spikeBin, 1)+3e7)
	full.Set(spikeBin, 3, full.At(spikeBin, 3)+3e7)

	history := mat.NewDense(historyBins, links, full.RawData()[:historyBins*links])
	stream := mat.NewDense(streamBins, links, full.RawData()[historyBins*links:])
	// Adapt is tiny so the thresholds stay at their seed values and the
	// offline comparison below uses exactly the same numbers.
	det, err := forecast.NewDetector(history, forecast.Config{Kind: forecast.EWMA, Alpha: alpha, Adapt: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	thresholds := det.Thresholds()
	alarms, err := det.ProcessBatch(stream)
	if err != nil {
		t.Fatal(err)
	}
	streamed := make(map[int]bool)
	for _, a := range alarms {
		streamed[a.Seq] = true
	}

	// Offline: footnote-4 bidirectional residuals over the full trace,
	// against the very thresholds the streaming detector used.
	offline := make(map[int]bool)
	for l := 0; l < links; l++ {
		resid := timeseries.BidirectionalResiduals(full.Col(l), alpha)
		for b := historyBins; b < total; b++ {
			if resid[b] > thresholds[l] {
				offline[b-historyBins] = true
			}
		}
	}
	if !streamed[90] || !offline[90] {
		t.Fatalf("spike not flagged by both: streaming %v offline %v", streamed, offline)
	}
	if streamed[91] {
		t.Fatal("streaming EWMA flagged the echo bin a bidirectional pass suppresses")
	}
	for b := range streamed {
		if !offline[b] {
			t.Fatalf("streaming flagged bin %d that offline bidirectional residuals do not", b)
		}
	}
	for b := range offline {
		if !streamed[b] {
			t.Fatalf("offline bidirectional residuals flag bin %d that streaming missed", b)
		}
	}
}

// TestHybridFlowAttributionMatchesSubspace pins the hybrid's reason to
// exist: on the shared spiked trace the hybrid must attribute the spike
// to the same OD flow the full subspace backend identifies, while its
// identification stage sees only the escalated bins (a handful, not the
// whole stream).
func TestHybridFlowAttributionMatchesSubspace(t *testing.T) {
	fixtures := conformanceFixtures(t, 123)
	byName := make(map[string]backendFixture, len(fixtures))
	for _, f := range fixtures {
		byName[f.name] = f
	}
	spikeDiag := make(map[string]core.Diagnosis)
	for _, name := range []string{"subspace", "hybrid"} {
		f := byName[name]
		alarms, err := f.det.ProcessBatch(f.stream)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range alarms {
			if a.Seq == confSpikeBin {
				spikeDiag[name] = a.Diagnosis
			}
		}
	}
	sub, hyb := spikeDiag["subspace"], spikeDiag["hybrid"]
	if sub.Flow < 0 {
		t.Fatalf("subspace did not identify the spike: %+v", sub)
	}
	if hyb.Flow != sub.Flow {
		t.Fatalf("hybrid attributed flow %d, subspace %d", hyb.Flow, sub.Flow)
	}
	if hyb.SPE != sub.SPE || hyb.Bytes != sub.Bytes {
		t.Fatalf("hybrid spike diagnosis %+v differs from subspace %+v (same seed model, same bin)", hyb, sub)
	}
	hs := byName["hybrid"].det.(*core.HybridDetector).HybridStats()
	if hs.Escalated >= confStreamBins/2 {
		t.Fatalf("hybrid escalated %d of %d bins; triage is supposed to keep the subspace stage cold", hs.Escalated, confStreamBins)
	}
	if hs.Identified < 1 || hs.Identify.Processed != hs.Escalated {
		t.Fatalf("stage accounting wrong: %+v", hs)
	}
}

// TestMonitorCloseDuringHybridReseed pins Close against an in-flight
// hybrid background re-seed of the identification stage: Close must
// wait it out and no goroutine may outlive it. Run under -race in CI.
func TestMonitorCloseDuringHybridReseed(t *testing.T) {
	const bins, links = 64, 4
	history := mat.Zeros(bins, links)
	for i := 0; i < bins; i++ {
		for j := 0; j < links; j++ {
			history.Set(i, j, 100+10*float64((i*7+j*3)%13))
		}
	}
	triage, err := forecast.NewDetector(history, forecast.Config{Kind: forecast.EWMA, Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	identify, err := core.NewOnlineDetector(history, mat.Identity(links), core.OnlineConfig{Window: bins})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := core.NewHybridDetector(triage, identify, history, core.HybridConfig{RefitEvery: bins})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	hybrid.SetRefitHook(func() {
		close(started)
		<-release
	})

	goroutinesBefore := runtime.NumGoroutine()
	m := NewMonitor(Config{Workers: 1, BatchSize: bins})
	if err := m.AddDetectorView("v", hybrid); err != nil {
		t.Fatal(err)
	}
	if err := m.Ingest("v", history); err != nil {
		t.Fatal(err)
	}
	<-started // the background re-seed is in flight and held open

	closed := make(chan struct{})
	go func() {
		m.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a hybrid re-seed was still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the re-seed completed")
	}
	if errs := m.Errs(); len(errs) != 0 {
		t.Fatalf("clean hybrid re-seed left errors: %v", errs)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across Close: %d before, %d after", goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMonitorCloseDuringForecastRefit pins Close against an in-flight
// forecast-backend refit: Close must wait the background threshold
// re-estimation out, and no goroutine may outlive it. Run under -race
// in CI.
func TestMonitorCloseDuringForecastRefit(t *testing.T) {
	const bins, links = 64, 4
	history := mat.Zeros(bins, links)
	for i := 0; i < bins; i++ {
		for j := 0; j < links; j++ {
			history.Set(i, j, 1e6*(1+0.3*math.Sin(float64(i)/9+float64(j))))
		}
	}
	det, err := forecast.NewDetector(history, forecast.Config{Kind: forecast.EWMA, Alpha: 0.3, RefitEvery: bins})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	det.SetRefitHook(func() {
		close(started)
		<-release
	})

	goroutinesBefore := runtime.NumGoroutine()
	m := NewMonitor(Config{Workers: 1, BatchSize: bins})
	if err := m.AddDetectorView("v", det); err != nil {
		t.Fatal(err)
	}
	if err := m.Ingest("v", history); err != nil {
		t.Fatal(err)
	}
	<-started // the background refit is in flight and held open

	closed := make(chan struct{})
	go func() {
		m.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a forecast refit was still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the forecast refit completed")
	}
	if errs := m.Errs(); len(errs) != 0 {
		t.Fatalf("clean forecast refit left errors: %v", errs)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across Close: %d before, %d after", goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMonitorCloseDuringRefit pins the Close/refit interaction: a Close
// racing an in-flight background refit must wait the refit goroutine
// out (no leak), and a failure from that refit must still be
// harvestable through Errs afterwards (no dropped error). Run under
// -race in CI.
func TestMonitorCloseDuringRefit(t *testing.T) {
	const bins, links = 40, 6
	history := mat.Zeros(bins, links)
	for i := 0; i < bins; i++ {
		for j := 0; j < links; j++ {
			history.Set(i, j, 100+10*float64((i*7+j*3)%13))
		}
	}
	// A constant continuation drives the window degenerate, so the refit
	// triggered by the batch fails — exercising the dropped-error half.
	means := history.ColMeans()
	constant := mat.Zeros(bins, links)
	for i := 0; i < bins; i++ {
		constant.SetRow(i, means)
	}

	det, err := core.NewOnlineDetector(history, mat.Identity(links), core.OnlineConfig{Window: bins, RefitEvery: bins})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	det.SetRefitHook(func() {
		close(started)
		<-release
	})

	goroutinesBefore := runtime.NumGoroutine()
	m := NewMonitor(Config{Workers: 1, BatchSize: bins})
	if err := m.AddDetectorView("v", det); err != nil {
		t.Fatal(err)
	}
	if err := m.Ingest("v", constant); err != nil {
		t.Fatal(err)
	}
	<-started // the background refit is now in flight and held open

	closed := make(chan struct{})
	go func() {
		m.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a background refit was still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the refit completed")
	}

	errs := m.Errs()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "refit") {
		t.Fatalf("refit failure during Close not harvested: %v", errs)
	}

	// The refit goroutine and the worker pool must both be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across Close: %d before, %d after", goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
