package engine

// Tests for the zero-copy binary ingest path: end-to-end decode into
// pooled batches, the release-exactly-once buffer lifecycle under
// detector errors, DropOldest eviction and Close mid-stream, and the
// allocation gate CI runs. All run under -race in CI.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
	"netanomaly/internal/netmeas"
)

// countDetector counts bins and nothing else — it keeps the ingest
// path's allocation profile free of test-harness noise.
type countDetector struct {
	links int
	mu    sync.Mutex
	n     int
}

func (d *countDetector) Seed(*mat.Dense) error { return nil }

func (d *countDetector) ProcessBatch(y *mat.Dense) ([]core.Alarm, error) {
	rows, cols := y.Dims()
	if cols != d.links {
		return nil, fmt.Errorf("count: batch has %d links, want %d", cols, d.links)
	}
	d.mu.Lock()
	d.n += rows
	d.mu.Unlock()
	return nil, nil
}

func (d *countDetector) Refit() error             { return nil }
func (d *countDetector) WaitRefits()              {}
func (d *countDetector) TakeRefitError() error    { return nil }
func (d *countDetector) Snapshot(io.Writer) error { return nil }
func (d *countDetector) Restore(io.Reader) error  { return nil }

func (d *countDetector) Stats() core.ViewStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return core.ViewStats{Backend: "count", Links: d.links, Processed: d.n}
}

// failDetector rejects every batch, exercising the worker's
// release-after-error path.
type failDetector struct{ countDetector }

func (d *failDetector) ProcessBatch(y *mat.Dense) ([]core.Alarm, error) {
	d.mu.Lock()
	d.n += y.Rows()
	d.mu.Unlock()
	return nil, errors.New("scripted failure")
}

// encodeMarkers renders bins of marker-tagged link loads as one v1
// binary stream.
func encodeMarkers(t *testing.T, bins, links int) []byte {
	t.Helper()
	return encodeMarkersFormat(t, 0, bins, links, netmeas.WireFormat{})
}

// encodeMarkersFormat renders markers start..start+bins-1 as one binary
// stream in the given wire format.
func encodeMarkersFormat(t *testing.T, start, bins, links int, wf netmeas.WireFormat) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := netmeas.WriteMatrixBinaryFormat(&buf, markerBatch(start, bins, links), wf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func requirePoolReconciled(t *testing.T, pool *netmeas.FrameBatchPool) {
	t.Helper()
	gets, puts := pool.Counters()
	if gets != puts {
		t.Fatalf("pool gets %d != releases %d: a buffer leaked or double-released", gets, puts)
	}
	if gets == 0 {
		t.Fatal("pool never used")
	}
}

func TestIngestBinaryEndToEnd(t *testing.T) {
	const bins, links = 300, 5
	det := &loadDetector{links: links}
	m := NewMonitor(Config{Workers: 2, BatchSize: 64})
	defer m.Close()
	if err := m.AddDetectorView("v", det); err != nil {
		t.Fatal(err)
	}
	dec, err := netmeas.NewBinaryDecoder(bytes.NewReader(encodeMarkers(t, bins, links)))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.IngestBinary("v", dec); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	requireIncreasingByOne(t, "v", det.seenMarkers(), bins)
	qs, err := m.QueueStats("v")
	if err != nil {
		t.Fatal(err)
	}
	if qs.EnqueuedBins != bins {
		t.Fatalf("enqueued %d bins, want %d", qs.EnqueuedBins, bins)
	}
}

// TestIngestBinaryMixedVersions feeds one view from collectors that
// speak different wire formats — v1 per-bin frames, v2 raw batches, v2
// xor batches with a capacity above the monitor's BatchSize — and
// requires the marker sequence to arrive intact. This is the ingestd
// deployment story: version negotiation is per connection, the engine
// behind it is format-blind.
func TestIngestBinaryMixedVersions(t *testing.T) {
	const seg, links = 100, 5
	det := &loadDetector{links: links}
	m := NewMonitor(Config{Workers: 2, BatchSize: 64})
	defer m.Close()
	if err := m.AddDetectorView("v", det); err != nil {
		t.Fatal(err)
	}
	streams := [][]byte{
		encodeMarkersFormat(t, 0, seg, links, netmeas.WireFormat{}),
		encodeMarkersFormat(t, seg, seg, links, netmeas.WireFormat{Version: 2, Codec: netmeas.CodecRaw, BatchBins: 16}),
		encodeMarkersFormat(t, 2*seg, seg, links, netmeas.WireFormat{Version: 2, Codec: netmeas.CodecXOR, BatchBins: 128}),
	}
	for i, stream := range streams {
		dec, err := netmeas.NewBinaryDecoder(bytes.NewReader(stream))
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		if err := m.IngestBinary("v", dec); err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		// Drain between streams so the three sources cannot interleave;
		// within-stream FIFO plus sequential sources pins the order.
		m.Flush()
	}
	requireIncreasingByOne(t, "v", det.seenMarkers(), 3*seg)
}

// TestIngestBinaryPoolReusedAcrossStreams pins the fix for the
// per-stream pool warm-up: reconnecting collectors must hit the
// shard's cached pool (one per batch capacity), not allocate a fresh
// cold pool per stream.
func TestIngestBinaryPoolReusedAcrossStreams(t *testing.T) {
	const bins, links = 128, 4
	det := &countDetector{links: links}
	m := NewMonitor(Config{Workers: 1, BatchSize: 32})
	defer m.Close()
	if err := m.AddDetectorView("v", det); err != nil {
		t.Fatal(err)
	}
	s, err := m.lookup("v")
	if err != nil {
		t.Fatal(err)
	}
	v1 := encodeMarkers(t, bins, links)
	v2 := encodeMarkersFormat(t, 0, bins, links, netmeas.WireFormat{Version: 2, Codec: netmeas.CodecRaw, BatchBins: 80})
	ingest := func(stream []byte) {
		dec, err := netmeas.NewBinaryDecoder(bytes.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.IngestBinary("v", dec); err != nil {
			t.Fatal(err)
		}
		m.Flush()
	}
	// Three v1 connections share the BatchSize-capacity pool; two v2
	// connections with an 80-bin batch capacity share a second pool.
	ingest(v1)
	ingest(v1)
	ingest(v1)
	ingest(v2)
	ingest(v2)
	s.poolMu.Lock()
	nPools := len(s.pools)
	s.poolMu.Unlock()
	if nPools != 2 {
		t.Fatalf("shard caches %d pools, want 2 (one per batch capacity)", nPools)
	}
	for _, cap := range []int{32, 80} {
		pool := s.batchPool(cap)
		gets, puts := pool.Counters()
		if gets == 0 {
			t.Fatalf("capacity-%d pool never served a stream", cap)
		}
		if gets != puts {
			t.Fatalf("capacity-%d pool gets %d != releases %d after streams drained", cap, gets, puts)
		}
	}
	if got := det.Stats().Processed; got != 5*bins {
		t.Fatalf("processed %d bins across reconnects, want %d", got, 5*bins)
	}
}

func TestIngestBinaryRejectsWrongWidth(t *testing.T) {
	det := &countDetector{links: 7}
	m := NewMonitor(Config{Workers: 1})
	defer m.Close()
	if err := m.AddDetectorView("v", det); err != nil {
		t.Fatal(err)
	}
	dec, err := netmeas.NewBinaryDecoder(bytes.NewReader(encodeMarkers(t, 4, 5)))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.IngestBinary("v", dec); err == nil {
		t.Fatal("mis-sized binary stream accepted")
	}
}

func TestIngestBinaryPoolLifecycleDetectorError(t *testing.T) {
	const bins, links = 256, 6
	det := &failDetector{countDetector{links: links}}
	m := NewMonitor(Config{Workers: 2, BatchSize: 32})
	defer m.Close()
	if err := m.AddDetectorView("v", det); err != nil {
		t.Fatal(err)
	}
	s, err := m.lookup("v")
	if err != nil {
		t.Fatal(err)
	}
	dec, err := netmeas.NewBinaryDecoder(bytes.NewReader(encodeMarkers(t, bins, links)))
	if err != nil {
		t.Fatal(err)
	}
	pool := netmeas.NewFrameBatchPool(m.cfg.BatchSize, links)
	if err := m.ingestBinaryPooled(s, dec, pool); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	if errs := m.Errs(); len(errs) != bins/32 {
		t.Fatalf("got %d deferred errors, want %d", len(errs), bins/32)
	}
	requirePoolReconciled(t, pool)
}

func TestIngestBinaryPoolLifecycleDropOldest(t *testing.T) {
	const bins, links = 320, 4
	det := &loadDetector{links: links, gate: make(chan struct{})}
	m := NewMonitor(Config{
		Workers:    1,
		BatchSize:  16,
		MaxPending: 64,
		Overload:   OverloadDropOldest,
	})
	defer m.Close()
	if err := m.AddDetectorView("v", det); err != nil {
		t.Fatal(err)
	}
	s, err := m.lookup("v")
	if err != nil {
		t.Fatal(err)
	}
	dec, err := netmeas.NewBinaryDecoder(bytes.NewReader(encodeMarkers(t, bins, links)))
	if err != nil {
		t.Fatal(err)
	}
	pool := netmeas.NewFrameBatchPool(m.cfg.BatchSize, links)
	// The single gated worker holds at most one batch, so flooding 320
	// bins through a 64-bin queue must evict: every evicted batch's
	// buffer is released on the spot by the admission path.
	if err := m.ingestBinaryPooled(s, dec, pool); err != nil {
		t.Fatal(err)
	}
	close(det.gate)
	m.Flush()
	qs, err := m.QueueStats("v")
	if err != nil {
		t.Fatal(err)
	}
	if qs.DroppedBins == 0 {
		t.Fatal("overload never dropped despite a gated worker")
	}
	if got := int64(det.Stats().Processed); qs.EnqueuedBins-qs.DroppedBins != got {
		t.Fatalf("counters do not reconcile: enqueued %d - dropped %d != processed %d",
			qs.EnqueuedBins, qs.DroppedBins, got)
	}
	requirePoolReconciled(t, pool)
}

func TestIngestBinaryPoolLifecycleCloseMidStream(t *testing.T) {
	const links = 3
	det := &countDetector{links: links}
	m := NewMonitor(Config{Workers: 1, BatchSize: 16})
	if err := m.AddDetectorView("v", det); err != nil {
		t.Fatal(err)
	}
	s, err := m.lookup("v")
	if err != nil {
		t.Fatal(err)
	}

	pr, pw := io.Pipe()
	headerAndBatch := encodeMarkers(t, 16, links)
	frameSize := (len(headerAndBatch) - 12) / 16

	errCh := make(chan error, 1)
	poolCh := make(chan *netmeas.FrameBatchPool, 1)
	go func() {
		dec, err := netmeas.NewBinaryDecoder(pr)
		if err != nil {
			errCh <- err
			return
		}
		pool := netmeas.NewFrameBatchPool(m.cfg.BatchSize, links)
		poolCh <- pool
		errCh <- m.ingestBinaryPooled(s, dec, pool)
	}()

	// Header + one full batch: the producer enqueues it and blocks on
	// the pipe for more frames.
	if _, err := pw.Write(headerAndBatch); err != nil {
		t.Fatal(err)
	}
	pool := <-poolCh
	waitUntil(t, "first batch processed", func() bool {
		return det.Stats().Processed == 16
	})

	// Close while the stream is mid-flight, then deliver another full
	// batch: the producer must refuse it, release the buffer, and exit.
	m.Close()
	if _, err := pw.Write(bytes.Repeat(headerAndBatch[12:12+frameSize], 16)); err != nil {
		t.Fatal(err)
	}
	ingestErr := <-errCh
	if ingestErr == nil || !strings.Contains(ingestErr.Error(), "closed") {
		t.Fatalf("ingest after Close returned %v, want monitor-closed error", ingestErr)
	}
	pw.Close()
	requirePoolReconciled(t, pool)
	if det.Stats().Processed != 16 {
		t.Fatalf("processed %d bins, want only the pre-Close 16", det.Stats().Processed)
	}
}

// TestBinaryIngestAllocGate is the CI allocation gate: after one
// warm-up stream, binary ingest — decode, pooled batch hand-off,
// queueing, dispatch — must stay at or below 0.01 heap allocations per
// bin. The shard-cached batch pools made reconnects warm, so the only
// tolerated residue is the per-stream decoder setup and the rare queue
// regrowth, amortized over 4096 bins per run.
func TestBinaryIngestAllocGate(t *testing.T) {
	const bins, links = 4096, 120
	det := &countDetector{links: links}
	m := NewMonitor(Config{
		Workers:    1,
		BatchSize:  64,
		MaxPending: 256,
		Overload:   OverloadBlock,
	})
	defer m.Close()
	if err := m.AddDetectorView("v", det); err != nil {
		t.Fatal(err)
	}
	payload := encodeMarkers(t, bins, links)

	run := func() {
		dec, err := netmeas.NewBinaryDecoder(bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.IngestBinary("v", dec); err != nil {
			t.Fatal(err)
		}
		m.Flush()
	}
	run() // warm the pool and the queue's backing array
	allocs := testing.AllocsPerRun(5, run)
	perBin := allocs / bins
	// The race detector makes sync.Pool drop Puts on purpose, so pooled
	// buffers reallocate; only the non-race build can hold the tight
	// bound.
	limit := 0.01
	if raceEnabled {
		limit = 1
	}
	if perBin > limit {
		t.Fatalf("binary ingest allocates %.4f per bin (%.0f per %d-bin stream), want amortized <= %v", perBin, allocs, bins, limit)
	}
	t.Logf("binary ingest: %.4f allocs/bin (%.0f per %d-bin stream)", perBin, allocs, bins)
}
