// Package engine runs the paper's detector family as a concurrent
// streaming detection service. A Monitor owns one detector shard per
// traffic view (a topology, a vantage point, a customer network —
// anything with its own routing matrix and measurement stream) and fans
// measurement batches across a fixed worker pool. A shard holds any
// core.ViewDetector — the windowed subspace method, the incremental
// covariance-tracking variant, the multiscale wavelet detector, or the
// multi-metric voter — so heterogeneous backends run side by side in
// one pool. Every backend is non-blocking by contract: detection inside
// a shard runs against an atomically swapped model, so a model refit in
// one view never stalls ingestion in any view. The batched hot path
// tests a whole bins x links block in one matrix pass, which is what
// makes the engine's per-bin cost a fraction of the serial per-vector
// loop.
//
// The Monitor is the scale-out layer the ROADMAP's "first-level online
// monitor" needs; for a single stream with no fan-out requirements, a
// core.ViewDetector alone is simpler.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
	"netanomaly/internal/netmeas"
)

// Config parameterizes a Monitor. The zero value is usable: defaults are
// filled in by NewMonitor.
type Config struct {
	// Workers is the size of the processing pool; default GOMAXPROCS.
	Workers int
	// BatchSize is the number of bins per dispatched job: Ingest splits
	// larger batches into BatchSize chunks so one bulky view cannot
	// monopolize the pool. Default 64.
	BatchSize int
	// Window is the per-shard sliding window, in bins (the paper fits on
	// 1008); 0 uses each view's full seeding history.
	Window int
	// RefitEvery triggers a background model refit in a shard after this
	// many processed bins; 0 disables automatic refits.
	RefitEvery int
	// Options configure each shard's diagnoser.
	Options core.Options
	// OnAlarm, when set, is invoked for every raised alarm, possibly
	// concurrently from multiple workers. When nil, alarms accumulate
	// internally and are retrieved with TakeAlarms.
	OnAlarm func(Alarm)
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
}

// Alarm is a diagnosed anomaly tagged with the view that raised it. Seq
// is the per-view measurement sequence number assigned at processing
// time.
type Alarm struct {
	View string
	core.Alarm
}

// shard is one view's detector, its FIFO of queued batches, and its
// deferred-error log. A shard's batches are processed strictly in queue
// order by whichever worker owns the shard at the moment, so per-view
// sequence numbers always match arrival order; parallelism comes from
// different shards running on different workers.
type shard struct {
	name  string
	links int
	det   core.ViewDetector

	// procMu serializes detector ProcessBatch calls between the owning
	// worker and synchronous Monitor.ProcessBatch, upholding the
	// one-ProcessBatch-caller-at-a-time guarantee the ViewDetector
	// contract promises backends even when a user mixes Ingest and
	// ProcessBatch on one view.
	procMu sync.Mutex

	qmu   sync.Mutex
	queue []*mat.Dense
	owned bool // a worker currently holds this shard

	errMu sync.Mutex
	errs  []error
}

func (s *shard) recordErr(err error) {
	s.errMu.Lock()
	s.errs = append(s.errs, fmt.Errorf("engine: view %q: %w", s.name, err))
	s.errMu.Unlock()
}

// Monitor is a sharded, batched streaming detection engine. Create one
// with NewMonitor, register views with AddView, feed measurement batches
// with Ingest (asynchronous) or ProcessBatch (synchronous), and stop it
// with Close.
type Monitor struct {
	cfg Config

	mu     sync.Mutex
	shards map[string]*shard
	closed bool

	// ready holds shards with queued work that no worker owns yet;
	// workers round-robin over it (one batch per turn) so a busy view
	// cannot starve the others.
	dispatchMu sync.Mutex
	dispatch   *sync.Cond
	ready      []*shard
	stopping   bool

	workers sync.WaitGroup

	// pending counts queued-but-unprocessed batches. A mutex+cond pair
	// rather than a WaitGroup: Ingest may add while Flush waits, which
	// the WaitGroup contract forbids (Add on a zero counter concurrent
	// with Wait) but a cond handles naturally.
	pendMu   sync.Mutex
	pendCond *sync.Cond
	pendN    int

	alarmMu sync.Mutex
	alarms  []Alarm
}

func (m *Monitor) addPending(n int) {
	m.pendMu.Lock()
	m.pendN += n
	m.pendMu.Unlock()
}

func (m *Monitor) donePending() {
	m.pendMu.Lock()
	m.pendN--
	if m.pendN == 0 {
		m.pendCond.Broadcast()
	}
	m.pendMu.Unlock()
}

func (m *Monitor) waitPending() {
	m.pendMu.Lock()
	for m.pendN > 0 {
		m.pendCond.Wait()
	}
	m.pendMu.Unlock()
}

// Config returns the monitor's effective configuration (defaults filled
// in), so backend factories outside this package can seed detectors
// with the same window, refit cadence and diagnosis options the default
// subspace shards get.
func (m *Monitor) Config() Config { return m.cfg }

// NewMonitor starts the worker pool and returns an empty Monitor.
func NewMonitor(cfg Config) *Monitor {
	cfg.fillDefaults()
	m := &Monitor{
		cfg:    cfg,
		shards: make(map[string]*shard),
	}
	m.dispatch = sync.NewCond(&m.dispatchMu)
	m.pendCond = sync.NewCond(&m.pendMu)
	for w := 0; w < cfg.Workers; w++ {
		m.workers.Add(1)
		go m.worker()
	}
	return m
}

func (m *Monitor) worker() {
	defer m.workers.Done()
	for {
		m.dispatchMu.Lock()
		for len(m.ready) == 0 && !m.stopping {
			m.dispatch.Wait()
		}
		if len(m.ready) == 0 {
			m.dispatchMu.Unlock()
			return
		}
		s := m.ready[0]
		m.ready = m.ready[1:]
		m.dispatchMu.Unlock()

		s.qmu.Lock()
		if len(s.queue) == 0 {
			s.owned = false
			s.qmu.Unlock()
			continue
		}
		batch := s.queue[0]
		s.queue = s.queue[1:]
		s.qmu.Unlock()

		s.procMu.Lock()
		alarms, err := s.det.ProcessBatch(batch)
		s.procMu.Unlock()
		if err != nil {
			s.recordErr(err)
		}
		for _, a := range alarms {
			m.emit(Alarm{View: s.name, Alarm: a})
		}

		// Hand the shard back: re-ready it if more batches arrived,
		// otherwise release ownership so the next Ingest re-readies it.
		s.qmu.Lock()
		more := len(s.queue) > 0
		if !more {
			s.owned = false
		}
		s.qmu.Unlock()
		if more {
			m.readyShard(s)
		}
		m.donePending()
	}
}

// readyShard puts an owned shard (back) on the dispatch list and wakes a
// worker.
func (m *Monitor) readyShard(s *shard) {
	m.dispatchMu.Lock()
	m.ready = append(m.ready, s)
	m.dispatch.Signal()
	m.dispatchMu.Unlock()
}

func (m *Monitor) emit(a Alarm) {
	if m.cfg.OnAlarm != nil {
		m.cfg.OnAlarm(a)
		return
	}
	m.alarmMu.Lock()
	m.alarms = append(m.alarms, a)
	m.alarmMu.Unlock()
}

// AddView registers a subspace detector shard — the default backend.
// history (bins x links) seeds the model and sliding window; routing
// (links x flows) drives identification. Views can be added while the
// monitor is running. For a different backend, construct any
// core.ViewDetector and register it with AddDetectorView.
func (m *Monitor) AddView(name string, history, routing *mat.Dense) error {
	window := m.cfg.Window
	if window <= 0 {
		window = history.Rows()
	}
	det, err := core.NewOnlineDetector(history, routing, core.OnlineConfig{
		Window:     window,
		RefitEvery: m.cfg.RefitEvery,
		Options:    m.cfg.Options,
	})
	if err != nil {
		return fmt.Errorf("engine: view %q: %w", name, err)
	}
	return m.AddDetectorView(name, det)
}

// AddDetectorView registers a shard running an arbitrary streaming
// backend — the subspace, incremental, multiscale and multi-metric
// detectors all satisfy core.ViewDetector, and one Monitor can mix
// them freely. The detector must already be seeded; its Stats().Links
// fixes the batch width the view accepts.
func (m *Monitor) AddDetectorView(name string, det core.ViewDetector) error {
	links := det.Stats().Links
	if links <= 0 {
		return fmt.Errorf("engine: view %q: detector reports %d links", name, links)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("engine: monitor is closed")
	}
	if _, dup := m.shards[name]; dup {
		return fmt.Errorf("engine: duplicate view %q", name)
	}
	m.shards[name] = &shard{name: name, links: links, det: det}
	return nil
}

// Ingest queues a measurement batch (bins x links) for the view,
// splitting it into BatchSize chunks, and returns without waiting for
// processing. Chunks of one view are processed strictly in ingest order
// (sequence numbers match arrival order); chunks of different views run
// concurrently across the worker pool. The batch's rows are copied into
// the window as they are processed; the caller must not mutate the batch
// until Flush (or Close) returns.
func (m *Monitor) Ingest(view string, batch *mat.Dense) error {
	s, err := m.lookup(view)
	if err != nil {
		return err
	}
	bins, cols := batch.Dims()
	if cols != s.links {
		return fmt.Errorf("engine: view %q: batch has %d links, want %d", view, cols, s.links)
	}
	data := batch.RawData()
	var chunks []*mat.Dense
	for r0 := 0; r0 < bins; r0 += m.cfg.BatchSize {
		r1 := r0 + m.cfg.BatchSize
		if r1 > bins {
			r1 = bins
		}
		chunks = append(chunks, mat.NewDense(r1-r0, cols, data[r0*cols:r1*cols]))
	}
	if len(chunks) == 0 {
		return nil
	}
	m.addPending(len(chunks))
	s.qmu.Lock()
	s.queue = append(s.queue, chunks...)
	wake := !s.owned
	if wake {
		s.owned = true
	}
	s.qmu.Unlock()
	if wake {
		m.readyShard(s)
	}
	return nil
}

// IngestStream consumes a live measurement channel (as produced by
// netmeas.Stream) and feeds the view until the channel closes,
// accumulating arrivals into BatchSize blocks so the batched hot path
// stays hot even for bin-at-a-time sources. It blocks the calling
// goroutine for the life of the stream — run one IngestStream goroutine
// per source — and returns after the final partial batch is queued, or
// on the first error (mis-sized measurement, monitor closed); on error
// the caller should cancel the context driving the stream so the
// producer goroutine does not block forever on an undrained channel.
// Like Ingest, it queues work asynchronously: call Flush to wait for
// processing.
func (m *Monitor) IngestStream(view string, ch <-chan netmeas.LinkMeasurement) error {
	s, err := m.lookup(view)
	if err != nil {
		return err
	}
	batch := m.cfg.BatchSize
	buf := mat.Zeros(batch, s.links)
	rows := 0
	flush := func() error {
		if rows == 0 {
			return nil
		}
		chunk := mat.NewDense(rows, s.links, buf.RawData()[:rows*s.links])
		rows = 0
		// The queue aliases ingested batches until processed, so each
		// flushed chunk needs its own backing array.
		buf = mat.Zeros(batch, s.links)
		return m.Ingest(view, chunk)
	}
	for meas := range ch {
		if len(meas.Loads) != s.links {
			err := fmt.Errorf("engine: view %q: stream measurement has %d links, want %d", view, len(meas.Loads), s.links)
			if ferr := flush(); ferr != nil {
				// Both failures matter: the mis-sized measurement is the
				// root cause the caller must fix, the flush failure says
				// the buffered bins before it were lost too.
				return errors.Join(err, ferr)
			}
			return err
		}
		buf.SetRow(rows, meas.Loads)
		rows++
		if rows == batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// ProcessBatch runs a batch through the view's shard synchronously on
// the caller's goroutine (bypassing the queue — it may jump ahead of
// batches still queued by Ingest, though it never interleaves with
// them mid-batch) and returns the raised alarms, which are also
// delivered to OnAlarm/TakeAlarms. The batch's alarms are returned
// even when err is non-nil: the detector reports deferred
// background-refit failures alongside valid detections, and dropping
// the detections would lose real anomalies.
func (m *Monitor) ProcessBatch(view string, batch *mat.Dense) ([]Alarm, error) {
	s, err := m.lookup(view)
	if err != nil {
		return nil, err
	}
	s.procMu.Lock()
	raw, err := s.det.ProcessBatch(batch)
	s.procMu.Unlock()
	out := make([]Alarm, len(raw))
	for i, a := range raw {
		out[i] = Alarm{View: view, Alarm: a}
		m.emit(out[i])
	}
	if err != nil {
		err = fmt.Errorf("engine: view %q: %w", view, err)
	}
	return out, err
}

func (m *Monitor) lookup(view string) (*shard, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("engine: monitor is closed")
	}
	s, ok := m.shards[view]
	if !ok {
		return nil, fmt.Errorf("engine: unknown view %q", view)
	}
	return s, nil
}

// snapshotShards returns the current shard set under the monitor lock.
func (m *Monitor) snapshotShards() []*shard {
	m.mu.Lock()
	defer m.mu.Unlock()
	shards := make([]*shard, 0, len(m.shards))
	for _, s := range m.shards {
		shards = append(shards, s)
	}
	return shards
}

// drainRefits waits out every in-flight background refit. It must run
// only after the queued work that could spawn refits has been processed
// (waitPending), so no new fit can start between the per-shard waits.
func (m *Monitor) drainRefits() {
	for _, s := range m.snapshotShards() {
		s.det.WaitRefits()
	}
}

// Flush blocks until every queued batch has been processed and every
// background refit launched so far has completed. Ingest may continue
// from other goroutines, in which case Flush covers at least the work
// queued before the call.
func (m *Monitor) Flush() {
	m.waitPending()
	m.drainRefits()
}

// TakeAlarms returns the alarms accumulated since the last call and
// clears the buffer. Only used when Config.OnAlarm is nil.
func (m *Monitor) TakeAlarms() []Alarm {
	m.alarmMu.Lock()
	out := m.alarms
	m.alarms = nil
	m.alarmMu.Unlock()
	return out
}

// Errs returns every deferred error recorded so far (failed background
// refits, mis-sized batches discovered at processing time), oldest
// first. It also harvests any refit failure still parked inside a
// detector — e.g. one triggered by the final batch, which no later
// Process call would ever surface — so call it after Flush or Close to
// get the complete picture.
func (m *Monitor) Errs() []error {
	var out []error
	for _, s := range m.snapshotShards() {
		if err := s.det.TakeRefitError(); err != nil {
			s.recordErr(err)
		}
		s.errMu.Lock()
		out = append(out, s.errs...)
		s.errMu.Unlock()
	}
	return out
}

// Views returns the registered view names, in no particular order.
func (m *Monitor) Views() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.shards))
	for name := range m.shards {
		out = append(out, name)
	}
	return out
}

// Detector returns a view's underlying streaming detector (for
// inspecting processed counts, triggering explicit refits, or
// type-asserting to a concrete backend for model access).
func (m *Monitor) Detector(view string) (core.ViewDetector, error) {
	s, err := m.lookup(view)
	if err != nil {
		return nil, err
	}
	return s.det, nil
}

// ViewStats reports a view's backend kind, processed-bin count, model
// rank and completed refits.
func (m *Monitor) ViewStats(view string) (core.ViewStats, error) {
	s, err := m.lookup(view)
	if err != nil {
		return core.ViewStats{}, err
	}
	return s.det.Stats(), nil
}

// Close drains the queue, stops the workers, and waits out every
// in-flight background refit — including one triggered by the final
// batch — so no refit goroutine outlives Close. A refit that fails
// while Close drains keeps its error parked in the detector; call Errs
// after Close to harvest it (Close cannot deliver it to anyone). After
// Close, Ingest and ProcessBatch fail. Close must not be called
// concurrently with Ingest or IngestStream: quiesce producers first
// (the closed flag makes later Ingest calls fail cleanly, but a racing
// one could enqueue into a closing pool).
func (m *Monitor) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.waitPending()
	m.dispatchMu.Lock()
	m.stopping = true
	m.dispatch.Broadcast()
	m.dispatchMu.Unlock()
	m.workers.Wait()
	m.drainRefits()
}
