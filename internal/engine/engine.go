// Package engine runs the paper's detector family as a concurrent
// streaming detection service. A Monitor owns one detector shard per
// traffic view (a topology, a vantage point, a customer network —
// anything with its own routing matrix and measurement stream) and fans
// measurement batches across a worker pool. A shard holds any
// core.ViewDetector — the windowed subspace method, the incremental
// covariance-tracking variant, the multiscale wavelet detector, the
// multi-metric voter, the forecast baselines, or the hybrid — so
// heterogeneous backends run side by side in one pool. Every backend is
// non-blocking by contract: detection inside a shard runs against an
// atomically swapped model, so a model refit in one view never stalls
// ingestion in any view. The batched hot path tests a whole bins x
// links block in one matrix pass, which is what makes the engine's
// per-bin cost a fraction of the serial per-vector loop.
//
// The engine is load-safe: per-view queues are bounded (Config.MaxPending)
// with a selectable overload policy — block the producer, drop the
// oldest queued batch, or fail the ingest — so a DoS-style burst on one
// view cannot balloon memory while other shards idle. The worker pool
// can autoscale between AutoscaleConfig.MinWorkers and MaxWorkers from
// EW-smoothed queue depth and batch latency, with hysteresis on
// scale-down; per-view FIFO survives every resize because a shard is
// only ever owned by one worker at a time regardless of pool size.
//
// The Monitor is the scale-out layer the ROADMAP's "first-level online
// monitor" needs; for a single stream with no fan-out requirements, a
// core.ViewDetector alone is simpler.
package engine

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
	"netanomaly/internal/netmeas"
)

// ErrOverloaded is returned (wrapped, with the view name) by Ingest and
// IngestStream when a view's queue is full and the monitor runs the
// OverloadError policy. Test for it with errors.Is.
var ErrOverloaded = errors.New("view queue full")

// OverloadPolicy selects what Ingest does with a new batch when a
// view's queue already holds Config.MaxPending bins.
type OverloadPolicy int

const (
	// OverloadBlock (the default) blocks the ingesting goroutine until
	// workers drain enough queued bins — classic backpressure: a
	// too-fast producer is slowed to the service rate, and nothing is
	// lost. With IngestStream the blocking propagates to the
	// measurement channel, and from there to the collector feeding it.
	OverloadBlock OverloadPolicy = iota
	// OverloadDropOldest evicts the oldest queued batches until the new
	// one fits, preferring fresh data under sustained overload — the
	// right policy for live monitoring, where a stale bin's alarm is
	// worth less than keeping up with the present. Dropped bins are
	// never processed and raise no alarms, but they keep their place in
	// the stream's numbering: every queued chunk is tagged with the
	// stream offset of its first accepted bin, and alarm Seq/Bin are
	// rebased to that offset at processing time, so an alarm's Seq is
	// the bin's true position among the bins the view accepted even
	// after drops. Drops are counted in QueueStats.
	OverloadDropOldest
	// OverloadError rejects the batch: Ingest stops enqueueing and
	// returns ErrOverloaded, leaving already-queued work untouched.
	// Chunks of the batch admitted before the queue filled stay
	// queued; the error reports how many bins were rejected. The
	// caller decides whether to retry, shed, or fail.
	OverloadError
)

// String returns the policy's flag-style name.
func (p OverloadPolicy) String() string {
	switch p {
	case OverloadBlock:
		return "block"
	case OverloadDropOldest:
		return "dropoldest"
	case OverloadError:
		return "error"
	default:
		return fmt.Sprintf("OverloadPolicy(%d)", int(p))
	}
}

// ParseOverloadPolicy maps a flag-style name ("block", "dropoldest",
// "error") to its policy.
func ParseOverloadPolicy(s string) (OverloadPolicy, error) {
	switch s {
	case "block", "":
		return OverloadBlock, nil
	case "dropoldest", "drop-oldest":
		return OverloadDropOldest, nil
	case "error":
		return OverloadError, nil
	default:
		return 0, fmt.Errorf("engine: unknown overload policy %q (want block, dropoldest, or error)", s)
	}
}

// AutoscaleConfig makes the worker pool elastic: the pool grows toward
// MaxWorkers when the EW-smoothed backlog (queued batches) or the
// estimated drain time (backlog x smoothed batch latency per worker)
// says the current pool cannot keep up, and shrinks toward MinWorkers
// only after ScaleDownAfter consecutive calm evaluations — hysteresis,
// so a brief lull between bursts does not tear the pool down just to
// rebuild it. Zero-valued fields take the documented defaults.
type AutoscaleConfig struct {
	// MinWorkers is the floor the pool never shrinks below (default 1).
	MinWorkers int
	// MaxWorkers is the ceiling the pool never grows above (default
	// GOMAXPROCS).
	MaxWorkers int
	// Interval is the evaluation cadence (default 50ms). It doubles as
	// the drain-time target: the pool grows while clearing the smoothed
	// backlog at the observed batch latency would take longer than one
	// interval.
	Interval time.Duration
	// ScaleUpBacklog is the smoothed queued-batch count per worker above
	// which the pool grows (default 1.5).
	ScaleUpBacklog float64
	// ScaleDownBacklog is the smoothed queued-batch count per worker
	// below which an evaluation counts as calm (default 0.25).
	ScaleDownBacklog float64
	// ScaleDownAfter is how many consecutive calm evaluations precede a
	// one-worker shrink (default 5).
	ScaleDownAfter int
	// Smoothing is the EW factor applied to backlog and latency samples
	// in (0, 1]; larger reacts faster (default 0.5).
	Smoothing float64
}

func (a *AutoscaleConfig) fillDefaults() {
	if a.MinWorkers <= 0 {
		a.MinWorkers = 1
	}
	if a.MaxWorkers <= 0 {
		a.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if a.MaxWorkers < a.MinWorkers {
		a.MaxWorkers = a.MinWorkers
	}
	if a.Interval <= 0 {
		a.Interval = 50 * time.Millisecond
	}
	if a.ScaleUpBacklog <= 0 {
		a.ScaleUpBacklog = 1.5
	}
	if a.ScaleDownBacklog <= 0 {
		a.ScaleDownBacklog = 0.25
	}
	if a.ScaleDownAfter <= 0 {
		a.ScaleDownAfter = 5
	}
	if a.Smoothing <= 0 || a.Smoothing > 1 {
		a.Smoothing = 0.5
	}
}

// Config parameterizes a Monitor. The zero value is usable: defaults are
// filled in by NewMonitor.
type Config struct {
	// Workers is the size of the processing pool; default GOMAXPROCS.
	// With Autoscale set it is the initial size, clamped into
	// [MinWorkers, MaxWorkers] (default MinWorkers).
	Workers int
	// BatchSize is the number of bins per dispatched job: Ingest splits
	// larger batches into BatchSize chunks so one bulky view cannot
	// monopolize the pool. Default 64.
	BatchSize int
	// MaxPending bounds each view's queue of unprocessed bins; 0 means
	// unbounded (the pre-backpressure behavior). When a new chunk would
	// push a view past the bound, the Overload policy decides what
	// happens. A chunk larger than MaxPending is admitted alone into an
	// empty queue, so MaxPending < BatchSize degrades to
	// one-chunk-at-a-time rather than wedging. A view's memory is
	// bounded by MaxPending queued bins plus one chunk in flight.
	MaxPending int
	// Overload selects the full-queue behavior; default OverloadBlock.
	Overload OverloadPolicy
	// Autoscale, when non-nil, makes the worker pool elastic; nil keeps
	// the fixed Workers-sized pool.
	Autoscale *AutoscaleConfig
	// Window is the per-shard sliding window, in bins (the paper fits on
	// 1008); 0 uses each view's full seeding history.
	Window int
	// RefitEvery triggers a background model refit in a shard after this
	// many processed bins; 0 disables automatic refits.
	RefitEvery int
	// Options configure each shard's diagnoser.
	Options core.Options
	// OnAlarm, when set, is invoked for every raised alarm, possibly
	// concurrently from multiple workers. When nil, alarms accumulate
	// internally and are retrieved with TakeAlarms.
	OnAlarm func(Alarm)

	// now is the clock batch latencies and the autoscaler run on;
	// injectable so the load tests are deterministic. Defaults to
	// time.Now.
	now func() time.Time
	// disableAutoscaleLoop keeps the background evaluation goroutine
	// from starting so a test can drive autoscaleTick by hand — the
	// tick's state (ewBacklog, ewLatency, calmTicks) is confined to a
	// single driver, and that driver must not be two goroutines.
	disableAutoscaleLoop bool
}

func (c *Config) fillDefaults() {
	if c.Autoscale != nil {
		a := *c.Autoscale // copy: never mutate the caller's struct
		a.fillDefaults()
		c.Autoscale = &a
		if c.Workers <= 0 {
			c.Workers = a.MinWorkers
		}
		if c.Workers < a.MinWorkers {
			c.Workers = a.MinWorkers
		}
		if c.Workers > a.MaxWorkers {
			c.Workers = a.MaxWorkers
		}
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.MaxPending < 0 {
		c.MaxPending = 0
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// Alarm is a diagnosed anomaly tagged with the view that raised it. Seq
// is the per-view measurement sequence number assigned at processing
// time.
type Alarm struct {
	View string
	core.Alarm
}

// ViewLimits overrides the monitor-wide queue bound and overload policy
// for one view, so a latency-critical view can shed load while an
// archival view on the same monitor applies backpressure. The zero
// value inherits both Config values.
type ViewLimits struct {
	// MaxPending bounds this view's queue of unprocessed bins: 0
	// inherits Config.MaxPending, a negative value makes the view
	// explicitly unbounded, and a positive value is the bound (same
	// semantics as Config.MaxPending otherwise).
	MaxPending int
	// Overload selects this view's full-queue behavior; nil inherits
	// Config.Overload.
	Overload *OverloadPolicy
}

// QueueStats is one view's ingest-queue accounting. At quiescence (after
// Flush or Close) the counters reconcile with the detector:
// EnqueuedBins - DroppedBins == ViewStats.Processed + QueuedBins, and
// bins rejected by OverloadError were never enqueued at all.
type QueueStats struct {
	// QueuedBins / QueuedBatches are the work currently waiting (a chunk
	// handed to the detector has already left the queue).
	QueuedBins    int
	QueuedBatches int
	// DepthHighWater is the most bins the queue has ever held at once —
	// how close the view came to its MaxPending bound.
	DepthHighWater int
	// EnqueuedBins counts every bin accepted into the queue.
	EnqueuedBins int64
	// DroppedBins / DroppedBatches count work evicted by
	// OverloadDropOldest.
	DroppedBins    int64
	DroppedBatches int64
	// RejectedBins counts bins refused by OverloadError.
	RejectedBins int64
}

// Stats is a point-in-time snapshot of the monitor's load state: pool
// size, its high-water mark, and the queue counters summed over views.
type Stats struct {
	// Workers is the current pool size; WorkersHighWater the largest
	// size the pool has reached (equal when autoscaling is off).
	Workers          int
	WorkersHighWater int
	// Queue counters aggregated across every view; see QueueStats.
	QueuedBins     int
	QueuedBatches  int
	EnqueuedBins   int64
	DroppedBins    int64
	DroppedBatches int64
	RejectedBins   int64
}

// releaser is the slice of the pooled-buffer contract the queue needs:
// whoever consumes or evicts a queued chunk backed by a recycled buffer
// returns the buffer with exactly one Release call.
type releaser interface{ Release() }

// queued is one admitted chunk: its bins, the stream offset of its
// first bin among everything the view has accepted (drops included),
// and the pooled buffer to release once the chunk is processed or
// evicted (nil for caller-owned batches).
type queued struct {
	m    *mat.Dense
	base int64
	rel  releaser
}

// shard is one view's detector, its FIFO of queued batches, and its
// deferred-error log. A shard's batches are processed strictly in queue
// order by whichever worker owns the shard at the moment, so per-view
// sequence numbers always match arrival order; parallelism comes from
// different shards running on different workers. Pool resizes never
// touch this invariant: ownership, not worker identity, serializes a
// shard.
type shard struct {
	name  string
	links int
	det   core.ViewDetector

	// maxPending / overload are the view's resolved queue bound and
	// full-queue policy — the monitor-wide Config values unless the view
	// was registered with overriding ViewLimits. Fixed at registration,
	// so the hot path reads them without a lock.
	maxPending int
	overload   OverloadPolicy

	// poolMu guards pools, the shard's cached FrameBatch pools keyed by
	// batch capacity. IngestBinary looks one up once per stream, so
	// reconnecting collectors recycle warm buffers instead of growing a
	// fresh pool per connection.
	poolMu sync.Mutex
	pools  map[int]*netmeas.FrameBatchPool

	// procMu serializes detector ProcessBatch calls between the owning
	// worker and synchronous Monitor.ProcessBatch, upholding the
	// one-ProcessBatch-caller-at-a-time guarantee the ViewDetector
	// contract promises backends even when a user mixes Ingest and
	// ProcessBatch on one view.
	procMu sync.Mutex

	qmu             sync.Mutex
	space           *sync.Cond // signaled when queued bins shrink; Block-policy waiters sleep here
	queue           []queued
	queuedBins      int
	queuedHighWater int  // most bins ever simultaneously queued
	owned           bool // a worker currently holds this shard

	enqueuedBins   int64
	droppedBins    int64
	droppedBatches int64
	rejectedBins   int64

	errMu sync.Mutex
	errs  []error
}

// batchPool returns the shard's FrameBatch pool for the capacity,
// creating it on first use.
func (s *shard) batchPool(bins int) *netmeas.FrameBatchPool {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	p, ok := s.pools[bins]
	if !ok {
		p = netmeas.NewFrameBatchPool(bins, s.links)
		if s.pools == nil {
			s.pools = make(map[int]*netmeas.FrameBatchPool, 1)
		}
		s.pools[bins] = p
	}
	return p
}

func (s *shard) recordErr(err error) {
	s.errMu.Lock()
	s.errs = append(s.errs, fmt.Errorf("engine: view %q: %w", s.name, err))
	s.errMu.Unlock()
}

// Monitor is a sharded, batched streaming detection engine. Create one
// with NewMonitor, register views with AddView, feed measurement batches
// with Ingest (asynchronous) or ProcessBatch (synchronous), and stop it
// with Close.
type Monitor struct {
	cfg Config

	// ingestMu holds Ingest's closed-check and enqueue together: Ingest
	// runs under the read side, Close flips the closed flag under the
	// write side, so a batch is either fully enqueued before Close
	// starts draining (and is therefore processed — no lost alarms) or
	// fails cleanly with a closed error. This is what makes Close safe
	// to call concurrently with Ingest and IngestStream.
	ingestMu sync.RWMutex

	mu     sync.Mutex
	shards map[string]*shard
	closed bool

	// ready holds shards with queued work that no worker owns yet;
	// workers round-robin over it (one batch per turn) so a busy view
	// cannot starve the others. The same mutex guards the pool-size
	// state (live/target/high-water): workers consult it between
	// batches, which is how a shrink takes effect.
	dispatchMu       sync.Mutex
	dispatch         *sync.Cond
	ready            []*shard
	stopping         bool
	liveWorkers      int
	targetWorkers    int
	workersHighWater int

	workers sync.WaitGroup

	// pending counts queued-but-unprocessed batches. A mutex+cond pair
	// rather than a WaitGroup: Ingest may add while Flush waits, which
	// the WaitGroup contract forbids (Add on a zero counter concurrent
	// with Wait) but a cond handles naturally.
	pendMu   sync.Mutex
	pendCond *sync.Cond
	pendN    int

	// Batch-latency window the autoscaler drains each evaluation;
	// written by workers only when autoscaling is on.
	latMu  sync.Mutex
	latSum time.Duration
	latN   int

	// Autoscaler state, written only by the evaluation goroutine (or a
	// test driving autoscaleTick directly — never both). asMu makes the
	// writes visible to Checkpoint, the one reader outside the loop.
	asMu      sync.Mutex
	ewBacklog float64
	ewLatency float64 // ns per batch
	calmTicks int

	autoscaleStop chan struct{}
	autoscaleDone chan struct{}

	alarmMu sync.Mutex
	alarms  []Alarm
}

func (m *Monitor) addPending(n int) {
	m.pendMu.Lock()
	m.pendN += n
	m.pendMu.Unlock()
}

func (m *Monitor) donePending() {
	m.pendMu.Lock()
	m.pendN--
	if m.pendN == 0 {
		m.pendCond.Broadcast()
	}
	m.pendMu.Unlock()
}

func (m *Monitor) waitPending() {
	m.pendMu.Lock()
	for m.pendN > 0 {
		m.pendCond.Wait()
	}
	m.pendMu.Unlock()
}

// Config returns the monitor's effective configuration (defaults filled
// in), so backend factories outside this package can seed detectors
// with the same window, refit cadence and diagnosis options the default
// subspace shards get.
func (m *Monitor) Config() Config { return m.cfg }

// NewMonitor starts the worker pool and returns an empty Monitor.
func NewMonitor(cfg Config) *Monitor { return newMonitor(cfg, true) }

// newMonitor builds the monitor; startLoop false defers starting the
// autoscaler's evaluation goroutine so a restore path can seed its
// smoothed state (ewBacklog, ewLatency) first — once the loop runs,
// that state belongs to it alone.
func newMonitor(cfg Config, startLoop bool) *Monitor {
	cfg.fillDefaults()
	m := &Monitor{
		cfg:    cfg,
		shards: make(map[string]*shard),
	}
	m.dispatch = sync.NewCond(&m.dispatchMu)
	m.pendCond = sync.NewCond(&m.pendMu)
	m.dispatchMu.Lock()
	m.resizePoolLocked(cfg.Workers)
	m.dispatchMu.Unlock()
	if startLoop {
		m.startAutoscale()
	}
	return m
}

// startAutoscale launches the autoscaler's evaluation goroutine when
// the configuration asks for one. Called exactly once per monitor.
func (m *Monitor) startAutoscale() {
	if m.cfg.Autoscale != nil && !m.cfg.disableAutoscaleLoop {
		m.autoscaleStop = make(chan struct{})
		m.autoscaleDone = make(chan struct{})
		go m.autoscaleLoop()
	}
}

// resizePoolLocked sets the target pool size, spawning workers up to it
// and waking idle ones so excess workers notice and exit. dispatchMu
// must be held. Shrinking never interrupts a batch in progress: a
// worker re-checks the target only between batches, and shard FIFO is
// carried by shard ownership, not by which worker runs it.
func (m *Monitor) resizePoolLocked(n int) {
	m.targetWorkers = n
	for m.liveWorkers < n {
		m.liveWorkers++
		if m.liveWorkers > m.workersHighWater {
			m.workersHighWater = m.liveWorkers
		}
		m.workers.Add(1)
		go m.worker()
	}
	if m.liveWorkers > n {
		m.dispatch.Broadcast()
	}
}

func (m *Monitor) worker() {
	defer m.workers.Done()
	for {
		m.dispatchMu.Lock()
		for {
			if m.stopping && len(m.ready) == 0 {
				m.liveWorkers--
				m.dispatchMu.Unlock()
				return
			}
			if !m.stopping && m.liveWorkers > m.targetWorkers {
				// Scaled down: bow out between batches. Remaining
				// ready work is picked up by the surviving workers.
				m.liveWorkers--
				m.dispatchMu.Unlock()
				return
			}
			if len(m.ready) > 0 {
				break
			}
			m.dispatch.Wait()
		}
		s := m.ready[0]
		// Compact instead of advancing the slice header: the dispatch
		// list is short (at most one entry per shard), and keeping the
		// slice anchored at the front of its backing array lets
		// readyShard's append reuse it indefinitely — an advancing
		// header forces a fresh allocation every time append runs off
		// the array's end.
		n := copy(m.ready, m.ready[1:])
		m.ready[n] = nil
		m.ready = m.ready[:n]
		m.dispatchMu.Unlock()

		s.qmu.Lock()
		if len(s.queue) == 0 {
			s.owned = false
			// Ownership released with nothing queued: wake quiesce
			// waiters (CheckpointView) along with Block producers.
			s.space.Broadcast()
			s.qmu.Unlock()
			continue
		}
		batch := s.queue[0]
		// Compact and zero the vacated tail slot: zeroing keeps the
		// processed batch unreachable (the per-view memory bound), and
		// compacting keeps the slice anchored at the front of its
		// backing array so enqueue's append reuses it instead of
		// reallocating — this pop runs once per batch on the hot path,
		// and the queue is at most MaxPending/BatchSize entries, so the
		// copy is a few words.
		qn := copy(s.queue, s.queue[1:])
		s.queue[qn] = queued{}
		s.queue = s.queue[:qn]
		s.queuedBins -= batch.m.Rows()
		// Space opened up: wake Block-policy producers.
		s.space.Broadcast()
		s.qmu.Unlock()

		measure := m.cfg.Autoscale != nil
		var start time.Time
		if measure {
			start = m.cfg.now()
		}
		s.procMu.Lock()
		processedBefore := s.det.Stats().Processed
		alarms, err := s.det.ProcessBatch(batch.m)
		s.procMu.Unlock()
		if batch.rel != nil {
			batch.rel.Release()
		}
		if measure {
			elapsed := m.cfg.now().Sub(start)
			m.latMu.Lock()
			m.latSum += elapsed
			m.latN++
			m.latMu.Unlock()
		}
		if err != nil {
			s.recordErr(err)
		}
		// Rebase alarm numbering onto the ingest stream: the detector
		// numbers only the bins it saw, so after DropOldest evictions
		// its Seq undercounts the true stream offset by the bins
		// dropped so far. The chunk's tagged base restores them.
		if delta := int(batch.base) - processedBefore; delta > 0 {
			for i := range alarms {
				alarms[i].Seq += delta
				alarms[i].Bin += delta
			}
		}
		for _, a := range alarms {
			m.emit(Alarm{View: s.name, Alarm: a})
		}

		// Hand the shard back: re-ready it if more batches arrived,
		// otherwise release ownership so the next Ingest re-readies it.
		s.qmu.Lock()
		more := len(s.queue) > 0
		if !more {
			s.owned = false
			// The shard went idle: wake quiesce waiters (CheckpointView).
			s.space.Broadcast()
		}
		s.qmu.Unlock()
		if more {
			m.readyShard(s)
		}
		m.donePending()
	}
}

// readyShard puts an owned shard (back) on the dispatch list and wakes a
// worker.
func (m *Monitor) readyShard(s *shard) {
	m.dispatchMu.Lock()
	m.ready = append(m.ready, s)
	m.dispatch.Signal()
	m.dispatchMu.Unlock()
}

func (m *Monitor) emit(a Alarm) {
	if m.cfg.OnAlarm != nil {
		m.cfg.OnAlarm(a)
		return
	}
	m.alarmMu.Lock()
	m.alarms = append(m.alarms, a)
	m.alarmMu.Unlock()
}

// AddView registers a subspace detector shard — the default backend.
// history (bins x links) seeds the model and sliding window; routing
// (links x flows) drives identification. Views can be added while the
// monitor is running. For a different backend, construct any
// core.ViewDetector and register it with AddDetectorView.
func (m *Monitor) AddView(name string, history, routing *mat.Dense) error {
	return m.AddViewLimits(name, history, routing, ViewLimits{})
}

// AddViewLimits is AddView with per-view queue limits overriding the
// monitor-wide Config values.
func (m *Monitor) AddViewLimits(name string, history, routing *mat.Dense, lim ViewLimits) error {
	window := m.cfg.Window
	if window <= 0 {
		window = history.Rows()
	}
	det, err := core.NewOnlineDetector(history, routing, core.OnlineConfig{
		Window:     window,
		RefitEvery: m.cfg.RefitEvery,
		Options:    m.cfg.Options,
	})
	if err != nil {
		return fmt.Errorf("engine: view %q: %w", name, err)
	}
	return m.AddDetectorViewLimits(name, det, lim)
}

// AddDetectorView registers a shard running an arbitrary streaming
// backend — every detector kind in the family satisfies
// core.ViewDetector, and one Monitor can mix them freely. The detector
// must already be seeded; its Stats().Links fixes the batch width the
// view accepts.
func (m *Monitor) AddDetectorView(name string, det core.ViewDetector) error {
	return m.AddDetectorViewLimits(name, det, ViewLimits{})
}

// AddDetectorViewLimits is AddDetectorView with per-view queue limits
// overriding the monitor-wide Config values (see ViewLimits).
func (m *Monitor) AddDetectorViewLimits(name string, det core.ViewDetector, lim ViewLimits) error {
	links := det.Stats().Links
	if links <= 0 {
		return fmt.Errorf("engine: view %q: detector reports %d links", name, links)
	}
	maxPending := m.cfg.MaxPending
	switch {
	case lim.MaxPending > 0:
		maxPending = lim.MaxPending
	case lim.MaxPending < 0:
		maxPending = 0
	}
	overload := m.cfg.Overload
	if lim.Overload != nil {
		overload = *lim.Overload
		if overload < OverloadBlock || overload > OverloadError {
			return fmt.Errorf("engine: view %q: unknown overload policy %d", name, overload)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("engine: monitor is closed")
	}
	if _, dup := m.shards[name]; dup {
		return fmt.Errorf("engine: duplicate view %q", name)
	}
	s := &shard{name: name, links: links, det: det, maxPending: maxPending, overload: overload}
	s.space = sync.NewCond(&s.qmu)
	m.shards[name] = s
	return nil
}

// Ingest queues a measurement batch (bins x links) for the view,
// splitting it into BatchSize chunks, and returns without waiting for
// processing. Chunks of one view are processed strictly in ingest order
// (sequence numbers match arrival order); chunks of different views run
// concurrently across the worker pool. The batch's rows are copied into
// the window as they are processed; the caller must not mutate the batch
// until Flush (or Close) returns.
//
// When MaxPending bounds the view's queue, a full queue engages the
// Overload policy per chunk: OverloadBlock waits for workers to drain
// space (backpressure), OverloadDropOldest evicts the oldest queued
// chunks to make room, and OverloadError returns ErrOverloaded without
// queueing the remaining chunks. Once Ingest has accepted a view (the
// monitor was open at entry), a concurrent Close waits for the call to
// finish and then drains everything it enqueued.
//
// With no bound a call's chunks are appended atomically, so concurrent
// Ingest calls to one view never interleave each other's chunks. With a
// bound, admission is necessarily per chunk (Block must release the
// queue while it waits), so two concurrent calls to the same view may
// interleave at chunk granularity — run one producer per view (the
// IngestStream pattern) when cross-call ordering matters.
func (m *Monitor) Ingest(view string, batch *mat.Dense) error {
	m.ingestMu.RLock()
	defer m.ingestMu.RUnlock()
	s, err := m.lookup(view)
	if err != nil {
		return err
	}
	bins, cols := batch.Dims()
	if cols != s.links {
		return fmt.Errorf("engine: view %q: batch has %d links, want %d", view, cols, s.links)
	}
	data := batch.RawData()
	var chunks []*mat.Dense
	for r0 := 0; r0 < bins; r0 += m.cfg.BatchSize {
		r1 := r0 + m.cfg.BatchSize
		if r1 > bins {
			r1 = bins
		}
		chunks = append(chunks, mat.NewDense(r1-r0, cols, data[r0*cols:r1*cols]))
	}
	if len(chunks) == 0 {
		return nil
	}
	if s.maxPending <= 0 {
		m.addPending(len(chunks))
		s.qmu.Lock()
		base := s.enqueuedBins
		for _, c := range chunks {
			s.queue = append(s.queue, queued{m: c, base: base})
			base += int64(c.Rows())
		}
		s.queuedBins += bins
		if s.queuedBins > s.queuedHighWater {
			s.queuedHighWater = s.queuedBins
		}
		s.enqueuedBins += int64(bins)
		wake := !s.owned
		if wake {
			s.owned = true
		}
		s.qmu.Unlock()
		if wake {
			m.readyShard(s)
		}
		return nil
	}
	for ci, chunk := range chunks {
		if err := m.enqueue(s, chunk, nil); err != nil {
			rejected := bins - ci*m.cfg.BatchSize
			s.qmu.Lock()
			s.rejectedBins += int64(rejected)
			s.qmu.Unlock()
			return fmt.Errorf("engine: view %q: %d of %d bins rejected: %w", view, rejected, bins, err)
		}
	}
	return nil
}

// enqueue admits one chunk to the shard's queue under the overload
// policy and wakes a worker. A chunk is admitted when it fits under
// MaxPending or the queue is empty (so an oversized chunk passes alone
// instead of wedging). rel, when non-nil, is the pooled buffer backing
// the chunk; ownership transfers to the queue on success (released by
// the worker after processing, or here on eviction).
func (m *Monitor) enqueue(s *shard, chunk *mat.Dense, rel releaser) error {
	chunkBins := chunk.Rows()
	m.addPending(1)
	s.qmu.Lock()
	if max := s.maxPending; max > 0 {
		switch s.overload {
		case OverloadBlock:
			for s.queuedBins > 0 && s.queuedBins+chunkBins > max {
				s.space.Wait()
			}
		case OverloadDropOldest:
			for len(s.queue) > 0 && s.queuedBins+chunkBins > max {
				old := s.queue[0]
				// Compact like the worker's pop: zero the vacated tail
				// slot so the evicted batch is collectable, keep the
				// array anchored for allocation-free re-append.
				nq := copy(s.queue, s.queue[1:])
				s.queue[nq] = queued{}
				s.queue = s.queue[:nq]
				s.queuedBins -= old.m.Rows()
				s.droppedBins += int64(old.m.Rows())
				s.droppedBatches++
				if old.rel != nil {
					old.rel.Release()
				}
				m.donePending()
			}
		case OverloadError:
			if s.queuedBins > 0 && s.queuedBins+chunkBins > max {
				s.qmu.Unlock()
				m.donePending()
				return ErrOverloaded
			}
		}
	}
	s.queue = append(s.queue, queued{m: chunk, base: s.enqueuedBins, rel: rel})
	s.queuedBins += chunkBins
	if s.queuedBins > s.queuedHighWater {
		s.queuedHighWater = s.queuedBins
	}
	s.enqueuedBins += int64(chunkBins)
	wake := !s.owned
	if wake {
		s.owned = true
	}
	s.qmu.Unlock()
	if wake {
		m.readyShard(s)
	}
	return nil
}

// IngestStream consumes a live measurement channel (as produced by
// netmeas.Stream) and feeds the view until the channel closes,
// accumulating arrivals into BatchSize blocks so the batched hot path
// stays hot even for bin-at-a-time sources. It blocks the calling
// goroutine for the life of the stream — run one IngestStream goroutine
// per source — and returns after the final partial batch is queued, or
// on the first error (mis-sized measurement, monitor closed, a full
// queue under OverloadError); on error the caller should cancel the
// context driving the stream so the producer goroutine does not block
// forever on an undrained channel. Under OverloadBlock a full queue
// stalls the channel reads instead — bounded backpressure all the way
// to the collector. Like Ingest, it queues work asynchronously: call
// Flush to wait for processing.
func (m *Monitor) IngestStream(view string, ch <-chan netmeas.LinkMeasurement) error {
	m.ingestMu.RLock()
	s, err := m.lookup(view)
	m.ingestMu.RUnlock()
	if err != nil {
		return err
	}
	batch := m.cfg.BatchSize
	buf := mat.Zeros(batch, s.links)
	rows := 0
	flush := func() error {
		if rows == 0 {
			return nil
		}
		chunk := mat.NewDense(rows, s.links, buf.RawData()[:rows*s.links])
		rows = 0
		// The queue aliases ingested batches until processed, so each
		// flushed chunk needs its own backing array.
		buf = mat.Zeros(batch, s.links)
		return m.Ingest(view, chunk)
	}
	for meas := range ch {
		if len(meas.Loads) != s.links {
			err := fmt.Errorf("engine: view %q: stream measurement has %d links, want %d", view, len(meas.Loads), s.links)
			if ferr := flush(); ferr != nil {
				// Both failures matter: the mis-sized measurement is the
				// root cause the caller must fix, the flush failure says
				// the buffered bins before it were lost too.
				return errors.Join(err, ferr)
			}
			return err
		}
		buf.SetRow(rows, meas.Loads)
		rows++
		if rows == batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// IngestBinary feeds a whole binary measurement stream (as framed by
// netmeas.WriteMatrixBinary / cmd/trafficgen -format=binary) into the
// view, decoding directly into pooled batch buffers: at steady state
// the hot loop performs no per-bin heap allocation — buffers cycle
// between the decoder and the consuming shard through a sync.Pool. It
// blocks for the life of the stream (run one goroutine per source,
// like IngestStream) and returns after the final partial batch is
// queued, on the first decode error, or when the monitor is closed
// mid-stream. Like Ingest, it queues work asynchronously: call Flush
// to wait for processing.
func (m *Monitor) IngestBinary(view string, dec *netmeas.BinaryDecoder) error {
	m.ingestMu.RLock()
	s, err := m.lookup(view)
	m.ingestMu.RUnlock()
	if err != nil {
		return err
	}
	if dec.Links() != s.links {
		return fmt.Errorf("engine: view %q: binary stream has %d links, want %d", view, dec.Links(), s.links)
	}
	// Size the batches so a whole v2 batch frame decodes straight into
	// one pooled buffer, and cache the pool on the shard: a per-stream
	// pool would cost a fresh warm-up of buffer allocations on every
	// collector reconnect (the residual allocs/bin PR 6 measured).
	bins := m.cfg.BatchSize
	if b := dec.BatchBins(); b > bins {
		bins = b
	}
	return m.ingestBinaryPooled(s, dec, s.batchPool(bins))
}

// ingestBinaryPooled is IngestBinary's loop with an injectable pool so
// lifecycle tests can count Get/Release pairs. Buffer ownership is
// release-exactly-once: a batch admitted to the queue is released by
// the worker that processes it or by the DropOldest eviction path; a
// batch that never makes it into the queue (decode returned no rows,
// admission failed, monitor closed) is released here.
func (m *Monitor) ingestBinaryPooled(s *shard, dec *netmeas.BinaryDecoder, pool *netmeas.FrameBatchPool) error {
	for {
		fb := pool.Get()
		rows, derr := dec.ReadBatch(fb)
		if rows == 0 {
			fb.Release()
			if derr == nil || derr == io.EOF {
				return nil
			}
			return fmt.Errorf("engine: view %q: %w", s.name, derr)
		}
		chunk := fb.Rows(rows)
		// Re-check closed per chunk under ingestMu, mirroring the
		// Ingest-per-flush pattern of IngestStream: a batch is either
		// fully enqueued before Close starts draining or refused here.
		m.ingestMu.RLock()
		m.mu.Lock()
		closed := m.closed
		m.mu.Unlock()
		var qerr error
		if closed {
			qerr = errors.New("monitor is closed")
		} else {
			qerr = m.enqueue(s, chunk, fb)
		}
		m.ingestMu.RUnlock()
		if qerr != nil {
			fb.Release()
			return fmt.Errorf("engine: view %q: %w", s.name, qerr)
		}
		if derr != nil {
			if derr == io.EOF {
				return nil
			}
			return fmt.Errorf("engine: view %q: %w", s.name, derr)
		}
	}
}

// ProcessBatch runs a batch through the view's shard synchronously on
// the caller's goroutine (bypassing the queue and its MaxPending bound —
// it may jump ahead of batches still queued by Ingest, though it never
// interleaves with them mid-batch) and returns the raised alarms, which
// are also delivered to OnAlarm/TakeAlarms. The batch's alarms are
// returned even when err is non-nil: the detector reports deferred
// background-refit failures alongside valid detections, and dropping
// the detections would lose real anomalies.
func (m *Monitor) ProcessBatch(view string, batch *mat.Dense) ([]Alarm, error) {
	s, err := m.lookup(view)
	if err != nil {
		return nil, err
	}
	s.procMu.Lock()
	raw, err := s.det.ProcessBatch(batch)
	s.procMu.Unlock()
	out := make([]Alarm, len(raw))
	for i, a := range raw {
		out[i] = Alarm{View: view, Alarm: a}
		m.emit(out[i])
	}
	if err != nil {
		err = fmt.Errorf("engine: view %q: %w", view, err)
	}
	return out, err
}

func (m *Monitor) lookup(view string) (*shard, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("engine: monitor is closed")
	}
	s, ok := m.shards[view]
	if !ok {
		return nil, fmt.Errorf("engine: unknown view %q", view)
	}
	return s, nil
}

// lookupAny resolves a view whether or not the monitor is closed — for
// read-only statistics, which remain meaningful (and are often wanted)
// after Close.
func (m *Monitor) lookupAny(view string) (*shard, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.shards[view]
	if !ok {
		return nil, fmt.Errorf("engine: unknown view %q", view)
	}
	return s, nil
}

// snapshotShards returns the current shard set under the monitor lock.
func (m *Monitor) snapshotShards() []*shard {
	m.mu.Lock()
	defer m.mu.Unlock()
	shards := make([]*shard, 0, len(m.shards))
	for _, s := range m.shards {
		shards = append(shards, s)
	}
	return shards
}

// drainRefits waits out every in-flight background refit. It must run
// only after the queued work that could spawn refits has been processed
// (waitPending), so no new fit can start between the per-shard waits.
func (m *Monitor) drainRefits() {
	for _, s := range m.snapshotShards() {
		s.det.WaitRefits()
	}
}

// Flush blocks until every queued batch has been processed and every
// background refit launched so far has completed. Ingest may continue
// from other goroutines, in which case Flush covers at least the work
// queued before the call.
func (m *Monitor) Flush() {
	m.waitPending()
	m.drainRefits()
}

// TakeAlarms returns the alarms accumulated since the last call and
// clears the buffer. Only used when Config.OnAlarm is nil.
func (m *Monitor) TakeAlarms() []Alarm {
	m.alarmMu.Lock()
	out := m.alarms
	m.alarms = nil
	m.alarmMu.Unlock()
	return out
}

// Errs returns every deferred error recorded so far (failed background
// refits, mis-sized batches discovered at processing time), oldest
// first. It also harvests any refit failure still parked inside a
// detector — e.g. one triggered by the final batch, which no later
// Process call would ever surface — so call it after Flush or Close to
// get the complete picture.
func (m *Monitor) Errs() []error {
	var out []error
	for _, s := range m.snapshotShards() {
		if err := s.det.TakeRefitError(); err != nil {
			s.recordErr(err)
		}
		s.errMu.Lock()
		out = append(out, s.errs...)
		s.errMu.Unlock()
	}
	return out
}

// Views returns the registered view names, in no particular order.
func (m *Monitor) Views() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.shards))
	for name := range m.shards {
		out = append(out, name)
	}
	return out
}

// Detector returns a view's underlying streaming detector (for
// inspecting processed counts, triggering explicit refits, or
// type-asserting to a concrete backend for model access).
func (m *Monitor) Detector(view string) (core.ViewDetector, error) {
	s, err := m.lookup(view)
	if err != nil {
		return nil, err
	}
	return s.det, nil
}

// ViewStats reports a view's backend kind, processed-bin count, model
// rank and completed refits. It keeps working after Close, so
// post-shutdown accounting can reconcile against QueueStats.
func (m *Monitor) ViewStats(view string) (core.ViewStats, error) {
	s, err := m.lookupAny(view)
	if err != nil {
		return core.ViewStats{}, err
	}
	return s.det.Stats(), nil
}

// QueueStats reports a view's ingest-queue accounting: current depth,
// total accepted bins, and the bins lost to the overload policy. It
// keeps working after Close.
func (m *Monitor) QueueStats(view string) (QueueStats, error) {
	s, err := m.lookupAny(view)
	if err != nil {
		return QueueStats{}, err
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return QueueStats{
		QueuedBins:     s.queuedBins,
		QueuedBatches:  len(s.queue),
		DepthHighWater: s.queuedHighWater,
		EnqueuedBins:   s.enqueuedBins,
		DroppedBins:    s.droppedBins,
		DroppedBatches: s.droppedBatches,
		RejectedBins:   s.rejectedBins,
	}, nil
}

// Stats reports the monitor's load state: current pool size, the
// high-water mark the autoscaler reached, and queue depth / drop
// counters aggregated across views. It keeps working after Close.
func (m *Monitor) Stats() Stats {
	var st Stats
	for _, s := range m.snapshotShards() {
		s.qmu.Lock()
		st.QueuedBins += s.queuedBins
		st.QueuedBatches += len(s.queue)
		st.EnqueuedBins += s.enqueuedBins
		st.DroppedBins += s.droppedBins
		st.DroppedBatches += s.droppedBatches
		st.RejectedBins += s.rejectedBins
		s.qmu.Unlock()
	}
	m.dispatchMu.Lock()
	st.Workers = m.liveWorkers
	st.WorkersHighWater = m.workersHighWater
	m.dispatchMu.Unlock()
	return st
}

// Close drains the queues, stops the autoscaler and the workers, and
// waits out every in-flight background refit — including one triggered
// by the final batch — so no goroutine outlives Close. A refit that
// fails while Close drains keeps its error parked in the detector; call
// Errs after Close to harvest it (Close cannot deliver it to anyone).
// After Close, Ingest and ProcessBatch fail; statistics accessors keep
// working.
//
// Close is safe to call concurrently with Ingest and IngestStream: a
// racing Ingest either completes before Close begins draining — in
// which case everything it queued is processed and its alarms are
// retrievable afterwards — or fails with a monitor-closed error having
// queued nothing.
func (m *Monitor) Close() {
	m.ingestMu.Lock()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.ingestMu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.ingestMu.Unlock()
	m.waitPending()
	if m.autoscaleStop != nil {
		close(m.autoscaleStop)
		<-m.autoscaleDone
	}
	m.dispatchMu.Lock()
	m.stopping = true
	m.dispatch.Broadcast()
	m.dispatchMu.Unlock()
	m.workers.Wait()
	m.drainRefits()
}
