// Package engine runs the subspace method as a concurrent streaming
// detection service. A Monitor owns one detector shard per traffic view
// (a topology, a vantage point, a customer network — anything with its
// own routing matrix and measurement stream) and fans measurement
// batches across a fixed worker pool. Each shard is a non-blocking
// core.OnlineDetector: detection inside a shard runs against an
// atomically swapped model, so a model refit in one view never stalls
// ingestion in any view. The batched hot path (DiagnoseBatch) tests a
// whole bins x links block in one matrix pass, which is what makes the
// engine's per-bin cost a fraction of the serial per-vector loop.
//
// The Monitor is the scale-out layer the ROADMAP's "first-level online
// monitor" needs; for a single stream with no fan-out requirements,
// core.OnlineDetector alone is simpler.
package engine

import (
	"fmt"
	"runtime"
	"sync"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
)

// Config parameterizes a Monitor. The zero value is usable: defaults are
// filled in by NewMonitor.
type Config struct {
	// Workers is the size of the processing pool; default GOMAXPROCS.
	Workers int
	// BatchSize is the number of bins per dispatched job: Ingest splits
	// larger batches into BatchSize chunks so one bulky view cannot
	// monopolize the pool. Default 64.
	BatchSize int
	// Window is the per-shard sliding window, in bins (the paper fits on
	// 1008); 0 uses each view's full seeding history.
	Window int
	// RefitEvery triggers a background model refit in a shard after this
	// many processed bins; 0 disables automatic refits.
	RefitEvery int
	// Options configure each shard's diagnoser.
	Options core.Options
	// OnAlarm, when set, is invoked for every raised alarm, possibly
	// concurrently from multiple workers. When nil, alarms accumulate
	// internally and are retrieved with TakeAlarms.
	OnAlarm func(Alarm)
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
}

// Alarm is a diagnosed anomaly tagged with the view that raised it. Seq
// is the per-view measurement sequence number assigned at processing
// time.
type Alarm struct {
	View string
	core.Alarm
}

// shard is one view's detector, its FIFO of queued batches, and its
// deferred-error log. A shard's batches are processed strictly in queue
// order by whichever worker owns the shard at the moment, so per-view
// sequence numbers always match arrival order; parallelism comes from
// different shards running on different workers.
type shard struct {
	name  string
	links int
	det   *core.OnlineDetector

	qmu   sync.Mutex
	queue []*mat.Dense
	owned bool // a worker currently holds this shard

	errMu sync.Mutex
	errs  []error
}

func (s *shard) recordErr(err error) {
	s.errMu.Lock()
	s.errs = append(s.errs, fmt.Errorf("engine: view %q: %w", s.name, err))
	s.errMu.Unlock()
}

// Monitor is a sharded, batched streaming detection engine. Create one
// with NewMonitor, register views with AddView, feed measurement batches
// with Ingest (asynchronous) or ProcessBatch (synchronous), and stop it
// with Close.
type Monitor struct {
	cfg Config

	mu     sync.Mutex
	shards map[string]*shard
	closed bool

	// ready holds shards with queued work that no worker owns yet;
	// workers round-robin over it (one batch per turn) so a busy view
	// cannot starve the others.
	dispatchMu sync.Mutex
	dispatch   *sync.Cond
	ready      []*shard
	stopping   bool

	workers sync.WaitGroup

	// pending counts queued-but-unprocessed batches. A mutex+cond pair
	// rather than a WaitGroup: Ingest may add while Flush waits, which
	// the WaitGroup contract forbids (Add on a zero counter concurrent
	// with Wait) but a cond handles naturally.
	pendMu   sync.Mutex
	pendCond *sync.Cond
	pendN    int

	alarmMu sync.Mutex
	alarms  []Alarm
}

func (m *Monitor) addPending(n int) {
	m.pendMu.Lock()
	m.pendN += n
	m.pendMu.Unlock()
}

func (m *Monitor) donePending() {
	m.pendMu.Lock()
	m.pendN--
	if m.pendN == 0 {
		m.pendCond.Broadcast()
	}
	m.pendMu.Unlock()
}

func (m *Monitor) waitPending() {
	m.pendMu.Lock()
	for m.pendN > 0 {
		m.pendCond.Wait()
	}
	m.pendMu.Unlock()
}

// NewMonitor starts the worker pool and returns an empty Monitor.
func NewMonitor(cfg Config) *Monitor {
	cfg.fillDefaults()
	m := &Monitor{
		cfg:    cfg,
		shards: make(map[string]*shard),
	}
	m.dispatch = sync.NewCond(&m.dispatchMu)
	m.pendCond = sync.NewCond(&m.pendMu)
	for w := 0; w < cfg.Workers; w++ {
		m.workers.Add(1)
		go m.worker()
	}
	return m
}

func (m *Monitor) worker() {
	defer m.workers.Done()
	for {
		m.dispatchMu.Lock()
		for len(m.ready) == 0 && !m.stopping {
			m.dispatch.Wait()
		}
		if len(m.ready) == 0 {
			m.dispatchMu.Unlock()
			return
		}
		s := m.ready[0]
		m.ready = m.ready[1:]
		m.dispatchMu.Unlock()

		s.qmu.Lock()
		if len(s.queue) == 0 {
			s.owned = false
			s.qmu.Unlock()
			continue
		}
		batch := s.queue[0]
		s.queue = s.queue[1:]
		s.qmu.Unlock()

		alarms, err := s.det.ProcessBatch(batch)
		if err != nil {
			s.recordErr(err)
		}
		for _, a := range alarms {
			m.emit(Alarm{View: s.name, Alarm: a})
		}

		// Hand the shard back: re-ready it if more batches arrived,
		// otherwise release ownership so the next Ingest re-readies it.
		s.qmu.Lock()
		more := len(s.queue) > 0
		if !more {
			s.owned = false
		}
		s.qmu.Unlock()
		if more {
			m.readyShard(s)
		}
		m.donePending()
	}
}

// readyShard puts an owned shard (back) on the dispatch list and wakes a
// worker.
func (m *Monitor) readyShard(s *shard) {
	m.dispatchMu.Lock()
	m.ready = append(m.ready, s)
	m.dispatch.Signal()
	m.dispatchMu.Unlock()
}

func (m *Monitor) emit(a Alarm) {
	if m.cfg.OnAlarm != nil {
		m.cfg.OnAlarm(a)
		return
	}
	m.alarmMu.Lock()
	m.alarms = append(m.alarms, a)
	m.alarmMu.Unlock()
}

// AddView registers a detector shard. history (bins x links) seeds the
// model and sliding window; routing (links x flows) drives
// identification. Views can be added while the monitor is running.
func (m *Monitor) AddView(name string, history, routing *mat.Dense) error {
	window := m.cfg.Window
	if window <= 0 {
		window = history.Rows()
	}
	det, err := core.NewOnlineDetector(history, routing, core.OnlineConfig{
		Window:     window,
		RefitEvery: m.cfg.RefitEvery,
		Options:    m.cfg.Options,
	})
	if err != nil {
		return fmt.Errorf("engine: view %q: %w", name, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("engine: monitor is closed")
	}
	if _, dup := m.shards[name]; dup {
		return fmt.Errorf("engine: duplicate view %q", name)
	}
	m.shards[name] = &shard{name: name, links: history.Cols(), det: det}
	return nil
}

// Ingest queues a measurement batch (bins x links) for the view,
// splitting it into BatchSize chunks, and returns without waiting for
// processing. Chunks of one view are processed strictly in ingest order
// (sequence numbers match arrival order); chunks of different views run
// concurrently across the worker pool. The batch's rows are copied into
// the window as they are processed; the caller must not mutate the batch
// until Flush (or Close) returns.
func (m *Monitor) Ingest(view string, batch *mat.Dense) error {
	s, err := m.lookup(view)
	if err != nil {
		return err
	}
	bins, cols := batch.Dims()
	if cols != s.links {
		return fmt.Errorf("engine: view %q: batch has %d links, want %d", view, cols, s.links)
	}
	data := batch.RawData()
	var chunks []*mat.Dense
	for r0 := 0; r0 < bins; r0 += m.cfg.BatchSize {
		r1 := r0 + m.cfg.BatchSize
		if r1 > bins {
			r1 = bins
		}
		chunks = append(chunks, mat.NewDense(r1-r0, cols, data[r0*cols:r1*cols]))
	}
	if len(chunks) == 0 {
		return nil
	}
	m.addPending(len(chunks))
	s.qmu.Lock()
	s.queue = append(s.queue, chunks...)
	wake := !s.owned
	if wake {
		s.owned = true
	}
	s.qmu.Unlock()
	if wake {
		m.readyShard(s)
	}
	return nil
}

// ProcessBatch runs a batch through the view's shard synchronously on
// the caller's goroutine (bypassing the queue) and returns the raised
// alarms, which are also delivered to OnAlarm/TakeAlarms. The batch's
// alarms are returned even when err is non-nil: the detector reports
// deferred background-refit failures alongside valid detections, and
// dropping the detections would lose real anomalies.
func (m *Monitor) ProcessBatch(view string, batch *mat.Dense) ([]Alarm, error) {
	s, err := m.lookup(view)
	if err != nil {
		return nil, err
	}
	raw, err := s.det.ProcessBatch(batch)
	out := make([]Alarm, len(raw))
	for i, a := range raw {
		out[i] = Alarm{View: view, Alarm: a}
		m.emit(out[i])
	}
	if err != nil {
		err = fmt.Errorf("engine: view %q: %w", view, err)
	}
	return out, err
}

func (m *Monitor) lookup(view string) (*shard, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("engine: monitor is closed")
	}
	s, ok := m.shards[view]
	if !ok {
		return nil, fmt.Errorf("engine: unknown view %q", view)
	}
	return s, nil
}

// Flush blocks until every queued batch has been processed and every
// background refit launched so far has completed. Ingest may continue
// from other goroutines, in which case Flush covers at least the work
// queued before the call.
func (m *Monitor) Flush() {
	m.waitPending()
	m.mu.Lock()
	shards := make([]*shard, 0, len(m.shards))
	for _, s := range m.shards {
		shards = append(shards, s)
	}
	m.mu.Unlock()
	for _, s := range shards {
		s.det.WaitRefits()
	}
}

// TakeAlarms returns the alarms accumulated since the last call and
// clears the buffer. Only used when Config.OnAlarm is nil.
func (m *Monitor) TakeAlarms() []Alarm {
	m.alarmMu.Lock()
	out := m.alarms
	m.alarms = nil
	m.alarmMu.Unlock()
	return out
}

// Errs returns every deferred error recorded so far (failed background
// refits, mis-sized batches discovered at processing time), oldest
// first. It also harvests any refit failure still parked inside a
// detector — e.g. one triggered by the final batch, which no later
// Process call would ever surface — so call it after Flush or Close to
// get the complete picture.
func (m *Monitor) Errs() []error {
	m.mu.Lock()
	shards := make([]*shard, 0, len(m.shards))
	for _, s := range m.shards {
		shards = append(shards, s)
	}
	m.mu.Unlock()
	var out []error
	for _, s := range shards {
		if err := s.det.TakeRefitError(); err != nil {
			s.recordErr(err)
		}
		s.errMu.Lock()
		out = append(out, s.errs...)
		s.errMu.Unlock()
	}
	return out
}

// Views returns the registered view names, in no particular order.
func (m *Monitor) Views() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.shards))
	for name := range m.shards {
		out = append(out, name)
	}
	return out
}

// Detector returns a view's underlying online detector (for inspecting
// the active model, thresholds, processed counts).
func (m *Monitor) Detector(view string) (*core.OnlineDetector, error) {
	s, err := m.lookup(view)
	if err != nil {
		return nil, err
	}
	return s.det, nil
}

// Close drains the queue, stops the workers, and waits for in-flight
// background refits. After Close, Ingest and ProcessBatch fail. Close
// must not be called concurrently with Ingest: quiesce producers first
// (the closed flag makes later Ingest calls fail cleanly, but a racing
// one could enqueue into a closing pool).
func (m *Monitor) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.waitPending()
	m.dispatchMu.Lock()
	m.stopping = true
	m.dispatch.Broadcast()
	m.dispatchMu.Unlock()
	m.workers.Wait()
	for _, s := range m.shards {
		s.det.WaitRefits()
	}
}
