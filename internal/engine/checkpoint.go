package engine

// Checkpoint/restore: a Monitor's portable state is the per-view
// detector snapshots plus the queue accounting that keeps alarm Seq
// rebasing truthful across a restart. A view checkpoint is one NAMS
// view envelope (kind SnapKindView) wrapping the view's name, link
// count, queue counters, and the detector's own self-framed snapshot; a
// whole-monitor checkpoint (kind SnapKindMonitor) is the view envelopes
// nested in deterministic name order plus the autoscaler's smoothed
// estimates. Restores follow the core taxonomy: corruption wraps
// core.ErrSnapshotFormat, truncation wraps io.ErrUnexpectedEOF, and a
// snapshot offered to a mismatched view (wrong link count) wraps
// core.ErrSnapshotMismatch.

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"netanomaly/internal/core"
)

// quiesceLocked blocks until the shard has no queued work and no worker
// owns it, with s.qmu held on entry and exit. Workers broadcast on
// s.space whenever they release ownership with an empty queue, so the
// wait ends at the first idle instant. A view under sustained ingest
// never goes idle — pause the producer (or Close the monitor) before
// checkpointing a hot view.
func (s *shard) quiesceLocked() {
	for s.owned || s.queuedBins > 0 {
		s.space.Wait()
	}
}

// checkpointShard serializes one quiesced shard as a view envelope. It
// holds the queue lock for the duration (new ingests wait) and the
// processing lock (synchronous ProcessBatch callers wait), so the
// detector state and the queue counters are captured at one consistent
// instant; the detector's own Snapshot additionally waits out any
// in-flight background refit through its refit gate.
func (m *Monitor) checkpointShard(s *shard, w io.Writer) error {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	s.quiesceLocked()
	s.procMu.Lock()
	defer s.procMu.Unlock()
	return core.EncodeSnapshot(w, core.SnapKindView, func(sw *core.SnapshotWriter) {
		sw.String(s.name)
		sw.Int(s.links)
		sw.I64(s.enqueuedBins)
		sw.I64(s.droppedBins)
		sw.I64(s.droppedBatches)
		sw.I64(s.rejectedBins)
		sw.Int(s.queuedHighWater)
		sw.Nested(s.det.Snapshot)
	})
}

// CheckpointView waits for the view to go idle (empty queue, no batch
// in flight), then writes its portable state — detector snapshot plus
// the queue counters that keep post-restore Seq numbering truthful — as
// one view envelope. It works on a closed monitor too: Close drains
// every queue, which is exactly the quiesced state a final checkpoint
// wants.
func (m *Monitor) CheckpointView(view string, w io.Writer) error {
	s, err := m.lookupAny(view)
	if err != nil {
		return err
	}
	return m.checkpointShard(s, w)
}

// RestoreView replaces the view's detector state and queue counters
// with a CheckpointView envelope taken from an equivalently configured
// view (same backend kind and link count — the detector validates its
// own construction parameters). The view quiesces first, so bins
// ingested before the call are processed against the pre-restore state;
// bins ingested after it continue the restored stream, with Seq
// numbering picking up exactly where the checkpointed monitor left off.
func (m *Monitor) RestoreView(view string, r io.Reader) error {
	s, err := m.lookupAny(view)
	if err != nil {
		return err
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	s.quiesceLocked()
	s.procMu.Lock()
	defer s.procMu.Unlock()
	var enqueued, dropped, droppedBatches, rejected int64
	var highWater int
	err = core.DecodeSnapshot(r, core.SnapKindView, func(sr *core.SnapshotReader) error {
		_ = sr.String() // original view name: informative, migration may rename
		if links := sr.Int(); sr.Err() == nil && links != s.links {
			return core.SnapshotMismatchf("view snapshot has %d links, view %q expects %d", links, s.name, s.links)
		}
		enqueued = sr.I64()
		dropped = sr.I64()
		droppedBatches = sr.I64()
		rejected = sr.I64()
		highWater = sr.NonNegInt()
		if err := sr.Err(); err != nil {
			return err
		}
		sr.Nested(s.det.Restore)
		return sr.Err()
	})
	if err != nil {
		return fmt.Errorf("engine: view %q: %w", view, err)
	}
	s.enqueuedBins = enqueued
	s.droppedBins = dropped
	s.droppedBatches = droppedBatches
	s.rejectedBins = rejected
	s.queuedHighWater = highWater
	return nil
}

// Checkpoint writes the whole monitor — every view envelope in
// deterministic name order, then the autoscaler's smoothed estimates —
// as one monitor envelope, for a warm restart via
// NewMonitorFromCheckpoint. Views quiesce one at a time; checkpoint a
// live monitor only when its producers are paused, or after Close.
func (m *Monitor) Checkpoint(w io.Writer) error {
	m.mu.Lock()
	names := make([]string, 0, len(m.shards))
	for name := range m.shards {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)
	return core.EncodeSnapshot(w, core.SnapKindMonitor, func(sw *core.SnapshotWriter) {
		sw.Int(len(names))
		for _, name := range names {
			s, err := m.lookupAny(name)
			if err != nil {
				continue // removed mid-iteration: nothing to persist
			}
			sw.Nested(func(w io.Writer) error { return m.checkpointShard(s, w) })
		}
		ewBacklog, ewLatency, calmTicks := m.autoscaleState()
		sw.F64(ewBacklog)
		sw.F64(ewLatency)
		sw.I64(int64(calmTicks))
	})
}

// DetectorFactory builds an unseeded-from-checkpoint detector for one
// view during NewMonitorFromCheckpoint: name and links come from the
// view envelope, kind is the backend name ("subspace", "ewma", ...)
// recovered from the embedded detector snapshot. The returned detector
// must be constructed with the same parameters the checkpointed one was
// (link count, lambda, levels, ...); the restore then replaces its
// mutable state and validates those parameters.
type DetectorFactory func(name, kind string, links int) (core.ViewDetector, error)

// NewMonitorFromCheckpoint rebuilds a monitor from a Checkpoint stream:
// each view envelope names its backend kind, the factory constructs a
// compatible detector, and the embedded snapshot restores its state and
// the view's queue counters — so the restarted monitor's alarm stream
// (Seq offsets included) continues bin-for-bin where the checkpointed
// one stopped. The autoscaler's smoothed backlog/latency estimates are
// seeded before its evaluation loop starts. On any error the partially
// built monitor is closed and the error returned.
func NewMonitorFromCheckpoint(cfg Config, r io.Reader, factory DetectorFactory) (*Monitor, error) {
	m := newMonitor(cfg, false)
	err := core.DecodeSnapshot(r, core.SnapKindMonitor, func(sr *core.SnapshotReader) error {
		n := sr.NonNegInt()
		if err := sr.Err(); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			sr.Nested(func(r io.Reader) error { return m.restoreViewInto(r, factory) })
			if err := sr.Err(); err != nil {
				return err
			}
		}
		ewBacklog := sr.F64()
		ewLatency := sr.F64()
		calmTicks := int(sr.I64())
		if err := sr.Err(); err != nil {
			return err
		}
		if m.cfg.Autoscale != nil {
			m.setAutoscaleState(ewBacklog, ewLatency, calmTicks)
		}
		return nil
	})
	if err != nil {
		m.Close()
		return nil, fmt.Errorf("engine: restore checkpoint: %w", err)
	}
	m.startAutoscale()
	return m, nil
}

// restoreViewInto consumes one view envelope, constructs the view's
// detector through the factory, restores its state, and registers the
// shard with its checkpointed queue counters.
func (m *Monitor) restoreViewInto(r io.Reader, factory DetectorFactory) error {
	var (
		name                                  string
		links, highWater                      int
		enqueued, dropped, droppedBs, rejects int64
		detKind                               byte
		detBlob                               []byte
	)
	err := core.DecodeSnapshot(r, core.SnapKindView, func(sr *core.SnapshotReader) error {
		name = sr.String()
		links = sr.NonNegInt()
		enqueued = sr.I64()
		dropped = sr.I64()
		droppedBs = sr.I64()
		rejects = sr.I64()
		highWater = sr.NonNegInt()
		if err := sr.Err(); err != nil {
			return err
		}
		sr.Nested(func(r io.Reader) error {
			var err error
			detKind, detBlob, err = core.ReadSnapshotEnvelope(r)
			if err == io.EOF {
				err = fmt.Errorf("core: snapshot header truncated: %w", io.ErrUnexpectedEOF)
			}
			return err
		})
		return sr.Err()
	})
	if err != nil {
		return err
	}
	kindName := core.KindName(detKind)
	if detKind >= core.SnapKindView || kindName == "" {
		return fmt.Errorf("%w: view %q embeds a %q envelope, want a detector state",
			core.ErrSnapshotFormat, name, kindName)
	}
	det, err := factory(name, kindName, links)
	if err != nil {
		return fmt.Errorf("engine: view %q: %w", name, err)
	}
	if err := det.Restore(bytes.NewReader(detBlob)); err != nil {
		return fmt.Errorf("engine: view %q: %w", name, err)
	}
	if err := m.AddDetectorView(name, det); err != nil {
		return err
	}
	s, err := m.lookupAny(name)
	if err != nil {
		return err
	}
	s.qmu.Lock()
	s.enqueuedBins = enqueued
	s.droppedBins = dropped
	s.droppedBatches = droppedBs
	s.rejectedBins = rejects
	s.queuedHighWater = highWater
	s.qmu.Unlock()
	return nil
}
