package engine

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"netanomaly/internal/core"
	"netanomaly/internal/forecast"
	"netanomaly/internal/mat"
)

// halves splits a fixture stream into its two 64-bin halves.
func halves(f backendFixture) (*mat.Dense, *mat.Dense) {
	cols := f.stream.Cols()
	half := confStreamBins / 2
	first := mat.NewDense(half, cols, f.stream.RawData()[:half*cols])
	second := mat.NewDense(confStreamBins-half, cols, f.stream.RawData()[half*cols:])
	return first, second
}

// TestSnapshotResumeConformance is the conformance battery's
// checkpoint leg, run for all nine backends: processing half the
// stream, snapshotting, restoring into a freshly constructed detector
// and processing the rest must be indistinguishable — alarms, Seq and
// Stats — from the uninterrupted run. It also pins the canonical
// encoding: a restored detector re-snapshots byte-for-byte.
func TestSnapshotResumeConformance(t *testing.T) {
	const seed = 140
	control := conformanceFixtures(t, seed)
	subject := conformanceFixtures(t, seed)
	target := conformanceFixtures(t, seed)
	for i := range control {
		cf, sf, tf := control[i], subject[i], target[i]
		t.Run(cf.name, func(t *testing.T) {
			first, second := halves(cf)

			wantFirst, err := cf.det.ProcessBatch(first)
			if err != nil {
				t.Fatal(err)
			}
			wantTail, err := cf.det.ProcessBatch(second)
			if err != nil {
				t.Fatal(err)
			}
			want := append(append([]core.Alarm{}, wantFirst...), wantTail...)

			gotFirst, err := sf.det.ProcessBatch(first)
			if err != nil {
				t.Fatal(err)
			}
			var snap bytes.Buffer
			if err := sf.det.Snapshot(&snap); err != nil {
				t.Fatal(err)
			}
			if err := tf.det.Restore(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatal(err)
			}
			var again bytes.Buffer
			if err := tf.det.Snapshot(&again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap.Bytes(), again.Bytes()) {
				t.Fatalf("restore→snapshot not byte-identical: %d vs %d bytes", snap.Len(), again.Len())
			}

			gotTail, err := tf.det.ProcessBatch(second)
			if err != nil {
				t.Fatal(err)
			}
			got := append(append([]core.Alarm{}, gotFirst...), gotTail...)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("resumed alarm stream diverged:\n got %+v\nwant %+v", got, want)
			}
			if gs, ws := tf.det.Stats(), cf.det.Stats(); gs != ws {
				t.Fatalf("resumed stats %+v, uninterrupted %+v", gs, ws)
			}
			spiked := false
			for _, a := range want {
				if a.Seq >= cf.spikeLo && a.Seq <= cf.spikeHi {
					spiked = true
				}
			}
			if !spiked {
				t.Fatal("spike missing from the control run; the equality proved nothing")
			}
		})
	}
}

// migrationIngest pushes one chunk through the view and returns the
// alarms it raised, in order.
func migrationIngest(t *testing.T, m *Monitor, view string, chunk *mat.Dense) []core.Alarm {
	t.Helper()
	if err := m.Ingest(view, chunk); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	var out []core.Alarm
	for _, a := range m.TakeAlarms() {
		out = append(out, a.Alarm)
	}
	return out
}

// TestViewMigration is the tentpole's acceptance test: a view
// checkpointed on one monitor and restored into an equivalently
// configured view on another must continue the alarm stream
// bin-for-bin — sequence offsets included — exactly as the monitor
// that was never interrupted. Run for all nine backends, under -race
// in CI.
func TestViewMigration(t *testing.T) {
	const seed = 141
	control := conformanceFixtures(t, seed)
	subject := conformanceFixtures(t, seed)
	target := conformanceFixtures(t, seed)
	for i := range control {
		cf, sf, tf := control[i], subject[i], target[i]
		t.Run(cf.name, func(t *testing.T) {
			first, second := halves(cf)
			cfgOne := Config{Workers: 1, BatchSize: 32}

			mc := NewMonitor(cfgOne)
			defer mc.Close()
			if err := mc.AddDetectorView("v", cf.det); err != nil {
				t.Fatal(err)
			}
			want := migrationIngest(t, mc, "v", first)
			want = append(want, migrationIngest(t, mc, "v", second)...)

			ma := NewMonitor(cfgOne)
			if err := ma.AddDetectorView("v", sf.det); err != nil {
				t.Fatal(err)
			}
			got := migrationIngest(t, ma, "v", first)
			var ckpt bytes.Buffer
			if err := ma.CheckpointView("v", &ckpt); err != nil {
				t.Fatal(err)
			}
			ma.Close()

			mb := NewMonitor(cfgOne)
			defer mb.Close()
			if err := mb.AddDetectorView("v", tf.det); err != nil {
				t.Fatal(err)
			}
			if err := mb.RestoreView("v", bytes.NewReader(ckpt.Bytes())); err != nil {
				t.Fatal(err)
			}
			got = append(got, migrationIngest(t, mb, "v", second)...)

			if !reflect.DeepEqual(got, want) {
				t.Fatalf("migrated alarm stream diverged:\n got %+v\nwant %+v", got, want)
			}
			stats, err := mb.ViewStats("v")
			if err != nil {
				t.Fatal(err)
			}
			if stats.Processed != confStreamBins {
				t.Fatalf("migrated view processed %d, want %d", stats.Processed, confStreamBins)
			}
			qs, err := mb.QueueStats("v")
			if err != nil {
				t.Fatal(err)
			}
			if qs.EnqueuedBins != int64(confStreamBins) {
				t.Fatalf("migrated queue counters did not carry over: %+v", qs)
			}
			spiked := false
			for _, a := range want {
				if a.Seq >= cf.spikeLo && a.Seq <= cf.spikeHi {
					spiked = true
				}
			}
			if !spiked {
				t.Fatal("spike missing from the control run; the equality proved nothing")
			}
		})
	}
}

// TestMonitorCheckpointRestore pins the whole-monitor path: Checkpoint
// on a multi-view monitor, NewMonitorFromCheckpoint through a factory,
// then resumed ingest — view names, per-view counters, and post-restore
// alarm Seq (and flow attribution) must all be truthful. The spike sits
// in the second half, so it is detected by the restored monitor.
func TestMonitorCheckpointRestore(t *testing.T) {
	topo, history, stream, flow := viewData(t, 160, 1008, 128, 100)
	routing := topo.RoutingMatrix()
	links := history.Cols()
	cols := stream.Cols()
	first := mat.NewDense(64, cols, stream.RawData()[:64*cols])
	second := mat.NewDense(64, cols, stream.RawData()[64*cols:])

	build := func(kind string) (core.ViewDetector, error) {
		switch kind {
		case "subspace":
			return core.NewOnlineDetector(history, routing, core.OnlineConfig{Window: history.Rows()})
		case "ewma":
			return forecast.NewDetector(history, forecast.Config{Kind: forecast.EWMA})
		default:
			return nil, errors.New("unexpected kind " + kind)
		}
	}
	cfg := Config{Workers: 2, BatchSize: 32}
	ma := NewMonitor(cfg)
	for _, kv := range [][2]string{{"sub", "subspace"}, {"fore", "ewma"}} {
		det, err := build(kv[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := ma.AddDetectorView(kv[0], det); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []string{"sub", "fore"} {
		if err := ma.Ingest(v, first); err != nil {
			t.Fatal(err)
		}
	}
	ma.Flush()
	ma.TakeAlarms()
	wantQS, err := ma.QueueStats("sub")
	if err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := ma.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	ma.Close()

	factory := func(name, kind string, gotLinks int) (core.ViewDetector, error) {
		if gotLinks != links {
			t.Fatalf("factory offered %d links, want %d", gotLinks, links)
		}
		return build(kind)
	}
	mb, err := NewMonitorFromCheckpoint(cfg, bytes.NewReader(ckpt.Bytes()), factory)
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close()
	if got := mb.Views(); len(got) != 2 {
		t.Fatalf("restored monitor has views %v", got)
	}
	for _, v := range []string{"sub", "fore"} {
		stats, err := mb.ViewStats(v)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Processed != 64 {
			t.Fatalf("restored view %q processed %d, want 64", v, stats.Processed)
		}
	}
	gotQS, err := mb.QueueStats("sub")
	if err != nil {
		t.Fatal(err)
	}
	if gotQS.EnqueuedBins != wantQS.EnqueuedBins || gotQS.DepthHighWater != wantQS.DepthHighWater ||
		gotQS.DroppedBins != wantQS.DroppedBins || gotQS.RejectedBins != wantQS.RejectedBins {
		t.Fatalf("queue counters did not survive the checkpoint: got %+v want %+v", gotQS, wantQS)
	}

	for _, v := range []string{"sub", "fore"} {
		if err := mb.Ingest(v, second); err != nil {
			t.Fatal(err)
		}
	}
	mb.Flush()
	if errs := mb.Errs(); len(errs) != 0 {
		t.Fatalf("restored monitor errors: %v", errs)
	}
	spiked := false
	for _, a := range mb.TakeAlarms() {
		if a.View == "sub" && a.Seq == 100 {
			spiked = true
			if a.Flow != flow {
				t.Fatalf("post-restore spike attributed to flow %d, want %d", a.Flow, flow)
			}
		}
	}
	if !spiked {
		t.Fatal("restored monitor missed the spike, or its Seq offset drifted")
	}

	// A truncated checkpoint must classify as truncation, and a factory
	// failure must surface, closing the partial monitor either way.
	if _, err := NewMonitorFromCheckpoint(cfg, bytes.NewReader(ckpt.Bytes()[:ckpt.Len()/2]), factory); !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, core.ErrSnapshotFormat) {
		t.Fatalf("truncated checkpoint: %v", err)
	}
	bad := func(name, kind string, links int) (core.ViewDetector, error) {
		return nil, errors.New("no detector for you")
	}
	if _, err := NewMonitorFromCheckpoint(cfg, bytes.NewReader(ckpt.Bytes()), bad); err == nil {
		t.Fatal("factory failure did not fail the restore")
	}
}

// smallPatternHistory builds a tiny non-degenerate history for the
// rejection and race tests.
func smallPatternHistory(bins, links int) *mat.Dense {
	h := mat.Zeros(bins, links)
	for i := 0; i < bins; i++ {
		for j := 0; j < links; j++ {
			h.Set(i, j, 100+10*float64((i*7+j*3)%13))
		}
	}
	return h
}

// TestRestoreViewRejections pins the engine-level mismatch checks: a
// view envelope restored into a view with a different backend kind or
// a different link count must fail with ErrSnapshotMismatch and leave
// the target view's state untouched.
func TestRestoreViewRejections(t *testing.T) {
	mkMonitor := func(det core.ViewDetector) *Monitor {
		m := NewMonitor(Config{Workers: 1, BatchSize: 16})
		if err := m.AddDetectorView("v", det); err != nil {
			t.Fatal(err)
		}
		return m
	}
	history6 := smallPatternHistory(64, 6)
	det6, err := core.NewOnlineDetector(history6, mat.Identity(6), core.OnlineConfig{Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	src := mkMonitor(det6)
	defer src.Close()
	var ckpt bytes.Buffer
	if err := src.CheckpointView("v", &ckpt); err != nil {
		t.Fatal(err)
	}

	t.Run("wrong links", func(t *testing.T) {
		history4 := smallPatternHistory(64, 4)
		det4, err := core.NewOnlineDetector(history4, mat.Identity(4), core.OnlineConfig{Window: 64})
		if err != nil {
			t.Fatal(err)
		}
		m := mkMonitor(det4)
		defer m.Close()
		if err := m.RestoreView("v", bytes.NewReader(ckpt.Bytes())); !errors.Is(err, core.ErrSnapshotMismatch) {
			t.Fatalf("6-link view envelope restored into 4-link view: %v", err)
		}
	})
	t.Run("wrong kind", func(t *testing.T) {
		fore, err := forecast.NewDetector(history6, forecast.Config{Kind: forecast.EWMA})
		if err != nil {
			t.Fatal(err)
		}
		m := mkMonitor(fore)
		defer m.Close()
		if err := m.RestoreView("v", bytes.NewReader(ckpt.Bytes())); !errors.Is(err, core.ErrSnapshotMismatch) {
			t.Fatalf("subspace view envelope restored into ewma view: %v", err)
		}
		// The failed restore must not have corrupted the target: it
		// still processes and still checkpoints.
		if _, err := m.QueueStats("v"); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := m.CheckpointView("v", &out); err != nil {
			t.Fatalf("view unusable after rejected restore: %v", err)
		}
	})
}

// TestCheckpointDuringRefit pins the satellite fix: a checkpoint taken
// while a background refit is in flight must wait the refit out through
// the detector's refit gate — it may neither deadlock nor serialize a
// half-swapped model. Run under -race in CI.
func TestCheckpointDuringRefit(t *testing.T) {
	const bins, links = 40, 6
	history := smallPatternHistory(bins, links)
	det, err := core.NewOnlineDetector(history, mat.Identity(links), core.OnlineConfig{Window: bins, RefitEvery: bins})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	det.SetRefitHook(func() {
		close(started)
		<-release
	})

	m := NewMonitor(Config{Workers: 1, BatchSize: bins})
	defer m.Close()
	if err := m.AddDetectorView("v", det); err != nil {
		t.Fatal(err)
	}
	// Re-ingesting the history pattern keeps the window non-degenerate,
	// so the triggered refit succeeds while the hook holds it open.
	if err := m.Ingest("v", history); err != nil {
		t.Fatal(err)
	}
	<-started

	var ckpt bytes.Buffer
	snapped := make(chan error, 1)
	go func() { snapped <- m.CheckpointView("v", &ckpt) }()
	select {
	case err := <-snapped:
		t.Fatalf("checkpoint completed while the refit was still swapping (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case err := <-snapped:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("checkpoint deadlocked against the background refit")
	}

	// The envelope serialized the post-refit state: restoring it into a
	// fresh same-construction view must succeed and carry the refit.
	fresh, err := core.NewOnlineDetector(history, mat.Identity(links), core.OnlineConfig{Window: bins, RefitEvery: bins})
	if err != nil {
		t.Fatal(err)
	}
	mb := NewMonitor(Config{Workers: 1, BatchSize: bins})
	defer mb.Close()
	if err := mb.AddDetectorView("v", fresh); err != nil {
		t.Fatal(err)
	}
	if err := mb.RestoreView("v", bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	stats, err := mb.ViewStats("v")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Processed != bins || stats.Refits != 1 {
		t.Fatalf("restored view stats %+v, want processed %d and 1 refit", stats, bins)
	}
}
