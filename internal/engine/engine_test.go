package engine

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"netanomaly/internal/core"
	"netanomaly/internal/mat"
	"netanomaly/internal/netmeas"
	"netanomaly/internal/topology"
	"netanomaly/internal/traffic"
)

// viewData generates a simulated view: a seeded history block and a
// continuation stream with an optional spike injected at streamBin of
// the stream (flow src->dst 1->7).
func viewData(t *testing.T, seed int64, historyBins, streamBins, spikeBin int) (*topology.Topology, *mat.Dense, *mat.Dense, int) {
	t.Helper()
	topo := topology.Abilene()
	cfg := traffic.DefaultConfig(seed)
	cfg.Bins = historyBins + streamBins
	gen, err := traffic.NewGenerator(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := gen.Generate()
	flow := topo.FlowID(1, 7)
	if spikeBin >= 0 {
		x.Set(historyBins+spikeBin, flow, x.At(historyBins+spikeBin, flow)+9e7)
	}
	y := traffic.LinkLoads(topo, x)
	links := topo.NumLinks()
	history := mat.Zeros(historyBins, links)
	for b := 0; b < historyBins; b++ {
		history.SetRow(b, y.RowView(b))
	}
	stream := mat.Zeros(streamBins, links)
	for b := 0; b < streamBins; b++ {
		stream.SetRow(b, y.RowView(historyBins+b))
	}
	return topo, history, stream, flow
}

func TestMonitorEndToEnd(t *testing.T) {
	topo, historyA, streamA, flow := viewData(t, 80, 1008, 288, 100)
	_, historyB, streamB, _ := viewData(t, 81, 1008, 288, -1)

	m := NewMonitor(Config{Workers: 4, BatchSize: 48})
	defer m.Close()
	if err := m.AddView("backbone-a", historyA, topo.RoutingMatrix()); err != nil {
		t.Fatal(err)
	}
	if err := m.AddView("backbone-b", historyB, topo.RoutingMatrix()); err != nil {
		t.Fatal(err)
	}
	if err := m.Ingest("backbone-a", streamA); err != nil {
		t.Fatal(err)
	}
	if err := m.Ingest("backbone-b", streamB); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	if errs := m.Errs(); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	alarms := m.TakeAlarms()
	spiked := false
	for _, a := range alarms {
		if a.View == "backbone-a" && a.Seq == 100 {
			spiked = true
			if a.Flow != flow {
				t.Fatalf("spike identified flow %d want %d", a.Flow, flow)
			}
			if a.Bytes < 4e7 {
				t.Fatalf("spike quantified at %v bytes", a.Bytes)
			}
		}
	}
	if !spiked {
		t.Fatalf("injected spike not alarmed; %d alarms: %+v", len(alarms), alarms)
	}
	if len(alarms) > 20 {
		t.Fatalf("too many false alarms: %d", len(alarms))
	}
	statsA, err := m.ViewStats("backbone-a")
	if err != nil {
		t.Fatal(err)
	}
	if statsA.Processed != 288 {
		t.Fatalf("view a processed %d bins want 288", statsA.Processed)
	}
	if statsA.Backend != "subspace" {
		t.Fatalf("default backend = %q", statsA.Backend)
	}
}

func TestMonitorConcurrentIngest(t *testing.T) {
	// Race hammer (run under -race in CI): several producers feeding
	// several views through the shared pool, with refits enabled.
	topo, history, stream, _ := viewData(t, 82, 600, 240, -1)
	m := NewMonitor(Config{Workers: 4, BatchSize: 16, RefitEvery: 60})
	views := []string{"v0", "v1", "v2"}
	for _, v := range views {
		if err := m.AddView(v, history, topo.RoutingMatrix()); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for _, v := range views {
		for part := 0; part < 2; part++ {
			wg.Add(1)
			go func(v string, part int) {
				defer wg.Done()
				half := stream.Rows() / 2
				sub := mat.Zeros(half, stream.Cols())
				for b := 0; b < half; b++ {
					sub.SetRow(b, stream.RowView(part*half+b))
				}
				if err := m.Ingest(v, sub); err != nil {
					t.Error(err)
				}
			}(v, part)
		}
	}
	wg.Wait()
	m.Flush()
	if errs := m.Errs(); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	for _, v := range views {
		stats, err := m.ViewStats(v)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Processed != 240 {
			t.Fatalf("view %s processed %d want 240", v, stats.Processed)
		}
	}
	m.Close()
}

func TestMonitorOnAlarmCallback(t *testing.T) {
	topo, history, stream, _ := viewData(t, 83, 1008, 144, 50)
	var mu sync.Mutex
	var got []Alarm
	m := NewMonitor(Config{
		Workers:   2,
		BatchSize: 36,
		OnAlarm: func(a Alarm) {
			mu.Lock()
			got = append(got, a)
			mu.Unlock()
		},
	})
	defer m.Close()
	if err := m.AddView("v", history, topo.RoutingMatrix()); err != nil {
		t.Fatal(err)
	}
	if err := m.Ingest("v", stream); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("callback saw no alarms")
	}
	if taken := m.TakeAlarms(); len(taken) != 0 {
		t.Fatalf("internal buffer used despite callback: %d", len(taken))
	}
}

func TestMonitorSynchronousProcessBatch(t *testing.T) {
	topo, history, stream, _ := viewData(t, 84, 1008, 144, 50)
	m := NewMonitor(Config{Workers: 2})
	defer m.Close()
	if err := m.AddView("v", history, topo.RoutingMatrix()); err != nil {
		t.Fatal(err)
	}
	alarms, err := m.ProcessBatch("v", stream)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range alarms {
		if a.Seq == 50 {
			found = true
		}
	}
	if !found {
		t.Fatalf("synchronous batch missed the spike; alarms: %+v", alarms)
	}
}

func TestMonitorMixedIngestAndProcessBatch(t *testing.T) {
	// Ingest (queued, worker-processed) racing synchronous ProcessBatch
	// on the same view: the per-shard processing lock must keep the
	// backend's one-caller-at-a-time contract intact. Run under -race.
	topo, history, stream, _ := viewData(t, 87, 600, 240, -1)
	m := NewMonitor(Config{Workers: 4, BatchSize: 16})
	defer m.Close()
	if err := m.AddView("v", history, topo.RoutingMatrix()); err != nil {
		t.Fatal(err)
	}
	half := stream.Rows() / 2
	cols := stream.Cols()
	first := mat.NewDense(half, cols, stream.RawData()[:half*cols])
	second := mat.NewDense(half, cols, stream.RawData()[half*cols:])
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := m.Ingest("v", first); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		if _, err := m.ProcessBatch("v", second); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	m.Flush()
	if errs := m.Errs(); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	stats, err := m.ViewStats("v")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Processed != 240 {
		t.Fatalf("processed %d want 240", stats.Processed)
	}
}

func TestMonitorFinalBatchRefitFailureReachesErrs(t *testing.T) {
	// Drive a view's window degenerate with a batch of identical rows so
	// the background refit triggered by the final batch fails; nothing
	// is processed afterwards, so only Errs' harvest can surface it.
	const bins, links = 40, 6
	history := mat.Zeros(bins, links)
	for i := 0; i < bins; i++ {
		for j := 0; j < links; j++ {
			history.Set(i, j, 100+10*float64((i*7+j*3)%13))
		}
	}
	means := history.ColMeans()
	constant := mat.Zeros(bins, links)
	for i := 0; i < bins; i++ {
		constant.SetRow(i, means)
	}
	m := NewMonitor(Config{Workers: 1, BatchSize: bins, Window: bins, RefitEvery: bins})
	if err := m.AddView("v", history, mat.Identity(links)); err != nil {
		t.Fatal(err)
	}
	if err := m.Ingest("v", constant); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	if errs := m.Errs(); len(errs) != 1 {
		t.Fatalf("final-batch refit failure not harvested: %v", errs)
	}
	// Harvesting clears it; a second call reports nothing new.
	if errs := m.Errs(); len(errs) != 1 {
		t.Fatalf("harvested error not retained exactly once: %v", errs)
	}
	m.Close()
}

func TestIngestStreamJoinsFlushAndMeasurementErrors(t *testing.T) {
	// A mis-sized measurement arriving after buffered bins whose flush
	// also fails must surface BOTH errors: the old code returned only the
	// flush error, hiding the root cause (the bad measurement).
	topo, history, stream, _ := viewData(t, 87, 300, 12, -1)
	m := NewMonitor(Config{Workers: 1, BatchSize: 8})
	if err := m.AddView("v", history, topo.RoutingMatrix()); err != nil {
		t.Fatal(err)
	}
	ch := make(chan netmeas.LinkMeasurement) // unbuffered: sends rendezvous with IngestStream
	errc := make(chan error, 1)
	go func() { errc <- m.IngestStream("v", ch) }()
	// Three valid bins buffer below BatchSize, so no flush happens yet.
	for b := 0; b < 3; b++ {
		ch <- netmeas.LinkMeasurement{Bin: b, Loads: stream.Row(b)}
	}
	// Close the monitor so the flush forced by the bad measurement fails.
	m.Close()
	ch <- netmeas.LinkMeasurement{Bin: 3, Loads: []float64{1, 2, 3}}
	close(ch)
	err := <-errc
	if err == nil {
		t.Fatal("IngestStream returned nil after a mis-sized measurement and a failed flush")
	}
	msg := err.Error()
	if !strings.Contains(msg, "links") {
		t.Fatalf("root-cause measurement error dropped: %v", err)
	}
	if !strings.Contains(msg, "closed") {
		t.Fatalf("flush failure dropped: %v", err)
	}
}

func TestMonitorErrors(t *testing.T) {
	topo, history, stream, _ := viewData(t, 85, 300, 12, -1)
	m := NewMonitor(Config{})
	if err := m.AddView("v", history, topo.RoutingMatrix()); err != nil {
		t.Fatal(err)
	}
	if err := m.AddView("v", history, topo.RoutingMatrix()); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate view not rejected: %v", err)
	}
	if err := m.Ingest("nope", stream); err == nil {
		t.Fatal("unknown view accepted")
	}
	if err := m.Ingest("v", mat.Zeros(4, 3)); err == nil {
		t.Fatal("mis-sized batch accepted")
	}
	m.Close()
	if err := m.Ingest("v", stream); err == nil {
		t.Fatal("ingest after Close accepted")
	}
	if err := m.AddView("w", history, topo.RoutingMatrix()); err == nil {
		t.Fatal("AddView after Close accepted")
	}
	m.Close() // idempotent
}

// TestMonitorErrsAndTakeAlarmsDrainRace is the drain-path interleaving
// table: two live IngestStream producers — one whose view's background
// refits deterministically fail, one raising an alarm per bin — race a
// mid-burst Close under every overload policy. Required afterwards, in
// any interleaving (run under -race in CI): Close and both producers
// return (no deadlock), producer errors are only the documented kinds,
// the failed refit is harvestable through Errs exactly once and tagged
// with its view, per-view alarms stay in FIFO order through TakeAlarms,
// a second TakeAlarms is empty, and the queue counters reconcile with
// the bins each backend actually processed.
func TestMonitorErrsAndTakeAlarmsDrainRace(t *testing.T) {
	for _, policy := range []OverloadPolicy{OverloadBlock, OverloadDropOldest, OverloadError} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			const links = 6
			const flakyBins = 40
			history := mat.Zeros(flakyBins, links)
			for i := 0; i < flakyBins; i++ {
				for j := 0; j < links; j++ {
					history.Set(i, j, 100+10*float64((i*7+j*3)%13))
				}
			}
			// A constant continuation drives the flaky view's window
			// degenerate: the refit launched after RefitEvery bins fails
			// and parks its error for the drain path to surface.
			means := history.ColMeans()
			flaky, err := core.NewOnlineDetector(history, mat.Identity(links), core.OnlineConfig{Window: flakyBins, RefitEvery: flakyBins})
			if err != nil {
				t.Fatal(err)
			}
			busy := &loadDetector{links: links, alarmAll: true}
			m := NewMonitor(Config{
				Workers:    2,
				BatchSize:  8,
				MaxPending: 24,
				Overload:   policy,
			})
			if err := m.AddDetectorView("flaky", flaky); err != nil {
				t.Fatal(err)
			}
			if err := m.AddDetectorView("busy", busy); err != nil {
				t.Fatal(err)
			}

			// Producers: channel feeders + IngestStream consumers. The
			// feeders abort on stop so an early IngestStream error (from
			// Close or OverloadError) cannot leave them wedged on a send.
			const streamBins = 400
			feed := func(ch chan<- netmeas.LinkMeasurement, row func(i int) []float64, stop <-chan struct{}) {
				defer close(ch)
				for i := 0; i < streamBins; i++ {
					select {
					case ch <- netmeas.LinkMeasurement{Bin: i, Loads: row(i)}:
					case <-stop:
						return
					}
				}
			}
			ingErrs := make([]error, 2)
			stops := make([]chan struct{}, 2)
			var wg sync.WaitGroup
			for vi, view := range []string{"flaky", "busy"} {
				vi, view := vi, view
				ch := make(chan netmeas.LinkMeasurement)
				stops[vi] = make(chan struct{})
				row := func(i int) []float64 {
					if view == "flaky" {
						return append([]float64(nil), means...)
					}
					r := make([]float64, links)
					r[0] = float64(i) // marker: alarm SPE identifies the bin
					return r
				}
				go feed(ch, row, stops[vi])
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer close(stops[vi])
					ingErrs[vi] = m.IngestStream(view, ch)
				}()
			}

			// Let the flaky view cross its refit trigger (so the deferred
			// error exists) before pulling the plug — unless its producer
			// already finished or died (possible under OverloadError),
			// in which case Close races whatever state there is.
			deadline := time.Now().Add(10 * time.Second)
		waitTrigger:
			for {
				st, err := m.ViewStats("flaky")
				if err != nil {
					t.Fatal(err)
				}
				if st.Processed > flakyBins {
					break
				}
				select {
				case <-stops[0]:
					break waitTrigger
				default:
				}
				if time.Now().After(deadline) {
					t.Fatalf("flaky view stuck at %d processed bins", st.Processed)
				}
				time.Sleep(100 * time.Microsecond)
			}
			closed := make(chan struct{})
			go func() {
				m.Close()
				close(closed)
			}()
			select {
			case <-closed:
			case <-time.After(30 * time.Second):
				t.Fatal("Close deadlocked against live IngestStreams")
			}
			wg.Wait()

			for vi, err := range ingErrs {
				if err == nil {
					continue
				}
				if !strings.Contains(err.Error(), "closed") && !errors.Is(err, ErrOverloaded) {
					t.Fatalf("producer %d returned unexpected error kind: %v", vi, err)
				}
			}
			errs := m.Errs()
			refitErrs := 0
			for _, err := range errs {
				if !strings.Contains(err.Error(), `view "flaky"`) {
					t.Fatalf("error not tagged with its view: %v", err)
				}
				if strings.Contains(err.Error(), "refit") {
					refitErrs++
				}
			}
			flakyStats, err := m.ViewStats("flaky")
			if err != nil {
				t.Fatal(err)
			}
			if flakyStats.Processed > flakyBins && refitErrs == 0 {
				t.Fatalf("refit trigger crossed (%d bins) but its failure was lost in the drain: %v", flakyStats.Processed, errs)
			}
			if again := m.Errs(); len(again) != len(errs) {
				t.Fatalf("Errs unstable across calls: %d then %d", len(errs), len(again))
			}

			lastSeq := map[string]int{}
			lastMarker := -1.0
			for _, a := range m.TakeAlarms() {
				if prev, ok := lastSeq[a.View]; ok && a.Seq <= prev {
					t.Fatalf("view %q alarms out of order: seq %d after %d", a.View, a.Seq, prev)
				}
				lastSeq[a.View] = a.Seq
				if a.View == "busy" {
					if a.SPE <= lastMarker {
						t.Fatalf("busy view FIFO broken: marker %v after %v", a.SPE, lastMarker)
					}
					lastMarker = a.SPE
				}
			}
			if got := m.TakeAlarms(); len(got) != 0 {
				t.Fatalf("second TakeAlarms returned %d alarms", len(got))
			}
			for _, view := range []string{"flaky", "busy"} {
				qs, err := m.QueueStats(view)
				if err != nil {
					t.Fatal(err)
				}
				st, err := m.ViewStats(view)
				if err != nil {
					t.Fatal(err)
				}
				if qs.QueuedBins != 0 {
					t.Fatalf("view %q queue not drained by Close: %+v", view, qs)
				}
				if got := qs.EnqueuedBins - qs.DroppedBins; got != int64(st.Processed) {
					t.Fatalf("view %q counters do not reconcile: %+v vs processed %d", view, qs, st.Processed)
				}
				if policy != OverloadDropOldest && qs.DroppedBins != 0 {
					t.Fatalf("view %q dropped bins under %v: %+v", view, policy, qs)
				}
			}
		})
	}
}

// TestMonitorAlarmsArriveAfterClose pins the shutdown half of the alarm
// contract: batches still queued when Close is called are drained, and
// the alarms they raise — including ones raised while Close is already
// in progress — remain retrievable through TakeAlarms afterwards.
// Nothing queued before Close may be dropped.
func TestMonitorAlarmsArriveAfterClose(t *testing.T) {
	topo, history, stream, flow := viewData(t, 88, 1008, 96, 40)
	m := NewMonitor(Config{Workers: 2, BatchSize: 16})
	if err := m.AddView("v", history, topo.RoutingMatrix()); err != nil {
		t.Fatal(err)
	}
	if err := m.Ingest("v", stream); err != nil {
		t.Fatal(err)
	}
	// No Flush: Close itself must wait out the queued batches.
	m.Close()
	spiked := false
	for _, a := range m.TakeAlarms() {
		if a.Seq == 40 {
			spiked = true
			if a.Flow != flow {
				t.Fatalf("post-Close alarm identified flow %d want %d", a.Flow, flow)
			}
		}
	}
	if !spiked {
		t.Fatal("alarm raised during Close drain was dropped")
	}
	if got := m.TakeAlarms(); len(got) != 0 {
		t.Fatalf("second TakeAlarms not empty: %d", len(got))
	}
}
