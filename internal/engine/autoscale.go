package engine

import (
	"math"
	"time"
)

// autoscaleLoop evaluates the pool on the configured cadence until
// Close stops it. All mutable autoscaler state (the EW-smoothed backlog
// and latency, the calm-tick counter) is confined to this goroutine;
// pool resizes go through dispatchMu.
func (m *Monitor) autoscaleLoop() {
	defer close(m.autoscaleDone)
	t := time.NewTicker(m.cfg.Autoscale.Interval)
	defer t.Stop()
	for {
		select {
		case <-m.autoscaleStop:
			return
		case <-t.C:
			m.autoscaleTick()
		}
	}
}

// autoscaleTick runs one evaluation: fold the batch-latency window and
// the instantaneous queue depth into the EW-smoothed estimates, then
// resize the pool.
//
// Scale-up is eager and proportional: whenever the smoothed backlog
// exceeds ScaleUpBacklog batches per worker — or draining it at the
// smoothed batch latency would take the current pool longer than one
// evaluation interval — the pool jumps to the size that restores the
// per-worker target, capped at MaxWorkers. A surge is exactly when
// waiting is most expensive, so growth is not rationed.
//
// Scale-down is deliberate: only after ScaleDownAfter consecutive calm
// evaluations (smoothed backlog under ScaleDownBacklog per worker) does
// the pool shrink, and then by a single worker — hysteresis, so the
// lull between two bursts does not tear down capacity the next burst
// needs a few milliseconds later.
func (m *Monitor) autoscaleTick() {
	ac := m.cfg.Autoscale
	m.asMu.Lock()
	defer m.asMu.Unlock()

	m.latMu.Lock()
	latSum, latN := m.latSum, m.latN
	m.latSum, m.latN = 0, 0
	m.latMu.Unlock()
	if latN > 0 {
		avg := float64(latSum) / float64(latN)
		if m.ewLatency == 0 {
			m.ewLatency = avg
		} else {
			m.ewLatency = ac.Smoothing*avg + (1-ac.Smoothing)*m.ewLatency
		}
	}

	queued := 0
	for _, s := range m.snapshotShards() {
		s.qmu.Lock()
		queued += len(s.queue)
		s.qmu.Unlock()
	}
	m.ewBacklog = ac.Smoothing*float64(queued) + (1-ac.Smoothing)*m.ewBacklog

	m.dispatchMu.Lock()
	defer m.dispatchMu.Unlock()
	w := m.targetWorkers
	drainNs := m.ewBacklog * m.ewLatency / float64(w)
	overloaded := m.ewBacklog > ac.ScaleUpBacklog*float64(w) ||
		drainNs > float64(ac.Interval.Nanoseconds())
	switch {
	case overloaded && w < ac.MaxWorkers:
		m.calmTicks = 0
		want := int(math.Ceil(m.ewBacklog / ac.ScaleUpBacklog))
		if want <= w {
			want = w + 1
		}
		if want > ac.MaxWorkers {
			want = ac.MaxWorkers
		}
		m.resizePoolLocked(want)
	case !overloaded && w > ac.MinWorkers && m.ewBacklog < ac.ScaleDownBacklog*float64(w):
		m.calmTicks++
		if m.calmTicks >= ac.ScaleDownAfter {
			m.calmTicks = 0
			m.resizePoolLocked(w - 1)
		}
	default:
		m.calmTicks = 0
	}
}

// autoscaleState reads the smoothed estimates for Checkpoint.
func (m *Monitor) autoscaleState() (ewBacklog, ewLatency float64, calmTicks int) {
	m.asMu.Lock()
	defer m.asMu.Unlock()
	return m.ewBacklog, m.ewLatency, m.calmTicks
}

// setAutoscaleState seeds the smoothed estimates from a checkpoint; it
// must run before the evaluation loop starts.
func (m *Monitor) setAutoscaleState(ewBacklog, ewLatency float64, calmTicks int) {
	m.asMu.Lock()
	m.ewBacklog, m.ewLatency, m.calmTicks = ewBacklog, ewLatency, calmTicks
	m.asMu.Unlock()
}
