package topology

import (
	"fmt"
	"math/rand"
)

// Abilene returns the 11-PoP Internet2 backbone of the paper's Figure 2(a).
// The inter-PoP edge set is the 2004 Abilene map (14 physical circuits)
// plus the Chicago--Washington circuit, giving 15 duplex edges = 30
// directed links; with the 11 intra-PoP links the total is 41 links,
// matching Table 1. (The paper's figure draws only the long-haul circuits;
// its stated link count of 41 implies one edge beyond the 14 commonly
// published, which we place on the east-coast redundancy path.)
func Abilene() *Topology {
	b := NewBuilder("Abilene")
	for _, name := range []string{
		"nycm", "chin", "wash", "atla", "ipls", "kscy", "hstn", "dnvr", "losa", "snva", "sttl",
	} {
		b.AddPoP(name)
	}
	b.AddDuplex("sttl", "snva")
	b.AddDuplex("sttl", "dnvr")
	b.AddDuplex("snva", "losa")
	b.AddDuplex("snva", "dnvr")
	b.AddDuplex("losa", "hstn")
	b.AddDuplex("dnvr", "kscy")
	b.AddDuplex("kscy", "hstn")
	b.AddDuplex("kscy", "ipls")
	b.AddDuplex("hstn", "atla")
	b.AddDuplex("ipls", "chin")
	b.AddDuplex("ipls", "atla")
	b.AddDuplex("chin", "nycm")
	b.AddDuplex("atla", "wash")
	b.AddDuplex("wash", "nycm")
	b.AddDuplex("chin", "wash")
	t, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("topology: Abilene preset invalid: %v", err))
	}
	return t
}

// SprintEurope returns a 13-PoP European tier-1 backbone matching the
// paper's Figure 2(b) in node count and Table 1 in link count: 18 duplex
// edges = 36 directed links, plus 13 intra-PoP links = 49. The paper
// anonymizes the PoPs as letters a..m; the precise circuit map is not
// published, so the edge set here is a reconstruction with the same size
// and a realistic backbone structure (a dense core with dual-homed edge
// PoPs) that yields path diversity comparable to the figure.
func SprintEurope() *Topology {
	b := NewBuilder("Sprint-Europe")
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l", "m"}
	for _, n := range names {
		b.AddPoP(n)
	}
	// Core ring d-e-f-g-h with a chord (the figure shows a meshy core).
	b.AddDuplex("d", "e")
	b.AddDuplex("e", "f")
	b.AddDuplex("f", "g")
	b.AddDuplex("g", "h")
	b.AddDuplex("h", "d")
	b.AddDuplex("d", "f")
	// Dual-homed edge PoPs.
	b.AddDuplex("a", "d")
	b.AddDuplex("a", "e")
	b.AddDuplex("b", "d")
	b.AddDuplex("b", "h")
	b.AddDuplex("c", "e")
	b.AddDuplex("c", "f")
	b.AddDuplex("i", "f")
	b.AddDuplex("i", "g")
	b.AddDuplex("j", "g")
	b.AddDuplex("k", "h")
	b.AddDuplex("l", "j")
	// Attach the two most remote PoPs via single-homed tails, as the figure
	// shows for the outermost sites; total duplex edge count is 18.
	t, err := b.AddDuplex("m", "k").Build()
	if err != nil {
		panic(fmt.Sprintf("topology: Sprint-Europe preset invalid: %v", err))
	}
	return t
}

// Synthetic returns a random connected topology with n PoPs named p0..p(n-1).
// It first builds a random spanning tree (guaranteeing connectivity), then
// adds extra duplex edges until reaching the requested duplex edge count.
// Generation is deterministic in seed. It panics if edges < n-1 or exceeds
// the complete-graph bound.
func Synthetic(n, edges int, seed int64) *Topology {
	if n < 2 {
		panic("topology: Synthetic needs n >= 2")
	}
	maxEdges := n * (n - 1) / 2
	if edges < n-1 || edges > maxEdges {
		panic(fmt.Sprintf("topology: Synthetic edge count %d out of [%d,%d]", edges, n-1, maxEdges))
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(fmt.Sprintf("synthetic-%d-%d", n, edges))
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("p%d", i)
		b.AddPoP(names[i])
	}
	have := make(map[[2]int]bool)
	addEdge := func(i, j int) bool {
		if i == j {
			return false
		}
		if i > j {
			i, j = j, i
		}
		if have[[2]int{i, j}] {
			return false
		}
		have[[2]int{i, j}] = true
		b.AddDuplex(names[i], names[j])
		return true
	}
	// Random spanning tree: attach each node to a random earlier node.
	perm := rng.Perm(n)
	for k := 1; k < n; k++ {
		addEdge(perm[k], perm[rng.Intn(k)])
	}
	for len(have) < edges {
		addEdge(rng.Intn(n), rng.Intn(n))
	}
	t, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("topology: Synthetic build failed: %v", err))
	}
	return t
}
