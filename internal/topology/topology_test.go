package topology

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"netanomaly/internal/mat"
)

func mustBuild(t *testing.T, b *Builder) *Topology {
	t.Helper()
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

// line3 builds a 3-PoP line topology x - y - z.
func line3(t *testing.T) *Topology {
	b := NewBuilder("line3")
	b.AddPoP("x")
	b.AddPoP("y")
	b.AddPoP("z")
	b.AddDuplex("x", "y")
	b.AddDuplex("y", "z")
	return mustBuild(t, b)
}

func TestBuilderCounts(t *testing.T) {
	topo := line3(t)
	if topo.NumPoPs() != 3 {
		t.Fatalf("NumPoPs = %d", topo.NumPoPs())
	}
	// 3 intra + 4 directed inter.
	if topo.NumLinks() != 7 {
		t.Fatalf("NumLinks = %d want 7", topo.NumLinks())
	}
	if topo.NumFlows() != 9 {
		t.Fatalf("NumFlows = %d want 9", topo.NumFlows())
	}
}

func TestBuilderWithoutIntraLinks(t *testing.T) {
	b := NewBuilder("noin").WithoutIntraPoPLinks()
	b.AddPoP("x")
	b.AddPoP("y")
	b.AddDuplex("x", "y")
	topo := mustBuild(t, b)
	if topo.NumLinks() != 2 {
		t.Fatalf("NumLinks = %d want 2", topo.NumLinks())
	}
	// Self flow has an empty route when intra links are disabled.
	x, _ := topo.PoPByName("x")
	if got := topo.Route(topo.FlowID(x.ID, x.ID)); len(got) != 0 {
		t.Fatalf("self route = %v want empty", got)
	}
}

func TestBuilderDuplicatePoP(t *testing.T) {
	b := NewBuilder("dup")
	b.AddPoP("x")
	b.AddPoP("x")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("expected duplicate error, got %v", err)
	}
}

func TestBuilderUnknownPoPInEdge(t *testing.T) {
	b := NewBuilder("unknown")
	b.AddPoP("x")
	b.AddDuplex("x", "nosuch")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for unknown PoP")
	}
}

func TestBuilderSelfEdge(t *testing.T) {
	b := NewBuilder("self")
	b.AddPoP("x")
	b.AddDuplex("x", "x")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for self edge")
	}
}

func TestBuilderEmpty(t *testing.T) {
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Fatal("expected error for empty network")
	}
}

func TestBuilderDisconnected(t *testing.T) {
	b := NewBuilder("disc")
	b.AddPoP("x")
	b.AddPoP("y")
	b.AddPoP("z")
	b.AddDuplex("x", "y")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "connected") {
		t.Fatalf("expected connectivity error, got %v", err)
	}
}

func TestRouteLine(t *testing.T) {
	topo := line3(t)
	x, _ := topo.PoPByName("x")
	z, _ := topo.PoPByName("z")
	path := topo.Route(topo.FlowID(x.ID, z.ID))
	if len(path) != 2 {
		t.Fatalf("x->z path = %v want 2 hops", path)
	}
	links := topo.Links()
	if links[path[0]].Src != x.ID || links[path[1]].Dst != z.ID {
		t.Fatalf("path endpoints wrong: %v", path)
	}
	// Path continuity.
	if links[path[0]].Dst != links[path[1]].Src {
		t.Fatal("path not continuous")
	}
}

func TestSelfFlowUsesIntraLink(t *testing.T) {
	topo := line3(t)
	y, _ := topo.PoPByName("y")
	path := topo.Route(topo.FlowID(y.ID, y.ID))
	if len(path) != 1 {
		t.Fatalf("self route = %v want 1 intra link", path)
	}
	if !topo.Links()[path[0]].Intra() {
		t.Fatal("self flow must use intra-PoP link")
	}
}

func TestFlowIDRoundTrip(t *testing.T) {
	topo := Abilene()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := rng.Intn(topo.NumPoPs())
		d := rng.Intn(topo.NumPoPs())
		id := topo.FlowID(o, d)
		o2, d2 := topo.FlowEndpoints(id)
		return o2 == o && d2 == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowIDPanics(t *testing.T) {
	topo := line3(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	topo.FlowID(5, 0)
}

func TestFlowName(t *testing.T) {
	topo := line3(t)
	x, _ := topo.PoPByName("x")
	z, _ := topo.PoPByName("z")
	if got := topo.FlowName(topo.FlowID(x.ID, z.ID)); got != "x->z" {
		t.Fatalf("FlowName = %q", got)
	}
}

func TestPoPByNameMissing(t *testing.T) {
	topo := line3(t)
	if _, ok := topo.PoPByName("nosuch"); ok {
		t.Fatal("PoPByName must report missing names")
	}
}

func TestRoutingMatrixShape(t *testing.T) {
	topo := line3(t)
	a := topo.RoutingMatrix()
	r, c := a.Dims()
	if r != topo.NumLinks() || c != topo.NumFlows() {
		t.Fatalf("A dims = %dx%d want %dx%d", r, c, topo.NumLinks(), topo.NumFlows())
	}
}

func TestRoutingMatrixBinary(t *testing.T) {
	a := Abilene().RoutingMatrix()
	r, c := a.Dims()
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := a.At(i, j)
			if v != 0 && v != 1 {
				t.Fatalf("A(%d,%d) = %v, must be 0/1", i, j, v)
			}
		}
	}
}

func TestRoutingMatrixColumnsMatchRoutes(t *testing.T) {
	topo := Abilene()
	a := topo.RoutingMatrix()
	for f := 0; f < topo.NumFlows(); f++ {
		var ones int
		for i := 0; i < topo.NumLinks(); i++ {
			if a.At(i, f) == 1 {
				ones++
			}
		}
		if ones != len(topo.Route(f)) {
			t.Fatalf("flow %s: column weight %d != route length %d",
				topo.FlowName(f), ones, len(topo.Route(f)))
		}
	}
}

// Every route must be a contiguous directed path from origin to destination.
func TestRoutesAreValidPaths(t *testing.T) {
	for _, topo := range []*Topology{Abilene(), SprintEurope(), Synthetic(8, 12, 42)} {
		links := topo.Links()
		for f := 0; f < topo.NumFlows(); f++ {
			o, d := topo.FlowEndpoints(f)
			path := topo.Route(f)
			if o == d {
				if len(path) != 1 || !links[path[0]].Intra() {
					t.Fatalf("%s: self flow route %v", topo.Name(), path)
				}
				continue
			}
			if len(path) == 0 {
				t.Fatalf("%s: empty path for %s", topo.Name(), topo.FlowName(f))
			}
			if links[path[0]].Src != o || links[path[len(path)-1]].Dst != d {
				t.Fatalf("%s: path endpoints wrong for %s", topo.Name(), topo.FlowName(f))
			}
			for k := 1; k < len(path); k++ {
				if links[path[k-1]].Dst != links[path[k]].Src {
					t.Fatalf("%s: discontinuous path for %s", topo.Name(), topo.FlowName(f))
				}
			}
		}
	}
}

// Routes must be shortest: compare against an independent Floyd-Warshall.
func TestRoutesAreShortest(t *testing.T) {
	topo := Abilene()
	n := topo.NumPoPs()
	const inf = 1 << 20
	dist := make([][]int, n)
	for i := range dist {
		dist[i] = make([]int, n)
		for j := range dist[i] {
			if i == j {
				dist[i][j] = 0
			} else {
				dist[i][j] = inf
			}
		}
	}
	for _, l := range topo.Links() {
		if !l.Intra() {
			dist[l.Src][l.Dst] = 1
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if dist[i][k]+dist[k][j] < dist[i][j] {
					dist[i][j] = dist[i][k] + dist[k][j]
				}
			}
		}
	}
	for o := 0; o < n; o++ {
		for d := 0; d < n; d++ {
			if o == d {
				continue
			}
			got := len(topo.Route(topo.FlowID(o, d)))
			if got != dist[o][d] {
				t.Fatalf("route %d->%d length %d, shortest is %d", o, d, got, dist[o][d])
			}
		}
	}
}

func TestAbileneMatchesTable1(t *testing.T) {
	topo := Abilene()
	if topo.NumPoPs() != 11 {
		t.Fatalf("Abilene PoPs = %d want 11", topo.NumPoPs())
	}
	if topo.NumLinks() != 41 {
		t.Fatalf("Abilene links = %d want 41 (Table 1)", topo.NumLinks())
	}
	for _, name := range []string{"nycm", "atla", "hstn", "wash", "losa", "snva", "sttl", "dnvr", "kscy", "chin", "ipls"} {
		if _, ok := topo.PoPByName(name); !ok {
			t.Fatalf("Abilene missing PoP %q", name)
		}
	}
}

func TestSprintEuropeMatchesTable1(t *testing.T) {
	topo := SprintEurope()
	if topo.NumPoPs() != 13 {
		t.Fatalf("Sprint PoPs = %d want 13", topo.NumPoPs())
	}
	if topo.NumLinks() != 49 {
		t.Fatalf("Sprint links = %d want 49 (Table 1)", topo.NumLinks())
	}
}

func TestPresetsDeterministic(t *testing.T) {
	a1, a2 := Abilene(), Abilene()
	if !mat.EqualApprox(a1.RoutingMatrix(), a2.RoutingMatrix(), 0) {
		t.Fatal("Abilene routing matrix must be deterministic")
	}
}

func TestSyntheticDeterministicInSeed(t *testing.T) {
	t1 := Synthetic(10, 15, 7)
	t2 := Synthetic(10, 15, 7)
	if !mat.EqualApprox(t1.RoutingMatrix(), t2.RoutingMatrix(), 0) {
		t.Fatal("Synthetic must be deterministic in seed")
	}
	t3 := Synthetic(10, 15, 8)
	if mat.EqualApprox(t1.RoutingMatrix(), t3.RoutingMatrix(), 0) {
		t.Fatal("different seeds should produce different networks")
	}
}

func TestSyntheticConnectivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		maxE := n * (n - 1) / 2
		e := n - 1 + rng.Intn(maxE-(n-1)+1)
		topo := Synthetic(n, e, seed)
		// Build succeeded => strongly connected; also verify counts.
		return topo.NumPoPs() == n && topo.NumLinks() == n+2*e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { Synthetic(1, 1, 0) },
		func() { Synthetic(5, 3, 0) },  // fewer than n-1
		func() { Synthetic(5, 11, 0) }, // more than complete graph
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestIntraLinksComeFirst(t *testing.T) {
	topo := Abilene()
	links := topo.Links()
	for i := 0; i < topo.NumPoPs(); i++ {
		if !links[i].Intra() {
			t.Fatalf("link %d should be intra-PoP", i)
		}
	}
	for i := topo.NumPoPs(); i < topo.NumLinks(); i++ {
		if links[i].Intra() {
			t.Fatalf("link %d should be inter-PoP", i)
		}
	}
}
